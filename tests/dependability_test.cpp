#include <gtest/gtest.h>

#include <cmath>

#include "arfs/analysis/dependability.hpp"
#include "arfs/common/check.hpp"

namespace arfs::analysis {
namespace {

MissionParams mission(double rate, double hours = 10.0,
                      std::uint32_t trials = 20'000) {
  MissionParams m;
  m.mission_hours = hours;
  m.failure_rate_per_hour = rate;
  m.trials = trials;
  return m;
}

TEST(Dependability, ZeroFailureRateIsPerfect) {
  Rng rng(1);
  DesignUnits design{3, 2, 1};
  const DependabilityEstimate e =
      estimate_dependability(design, mission(0.0), rng);
  EXPECT_DOUBLE_EQ(e.p_full_whole_mission, 1.0);
  EXPECT_DOUBLE_EQ(e.p_safe_whole_mission, 1.0);
  EXPECT_DOUBLE_EQ(e.p_loss, 0.0);
  EXPECT_DOUBLE_EQ(e.mean_failures, 0.0);
}

TEST(Dependability, MeanFailuresMatchesExpectation) {
  Rng rng(2);
  // 10 units, rate 0.05/h, 10h: P(fail) = 1 - e^-0.5 ~ 0.3935 each.
  DesignUnits design{10, 1, 1};
  const DependabilityEstimate e =
      estimate_dependability(design, mission(0.05), rng);
  EXPECT_NEAR(e.mean_failures, 10.0 * (1.0 - std::exp(-0.5)), 0.05);
}

TEST(Dependability, SingleUnitMatchesAnalyticReliability) {
  Rng rng(3);
  DesignUnits design{1, 1, 1};
  const DependabilityEstimate e =
      estimate_dependability(design, mission(0.1), rng);
  const double analytic = std::exp(-0.1 * 10.0);  // e^-1
  EXPECT_NEAR(e.p_full_whole_mission, analytic, 0.01);
  EXPECT_NEAR(e.p_loss, 1.0 - analytic, 0.01);
}

TEST(Dependability, SpareImprovesSurvival) {
  Rng a(4);
  Rng b(4);
  const DependabilityEstimate no_spare =
      estimate_dependability(DesignUnits{2, 2, 1}, mission(0.05), a);
  const DependabilityEstimate one_spare =
      estimate_dependability(DesignUnits{3, 2, 1}, mission(0.05), b);
  EXPECT_GT(one_spare.p_full_whole_mission, no_spare.p_full_whole_mission);
  EXPECT_GT(one_spare.p_safe_whole_mission, no_spare.p_safe_whole_mission);
}

TEST(Dependability, DegradationBeatsLossAtEqualHardware) {
  // Equal totals: a design that can degrade to one survivor outlives a
  // masking design that needs both units.
  Rng a(5);
  Rng b(5);
  const DependabilityEstimate masking =
      estimate_dependability(DesignUnits{2, 2, 2}, mission(0.05), a);
  const DependabilityEstimate degrading =
      estimate_dependability(DesignUnits{2, 2, 1}, mission(0.05), b);
  EXPECT_NEAR(masking.p_full_whole_mission, degrading.p_full_whole_mission,
              0.02);
  EXPECT_GT(degrading.p_safe_whole_mission, masking.p_safe_whole_mission);
  EXPECT_LT(degrading.p_loss, masking.p_loss);
}

TEST(Dependability, Section51PairShapes) {
  const DesignPair pair = section51_designs(4, 2, 2);
  EXPECT_EQ(pair.masking.total, 6);
  EXPECT_EQ(pair.masking.safe, 4);  // no degraded mode
  EXPECT_EQ(pair.reconfig.total, 4);
  EXPECT_EQ(pair.reconfig.safe, 2);
  EXPECT_EQ(pair.reconfig.full, 4);
}

TEST(Dependability, Section51ReconfigKeepsSafetyWithLessHardware) {
  // The paper's core claim in probabilistic form: with fewer components,
  // the reconfiguration design's probability of retaining *safe* service is
  // at least comparable to the masking design's probability of retaining
  // *full* service, because its loss threshold is lower.
  const DesignPair pair = section51_designs(4, 2, 2);
  Rng a(6);
  Rng b(6);
  const DependabilityEstimate masking =
      estimate_dependability(pair.masking, mission(0.02), a);
  const DependabilityEstimate reconfig =
      estimate_dependability(pair.reconfig, mission(0.02), b);
  EXPECT_LT(pair.reconfig.total, pair.masking.total);
  EXPECT_GE(reconfig.p_safe_whole_mission + 0.02,
            masking.p_full_whole_mission);
}

TEST(Dependability, TimeFractionsBracketProbabilities) {
  Rng rng(7);
  const DependabilityEstimate e =
      estimate_dependability(DesignUnits{3, 2, 1}, mission(0.1), rng);
  // Whole-mission survival implies full time-fraction, so fractions bound
  // the probabilities from above.
  EXPECT_GE(e.full_service_fraction, e.p_full_whole_mission);
  EXPECT_GE(e.safe_or_better_fraction, e.p_safe_whole_mission);
  EXPECT_GE(e.safe_or_better_fraction, e.full_service_fraction);
}

TEST(Dependability, DeterministicFromSeed) {
  Rng a(8);
  Rng b(8);
  const DependabilityEstimate ea =
      estimate_dependability(DesignUnits{3, 2, 1}, mission(0.05), a);
  const DependabilityEstimate eb =
      estimate_dependability(DesignUnits{3, 2, 1}, mission(0.05), b);
  EXPECT_DOUBLE_EQ(ea.p_loss, eb.p_loss);
  EXPECT_DOUBLE_EQ(ea.full_service_fraction, eb.full_service_fraction);
}

TEST(Dependability, RejectsMalformedInputs) {
  Rng rng(9);
  EXPECT_THROW((void)estimate_dependability(DesignUnits{2, 3, 1},
                                            mission(0.1), rng),
               ContractViolation);
  EXPECT_THROW((void)estimate_dependability(DesignUnits{3, 2, 0},
                                            mission(0.1), rng),
               ContractViolation);
  MissionParams bad = mission(0.1);
  bad.trials = 0;
  EXPECT_THROW(
      (void)estimate_dependability(DesignUnits{3, 2, 1}, bad, rng),
      ContractViolation);
}

}  // namespace
}  // namespace arfs::analysis
