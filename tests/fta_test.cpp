// Tests of the original Schlichting & Schneider fault-tolerant action model
// (the paper's baseline): action completion, recovery on spares from stable
// storage, comparator-trip handling, and spare exhaustion.
#include <gtest/gtest.h>

#include "arfs/failstop/fta.hpp"

namespace arfs::failstop {
namespace {

/// A counting action: increments "progress" in stable storage each step;
/// completes after `total` steps. Recovery copies the committed progress to
/// the replacement, so completed steps are never redone.
class CountingFta {
 public:
  explicit CountingFta(std::int64_t total) : total_(total) {}

  FtaBody body() {
    return [this](storage::StableStorage& stable) {
      const std::int64_t progress =
          stable.read_as<std::int64_t>("progress").value_or(0);
      stable.write("progress", progress + 1);
      ++work_done_;
      return progress + 1 >= total_;
    };
  }

  static FtaRecovery recovery() {
    return [](const storage::StableStorage& failed,
              storage::StableStorage& replacement) {
      replacement.write(
          "progress", failed.read_as<std::int64_t>("progress").value_or(0));
    };
  }

  [[nodiscard]] std::int64_t work_done() const { return work_done_; }

 private:
  std::int64_t total_;
  std::int64_t work_done_ = 0;
};

class FtaTest : public ::testing::Test {
 protected:
  FtaTest() {
    for (std::uint32_t p = 1; p <= 3; ++p) {
      group_.add_processor(ProcessorId{p});
    }
  }
  ProcessorGroup group_;
};

TEST_F(FtaTest, CompletesWithoutFailures) {
  CountingFta action(5);
  FtaRunner runner(group_, {ProcessorId{1}, ProcessorId{2}}, action.body(),
                   CountingFta::recovery());
  const FtaReport report = runner.run(0);
  EXPECT_EQ(report.status, FtaStatus::kCompleted);
  EXPECT_EQ(report.steps_executed, 5u);
  EXPECT_EQ(report.failures_survived, 0u);
  EXPECT_EQ(report.final_processor, ProcessorId{1});
  EXPECT_EQ(action.work_done(), 5);
}

TEST_F(FtaTest, RecoversOnSpareAndResumesFromCommittedState) {
  CountingFta action(6);
  FtaRunner runner(group_, {ProcessorId{1}, ProcessorId{2}}, action.body(),
                   CountingFta::recovery());
  for (Cycle c = 0; c < 3; ++c) (void)runner.step(c);
  EXPECT_EQ(runner.report().steps_executed, 3u);

  group_.processor(ProcessorId{1}).fail(3);
  const FtaReport report = runner.run(4);
  EXPECT_EQ(report.status, FtaStatus::kCompleted);
  EXPECT_EQ(report.failures_survived, 1u);
  EXPECT_EQ(report.final_processor, ProcessorId{2});
  // Exactly 6 units of work: the recovery resumed from committed progress
  // rather than restarting from zero.
  EXPECT_EQ(action.work_done(), 6);
  EXPECT_EQ(group_.processor(ProcessorId{2})
                .poll_stable()
                .read_as<std::int64_t>("progress")
                .value(),
            6);
}

TEST_F(FtaTest, SurvivesAsManyFailuresAsSpares) {
  CountingFta action(9);
  FtaRunner runner(group_,
                   {ProcessorId{1}, ProcessorId{2}, ProcessorId{3}},
                   action.body(), CountingFta::recovery());
  for (Cycle c = 0; c < 3; ++c) (void)runner.step(c);
  group_.processor(ProcessorId{1}).fail(3);
  for (Cycle c = 4; c < 8; ++c) (void)runner.step(c);
  group_.processor(ProcessorId{2}).fail(8);
  const FtaReport report = runner.run(9);

  EXPECT_EQ(report.status, FtaStatus::kCompleted);
  EXPECT_EQ(report.failures_survived, 2u);
  EXPECT_EQ(report.final_processor, ProcessorId{3});
  EXPECT_EQ(action.work_done(), 9);
}

TEST_F(FtaTest, ExhaustsWhenSparesRunOut) {
  CountingFta action(100);
  FtaRunner runner(group_, {ProcessorId{1}, ProcessorId{2}}, action.body(),
                   CountingFta::recovery());
  (void)runner.step(0);
  group_.processor(ProcessorId{1}).fail(1);
  (void)runner.step(2);  // fails over to 2
  group_.processor(ProcessorId{2}).fail(3);
  const FtaReport report = runner.step(4);
  EXPECT_EQ(report.status, FtaStatus::kExhausted);
  // The original model cannot degrade: the action is simply lost — the
  // limitation the paper's reconfiguration approach removes.
}

TEST_F(FtaTest, UncommittedStepLostOnFailureIsRedone) {
  // The fail-stop contract at action granularity: a step whose commit never
  // happened is not observable; recovery resumes from the last commit.
  CountingFta action(4);
  FtaRunner runner(group_, {ProcessorId{1}, ProcessorId{2}}, action.body(),
                   CountingFta::recovery());
  (void)runner.step(0);
  (void)runner.step(1);
  // Fail processor 1; its committed progress is 2.
  group_.processor(ProcessorId{1}).fail(2);
  const FtaReport report = runner.run(3);
  EXPECT_EQ(report.status, FtaStatus::kCompleted);
  EXPECT_EQ(group_.processor(ProcessorId{2})
                .poll_stable()
                .read_as<std::int64_t>("progress")
                .value(),
            4);
}

TEST_F(FtaTest, ComparatorTripIsHandledAsFailStop) {
  CountingFta action(4);
  FtaRunner runner(group_, {ProcessorId{1}, ProcessorId{2}}, action.body(),
                   CountingFta::recovery());
  (void)runner.step(0);
  // A transient computational fault in one unit of the pair: the comparator
  // trips mid-step, the step's writes are dropped, and the next step fails
  // over and redoes it on the spare.
  group_.processor(ProcessorId{1}).pair().inject_unit_fault(0);
  (void)runner.step(1);  // comparator trips; no progress
  EXPECT_FALSE(group_.processor(ProcessorId{1}).running());
  const FtaReport report = runner.run(2);
  EXPECT_EQ(report.status, FtaStatus::kCompleted);
  EXPECT_EQ(report.failures_survived, 1u);
  EXPECT_EQ(group_.processor(ProcessorId{2})
                .poll_stable()
                .read_as<std::int64_t>("progress")
                .value(),
            4);
}

TEST_F(FtaTest, SkipsAlreadyFailedSpares) {
  CountingFta action(3);
  FtaRunner runner(group_,
                   {ProcessorId{1}, ProcessorId{2}, ProcessorId{3}},
                   action.body(), CountingFta::recovery());
  (void)runner.step(0);
  group_.processor(ProcessorId{2}).fail(1);  // spare dies first
  group_.processor(ProcessorId{1}).fail(1);
  const FtaReport report = runner.run(2);
  EXPECT_EQ(report.status, FtaStatus::kCompleted);
  EXPECT_EQ(report.final_processor, ProcessorId{3});
}

TEST_F(FtaTest, RejectsBadConstruction) {
  CountingFta action(1);
  EXPECT_THROW(
      FtaRunner(group_, {}, action.body(), CountingFta::recovery()),
      ContractViolation);
  EXPECT_THROW(FtaRunner(group_, {ProcessorId{9}}, action.body(),
                         CountingFta::recovery()),
               ContractViolation);
  EXPECT_THROW(
      FtaRunner(group_, {ProcessorId{1}}, nullptr, CountingFta::recovery()),
      ContractViolation);
}

}  // namespace
}  // namespace arfs::failstop
