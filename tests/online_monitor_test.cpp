// Tests of the streaming SP monitor: verdict parity with the offline
// checkers, bounded buffering, violation detection, and contiguity checks.
#include <gtest/gtest.h>

#include <memory>

#include "arfs/core/system.hpp"
#include "arfs/props/online.hpp"
#include "arfs/props/report.hpp"
#include "arfs/support/simple_app.hpp"
#include "arfs/support/synthetic.hpp"

namespace arfs::props {
namespace {

using support::kChainSeverityFactor;
using support::synthetic_app;

core::ReconfigSpec chain(std::size_t configs = 3, Cycle bound = 10) {
  support::ChainSpecParams params;
  params.configs = configs;
  params.apps = 2;
  params.transition_bound = bound;
  return support::make_chain_spec(params);
}

/// Runs a system and feeds its trace through the monitor frame by frame.
std::vector<ReconfigVerdict> stream(const core::ReconfigSpec& /*spec*/,
                                    core::System& system, Cycle frames,
                                    OnlineMonitor& monitor,
                                    const std::vector<Cycle>& triggers) {
  std::vector<ReconfigVerdict> verdicts;
  Cycle fed = 0;
  for (Cycle f = 0; f < frames; ++f) {
    for (std::size_t i = 0; i < triggers.size(); ++i) {
      if (triggers[i] == f) {
        system.set_factor(kChainSeverityFactor,
                          static_cast<std::int64_t>(i + 1));
      }
    }
    system.run(1);
    for (; fed < system.trace().size(); ++fed) {
      if (auto v = monitor.observe(system.trace().at(fed))) {
        verdicts.push_back(*v);
      }
    }
  }
  return verdicts;
}

TEST(OnlineMonitor, MatchesOfflineCheckers) {
  const core::ReconfigSpec spec = chain();
  core::System system(spec);
  system.add_app(std::make_unique<support::SimpleApp>(synthetic_app(0), "a"));
  system.add_app(std::make_unique<support::SimpleApp>(synthetic_app(1), "b"));
  OnlineMonitor monitor(spec, 10'000);

  const auto online = stream(spec, system, 40, monitor, {5, 20});
  const TraceReport offline = check_trace(system.trace(), spec);

  ASSERT_EQ(online.size(), offline.verdicts.size());
  for (std::size_t i = 0; i < online.size(); ++i) {
    EXPECT_EQ(online[i].reconfig.start_c, offline.verdicts[i].reconfig.start_c);
    EXPECT_EQ(online[i].reconfig.end_c, offline.verdicts[i].reconfig.end_c);
    EXPECT_EQ(online[i].all_hold(), offline.verdicts[i].all_hold());
    EXPECT_EQ(online[i].sp1.holds, offline.verdicts[i].sp1.holds);
    EXPECT_EQ(online[i].sp2.holds, offline.verdicts[i].sp2.holds);
    EXPECT_EQ(online[i].sp3.holds, offline.verdicts[i].sp3.holds);
    EXPECT_EQ(online[i].sp4.holds, offline.verdicts[i].sp4.holds);
  }
  EXPECT_EQ(monitor.stats().reconfigs_checked, 2u);
  EXPECT_EQ(monitor.stats().violations, 0u);
}

TEST(OnlineMonitor, BufferBoundedByReconfigLength) {
  const core::ReconfigSpec spec = chain();
  core::System system(spec);
  system.add_app(std::make_unique<support::SimpleApp>(synthetic_app(0), "a"));
  system.add_app(std::make_unique<support::SimpleApp>(synthetic_app(1), "b"));
  OnlineMonitor monitor(spec, 10'000);
  (void)stream(spec, system, 200, monitor, {5});

  EXPECT_EQ(monitor.stats().frames_observed, 200u);
  // The 4-frame SFTA ends at its 4th frame; nothing more is ever buffered.
  EXPECT_LE(monitor.stats().max_buffered_frames, 4u);
  EXPECT_FALSE(monitor.reconfiguring());
}

TEST(OnlineMonitor, DetectsSp3ViolationOnline) {
  // Bound of 3 frames is tighter than the canonical 4-frame SFTA.
  const core::ReconfigSpec spec = chain(3, 3);
  core::System system(spec);
  system.add_app(std::make_unique<support::SimpleApp>(synthetic_app(0), "a"));
  system.add_app(std::make_unique<support::SimpleApp>(synthetic_app(1), "b"));
  OnlineMonitor monitor(spec, 10'000);
  const auto verdicts = stream(spec, system, 20, monitor, {5});

  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_FALSE(verdicts[0].sp3.holds);
  EXPECT_TRUE(verdicts[0].sp1.holds);
  EXPECT_EQ(monitor.stats().violations, 1u);
}

TEST(OnlineMonitor, ReconfigStartingAtCycleZeroHandled) {
  // No all-normal prelude exists when the trigger fires in frame 0.
  const core::ReconfigSpec spec = chain();
  core::System system(spec);
  system.add_app(std::make_unique<support::SimpleApp>(synthetic_app(0), "a"));
  system.add_app(std::make_unique<support::SimpleApp>(synthetic_app(1), "b"));
  OnlineMonitor monitor(spec, 10'000);
  const auto verdicts = stream(spec, system, 15, monitor, {0});
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_TRUE(verdicts[0].all_hold());
  EXPECT_EQ(verdicts[0].reconfig.start_c, 0u);
}

TEST(OnlineMonitor, RejectsNonContiguousFrames) {
  const core::ReconfigSpec spec = chain();
  OnlineMonitor monitor(spec, 10'000);
  trace::SysState s0;
  s0.cycle = 0;
  s0.svclvl = support::synthetic_config(0);
  (void)monitor.observe(s0);
  trace::SysState s5 = s0;
  s5.cycle = 5;
  EXPECT_THROW((void)monitor.observe(s5), ContractViolation);
}

}  // namespace
}  // namespace arfs::props
