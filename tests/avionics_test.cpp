// Tests of the section 7 example instantiation: aircraft dynamics, sensors,
// the two applications' reconfiguration interfaces, the three-configuration
// spec, the 7.1 scenario (alternator failure -> Reduced Service), and the
// initialization dependency.
#include <gtest/gtest.h>

#include "arfs/analysis/coverage.hpp"
#include "arfs/analysis/graph.hpp"
#include "arfs/analysis/timing.hpp"
#include "arfs/avionics/uav_system.hpp"
#include "arfs/props/report.hpp"
#include "arfs/trace/reconfigs.hpp"

namespace arfs::avionics {
namespace {

TEST(Aircraft, HeadingMath) {
  EXPECT_DOUBLE_EQ(wrap_heading_deg(370.0), 10.0);
  EXPECT_DOUBLE_EQ(wrap_heading_deg(-10.0), 350.0);
  EXPECT_DOUBLE_EQ(heading_error_deg(10.0, 350.0), 20.0);
  EXPECT_DOUBLE_EQ(heading_error_deg(350.0, 10.0), -20.0);
  EXPECT_DOUBLE_EQ(heading_error_deg(180.0, 0.0), 180.0);
}

TEST(Aircraft, ElevatorClimbsAileronTurns) {
  AircraftDynamics dyn;
  const double alt0 = dyn.state().altitude_ft;
  const double hdg0 = dyn.state().heading_deg;
  for (int i = 0; i < 500; ++i) {
    dyn.step(ControlSurfaces{0.5, 0.3}, 0.02);
  }
  EXPECT_GT(dyn.state().altitude_ft, alt0 + 50.0);
  EXPECT_GT(dyn.state().vs_fpm, 0.0);
  EXPECT_GT(dyn.state().bank_deg, 0.0);
  EXPECT_NE(dyn.state().heading_deg, hdg0);
}

TEST(Aircraft, CenteredSurfacesDecayBankAndVs) {
  AircraftDynamics dyn;
  for (int i = 0; i < 200; ++i) dyn.step(ControlSurfaces{1.0, 1.0}, 0.02);
  for (int i = 0; i < 2000; ++i) dyn.step(ControlSurfaces{}, 0.02);
  EXPECT_NEAR(dyn.state().vs_fpm, 0.0, 1.0);
  EXPECT_NEAR(dyn.state().bank_deg, 0.0, 0.1);
}

TEST(Aircraft, AltitudeNeverNegative) {
  AircraftDynamics dyn(DynamicsParams{}, AircraftState{.altitude_ft = 10.0});
  for (int i = 0; i < 1000; ++i) dyn.step(ControlSurfaces{-1.0, 0.0}, 0.05);
  EXPECT_GE(dyn.state().altitude_ft, 0.0);
}

TEST(Sensors, NoiseIsBoundedAndDeterministic) {
  AircraftState truth;
  SensorSuite a(SensorNoise{}, 7);
  SensorSuite b(SensorNoise{}, 7);
  for (int i = 0; i < 100; ++i) {
    const SensorReadings ra = a.sample(truth);
    const SensorReadings rb = b.sample(truth);
    EXPECT_DOUBLE_EQ(ra.altitude_ft, rb.altitude_ft);
    EXPECT_NEAR(ra.altitude_ft, truth.altitude_ft, 30.0);
    EXPECT_NEAR(heading_error_deg(ra.heading_deg, truth.heading_deg), 0.0,
                5.0);
  }
}

TEST(Sensors, FailedAltimeterSticks) {
  AircraftState truth;
  SensorSuite s(SensorNoise{}, 7);
  const double before = s.sample(truth).altitude_ft;
  s.fail_altimeter();
  truth.altitude_ft = 9999.0;
  EXPECT_DOUBLE_EQ(s.sample(truth).altitude_ft, before);
}

TEST(UavSpec, ValidatesAndCovers) {
  const core::ReconfigSpec spec = make_uav_spec();
  EXPECT_NO_THROW(spec.validate());
  const analysis::CoverageReport coverage = analysis::check_coverage(spec);
  EXPECT_TRUE(coverage.all_discharged());
}

TEST(UavSpec, ChooseMapsPowerStatesToConfigurations) {
  const core::ReconfigSpec spec = make_uav_spec();
  const auto choose_for = [&](env::PowerState p) {
    return spec.choose(kFullService,
                       env::EnvState{{kPowerFactor,
                                      static_cast<std::int64_t>(p)}});
  };
  EXPECT_EQ(choose_for(env::PowerState::kFullPower), kFullService);
  EXPECT_EQ(choose_for(env::PowerState::kSingleAlternator), kReducedService);
  EXPECT_EQ(choose_for(env::PowerState::kBatteryOnly), kMinimalService);
  EXPECT_EQ(choose_for(env::PowerState::kDepleted), kMinimalService);
}

TEST(UavSpec, TransitionGraphIsCyclicByDesign) {
  // Power can be restored, so recovery transitions exist; the dwell rule is
  // the cycle-breaking mechanism (section 5.3).
  const core::ReconfigSpec spec = make_uav_spec();
  const analysis::TransitionGraph g = analysis::TransitionGraph::build(spec);
  EXPECT_TRUE(g.has_cycle());
}

TEST(UavScenario, AlternatorFailureCommandsReducedService) {
  UavSystem uav;
  uav.run(10);
  EXPECT_EQ(uav.system().scram().current_config(), kFullService);

  uav.electrical().fail_alternator(0);
  uav.run(10);
  EXPECT_EQ(uav.system().scram().current_config(), kReducedService);

  // Both applications now share computer 1.
  EXPECT_EQ(uav.system().region_host(kAutopilot), kComputer1);
  EXPECT_EQ(uav.system().region_host(kFcs), kComputer1);
  // And run their degraded specifications.
  EXPECT_EQ(uav.autopilot().current_spec(), kApAltHold);
  EXPECT_EQ(uav.fcs().current_spec(), kFcsDirect);
}

TEST(UavScenario, ReducedTargetSftaTakesFiveFramesDueToDependency) {
  UavSystem uav;
  uav.run(10);
  uav.electrical().fail_alternator(0);
  uav.run(15);

  const auto reconfigs = trace::get_reconfigs(uav.system().trace());
  ASSERT_EQ(reconfigs.size(), 1u);
  // 4 canonical frames + 1 for the autopilot-waits-for-FCS dependency.
  EXPECT_EQ(trace::duration_frames(reconfigs[0]), 5u);
}

TEST(UavScenario, WithoutDependencyFourFrames) {
  UavOptions options;
  options.spec.with_dependency = false;
  UavSystem uav(options);
  uav.run(10);
  uav.electrical().fail_alternator(0);
  uav.run(15);

  const auto reconfigs = trace::get_reconfigs(uav.system().trace());
  ASSERT_EQ(reconfigs.size(), 1u);
  EXPECT_EQ(trace::duration_frames(reconfigs[0]), 4u);
}

TEST(UavScenario, PreconditionsHoldOnEntry) {
  UavSystem uav;
  uav.run(5);
  uav.autopilot().engage(ApMode::kClimbTo, 8000.0);
  uav.run(100);  // surfaces deflected by the climb
  EXPECT_FALSE(uav.plant().surfaces().centered(1e-3));

  uav.electrical().fail_alternator(0);
  uav.run(10);

  // Section 7.1 preconditions at configuration entry: surfaces centered
  // (checked at end_c by SP4 through the trace, and physically here)...
  const auto reconfigs = trace::get_reconfigs(uav.system().trace());
  ASSERT_EQ(reconfigs.size(), 1u);
  // ...and the autopilot disengaged.
  EXPECT_FALSE(uav.autopilot().engaged());

  const props::TraceReport report =
      props::check_trace(uav.system().trace(), uav.spec());
  EXPECT_TRUE(report.all_hold()) << props::render(report);
}

TEST(UavScenario, SecondFailureCommandsMinimalServiceAutopilotOff) {
  UavSystem uav;
  uav.run(5);
  uav.electrical().fail_alternator(0);
  uav.run(15);
  uav.electrical().fail_alternator(1);
  uav.run(15);

  EXPECT_EQ(uav.system().scram().current_config(), kMinimalService);
  EXPECT_FALSE(uav.autopilot().current_spec().has_value());  // off
  EXPECT_EQ(uav.fcs().current_spec(), kFcsDirect);

  const props::TraceReport report =
      props::check_trace(uav.system().trace(), uav.spec());
  EXPECT_TRUE(report.all_hold()) << props::render(report);
}

TEST(UavScenario, DoubleFailureInOneFrameGoesStraightToMinimal) {
  UavSystem uav;
  uav.run(5);
  uav.electrical().fail_alternator(0);
  uav.electrical().fail_alternator(1);
  uav.run(15);

  EXPECT_EQ(uav.system().scram().current_config(), kMinimalService);
  const auto reconfigs = trace::get_reconfigs(uav.system().trace());
  ASSERT_EQ(reconfigs.size(), 1u);  // one reconfiguration, not two
  EXPECT_EQ(reconfigs[0].to, kMinimalService);
}

TEST(UavScenario, AlternatorRepairRestoresFullService) {
  UavSystem uav;
  uav.run(5);
  uav.electrical().fail_alternator(0);
  uav.run(15);
  EXPECT_EQ(uav.system().scram().current_config(), kReducedService);

  uav.electrical().repair_alternator(0);
  uav.run(15);
  EXPECT_EQ(uav.system().scram().current_config(), kFullService);
  EXPECT_EQ(uav.autopilot().current_spec(), kApFull);
  // Applications separated again onto their own computers.
  EXPECT_EQ(uav.system().region_host(kFcs), kComputer2);
}

TEST(UavScenario, HeadingServiceRefusedInReducedService) {
  UavSystem uav;
  uav.run(5);
  uav.electrical().fail_alternator(0);
  uav.run(15);

  EXPECT_FALSE(uav.autopilot().engage(ApMode::kTurnTo, 90.0));
  EXPECT_FALSE(uav.autopilot().engage(ApMode::kHeadingHold, 90.0));
  EXPECT_TRUE(uav.autopilot().engage(ApMode::kAltitudeHold, 5000.0));
}

TEST(UavScenario, EngageRefusedWhenOff) {
  UavSystem uav;
  uav.run(5);
  uav.electrical().fail_alternator(0);
  uav.electrical().fail_alternator(1);
  uav.run(15);
  EXPECT_FALSE(uav.autopilot().engage(ApMode::kAltitudeHold, 5000.0));
}

TEST(UavScenario, AutopilotHoldsAltitude) {
  UavSystem uav;
  uav.run(5);
  uav.autopilot().engage(ApMode::kAltitudeHold, 5200.0);
  // The proportional loop's closed-loop time constant is ~32 s; run 100
  // simulated seconds (20 ms frames) to converge well within tolerance.
  uav.run(5000);
  EXPECT_NEAR(uav.plant().truth().altitude_ft, 5200.0, 60.0);
}

TEST(UavScenario, AutopilotTurnsToHeading) {
  UavSystem uav;
  uav.run(5);
  uav.autopilot().engage(ApMode::kTurnTo, 140.0);
  uav.run(3000);  // a minute: plenty for a 50-degree turn
  EXPECT_TRUE(uav.autopilot().capture_complete());
  EXPECT_NEAR(heading_error_deg(140.0, uav.plant().truth().heading_deg), 0.0,
              6.0);
}

TEST(Aircraft, WindDisturbsUncontrolledFlight) {
  AircraftDynamics calm;
  AircraftDynamics gusty;
  gusty.set_wind(WindModel{.gust_vs_fpm = 300.0, .gust_bank_deg = 5.0});
  for (int i = 0; i < 500; ++i) {
    calm.step(ControlSurfaces{}, 0.02);
    gusty.step(ControlSurfaces{}, 0.02);
  }
  EXPECT_NEAR(calm.state().altitude_ft, 5000.0, 0.1);
  EXPECT_NE(gusty.state().altitude_ft, calm.state().altitude_ft);
  EXPECT_NE(gusty.state().heading_deg, calm.state().heading_deg);
}

TEST(UavScenario, AutopilotHoldsAltitudeThroughTurbulence) {
  UavSystem uav;
  uav.plant().set_wind(WindModel{.gust_vs_fpm = 250.0, .gust_bank_deg = 3.0});
  uav.run(5);
  uav.autopilot().engage(ApMode::kAltitudeHold, 5100.0);
  uav.run(6000);  // 120 s: converge and ride the gusts
  // The proportional loop holds against the disturbance within a wider
  // band than in calm air.
  EXPECT_NEAR(uav.plant().truth().altitude_ft, 5100.0, 120.0);

  // The full reconfiguration story still works in turbulence.
  uav.electrical().fail_alternator(0);
  uav.run(20);
  EXPECT_EQ(uav.system().scram().current_config(), kReducedService);
  const props::TraceReport report =
      props::check_trace(uav.system().trace(), uav.spec());
  EXPECT_TRUE(report.all_hold()) << props::render(report);
}

TEST(UavScenario, AugmentationSmoothsStepInputs) {
  // The augmented FCS low-passes abrupt stick inputs; direct control
  // applies them instantly (the simulated stability augmentation of
  // section 7).
  UavSystem augmented;
  augmented.run(5);
  augmented.plant().pilot_pitch = 1.0;  // step input
  augmented.run(1);
  const double first_response = augmented.plant().surfaces().elevator;
  EXPECT_GT(first_response, 0.0);
  EXPECT_LT(first_response, 0.7);  // smoothed, not instantaneous
  augmented.run(30);
  EXPECT_GT(augmented.plant().surfaces().elevator, 0.9);  // converges

  UavSystem direct;
  direct.run(5);
  direct.electrical().fail_alternator(0);
  direct.electrical().fail_alternator(1);
  direct.run(15);  // Minimal Service: direct control
  direct.plant().pilot_pitch = 1.0;
  direct.run(1);
  EXPECT_DOUBLE_EQ(direct.plant().surfaces().elevator, 1.0);  // instant
}

TEST(UavScenario, PilotHasDirectControlInMinimalService) {
  UavSystem uav;
  uav.run(5);
  uav.electrical().fail_alternator(0);
  uav.electrical().fail_alternator(1);
  uav.run(15);

  uav.plant().pilot_pitch = 0.4;
  uav.run(5);
  // Direct control: the surface equals the stick input exactly.
  EXPECT_DOUBLE_EQ(uav.plant().surfaces().elevator, 0.4);
}

TEST(UavScenario, FlappingPowerWithDwellRuleStaysBounded) {
  UavOptions options;
  options.spec.dwell_frames = 20;
  UavSystem uav(options);
  uav.run(5);
  // Alternator 0 flaps on/off rapidly.
  for (int i = 0; i < 10; ++i) {
    uav.electrical().fail_alternator(0);
    uav.run(3);
    uav.electrical().repair_alternator(0);
    uav.run(3);
  }
  uav.run(60);

  // The dwell rule bounds the reconfiguration rate: far fewer
  // reconfigurations than flap events, and the system settles in Full.
  const auto reconfigs = trace::get_reconfigs(uav.system().trace());
  EXPECT_LE(reconfigs.size(), 5u);
  EXPECT_EQ(uav.system().scram().current_config(), kFullService);
  const props::TraceReport report =
      props::check_trace(uav.system().trace(), uav.spec());
  EXPECT_TRUE(report.all_hold()) << props::render(report);
}

TEST(UavScenario, SafeInterpositionRoutesFullToReducedViaMinimal) {
  // Full and Reduced are both unsafe; under the section 5.3 transform the
  // alternator failure routes Full -> Minimal (safe) first, and the
  // deferred demand then brings the system to Reduced.
  const core::ReconfigSpec interposed =
      analysis::with_safe_interposition(make_uav_spec());
  core::System system(interposed);
  UavPlant plant(42);
  system.add_app(std::make_unique<AutopilotApp>(plant));
  system.add_app(std::make_unique<FcsApp>(plant));
  system.run(5);
  system.set_factor(kPowerFactor,
                    static_cast<std::int64_t>(
                        env::PowerState::kSingleAlternator));
  system.run(25);

  const auto reconfigs = trace::get_reconfigs(system.trace());
  ASSERT_EQ(reconfigs.size(), 2u);
  EXPECT_EQ(reconfigs[0].to, kMinimalService);
  EXPECT_EQ(reconfigs[1].to, kReducedService);
  EXPECT_EQ(system.scram().current_config(), kReducedService);
  const props::TraceReport report =
      props::check_trace(system.trace(), interposed);
  EXPECT_TRUE(report.all_hold()) << props::render(report);
}

TEST(UavScenario, BatteryDepletionReachesMinimalAndStays) {
  UavOptions options;
  options.electrical.battery_capacity_wh = 0.02;  // tiny battery
  options.electrical.battery_drain_w = 120.0;
  UavSystem uav(options);
  uav.run(5);
  uav.electrical().fail_alternator(0);
  uav.electrical().fail_alternator(1);
  uav.run(100);  // 2 simulated seconds: battery depletes mid-run

  EXPECT_EQ(uav.electrical().electrical().power_state(),
            env::PowerState::kDepleted);
  // Depleted also maps to Minimal Service: no further reconfiguration.
  EXPECT_EQ(uav.system().scram().current_config(), kMinimalService);
}

TEST(UavScenario, FullRunSatisfiesAllProperties) {
  UavSystem uav;
  uav.run(5);
  uav.autopilot().engage(ApMode::kClimbTo, 5600.0);
  uav.run(200);
  uav.electrical().fail_alternator(0);
  uav.run(50);
  uav.autopilot().engage(ApMode::kAltitudeHold, 5400.0);
  uav.run(200);
  uav.electrical().fail_alternator(1);
  uav.run(50);
  uav.electrical().repair_alternator(0);
  uav.run(50);
  uav.electrical().repair_alternator(1);
  uav.run(50);

  EXPECT_EQ(uav.system().scram().current_config(), kFullService);
  const props::TraceReport report =
      props::check_trace(uav.system().trace(), uav.spec());
  EXPECT_GE(report.reconfig_count, 3u);
  EXPECT_TRUE(report.all_hold()) << props::render(report);
}

}  // namespace
}  // namespace arfs::avionics
