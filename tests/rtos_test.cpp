#include <gtest/gtest.h>

#include <memory>

#include "arfs/common/check.hpp"
#include "arfs/rtos/executive.hpp"
#include "arfs/rtos/health.hpp"
#include "arfs/rtos/partition.hpp"
#include "arfs/rtos/schedule.hpp"

namespace arfs::rtos {
namespace {

Partition::Entry counting_entry(int& count, SimDuration consumed = 100) {
  return [&count, consumed](Cycle) {
    ++count;
    return ActivationResult{consumed, true, {}};
  };
}

TEST(Partition, RejectsBadArguments) {
  EXPECT_THROW(Partition(PartitionId{1}, "p", ProcessorId{1}, AppId{1}, 0,
                         [](Cycle) { return ActivationResult{}; }),
               ContractViolation);
  EXPECT_THROW(
      Partition(PartitionId{1}, "p", ProcessorId{1}, AppId{1}, 100, nullptr),
      ContractViolation);
}

TEST(Partition, SetBudget) {
  int n = 0;
  Partition p(PartitionId{1}, "p", ProcessorId{1}, AppId{1}, 100,
              counting_entry(n));
  p.set_budget(50);
  EXPECT_EQ(p.budget(), 50);
  EXPECT_THROW(p.set_budget(0), ContractViolation);
}

TEST(ScheduleTable, RejectsWindowBeyondFrame) {
  ScheduleTable table(1000);
  EXPECT_THROW(
      table.add_window(Window{PartitionId{1}, ProcessorId{1}, 900, 200}),
      ContractViolation);
}

TEST(ScheduleTable, RejectsOverlapOnSameProcessor) {
  ScheduleTable table(1000);
  table.add_window(Window{PartitionId{1}, ProcessorId{1}, 0, 500});
  EXPECT_THROW(
      table.add_window(Window{PartitionId{2}, ProcessorId{1}, 400, 200}),
      ContractViolation);
}

TEST(ScheduleTable, AllowsOverlapOnDifferentProcessors) {
  ScheduleTable table(1000);
  table.add_window(Window{PartitionId{1}, ProcessorId{1}, 0, 500});
  EXPECT_NO_THROW(
      table.add_window(Window{PartitionId{2}, ProcessorId{2}, 0, 500}));
}

TEST(ScheduleTable, ActivationOrderSortsByOffset) {
  ScheduleTable table(1000);
  table.add_window(Window{PartitionId{2}, ProcessorId{1}, 500, 100});
  table.add_window(Window{PartitionId{1}, ProcessorId{1}, 0, 100});
  const auto order = table.activation_order();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0].partition, PartitionId{1});
  EXPECT_EQ(order[1].partition, PartitionId{2});
}

TEST(ScheduleTable, LoadPerProcessor) {
  ScheduleTable table(1000);
  table.add_window(Window{PartitionId{1}, ProcessorId{1}, 0, 300});
  table.add_window(Window{PartitionId{2}, ProcessorId{1}, 300, 200});
  table.add_window(Window{PartitionId{3}, ProcessorId{2}, 0, 100});
  EXPECT_EQ(table.load_on(ProcessorId{1}), 500);
  EXPECT_EQ(table.load_on(ProcessorId{2}), 100);
  EXPECT_EQ(table.load_on(ProcessorId{3}), 0);
}

class ExecutiveTest : public ::testing::Test {
 protected:
  ExecutiveTest() {
    group_.add_processor(ProcessorId{1});
    group_.add_processor(ProcessorId{2});
  }

  ScheduleTable make_schedule() {
    ScheduleTable table(10'000);
    table.add_window(Window{PartitionId{1}, ProcessorId{1}, 0, 4000});
    table.add_window(Window{PartitionId{2}, ProcessorId{2}, 0, 4000});
    return table;
  }

  failstop::ProcessorGroup group_;
  HealthMonitor health_;
  failstop::DetectorBank bank_;
};

TEST_F(ExecutiveTest, ActivatesEveryScheduledPartition) {
  CyclicExecutive exec(make_schedule(), group_, health_, bank_);
  int a = 0;
  int b = 0;
  exec.add_partition(std::make_unique<Partition>(
      PartitionId{1}, "a", ProcessorId{1}, AppId{1}, 4000,
      counting_entry(a)));
  exec.add_partition(std::make_unique<Partition>(
      PartitionId{2}, "b", ProcessorId{2}, AppId{2}, 4000,
      counting_entry(b)));

  const FrameReport report = exec.run_frame(0, 0);
  EXPECT_EQ(report.activated, 2u);
  EXPECT_EQ(report.skipped, 0u);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(exec.frames_run(), 1u);
}

TEST_F(ExecutiveTest, SkipsPartitionsOnFailedProcessors) {
  CyclicExecutive exec(make_schedule(), group_, health_, bank_);
  int a = 0;
  int b = 0;
  exec.add_partition(std::make_unique<Partition>(
      PartitionId{1}, "a", ProcessorId{1}, AppId{1}, 4000,
      counting_entry(a)));
  exec.add_partition(std::make_unique<Partition>(
      PartitionId{2}, "b", ProcessorId{2}, AppId{2}, 4000,
      counting_entry(b)));

  group_.processor(ProcessorId{2}).fail(0);
  const FrameReport report = exec.run_frame(0, 0);
  EXPECT_EQ(report.activated, 1u);
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_EQ(b, 0);
}

TEST_F(ExecutiveTest, BudgetOverrunRaisesTimingSignal) {
  CyclicExecutive exec(make_schedule(), group_, health_, bank_);
  exec.add_partition(std::make_unique<Partition>(
      PartitionId{1}, "hog", ProcessorId{1}, AppId{1}, 1000,
      [](Cycle) { return ActivationResult{5000, true, {}}; }));
  int b = 0;
  exec.add_partition(std::make_unique<Partition>(
      PartitionId{2}, "b", ProcessorId{2}, AppId{2}, 4000,
      counting_entry(b)));

  const FrameReport report = exec.run_frame(3, 30'000);
  EXPECT_EQ(report.overruns, 1u);
  EXPECT_EQ(health_.overrun_count(), 1u);
  const auto signals = bank_.drain();
  ASSERT_EQ(signals.size(), 1u);
  EXPECT_EQ(signals[0].kind, failstop::SignalKind::kTimingViolation);
  EXPECT_EQ(signals[0].app, AppId{1});
  EXPECT_EQ(signals[0].cycle, 3u);
}

TEST_F(ExecutiveTest, ApplicationFaultReachesHealthAndBank) {
  CyclicExecutive exec(make_schedule(), group_, health_, bank_);
  exec.add_partition(std::make_unique<Partition>(
      PartitionId{1}, "faulty", ProcessorId{1}, AppId{1}, 4000, [](Cycle) {
        return ActivationResult{100, false, "divide by zero"};
      }));
  int b = 0;
  exec.add_partition(std::make_unique<Partition>(
      PartitionId{2}, "b", ProcessorId{2}, AppId{2}, 4000,
      counting_entry(b)));

  const FrameReport report = exec.run_frame(0, 0);
  EXPECT_EQ(report.faults, 1u);
  ASSERT_EQ(health_.events().size(), 1u);
  EXPECT_EQ(health_.events()[0].kind, HealthEventKind::kApplicationFault);
  EXPECT_EQ(health_.events()[0].detail, "divide by zero");
  const auto signals = bank_.drain();
  ASSERT_EQ(signals.size(), 1u);
  EXPECT_EQ(signals[0].kind, failstop::SignalKind::kSoftwareFailure);
}

TEST_F(ExecutiveTest, UnscheduledPartitionRejected) {
  CyclicExecutive exec(make_schedule(), group_, health_, bank_);
  int n = 0;
  EXPECT_THROW(exec.add_partition(std::make_unique<Partition>(
                   PartitionId{9}, "x", ProcessorId{1}, AppId{9}, 100,
                   counting_entry(n))),
               ContractViolation);
}

TEST_F(ExecutiveTest, HostMismatchRejected) {
  CyclicExecutive exec(make_schedule(), group_, health_, bank_);
  int n = 0;
  // Partition 1 is scheduled on processor 1 but claims processor 2.
  EXPECT_THROW(exec.add_partition(std::make_unique<Partition>(
                   PartitionId{1}, "x", ProcessorId{2}, AppId{1}, 100,
                   counting_entry(n))),
               ContractViolation);
}

}  // namespace
}  // namespace arfs::rtos
