// Tests of modular applications (internal reconfiguration): delegation
// order, per-spec module modes, disabled modules, and operation inside a
// full System reconfiguration.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "arfs/core/modular_app.hpp"
#include "arfs/core/system.hpp"
#include "arfs/props/report.hpp"
#include "arfs/support/synthetic.hpp"

namespace arfs::core {
namespace {

using support::kChainSeverityFactor;
using support::synthetic_app;
using support::synthetic_spec;

/// Records every call into a shared journal for order verification.
class JournalModule final : public AppModule {
 public:
  JournalModule(std::string name, std::vector<std::string>& journal)
      : AppModule(std::move(name)), journal_(journal) {}

  SimDuration do_work(const ReconfigurableApp::Ctx&, int mode) override {
    journal_.push_back(name() + ":work@" + std::to_string(mode));
    return 10;
  }
  void do_halt(const ReconfigurableApp::Ctx&) override {
    journal_.push_back(name() + ":halt");
  }
  void do_prepare(const ReconfigurableApp::Ctx&, int target) override {
    journal_.push_back(name() + ":prepare@" + std::to_string(target));
  }
  void do_initialize(const ReconfigurableApp::Ctx&, int target) override {
    journal_.push_back(name() + ":init@" + std::to_string(target));
  }
  void on_volatile_lost() override {
    journal_.push_back(name() + ":lost");
  }

 private:
  std::vector<std::string>& journal_;
};

/// A modular app with modules "input" -> "control" -> "output"; the full
/// spec runs all three at mode 1, the degraded spec disables "control" and
/// drops the others to mode 0.
std::unique_ptr<ModularApp> make_app(std::vector<std::string>& journal) {
  auto app = std::make_unique<ModularApp>(synthetic_app(0), "modular");
  app->add_module(std::make_unique<JournalModule>("input", journal));
  app->add_module(std::make_unique<JournalModule>("control", journal));
  app->add_module(std::make_unique<JournalModule>("output", journal));
  app->map_spec(synthetic_spec(0, 0),
                {{"input", 1}, {"control", 1}, {"output", 1}});
  app->map_spec(synthetic_spec(0, 1), {{"input", 0}, {"output", 0}});
  return app;
}

TEST(ModularApp, RejectsDuplicateAndUnknownModules) {
  std::vector<std::string> journal;
  ModularApp app(synthetic_app(0), "m");
  app.add_module(std::make_unique<JournalModule>("x", journal));
  EXPECT_THROW(app.add_module(std::make_unique<JournalModule>("x", journal)),
               ContractViolation);
  EXPECT_THROW(app.map_spec(synthetic_spec(0, 0), {{"nope", 1}}),
               ContractViolation);
  EXPECT_THROW(app.map_spec(synthetic_spec(0, 0), {{"x", -2}}),
               ContractViolation);
}

class ModularInSystem : public ::testing::Test {
 protected:
  ModularInSystem()
      : spec_(make_spec()), system_(spec_) {
    auto app = make_app(journal_);
    app_ = app.get();
    system_.add_app(std::move(app));
  }

  static ReconfigSpec make_spec() {
    support::ChainSpecParams params;
    params.configs = 2;
    params.apps = 1;
    params.transition_bound = 8;
    return support::make_chain_spec(params);
  }

  std::vector<std::string> journal_;
  ReconfigSpec spec_;
  System system_;
  ModularApp* app_ = nullptr;
};

TEST_F(ModularInSystem, WorkRunsModulesInDeclarationOrder) {
  system_.run(1);
  ASSERT_EQ(journal_.size(), 3u);
  EXPECT_EQ(journal_[0], "input:work@1");
  EXPECT_EQ(journal_[1], "control:work@1");
  EXPECT_EQ(journal_[2], "output:work@1");
}

TEST_F(ModularInSystem, HaltRunsInReverseOrder) {
  system_.run(1);
  journal_.clear();
  system_.set_factor(kChainSeverityFactor, 1);
  system_.run(2);  // frame 1: signal; frame 2: halt
  ASSERT_GE(journal_.size(), 3u);
  EXPECT_EQ(journal_[0], "output:halt");
  EXPECT_EQ(journal_[1], "control:halt");
  EXPECT_EQ(journal_[2], "input:halt");
}

TEST_F(ModularInSystem, InternalReconfigurationRemodesModules) {
  system_.run(1);
  system_.set_factor(kChainSeverityFactor, 1);
  system_.run(6);  // full SFTA + resumed operation

  // Degraded spec: control disabled, input/output at mode 0.
  EXPECT_EQ(app_->module_mode("input"), 0);
  EXPECT_EQ(app_->module_mode("control"), kModuleOff);
  EXPECT_EQ(app_->module_mode("output"), 0);

  // Prepare/initialize carried the target modes (off = -1 for control).
  bool saw_control_prepare_off = false;
  bool saw_input_init0 = false;
  for (const std::string& entry : journal_) {
    if (entry == "control:prepare@-1") saw_control_prepare_off = true;
    if (entry == "input:init@0") saw_input_init0 = true;
  }
  EXPECT_TRUE(saw_control_prepare_off);
  EXPECT_TRUE(saw_input_init0);

  // Work after the reconfiguration skips the disabled module.
  journal_.clear();
  system_.run(1);
  ASSERT_EQ(journal_.size(), 2u);
  EXPECT_EQ(journal_[0], "input:work@0");
  EXPECT_EQ(journal_[1], "output:work@0");
}

TEST_F(ModularInSystem, ConsumedTimeSumsActiveModules) {
  system_.run(1);
  // 3 modules * 10us under the full spec, below the 500us budget: no
  // overrun raised.
  EXPECT_EQ(system_.health().overrun_count(), 0u);
}

TEST_F(ModularInSystem, PropertiesHoldWithModularApp) {
  system_.run(2);
  system_.set_factor(kChainSeverityFactor, 1);
  system_.run(10);
  const props::TraceReport report =
      props::check_trace(system_.trace(), spec_);
  EXPECT_EQ(report.reconfig_count, 1u);
  EXPECT_TRUE(report.all_hold()) << props::render(report);
}

TEST_F(ModularInSystem, VolatileLossPropagatesToModules) {
  sim::FaultPlan plan;
  plan.fail_processor(2 * 10'000, support::synthetic_processor(0));
  system_.set_fault_plan(std::move(plan));
  system_.run(3);
  bool saw_lost = false;
  for (const std::string& entry : journal_) {
    if (entry == "input:lost") saw_lost = true;
  }
  EXPECT_TRUE(saw_lost);
}

}  // namespace
}  // namespace arfs::core
