#include <gtest/gtest.h>

#include "arfs/analysis/coverage.hpp"
#include "arfs/analysis/economics.hpp"
#include "arfs/analysis/graph.hpp"
#include "arfs/analysis/timing.hpp"
#include "arfs/support/synthetic.hpp"

namespace arfs::analysis {
namespace {

using support::ChainSpecParams;
using support::make_chain_spec;
using support::synthetic_config;

TEST(TransitionGraph, ChainWithoutRecoveryIsAcyclic) {
  const core::ReconfigSpec spec = make_chain_spec({});
  const TransitionGraph g = TransitionGraph::build(spec);
  EXPECT_EQ(g.nodes().size(), 4u);
  EXPECT_FALSE(g.has_cycle());
  EXPECT_FALSE(g.find_cycle().has_value());
}

TEST(TransitionGraph, MonotoneChainEdgesOnlyGoDown) {
  const core::ReconfigSpec spec = make_chain_spec({});
  const TransitionGraph g = TransitionGraph::build(spec);
  for (const Transition& t : g.edges()) {
    EXPECT_LT(t.from.value(), t.to.value());
  }
}

TEST(TransitionGraph, RecoveryEdgesCreateCycle) {
  ChainSpecParams params;
  params.with_recovery_edges = true;
  const core::ReconfigSpec spec = make_chain_spec(params);
  const TransitionGraph g = TransitionGraph::build(spec);
  EXPECT_TRUE(g.has_cycle());
  const auto cycle = g.find_cycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_GE(cycle->size(), 2u);
  // The reported cycle is a real cycle: each hop is an edge.
  for (std::size_t i = 0; i < cycle->size(); ++i) {
    const ConfigId from = (*cycle)[i];
    const ConfigId to = (*cycle)[(i + 1) % cycle->size()];
    const auto succ = g.successors(from);
    EXPECT_NE(std::find(succ.begin(), succ.end(), to), succ.end());
  }
}

TEST(TransitionGraph, ReachabilityFromInitial) {
  const core::ReconfigSpec spec = make_chain_spec({});
  const TransitionGraph g = TransitionGraph::build(spec);
  const auto reachable = g.reachable_from(synthetic_config(0));
  EXPECT_EQ(reachable.size(), 4u);  // whole chain
  const auto from_last = g.reachable_from(synthetic_config(3));
  EXPECT_EQ(from_last.size(), 1u);  // terminal: only itself
}

TEST(TransitionGraph, CanReachSafeCoversWholeChain) {
  const core::ReconfigSpec spec = make_chain_spec({});
  const TransitionGraph g = TransitionGraph::build(spec);
  EXPECT_EQ(g.can_reach_safe(spec).size(), 4u);
}

TEST(TransitionGraph, WitnessEnvironmentActuallyInducesEdge) {
  const core::ReconfigSpec spec = make_chain_spec({});
  const TransitionGraph g = TransitionGraph::build(spec);
  for (const Transition& t : g.edges()) {
    EXPECT_EQ(spec.choose(t.from, t.witness), t.to);
  }
}

TEST(Coverage, ChainSpecDischargesAllObligations) {
  const core::ReconfigSpec spec = make_chain_spec({});
  const CoverageReport report = check_coverage(spec);
  EXPECT_TRUE(report.all_discharged());
  EXPECT_GT(report.generated, 0u);
  EXPECT_TRUE(report.failures().empty());
}

TEST(Coverage, MissingTransitionBoundDetected) {
  // Build a chain spec, then a copy-alike without one needed bound.
  core::ReconfigSpec spec;
  core::AppDecl decl;
  decl.id = support::synthetic_app(0);
  decl.name = "a";
  decl.specs = {core::FunctionalSpec{support::synthetic_spec(0, 0), "s", {},
                                     100, 200}};
  spec.declare_app(std::move(decl));
  spec.declare_factor(
      env::FactorSpec{support::kChainSeverityFactor, "sev", 0, 1, 0});
  for (int c = 0; c < 2; ++c) {
    core::Configuration config;
    config.id = synthetic_config(c);
    config.name = "c" + std::to_string(c);
    config.assignment = {{support::synthetic_app(0),
                          support::synthetic_spec(0, 0)}};
    config.placement = {{support::synthetic_app(0),
                         support::synthetic_processor(0)}};
    config.safe = (c == 1);
    spec.declare_config(std::move(config));
  }
  // Deliberately no transition bound for the 0 -> 1 edge choose() induces.
  spec.set_choose([](ConfigId, const env::EnvState& e) {
    return e.at(support::kChainSeverityFactor) == 0 ? synthetic_config(0)
                                                    : synthetic_config(1);
  });
  spec.set_initial_config(synthetic_config(0));
  spec.validate();

  const CoverageReport report = check_coverage(spec);
  EXPECT_FALSE(report.all_discharged());
  bool found = false;
  for (const Obligation& o : report.failures()) {
    if (o.description.find("T(c1,c2) defined") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Coverage, UnreachableSafeConfigDetected) {
  // Two configurations, no transitions at all: from the initial config the
  // safe one is unreachable.
  core::ReconfigSpec spec;
  core::AppDecl decl;
  decl.id = support::synthetic_app(0);
  decl.name = "a";
  decl.specs = {core::FunctionalSpec{support::synthetic_spec(0, 0), "s", {},
                                     100, 200}};
  spec.declare_app(std::move(decl));
  spec.declare_factor(
      env::FactorSpec{support::kChainSeverityFactor, "sev", 0, 1, 0});
  for (int c = 0; c < 2; ++c) {
    core::Configuration config;
    config.id = synthetic_config(c);
    config.name = "c" + std::to_string(c);
    config.assignment = {{support::synthetic_app(0),
                          support::synthetic_spec(0, 0)}};
    config.placement = {{support::synthetic_app(0),
                         support::synthetic_processor(0)}};
    config.safe = (c == 1);
    spec.declare_config(std::move(config));
  }
  spec.set_choose([](ConfigId current, const env::EnvState&) {
    return current;  // never reconfigures
  });
  spec.set_initial_config(synthetic_config(0));
  spec.validate();

  const CoverageReport report = check_coverage(spec);
  EXPECT_FALSE(report.all_discharged());
  bool found = false;
  for (const Obligation& o : report.failures()) {
    if (o.description.find("safe configuration reachable") !=
        std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Coverage, KeepDischargedMaterializesAll) {
  const core::ReconfigSpec spec = make_chain_spec({});
  const CoverageReport report = check_coverage(spec, /*keep_discharged=*/true);
  EXPECT_EQ(report.obligations.size(), report.generated);
}

TEST(Timing, WorstChainSumsBoundsAlongLongestPath) {
  ChainSpecParams params;
  params.configs = 4;
  params.transition_bound = 10;
  const core::ReconfigSpec spec = make_chain_spec(params);
  const TransitionGraph g = TransitionGraph::build(spec);
  const ChainBound bound = worst_chain_restriction(spec, g);
  ASSERT_TRUE(bound.frames.has_value());
  // Longest chain is 0 -> 1 -> 2 -> 3: three hops of 10 frames.
  EXPECT_EQ(*bound.frames, 30u);
  EXPECT_EQ(bound.chain.size(), 4u);
  EXPECT_EQ(bound.chain.front(), synthetic_config(0));
  EXPECT_EQ(bound.chain.back(), synthetic_config(3));
}

TEST(Timing, CyclicGraphIsUnbounded) {
  ChainSpecParams params;
  params.with_recovery_edges = true;
  const core::ReconfigSpec spec = make_chain_spec(params);
  const TransitionGraph g = TransitionGraph::build(spec);
  const ChainBound bound = worst_chain_restriction(spec, g);
  EXPECT_FALSE(bound.frames.has_value());
  EXPECT_NE(bound.note.find("cyclic"), std::string::npos);
}

TEST(Timing, SafeInterpositionIsMaxOfDirectHops) {
  ChainSpecParams params;
  params.configs = 4;
  params.transition_bound = 10;
  const core::ReconfigSpec spec = make_chain_spec(params);
  const InterpositionBound bound = safe_interposition_restriction(spec);
  ASSERT_TRUE(bound.frames.has_value());
  // Every unsafe config has a direct bounded hop to the safe one: max = 10,
  // versus 30 for the worst chain — the section 5.3 improvement.
  EXPECT_EQ(*bound.frames, 10u);
  EXPECT_TRUE(bound.missing_safe_edges.empty());
}

TEST(Timing, MissingSafeEdgeReported) {
  core::ReconfigSpec spec;
  core::AppDecl decl;
  decl.id = support::synthetic_app(0);
  decl.name = "a";
  decl.specs = {core::FunctionalSpec{support::synthetic_spec(0, 0), "s", {},
                                     100, 200}};
  spec.declare_app(std::move(decl));
  spec.declare_factor(
      env::FactorSpec{support::kChainSeverityFactor, "sev", 0, 2, 0});
  for (int c = 0; c < 3; ++c) {
    core::Configuration config;
    config.id = synthetic_config(c);
    config.name = "c" + std::to_string(c);
    config.assignment = {{support::synthetic_app(0),
                          support::synthetic_spec(0, 0)}};
    config.placement = {{support::synthetic_app(0),
                         support::synthetic_processor(0)}};
    config.safe = (c == 2);
    spec.declare_config(std::move(config));
  }
  // Config 0 can reach safe only via config 1: no direct bound 0 -> 2.
  spec.set_transition_bound(synthetic_config(0), synthetic_config(1), 5);
  spec.set_transition_bound(synthetic_config(1), synthetic_config(2), 5);
  spec.set_choose([](ConfigId cur, const env::EnvState&) { return cur; });
  spec.set_initial_config(synthetic_config(0));

  const InterpositionBound bound = safe_interposition_restriction(spec);
  EXPECT_FALSE(bound.frames.has_value());
  ASSERT_EQ(bound.missing_safe_edges.size(), 1u);
  EXPECT_EQ(bound.missing_safe_edges[0], synthetic_config(0));
}

TEST(Timing, CycleExposureReportsPeriod) {
  ChainSpecParams params;
  params.configs = 3;
  params.transition_bound = 7;
  params.with_recovery_edges = true;
  const core::ReconfigSpec spec = make_chain_spec(params);
  const TransitionGraph g = TransitionGraph::build(spec);
  const CycleExposure exposure = cycle_exposure(spec, g);
  EXPECT_TRUE(exposure.cyclic);
  ASSERT_TRUE(exposure.cycle_frames.has_value());
  EXPECT_EQ(*exposure.cycle_frames % 7, 0u);  // sum of 7-frame hops
  EXPECT_GE(exposure.example_cycle.size(), 2u);
}

TEST(Timing, AcyclicGraphHasNoExposure) {
  const core::ReconfigSpec spec = make_chain_spec({});
  const TransitionGraph g = TransitionGraph::build(spec);
  const CycleExposure exposure = cycle_exposure(spec, g);
  EXPECT_FALSE(exposure.cyclic);
}

TEST(Economics, MaskingVsReconfigFormulas) {
  // Paper 5.1: masking = full + failures; reconfiguration = safe + failures.
  HwEconomicsInput input;
  input.units_full_service = 6;
  input.units_safe_service = 2;
  input.max_expected_failures = 3;
  input.unit_weight_kg = 4.0;
  input.unit_power_w = 50.0;
  const HwEconomicsResult r = compute_hw_economics(input);
  EXPECT_EQ(r.masking_units, 9);
  EXPECT_EQ(r.reconfig_units, 5);
  EXPECT_EQ(r.saved_units, 4);
  EXPECT_DOUBLE_EQ(r.saved_weight_kg, 16.0);
  EXPECT_DOUBLE_EQ(r.saved_power_w, 200.0);
  EXPECT_NEAR(r.saving_fraction, 4.0 / 9.0, 1e-12);
  // reconfig units (5) <= full service units (6): no excess equipment.
  EXPECT_TRUE(r.no_excess_equipment);
}

TEST(Economics, NoExcessFlagFalseWhenSparesDominate) {
  HwEconomicsInput input;
  input.units_full_service = 3;
  input.units_safe_service = 2;
  input.max_expected_failures = 4;
  const HwEconomicsResult r = compute_hw_economics(input);
  EXPECT_FALSE(r.no_excess_equipment);  // 6 > 3
}

TEST(Economics, ZeroFailuresDegenerates) {
  HwEconomicsInput input;
  input.units_full_service = 4;
  input.units_safe_service = 4;
  input.max_expected_failures = 0;
  const HwEconomicsResult r = compute_hw_economics(input);
  EXPECT_EQ(r.saved_units, 0);
  EXPECT_DOUBLE_EQ(r.saving_fraction, 0.0);
}

TEST(Economics, InvalidInputsRejected) {
  HwEconomicsInput input;
  input.units_full_service = 2;
  input.units_safe_service = 3;  // safe > full
  input.max_expected_failures = 0;
  EXPECT_THROW((void)compute_hw_economics(input), ContractViolation);
}

TEST(Economics, HybridBetweenPureExtremes) {
  HybridInput input;
  input.units_full_service = 8;
  input.units_safe_service = 3;
  input.masked_units = 2;
  input.max_expected_failures = 3;
  const HybridResult r = compute_hybrid_economics(input);
  EXPECT_EQ(r.pure_masking_units, 11);
  EXPECT_EQ(r.pure_reconfig_units, 6);
  EXPECT_GE(r.total_units, r.pure_reconfig_units);
  EXPECT_LE(r.total_units, r.pure_masking_units);
}

TEST(Economics, RenderMentionsSavings) {
  HwEconomicsInput input;
  input.units_full_service = 6;
  input.units_safe_service = 2;
  input.max_expected_failures = 3;
  const std::string text = render(compute_hw_economics(input));
  EXPECT_NE(text.find("saved=4"), std::string::npos);
}

}  // namespace
}  // namespace arfs::analysis
