#include <gtest/gtest.h>

#include "arfs/common/check.hpp"
#include "arfs/core/configuration.hpp"
#include "arfs/core/dependency.hpp"
#include "arfs/core/reconfig_spec.hpp"
#include "arfs/core/spec.hpp"
#include "arfs/support/synthetic.hpp"

namespace arfs::core {
namespace {

TEST(ResourceDemand, AddsComponentwise) {
  const ResourceDemand sum =
      ResourceDemand{0.2, 32.0, 10.0} + ResourceDemand{0.3, 16.0, 5.0};
  EXPECT_DOUBLE_EQ(sum.cpu, 0.5);
  EXPECT_DOUBLE_EQ(sum.memory_mb, 48.0);
  EXPECT_DOUBLE_EQ(sum.power_w, 15.0);
}

TEST(ResourceDemand, FitsWithin) {
  EXPECT_TRUE(fits_within(ResourceDemand{0.5, 10, 10},
                          ResourceDemand{1.0, 20, 20}));
  EXPECT_FALSE(fits_within(ResourceDemand{1.1, 10, 10},
                           ResourceDemand{1.0, 20, 20}));
}

TEST(Configuration, SpecAndHostLookups) {
  Configuration c;
  c.assignment = {{AppId{1}, SpecId{10}}};
  c.placement = {{AppId{1}, ProcessorId{3}}};
  EXPECT_TRUE(c.runs(AppId{1}));
  EXPECT_FALSE(c.runs(AppId{2}));
  EXPECT_EQ(c.spec_of(AppId{1}), SpecId{10});
  EXPECT_EQ(c.spec_of(AppId{2}), std::nullopt);
  EXPECT_EQ(c.host_of(AppId{1}), ProcessorId{3});
}

TEST(Configuration, ProcessorsUsedDeduplicates) {
  Configuration c;
  c.placement = {{AppId{1}, ProcessorId{1}}, {AppId{2}, ProcessorId{1}},
                 {AppId{3}, ProcessorId{2}}};
  EXPECT_EQ(c.processors_used().size(), 2u);
}

TEST(DependencyGraph, RejectsSelfDependency) {
  DependencyGraph g;
  EXPECT_THROW(g.add(Dependency{AppId{1}, AppId{1}, DepPhase::kHalt, {}}),
               ContractViolation);
}

TEST(DependencyGraph, RejectsCycles) {
  DependencyGraph g;
  g.add(Dependency{AppId{2}, AppId{1}, DepPhase::kInitialize, {}});
  g.add(Dependency{AppId{3}, AppId{2}, DepPhase::kInitialize, {}});
  EXPECT_THROW(
      g.add(Dependency{AppId{1}, AppId{3}, DepPhase::kInitialize, {}}),
      ContractViolation);
}

TEST(DependencyGraph, ConstraintsFilterByPhaseAndTarget) {
  DependencyGraph g;
  g.add(Dependency{AppId{2}, AppId{1}, DepPhase::kInitialize, ConfigId{5}});
  g.add(Dependency{AppId{2}, AppId{3}, DepPhase::kHalt, {}});

  EXPECT_EQ(g.constraints_on(AppId{2}, DepPhase::kInitialize, ConfigId{5})
                .size(), 1u);
  EXPECT_TRUE(g.constraints_on(AppId{2}, DepPhase::kInitialize, ConfigId{6})
                  .empty());
  EXPECT_EQ(g.constraints_on(AppId{2}, DepPhase::kHalt, ConfigId{6}).size(),
            1u);
  EXPECT_TRUE(g.constraints_on(AppId{1}, DepPhase::kHalt, ConfigId{5})
                  .empty());
}

TEST(DependencyGraph, LongestChainCountsEdges) {
  DependencyGraph g;
  g.add(Dependency{AppId{2}, AppId{1}, DepPhase::kInitialize, {}});
  g.add(Dependency{AppId{3}, AppId{2}, DepPhase::kInitialize, {}});
  g.add(Dependency{AppId{5}, AppId{4}, DepPhase::kHalt, {}});
  EXPECT_EQ(g.longest_chain(DepPhase::kInitialize, ConfigId{1}), 2u);
  EXPECT_EQ(g.longest_chain(DepPhase::kHalt, ConfigId{1}), 1u);
  EXPECT_EQ(g.longest_chain(DepPhase::kPrepare, ConfigId{1}), 0u);
}

class ReconfigSpecTest : public ::testing::Test {
 protected:
  static AppDecl app(std::uint32_t id, std::uint32_t spec) {
    AppDecl a;
    a.id = AppId{id};
    a.name = "a" + std::to_string(id);
    a.specs = {FunctionalSpec{SpecId{spec}, "s", {}, 100, 200}};
    return a;
  }

  static Configuration config(std::uint32_t id, bool safe = false) {
    Configuration c;
    c.id = ConfigId{id};
    c.name = "c" + std::to_string(id);
    c.safe = safe;
    return c;
  }
};

TEST_F(ReconfigSpecTest, ValidSpecPasses) {
  ReconfigSpec spec;
  spec.declare_app(app(1, 10));
  Configuration c = config(1, true);
  c.assignment = {{AppId{1}, SpecId{10}}};
  c.placement = {{AppId{1}, ProcessorId{1}}};
  spec.declare_config(std::move(c));
  spec.declare_factor(env::FactorSpec{FactorId{1}, "f", 0, 1, 0});
  spec.set_choose([](ConfigId cur, const env::EnvState&) { return cur; });
  spec.set_initial_config(ConfigId{1});
  EXPECT_NO_THROW(spec.validate());
}

TEST_F(ReconfigSpecTest, MissingSafeConfigFails) {
  ReconfigSpec spec;
  spec.declare_app(app(1, 10));
  Configuration c = config(1, /*safe=*/false);
  c.assignment = {{AppId{1}, SpecId{10}}};
  c.placement = {{AppId{1}, ProcessorId{1}}};
  spec.declare_config(std::move(c));
  spec.set_choose([](ConfigId cur, const env::EnvState&) { return cur; });
  spec.set_initial_config(ConfigId{1});
  EXPECT_THROW(spec.validate(), Error);
}

TEST_F(ReconfigSpecTest, AssignmentMustUseOwnSpecs) {
  ReconfigSpec spec;
  spec.declare_app(app(1, 10));
  spec.declare_app(app(2, 20));
  Configuration c = config(1, true);
  c.assignment = {{AppId{1}, SpecId{20}}};  // app 2's spec
  c.placement = {{AppId{1}, ProcessorId{1}}};
  spec.declare_config(std::move(c));
  spec.set_choose([](ConfigId cur, const env::EnvState&) { return cur; });
  spec.set_initial_config(ConfigId{1});
  EXPECT_THROW(spec.validate(), Error);
}

TEST_F(ReconfigSpecTest, AssignedAppMustBePlaced) {
  ReconfigSpec spec;
  spec.declare_app(app(1, 10));
  Configuration c = config(1, true);
  c.assignment = {{AppId{1}, SpecId{10}}};  // no placement
  spec.declare_config(std::move(c));
  spec.set_choose([](ConfigId cur, const env::EnvState&) { return cur; });
  spec.set_initial_config(ConfigId{1});
  EXPECT_THROW(spec.validate(), Error);
}

TEST_F(ReconfigSpecTest, PlacedAppMustBeAssigned) {
  ReconfigSpec spec;
  spec.declare_app(app(1, 10));
  Configuration c = config(1, true);
  c.assignment = {{AppId{1}, SpecId{10}}};
  c.placement = {{AppId{1}, ProcessorId{1}}, {AppId{2}, ProcessorId{2}}};
  spec.declare_config(std::move(c));
  spec.set_choose([](ConfigId cur, const env::EnvState&) { return cur; });
  spec.set_initial_config(ConfigId{1});
  EXPECT_THROW(spec.validate(), Error);
}

TEST_F(ReconfigSpecTest, InitialConfigMustBeDeclared) {
  ReconfigSpec spec;
  spec.declare_app(app(1, 10));
  Configuration c = config(1, true);
  c.assignment = {{AppId{1}, SpecId{10}}};
  c.placement = {{AppId{1}, ProcessorId{1}}};
  spec.declare_config(std::move(c));
  spec.set_choose([](ConfigId cur, const env::EnvState&) { return cur; });
  spec.set_initial_config(ConfigId{9});
  EXPECT_THROW(spec.validate(), Error);
}

TEST_F(ReconfigSpecTest, DuplicateSpecIdsRejected) {
  ReconfigSpec spec;
  spec.declare_app(app(1, 10));
  EXPECT_THROW(spec.declare_app(app(2, 10)), ContractViolation);
}

TEST_F(ReconfigSpecTest, TransitionBoundLookup) {
  ReconfigSpec spec;
  spec.set_transition_bound(ConfigId{1}, ConfigId{2}, 8);
  EXPECT_EQ(spec.transition_bound(ConfigId{1}, ConfigId{2}), Cycle{8});
  EXPECT_FALSE(spec.transition_bound(ConfigId{2}, ConfigId{1}).has_value());
  EXPECT_THROW(spec.set_transition_bound(ConfigId{1}, ConfigId{3}, 0),
               ContractViolation);
}

TEST_F(ReconfigSpecTest, SpecLookupHelpers) {
  ReconfigSpec spec;
  spec.declare_app(app(1, 10));
  EXPECT_TRUE(spec.has_spec(SpecId{10}));
  EXPECT_EQ(spec.app_of_spec(SpecId{10}), AppId{1});
  EXPECT_EQ(spec.spec(SpecId{10}).name, "s");
  EXPECT_THROW((void)spec.spec(SpecId{99}), Error);
  EXPECT_THROW((void)spec.app_of_spec(SpecId{99}), Error);
}

TEST(SyntheticSpecs, ChainSpecValidates) {
  const ReconfigSpec spec =
      support::make_chain_spec(support::ChainSpecParams{});
  EXPECT_NO_THROW(spec.validate());
  EXPECT_EQ(spec.configs().size(), 4u);
  EXPECT_EQ(spec.safe_configs().size(), 1u);
}

TEST(SyntheticSpecs, RandomSpecDeterministicAndValid) {
  support::RandomSpecParams params;
  params.apps = 4;
  params.configs = 5;
  params.dependencies = 2;
  const ReconfigSpec a = support::make_random_spec(params, 7);
  const ReconfigSpec b = support::make_random_spec(params, 7);
  EXPECT_NO_THROW(a.validate());
  // Determinism: identical structure and identical choose behaviour.
  ASSERT_EQ(a.configs().size(), b.configs().size());
  for (const env::EnvState& e : a.factors().enumerate_states()) {
    for (const auto& [id, cfg] : a.configs()) {
      EXPECT_EQ(a.choose(id, e), b.choose(id, e));
    }
  }
}

}  // namespace
}  // namespace arfs::core
