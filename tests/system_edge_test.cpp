// Edge cases of the assembled System: applications turning off and on
// across configurations, the SCRAM's stable-storage protocol record, storage
// history, budget enforcement scope, and degenerate failure situations.
#include <gtest/gtest.h>

#include <memory>

#include "arfs/core/system.hpp"
#include "arfs/props/report.hpp"
#include "arfs/support/simple_app.hpp"
#include "arfs/support/synthetic.hpp"
#include "arfs/trace/reconfigs.hpp"

namespace arfs::core {
namespace {

using support::SimpleApp;
using support::synthetic_app;
using support::synthetic_config;
using support::synthetic_processor;
using support::synthetic_spec;

constexpr FactorId kMode{77};

/// Two configs: app 1 runs in both; app 2 runs only in config 0 (it is off
/// in config 1). Factor kMode selects the config.
ReconfigSpec off_on_spec() {
  ReconfigSpec spec;
  for (std::size_t a = 0; a < 2; ++a) {
    AppDecl decl;
    decl.id = synthetic_app(a);
    decl.name = "app" + std::to_string(a);
    decl.specs = {FunctionalSpec{synthetic_spec(a, 0), "s", {}, 100, 400}};
    spec.declare_app(std::move(decl));
  }
  spec.declare_factor(env::FactorSpec{kMode, "mode", 0, 1, 0});

  Configuration both;
  both.id = synthetic_config(0);
  both.name = "both-on";
  both.assignment = {{synthetic_app(0), synthetic_spec(0, 0)},
                     {synthetic_app(1), synthetic_spec(1, 0)}};
  both.placement = {{synthetic_app(0), synthetic_processor(0)},
                    {synthetic_app(1), synthetic_processor(1)}};
  spec.declare_config(std::move(both));

  Configuration solo;
  solo.id = synthetic_config(1);
  solo.name = "app2-off";
  solo.assignment = {{synthetic_app(0), synthetic_spec(0, 0)}};
  solo.placement = {{synthetic_app(0), synthetic_processor(0)}};
  solo.safe = true;
  spec.declare_config(std::move(solo));

  for (const std::size_t i : {0u, 1u}) {
    for (const std::size_t j : {0u, 1u}) {
      spec.set_transition_bound(synthetic_config(i), synthetic_config(j), 8);
    }
  }
  spec.set_choose([](ConfigId, const env::EnvState& e) {
    return e.at(kMode) == 0 ? synthetic_config(0) : synthetic_config(1);
  });
  spec.set_initial_config(synthetic_config(0));
  spec.validate();
  return spec;
}

TEST(SystemOffOn, AppTurnsOffAndStopsWorking) {
  const ReconfigSpec spec = off_on_spec();
  System system(spec);
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(0), "a"));
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(1), "b"));
  system.run(5);
  system.set_factor(kMode, 1);
  system.run(10);

  const auto& app1 = static_cast<SimpleApp&>(system.app(synthetic_app(1)));
  EXPECT_FALSE(app1.current_spec().has_value());
  const std::uint64_t at_off = app1.work_count();
  system.run(10);
  EXPECT_EQ(app1.work_count(), at_off);  // no further AFTAs while off

  const props::TraceReport report = props::check_trace(system.trace(), spec);
  EXPECT_TRUE(report.all_hold()) << props::render(report);
}

TEST(SystemOffOn, AppTurnsBackOnAndResumes) {
  const ReconfigSpec spec = off_on_spec();
  System system(spec);
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(0), "a"));
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(1), "b"));
  system.run(5);
  system.set_factor(kMode, 1);
  system.run(10);
  system.set_factor(kMode, 0);
  system.run(10);

  const auto& app1 = static_cast<SimpleApp&>(system.app(synthetic_app(1)));
  EXPECT_EQ(app1.current_spec(), synthetic_spec(1, 0));
  EXPECT_GT(app1.work_count(), 0u);
  EXPECT_EQ(system.scram().current_config(), synthetic_config(0));

  const props::TraceReport report = props::check_trace(system.trace(), spec);
  EXPECT_TRUE(report.all_hold()) << props::render(report);
}

TEST(SystemProtocolRecord, ScramWritesConfigurationStatus) {
  const ReconfigSpec spec = off_on_spec();
  System system(spec);
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(0), "a"));
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(1), "b"));
  system.run(3);

  // Normal operation: the recorded status is "normal".
  const auto& scram_proc = system.processors().processor(
      system.scram_processor());
  const auto status =
      scram_proc.poll_stable().read_as<std::string>("scram/a1/status");
  ASSERT_TRUE(status);
  EXPECT_EQ(status.value(), "normal");

  // During the halt frame the committed value becomes "halt".
  system.set_factor(kMode, 1);
  system.run(2);  // frame 3: signal; frame 4: halt (committed at end)
  const auto halt_status =
      scram_proc.poll_stable().read_as<std::string>("scram/a1/status");
  ASSERT_TRUE(halt_status);
  EXPECT_EQ(halt_status.value(), "halt");
}

TEST(SystemHistory, StorageHistoryRecordsCommits) {
  const ReconfigSpec spec = off_on_spec();
  SystemOptions options;
  options.record_storage_history = true;
  System system(spec, options);
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(0), "a"));
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(1), "b"));
  system.run(5);

  const auto& proc = system.processors().processor(synthetic_processor(0));
  EXPECT_GE(proc.poll_stable().history().size(), 5u);  // work_count commits
}

TEST(SystemNoTrace, RecordTraceOffKeepsTraceEmpty) {
  const ReconfigSpec spec = off_on_spec();
  SystemOptions options;
  options.record_trace = false;
  System system(spec, options);
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(0), "a"));
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(1), "b"));
  system.run(50);
  EXPECT_TRUE(system.trace().empty());
  EXPECT_EQ(system.stats().frames_run, 50u);
}

TEST(SystemBudget, OverrunOnlyCheckedForNormalFrames) {
  // A forced overrun scheduled during a reconfiguration frame is charged
  // when the application next runs a normal AFTA, not during phases.
  const ReconfigSpec spec = off_on_spec();
  System system(spec);
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(0), "a"));
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(1), "b"));

  sim::FaultPlan plan;
  plan.timing_overrun(6 * 10'000, synthetic_app(0));  // during the SFTA
  system.set_fault_plan(std::move(plan));
  system.run(5);
  system.set_factor(kMode, 1);
  system.run(15);
  EXPECT_EQ(system.health().overrun_count(), 1u);
}

TEST(SystemDegenerate, ScramProcessorFailureFreezesReconfiguration) {
  // The architecture assumes a dependable SCRAM host (section 3); this test
  // documents what the simulation does if that assumption is violated: the
  // protocol record stops, but applications keep running their AFTAs.
  const ReconfigSpec spec = off_on_spec();
  System system(spec);
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(0), "a"));
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(1), "b"));
  system.run(2);
  system.processors().processor(system.scram_processor()).fail(2);
  system.run(10);

  const auto& app0 = static_cast<SimpleApp&>(system.app(synthetic_app(0)));
  EXPECT_EQ(app0.work_count(), 12u);
}

TEST(SystemDegenerate, TargetHostDownStallsAndSignals) {
  // Config 1 places app 0 on processor 0; if that processor dies at the
  // same instant the mode demands... build: mode=1 -> config 1 (app0 on
  // proc 0). Kill processor 0 and set mode=1: initialize cannot run, the
  // application raises a fault signal, and the reconfiguration stalls
  // rather than completing incorrectly.
  const ReconfigSpec spec = off_on_spec();
  System system(spec);
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(0), "a"));
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(1), "b"));
  system.run(3);

  sim::FaultPlan plan;
  plan.fail_processor(4 * 10'000, synthetic_processor(0));
  system.set_fault_plan(std::move(plan));
  system.set_factor(kMode, 1);
  system.run(20);

  // No completed reconfiguration: the trace ends mid-reconfiguration.
  EXPECT_TRUE(trace::get_reconfigs(system.trace()).empty());
  EXPECT_TRUE(trace::incomplete_reconfig(system.trace()).has_value());
  EXPECT_GT(system.health().fault_count(), 0u);
}

}  // namespace
}  // namespace arfs::core
