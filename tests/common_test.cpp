#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "arfs/common/check.hpp"
#include "arfs/common/expected.hpp"
#include "arfs/common/ids.hpp"
#include "arfs/common/rng.hpp"
#include "arfs/common/types.hpp"

namespace arfs {
namespace {

TEST(Ids, DistinctTypesDoNotMix) {
  const AppId app{3};
  const ConfigId config{3};
  EXPECT_EQ(app.value(), config.value());
  // (AppId == ConfigId) does not compile — the whole point of strong ids.
  static_assert(!std::is_convertible_v<AppId, ConfigId>);
}

TEST(Ids, OrderingAndEquality) {
  EXPECT_LT(AppId{1}, AppId{2});
  EXPECT_EQ(AppId{7}, AppId{7});
  EXPECT_NE(AppId{7}, AppId{8});
}

TEST(Ids, HashableInUnorderedContainers) {
  std::unordered_set<AppId> set;
  set.insert(AppId{1});
  set.insert(AppId{2});
  set.insert(AppId{1});
  EXPECT_EQ(set.size(), 2u);
}

TEST(Ids, UsableAsMapKeys) {
  std::set<ConfigId> set{ConfigId{3}, ConfigId{1}, ConfigId{2}};
  EXPECT_EQ(set.begin()->value(), 1u);
}

TEST(Check, RequireThrowsOnViolation) {
  EXPECT_NO_THROW(require(true, "fine"));
  EXPECT_THROW(require(false, "broken"), ContractViolation);
}

TEST(Check, EnsureThrowsOnViolation) {
  EXPECT_NO_THROW(ensure(true, "fine"));
  EXPECT_THROW(ensure(false, "broken"), ContractViolation);
}

TEST(Check, MessageIncludesLocationAndText) {
  try {
    require(false, "my-contract");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("my-contract"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
  }
}

TEST(Expected, HoldsValue) {
  const Expected<int> e = 42;
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e.value(), 42);
  EXPECT_EQ(e.value_or(7), 42);
}

TEST(Expected, HoldsError) {
  const Expected<int> e = unexpected("nope");
  ASSERT_FALSE(e);
  EXPECT_EQ(e.error(), "nope");
  EXPECT_EQ(e.value_or(7), 7);
}

TEST(Expected, ValueOnErrorThrows) {
  const Expected<int> e = unexpected("nope");
  EXPECT_THROW((void)e.value(), ContractViolation);
}

TEST(Types, FramesToTime) {
  EXPECT_EQ(frames_to_time(0, 10'000), 0);
  EXPECT_EQ(frames_to_time(5, 10'000), 50'000);
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(99);
  EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(Rng, UniformRejectsBackwardRange) {
  Rng rng(99);
  EXPECT_THROW((void)rng.uniform(5, 4), ContractViolation);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, GaussianRoughMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.gaussian(2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(42);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace arfs
