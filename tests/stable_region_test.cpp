#include <gtest/gtest.h>

#include "arfs/core/stable_region.hpp"

namespace arfs::core {
namespace {

TEST(StableRegion, PrefixesKeys) {
  storage::StableStorage backing;
  StableRegion region(backing, "a1/");
  region.write("altitude", 5000.0);
  backing.commit(0);
  EXPECT_TRUE(backing.contains("a1/altitude"));
  EXPECT_FALSE(backing.contains("altitude"));
  ASSERT_TRUE(region.read("altitude"));
  EXPECT_DOUBLE_EQ(region.read_as<double>("altitude").value(), 5000.0);
}

TEST(StableRegion, TwoRegionsShareBackingWithoutCollision) {
  storage::StableStorage backing;
  StableRegion a(backing, "a1/");
  StableRegion b(backing, "a2/");
  a.write("x", std::int64_t{1});
  b.write("x", std::int64_t{2});
  backing.commit(0);
  EXPECT_EQ(a.read_as<std::int64_t>("x").value(), 1);
  EXPECT_EQ(b.read_as<std::int64_t>("x").value(), 2);
}

TEST(StableRegion, ReadOwnSeesStagedWrites) {
  storage::StableStorage backing;
  StableRegion region(backing, "a1/");
  region.write("k", std::int64_t{1});
  backing.commit(0);
  region.write("k", std::int64_t{2});
  EXPECT_EQ(region.read_as<std::int64_t>("k").value(), 1);
  EXPECT_EQ(region.read_own_as<std::int64_t>("k").value(), 2);
}

TEST(StableRegion, RelocateCopiesOnlyThePrefix) {
  storage::StableStorage source;
  source.write("a1/x", std::int64_t{1});
  source.write("a1/y", std::int64_t{2});
  source.write("a2/x", std::int64_t{3});
  source.commit(0);

  storage::StableStorage target;
  const std::size_t copied = StableRegion::relocate(source, target, "a1/");
  EXPECT_EQ(copied, 2u);
  target.commit(1);
  EXPECT_TRUE(target.contains("a1/x"));
  EXPECT_TRUE(target.contains("a1/y"));
  EXPECT_FALSE(target.contains("a2/x"));
}

TEST(StableRegion, RelocateCopiesCommittedValuesOnly) {
  storage::StableStorage source;
  source.write("a1/x", std::int64_t{1});
  source.commit(0);
  source.write("a1/x", std::int64_t{99});  // staged, never committed

  storage::StableStorage target;
  StableRegion::relocate(source, target, "a1/");
  target.commit(0);
  EXPECT_EQ(std::get<std::int64_t>(target.read("a1/x").value()), 1);
}

TEST(StableRegion, RelocateFromFailedProcessorsView) {
  // The exact recovery pattern: the source dropped pending writes at its
  // fail-stop; the relocated region carries the last committed frame.
  storage::StableStorage source;
  source.write("a1/state", std::int64_t{7});
  source.commit(3);
  source.write("a1/state", std::int64_t{8});
  source.drop_pending();  // fail-stop

  storage::StableStorage target;
  StableRegion::relocate(source, target, "a1/");
  target.commit(4);
  EXPECT_EQ(std::get<std::int64_t>(target.read("a1/state").value()), 7);
}

TEST(StableRegion, MissingKeyErrors) {
  storage::StableStorage backing;
  const StableRegion region(backing, "a1/");
  EXPECT_FALSE(region.read("nope"));
  EXPECT_FALSE(region.read_as<bool>("nope"));
  EXPECT_FALSE(region.contains("nope"));
}

}  // namespace
}  // namespace arfs::core
