// Crash-point sweep: fail-stop a durable processor at *every* frame of a
// mission, in parallel, and verify every recovery lands exactly on a
// committed frame boundary at or above the last durable epoch — the
// paper's §5.1 halt contract checked exhaustively rather than at a few
// hand-picked crash points.
#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "arfs/avionics/uav_system.hpp"
#include "arfs/core/system.hpp"
#include "arfs/sim/batch.hpp"
#include "arfs/support/crash_sweep.hpp"
#include "arfs/support/mission.hpp"
#include "arfs/support/simple_app.hpp"
#include "arfs/support/synthetic.hpp"

namespace arfs::support {
namespace {

using storage::durable::SyncPolicy;

/// The four policies every sweep must pass under.
std::vector<std::pair<std::string, SyncPolicy>> all_policies() {
  return {{"every-commit", SyncPolicy::every_commit()},
          {"bytes(512)", SyncPolicy::bytes(512)},
          {"frames(4)", SyncPolicy::frames(4)},
          {"hybrid(4096,8)", SyncPolicy::hybrid(4096, 8)}};
}

/// Chain-spec mission: durable processors, one SimpleApp per declared app,
/// no faults of its own — every frame is a plain commit.
MissionFactory chain_factory(SyncPolicy policy) {
  return [policy] {
    auto spec =
        std::make_shared<core::ReconfigSpec>(make_chain_spec({}));
    core::SystemOptions options;
    options.durable_storage = true;
    options.durability.snapshot_every_epochs = 7;
    options.durability.sync = policy;
    auto system = std::make_unique<core::System>(*spec, options);
    for (const core::AppDecl& decl : spec->apps()) {
      system->add_app(
          std::make_unique<SimpleApp>(decl.id, decl.name));
    }
    CrashMission mission;
    mission.keepalive = spec;
    mission.system = std::move(system);
    return mission;
  };
}

/// The paper's avionics mission: autopilot + FCS over the three service
/// configurations, with the electrical factor driving two reconfigurations
/// down and one back up. The victim (computer 1) hosts applications in
/// every configuration and is never failed by the mission itself.
MissionFactory uav_factory(SyncPolicy policy) {
  return [policy] {
    struct Bundle {
      core::ReconfigSpec spec;
      avionics::UavPlant plant;
      Bundle(core::ReconfigSpec s, std::uint64_t seed)
          : spec(std::move(s)), plant(seed) {}
    };
    avionics::UavSpecOptions spec_options;
    spec_options.dwell_frames = 10;
    auto bundle = std::make_shared<Bundle>(
        avionics::make_uav_spec(spec_options), 42);

    core::SystemOptions options;
    options.frame_length = 20'000;
    options.durable_storage = true;
    options.durability.snapshot_every_epochs = 16;
    options.durability.sync = policy;
    auto system = std::make_unique<core::System>(bundle->spec, options);
    system->add_app(
        std::make_unique<avionics::AutopilotApp>(bundle->plant));
    system->add_app(std::make_unique<avionics::FcsApp>(bundle->plant));

    MissionProfile mission(options.frame_length);
    mission.at(10, avionics::kPowerFactor, 1)
        .at(25, avionics::kPowerFactor, 2)
        .at(40, avionics::kPowerFactor, 0);
    system->set_fault_plan(mission.build());

    CrashMission out;
    out.keepalive = bundle;
    out.system = std::move(system);
    return out;
  };
}

TEST(CrashSweep, ChainMissionRecoversAtEveryFrameUnderEveryPolicy) {
  for (const auto& [name, policy] : all_policies()) {
    CrashSweepOptions options;
    options.frames = 20;
    options.victim = synthetic_processor(0);
    const CrashSweepReport report =
        run_crash_sweep(chain_factory(policy), options);
    ASSERT_EQ(report.points.size(), 20u) << name;
    EXPECT_TRUE(report.all_match())
        << name << ": " << report.mismatches << " mismatching crash points";
    if (policy.mode == storage::durable::SyncMode::kEveryCommit) {
      EXPECT_EQ(report.max_lost_frames, 0u) << name;
    }
  }
}

TEST(CrashSweep, FramesWatermarkBoundsLostFramesByTheWatermark) {
  CrashSweepOptions options;
  options.frames = 20;
  options.victim = synthetic_processor(0);
  const CrashSweepReport report =
      run_crash_sweep(chain_factory(SyncPolicy::frames(4)), options);
  EXPECT_TRUE(report.all_match());
  // The lag can never reach the watermark before the sync fires, and the
  // snapshot boundary (every 7 epochs) also flushes it.
  EXPECT_LT(report.max_lost_frames, 4u);
  EXPECT_GT(report.max_lost_frames, 0u);  // group commit really deferred
}

TEST(CrashSweep, AvionicsMissionRecoversAtEveryFrameUnderEveryPolicy) {
  for (const auto& [name, policy] : all_policies()) {
    CrashSweepOptions options;
    options.frames = 60;
    options.victim = avionics::kComputer1;
    const CrashSweepReport report =
        run_crash_sweep(uav_factory(policy), options);
    ASSERT_EQ(report.points.size(), 60u) << name;
    EXPECT_TRUE(report.all_match())
        << name << ": " << report.mismatches << " mismatching crash points";
  }
}

TEST(CrashSweep, ReportIsBitIdenticalAcrossThreadCounts) {
  const auto digest_with = [](std::size_t threads) {
    sim::BatchOptions batch;
    batch.threads = threads;
    sim::BatchRunner runner(batch);
    CrashSweepOptions options;
    options.frames = 12;
    options.victim = synthetic_processor(0);
    return run_crash_sweep(chain_factory(SyncPolicy::frames(3)), options,
                           runner)
        .digest();
  };
  EXPECT_EQ(digest_with(1), digest_with(4));
}

}  // namespace
}  // namespace arfs::support
