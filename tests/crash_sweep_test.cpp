// Crash-point sweep: fail-stop a durable processor at *every* frame of a
// mission, in parallel, and verify every recovery lands exactly on a
// committed frame boundary at or above the last durable epoch — the
// paper's §5.1 halt contract checked exhaustively rather than at a few
// hand-picked crash points.
#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "arfs/avionics/uav_system.hpp"
#include "arfs/core/system.hpp"
#include "arfs/sim/batch.hpp"
#include "arfs/support/crash_sweep.hpp"
#include "arfs/support/mission.hpp"
#include "arfs/support/simple_app.hpp"
#include "arfs/support/synthetic.hpp"

namespace arfs::support {
namespace {

using storage::durable::SyncPolicy;

/// The four policies every sweep must pass under.
std::vector<std::pair<std::string, SyncPolicy>> all_policies() {
  return {{"every-commit", SyncPolicy::every_commit()},
          {"bytes(512)", SyncPolicy::bytes(512)},
          {"frames(4)", SyncPolicy::frames(4)},
          {"hybrid(4096,8)", SyncPolicy::hybrid(4096, 8)}};
}

/// Chain-spec mission: durable processors, one SimpleApp per declared app,
/// no faults of its own — every frame is a plain commit. With `shipping`
/// every durable processor also feeds a warm-standby replica over the
/// TDMA shipping slots (the warm-start sweeps).
MissionFactory chain_factory(SyncPolicy policy, bool shipping = false) {
  return [policy, shipping] {
    auto spec =
        std::make_shared<core::ReconfigSpec>(make_chain_spec({}));
    core::SystemOptions options;
    options.durable_storage = true;
    options.journal_shipping = shipping;
    options.durability.snapshot_every_epochs = 7;
    options.durability.sync = policy;
    auto system = std::make_unique<core::System>(*spec, options);
    for (const core::AppDecl& decl : spec->apps()) {
      system->add_app(
          std::make_unique<SimpleApp>(decl.id, decl.name));
    }
    CrashMission mission;
    mission.keepalive = spec;
    mission.system = std::move(system);
    return mission;
  };
}

/// The paper's avionics mission: autopilot + FCS over the three service
/// configurations, with the electrical factor driving two reconfigurations
/// down and one back up. The victim (computer 1) hosts applications in
/// every configuration and is never failed by the mission itself.
MissionFactory uav_factory(SyncPolicy policy, bool shipping = false) {
  return [policy, shipping] {
    struct Bundle {
      core::ReconfigSpec spec;
      avionics::UavPlant plant;
      Bundle(core::ReconfigSpec s, std::uint64_t seed)
          : spec(std::move(s)), plant(seed) {}
    };
    avionics::UavSpecOptions spec_options;
    spec_options.dwell_frames = 10;
    auto bundle = std::make_shared<Bundle>(
        avionics::make_uav_spec(spec_options), 42);

    core::SystemOptions options;
    options.frame_length = 20'000;
    options.durable_storage = true;
    options.journal_shipping = shipping;
    options.durability.snapshot_every_epochs = 16;
    options.durability.sync = policy;
    auto system = std::make_unique<core::System>(bundle->spec, options);
    system->add_app(
        std::make_unique<avionics::AutopilotApp>(bundle->plant));
    system->add_app(std::make_unique<avionics::FcsApp>(bundle->plant));

    MissionProfile mission(options.frame_length);
    mission.at(10, avionics::kPowerFactor, 1)
        .at(25, avionics::kPowerFactor, 2)
        .at(40, avionics::kPowerFactor, 0);
    system->set_fault_plan(mission.build());

    CrashMission out;
    out.keepalive = bundle;
    out.system = std::move(system);
    return out;
  };
}

TEST(CrashSweep, ChainMissionRecoversAtEveryFrameUnderEveryPolicy) {
  for (const auto& [name, policy] : all_policies()) {
    CrashSweepOptions options;
    options.frames = 20;
    options.victim = synthetic_processor(0);
    const CrashSweepReport report =
        run_crash_sweep(chain_factory(policy), options);
    ASSERT_EQ(report.points.size(), 20u) << name;
    EXPECT_TRUE(report.all_match())
        << name << ": " << report.mismatches << " mismatching crash points";
    if (policy.mode == storage::durable::SyncMode::kEveryCommit) {
      EXPECT_EQ(report.max_lost_frames, 0u) << name;
    }
  }
}

TEST(CrashSweep, FramesWatermarkBoundsLostFramesByTheWatermark) {
  CrashSweepOptions options;
  options.frames = 20;
  options.victim = synthetic_processor(0);
  const CrashSweepReport report =
      run_crash_sweep(chain_factory(SyncPolicy::frames(4)), options);
  EXPECT_TRUE(report.all_match());
  // The lag can never reach the watermark before the sync fires, and the
  // snapshot boundary (every 7 epochs) also flushes it.
  EXPECT_LT(report.max_lost_frames, 4u);
  EXPECT_GT(report.max_lost_frames, 0u);  // group commit really deferred
}

TEST(CrashSweep, AvionicsMissionRecoversAtEveryFrameUnderEveryPolicy) {
  for (const auto& [name, policy] : all_policies()) {
    CrashSweepOptions options;
    options.frames = 60;
    options.victim = avionics::kComputer1;
    const CrashSweepReport report =
        run_crash_sweep(uav_factory(policy), options);
    ASSERT_EQ(report.points.size(), 60u) << name;
    EXPECT_TRUE(report.all_match())
        << name << ": " << report.mismatches << " mismatching crash points";
  }
}

TEST(CrashSweep, TornWriteStillRecoversOnACommitBoundary) {
  // The final in-flight write tears: a few buffered-tail bytes land on the
  // durable image. Recovery must truncate the torn record, and the
  // durable-epoch floor still holds — synced bytes are untouched.
  for (const auto& [name, policy] : all_policies()) {
    CrashSweepOptions options;
    options.frames = 20;
    options.victim = synthetic_processor(0);
    options.io_fault = CrashSweepOptions::IoFault::kTornWrite;
    const CrashSweepReport report =
        run_crash_sweep(chain_factory(policy), options);
    EXPECT_TRUE(report.all_match())
        << name << ": " << report.mismatches << " mismatching crash points";
    // Group-commit policies carry a buffered tail most frames, so the tear
    // really deposits torn bytes recovery has to truncate. (Under
    // every-commit the tail is empty at the boundary — nothing to tear.)
    if (policy.mode != storage::durable::SyncMode::kEveryCommit) {
      bool truncated = false;
      for (const CrashPoint& p : report.points) {
        truncated = truncated || p.journal_truncated;
      }
      EXPECT_TRUE(truncated) << name;
    }
  }
}

TEST(CrashSweep, BitFlipStillRecoversOnACommitBoundary) {
  // A latent media fault flips one durable bit at every crash point. It may
  // land in *synced* records, so the durable-epoch floor is waived — but
  // recovery must still land on an exact frame-commit boundary, never on
  // torn state.
  for (const auto& [name, policy] : all_policies()) {
    CrashSweepOptions options;
    options.frames = 20;
    options.victim = synthetic_processor(0);
    options.io_fault = CrashSweepOptions::IoFault::kBitFlip;
    const CrashSweepReport report =
        run_crash_sweep(chain_factory(policy), options);
    EXPECT_TRUE(report.all_match())
        << name << ": " << report.mismatches << " mismatching crash points";
  }
}

TEST(CrashSweep, WarmStartReplicaMatchesRecoveryAtEveryFrame) {
  // The warm-start contract at every crash point of the chain mission,
  // under every sync policy: after the post-crash catch-up the standby
  // replica's fingerprint is bit-identical to the recovered
  // commit-boundary fingerprint.
  for (const auto& [name, policy] : all_policies()) {
    CrashSweepOptions options;
    options.frames = 20;
    options.victim = synthetic_processor(0);
    options.warm_start = true;
    const CrashSweepReport report =
        run_crash_sweep(chain_factory(policy, /*shipping=*/true), options);
    EXPECT_TRUE(report.all_match()) << name << ": " << report.mismatches
                                    << " recovery / "
                                    << report.replica_mismatches
                                    << " replica mismatches";
    EXPECT_EQ(report.replica_mismatches, 0u) << name;
  }
}

TEST(CrashSweep, WarmStartAvionicsReplicaMatchesUnderEveryPolicy) {
  for (const auto& [name, policy] : all_policies()) {
    CrashSweepOptions options;
    options.frames = 30;
    options.victim = avionics::kComputer1;
    options.warm_start = true;
    const CrashSweepReport report =
        run_crash_sweep(uav_factory(policy, /*shipping=*/true), options);
    EXPECT_TRUE(report.all_match()) << name;
    EXPECT_EQ(report.replica_mismatches, 0u) << name;
  }
}

TEST(CrashSweep, ReportIsBitIdenticalAcrossThreadCounts) {
  const auto digest_with = [](std::size_t threads) {
    sim::BatchOptions batch;
    batch.threads = threads;
    sim::BatchRunner runner(batch);
    CrashSweepOptions options;
    options.frames = 12;
    options.victim = synthetic_processor(0);
    return run_crash_sweep(chain_factory(SyncPolicy::frames(3)), options,
                           runner)
        .digest();
  };
  EXPECT_EQ(digest_with(1), digest_with(4));
}

TEST(CrashSweep, WarmStartReportIsBitIdenticalAcrossThreadCounts) {
  const auto digest_with = [](std::size_t threads) {
    sim::BatchOptions batch;
    batch.threads = threads;
    sim::BatchRunner runner(batch);
    CrashSweepOptions options;
    options.frames = 10;
    options.victim = synthetic_processor(0);
    options.warm_start = true;
    return run_crash_sweep(
               chain_factory(SyncPolicy::frames(3), /*shipping=*/true),
               options, runner)
        .digest();
  };
  EXPECT_EQ(digest_with(1), digest_with(4));
}

}  // namespace
}  // namespace arfs::support
