// System-level crash-recovery: a durable processor is fail-stopped mid
// mission, restarts, and recovers its committed stable storage from
// snapshot + journal replay.
//
// The acceptance scenario from the paper's fail-stop contract (§5.1): the
// halted processor's pollable state must be *exactly* the committed state at
// the end of the last fully completed frame — bit-identical, never a torn
// half-frame — and that must stay true when the halt tears the final journal
// record on the device.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "arfs/core/system.hpp"
#include "arfs/props/report.hpp"
#include "arfs/sim/batch.hpp"
#include "arfs/sim/fault_plan.hpp"
#include "arfs/support/mission.hpp"
#include "arfs/support/simple_app.hpp"
#include "arfs/support/synthetic.hpp"

namespace arfs::core {
namespace {

constexpr Cycle kFrames = 30;

/// Durable chain-spec system with one SimpleApp per declared app. The spec
/// must outlive the system.
std::unique_ptr<System> make_durable_system(const ReconfigSpec& spec,
                                            SystemOptions options) {
  options.durable_storage = true;
  auto system = std::make_unique<System>(spec, options);
  for (const AppDecl& decl : spec.apps()) {
    system->add_app(std::make_unique<support::SimpleApp>(decl.id, decl.name));
  }
  return system;
}

/// Runs `frames` frames, returning the victim's committed fingerprint after
/// each frame.
std::vector<std::uint64_t> run_capturing(System& system, ProcessorId victim,
                                         Cycle frames) {
  std::vector<std::uint64_t> after;
  after.reserve(frames);
  for (Cycle f = 0; f < frames; ++f) {
    system.run_frame();
    after.push_back(
        system.processors().processor(victim).poll_stable().fingerprint());
  }
  return after;
}

TEST(RecoveryFault, HaltMidMissionRecoversPreHaltCommittedStateBitIdentical) {
  const ReconfigSpec spec = support::make_chain_spec({});
  SystemOptions options;
  options.durability.snapshot_every_epochs = 5;
  auto system = make_durable_system(spec, options);
  const ProcessorId victim = support::synthetic_processor(0);

  constexpr Cycle kFail = 12;
  constexpr Cycle kRepair = 18;
  support::MissionProfile mission(options.frame_length);
  mission.fail(kFail, victim).repair(kRepair, victim);
  system->set_fault_plan(mission.build());

  const std::vector<std::uint64_t> after =
      run_capturing(*system, victim, kFrames);

  // The app had been committing state on the victim before the halt.
  ASSERT_NE(after[kFail - 2], after[kFail - 1]);

  // The halt hits at the start of frame kFail, so the last completed frame
  // is kFail-1. From the halt until the repair, peers polling the victim
  // must see exactly that frame's committed store.
  for (Cycle f = kFail; f < kRepair; ++f) {
    EXPECT_EQ(after[f], after[kFail - 1]) << "frame " << f;
  }

  // The device-level recovery ran, replayed cleanly, and found no damage
  // (every record was synced before the halt).
  const auto& recovery =
      system->processors().processor(victim).last_recovery();
  ASSERT_TRUE(recovery.has_value());
  EXPECT_FALSE(recovery->journal_truncated);
  EXPECT_TRUE(recovery->used_snapshot);
  EXPECT_EQ(system->stats().journal_truncations, 0u);

  // After the repair the processor journals onward from the recovered
  // state: commits resume and change the store again.
  EXPECT_NE(after[kFrames - 1], after[kFail - 1]);
}

TEST(RecoveryFault, TornFinalRecordRollsBackExactlyTheUnsyncedFrame) {
  const ReconfigSpec spec = support::make_chain_spec({});
  SystemOptions options;
  auto system = make_durable_system(spec, options);
  const ProcessorId victim = support::synthetic_processor(0);

  // Frame 9: the journal sync fails, so frame 9's record stays buffered,
  // and the armed tear deposits 7 bytes of it on the device at the halt.
  // Frame 10: fail-stop. Recovery must truncate the torn record and land on
  // frame 8's commit — the torn frame is never partially applied.
  constexpr Cycle kFaulty = 9;
  support::MissionProfile mission(options.frame_length);
  mission.journal_sync_fail(kFaulty, victim)
      .journal_torn_write(kFaulty, victim, 7)
      .fail(kFaulty + 1, victim);
  system->set_fault_plan(mission.build());

  const std::vector<std::uint64_t> after =
      run_capturing(*system, victim, kFrames);

  EXPECT_EQ(after[kFaulty + 1], after[kFaulty - 1]);
  EXPECT_NE(after[kFaulty], after[kFaulty - 1]);  // frame 9 did commit...
  // ...but its record never became durable, so recovery rolled it back.

  const auto& recovery =
      system->processors().processor(victim).last_recovery();
  ASSERT_TRUE(recovery.has_value());
  EXPECT_TRUE(recovery->journal_truncated);
  EXPECT_EQ(system->stats().journal_truncations, 1u);
  EXPECT_EQ(system->stats().journal_faults_injected, 2u);
}

TEST(RecoveryFault, SyncFailureAloneLosesTheCommitWithoutTruncation) {
  const ReconfigSpec spec = support::make_chain_spec({});
  SystemOptions options;
  auto system = make_durable_system(spec, options);
  const ProcessorId victim = support::synthetic_processor(0);

  constexpr Cycle kFaulty = 9;
  support::MissionProfile mission(options.frame_length);
  mission.journal_sync_fail(kFaulty, victim).fail(kFaulty + 1, victim);
  system->set_fault_plan(mission.build());

  const std::vector<std::uint64_t> after =
      run_capturing(*system, victim, kFrames);

  // Same rollback boundary, but the record vanished cleanly with the device
  // buffer — nothing torn, nothing truncated.
  EXPECT_EQ(after[kFaulty + 1], after[kFaulty - 1]);
  const auto& recovery =
      system->processors().processor(victim).last_recovery();
  ASSERT_TRUE(recovery.has_value());
  EXPECT_FALSE(recovery->journal_truncated);
  EXPECT_EQ(system->stats().journal_truncations, 0u);
}

TEST(RecoveryFault, GroupCommitHaltRollsBackToLastWatermarkSync) {
  const ReconfigSpec spec = support::make_chain_spec({});
  SystemOptions options;
  options.durability.sync = storage::durable::SyncPolicy::frames(4);
  auto system = make_durable_system(spec, options);
  const ProcessorId victim = support::synthetic_processor(0);

  // Halt at frame 11: epochs 1..11 committed in memory, but the frames(4)
  // watermark synced the journal only through epoch 8. Recovery must land
  // on frame 8's commit — whole frames lost, nothing torn.
  constexpr Cycle kFail = 11;
  support::MissionProfile mission(options.frame_length);
  mission.fail(kFail, victim).repair(kFail + 5, victim);
  system->set_fault_plan(mission.build());

  const std::vector<std::uint64_t> after =
      run_capturing(*system, victim, kFrames);

  EXPECT_EQ(after[kFail], after[8 - 1]);
  EXPECT_NE(after[kFail - 1], after[8 - 1]);  // epochs 9..11 did commit...
  // ...in memory only; the halt rolled them back as whole frames.
  const auto& recovery =
      system->processors().processor(victim).last_recovery();
  ASSERT_TRUE(recovery.has_value());
  EXPECT_EQ(recovery->last_epoch, 8u);
  EXPECT_FALSE(recovery->journal_truncated);
  EXPECT_EQ(system->stats().journal_truncations, 0u);
}

TEST(RecoveryFault, DirectiveFrameIsAHaltBoundaryThatForcesSync) {
  const ReconfigSpec spec = support::make_chain_spec({});
  SystemOptions options;
  // A watermark so large it would never sync on its own: every durable
  // byte this mission gets comes from a forced boundary sync.
  options.durability.sync = storage::durable::SyncPolicy::frames(1000);
  auto system = make_durable_system(spec, options);
  const ProcessorId victim = support::synthetic_processor(0);

  // A severity change at frame 8 drives a reconfiguration; the directive
  // frames it produces are halt boundaries, so the victim's journal is
  // forcibly synced there even though the watermark never fires. The halt
  // at frame 20 must then recover at least the last directive frame's
  // commit instead of losing the whole mission.
  constexpr Cycle kFail = 20;
  support::MissionProfile mission(options.frame_length);
  mission.at(8, support::kChainSeverityFactor, 1).fail(kFail, victim);
  system->set_fault_plan(mission.build());

  const std::vector<std::uint64_t> after =
      run_capturing(*system, victim, kFrames);

  const auto& recovery =
      system->processors().processor(victim).last_recovery();
  ASSERT_TRUE(recovery.has_value());
  const std::uint64_t recovered = recovery->last_epoch;
  // Without boundary syncs the journal would be all-buffered and recovery
  // would land on epoch 0; with them it lands on a post-reconfiguration
  // frame.
  EXPECT_GE(recovered, 9u);
  EXPECT_LT(recovered, static_cast<std::uint64_t>(kFail));
  EXPECT_EQ(after[kFail], after[recovered - 1]);
  const auto* engine =
      system->processors().processor(victim).durability();
  ASSERT_NE(engine, nullptr);
  EXPECT_GT(engine->stats().forced_syncs, 0u);
}

TEST(RecoveryFault, JournalFaultsOnNonDurableSystemAreBenign) {
  const ReconfigSpec spec = support::make_chain_spec({});
  SystemOptions options;  // durable_storage stays off
  System system(spec, options);
  for (const AppDecl& decl : spec.apps()) {
    system.add_app(std::make_unique<support::SimpleApp>(decl.id, decl.name));
  }
  support::MissionProfile mission(options.frame_length);
  mission.journal_sync_fail(5, support::synthetic_processor(0))
      .journal_torn_write(6, support::synthetic_processor(0), 3)
      .journal_bit_flip(7, support::synthetic_processor(0), 42);
  system.set_fault_plan(mission.build());
  system.run(kFrames);
  EXPECT_EQ(system.stats().journal_faults_injected, 0u);
}

TEST(RecoveryFault, PropertiesHoldThroughReconfigsWithJournalFaults) {
  const ReconfigSpec spec = support::make_chain_spec({});
  SystemOptions options;
  options.durability.snapshot_every_epochs = 4;
  auto system = make_durable_system(spec, options);
  const ProcessorId victim = support::synthetic_processor(0);

  // Reconfigurations and storage faults interleaved: severity drives the
  // chain down and back while the victim absorbs I/O faults and a halt.
  support::MissionProfile mission(options.frame_length);
  mission.at(8, support::kChainSeverityFactor, 1)
      .journal_sync_fail(14, victim)
      .journal_torn_write(14, victim, 5)
      .fail(15, victim)
      .repair(19, victim)
      .at(26, support::kChainSeverityFactor, 0)
      .journal_bit_flip(34, victim, 99);
  system->set_fault_plan(mission.build());
  system->run(44);

  const props::TraceReport report = props::check_trace(system->trace(), spec);
  EXPECT_TRUE(report.all_hold()) << props::render(report);
  EXPECT_EQ(system->stats().journal_faults_injected, 3u);
  EXPECT_EQ(system->stats().journal_truncations, 1u);
}

/// One full durable mission under a generated campaign of mixed failures
/// and journal I/O faults; digests every processor's final committed store
/// plus the storage-fault accounting.
std::uint64_t mission_digest(std::uint64_t seed) {
  const ReconfigSpec spec = support::make_chain_spec({});
  SystemOptions options;
  options.durability.snapshot_every_epochs = 6;
  auto system = make_durable_system(spec, options);

  Rng rng(seed);
  sim::CampaignParams campaign;
  campaign.horizon = 60 * options.frame_length;
  campaign.environment_changes = 6;
  campaign.processor_failures = 2;
  campaign.journal_sync_fails = 3;
  campaign.journal_torn_writes = 2;
  campaign.journal_bit_flips = 2;
  for (const ProcessorId id : system->processors().processor_ids()) {
    if (id != system->scram_processor()) campaign.processors.push_back(id);
  }
  campaign.factors = {support::kChainSeverityFactor};
  campaign.factor_min = 0;
  campaign.factor_max = 3;
  system->set_fault_plan(sim::generate_campaign(campaign, rng));
  system->run(60);

  std::uint64_t digest = 0xcbf29ce484222325ULL;
  for (const ProcessorId id : system->processors().processor_ids()) {
    digest ^= system->processors().processor(id).poll_stable().fingerprint();
    digest *= 0x100000001b3ULL;
  }
  digest ^= system->stats().journal_faults_injected * 1000003ULL;
  digest ^= system->stats().journal_truncations * 0x9E3779B97F4A7C15ULL;
  digest ^= system->stats().fault_events_applied;
  return digest;
}

TEST(RecoveryFault, CampaignRecoveryIsDeterministicAcrossThreadCounts) {
  constexpr std::size_t kJobs = 12;
  const auto digests_with = [&](std::size_t threads) {
    sim::BatchOptions options;
    options.threads = threads;
    sim::BatchRunner runner(options);
    return runner.map<std::uint64_t>(kJobs, [](std::size_t i) {
      return mission_digest(sim::job_seed(777, i));
    });
  };
  EXPECT_EQ(digests_with(1), digests_with(4));
}

}  // namespace
}  // namespace arfs::core
