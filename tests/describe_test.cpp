#include <gtest/gtest.h>

#include "arfs/avionics/uav_system.hpp"
#include "arfs/core/describe.hpp"
#include "arfs/support/synthetic.hpp"

namespace arfs::core {
namespace {

TEST(Describe, RendersAvionicsSpec) {
  const std::string text = describe(avionics::make_uav_spec());
  EXPECT_NE(text.find("applications (2)"), std::string::npos);
  EXPECT_NE(text.find("\"autopilot\""), std::string::npos);
  EXPECT_NE(text.find("configurations (3)"), std::string::npos);
  EXPECT_NE(text.find("[SAFE]"), std::string::npos);
  EXPECT_NE(text.find("[INITIAL]"), std::string::npos);
  EXPECT_NE(text.find("off"), std::string::npos);  // autopilot off in Minimal
  EXPECT_NE(text.find("waits for"), std::string::npos);  // 7.1 dependency
  EXPECT_NE(text.find("T(c1, c2) = 6"), std::string::npos);
}

TEST(Describe, RendersChainSpec) {
  support::ChainSpecParams params;
  params.dwell_frames = 9;
  const std::string text = describe(support::make_chain_spec(params));
  EXPECT_NE(text.find("dwell: 9 frames"), std::string::npos);
  EXPECT_NE(text.find("configurations (4)"), std::string::npos);
}

}  // namespace
}  // namespace arfs::core
