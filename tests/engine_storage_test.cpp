// The storage-engine contract (E20): every StorageEngine — WalSnapshot,
// Mmap, Lsm — recovers the same store at the same epoch from the same
// commit history, so crash-point sweep digests are bit-identical across
// engines under plain halts, device faults, warm starts, and quorum kills.
// Plus the sync-policy edge cases the engines share: degenerate watermarks,
// adaptive clamp bounds, SCRAM pressure, forced boundary syncs, the hoisted
// decode scratch, the block cache, and checkpoint round-trips of the
// adaptive controller state.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arfs/core/system.hpp"
#include "arfs/storage/durable/engine.hpp"
#include "arfs/storage/durable/lsm_engine.hpp"
#include "arfs/storage/stable_storage.hpp"
#include "arfs/support/crash_sweep.hpp"
#include "arfs/support/simple_app.hpp"
#include "arfs/support/synthetic.hpp"

namespace arfs {
namespace {

using storage::StableStorage;
using storage::durable::DurabilityEngine;
using storage::durable::DurableOptions;
using storage::durable::EngineKind;
using storage::durable::LsmEngine;
using storage::durable::RecoveryReport;
using storage::durable::SyncMode;
using storage::durable::SyncPolicy;
using storage::durable::kAdaptiveFracBits;
using storage::durable::make_memory_engine;

constexpr EngineKind kAllEngines[] = {
    EngineKind::kWalSnapshot, EngineKind::kMmap, EngineKind::kLsm};

std::unique_ptr<DurabilityEngine> engine_of(EngineKind kind,
                                            DurableOptions options = {}) {
  options.engine = kind;
  return make_memory_engine(options);
}

/// Commits `n` frames of deterministic writes (same shape as the
/// durable_storage_test helper, so cross-suite behavior is comparable).
void run_commits(DurabilityEngine& engine, StableStorage& store, Cycle from,
                 Cycle n) {
  for (Cycle c = from; c < from + n; ++c) {
    store.write("counter", static_cast<std::int64_t>(c));
    store.write("key" + std::to_string(c % 3), 0.5 * static_cast<double>(c));
    engine.record_commit(store, c);
    store.commit(c);
    engine.after_commit(store);
  }
}

// --- cross-engine sweep digests -------------------------------------------

support::MissionFactory chain_factory(SyncPolicy policy, EngineKind kind,
                                      bool shipping = false,
                                      std::uint32_t quorum = 0) {
  return [policy, kind, shipping, quorum] {
    auto spec =
        std::make_shared<core::ReconfigSpec>(support::make_chain_spec({}));
    core::SystemOptions options;
    options.durable_storage = true;
    options.journal_shipping = shipping;
    options.quorum_replicas = quorum;
    options.durability.snapshot_every_epochs = 7;
    options.durability.sync = policy;
    options.durability.engine = kind;
    auto system = std::make_unique<core::System>(*spec, options);
    for (const core::AppDecl& decl : spec->apps()) {
      system->add_app(
          std::make_unique<support::SimpleApp>(decl.id, decl.name));
    }
    support::CrashMission mission;
    mission.keepalive = spec;
    mission.system = std::move(system);
    return mission;
  };
}

/// Runs the same sweep under every engine and asserts each report matches
/// the WalSnapshot oracle bit-for-bit (digest) with zero mismatches.
void expect_engines_digest_identical(SyncPolicy policy,
                                     support::CrashSweepOptions options,
                                     bool shipping = false,
                                     std::uint32_t quorum = 0) {
  std::uint64_t oracle = 0;
  for (const EngineKind kind : kAllEngines) {
    const support::CrashSweepReport report = support::run_crash_sweep(
        chain_factory(policy, kind, shipping, quorum), options);
    EXPECT_EQ(report.mismatches, 0u) << to_string(kind);
    EXPECT_EQ(report.replica_mismatches, 0u) << to_string(kind);
    if (kind == EngineKind::kWalSnapshot) oracle = report.digest();
    EXPECT_EQ(report.digest(), oracle)
        << to_string(kind) << " diverged from the wal oracle";
  }
}

support::CrashSweepOptions sweep_options(Cycle frames) {
  support::CrashSweepOptions options;
  options.frames = frames;
  options.victim = support::synthetic_processor(0);
  return options;
}

TEST(EngineSweep, PlainSweepDigestsMatchWalOracle) {
  expect_engines_digest_identical(SyncPolicy::frames(3), sweep_options(10));
}

TEST(EngineSweep, AdaptivePolicySweepDigestsMatchWalOracle) {
  expect_engines_digest_identical(SyncPolicy::adaptive(), sweep_options(10));
}

TEST(EngineSweep, TornWriteDigestsMatchWalOracle) {
  support::CrashSweepOptions options = sweep_options(10);
  options.io_fault = support::CrashSweepOptions::IoFault::kTornWrite;
  expect_engines_digest_identical(SyncPolicy::frames(3), options);
}

TEST(EngineSweep, BitFlipDigestsMatchWalOracle) {
  support::CrashSweepOptions options = sweep_options(10);
  options.io_fault = support::CrashSweepOptions::IoFault::kBitFlip;
  expect_engines_digest_identical(SyncPolicy::frames(3), options);
}

TEST(EngineSweep, WarmStartDigestsMatchWalOracle) {
  support::CrashSweepOptions options = sweep_options(10);
  options.warm_start = true;
  expect_engines_digest_identical(SyncPolicy::frames(3), options,
                                  /*shipping=*/true);
}

TEST(EngineSweep, QuorumKillDigestsMatchWalOracle) {
  support::CrashSweepOptions options = sweep_options(8);
  options.warm_start = true;
  options.quorum_kills = 1;
  expect_engines_digest_identical(SyncPolicy::frames(3), options,
                                  /*shipping=*/true, /*quorum=*/3);
}

// --- watermark edge cases -------------------------------------------------

TEST(SyncPolicyEdge, ZeroByteWatermarkSyncsEveryCommit) {
  for (const EngineKind kind : kAllEngines) {
    DurableOptions options;
    options.sync = SyncPolicy::bytes(0);
    auto engine = engine_of(kind, options);
    StableStorage store;
    run_commits(*engine, store, 0, 8);
    // A zero watermark is reached by any nonzero lag: every commit syncs,
    // exactly like kEveryCommit.
    EXPECT_EQ(engine->stats().syncs, 8u) << to_string(kind);
    EXPECT_EQ(engine->stats().lag_bytes, 0u) << to_string(kind);
    EXPECT_EQ(engine->stats().lag_frames, 0u) << to_string(kind);
    EXPECT_EQ(engine->stats().last_durable_epoch, 8u) << to_string(kind);
  }
}

TEST(SyncPolicyEdge, OneByteWatermarkSyncsEveryCommit) {
  for (const EngineKind kind : kAllEngines) {
    DurableOptions options;
    options.sync = SyncPolicy::bytes(1);
    auto engine = engine_of(kind, options);
    StableStorage store;
    run_commits(*engine, store, 0, 8);
    EXPECT_EQ(engine->stats().syncs, 8u) << to_string(kind);
    EXPECT_EQ(engine->stats().max_lag_frames, 1u) << to_string(kind);
    EXPECT_EQ(engine->stats().lag_bytes, 0u) << to_string(kind);
  }
}

TEST(SyncPolicyEdge, AdaptiveInitialWatermarkClampsIntoBounds) {
  // Initial below the floor clamps up; initial above the ceiling clamps
  // down. The clamp happens at construction, before any commit.
  DurableOptions low;
  low.sync = SyncPolicy::adaptive(/*initial=*/1, /*min=*/4096, /*max=*/8192);
  auto low_engine = engine_of(EngineKind::kWalSnapshot, low);
  EXPECT_EQ(low_engine->adaptive_watermark_fp(),
            std::uint64_t{4096} << kAdaptiveFracBits);

  DurableOptions high;
  high.sync = SyncPolicy::adaptive(/*initial=*/std::uint64_t{1} << 30,
                                   /*min=*/4096, /*max=*/8192);
  auto high_engine = engine_of(EngineKind::kWalSnapshot, high);
  EXPECT_EQ(high_engine->adaptive_watermark_fp(),
            std::uint64_t{8192} << kAdaptiveFracBits);
}

TEST(SyncPolicyEdge, AdaptiveClimbsAndClampsAtMaxOnSmallCommits) {
  // Every sync under this workload flushes far less than the raise
  // threshold, so the controller climbs until the ceiling clamps it —
  // and never overshoots.
  DurableOptions options;
  options.sync = SyncPolicy::adaptive(/*initial=*/1024, /*min=*/512,
                                      /*max=*/2048, /*frames_ceiling=*/0);
  auto engine = engine_of(EngineKind::kWalSnapshot, options);
  StableStorage store;
  const std::uint64_t hi = std::uint64_t{2048} << kAdaptiveFracBits;
  for (Cycle c = 0; c < 512; ++c) {
    run_commits(*engine, store, c, 1);
    EXPECT_LE(engine->adaptive_watermark_fp(), hi);
  }
  EXPECT_EQ(engine->adaptive_watermark_fp(), hi);
  EXPECT_GT(engine->stats().adaptive_raises, 0u);
  EXPECT_EQ(engine->stats().adaptive_drops, 0u);
  EXPECT_EQ(engine->stats().adaptive_watermark_bytes, 2048u);
}

TEST(SyncPolicyEdge, AdaptiveDropsAndClampsAtMinOnHugeCommits) {
  // Each commit carries ~320 KiB, over the drop threshold in one sync, so
  // the controller backs off 12.5% per sync until the floor clamps it.
  DurableOptions options;
  options.sync = SyncPolicy::adaptive(/*initial=*/256 * 1024, /*min=*/512,
                                      /*max=*/256 * 1024,
                                      /*frames_ceiling=*/0);
  auto engine = engine_of(EngineKind::kWalSnapshot, options);
  StableStorage store;
  const std::string blob(320 * 1024, 'x');
  const std::uint64_t lo = std::uint64_t{512} << kAdaptiveFracBits;
  for (Cycle c = 0; c < 64; ++c) {
    store.write("blob", blob + static_cast<char>('a' + (c % 26)));
    engine->record_commit(store, c);
    store.commit(c);
    engine->after_commit(store);
    EXPECT_GE(engine->adaptive_watermark_fp(), lo);
  }
  EXPECT_EQ(engine->adaptive_watermark_fp(), lo);
  EXPECT_GT(engine->stats().adaptive_drops, 0u);
  EXPECT_EQ(engine->stats().adaptive_watermark_bytes, 512u);
}

TEST(SyncPolicyEdge, ForcedSyncFlushesLagUnderEveryEngine) {
  for (const EngineKind kind : kAllEngines) {
    DurableOptions options;
    options.sync = SyncPolicy::frames(100);  // never reached by 3 commits
    auto engine = engine_of(kind, options);
    StableStorage store;
    run_commits(*engine, store, 0, 3);
    ASSERT_EQ(engine->stats().lag_frames, 3u) << to_string(kind);

    // The halt-boundary sync: the whole buffered tail becomes durable now.
    EXPECT_TRUE(engine->sync_now()) << to_string(kind);
    EXPECT_EQ(engine->stats().forced_syncs, 1u) << to_string(kind);
    EXPECT_EQ(engine->stats().lag_frames, 0u) << to_string(kind);
    EXPECT_EQ(engine->stats().last_durable_epoch, 3u) << to_string(kind);

    // With zero lag it is a no-op, not another device sync.
    EXPECT_TRUE(engine->sync_now()) << to_string(kind);
    EXPECT_EQ(engine->stats().forced_syncs, 1u) << to_string(kind);
  }
}

TEST(SyncPolicyEdge, ReconfigBoundarySyncsUnderEveryEngine) {
  // System-level: the chain mission reconfigures; every halt boundary must
  // force the victim's lag to zero regardless of which engine backs it.
  for (const EngineKind kind : kAllEngines) {
    support::CrashMission mission =
        chain_factory(SyncPolicy::frames(64), kind)();
    mission.system->run(48);
    DurabilityEngine* engine = mission.system->processors()
                                   .processor(support::synthetic_processor(0))
                                   .durability();
    ASSERT_NE(engine, nullptr) << to_string(kind);
    EXPECT_GT(engine->stats().forced_syncs, 0u) << to_string(kind);
  }
}

// --- SCRAM pressure -------------------------------------------------------

TEST(ReconfigPressure, DropsEffectiveWatermarkOnlyInAdaptiveMode) {
  // Adaptive: pressure drops the bar to the floor, so a commit far below
  // the tuned watermark syncs anyway (and is counted as a pressure sync).
  DurableOptions adaptive;
  adaptive.sync = SyncPolicy::adaptive(/*initial=*/64 * 1024, /*min=*/16,
                                       /*max=*/256 * 1024,
                                       /*frames_ceiling=*/0);
  auto pressured = engine_of(EngineKind::kWalSnapshot, adaptive);
  pressured->set_reconfig_pressure(true);
  EXPECT_EQ(pressured->stats().pressure_engagements, 1u);
  StableStorage store;
  run_commits(*pressured, store, 0, 1);
  EXPECT_EQ(pressured->stats().lag_bytes, 0u);
  EXPECT_GT(pressured->stats().pressure_syncs, 0u);

  // Re-asserting pressure is not a new engagement; releasing and
  // re-engaging is.
  pressured->set_reconfig_pressure(true);
  EXPECT_EQ(pressured->stats().pressure_engagements, 1u);
  pressured->set_reconfig_pressure(false);
  pressured->set_reconfig_pressure(true);
  EXPECT_EQ(pressured->stats().pressure_engagements, 2u);

  // Static watermark: pressure must change nothing — the same commit stays
  // in the buffered tail.
  DurableOptions fixed;
  fixed.sync = SyncPolicy::bytes(64 * 1024);
  auto unaffected = engine_of(EngineKind::kWalSnapshot, fixed);
  unaffected->set_reconfig_pressure(true);
  StableStorage other;
  run_commits(*unaffected, other, 0, 1);
  EXPECT_EQ(unaffected->stats().syncs, 0u);
  EXPECT_GT(unaffected->stats().lag_bytes, 0u);
  EXPECT_EQ(unaffected->stats().pressure_syncs, 0u);
}

// --- recovery decode scratch (hoisted buffer) -----------------------------

TEST(RecoveryDecode, ReplayReusesHoistedDecodeBuffer) {
  for (const EngineKind kind : kAllEngines) {
    auto engine = engine_of(kind);  // no snapshot cadence: full replay
    StableStorage store;
    run_commits(*engine, store, 0, 32);
    const std::uint64_t before = store.fingerprint();

    engine->crash();
    StableStorage recovered;
    const RecoveryReport report = engine->recover_into(recovered);
    EXPECT_EQ(recovered.fingerprint(), before) << to_string(kind);
    EXPECT_EQ(report.records_applied, 32u) << to_string(kind);
    // The first decode sizes the scratch; every later record of this replay
    // reuses it instead of allocating.
    EXPECT_GE(engine->stats().decode_buffer_reuses, 31u) << to_string(kind);
  }
}

// --- block cache ----------------------------------------------------------

TEST(BlockCache, SecondRecoveryIsServedFromCacheWithIdenticalResult) {
  for (const EngineKind kind : kAllEngines) {
    DurableOptions options;
    options.block_cache_bytes = 1u << 20;
    options.snapshot_every_epochs = 5;
    auto engine = engine_of(kind, options);
    StableStorage store;
    run_commits(*engine, store, 0, 16);
    const std::uint64_t before = store.fingerprint();

    engine->crash();
    StableStorage cold;
    const RecoveryReport first = engine->recover_into(cold);
    EXPECT_EQ(cold.fingerprint(), before) << to_string(kind);
    const std::uint64_t misses = engine->stats().block_cache_misses;
    EXPECT_GT(misses, 0u) << to_string(kind);

    // Devices unchanged since the first scan: the repeat recovery replays
    // from decoded memory — hits, no new misses, same store.
    StableStorage warm;
    const RecoveryReport second = engine->recover_into(warm);
    EXPECT_GT(engine->stats().block_cache_hits, 0u) << to_string(kind);
    EXPECT_EQ(engine->stats().block_cache_misses, misses) << to_string(kind);
    EXPECT_EQ(warm.fingerprint(), before) << to_string(kind);
    EXPECT_EQ(second.last_epoch, first.last_epoch) << to_string(kind);
    EXPECT_GT(engine->stats().block_cache_bytes, 0u) << to_string(kind);
  }
}

// --- LSM specifics --------------------------------------------------------

TEST(Lsm, FlushesDeltaRunsCompactsAndSkipsOnKeyBounds) {
  DurableOptions options;
  options.snapshot_every_epochs = 2;
  options.lsm_run_limit = 3;
  auto engine = engine_of(EngineKind::kLsm, options);
  auto* lsm = dynamic_cast<LsmEngine*>(engine.get());
  ASSERT_NE(lsm, nullptr);

  StableStorage store;
  run_commits(*engine, store, 0, 20);
  EXPECT_GT(engine->stats().lsm_runs_flushed, 3u);
  EXPECT_GT(engine->stats().lsm_compactions, 0u);
  EXPECT_LE(lsm->run_count(), std::size_t{options.lsm_run_limit} + 1);

  // Point probe against the run set: a present key decodes to its newest
  // committed value...
  const auto hit = lsm->probe("counter");
  ASSERT_TRUE(hit.has_value());

  // ...and a key past every run's max bound is rejected on bounds alone.
  const std::uint64_t skips_before = engine->stats().lsm_bounds_skips;
  EXPECT_FALSE(lsm->probe("~past-every-max-bound").has_value());
  EXPECT_GT(engine->stats().lsm_bounds_skips, skips_before);
}

TEST(Lsm, RecoversAcrossCompactionBoundary) {
  DurableOptions options;
  options.snapshot_every_epochs = 2;
  options.lsm_run_limit = 2;
  auto engine = engine_of(EngineKind::kLsm, options);
  StableStorage store;
  run_commits(*engine, store, 0, 17);  // odd count: journal tail past a run
  const std::uint64_t before = store.fingerprint();
  ASSERT_GT(engine->stats().lsm_compactions, 0u);

  engine->crash();
  StableStorage recovered;
  const RecoveryReport report = engine->recover_into(recovered);
  EXPECT_EQ(recovered.fingerprint(), before);
  EXPECT_EQ(report.last_epoch, 17u);
}

// --- adaptive determinism and checkpointing -------------------------------

TEST(AdaptiveDeterminism, IdenticalHistoriesProduceBitIdenticalControllers) {
  for (const EngineKind kind : kAllEngines) {
    DurableOptions options;
    options.sync = SyncPolicy::adaptive();
    options.snapshot_every_epochs = 5;
    auto a = engine_of(kind, options);
    auto b = engine_of(kind, options);
    StableStorage sa;
    StableStorage sb;
    run_commits(*a, sa, 0, 24);
    run_commits(*b, sb, 0, 24);

    // The controller is pure integer state over the commit history: two
    // identical runs agree on every tuning step and every byte.
    EXPECT_EQ(a->adaptive_watermark_fp(), b->adaptive_watermark_fp())
        << to_string(kind);
    EXPECT_EQ(a->stats().syncs, b->stats().syncs) << to_string(kind);
    EXPECT_EQ(a->stats().adaptive_raises, b->stats().adaptive_raises)
        << to_string(kind);
    EXPECT_EQ(a->stats().adaptive_drops, b->stats().adaptive_drops)
        << to_string(kind);

    a->crash();
    b->crash();
    StableStorage ra;
    StableStorage rb;
    (void)a->recover_into(ra);
    (void)b->recover_into(rb);
    EXPECT_EQ(ra.fingerprint(), rb.fingerprint()) << to_string(kind);
  }
}

TEST(EngineCheckpointing, AdaptiveControllerStateRoundTrips) {
  for (const EngineKind kind : kAllEngines) {
    DurableOptions options;
    options.sync = SyncPolicy::adaptive();
    options.snapshot_every_epochs = 4;
    auto engine = engine_of(kind, options);
    StableStorage store;
    run_commits(*engine, store, 0, 12);
    engine->set_reconfig_pressure(true);

    const auto cp = engine->checkpoint_state();
    EXPECT_EQ(cp.adaptive_watermark_fp, engine->adaptive_watermark_fp())
        << to_string(kind);
    EXPECT_TRUE(cp.reconfig_pressure) << to_string(kind);
    EXPECT_EQ(cp.state_flush_cycle, engine->state_flush_cycle())
        << to_string(kind);
    const std::uint64_t fp_at_cp = engine->adaptive_watermark_fp();
    const std::uint64_t fingerprint_at_cp = store.fingerprint();

    // Diverge: release pressure, run more history, let the controller move.
    engine->set_reconfig_pressure(false);
    run_commits(*engine, store, 12, 24);

    // Restore rewinds the controller along with the devices.
    engine->restore_state(cp);
    EXPECT_EQ(engine->adaptive_watermark_fp(), fp_at_cp) << to_string(kind);
    EXPECT_TRUE(engine->reconfig_pressure()) << to_string(kind);
    EXPECT_EQ(engine->state_flush_cycle(), cp.state_flush_cycle)
        << to_string(kind);

    engine->crash();
    StableStorage recovered;
    const RecoveryReport report = engine->recover_into(recovered);
    EXPECT_EQ(recovered.fingerprint(), fingerprint_at_cp) << to_string(kind);
    EXPECT_EQ(report.last_epoch, 12u) << to_string(kind);
  }
}

}  // namespace
}  // namespace arfs
