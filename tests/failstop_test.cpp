#include <gtest/gtest.h>

#include <iterator>
#include <set>
#include <string>

#include "arfs/common/check.hpp"
#include "arfs/failstop/detector.hpp"
#include "arfs/failstop/group.hpp"
#include "arfs/failstop/processing_unit.hpp"
#include "arfs/failstop/processor.hpp"
#include "arfs/failstop/self_checking_pair.hpp"

namespace arfs::failstop {
namespace {

TEST(ProcessingUnit, ReturnsActionDigest) {
  ProcessingUnit unit;
  EXPECT_EQ(unit.execute([] { return std::uint64_t{42}; }), 42u);
  EXPECT_EQ(unit.executions(), 1u);
}

TEST(ProcessingUnit, ArmedFaultCorruptsExactlyOnce) {
  ProcessingUnit unit;
  unit.arm_fault();
  EXPECT_NE(unit.execute([] { return std::uint64_t{42}; }), 42u);
  EXPECT_EQ(unit.execute([] { return std::uint64_t{42}; }), 42u);
  EXPECT_EQ(unit.faults_manifested(), 1u);
}

TEST(SelfCheckingPair, AgreementKeepsRunning) {
  SelfCheckingPair pair;
  EXPECT_TRUE(pair.run([] { return std::uint64_t{7}; }));
  EXPECT_FALSE(pair.halted());
  EXPECT_EQ(pair.comparisons(), 1u);
  EXPECT_EQ(pair.divergences(), 0u);
}

TEST(SelfCheckingPair, SingleUnitFaultTripsComparator) {
  SelfCheckingPair pair;
  pair.inject_unit_fault(0);
  EXPECT_FALSE(pair.run([] { return std::uint64_t{7}; }));
  EXPECT_TRUE(pair.halted());
  EXPECT_EQ(pair.divergences(), 1u);
}

TEST(SelfCheckingPair, HaltIsPermanentUntilReset) {
  SelfCheckingPair pair;
  pair.inject_unit_fault(1);
  EXPECT_FALSE(pair.run([] { return std::uint64_t{1}; }));
  EXPECT_FALSE(pair.run([] { return std::uint64_t{1}; }));  // stays halted
  pair.reset();
  EXPECT_TRUE(pair.run([] { return std::uint64_t{1}; }));
}

TEST(SelfCheckingPair, CommonModeFaultEscapesComparator) {
  // The documented limit of a self-checking pair: identical faults in both
  // units produce agreeing (wrong) results.
  SelfCheckingPair pair;
  pair.inject_common_mode_fault();
  EXPECT_TRUE(pair.run([] { return std::uint64_t{7}; }));
  EXPECT_FALSE(pair.halted());
}

TEST(SelfCheckingPair, InvalidUnitIndexRejected) {
  SelfCheckingPair pair;
  EXPECT_THROW(pair.inject_unit_fault(2), ContractViolation);
}

TEST(Processor, FailErasesVolatilePreservesStable) {
  Processor p(ProcessorId{1});
  p.stable().write("state", std::int64_t{10});
  p.commit_frame(0);
  p.volatile_store().write("scratch", std::int64_t{99});

  p.fail(5);
  EXPECT_FALSE(p.running());
  EXPECT_EQ(p.failed_at(), Cycle{5});
  // Stable survives and is pollable by others.
  EXPECT_EQ(std::get<std::int64_t>(p.poll_stable().read("state").value()), 10);
  // Volatile is gone.
  EXPECT_EQ(p.peek_volatile().size(), 0u);
}

TEST(Processor, FailDropsUncommittedStableWrites) {
  Processor p(ProcessorId{1});
  p.stable().write("k", std::int64_t{1});
  p.commit_frame(0);
  p.stable().write("k", std::int64_t{2});  // staged, not committed
  p.fail(1);
  EXPECT_EQ(std::get<std::int64_t>(p.poll_stable().read("k").value()), 1);
}

TEST(Processor, AccessAfterFailureIsContractViolation) {
  Processor p(ProcessorId{1});
  p.fail(0);
  EXPECT_THROW((void)p.stable(), ContractViolation);
  EXPECT_THROW((void)p.volatile_store(), ContractViolation);
  EXPECT_THROW(p.run_action([] { return std::uint64_t{0}; }, 1),
               ContractViolation);
}

TEST(Processor, RepairRestoresServiceWithStableIntact) {
  Processor p(ProcessorId{1});
  p.stable().write("k", std::int64_t{5});
  p.commit_frame(0);
  p.fail(1);
  p.repair(2);
  EXPECT_TRUE(p.running());
  EXPECT_FALSE(p.failed_at().has_value());
  EXPECT_EQ(std::get<std::int64_t>(p.stable().read("k").value()), 5);
  EXPECT_EQ(p.failure_count(), 1u);
}

TEST(Processor, RepairOfRunningProcessorRejected) {
  Processor p(ProcessorId{1});
  EXPECT_THROW(p.repair(0), ContractViolation);
}

TEST(Processor, ComparatorDivergenceCausesFailStop) {
  Processor p(ProcessorId{1});
  p.volatile_store().write("scratch", std::int64_t{1});
  p.pair().inject_unit_fault(0);
  EXPECT_FALSE(p.run_action([] { return std::uint64_t{3}; }, 7));
  EXPECT_FALSE(p.running());
  EXPECT_EQ(p.failed_at(), Cycle{7});
  EXPECT_EQ(p.peek_volatile().size(), 0u);
}

TEST(Processor, FailIsIdempotent) {
  Processor p(ProcessorId{1});
  p.fail(1);
  p.fail(2);
  EXPECT_EQ(p.failed_at(), Cycle{1});
  EXPECT_EQ(p.failure_count(), 1u);
}

TEST(DetectorBank, DrainEmptiesInRaiseOrder) {
  DetectorBank bank;
  FailureSignal a;
  a.kind = SignalKind::kProcessorFailure;
  FailureSignal b;
  b.kind = SignalKind::kSoftwareFailure;
  bank.raise(a);
  bank.raise(b);
  const auto signals = bank.drain();
  ASSERT_EQ(signals.size(), 2u);
  EXPECT_EQ(signals[0].kind, SignalKind::kProcessorFailure);
  EXPECT_EQ(signals[1].kind, SignalKind::kSoftwareFailure);
  EXPECT_EQ(bank.pending(), 0u);
  EXPECT_EQ(bank.total_raised(), 2u);
}

TEST(ActivityMonitor, DetectsAtThreshold) {
  ActivityMonitor monitor(2);
  DetectorBank bank;
  monitor.watch(ProcessorId{1});

  // Frame 0: heartbeat present.
  monitor.heartbeat(ProcessorId{1});
  monitor.end_of_frame(0, 0, bank);
  EXPECT_EQ(bank.pending(), 0u);

  // Frames 1-2: silence; detection at the second missed frame.
  monitor.end_of_frame(1, 100, bank);
  EXPECT_EQ(bank.pending(), 0u);
  monitor.end_of_frame(2, 200, bank);
  ASSERT_EQ(bank.pending(), 1u);
  const auto signals = bank.drain();
  EXPECT_EQ(signals[0].kind, SignalKind::kProcessorFailure);
  EXPECT_EQ(signals[0].processor, ProcessorId{1});
  EXPECT_EQ(signals[0].cycle, 2u);
}

TEST(ActivityMonitor, ReportsOnceUntilRecovery) {
  ActivityMonitor monitor(1);
  DetectorBank bank;
  monitor.watch(ProcessorId{1});
  monitor.end_of_frame(0, 0, bank);
  monitor.end_of_frame(1, 100, bank);
  EXPECT_EQ(bank.drain().size(), 1u);  // not re-raised every frame

  // Recovery then silence again: re-raised.
  monitor.heartbeat(ProcessorId{1});
  monitor.end_of_frame(2, 200, bank);
  monitor.end_of_frame(3, 300, bank);
  EXPECT_EQ(bank.drain().size(), 1u);
}

TEST(ActivityMonitor, HeartbeatFromUnwatchedProcessorRejected) {
  ActivityMonitor monitor(1);
  EXPECT_THROW(monitor.heartbeat(ProcessorId{9}), ContractViolation);
}

TEST(TimingAndSignalMonitors, RaiseTypedSignals) {
  DetectorBank bank;
  TimingMonitor timing;
  SignalMonitor sig;
  timing.report_overrun(AppId{1}, 4, 400, bank);
  sig.report_fault(AppId{2}, 5, 500, bank, "assert");
  const auto signals = bank.drain();
  ASSERT_EQ(signals.size(), 2u);
  EXPECT_EQ(signals[0].kind, SignalKind::kTimingViolation);
  EXPECT_EQ(signals[1].kind, SignalKind::kSoftwareFailure);
  EXPECT_EQ(signals[1].detail, "assert");
}

TEST(DetectorBank, EverySignalKindHasAUniqueName) {
  // Exhaustive over the enum: a new SignalKind must get a to_string entry
  // (trace lines and SCRAM diagnostics print it), and no two kinds may
  // share a name.
  const SignalKind kinds[] = {
      SignalKind::kProcessorFailure, SignalKind::kTimingViolation,
      SignalKind::kSoftwareFailure,  SignalKind::kLossyRecovery,
      SignalKind::kQuorumLost,       SignalKind::kQuorumDurable,
  };
  std::set<std::string> names;
  for (const SignalKind kind : kinds) {
    const std::string name = to_string(kind);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << name << " repeats";
  }
  EXPECT_EQ(names.size(), std::size(kinds));
  EXPECT_EQ(to_string(SignalKind::kQuorumLost), "quorum-lost");
  EXPECT_EQ(to_string(SignalKind::kQuorumDurable), "quorum-durable");
  EXPECT_EQ(to_string(SignalKind::kLossyRecovery), "lossy-recovery");
}

TEST(ProcessorGroup, StaticAppAssignment) {
  ProcessorGroup group;
  group.add_processor(ProcessorId{1});
  group.add_processor(ProcessorId{2});
  group.assign_app(AppId{1}, ProcessorId{1});
  group.assign_app(AppId{2}, ProcessorId{1});
  group.assign_app(AppId{3}, ProcessorId{2});

  EXPECT_EQ(group.host_of(AppId{1}), ProcessorId{1});
  EXPECT_EQ(group.apps_on(ProcessorId{1}).size(), 2u);
  EXPECT_THROW(group.assign_app(AppId{1}, ProcessorId{2}), ContractViolation);
}

TEST(ProcessorGroup, RunningIdsTrackFailures) {
  ProcessorGroup group;
  group.add_processor(ProcessorId{1});
  group.add_processor(ProcessorId{2});
  group.processor(ProcessorId{1}).fail(0);
  EXPECT_EQ(group.running_ids(), (std::vector<ProcessorId>{ProcessorId{2}}));
}

TEST(ProcessorGroup, HeartbeatAllSkipsFailed) {
  ProcessorGroup group;
  group.add_processor(ProcessorId{1});
  group.add_processor(ProcessorId{2});
  ActivityMonitor monitor(1);
  DetectorBank bank;
  group.watch_all(monitor);

  group.processor(ProcessorId{2}).fail(0);
  group.heartbeat_all(monitor);
  monitor.end_of_frame(0, 0, bank);
  const auto signals = bank.drain();
  ASSERT_EQ(signals.size(), 1u);
  EXPECT_EQ(signals[0].processor, ProcessorId{2});
}

TEST(ProcessorGroup, CommitAllSkipsFailedProcessors) {
  ProcessorGroup group;
  Processor& a = group.add_processor(ProcessorId{1});
  Processor& b = group.add_processor(ProcessorId{2});
  a.stable().write("k", std::int64_t{1});
  b.stable().write("k", std::int64_t{2});
  b.fail(0);
  group.commit_all(0);
  EXPECT_TRUE(a.poll_stable().contains("k"));
  EXPECT_FALSE(b.poll_stable().contains("k"));
}

TEST(ProcessorGroup, DuplicateProcessorRejected) {
  ProcessorGroup group;
  group.add_processor(ProcessorId{1});
  EXPECT_THROW(group.add_processor(ProcessorId{1}), ContractViolation);
}

}  // namespace
}  // namespace arfs::failstop
