// The memory-mapped result arena's storage contract, end to end.
//
// Contracts under test:
//  * storage::MappedArena — allocate/data/seal/read/release round-trips
//    bytes exactly, file-backed and in-memory alike; a corrupted sealed
//    payload surfaces as a clean arfs::Error on read() (never UB); state
//    misuse (reading open or released regions) is a ContractViolation;
//    oversized chunks get dedicated extents with stable addresses;
//  * storage::scan_arena_file — the offline scanner accounts for every
//    chunk of a written file and pins CRC failures after on-disk bit rot;
//  * sim::auto_stride — exact rounded-√n at the boundaries (0, 1, perfect
//    squares and their neighbours);
//  * FleetRunner::materialize / ArenaCursor — arena-backed rows fold
//    bit-identically to the in-RAM map() at every (threads, shards) point;
//  * analysis::estimate_dependability_evidence — arena-backed evidence
//    reproduces the in-RAM estimate and digest exactly;
//  * support::run_fleet_missions — the pooled + spill-to-arena path keeps
//    one digest with the no-arena oracle, and PooledMission::reset_to()
//    hydrates spilled rungs back bit-exactly;
//  * support::run_crash_sweep — the arena-backed point table rebuilds a
//    digest-identical report.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "arfs/analysis/dependability.hpp"
#include "arfs/common/check.hpp"
#include "arfs/core/system.hpp"
#include "arfs/sim/fleet.hpp"
#include "arfs/storage/arena.hpp"
#include "arfs/support/crash_sweep.hpp"
#include "arfs/support/fleet.hpp"
#include "arfs/support/mission.hpp"
#include "arfs/support/simple_app.hpp"
#include "arfs/support/synthetic.hpp"

namespace arfs::support {
namespace {

/// A scratch path in the build tree; removed on destruction.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name) : path(name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(AutoStride, ExactAtPerfectSquaresAndNeighbours) {
  // Degenerate inputs clamp to 1 — a stride of 0 would divide by zero.
  EXPECT_EQ(sim::auto_stride(0), 1u);
  EXPECT_EQ(sim::auto_stride(1), 1u);
  for (const Cycle k : {2u, 3u, 5u, 16u, 100u, 1000u}) {
    const Cycle sq = k * k;
    // k² − 1 is 2k−2 above (k−1)² but only 1 below k² → rounds up to k;
    // k² + 1 is 1 above k² → rounds down to k. All three agree.
    EXPECT_EQ(sim::auto_stride(sq - 1), k) << "n = " << sq - 1;
    EXPECT_EQ(sim::auto_stride(sq), k) << "n = " << sq;
    EXPECT_EQ(sim::auto_stride(sq + 1), k) << "n = " << sq + 1;
  }
  // Midpoints: the stride minimizing |n − s²| wins, ties round down.
  EXPECT_EQ(sim::auto_stride(6), 2u);   // 6-4=2 <= 9-6=3
  EXPECT_EQ(sim::auto_stride(7), 3u);   // 7-4=3 >  9-7=2
}

/// Byte round-trip through every region state, for both backends.
void expect_roundtrip(const std::string& path) {
  storage::ArenaOptions options;
  options.path = path;
  options.slab_bytes = 1u << 16;
  storage::MappedArena arena(options);
  EXPECT_EQ(arena.file_backed(), !path.empty());

  // Three regions with distinct sizes and patterns, including size 0.
  const std::vector<std::size_t> sizes = {1, 4096, 0, 77};
  std::vector<storage::MappedArena::RegionId> ids;
  for (std::size_t r = 0; r < sizes.size(); ++r) {
    const storage::MappedArena::RegionId id = arena.allocate(sizes[r]);
    std::uint8_t* p = arena.data(id);
    for (std::size_t i = 0; i < sizes[r]; ++i) {
      p[i] = static_cast<std::uint8_t>(r * 131 + i);
    }
    ids.push_back(id);
  }
  // Reading an open region is a contract violation, not garbage bytes.
  EXPECT_THROW((void)arena.read(ids[0]), ContractViolation);
  for (const storage::MappedArena::RegionId id : ids) arena.seal(id);

  for (std::size_t r = 0; r < sizes.size(); ++r) {
    std::size_t got_bytes = 0;
    const std::uint8_t* p = arena.read(ids[r], &got_bytes);
    ASSERT_EQ(got_bytes, sizes[r]);
    EXPECT_EQ(arena.region_bytes(ids[r]), sizes[r]);
    for (std::size_t i = 0; i < sizes[r]; ++i) {
      ASSERT_EQ(p[i], static_cast<std::uint8_t>(r * 131 + i))
          << "region " << r << " byte " << i;
    }
  }

  arena.release(ids[1]);
  EXPECT_THROW((void)arena.read(ids[1]), ContractViolation);   // dead id
  EXPECT_THROW(arena.release(ids[1]), ContractViolation);      // double free
  EXPECT_NO_THROW((void)arena.read(ids[3]));  // others unaffected

  const storage::MappedArena::Stats stats = arena.stats();
  EXPECT_EQ(stats.regions_allocated, sizes.size());
  EXPECT_EQ(stats.regions_sealed, sizes.size());
  EXPECT_EQ(stats.regions_released, 1u);
  EXPECT_EQ(stats.payload_bytes, 1u + 4096u + 0u + 77u);
  EXPECT_GE(stats.crc_checks, sizes.size());
}

TEST(MappedArena, RoundTripsBytesFileBacked) {
  TempFile tmp("arena_test_roundtrip.arena");
  expect_roundtrip(tmp.path);
}

TEST(MappedArena, RoundTripsBytesInMemory) { expect_roundtrip(""); }

/// A corrupted sealed payload must surface as a clean arfs::Error from
/// read() — the CRC guard turns silent bit rot into a diagnosable failure.
void expect_corruption_detected(const std::string& path) {
  storage::ArenaOptions options;
  options.path = path;
  storage::MappedArena arena(options);
  const storage::MappedArena::RegionId id = arena.allocate(256);
  std::uint8_t* p = arena.data(id);
  for (std::size_t i = 0; i < 256; ++i) p[i] = static_cast<std::uint8_t>(i);
  arena.seal(id);
  EXPECT_NO_THROW((void)arena.read(id));
  p[100] ^= 0x40;  // one flipped bit, simulating storage corruption
  EXPECT_THROW((void)arena.read(id), Error);
  p[100] ^= 0x40;  // restored: reads verify again
  EXPECT_NO_THROW((void)arena.read(id));
}

TEST(MappedArena, CrcCatchesCorruptionFileBacked) {
  TempFile tmp("arena_test_corrupt.arena");
  expect_corruption_detected(tmp.path);
}

TEST(MappedArena, CrcCatchesCorruptionInMemory) {
  expect_corruption_detected("");
}

TEST(MappedArena, OversizedChunksGetDedicatedExtentsWithStableAddresses) {
  storage::ArenaOptions options;
  options.slab_bytes = 4096;  // tiny slabs force growth
  storage::MappedArena arena(options);
  // A payload far beyond one slab must still be a single contiguous chunk.
  const std::size_t big = 10 * 4096 + 123;
  const storage::MappedArena::RegionId small_id = arena.allocate(64);
  std::uint8_t* small_p = arena.data(small_id);
  const storage::MappedArena::RegionId big_id = arena.allocate(big);
  std::uint8_t* big_p = arena.data(big_id);
  std::memset(small_p, 0xAB, 64);
  for (std::size_t i = 0; i < big; ++i) {
    big_p[i] = static_cast<std::uint8_t>(i * 7);
  }
  // Growth must never remap: the small region's pointer stays valid.
  EXPECT_EQ(arena.data(small_id), small_p);
  arena.seal(small_id);
  arena.seal(big_id);
  std::size_t bytes = 0;
  const std::uint8_t* back = arena.read(big_id, &bytes);
  ASSERT_EQ(bytes, big);
  for (std::size_t i = 0; i < big; i += 997) {
    ASSERT_EQ(back[i], static_cast<std::uint8_t>(i * 7)) << "byte " << i;
  }
  EXPECT_GE(arena.stats().extents, 2u);
}

TEST(ArenaScan, AccountsForEveryChunkAndPinsOnDiskBitRot) {
  TempFile tmp("arena_test_scan.arena");
  {
    storage::ArenaOptions options;
    options.path = tmp.path;
    options.slab_bytes = 1u << 16;
    storage::MappedArena arena(options);
    for (int r = 0; r < 3; ++r) {
      const storage::MappedArena::RegionId id = arena.allocate(100);
      std::memset(arena.data(id), 0x11 * (r + 1), 100);
      arena.seal(id);
    }
    const storage::MappedArena::RegionId open_id = arena.allocate(8);
    std::memset(arena.data(open_id), 0, 8);
    arena.sync();
  }  // destructor flushes and closes the file

  storage::ArenaScan scan = storage::scan_arena_file(tmp.path);
  EXPECT_TRUE(scan.ok) << scan.error;
  EXPECT_EQ(scan.chunks, 4u);
  EXPECT_EQ(scan.sealed, 3u);
  EXPECT_EQ(scan.open, 1u);
  EXPECT_EQ(scan.crc_failures, 0u);
  EXPECT_EQ(scan.payload_bytes, 3u * 100u + 8u);

  // Flip one payload byte of the first sealed chunk on disk: file header
  // (24 B) + chunk header (24 B) puts the first payload byte at offset 48.
  {
    std::fstream f(tmp.path,
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekg(48);
    char b = 0;
    f.get(b);
    f.seekp(48);
    f.put(static_cast<char>(b ^ 0x01));
  }
  scan = storage::scan_arena_file(tmp.path);
  EXPECT_FALSE(scan.ok);
  EXPECT_EQ(scan.crc_failures, 1u);
  EXPECT_EQ(scan.sealed, 3u);  // structure still parses end to end
}

TEST(FleetRunner, MaterializeFoldsBitIdenticalToInRamMapEverywhere) {
  const std::size_t samples = 10 * 64 + 17;  // partial tail chunk
  const std::uint64_t base_seed = 99;
  const std::function<std::uint64_t(const sim::FleetSample&)> fn =
      [](const sim::FleetSample& s) {
        return (s.seed ^ s.index) * 0x100000001B3ULL;
      };
  const auto fold = [](const std::uint64_t* rows, std::size_t n,
                       std::uint64_t h) {
    for (std::size_t i = 0; i < n; ++i) {
      h ^= rows[i];
      h *= 0x100000001B3ULL;
    }
    return h;
  };

  // In-RAM oracle: the serial loop in global row order — seeds are a
  // function of the global index alone, so this is the reference fold.
  std::uint64_t oracle = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < samples; ++i) {
    const std::uint64_t row =
        fn(sim::FleetSample{i, sim::job_seed(base_seed, i), 0});
    oracle = fold(&row, 1, oracle);
  }

  for (const std::size_t threads : {1u, 4u}) {
    for (const std::size_t shards : {1u, 3u, 16u}) {
      for (const bool file_backed : {false, true}) {
        TempFile tmp(file_backed ? "arena_test_mat.arena" : "");
        storage::ArenaOptions arena_options;
        arena_options.path = tmp.path;
        arena_options.slab_bytes = 1u << 16;
        storage::MappedArena arena(arena_options);

        sim::FleetOptions options;
        options.threads = threads;
        options.shards = shards;
        options.chunk = 64;
        sim::FleetRunner fleet(options);
        sim::ArenaCursor<std::uint64_t> cursor =
            fleet.materialize<std::uint64_t>(samples, base_seed, fn, arena);
        ASSERT_EQ(cursor.size(), samples);

        std::uint64_t got = 0xCBF29CE484222325ULL;
        std::size_t rows_seen = 0, expect_first = 0;
        cursor.for_each_chunk([&](const std::uint64_t* rows, std::size_t n,
                                  std::size_t first) {
          EXPECT_EQ(first, expect_first);  // global chunk order
          expect_first += 64;
          rows_seen += n;
          got = fold(rows, n, got);
        });
        EXPECT_EQ(rows_seen, samples);
        EXPECT_EQ(got, oracle)
            << "threads=" << threads << " shards=" << shards
            << " file_backed=" << file_backed;
        // The cursor released every chunk as it went.
        EXPECT_EQ(arena.stats().regions_released,
                  arena.stats().regions_sealed);
        EXPECT_THROW(cursor.for_each([](std::uint64_t, std::size_t) {}),
                     ContractViolation);  // one-shot
      }
    }
  }
}

TEST(Dependability, ArenaEvidenceReproducesInRamEstimateAndDigest) {
  const analysis::DesignPair pair = analysis::section51_designs(4, 2, 2);
  analysis::MissionParams mission;
  mission.mission_hours = 10.0;
  mission.failure_rate_per_hour = 0.05;
  mission.trials = 3'000;  // multiple chunks, partial tail

  sim::FleetOptions serial_options;
  serial_options.threads = 1;
  serial_options.shards = 1;
  sim::FleetRunner serial(serial_options);
  Rng oracle_rng(7);
  const analysis::EvidenceSweep oracle = analysis::
      estimate_dependability_evidence(pair.reconfig, mission, oracle_rng,
                                      serial);
  EXPECT_FALSE(oracle.arena_backed);
  ASSERT_EQ(oracle.rows, 3'000u);

  TempFile tmp("arena_test_evidence.arena");
  for (const std::size_t threads : {1u, 4u}) {
    for (const std::size_t shards : {1u, 4u}) {
      storage::ArenaOptions arena_options;
      arena_options.path = tmp.path;
      storage::MappedArena arena(arena_options);
      sim::FleetOptions options;
      options.threads = threads;
      options.shards = shards;
      options.arena = &arena;
      sim::FleetRunner fleet(options);
      Rng rng(7);
      const analysis::EvidenceSweep got = analysis::
          estimate_dependability_evidence(pair.reconfig, mission, rng,
                                          fleet);
      EXPECT_TRUE(got.arena_backed);
      EXPECT_EQ(got.rows, oracle.rows);
      EXPECT_EQ(got.evidence_digest, oracle.evidence_digest)
          << "threads=" << threads << " shards=" << shards;
      EXPECT_EQ(got.estimate.digest(), oracle.estimate.digest());
      EXPECT_EQ(got.estimate.p_loss, oracle.estimate.p_loss);
    }
  }
}

/// Chain-spec mission factory (the fleet tests' durable chain mission).
MissionFactory chain_factory() {
  return [] {
    auto spec = std::make_shared<core::ReconfigSpec>(make_chain_spec({}));
    core::SystemOptions options;
    options.durable_storage = true;
    options.durability.snapshot_every_epochs = 7;
    auto system = std::make_unique<core::System>(*spec, options);
    for (const core::AppDecl& decl : spec->apps()) {
      system->add_app(std::make_unique<SimpleApp>(decl.id, decl.name));
    }
    CrashMission mission;
    mission.keepalive = spec;
    mission.system = std::move(system);
    return mission;
  };
}

PlanFactory chain_plans(Cycle warmup, Cycle frames) {
  const core::ReconfigSpec spec = make_chain_spec({});
  EnvPlanParams params;
  params.factors = spec.factors().factors();
  params.changes = 3;
  params.first_frame = warmup;
  params.frames = frames;
  params.frame_length = 10'000;
  return make_env_plan_factory(std::move(params));
}

TEST(FleetMissions, SpilledPoolKeepsOneDigestWithTheNoArenaOracle) {
  const MissionFactory factory = chain_factory();
  FleetMissionOptions options;
  options.samples = 18;
  options.frames = 4;
  options.warmup_frames = 6;
  options.base_seed = 11;
  const PlanFactory plans =
      chain_plans(options.warmup_frames, options.frames);

  // Oracle: pooled, no arena, 1 thread / 1 shard.
  sim::FleetOptions serial_options;
  serial_options.threads = 1;
  serial_options.shards = 1;
  serial_options.chunk = 4;
  sim::FleetRunner serial(serial_options);
  options.pool_systems = true;
  const FleetMissionReport oracle =
      run_fleet_missions(factory, plans, options, serial);
  ASSERT_NE(oracle.digest, 0u);
  EXPECT_FALSE(oracle.arena_backed);

  TempFile tmp("arena_test_pool.arena");
  for (const std::size_t threads : {2u, 4u}) {
    storage::ArenaOptions arena_options;
    arena_options.path = tmp.path;
    storage::MappedArena arena(arena_options);
    sim::FleetOptions fleet_options;
    fleet_options.threads = threads;
    fleet_options.shards = 2;
    fleet_options.chunk = 4;
    fleet_options.arena = &arena;
    sim::FleetRunner fleet(fleet_options);
    FleetMissionOptions spill_options = options;
    spill_options.pool_hot_limit = 1;  // spill every idle mission but one
    const FleetMissionReport got =
        run_fleet_missions(factory, plans, spill_options, fleet);
    EXPECT_EQ(got.digest, oracle.digest) << "threads=" << threads;
    EXPECT_EQ(got.fault_events, oracle.fault_events);
    EXPECT_EQ(got.frames_run, oracle.frames_run);
    // The arena evidence stream round-trips the same digest.
    EXPECT_TRUE(got.arena_backed);
    EXPECT_EQ(got.evidence_rows, options.samples);
    EXPECT_TRUE(got.evidence_matches);
    EXPECT_EQ(got.evidence_digest, got.digest);
  }
}

TEST(PooledMission, ResetToHydratesSpilledRungsBitExactly) {
  const MissionFactory factory = chain_factory();
  storage::MappedArena arena;  // in-memory: spill semantics, no file
  PooledMission pooled(factory, /*warmup_frames=*/10);
  const std::uint64_t spilled = pooled.spill_cold(arena);
  EXPECT_GT(spilled, 0u);
  EXPECT_EQ(pooled.hydrations(), 0u);
  // reset() — the per-sample hot path — must not touch spilled rungs.
  pooled.reset();
  EXPECT_EQ(pooled.hydrations(), 0u);
  // Rewinding to a cold rung hydrates it and still lands bit-exactly.
  pooled.reset_to(3);
  EXPECT_GE(pooled.hydrations(), 1u);
  CrashMission fresh = factory();
  fresh.system->run(3);
  EXPECT_EQ(pooled.system().digest(), fresh.system->digest());
  // Spilling again after hydration is safe and idempotent per rung.
  (void)pooled.spill_cold(arena);
  pooled.reset_to(7);
  CrashMission fresh7 = factory();
  fresh7.system->run(7);
  EXPECT_EQ(pooled.system().digest(), fresh7.system->digest());
}

TEST(CrashSweep, ArenaBackedPointTableIsDigestIdentical) {
  MissionFactory factory = chain_factory();
  CrashSweepOptions options;
  options.frames = 6;
  options.victim = synthetic_processor(0);

  const CrashSweepReport oracle = run_crash_sweep(factory, options);
  ASSERT_FALSE(oracle.points.empty());
  EXPECT_FALSE(oracle.arena_backed);

  TempFile tmp("arena_test_sweep.arena");
  storage::ArenaOptions arena_options;
  arena_options.path = tmp.path;
  storage::MappedArena arena(arena_options);
  CrashSweepOptions arena_sweep = options;
  arena_sweep.arena = &arena;
  const CrashSweepReport got = run_crash_sweep(factory, arena_sweep);
  EXPECT_TRUE(got.arena_backed);
  EXPECT_EQ(got.digest(), oracle.digest());
  ASSERT_EQ(got.points.size(), oracle.points.size());
  EXPECT_EQ(got.all_match(), oracle.all_match());
}

}  // namespace
}  // namespace arfs::support
