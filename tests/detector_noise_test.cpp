// Tests of the activity-monitor quality model: heartbeat noise produces
// false alarms at threshold 1; raising the threshold filters them at the
// cost of detection latency; real failures are still detected and the
// system still reconfigures correctly.
#include <gtest/gtest.h>

#include <memory>

#include "arfs/core/system.hpp"
#include "arfs/props/report.hpp"
#include "arfs/support/simple_app.hpp"
#include "arfs/support/synthetic.hpp"

namespace arfs::core {
namespace {

using support::synthetic_app;
using support::synthetic_processor;

ReconfigSpec quiet_spec() {
  support::ChainSpecParams params;
  params.configs = 2;
  params.apps = 2;
  return support::make_chain_spec(params);
}

SystemStats run_noisy(Cycle threshold, double loss_prob, Cycle frames,
                      bool fail_processor = false) {
  const ReconfigSpec spec = quiet_spec();
  SystemOptions options;
  options.detection_threshold = threshold;
  options.heartbeat_loss_prob = loss_prob;
  options.noise_seed = 7;
  System system(spec, options);
  system.add_app(std::make_unique<support::SimpleApp>(synthetic_app(0), "a"));
  system.add_app(std::make_unique<support::SimpleApp>(synthetic_app(1), "b"));
  if (fail_processor) {
    sim::FaultPlan plan;
    plan.fail_processor(static_cast<SimTime>(frames / 2) * 10'000,
                        synthetic_processor(0));
    system.set_fault_plan(std::move(plan));
  }
  system.run(frames);
  return system.stats();
}

TEST(DetectorNoise, NoNoiseNoFalseAlarms) {
  const SystemStats stats = run_noisy(1, 0.0, 200);
  EXPECT_EQ(stats.heartbeats_lost, 0u);
  EXPECT_EQ(stats.false_alarms, 0u);
}

TEST(DetectorNoise, Threshold1TurnsEveryGlitchIntoAnAlarm) {
  const SystemStats stats = run_noisy(1, 0.05, 400);
  EXPECT_GT(stats.heartbeats_lost, 0u);
  EXPECT_GT(stats.false_alarms, 0u);
}

TEST(DetectorNoise, HigherThresholdFiltersGlitches) {
  const SystemStats at1 = run_noisy(1, 0.05, 400);
  const SystemStats at3 = run_noisy(3, 0.05, 400);
  // Independent glitches almost never align 3 frames in a row at p=0.05.
  EXPECT_GT(at1.false_alarms, 0u);
  EXPECT_LT(at3.false_alarms, at1.false_alarms);
  EXPECT_EQ(at3.false_alarms, 0u);
}

TEST(DetectorNoise, RealFailureStillDetectedUnderNoise) {
  const SystemStats stats = run_noisy(3, 0.05, 400, /*fail_processor=*/true);
  EXPECT_GE(stats.true_detections, 1u);
}

TEST(DetectorNoise, FalseAlarmsAreAbsorbedHarmlessly) {
  // The environment never changes, so every false-alarm evaluation is
  // absorbed by choose(): no reconfiguration happens and properties hold
  // trivially (the trace has no reconfigurations).
  const ReconfigSpec spec = quiet_spec();
  SystemOptions options;
  options.detection_threshold = 1;
  options.heartbeat_loss_prob = 0.05;
  System system(spec, options);
  system.add_app(std::make_unique<support::SimpleApp>(synthetic_app(0), "a"));
  system.add_app(std::make_unique<support::SimpleApp>(synthetic_app(1), "b"));
  system.run(300);

  EXPECT_GT(system.stats().false_alarms, 0u);
  EXPECT_EQ(system.scram().stats().reconfigs_started, 0u);
  EXPECT_TRUE(trace::get_reconfigs(system.trace()).empty());
}

TEST(DetectorNoise, DeterministicFromNoiseSeed) {
  const SystemStats a = run_noisy(1, 0.05, 300);
  const SystemStats b = run_noisy(1, 0.05, 300);
  EXPECT_EQ(a.heartbeats_lost, b.heartbeats_lost);
  EXPECT_EQ(a.false_alarms, b.false_alarms);
}

TEST(DetectorNoise, RejectsInvalidProbability) {
  const ReconfigSpec spec = quiet_spec();
  SystemOptions options;
  options.heartbeat_loss_prob = 1.0;
  EXPECT_THROW(System(spec, options), ContractViolation);
}

}  // namespace
}  // namespace arfs::core
