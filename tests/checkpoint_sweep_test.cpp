// Deterministic whole-system checkpoints and the O(F·K) crash-point sweep
// built on them.
//
// Two contracts under test:
//  * core::SystemCheckpoint round-trips bit-identically — at every frame of
//    a mission, a checkpoint restored into a freshly built system has the
//    live system's digest, and running the restored fork to mission end
//    reproduces the live mission's final digest exactly;
//  * the checkpointed sweep strategy is digest-identical to the from-scratch
//    oracle (CrashSweepOptions::checkpointing = false) under every sync
//    policy, both io-fault modes, warm-start mode, any stride, and any
//    thread count.
// Plus the BENCH_*.json trajectory emitter (bench/bench_main.hpp --json):
// what it writes must parse as valid JSON.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "arfs/avionics/uav_system.hpp"
#include "arfs/core/system.hpp"
#include "arfs/sim/batch.hpp"
#include "arfs/support/bench_json.hpp"
#include "arfs/support/crash_sweep.hpp"
#include "arfs/support/mission.hpp"
#include "arfs/support/simple_app.hpp"
#include "arfs/support/synthetic.hpp"

namespace arfs::support {
namespace {

using storage::durable::SyncPolicy;

/// The four policies every strategy comparison must pass under.
std::vector<std::pair<std::string, SyncPolicy>> all_policies() {
  return {{"every-commit", SyncPolicy::every_commit()},
          {"bytes(512)", SyncPolicy::bytes(512)},
          {"frames(4)", SyncPolicy::frames(4)},
          {"hybrid(4096,8)", SyncPolicy::hybrid(4096, 8)}};
}

/// Chain-spec mission, identical to crash_sweep_test's: durable processors,
/// one SimpleApp per declared app, optional warm-standby shipping.
MissionFactory chain_factory(SyncPolicy policy, bool shipping = false) {
  return [policy, shipping] {
    auto spec =
        std::make_shared<core::ReconfigSpec>(make_chain_spec({}));
    core::SystemOptions options;
    options.durable_storage = true;
    options.journal_shipping = shipping;
    options.durability.snapshot_every_epochs = 7;
    options.durability.sync = policy;
    auto system = std::make_unique<core::System>(*spec, options);
    for (const core::AppDecl& decl : spec->apps()) {
      system->add_app(
          std::make_unique<SimpleApp>(decl.id, decl.name));
    }
    CrashMission mission;
    mission.keepalive = spec;
    mission.system = std::move(system);
    return mission;
  };
}

/// The paper's avionics mission, identical to crash_sweep_test's: autopilot
/// + FCS with the electrical factor driving reconfigurations at frames 10,
/// 25, and 40.
MissionFactory uav_factory(SyncPolicy policy, bool shipping = false) {
  return [policy, shipping] {
    struct Bundle {
      core::ReconfigSpec spec;
      avionics::UavPlant plant;
      Bundle(core::ReconfigSpec s, std::uint64_t seed)
          : spec(std::move(s)), plant(seed) {}
    };
    avionics::UavSpecOptions spec_options;
    spec_options.dwell_frames = 10;
    auto bundle = std::make_shared<Bundle>(
        avionics::make_uav_spec(spec_options), 42);

    core::SystemOptions options;
    options.frame_length = 20'000;
    options.durable_storage = true;
    options.journal_shipping = shipping;
    options.durability.snapshot_every_epochs = 16;
    options.durability.sync = policy;
    auto system = std::make_unique<core::System>(bundle->spec, options);
    system->add_app(
        std::make_unique<avionics::AutopilotApp>(bundle->plant));
    system->add_app(std::make_unique<avionics::FcsApp>(bundle->plant));

    MissionProfile mission(options.frame_length);
    mission.at(10, avionics::kPowerFactor, 1)
        .at(25, avionics::kPowerFactor, 2)
        .at(40, avionics::kPowerFactor, 0);
    system->set_fault_plan(mission.build());

    CrashMission out;
    out.keepalive = bundle;
    out.system = std::move(system);
    return out;
  };
}

/// The round-trip contract, checked at every frame of `factory`'s mission:
/// the live digest, the checkpoint's own digest, a restored fork's digest,
/// and the fork's run-to-end digest must all agree with the live mission.
void expect_restore_exact_at_every_frame(const MissionFactory& factory,
                                         Cycle frames) {
  // Reference pass: the live mission's digest and a checkpoint after every
  // frame (index f = state after f frames; 0 = freshly built).
  CrashMission reference = factory();
  ASSERT_NE(reference.system, nullptr);
  std::vector<std::uint64_t> digests;
  std::vector<core::SystemCheckpoint> checkpoints;
  digests.push_back(reference.system->digest());
  checkpoints.push_back(reference.system->checkpoint());
  for (Cycle f = 1; f <= frames; ++f) {
    reference.system->run(1);
    digests.push_back(reference.system->digest());
    checkpoints.push_back(reference.system->checkpoint());
  }

  for (Cycle f = 0; f <= frames; ++f) {
    const std::size_t i = static_cast<std::size_t>(f);
    // The checkpoint hashes to the live system's digest...
    ASSERT_EQ(checkpoints[i].digest(), digests[i]) << "frame " << f;
    // ...a fresh system restored from it is bit-identical...
    CrashMission fork = factory();
    fork.system->restore(checkpoints[i]);
    ASSERT_EQ(fork.system->digest(), digests[i]) << "frame " << f;
    // ...and running the fork to mission end reproduces the live mission's
    // final state exactly — the property the checkpointed sweep rests on.
    fork.system->run(frames - f);
    ASSERT_EQ(fork.system->digest(), digests[frames]) << "frame " << f;
  }

  // A checkpoint is restorable more than once (each restore re-forks the
  // durable devices): two forks of the same mid-mission checkpoint agree.
  const std::size_t mid = static_cast<std::size_t>(frames / 2);
  CrashMission fork_a = factory();
  CrashMission fork_b = factory();
  fork_a.system->restore(checkpoints[mid]);
  fork_b.system->restore(checkpoints[mid]);
  fork_a.system->run(frames - frames / 2);
  fork_b.system->run(frames - frames / 2);
  EXPECT_EQ(fork_a.system->digest(), fork_b.system->digest());
  EXPECT_EQ(fork_a.system->digest(), digests[frames]);
}

TEST(SystemCheckpoint, ChainMissionRestoresBitIdenticallyAtEveryFrame) {
  expect_restore_exact_at_every_frame(
      chain_factory(SyncPolicy::frames(4), /*shipping=*/true), 12);
}

TEST(SystemCheckpoint, AvionicsMissionRestoresBitIdenticallyAtEveryFrame) {
  // 45 frames cover all three reconfigurations (frames 10, 25, 40) plus
  // their SFTA phases, so checkpoints are taken mid-reconfiguration too.
  expect_restore_exact_at_every_frame(
      uav_factory(SyncPolicy::hybrid(4096, 8), /*shipping=*/true), 45);
}

/// Runs one sweep and returns its report digest.
std::uint64_t sweep_digest(const MissionFactory& factory,
                           CrashSweepOptions options) {
  const CrashSweepReport report = run_crash_sweep(factory, options);
  EXPECT_TRUE(report.all_match());
  return report.digest();
}

TEST(CheckpointedSweep, MatchesFromScratchOracleUnderEveryPolicyAndFault) {
  for (const auto& [name, policy] : all_policies()) {
    for (const CrashSweepOptions::IoFault fault :
         {CrashSweepOptions::IoFault::kNone,
          CrashSweepOptions::IoFault::kTornWrite,
          CrashSweepOptions::IoFault::kBitFlip}) {
      CrashSweepOptions options;
      options.frames = 16;
      options.victim = synthetic_processor(0);
      options.io_fault = fault;
      options.checkpointing = false;
      const std::uint64_t oracle =
          sweep_digest(chain_factory(policy), options);
      options.checkpointing = true;
      EXPECT_EQ(sweep_digest(chain_factory(policy), options), oracle)
          << name << " io-fault " << static_cast<int>(fault);
    }
  }
}

TEST(CheckpointedSweep, MatchesFromScratchOracleOnAvionicsMission) {
  for (const auto& [name, policy] : all_policies()) {
    CrashSweepOptions options;
    options.frames = 30;
    options.victim = avionics::kComputer1;
    options.checkpointing = false;
    const std::uint64_t oracle = sweep_digest(uav_factory(policy), options);
    options.checkpointing = true;
    EXPECT_EQ(sweep_digest(uav_factory(policy), options), oracle) << name;
  }
}

TEST(CheckpointedSweep, MatchesFromScratchOracleUnderWarmStart) {
  for (const auto& [name, policy] : all_policies()) {
    CrashSweepOptions options;
    options.frames = 12;
    options.victim = synthetic_processor(0);
    options.warm_start = true;
    options.checkpointing = false;
    const std::uint64_t oracle =
        sweep_digest(chain_factory(policy, /*shipping=*/true), options);
    options.checkpointing = true;
    EXPECT_EQ(sweep_digest(chain_factory(policy, /*shipping=*/true), options),
              oracle)
        << name;
  }
}

TEST(CheckpointedSweep, DigestIsStrideAndThreadCountInvariant) {
  CrashSweepOptions options;
  options.frames = 20;
  options.victim = synthetic_processor(0);
  options.checkpointing = false;
  const std::uint64_t oracle =
      sweep_digest(chain_factory(SyncPolicy::frames(4)), options);

  options.checkpointing = true;
  for (const Cycle stride : {Cycle{0}, Cycle{1}, Cycle{2}, Cycle{5},
                             Cycle{20}}) {
    options.checkpoint_stride = stride;
    EXPECT_EQ(sweep_digest(chain_factory(SyncPolicy::frames(4)), options),
              oracle)
        << "stride " << stride;
  }

  options.checkpoint_stride = 0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    sim::BatchOptions batch;
    batch.threads = threads;
    sim::BatchRunner runner(batch);
    const CrashSweepReport report = run_crash_sweep(
        chain_factory(SyncPolicy::frames(4)), options, runner);
    EXPECT_EQ(report.digest(), oracle) << threads << " threads";
  }
}

TEST(CheckpointedSweep, ReportsItsExecutionCostMetrics) {
  CrashSweepOptions options;
  options.frames = 20;
  options.victim = synthetic_processor(0);

  // Auto stride at F=20 is round(√20) = 4; 6 checkpoints (frame 0 + every
  // 4th frame); baseline 20 frames + residuals Σ j%4 for j=1..20.
  const CrashSweepReport auto_report =
      run_crash_sweep(chain_factory(SyncPolicy::frames(4)), options);
  EXPECT_EQ(auto_report.stride_used, 4u);
  EXPECT_EQ(auto_report.checkpoints_taken, 6u);
  EXPECT_EQ(auto_report.simulated_frames, 20u + 30u);

  options.checkpoint_stride = 5;
  const CrashSweepReport strided =
      run_crash_sweep(chain_factory(SyncPolicy::frames(4)), options);
  EXPECT_EQ(strided.stride_used, 5u);
  EXPECT_EQ(strided.checkpoints_taken, 5u);
  EXPECT_EQ(strided.simulated_frames, 20u + 40u);

  options.checkpoint_stride = 0;
  options.checkpointing = false;
  const CrashSweepReport scratch =
      run_crash_sweep(chain_factory(SyncPolicy::frames(4)), options);
  EXPECT_EQ(scratch.stride_used, 0u);
  EXPECT_EQ(scratch.checkpoints_taken, 0u);
  EXPECT_EQ(scratch.simulated_frames, 20u * 21u / 2u);
  // The O(F·K) strategy really simulated far fewer frames.
  EXPECT_LT(auto_report.simulated_frames * 3, scratch.simulated_frames);
}

// --- the BENCH_*.json trajectory emitter ---

TEST(BenchJson, TrajectoryWritesValidParsableJson) {
  BenchTrajectory trajectory;
  EXPECT_TRUE(json_valid(trajectory.to_json()));  // empty object

  trajectory.record("sweep/F256/speedup", 7.5, "x");
  trajectory.record("needs \"escaping\"\n", -2.5e-3, "ms");
  trajectory.record("sweep/F256/speedup", 8.0, "x");  // overwrite, not dup
  ASSERT_EQ(trajectory.entries().size(), 2u);
  EXPECT_EQ(trajectory.entries()[0].value, 8.0);

  const std::string json = trajectory.to_json();
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find("\"unit\": \"x\""), std::string::npos);

  // The file a bench binary's --json flag produces must parse back clean.
  const std::string path = "BENCH_selftest.json";
  ASSERT_TRUE(trajectory.write_json(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(json_valid(buffer.str())) << buffer.str();
  std::remove(path.c_str());
}

TEST(BenchJson, ValidatorRejectsMalformedText) {
  EXPECT_TRUE(json_valid("{}"));
  EXPECT_TRUE(json_valid(" {\"a\": [1, 2.5e-3, true, null, \"s\\u00e9\"]} "));
  EXPECT_FALSE(json_valid(""));
  EXPECT_FALSE(json_valid("{"));
  EXPECT_FALSE(json_valid("{\"a\": }"));
  EXPECT_FALSE(json_valid("{\"a\": 1,}"));
  EXPECT_FALSE(json_valid("{} trailing"));
  EXPECT_FALSE(json_valid("{\"a\": 01}"));
  EXPECT_FALSE(json_valid("{'a': 1}"));
  EXPECT_FALSE(json_valid("{\"a\": \"unterminated}"));
}

}  // namespace
}  // namespace arfs::support
