// Unit tests of the ReconfigurableApp base state machine, driven directly
// (no System): directive ordering contracts, predicate flags, host-absence
// behaviour, and the rewind path.
#include <gtest/gtest.h>

#include "arfs/support/simple_app.hpp"
#include "arfs/support/synthetic.hpp"

namespace arfs::core {
namespace {

using support::SimpleApp;
using support::synthetic_app;
using support::synthetic_spec;
using trace::ReconfState;

class AppStateMachine : public ::testing::Test {
 protected:
  AppStateMachine() : app_(synthetic_app(0), "unit") {
    app_.force_spec(synthetic_spec(0, 0));
    region_.emplace(backing_, "a1/");
    ctx_.own = &*region_;
  }

  Directive directive(DirectiveKind kind) {
    Directive d;
    d.kind = kind;
    d.target_spec = synthetic_spec(0, 1);
    d.target_config = support::synthetic_config(1);
    return d;
  }

  storage::StableStorage backing_;
  std::optional<StableRegion> region_;
  SimpleApp app_{synthetic_app(0), "unit"};
  ReconfigurableApp::Ctx ctx_;
};

TEST_F(AppStateMachine, NormalWorkRunsAfta) {
  const auto result = app_.frame_step(ctx_, directive(DirectiveKind::kNone));
  EXPECT_TRUE(result.ok);
  EXPECT_FALSE(result.phase_done);
  EXPECT_EQ(app_.work_count(), 1u);
  EXPECT_EQ(app_.reconf_state(), ReconfState::kNormal);
}

TEST_F(AppStateMachine, OffAppDoesNothing) {
  app_.force_spec(std::nullopt);
  const auto result = app_.frame_step(ctx_, directive(DirectiveKind::kNone));
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(app_.work_count(), 0u);
}

TEST_F(AppStateMachine, FullPhaseSequenceSetsPredicates) {
  app_.mark_interrupted();
  EXPECT_EQ(app_.reconf_state(), ReconfState::kInterrupted);
  EXPECT_FALSE(app_.postcondition_ok());

  auto r = app_.frame_step(ctx_, directive(DirectiveKind::kHalt));
  EXPECT_TRUE(r.phase_done);
  EXPECT_EQ(app_.reconf_state(), ReconfState::kHalted);
  EXPECT_TRUE(app_.postcondition_ok());

  r = app_.frame_step(ctx_, directive(DirectiveKind::kPrepare));
  EXPECT_TRUE(r.phase_done);
  EXPECT_EQ(app_.reconf_state(), ReconfState::kPrepared);
  EXPECT_TRUE(app_.transition_ok());

  r = app_.frame_step(ctx_, directive(DirectiveKind::kInitialize));
  EXPECT_TRUE(r.phase_done);
  EXPECT_EQ(app_.reconf_state(), ReconfState::kAwaitingStart);
  EXPECT_TRUE(app_.precondition_ok());

  app_.start(synthetic_spec(0, 1));
  EXPECT_EQ(app_.reconf_state(), ReconfState::kNormal);
  EXPECT_EQ(app_.current_spec(), synthetic_spec(0, 1));
}

TEST_F(AppStateMachine, PrepareBeforeHaltIsContractViolation) {
  EXPECT_THROW(
      (void)app_.frame_step(ctx_, directive(DirectiveKind::kPrepare)),
      ContractViolation);
}

TEST_F(AppStateMachine, InitializeBeforePrepareIsContractViolation) {
  app_.mark_interrupted();
  (void)app_.frame_step(ctx_, directive(DirectiveKind::kHalt));
  EXPECT_THROW(
      (void)app_.frame_step(ctx_, directive(DirectiveKind::kInitialize)),
      ContractViolation);
}

TEST_F(AppStateMachine, HoldDuringReconfigDoesNoWork) {
  app_.mark_interrupted();
  (void)app_.frame_step(ctx_, directive(DirectiveKind::kHalt));
  const auto r = app_.frame_step(ctx_, directive(DirectiveKind::kNone));
  EXPECT_TRUE(r.phase_done);  // held phase stays complete
  EXPECT_EQ(app_.work_count(), 0u);
  EXPECT_EQ(app_.reconf_state(), ReconfState::kHalted);
}

TEST_F(AppStateMachine, NoHostHaltIsTriviallyDone) {
  app_.mark_interrupted();
  ctx_.own = nullptr;  // host fail-stopped
  const auto r = app_.frame_step(ctx_, directive(DirectiveKind::kHalt));
  EXPECT_TRUE(r.phase_done);
  EXPECT_TRUE(app_.postcondition_ok());
}

TEST_F(AppStateMachine, NoHostInitializeWithTargetSpecFaults) {
  app_.mark_interrupted();
  (void)app_.frame_step(ctx_, directive(DirectiveKind::kHalt));
  (void)app_.frame_step(ctx_, directive(DirectiveKind::kPrepare));
  ctx_.own = nullptr;
  const auto r = app_.frame_step(ctx_, directive(DirectiveKind::kInitialize));
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.phase_done);
  EXPECT_NE(r.fault_detail.find("no running host"), std::string::npos);
}

TEST_F(AppStateMachine, NoHostInitializeTowardOffIsTriviallyDone) {
  app_.mark_interrupted();
  (void)app_.frame_step(ctx_, directive(DirectiveKind::kHalt));
  Directive prep = directive(DirectiveKind::kPrepare);
  prep.target_spec = std::nullopt;
  (void)app_.frame_step(ctx_, prep);
  ctx_.own = nullptr;
  Directive init = directive(DirectiveKind::kInitialize);
  init.target_spec = std::nullopt;  // off in the target configuration
  const auto r = app_.frame_step(ctx_, init);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.phase_done);
}

TEST_F(AppStateMachine, RewindToHaltedClearsLaterPredicates) {
  app_.mark_interrupted();
  (void)app_.frame_step(ctx_, directive(DirectiveKind::kHalt));
  (void)app_.frame_step(ctx_, directive(DirectiveKind::kPrepare));
  EXPECT_TRUE(app_.transition_ok());

  app_.rewind_to_halted();
  EXPECT_EQ(app_.reconf_state(), ReconfState::kHalted);
  EXPECT_TRUE(app_.postcondition_ok());  // postcondition survives
  EXPECT_FALSE(app_.transition_ok());
  EXPECT_FALSE(app_.precondition_ok());

  // Re-prepare toward a different target works from the rewound state.
  const auto r = app_.frame_step(ctx_, directive(DirectiveKind::kPrepare));
  EXPECT_TRUE(r.phase_done);
}

TEST_F(AppStateMachine, RewindIsNoOpWhenNotPastHalt) {
  app_.mark_interrupted();
  app_.rewind_to_halted();
  EXPECT_EQ(app_.reconf_state(), ReconfState::kInterrupted);
}

TEST_F(AppStateMachine, MultiFrameStageReportsNotDone) {
  support::SimpleAppParams slow;
  slow.halt_frames = 2;
  SimpleApp app(synthetic_app(1), "slow", slow);
  app.force_spec(synthetic_spec(0, 0));
  app.mark_interrupted();
  auto r = app.frame_step(ctx_, directive(DirectiveKind::kHalt));
  EXPECT_FALSE(r.phase_done);
  EXPECT_EQ(app.reconf_state(), ReconfState::kInterrupted);
  r = app.frame_step(ctx_, directive(DirectiveKind::kHalt));
  EXPECT_TRUE(r.phase_done);
  EXPECT_EQ(app.reconf_state(), ReconfState::kHalted);
}

}  // namespace
}  // namespace arfs::core
