#include <gtest/gtest.h>

#include <memory>

#include "arfs/core/system.hpp"
#include "arfs/props/report.hpp"
#include "arfs/support/mission.hpp"
#include "arfs/support/simple_app.hpp"
#include "arfs/support/synthetic.hpp"

namespace arfs::support {
namespace {

TEST(MissionProfile, EventsCarryFrameTimes) {
  MissionProfile mission(10'000);
  mission.at(5, FactorId{1}, 2, "note").fail(10, ProcessorId{1});
  const sim::FaultPlan plan = mission.build();
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.events()[0].when, 50'000);
  EXPECT_EQ(plan.events()[0].kind, sim::FaultKind::kEnvironmentChange);
  EXPECT_EQ(plan.events()[0].new_value, 2);
  EXPECT_EQ(plan.events()[0].note, "note");
  EXPECT_EQ(plan.events()[1].when, 100'000);
  EXPECT_EQ(plan.events()[1].kind, sim::FaultKind::kProcessorFailStop);
}

TEST(MissionProfile, PeriodicPatternAlternates) {
  MissionProfile mission(10'000);
  mission.periodic(FactorId{1}, 0, 1, /*period=*/10, /*duty=*/4,
                   /*phase=*/2, /*until=*/30);
  const sim::FaultPlan plan = mission.build();
  // Highs at 2, 12, 22; lows at 6, 16, 26.
  ASSERT_EQ(plan.size(), 6u);
  EXPECT_EQ(plan.events()[0].when, 20'000);
  EXPECT_EQ(plan.events()[0].new_value, 1);
  EXPECT_EQ(plan.events()[1].when, 60'000);
  EXPECT_EQ(plan.events()[1].new_value, 0);
  EXPECT_EQ(plan.events()[4].when, 220'000);
}

TEST(MissionProfile, JitterDeterministicAndBounded) {
  const auto build = [] {
    MissionProfile mission(10'000);
    mission.with_jitter(3, 42);
    for (Cycle f = 10; f < 100; f += 10) {
      mission.at(f, FactorId{1}, 1);
    }
    return mission.build();
  };
  const sim::FaultPlan a = build();
  const sim::FaultPlan b = build();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].when, b.events()[i].when);
  }
  // Each event within [frame, frame+3] frames of its nominal time.
  std::size_t i = 0;
  for (Cycle f = 10; f < 100; f += 10, ++i) {
    const SimTime nominal = static_cast<SimTime>(f) * 10'000;
    EXPECT_GE(a.events()[i].when, nominal);
    EXPECT_LE(a.events()[i].when, nominal + 3 * 10'000);
  }
}

TEST(MissionProfile, RejectsBadPeriodic) {
  MissionProfile mission(10'000);
  EXPECT_THROW(mission.periodic(FactorId{1}, 0, 1, 0, 0, 0, 10),
               ContractViolation);
  EXPECT_THROW(mission.periodic(FactorId{1}, 0, 1, 5, 5, 0, 10),
               ContractViolation);
}

TEST(MissionProfile, DrivesAFullSystemRun) {
  ChainSpecParams params;
  params.configs = 3;
  params.apps = 2;
  const core::ReconfigSpec spec = make_chain_spec(params);
  core::System system(spec);
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(0), "a"));
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(1), "b"));

  MissionProfile mission(10'000);
  mission.at(10, kChainSeverityFactor, 1, "first failure")
      .at(40, kChainSeverityFactor, 2, "second failure");
  system.set_fault_plan(mission.build());
  system.run(70);

  const props::TraceReport report = props::check_trace(system.trace(), spec);
  EXPECT_EQ(report.reconfig_count, 2u);
  EXPECT_TRUE(report.all_hold()) << props::render(report);
  EXPECT_EQ(system.scram().current_config(), synthetic_config(2));
}

}  // namespace
}  // namespace arfs::support
