#include <gtest/gtest.h>

#include <algorithm>

#include "arfs/analysis/certify.hpp"
#include "arfs/avionics/uav_system.hpp"
#include "arfs/support/synthetic.hpp"

namespace arfs::analysis {
namespace {

TEST(Certify, UavSpecCertifiesWithDwellAndPlatform) {
  avionics::UavSpecOptions spec_options;
  spec_options.dwell_frames = 10;  // the UAV graph is cyclic (repairs)
  const core::ReconfigSpec spec = avionics::make_uav_spec(spec_options);

  CertifyOptions options;
  options.frame_length = 20'000;
  options.platform = avionics::make_uav_platform();
  const CertificationReport report = certify(spec, options);

  EXPECT_TRUE(report.structure_ok);
  EXPECT_TRUE(report.coverage.all_discharged());
  EXPECT_TRUE(report.cyclic);
  EXPECT_TRUE(report.dwell_ok);
  EXPECT_TRUE(report.schedulable);
  ASSERT_TRUE(report.feasibility.has_value());
  EXPECT_TRUE(report.feasibility->all_feasible());
  EXPECT_TRUE(report.certified());
  EXPECT_NE(render(report).find("CERTIFIED"), std::string::npos);
}

TEST(Certify, CyclicWithoutDwellFails) {
  const core::ReconfigSpec spec = avionics::make_uav_spec();  // dwell = 0
  const CertificationReport report = certify(spec);
  EXPECT_TRUE(report.cyclic);
  EXPECT_FALSE(report.dwell_ok);
  EXPECT_FALSE(report.certified());
  EXPECT_NE(render(report).find("NO dwell rule"), std::string::npos);
}

TEST(Certify, CyclicWithoutDwellAcceptedWhenWaived) {
  const core::ReconfigSpec spec = avionics::make_uav_spec();
  CertifyOptions options;
  options.frame_length = 20'000;
  options.require_dwell_for_cycles = false;
  EXPECT_TRUE(certify(spec, options).certified());
}

TEST(Certify, AcyclicChainCertifiesWithoutDwell) {
  const core::ReconfigSpec spec =
      support::make_chain_spec(support::ChainSpecParams{});
  const CertificationReport report = certify(spec);
  EXPECT_FALSE(report.cyclic);
  EXPECT_TRUE(report.certified());
  ASSERT_TRUE(report.worst_chain.frames.has_value());
}

TEST(Certify, UnschedulableFrameFails) {
  const core::ReconfigSpec spec = avionics::make_uav_spec(
      [] {
        avionics::UavSpecOptions o;
        o.dwell_frames = 10;
        return o;
      }());
  CertifyOptions options;
  options.frame_length = 500;  // cannot hold the 800us autopilot budget
  const CertificationReport report = certify(spec, options);
  EXPECT_FALSE(report.schedulable);
  EXPECT_FALSE(report.certified());
}

TEST(Certify, InfeasiblePlatformFails) {
  avionics::UavSpecOptions spec_options;
  spec_options.dwell_frames = 10;
  const core::ReconfigSpec spec = avionics::make_uav_spec(spec_options);
  CertifyOptions options;
  options.frame_length = 20'000;
  PlatformModel starved = avionics::make_uav_platform();
  starved.processors[avionics::kComputer2].normal =
      core::ResourceDemand{0.1, 8.0, 4.0};
  options.platform = starved;
  const CertificationReport report = certify(spec, options);
  EXPECT_FALSE(report.certified());
  EXPECT_NE(render(report).find("exceeds capacity"), std::string::npos);
}

TEST(Certify, MalformedSpecShortCircuits) {
  core::ReconfigSpec empty;
  const CertificationReport report = certify(empty);
  EXPECT_FALSE(report.structure_ok);
  EXPECT_FALSE(report.certified());
  EXPECT_NE(report.structure_detail.find("no applications"),
            std::string::npos);
  EXPECT_NE(render(report).find("[FAIL]"), std::string::npos);
}

TEST(Certify, JsonOutputIsWellFormedEnough) {
  avionics::UavSpecOptions spec_options;
  spec_options.dwell_frames = 10;
  const core::ReconfigSpec spec = avionics::make_uav_spec(spec_options);
  CertifyOptions options;
  options.frame_length = 20'000;
  options.platform = avionics::make_uav_platform();
  const std::string json = render_json(certify(spec, options));
  EXPECT_NE(json.find("\"certified\": true"), std::string::npos);
  EXPECT_NE(json.find("\"coverage\""), std::string::npos);
  EXPECT_NE(json.find("\"interposition_frames\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"chain_sum_frames\": null"), std::string::npos);
  // Balanced braces (crude structural check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Certify, JsonReportsFailures) {
  core::ReconfigSpec empty;
  const std::string json = render_json(certify(empty));
  EXPECT_NE(json.find("\"certified\": false"), std::string::npos);
  EXPECT_NE(json.find("no applications"), std::string::npos);
}

TEST(Certify, RenderReportsBounds) {
  const core::ReconfigSpec spec =
      support::make_chain_spec(support::ChainSpecParams{});
  const std::string text = render(certify(spec));
  EXPECT_NE(text.find("restriction bounds"), std::string::npos);
  EXPECT_NE(text.find("coverage"), std::string::npos);
  EXPECT_NE(text.find("schedulability"), std::string::npos);
}

}  // namespace
}  // namespace arfs::analysis
