// The resident serving layer (arfs::serve), end to end.
//
// Contracts under test:
//  * FrameRecord wire round-trips; fold_record ignores transport metadata
//    (seq/stamps) — the digest is a function of mission telemetry alone;
//  * FrameRing SPSC protocol: publish/consume order, full-ring rejection
//    (never blocking), wrap-around, close-and-drain, cross-mapping
//    file attach, corruption surfacing as arfs::Error, consumed-span
//    reclaim bounding the resident window;
//  * StreamTransport/StreamSource: length-prefixed framing round-trips,
//    the pending-buffer cap rejects instead of blocking, EOF closes;
//  * SimServer: admission control at max_sessions, streamed sessions over
//    both transports digest bit-identical to the run_mission_sweep pooled
//    oracle, and — the backpressure contract — a fully stalled consumer
//    costs itself frames (explicit gap records, contiguous seq and frame
//    accounting) but never stalls System::run_frame;
//  * concurrent producer/consumer on one ring (the TSan target for the
//    `serve` label);
//  * bench::Log2Histogram percentile extraction.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "arfs/common/check.hpp"
#include "arfs/serve/client.hpp"
#include "arfs/serve/frame_ring.hpp"
#include "arfs/serve/record.hpp"
#include "arfs/serve/server.hpp"
#include "arfs/serve/transport.hpp"
#include "arfs/sim/batch.hpp"
#include "arfs/sim/fleet.hpp"
#include "arfs/support/crash_sweep.hpp"
#include "arfs/support/fleet.hpp"
#include "arfs/support/simple_app.hpp"
#include "arfs/support/sweep.hpp"
#include "arfs/support/synthetic.hpp"
#include "bench_main.hpp"

namespace arfs::serve {
namespace {

std::string temp_path(const std::string& tag) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/arfs_serve_" + tag +
         "_" + std::to_string(::getpid());
}

FrameRecord frame_record(std::uint64_t frame, std::uint64_t payload) {
  FrameRecord r;
  r.kind = RecordKind::kFrame;
  r.frame = frame;
  r.data0 = payload;
  r.data1 = payload ^ 0xABCDULL;
  r.data2 = payload + 7;
  return r;
}

// --- records ---

TEST(Record, WireRoundTripAllKinds) {
  for (const RecordKind kind :
       {RecordKind::kFrame, RecordKind::kGap, RecordKind::kEnd}) {
    FrameRecord in;
    in.kind = kind;
    in.seq = 0x1122334455667788ULL;
    in.frame = 42;
    in.data0 = 0xDEADBEEFCAFEF00DULL;
    in.data1 = 7;
    in.data2 = ~0ULL;
    std::vector<std::uint8_t> bytes;
    encode_record(bytes, in);
    ASSERT_EQ(bytes.size(), kRecordBytes);
    FrameRecord out;
    ASSERT_TRUE(decode_record(bytes.data(), bytes.size(), out));
    EXPECT_EQ(out.kind, in.kind);
    EXPECT_EQ(out.seq, in.seq);
    EXPECT_EQ(out.frame, in.frame);
    EXPECT_EQ(out.data0, in.data0);
    EXPECT_EQ(out.data1, in.data1);
    EXPECT_EQ(out.data2, in.data2);
  }
}

TEST(Record, DecodeRejectsShortOrUnknownKind) {
  std::vector<std::uint8_t> bytes;
  encode_record(bytes, FrameRecord{});
  FrameRecord out;
  EXPECT_FALSE(decode_record(bytes.data(), kRecordBytes - 1, out));
  bytes[0] = 99;  // no such kind
  EXPECT_FALSE(decode_record(bytes.data(), bytes.size(), out));
}

TEST(Record, FoldIgnoresTransportMetadata) {
  FrameRecord a = frame_record(5, 1234);
  FrameRecord b = a;
  b.seq = 999;  // transport-only field
  std::uint64_t da = kDigestBasis;
  std::uint64_t db = kDigestBasis;
  fold_record(da, a);
  fold_record(db, b);
  EXPECT_EQ(da, db);

  b.data0 ^= 1;  // telemetry must move the digest
  db = kDigestBasis;
  fold_record(db, b);
  EXPECT_NE(da, db);
}

// --- FrameRing ---

TEST(FrameRing, PublishConsumeInOrder) {
  RingOptions options;
  options.slot_count = 8;
  auto ring = FrameRing::create(options);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring->try_publish(frame_record(i + 1, i), 1000 + i));
  }
  FrameRing::Delivered got;
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_EQ(ring->try_consume(got), FrameRing::Consume::kRecord);
    EXPECT_EQ(got.record.seq, i);  // assigned at publish, contiguous
    EXPECT_EQ(got.record.frame, i + 1);
    EXPECT_EQ(got.record.data0, i);
    EXPECT_EQ(got.stamp_ns, 1000 + i);
  }
  EXPECT_EQ(ring->try_consume(got), FrameRing::Consume::kEmpty);
}

TEST(FrameRing, FullRingRejectsWithoutBlocking) {
  RingOptions options;
  options.slot_count = 4;
  auto ring = FrameRing::create(options);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring->try_publish(frame_record(i + 1, i), 0));
  }
  EXPECT_FALSE(ring->try_publish(frame_record(5, 5), 0));
  EXPECT_EQ(ring->stats().publish_fails, 1u);
  EXPECT_EQ(ring->free_slots(), 0u);

  FrameRing::Delivered got;
  ASSERT_EQ(ring->try_consume(got), FrameRing::Consume::kRecord);
  EXPECT_TRUE(ring->try_publish(frame_record(5, 5), 0));
}

TEST(FrameRing, WrapKeepsSequenceContiguous) {
  RingOptions options;
  options.slot_count = 4;
  auto ring = FrameRing::create(options);
  FrameRing::Delivered got;
  std::uint64_t next = 0;
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(ring->try_publish(frame_record(round + 1, round), 0));
    ASSERT_TRUE(ring->try_publish(frame_record(round + 1, round), 0));
    for (int k = 0; k < 2; ++k) {
      ASSERT_EQ(ring->try_consume(got), FrameRing::Consume::kRecord);
      EXPECT_EQ(got.record.seq, next++);
    }
  }
  EXPECT_EQ(ring->published(), 20u);
  EXPECT_EQ(ring->consumed(), 20u);
}

TEST(FrameRing, CloseDrainsThenReportsClosed) {
  auto ring = FrameRing::create(RingOptions{});
  ASSERT_TRUE(ring->try_publish(frame_record(1, 0), 0));
  ring->close();
  FrameRing::Delivered got;
  ASSERT_EQ(ring->try_consume(got), FrameRing::Consume::kRecord);
  EXPECT_EQ(ring->try_consume(got), FrameRing::Consume::kClosed);
}

TEST(FrameRing, FileBackedAttachConsumesAcrossMappings) {
  const std::string path = temp_path("attach") + ".ring";
  RingOptions options;
  options.path = path;
  options.slot_count = 8;
  auto producer = FrameRing::create(options);
  EXPECT_TRUE(producer->file_backed());
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(producer->try_publish(frame_record(i + 1, 0xA0 + i), 17));
  }
  producer->close();

  // A second, independent mapping of the same file sees the same protocol.
  auto consumer = FrameRing::attach(path);
  EXPECT_EQ(consumer->slot_count(), producer->slot_count());
  FrameRing::Delivered got;
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_EQ(consumer->try_consume(got), FrameRing::Consume::kRecord);
    EXPECT_EQ(got.record.data0, 0xA0 + i);
    EXPECT_EQ(got.stamp_ns, 17u);
  }
  EXPECT_EQ(consumer->try_consume(got), FrameRing::Consume::kClosed);
  // The producer's mapping observes the attached consumer's cursor.
  EXPECT_EQ(producer->consumed(), 3u);
  ::unlink(path.c_str());
}

TEST(FrameRing, AttachRejectsMissingShortAndGarbageFiles) {
  EXPECT_THROW(FrameRing::attach(temp_path("nonexistent")), Error);

  const std::string short_path = temp_path("short");
  std::ofstream(short_path) << "hello";
  EXPECT_THROW(FrameRing::attach(short_path), Error);
  ::unlink(short_path.c_str());

  const std::string junk_path = temp_path("junk");
  std::ofstream(junk_path) << std::string(4096, 'x');
  EXPECT_THROW(FrameRing::attach(junk_path), Error);
  ::unlink(junk_path.c_str());
}

TEST(FrameRing, CorruptSlotSurfacesCleanError) {
  const std::string path = temp_path("corrupt") + ".ring";
  RingOptions options;
  options.path = path;
  auto producer = FrameRing::create(options);
  ASSERT_TRUE(producer->try_publish(frame_record(1, 42), 0));

  // Flip a payload byte through the shared file; the consumer's CRC check
  // must catch it and throw, never deliver garbage.
  std::fstream file(path,
                    std::ios::in | std::ios::out | std::ios::binary);
  file.seekp(static_cast<std::streamoff>(FrameRing::kSlotsOffset +
                                         FrameRing::kSlotHeaderBytes + 24));
  file.put('\xFF');
  file.close();

  auto consumer = FrameRing::attach(path);
  FrameRing::Delivered got;
  EXPECT_THROW((void)consumer->try_consume(got), Error);
  ::unlink(path.c_str());
}

TEST(FrameRing, ReclaimDropsConsumedSpans) {
  const std::string path = temp_path("reclaim") + ".ring";
  RingOptions options;
  options.path = path;
  options.slot_count = 64;
  options.slot_bytes = 128;
  options.reclaim_watermark_bytes = 4096;  // one page per reclaim batch
  auto ring = FrameRing::create(options);

  FrameRing::Delivered got;
  for (std::uint64_t i = 0; i < 256; ++i) {
    ASSERT_TRUE(ring->try_publish(frame_record(i + 1, i), 0));
    ASSERT_EQ(ring->try_consume(got), FrameRing::Consume::kRecord);
    EXPECT_EQ(got.record.data0, i);  // refaulted pages re-read correctly
  }
  EXPECT_GT(ring->stats().reclaims, 0u);
  EXPECT_GT(ring->stats().reclaimed_bytes, 0u);
  ::unlink(path.c_str());
}

TEST(FrameRing, ConcurrentProducerConsumer) {
  // The TSan target: one producer and one consumer thread race on the
  // cursor words; every record must arrive intact and in order.
  RingOptions options;
  options.slot_count = 16;
  auto ring = FrameRing::create(options);
  constexpr std::uint64_t kRecords = 20'000;

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kRecords;) {
      if (ring->try_publish(frame_record(i + 1, i), i)) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
    ring->close();
  });

  std::uint64_t seen = 0;
  bool ordered = true;
  FrameRing::Delivered got;
  for (;;) {
    const FrameRing::Consume result = ring->try_consume(got);
    if (result == FrameRing::Consume::kClosed) break;
    if (result == FrameRing::Consume::kEmpty) {
      std::this_thread::yield();
      continue;
    }
    ordered = ordered && got.record.seq == seen && got.record.data0 == seen;
    ++seen;
  }
  producer.join();
  EXPECT_EQ(seen, kRecords);
  EXPECT_TRUE(ordered);
}

// --- stream transport ---

TEST(StreamTransport, LengthPrefixedRoundTrip) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  StreamTransport transport(fds[0]);
  StreamSource source(fds[1]);

  for (std::uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(transport.try_send(frame_record(i + 1, i), 5000 + i));
  }
  transport.close();

  FrameSource::Item item;
  for (std::uint64_t i = 0; i < 20; ++i) {
    ASSERT_EQ(source.poll(item), FrameSource::Poll::kRecord);
    EXPECT_EQ(item.record.frame, i + 1);
    EXPECT_EQ(item.record.data0, i);
    EXPECT_EQ(item.stamp_ns, 5000 + i);
  }
  EXPECT_EQ(source.poll(item), FrameSource::Poll::kClosed);
}

TEST(StreamTransport, PendingCapRejectsInsteadOfBlocking) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Tiny pending buffer; the un-drained peer's socket buffer fills first,
  // then the cap must reject sends rather than stall.
  StreamTransport transport(fds[0], /*pending_cap_bytes=*/2 * 1024);
  StreamSource source(fds[1]);

  std::uint64_t accepted = 0;
  std::uint64_t frame = 0;
  bool saturated = false;
  for (std::uint64_t i = 0; i < 1'000'000; ++i) {
    ++frame;
    if (transport.try_send(frame_record(frame, frame), 0)) {
      ++accepted;
    } else {
      saturated = true;
      break;
    }
  }
  ASSERT_TRUE(saturated);  // finite kernel buffer + cap ⇒ must reject

  // Draining the peer reopens capacity.
  FrameSource::Item item;
  std::uint64_t drained = 0;
  while (source.poll(item) == FrameSource::Poll::kRecord) {
    transport.pump();
    ++drained;
  }
  EXPECT_GT(drained, 0u);
  EXPECT_LE(drained, accepted);
  ++frame;
  EXPECT_TRUE(transport.try_send(frame_record(frame, frame), 0));
}

// --- server + client ---

support::MissionFactory chain_mission_factory() {
  return [] {
    auto spec = std::make_shared<core::ReconfigSpec>(
        support::make_chain_spec({}));
    auto system = std::make_unique<core::System>(*spec);
    for (const core::AppDecl& decl : spec->apps()) {
      system->add_app(
          std::make_unique<support::SimpleApp>(decl.id, decl.name));
    }
    support::CrashMission mission;
    mission.keepalive = spec;
    mission.system = std::move(system);
    return mission;
  };
}

support::PlanFactory chain_plan_factory(Cycle first_frame, Cycle frames) {
  support::EnvPlanParams params;
  params.factors = support::make_chain_spec({}).factors().factors();
  params.changes = 3;
  params.first_frame = first_frame;
  params.frames = frames;
  return support::make_env_plan_factory(std::move(params));
}

/// The in-process oracle: the pooled run_mission_sweep over the same
/// factory/plans/base_seed, folding the same frame records the server
/// streams. Element i is the digest session i must reproduce.
std::vector<std::uint64_t> oracle_digests(std::size_t sessions,
                                          const ServeOptions& options) {
  const support::MissionFactory factory = chain_mission_factory();
  const support::PlanFactory plans =
      chain_plan_factory(options.warmup_frames, options.frame_budget);
  support::SystemPool pool(factory, options.warmup_frames);
  sim::FleetRunner fleet;
  return support::run_mission_sweep<std::uint64_t>(
      sessions, options.base_seed,
      std::function<std::uint64_t(const support::MissionJob&,
                                  support::PooledMission&)>(
          [&](const support::MissionJob& job,
              support::PooledMission& mission) {
            mission.system().set_fault_plan(plans(job.seed));
            std::uint64_t digest = kDigestBasis;
            for (Cycle f = 1; f <= options.frame_budget; ++f) {
              mission.system().run_frame();
              fold_record(digest,
                          make_frame_record(mission.system(),
                                            options.warmup_frames + f));
            }
            return digest;
          }),
      pool, fleet);
}

SimServer make_server(const ServeOptions& options) {
  return SimServer(
      chain_mission_factory(),
      chain_plan_factory(options.warmup_frames, options.frame_budget),
      options);
}

/// Runs `sessions` sessions of `kind` to completion, single-threaded:
/// production first (never client-gated), then drain interleaved with
/// client polls.
std::vector<ClientReport> run_sessions(SimServer& server, TransportKind kind,
                                       std::size_t sessions) {
  std::vector<std::unique_ptr<SessionClient>> clients;
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < sessions; ++i) {
    SimServer::Opened opened = server.open_session(kind);
    ids.push_back(opened.id);
    clients.push_back(
        std::make_unique<SessionClient>(std::move(opened.source)));
  }
  server.pump_all();
  bool flushed = false;
  for (int round = 0; round < 100'000; ++round) {
    bool all_done = true;
    for (auto& client : clients) {
      if (!client->done()) {
        (void)client->poll();
        all_done = all_done && client->done();
      }
    }
    flushed = server.drain();
    if (flushed && all_done) break;
  }
  EXPECT_TRUE(flushed);
  std::vector<ClientReport> reports;
  for (std::size_t i = 0; i < sessions; ++i) {
    EXPECT_TRUE(server.report(ids[i]).completed) << "session " << i;
    reports.push_back(clients[i]->report());
  }
  return reports;
}

ServeOptions small_serve_options() {
  ServeOptions options;
  options.frame_budget = 12;
  options.warmup_frames = 4;
  options.base_seed = 77;
  options.ring_slot_count = 32;  // > budget + end: lossless without polls
  return options;
}

TEST(SimServer, ShmSessionsMatchTheSweepOracle) {
  const ServeOptions options = small_serve_options();
  constexpr std::size_t kSessions = 4;
  const std::vector<std::uint64_t> oracle =
      oracle_digests(kSessions, options);

  SimServer server = make_server(options);
  const std::vector<ClientReport> reports =
      run_sessions(server, TransportKind::kShm, kSessions);
  for (std::size_t i = 0; i < kSessions; ++i) {
    EXPECT_TRUE(reports[i].accounted()) << "session " << i;
    EXPECT_TRUE(reports[i].digest_matches()) << "session " << i;
    EXPECT_EQ(reports[i].frames, options.frame_budget);
    EXPECT_EQ(reports[i].gap_frames, 0u);
    EXPECT_EQ(reports[i].digest, oracle[i]) << "session " << i;
  }
  // Sessions ran through pooled systems, not one construction each.
  EXPECT_LE(server.pool_stats().constructions, kSessions);
}

TEST(SimServer, StreamSessionsMatchTheSweepOracle) {
  const ServeOptions options = small_serve_options();
  constexpr std::size_t kSessions = 4;
  const std::vector<std::uint64_t> oracle =
      oracle_digests(kSessions, options);

  SimServer server = make_server(options);
  const std::vector<ClientReport> reports =
      run_sessions(server, TransportKind::kStream, kSessions);
  for (std::size_t i = 0; i < kSessions; ++i) {
    EXPECT_TRUE(reports[i].accounted()) << "session " << i;
    EXPECT_TRUE(reports[i].digest_matches()) << "session " << i;
    EXPECT_EQ(reports[i].digest, oracle[i]) << "session " << i;
  }
}

TEST(SimServer, ShmAndStreamDigestsAgree) {
  const ServeOptions options = small_serve_options();
  SimServer shm_server = make_server(options);
  SimServer stream_server = make_server(options);
  const std::vector<ClientReport> shm =
      run_sessions(shm_server, TransportKind::kShm, 2);
  const std::vector<ClientReport> stream =
      run_sessions(stream_server, TransportKind::kStream, 2);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(shm[i].digest, stream[i].digest);  // transport never digests
  }
}

TEST(SimServer, AdmissionControlCapsConcurrentSessions) {
  ServeOptions options = small_serve_options();
  options.max_sessions = 2;
  SimServer server = make_server(options);

  SimServer::Opened first = server.open_session(TransportKind::kShm);
  SimServer::Opened second = server.open_session(TransportKind::kShm);
  EXPECT_THROW((void)server.open_session(TransportKind::kShm), Error);
  EXPECT_EQ(server.sessions_rejected(), 1u);
  EXPECT_EQ(server.active_sessions(), 2u);

  // Completing a session frees its slot.
  SessionClient c1(std::move(first.source));
  SessionClient c2(std::move(second.source));
  server.pump_all();
  for (int round = 0; round < 100'000; ++round) {
    (void)c1.poll();
    (void)c2.poll();
    if (server.drain() && c1.done() && c2.done()) break;
  }
  EXPECT_EQ(server.active_sessions(), 0u);
  SimServer::Opened third = server.open_session(TransportKind::kShm);
  EXPECT_EQ(server.report(third.id).index, 2u);  // sweep index continues
}

TEST(SimServer, FileBackedRingSessionAttachesByPath) {
  ServeOptions options = small_serve_options();
  options.shm_dir = temp_path("shmdir");
  ASSERT_EQ(::mkdir(options.shm_dir.c_str(), 0755), 0);

  SimServer server = make_server(options);
  SimServer::Opened opened = server.open_session(TransportKind::kShm);
  ASSERT_FALSE(opened.ring_path.empty());

  // An out-of-process-style client: attach the ring file, ignore the
  // in-process source.
  SessionClient client(std::make_unique<RingSource>(
      std::shared_ptr<FrameRing>(FrameRing::attach(opened.ring_path))));
  server.pump_all();
  for (int round = 0; round < 100'000; ++round) {
    (void)client.poll();
    if (server.drain() && client.done()) break;
  }
  EXPECT_TRUE(client.report().accounted());
  EXPECT_TRUE(client.report().digest_matches());
  ::unlink(opened.ring_path.c_str());
  ::rmdir(options.shm_dir.c_str());
}

TEST(SimServer, StalledConsumerGetsGapsAndNeverStallsProduction) {
  ServeOptions options = small_serve_options();
  options.ring_slot_count = 4;   // tiny window
  options.frame_budget = 64;    // far more frames than the ring holds
  SimServer server = make_server(options);

  SimServer::Opened opened = server.open_session(TransportKind::kShm);
  // The client does not poll at all while the server produces: pump_all
  // must still terminate with the full budget produced.
  server.pump_all();
  const SessionReport& mid = server.report(opened.id);
  EXPECT_EQ(mid.frames_produced, options.frame_budget);
  EXPECT_GT(mid.frames_skipped, 0u);
  EXPECT_EQ(mid.frames_streamed + mid.frames_skipped, mid.frames_produced);

  // The consumer comes back: the queued tail (gap + end) drains and the
  // client's accounting tiles the full mission despite the losses.
  SessionClient client(std::move(opened.source));
  for (int round = 0; round < 100'000; ++round) {
    (void)client.poll();
    if (server.drain() && client.done()) break;
  }
  const ClientReport& report = client.report();
  const SessionReport& session = server.report(opened.id);
  EXPECT_TRUE(session.completed);
  EXPECT_TRUE(report.accounted());
  EXPECT_GT(report.gaps, 0u);
  EXPECT_EQ(report.gap_frames, session.frames_skipped);
  EXPECT_EQ(report.frames + report.gap_frames, options.frame_budget);
  EXPECT_TRUE(report.seq_contiguous);
  EXPECT_TRUE(report.frames_contiguous);
  // Lossy delivery: the client's fold cannot match, but the producer's
  // digest still proves what the mission computed.
  EXPECT_FALSE(report.digest_matches());
  EXPECT_EQ(report.producer_digest, session.producer_digest);
}

TEST(SessionClient, LatencySinkSeesEveryFrameRecord) {
  ServeOptions options = small_serve_options();
  SimServer server = make_server(options);
  SimServer::Opened opened = server.open_session(TransportKind::kShm);
  std::uint64_t sink_calls = 0;
  SessionClient client(std::move(opened.source),
                       [&](std::uint64_t ns) { (void)ns; ++sink_calls; });
  server.pump_all();
  for (int round = 0; round < 100'000; ++round) {
    (void)client.poll();
    if (server.drain() && client.done()) break;
  }
  EXPECT_EQ(sink_calls, client.report().frames);
  EXPECT_EQ(sink_calls, options.frame_budget);
}

// --- bench::Log2Histogram (shared percentile helper) ---

TEST(Log2Histogram, ExactForSmallValuesAndQuantiles) {
  bench::Log2Histogram hist;
  for (std::uint64_t v = 0; v < 10; ++v) hist.record(v);
  EXPECT_EQ(hist.count(), 10u);
  EXPECT_EQ(hist.max(), 9u);
  EXPECT_EQ(hist.quantile(0.0), 0u);
  EXPECT_EQ(hist.p50(), 4u);  // rank 4 of 0..9
  EXPECT_EQ(hist.quantile(1.0), 9u);
}

TEST(Log2Histogram, PercentilesWithinBucketResolution) {
  bench::Log2Histogram hist;
  // 99 fast samples at ~1us, one slow outlier at ~1ms.
  for (int i = 0; i < 99; ++i) hist.record(1'000);
  hist.record(1'000'000);
  const std::uint64_t p50 = hist.p50();
  const std::uint64_t p99 = hist.p99();
  EXPECT_GE(p50, 960u);  // within one 1/16 sub-bucket below
  EXPECT_LE(p50, 1'000u);
  EXPECT_LE(p99, 1'000u);  // the outlier is past rank 98 of 100
  // quantile() reports the bucket floor (conservative), so the top rank
  // lands within one sub-bucket below the outlier; max() is exact.
  EXPECT_GE(hist.quantile(1.0), 1'000'000u * 15 / 16);
  EXPECT_LE(hist.quantile(1.0), 1'000'000u);
  EXPECT_EQ(hist.max(), 1'000'000u);
  EXPECT_GT(hist.mean(), 1'000.0);
}

TEST(Log2Histogram, MergeAccumulates) {
  bench::Log2Histogram a;
  bench::Log2Histogram b;
  for (int i = 0; i < 50; ++i) a.record(100);
  for (int i = 0; i < 50; ++i) b.record(10'000);
  a.merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_EQ(a.max(), 10'000u);
  EXPECT_LE(a.p50(), 100u);
  EXPECT_GT(a.p95(), 9'000u);
}

}  // namespace
}  // namespace arfs::serve
