// Whole-system determinism: the reproduction's central methodological
// promise is that every run is exactly replayable from its seeds. Two
// systems built identically must produce byte-identical traces, stats, and
// exports — including under noise, random campaigns, and the full avionics
// stack.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "arfs/analysis/dependability.hpp"
#include "arfs/avionics/uav_system.hpp"
#include "arfs/core/system.hpp"
#include "arfs/support/simple_app.hpp"
#include "arfs/support/sweep.hpp"
#include "arfs/support/synthetic.hpp"
#include "arfs/trace/export.hpp"

namespace arfs {
namespace {

std::string run_synthetic(std::uint64_t seed) {
  support::RandomSpecParams params;
  params.apps = 3;
  params.configs = 4;
  params.dependencies = 1;
  const core::ReconfigSpec spec = support::make_random_spec(params, seed);

  core::SystemOptions options;
  options.heartbeat_loss_prob = 0.02;
  options.noise_seed = seed * 3 + 1;
  core::System system(spec, options);
  for (const core::AppDecl& decl : spec.apps()) {
    system.add_app(
        std::make_unique<support::SimpleApp>(decl.id, decl.name));
  }

  Rng rng(seed);
  sim::CampaignParams campaign;
  campaign.horizon = 300 * 10'000;
  campaign.environment_changes = 10;
  for (const env::FactorSpec& f : spec.factors().factors()) {
    campaign.factors.push_back(f.id);
  }
  campaign.factor_max = 1;
  system.set_fault_plan(sim::generate_campaign(campaign, rng));
  system.run(400);

  std::ostringstream os;
  trace::write_csv(system.trace(), os);
  os << system.stats().heartbeats_lost << '/' << system.stats().false_alarms
     << '/' << system.scram().stats().reconfigs_completed;
  return os.str();
}

TEST(Determinism, SyntheticCampaignByteIdentical) {
  EXPECT_EQ(run_synthetic(11), run_synthetic(11));
}

TEST(Determinism, DifferentSeedsDiverge) {
  EXPECT_NE(run_synthetic(11), run_synthetic(12));
}

std::string run_avionics() {
  avionics::UavSystem uav;
  uav.run(5);
  uav.autopilot().engage(avionics::ApMode::kClimbTo, 5600.0);
  uav.run(100);
  uav.electrical().fail_alternator(0);
  uav.run(50);
  uav.electrical().fail_alternator(1);
  uav.run(50);

  std::ostringstream os;
  trace::write_json(uav.system().trace(), os);
  os << uav.plant().truth().altitude_ft << '/'
     << uav.plant().truth().heading_deg;
  return os.str();
}

TEST(Determinism, AvionicsStackByteIdentical) {
  // Covers the aircraft dynamics, sensor noise, electrical model, SCRAM,
  // and JSON export in one equality.
  EXPECT_EQ(run_avionics(), run_avionics());
}

// The parallel batch engine's promise: results are bit-identical at any
// thread count. Verified here at 1, 2, and 8 threads for the Monte-Carlo
// dependability estimate (20k trials, the paper's section 5.1 workload).
TEST(Determinism, DependabilityBitIdenticalAt1_2_8Threads) {
  const analysis::DesignUnits design{6, 4, 2};
  analysis::MissionParams mission;
  mission.failure_rate_per_hour = 0.02;
  mission.trials = 20'000;

  auto estimate = [&](std::size_t threads) {
    sim::BatchRunner runner{sim::BatchOptions{threads, 0}};
    Rng rng(271828);
    return analysis::estimate_dependability(design, mission, rng, runner);
  };

  const analysis::DependabilityEstimate e1 = estimate(1);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const analysis::DependabilityEstimate en = estimate(threads);
    EXPECT_EQ(en.p_full_whole_mission, e1.p_full_whole_mission) << threads;
    EXPECT_EQ(en.p_safe_whole_mission, e1.p_safe_whole_mission) << threads;
    EXPECT_EQ(en.p_loss, e1.p_loss) << threads;
    EXPECT_EQ(en.full_service_fraction, e1.full_service_fraction) << threads;
    EXPECT_EQ(en.safe_or_better_fraction, e1.safe_or_better_fraction)
        << threads;
    EXPECT_EQ(en.mean_failures, e1.mean_failures) << threads;
  }
}

// Whole-system missions fanned across threads stay byte-identical too:
// each job builds its own System and campaign from its job seed, so the
// trace digests must match a serial sweep of the same seeds exactly.
TEST(Determinism, MissionSweepBitIdenticalAcrossThreadCounts) {
  constexpr std::size_t kMissions = 6;
  constexpr std::uint64_t kBase = 2024;
  const std::function<std::string(const support::MissionJob&)> fly =
      [](const support::MissionJob& job) { return run_synthetic(job.seed); };

  sim::BatchRunner serial{sim::BatchOptions{1, 0}};
  const std::vector<std::string> reference =
      support::run_mission_sweep<std::string>(kMissions, kBase, fly, serial);

  // The sweep's seeds are exposed for serial replay of any single mission.
  const std::vector<std::uint64_t> seeds =
      support::mission_seeds(kMissions, kBase);
  ASSERT_EQ(seeds.size(), kMissions);
  EXPECT_EQ(run_synthetic(seeds[3]), reference[3]);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    sim::BatchRunner parallel{sim::BatchOptions{threads, 0}};
    EXPECT_EQ(support::run_mission_sweep<std::string>(kMissions, kBase, fly,
                                                      parallel),
              reference)
        << "thread count " << threads;
  }
}

}  // namespace
}  // namespace arfs
