// Whole-system determinism: the reproduction's central methodological
// promise is that every run is exactly replayable from its seeds. Two
// systems built identically must produce byte-identical traces, stats, and
// exports — including under noise, random campaigns, and the full avionics
// stack.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "arfs/avionics/uav_system.hpp"
#include "arfs/core/system.hpp"
#include "arfs/support/simple_app.hpp"
#include "arfs/support/synthetic.hpp"
#include "arfs/trace/export.hpp"

namespace arfs {
namespace {

std::string run_synthetic(std::uint64_t seed) {
  support::RandomSpecParams params;
  params.apps = 3;
  params.configs = 4;
  params.dependencies = 1;
  const core::ReconfigSpec spec = support::make_random_spec(params, seed);

  core::SystemOptions options;
  options.heartbeat_loss_prob = 0.02;
  options.noise_seed = seed * 3 + 1;
  core::System system(spec, options);
  for (const core::AppDecl& decl : spec.apps()) {
    system.add_app(
        std::make_unique<support::SimpleApp>(decl.id, decl.name));
  }

  Rng rng(seed);
  sim::CampaignParams campaign;
  campaign.horizon = 300 * 10'000;
  campaign.environment_changes = 10;
  for (const env::FactorSpec& f : spec.factors().factors()) {
    campaign.factors.push_back(f.id);
  }
  campaign.factor_max = 1;
  system.set_fault_plan(sim::generate_campaign(campaign, rng));
  system.run(400);

  std::ostringstream os;
  trace::write_csv(system.trace(), os);
  os << system.stats().heartbeats_lost << '/' << system.stats().false_alarms
     << '/' << system.scram().stats().reconfigs_completed;
  return os.str();
}

TEST(Determinism, SyntheticCampaignByteIdentical) {
  EXPECT_EQ(run_synthetic(11), run_synthetic(11));
}

TEST(Determinism, DifferentSeedsDiverge) {
  EXPECT_NE(run_synthetic(11), run_synthetic(12));
}

std::string run_avionics() {
  avionics::UavSystem uav;
  uav.run(5);
  uav.autopilot().engage(avionics::ApMode::kClimbTo, 5600.0);
  uav.run(100);
  uav.electrical().fail_alternator(0);
  uav.run(50);
  uav.electrical().fail_alternator(1);
  uav.run(50);

  std::ostringstream os;
  trace::write_json(uav.system().trace(), os);
  os << uav.plant().truth().altitude_ft << '/'
     << uav.plant().truth().heading_deg;
  return os.str();
}

TEST(Determinism, AvionicsStackByteIdentical) {
  // Covers the aircraft dynamics, sensor noise, electrical model, SCRAM,
  // and JSON export in one equality.
  EXPECT_EQ(run_avionics(), run_avionics());
}

}  // namespace
}  // namespace arfs
