#include <gtest/gtest.h>

#include "arfs/common/check.hpp"
#include "arfs/storage/replicated.hpp"

namespace arfs::storage {
namespace {

TEST(ReplicatedStorage, WriteCommitReadRoundTrip) {
  ReplicatedStableStorage s(3);
  s.write("k", std::int64_t{7});
  EXPECT_FALSE(s.read("k"));  // nothing committed yet
  s.commit(0);
  ASSERT_TRUE(s.read("k"));
  EXPECT_EQ(std::get<std::int64_t>(s.read("k").value()), 7);
  // Every replica holds the value.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(s.replica(i).contains("k"));
  }
}

TEST(ReplicatedStorage, SurvivesMinorityFailures) {
  ReplicatedStableStorage s(3);
  s.write("k", std::int64_t{1});
  s.commit(0);
  s.fail_replica(0);
  ASSERT_TRUE(s.read("k"));
  // Writes continue on the survivors.
  s.write("k", std::int64_t{2});
  s.commit(1);
  EXPECT_EQ(std::get<std::int64_t>(s.read("k").value()), 2);
  EXPECT_EQ(s.available_count(), 2u);
}

TEST(ReplicatedStorage, MajorityLossMakesKeyUnavailable) {
  ReplicatedStableStorage s(3);
  s.write("k", std::int64_t{1});
  s.commit(0);
  s.fail_replica(0);
  s.fail_replica(1);
  // One survivor cannot form a majority of the configured three.
  EXPECT_FALSE(s.read("k"));
  EXPECT_GE(s.stats().unavailable_reads, 1u);
}

TEST(ReplicatedStorage, VotingMasksSingleCorruption) {
  ReplicatedStableStorage s(3);
  s.write("k", std::int64_t{10});
  s.commit(0);
  s.corrupt_replica(1, "k", std::int64_t{999}, 1);

  const Expected<Value> v = s.read("k");
  ASSERT_TRUE(v);
  EXPECT_EQ(std::get<std::int64_t>(v.value()), 10);
  EXPECT_GE(s.stats().masked_corruptions, 1u);
}

TEST(ReplicatedStorage, MajorityCorruptionWins) {
  // The construction's documented limit: voting returns whatever the
  // majority says, including a majority of corrupted replicas.
  ReplicatedStableStorage s(3);
  s.write("k", std::int64_t{10});
  s.commit(0);
  s.corrupt_replica(0, "k", std::int64_t{999}, 1);
  s.corrupt_replica(1, "k", std::int64_t{999}, 1);
  ASSERT_TRUE(s.read("k"));
  EXPECT_EQ(std::get<std::int64_t>(s.read("k").value()), 999);
}

TEST(ReplicatedStorage, TypeDivergenceCountsAsDifferentValues) {
  ReplicatedStableStorage s(3);
  s.write("k", std::int64_t{1});
  s.commit(0);
  s.corrupt_replica(2, "k", std::string{"1"}, 1);  // same rendering, other type
  const Expected<Value> v = s.read("k");
  ASSERT_TRUE(v);
  EXPECT_TRUE(std::holds_alternative<std::int64_t>(v.value()));
}

TEST(ReplicatedStorage, RepairResynchronizesFromMajority) {
  ReplicatedStableStorage s(3);
  s.write("a", std::int64_t{1});
  s.write("b", std::int64_t{2});
  s.commit(0);
  s.fail_replica(2);
  s.write("a", std::int64_t{11});
  s.commit(1);

  s.repair_replica(2, 2);
  EXPECT_EQ(s.available_count(), 3u);
  // The repaired replica holds the current values.
  EXPECT_EQ(std::get<std::int64_t>(s.replica(2).read("a").value()), 11);
  EXPECT_EQ(std::get<std::int64_t>(s.replica(2).read("b").value()), 2);
  // And participates in future majorities: fail the other two.
  s.fail_replica(0);
  EXPECT_TRUE(s.read("a"));  // replicas 1+2 still form a majority
}

TEST(ReplicatedStorage, FailedReplicaMissesWritesUntilRepair) {
  ReplicatedStableStorage s(3);
  s.fail_replica(1);
  s.write("k", std::int64_t{5});
  s.commit(0);
  EXPECT_FALSE(s.replica(1).contains("k"));
  s.repair_replica(1, 1);
  EXPECT_TRUE(s.replica(1).contains("k"));
}

TEST(ReplicatedStorage, SingleReplicaDegeneratesToPlainStorage) {
  ReplicatedStableStorage s(1);
  s.write("k", std::int64_t{3});
  s.commit(0);
  EXPECT_EQ(std::get<std::int64_t>(s.read("k").value()), 3);
  s.fail_replica(0);
  EXPECT_FALSE(s.read("k"));
}

TEST(ReplicatedStorage, ContractChecks) {
  EXPECT_THROW(ReplicatedStableStorage(0), ContractViolation);
  ReplicatedStableStorage s(3);
  EXPECT_THROW(s.fail_replica(9), ContractViolation);
  EXPECT_THROW(s.repair_replica(0, 0), ContractViolation);  // not failed
}

}  // namespace
}  // namespace arfs::storage
