#include <gtest/gtest.h>

#include "arfs/common/check.hpp"
#include "arfs/storage/durable/engine.hpp"
#include "arfs/storage/replicated.hpp"

namespace arfs::storage {
namespace {

TEST(ReplicatedStorage, WriteCommitReadRoundTrip) {
  ReplicatedStableStorage s(3);
  s.write("k", std::int64_t{7});
  EXPECT_FALSE(s.read("k"));  // nothing committed yet
  s.commit(0);
  ASSERT_TRUE(s.read("k"));
  EXPECT_EQ(std::get<std::int64_t>(s.read("k").value()), 7);
  // Every replica holds the value.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(s.replica(i).contains("k"));
  }
}

TEST(ReplicatedStorage, SurvivesMinorityFailures) {
  ReplicatedStableStorage s(3);
  s.write("k", std::int64_t{1});
  s.commit(0);
  s.fail_replica(0);
  ASSERT_TRUE(s.read("k"));
  // Writes continue on the survivors.
  s.write("k", std::int64_t{2});
  s.commit(1);
  EXPECT_EQ(std::get<std::int64_t>(s.read("k").value()), 2);
  EXPECT_EQ(s.available_count(), 2u);
}

TEST(ReplicatedStorage, MajorityLossMakesKeyUnavailable) {
  ReplicatedStableStorage s(3);
  s.write("k", std::int64_t{1});
  s.commit(0);
  s.fail_replica(0);
  s.fail_replica(1);
  // One survivor cannot form a majority of the configured three.
  EXPECT_FALSE(s.read("k"));
  EXPECT_GE(s.stats().unavailable_reads, 1u);
}

TEST(ReplicatedStorage, VotingMasksSingleCorruption) {
  ReplicatedStableStorage s(3);
  s.write("k", std::int64_t{10});
  s.commit(0);
  s.corrupt_replica(1, "k", std::int64_t{999}, 1);

  const Expected<Value> v = s.read("k");
  ASSERT_TRUE(v);
  EXPECT_EQ(std::get<std::int64_t>(v.value()), 10);
  EXPECT_GE(s.stats().masked_corruptions, 1u);
}

TEST(ReplicatedStorage, MajorityCorruptionWins) {
  // The construction's documented limit: voting returns whatever the
  // majority says, including a majority of corrupted replicas.
  ReplicatedStableStorage s(3);
  s.write("k", std::int64_t{10});
  s.commit(0);
  s.corrupt_replica(0, "k", std::int64_t{999}, 1);
  s.corrupt_replica(1, "k", std::int64_t{999}, 1);
  ASSERT_TRUE(s.read("k"));
  EXPECT_EQ(std::get<std::int64_t>(s.read("k").value()), 999);
}

TEST(ReplicatedStorage, TypeDivergenceCountsAsDifferentValues) {
  ReplicatedStableStorage s(3);
  s.write("k", std::int64_t{1});
  s.commit(0);
  s.corrupt_replica(2, "k", std::string{"1"}, 1);  // same rendering, other type
  const Expected<Value> v = s.read("k");
  ASSERT_TRUE(v);
  EXPECT_TRUE(std::holds_alternative<std::int64_t>(v.value()));
}

TEST(ReplicatedStorage, RepairResynchronizesFromMajority) {
  ReplicatedStableStorage s(3);
  s.write("a", std::int64_t{1});
  s.write("b", std::int64_t{2});
  s.commit(0);
  s.fail_replica(2);
  s.write("a", std::int64_t{11});
  s.commit(1);

  s.repair_replica(2, 2);
  EXPECT_EQ(s.available_count(), 3u);
  // The repaired replica holds the current values.
  EXPECT_EQ(std::get<std::int64_t>(s.replica(2).read("a").value()), 11);
  EXPECT_EQ(std::get<std::int64_t>(s.replica(2).read("b").value()), 2);
  // And participates in future majorities: fail the other two.
  s.fail_replica(0);
  EXPECT_TRUE(s.read("a"));  // replicas 1+2 still form a majority
}

TEST(ReplicatedStorage, FailedReplicaMissesWritesUntilRepair) {
  ReplicatedStableStorage s(3);
  s.fail_replica(1);
  s.write("k", std::int64_t{5});
  s.commit(0);
  EXPECT_FALSE(s.replica(1).contains("k"));
  s.repair_replica(1, 1);
  EXPECT_TRUE(s.replica(1).contains("k"));
}

TEST(ReplicatedStorage, SingleReplicaDegeneratesToPlainStorage) {
  ReplicatedStableStorage s(1);
  s.write("k", std::int64_t{3});
  s.commit(0);
  EXPECT_EQ(std::get<std::int64_t>(s.read("k").value()), 3);
  s.fail_replica(0);
  EXPECT_FALSE(s.read("k"));
}

/// Publishes a recovered store into a fresh replica set — what a restarted
/// processor does when its devices come back before peers resume reading.
ReplicatedStableStorage publish_recovered(const StableStorage& recovered,
                                          std::size_t replicas, Cycle cycle) {
  ReplicatedStableStorage out(replicas);
  for (const auto& [key, value, committed_at] : recovered.committed_entries()) {
    (void)committed_at;
    out.write(key, value);
  }
  out.commit(cycle);
  return out;
}

TEST(ReplicatedStorage, ServesRecoveredStateAfterCrashBetweenCommitAndSync) {
  auto engine = durable::make_memory_engine();
  StableStorage store;
  store.write("alt", std::int64_t{1000});
  engine->record_commit(store, 0);
  store.commit(0);

  // The next commit applies in memory but its record never syncs; the crash
  // loses it, so the *recoverable* value is still 1000.
  engine->journal().fail_next_sync();
  store.write("alt", std::int64_t{2000});
  engine->record_commit(store, 1);
  store.commit(1);
  engine->crash();
  StableStorage recovered;
  (void)engine->recover_into(recovered);

  ReplicatedStableStorage replicated = publish_recovered(recovered, 3, 2);
  ASSERT_TRUE(replicated.read("alt"));
  EXPECT_EQ(std::get<std::int64_t>(replicated.read("alt").value()), 1000);
  // The lost commit is gone from every replica, not just a minority.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(std::get<std::int64_t>(replicated.replica(i).read("alt").value()),
              1000);
  }
}

TEST(ReplicatedStorage, ServesRecoveredStateAfterCrashMidSnapshot) {
  durable::DurableOptions options;
  options.snapshot_every_epochs = 100;  // manual snapshots only
  auto engine = durable::make_memory_engine(options);
  StableStorage store;
  store.write("mode", std::string{"cruise"});
  engine->record_commit(store, 0);
  store.commit(0);
  ASSERT_TRUE(engine->take_snapshot(store));

  store.write("mode", std::string{"descend"});
  engine->record_commit(store, 1);
  store.commit(1);

  // A snapshot attempt dies on the device mid-image; the journal was not
  // compacted, so recovery still reaches the "descend" commit.
  engine->snapshots().fail_next_sync();
  engine->snapshots().tear_on_crash(10);
  ASSERT_FALSE(engine->take_snapshot(store));
  engine->crash();
  StableStorage recovered;
  const durable::RecoveryReport report = engine->recover_into(recovered);
  EXPECT_TRUE(report.used_snapshot);
  EXPECT_EQ(report.snapshot_epoch, 1u);

  ReplicatedStableStorage replicated = publish_recovered(recovered, 3, 2);
  ASSERT_TRUE(replicated.read("mode"));
  EXPECT_EQ(std::get<std::string>(replicated.read("mode").value()), "descend");
  // Majority reads survive a replica loss of the republished state.
  replicated.fail_replica(0);
  EXPECT_EQ(std::get<std::string>(replicated.read("mode").value()), "descend");
}

TEST(ReplicatedStorage, ContractChecks) {
  EXPECT_THROW(ReplicatedStableStorage(0), ContractViolation);
  ReplicatedStableStorage s(3);
  EXPECT_THROW(s.fail_replica(9), ContractViolation);
  EXPECT_THROW(s.repair_replica(0, 0), ContractViolation);  // not failed
}

}  // namespace
}  // namespace arfs::storage
