// Unit tests driving the SCRAM kernel directly through its begin/end frame
// interface, without a full System: the Table 1 phase protocol, dependency
// coordination, trigger absorption, buffering vs. immediate retargeting, and
// the dwell rule.
#include <gtest/gtest.h>

#include "arfs/core/scram.hpp"
#include "arfs/support/synthetic.hpp"

namespace arfs::core {
namespace {

using support::kChainSeverityFactor;
using support::make_chain_spec;
using support::synthetic_app;
using support::synthetic_config;

env::EnvState severity(std::int64_t v) {
  return env::EnvState{{kChainSeverityFactor, v}};
}

env::EnvChangeSignal change_signal(Cycle cycle) {
  env::EnvChangeSignal s;
  s.cycle = cycle;
  s.factor = kChainSeverityFactor;
  return s;
}

/// Reports every issued directive as completed (one-frame stages).
std::map<AppId, bool> complete_all(const FramePlan& plan) {
  std::map<AppId, bool> done;
  for (const auto& [app, d] : plan.directives) {
    if (d.kind != DirectiveKind::kNone) done[app] = true;
  }
  return done;
}

class ScramPhases : public ::testing::Test {
 protected:
  ScramPhases() : spec_(make_chain_spec({})), scram_(spec_) {}

  ReconfigSpec spec_;
  Scram scram_;
};

TEST_F(ScramPhases, IdleWithoutSignals) {
  const FramePlan plan = scram_.begin_frame(0, 0, {}, {}, severity(0));
  EXPECT_FALSE(plan.trigger_accepted);
  EXPECT_TRUE(plan.directives.empty());
  EXPECT_FALSE(scram_.reconfiguring());
}

TEST_F(ScramPhases, Table1FourFrameSequence) {
  // Frame 0: signal receipt, no directives.
  FramePlan plan =
      scram_.begin_frame(0, 0, {}, {change_signal(0)}, severity(1));
  EXPECT_TRUE(plan.trigger_accepted);
  EXPECT_TRUE(plan.directives.empty());
  EXPECT_TRUE(scram_.reconfiguring());
  EXPECT_EQ(scram_.target_config(), synthetic_config(1));
  EXPECT_EQ(scram_.active_start_cycle(), Cycle{0});
  (void)scram_.end_frame(0, {});

  // Frame 1: halt to all applications.
  plan = scram_.begin_frame(1, 100, {}, {}, severity(1));
  ASSERT_EQ(plan.directives.size(), 2u);
  for (const auto& [app, d] : plan.directives) {
    EXPECT_EQ(d.kind, DirectiveKind::kHalt);
  }
  (void)scram_.end_frame(1, complete_all(plan));

  // Frame 2: prepare, carrying the target specs.
  plan = scram_.begin_frame(2, 200, {}, {}, severity(1));
  for (const auto& [app, d] : plan.directives) {
    EXPECT_EQ(d.kind, DirectiveKind::kPrepare);
    EXPECT_TRUE(d.target_spec.has_value());
    EXPECT_EQ(d.target_config, synthetic_config(1));
  }
  (void)scram_.end_frame(2, complete_all(plan));

  // Frame 3: initialize; completion at end of frame.
  plan = scram_.begin_frame(3, 300, {}, {}, severity(1));
  for (const auto& [app, d] : plan.directives) {
    EXPECT_EQ(d.kind, DirectiveKind::kInitialize);
  }
  const FrameOutcome outcome = scram_.end_frame(3, complete_all(plan));
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.from, synthetic_config(0));
  EXPECT_EQ(outcome.to, synthetic_config(1));
  EXPECT_FALSE(scram_.reconfiguring());
  EXPECT_EQ(scram_.current_config(), synthetic_config(1));
  EXPECT_EQ(scram_.stats().reconfigs_completed, 1u);
}

TEST_F(ScramPhases, TriggerAbsorbedWhenChooseReturnsCurrent) {
  const FramePlan plan =
      scram_.begin_frame(0, 0, {}, {change_signal(0)}, severity(0));
  EXPECT_FALSE(plan.trigger_accepted);
  EXPECT_FALSE(scram_.reconfiguring());
  EXPECT_EQ(scram_.stats().triggers_absorbed, 1u);
}

TEST_F(ScramPhases, SlowStageHoldsPhase) {
  (void)scram_.begin_frame(0, 0, {}, {change_signal(0)}, severity(1));
  (void)scram_.end_frame(0, {});
  FramePlan plan = scram_.begin_frame(1, 100, {}, {}, severity(1));

  // App 0 completes its halt; app 1 does not.
  std::map<AppId, bool> done;
  done[synthetic_app(0)] = true;
  done[synthetic_app(1)] = false;
  (void)scram_.end_frame(1, done);

  // Next frame: app 0 is left alone (kNone), app 1 is re-issued halt.
  plan = scram_.begin_frame(2, 200, {}, {}, severity(1));
  EXPECT_EQ(plan.directives.at(synthetic_app(0)).kind, DirectiveKind::kNone);
  EXPECT_EQ(plan.directives.at(synthetic_app(1)).kind, DirectiveKind::kHalt);
}

TEST(ScramDependencies, DependentWaitsForIndependent) {
  ReconfigSpec spec = make_chain_spec({});
  // App 1's initialize must wait for app 0.
  spec.add_dependency(Dependency{synthetic_app(1), synthetic_app(0),
                                 DepPhase::kInitialize, std::nullopt});
  Scram scram(spec);

  (void)scram.begin_frame(0, 0, {}, {change_signal(0)}, severity(1));
  (void)scram.end_frame(0, {});
  FramePlan plan = scram.begin_frame(1, 100, {}, {}, severity(1));
  (void)scram.end_frame(1, complete_all(plan));  // halt done
  plan = scram.begin_frame(2, 200, {}, {}, severity(1));
  (void)scram.end_frame(2, complete_all(plan));  // prepare done

  // Initialize frame A: only the independent app is signaled.
  plan = scram.begin_frame(3, 300, {}, {}, severity(1));
  EXPECT_EQ(plan.directives.at(synthetic_app(0)).kind,
            DirectiveKind::kInitialize);
  EXPECT_EQ(plan.directives.at(synthetic_app(1)).kind, DirectiveKind::kNone);
  FrameOutcome outcome = scram.end_frame(3, complete_all(plan));
  EXPECT_FALSE(outcome.completed);

  // Initialize frame B: the dependent app may now initialize.
  plan = scram.begin_frame(4, 400, {}, {}, severity(1));
  EXPECT_EQ(plan.directives.at(synthetic_app(0)).kind, DirectiveKind::kNone);
  EXPECT_EQ(plan.directives.at(synthetic_app(1)).kind,
            DirectiveKind::kInitialize);
  outcome = scram.end_frame(4, complete_all(plan));
  EXPECT_TRUE(outcome.completed);
}

TEST(ScramPolicy, BufferQueuesMidReconfigTriggers) {
  ReconfigSpec spec = make_chain_spec({});
  Scram scram(spec, ScramOptions{ReconfigPolicy::kBuffer});

  (void)scram.begin_frame(0, 0, {}, {change_signal(0)}, severity(1));
  (void)scram.end_frame(0, {});

  // Severity worsens mid-reconfiguration; buffered, target unchanged.
  FramePlan plan =
      scram.begin_frame(1, 100, {}, {change_signal(1)}, severity(2));
  EXPECT_EQ(scram.target_config(), synthetic_config(1));
  EXPECT_EQ(scram.stats().buffered_triggers, 1u);
  (void)scram.end_frame(1, complete_all(plan));
  plan = scram.begin_frame(2, 200, {}, {}, severity(2));
  (void)scram.end_frame(2, complete_all(plan));
  plan = scram.begin_frame(3, 300, {}, {}, severity(2));
  FrameOutcome outcome = scram.end_frame(3, complete_all(plan));
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.to, synthetic_config(1));

  // The buffered trigger starts the follow-up reconfiguration next frame.
  plan = scram.begin_frame(4, 400, {}, {}, severity(2));
  EXPECT_TRUE(plan.trigger_accepted);
  EXPECT_EQ(scram.target_config(), synthetic_config(2));
}

TEST(ScramPolicy, ImmediateRetargetsDuringHalt) {
  ReconfigSpec spec = make_chain_spec({});
  Scram scram(spec, ScramOptions{ReconfigPolicy::kImmediate});

  (void)scram.begin_frame(0, 0, {}, {change_signal(0)}, severity(1));
  (void)scram.end_frame(0, {});

  // During the halt frame the severity worsens: target switches without
  // restarting the (target-independent) halt stage.
  FramePlan plan =
      scram.begin_frame(1, 100, {}, {change_signal(1)}, severity(2));
  EXPECT_EQ(scram.target_config(), synthetic_config(2));
  EXPECT_FALSE(plan.retargeted);  // no rewind needed during halt
  EXPECT_EQ(plan.directives.at(synthetic_app(0)).kind, DirectiveKind::kHalt);
  (void)scram.end_frame(1, complete_all(plan));

  plan = scram.begin_frame(2, 200, {}, {}, severity(2));
  (void)scram.end_frame(2, complete_all(plan));
  plan = scram.begin_frame(3, 300, {}, {}, severity(2));
  const FrameOutcome outcome = scram.end_frame(3, complete_all(plan));
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.to, synthetic_config(2));
  EXPECT_EQ(scram.stats().retargets, 1u);
}

TEST(ScramPolicy, ImmediateRetargetAfterPrepareRewinds) {
  ReconfigSpec spec = make_chain_spec({});
  Scram scram(spec, ScramOptions{ReconfigPolicy::kImmediate});

  (void)scram.begin_frame(0, 0, {}, {change_signal(0)}, severity(1));
  (void)scram.end_frame(0, {});
  FramePlan plan = scram.begin_frame(1, 100, {}, {}, severity(1));
  (void)scram.end_frame(1, complete_all(plan));  // halted
  plan = scram.begin_frame(2, 200, {}, {}, severity(1));
  (void)scram.end_frame(2, complete_all(plan));  // prepared for config 1

  // Severity worsens after prepare: applications must rewind and re-prepare
  // toward the new target.
  plan = scram.begin_frame(3, 300, {}, {change_signal(3)}, severity(2));
  EXPECT_TRUE(plan.retargeted);
  EXPECT_EQ(plan.directives.at(synthetic_app(0)).kind,
            DirectiveKind::kPrepare);
  EXPECT_EQ(plan.directives.at(synthetic_app(0)).target_config,
            synthetic_config(2));
  (void)scram.end_frame(3, complete_all(plan));

  plan = scram.begin_frame(4, 400, {}, {}, severity(2));
  const FrameOutcome outcome = scram.end_frame(4, complete_all(plan));
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.to, synthetic_config(2));
}

TEST(ScramDwell, BlocksBackToBackReconfigs) {
  support::ChainSpecParams params;
  params.with_recovery_edges = true;  // severity can move both ways
  params.dwell_frames = 10;
  ReconfigSpec spec = make_chain_spec(params);
  Scram scram(spec);

  // First reconfiguration completes at cycle 3.
  (void)scram.begin_frame(0, 0, {}, {change_signal(0)}, severity(1));
  (void)scram.end_frame(0, {});
  for (Cycle c = 1; c <= 3; ++c) {
    const FramePlan plan = scram.begin_frame(c, 0, {}, {}, severity(1));
    (void)scram.end_frame(c, complete_all(plan));
  }
  EXPECT_EQ(scram.current_config(), synthetic_config(1));

  // Severity flips back immediately: the dwell rule defers acceptance.
  FramePlan plan =
      scram.begin_frame(4, 400, {}, {change_signal(4)}, severity(0));
  EXPECT_FALSE(plan.trigger_accepted);
  EXPECT_GT(scram.stats().dwell_blocked_frames, 0u);
  for (Cycle c = 5; c < 14; ++c) {
    plan = scram.begin_frame(c, 0, {}, {}, severity(0));
    EXPECT_FALSE(plan.trigger_accepted) << "cycle " << c;
    (void)scram.end_frame(c, {});
  }
  // Dwell expires (completion at 3 + 1 + 10 = 14): accepted.
  plan = scram.begin_frame(14, 0, {}, {}, severity(0));
  EXPECT_TRUE(plan.trigger_accepted);
  EXPECT_EQ(scram.target_config(), synthetic_config(0));
}

}  // namespace
}  // namespace arfs::core
