// BatchRunner / ThreadPool contract tests. These run under ThreadSanitizer
// in the ARFS_SANITIZE=thread build (ctest label "batch"), so they
// deliberately exercise contended paths: many jobs, small chunks, pools
// reused across batches, exceptions racing normal completions.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "arfs/analysis/dependability.hpp"
#include "arfs/sim/batch.hpp"
#include "arfs/sim/thread_pool.hpp"

namespace arfs::sim {
namespace {

TEST(JobSeed, DeterministicAndDistinct) {
  EXPECT_EQ(job_seed(42, 0), job_seed(42, 0));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(job_seed(7, i));
  EXPECT_EQ(seeds.size(), 1000u);  // no collisions in a small batch
  EXPECT_NE(job_seed(1, 0), job_seed(2, 0));  // base seed matters
}

TEST(JobSeed, MatchesSerialSplitMixStream) {
  // job_seed(base, i) is exactly the (i+1)-th draw of a serial Rng(base),
  // so serial code that forks one stream per job via next_u64() and
  // parallel code using job_seed agree.
  Rng serial(99);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(job_seed(99, i), serial.next_u64());
  }
}

TEST(ThreadPool, EmptyBatchIsNoOp) {
  ThreadPool pool(4);
  bool touched = false;
  pool.run_chunked(0, 1, [&](std::size_t, std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> hits(10, 0);
  pool.run_chunked(10, 3, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
}

TEST(ThreadPool, EveryJobRunsExactlyOnce) {
  ThreadPool pool(8);
  constexpr std::size_t kJobs = 10'000;
  std::vector<std::atomic<int>> hits(kJobs);
  pool.run_chunked(kJobs, 7, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < kJobs; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "job " << i;
  }
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.run_chunked(100, 9, [&](std::size_t begin, std::size_t end) {
      std::size_t local = 0;
      for (std::size_t i = begin; i < end; ++i) local += i;
      sum.fetch_add(local, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(BatchRunner, ExceptionPropagates) {
  BatchRunner runner{BatchOptions{4, 1}};
  EXPECT_THROW(
      runner.run(64,
                 [](std::size_t i) {
                   if (i == 13) throw std::runtime_error("job 13 failed");
                 }),
      std::runtime_error);
  // The pool survives a failed batch and runs the next one normally.
  std::atomic<int> ran{0};
  runner.run(64, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 64);
}

TEST(BatchRunner, ExceptionFromCallingThreadChunkPropagates) {
  // With a single-thread runner every chunk runs inline on the caller.
  BatchRunner runner{BatchOptions{1, 1}};
  EXPECT_THROW(runner.run(4,
                          [](std::size_t i) {
                            if (i == 0) throw std::logic_error("inline");
                          }),
               std::logic_error);
}

TEST(BatchRunner, MapReturnsResultsInJobOrder) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    BatchRunner runner{BatchOptions{threads, 2}};
    const std::vector<std::string> out = runner.map<std::string>(
        25, [](std::size_t i) { return "job" + std::to_string(i); });
    ASSERT_EQ(out.size(), 25u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], "job" + std::to_string(i));
    }
  }
}

TEST(BatchRunner, EmptyJobListIsNoOp) {
  BatchRunner runner{BatchOptions{4, 0}};
  runner.run(0, [](std::size_t) { FAIL() << "no job should run"; });
  EXPECT_TRUE(
      runner.map<int>(0, [](std::size_t) { return 1; }).empty());
}

TEST(BatchRunner, ThreadsEnvOverrideAppliesToDefault) {
  ASSERT_EQ(setenv("ARFS_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(ThreadPool::default_thread_count(), 3u);
  BatchRunner env_sized;  // threads = 0 -> env override
  EXPECT_EQ(env_sized.thread_count(), 3u);
  ASSERT_EQ(unsetenv("ARFS_THREADS"), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

// The flagship determinism property, exercised at the batch level here and
// again (against more consumers) in determinism_test.cpp: the dependability
// estimate is bit-identical at 1, 2, and 8 threads.
TEST(BatchRunner, DependabilityBitIdenticalAcrossThreadCounts) {
  const analysis::DesignUnits design{4, 3, 2};
  analysis::MissionParams mission;
  mission.failure_rate_per_hour = 0.05;
  mission.trials = 20'000;

  BatchRunner serial{BatchOptions{1, 0}};
  Rng rng_serial(314);
  const analysis::DependabilityEstimate reference =
      analysis::estimate_dependability(design, mission, rng_serial, serial);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    BatchRunner parallel{BatchOptions{threads, 0}};
    Rng rng(314);
    const analysis::DependabilityEstimate got =
        analysis::estimate_dependability(design, mission, rng, parallel);
    EXPECT_EQ(got.p_full_whole_mission, reference.p_full_whole_mission);
    EXPECT_EQ(got.p_safe_whole_mission, reference.p_safe_whole_mission);
    EXPECT_EQ(got.p_loss, reference.p_loss);
    EXPECT_EQ(got.full_service_fraction, reference.full_service_fraction);
    EXPECT_EQ(got.safe_or_better_fraction, reference.safe_or_better_fraction);
    EXPECT_EQ(got.mean_failures, reference.mean_failures);
  }
}

}  // namespace
}  // namespace arfs::sim
