// Tests of the SP1-SP4 checkers on hand-built traces: each property is
// exercised with a conforming trace and with traces violating it in each
// distinct way the formal predicate can fail.
#include <gtest/gtest.h>

#include "arfs/props/properties.hpp"
#include "arfs/props/report.hpp"
#include "arfs/support/synthetic.hpp"

namespace arfs::props {
namespace {

using support::kChainSeverityFactor;
using support::synthetic_app;
using support::synthetic_config;
using support::synthetic_spec;
using trace::AppSnapshot;
using trace::ReconfState;
using trace::SysState;
using trace::SysTrace;

core::ReconfigSpec chain_spec() {
  support::ChainSpecParams params;
  params.configs = 3;
  params.apps = 1;
  params.transition_bound = 4;  // exactly the canonical SFTA length
  return support::make_chain_spec(params);
}

AppSnapshot snap(ReconfState st, bool pre_ok = false,
                 std::optional<SpecId> spec = synthetic_spec(0, 0)) {
  AppSnapshot s;
  s.reconf_st = st;
  s.spec = spec;
  s.precondition_ok = pre_ok;
  s.postcondition_ok = st != ReconfState::kNormal &&
                       st != ReconfState::kInterrupted;
  return s;
}

SysState mk_state(Cycle c, ConfigId svclvl, AppSnapshot app_snap,
                  std::int64_t severity) {
  SysState s;
  s.cycle = c;
  s.time = static_cast<SimTime>(c + 1) * 1000;
  s.svclvl = svclvl;
  s.apps[synthetic_app(0)] = app_snap;
  s.env[kChainSeverityFactor] = severity;
  return s;
}

/// The canonical conforming trace: normal, then a 4-frame SFTA from config 0
/// to config 1 driven by severity 1, then normal operation.
SysTrace conforming_trace() {
  SysTrace t(1000);
  const ConfigId c0 = synthetic_config(0);
  const ConfigId c1 = synthetic_config(1);
  t.append(mk_state(0, c0, snap(ReconfState::kNormal), 0));
  t.append(mk_state(1, c0, snap(ReconfState::kInterrupted), 1));
  t.append(mk_state(2, c0, snap(ReconfState::kHalted), 1));
  t.append(mk_state(3, c0, snap(ReconfState::kPrepared), 1));
  SysState end = mk_state(4, c1, snap(ReconfState::kNormal, true,
                                      synthetic_spec(0, 1)), 1);
  t.append(std::move(end));
  t.append(mk_state(5, c1, snap(ReconfState::kNormal, true,
                                synthetic_spec(0, 1)), 1));
  return t;
}

trace::Reconfiguration only_reconfig(const SysTrace& t) {
  const auto rs = trace::get_reconfigs(t);
  EXPECT_EQ(rs.size(), 1u);
  return rs.at(0);
}

TEST(Sp1, HoldsOnConformingTrace) {
  const core::ReconfigSpec spec = chain_spec();
  const SysTrace t = conforming_trace();
  const auto r = only_reconfig(t);
  EXPECT_TRUE(check_sp1(t, r).holds) << check_sp1(t, r).detail;
}

TEST(Sp1, FailsWithoutInterruptedAppAtStart) {
  const SysTrace good = conforming_trace();
  SysTrace t(1000);
  for (Cycle c = 0; c < good.size(); ++c) {
    SysState s = good.at(c);
    if (c == 1) {
      s.apps[synthetic_app(0)].reconf_st = ReconfState::kHalted;
    }
    t.append(std::move(s));
  }
  const auto r = only_reconfig(t);
  const PropertyResult res = check_sp1(t, r);
  EXPECT_FALSE(res.holds);
  EXPECT_NE(res.detail.find("interrupted"), std::string::npos);
}

TEST(Sp1, FailsWithNormalAppInsideInterval) {
  const SysTrace good = conforming_trace();
  SysTrace t(1000);
  for (Cycle c = 0; c < good.size(); ++c) {
    SysState s = good.at(c);
    if (c == 2) {
      s.apps[synthetic_app(0)].reconf_st = ReconfState::kNormal;
    }
    t.append(std::move(s));
  }
  // The "hole" at cycle 2 splits the interval; get_reconfigs sees a 2-frame
  // reconfiguration first. Build the check against the original interval.
  trace::Reconfiguration r;
  r.start_c = 1;
  r.end_c = 4;
  r.from = synthetic_config(0);
  r.to = synthetic_config(1);
  const PropertyResult res = check_sp1(t, r);
  EXPECT_FALSE(res.holds);
  EXPECT_NE(res.detail.find("normal inside"), std::string::npos);
}

TEST(Sp2, HoldsWhenEnvDuringIntervalExplainsTarget) {
  const core::ReconfigSpec spec = chain_spec();
  const SysTrace t = conforming_trace();
  const auto r = only_reconfig(t);
  EXPECT_TRUE(check_sp2(t, r, spec).holds);
}

TEST(Sp2, FailsWhenTargetNeverChosen) {
  const core::ReconfigSpec spec = chain_spec();
  const SysTrace good = conforming_trace();
  SysTrace t(1000);
  for (Cycle c = 0; c < good.size(); ++c) {
    SysState s = good.at(c);
    s.env[kChainSeverityFactor] = 0;  // environment never justified config 1
    t.append(std::move(s));
  }
  const auto r = only_reconfig(t);
  const PropertyResult res = check_sp2(t, r, spec);
  EXPECT_FALSE(res.holds);
}

TEST(Sp2, HoldsWhenEnvChangesBackBeforeEnd) {
  // SP2 is an EXISTS over the interval: the justifying instant may be any
  // cycle inside it, even if the environment later changes again.
  const core::ReconfigSpec spec = chain_spec();
  const SysTrace good = conforming_trace();
  SysTrace t(1000);
  for (Cycle c = 0; c < good.size(); ++c) {
    SysState s = good.at(c);
    if (c >= 3) s.env[kChainSeverityFactor] = 2;  // worsened late
    t.append(std::move(s));
  }
  const auto r = only_reconfig(t);
  EXPECT_TRUE(check_sp2(t, r, spec).holds);
}

TEST(Sp3, HoldsAtExactBound) {
  const core::ReconfigSpec spec = chain_spec();  // bound = 4 frames
  const SysTrace t = conforming_trace();         // duration = 4 frames
  const auto r = only_reconfig(t);
  EXPECT_TRUE(check_sp3(t, r, spec).holds) << check_sp3(t, r, spec).detail;
}

TEST(Sp3, FailsBeyondBound) {
  support::ChainSpecParams params;
  params.configs = 3;
  params.apps = 1;
  params.transition_bound = 3;  // tighter than the 4-frame SFTA
  const core::ReconfigSpec spec = support::make_chain_spec(params);
  const SysTrace t = conforming_trace();
  const auto r = only_reconfig(t);
  const PropertyResult res = check_sp3(t, r, spec);
  EXPECT_FALSE(res.holds);
  EXPECT_NE(res.detail.find("bound"), std::string::npos);
}

TEST(Sp3, FailsWhenBoundUndefined) {
  // A spec that only bounds the 0 -> 1 transition; a trace claiming a
  // reverse 1 -> 0 reconfiguration has no T and must fail SP3.
  core::ReconfigSpec spec;
  core::AppDecl decl;
  decl.id = synthetic_app(0);
  decl.name = "a";
  decl.specs = {core::FunctionalSpec{synthetic_spec(0, 0), "s", {}, 100, 200}};
  spec.declare_app(std::move(decl));
  spec.declare_factor(env::FactorSpec{kChainSeverityFactor, "sev", 0, 1, 0});
  for (int c = 0; c < 2; ++c) {
    core::Configuration config;
    config.id = synthetic_config(c);
    config.name = "c" + std::to_string(c);
    config.assignment = {{synthetic_app(0), synthetic_spec(0, 0)}};
    config.placement = {{synthetic_app(0), support::synthetic_processor(0)}};
    config.safe = (c == 1);
    spec.declare_config(std::move(config));
  }
  spec.set_transition_bound(synthetic_config(0), synthetic_config(1), 8);
  spec.set_choose([](ConfigId cur, const env::EnvState&) { return cur; });
  spec.set_initial_config(synthetic_config(0));
  spec.validate();

  SysTrace t(1000);
  t.append(mk_state(0, synthetic_config(1), snap(ReconfState::kNormal), 0));
  t.append(mk_state(1, synthetic_config(1),
                    snap(ReconfState::kInterrupted), 0));
  t.append(mk_state(2, synthetic_config(0),
                    snap(ReconfState::kNormal, true), 0));
  const auto r = trace::get_reconfigs(t).at(0);
  const PropertyResult res = check_sp3(t, r, spec);
  EXPECT_FALSE(res.holds);
  EXPECT_NE(res.detail.find("no transition bound"), std::string::npos);
}

TEST(Sp4, HoldsWhenPreconditionEstablished) {
  const core::ReconfigSpec spec = chain_spec();
  const SysTrace t = conforming_trace();
  const auto r = only_reconfig(t);
  EXPECT_TRUE(check_sp4(t, r, spec).holds) << check_sp4(t, r, spec).detail;
}

TEST(Sp4, FailsWithoutPrecondition) {
  const core::ReconfigSpec spec = chain_spec();
  const SysTrace good = conforming_trace();
  SysTrace t(1000);
  for (Cycle c = 0; c < good.size(); ++c) {
    SysState s = good.at(c);
    if (c >= 4) s.apps[synthetic_app(0)].precondition_ok = false;
    t.append(std::move(s));
  }
  const auto r = only_reconfig(t);
  EXPECT_FALSE(check_sp4(t, r, spec).holds);
}

TEST(Sp4, FailsWithWrongSpecAtEnd) {
  const core::ReconfigSpec spec = chain_spec();
  const SysTrace good = conforming_trace();
  SysTrace t(1000);
  for (Cycle c = 0; c < good.size(); ++c) {
    SysState s = good.at(c);
    if (c >= 4) {
      s.apps[synthetic_app(0)].spec = synthetic_spec(0, 0);  // stale spec
    }
    t.append(std::move(s));
  }
  const auto r = only_reconfig(t);
  const PropertyResult res = check_sp4(t, r, spec);
  EXPECT_FALSE(res.holds);
  EXPECT_NE(res.detail.find("specification"), std::string::npos);
}

TEST(Sp4, OffAppsNeedNoPrecondition) {
  // An application that is off in Cj is exempt from SP4's per-app clause.
  core::ReconfigSpec spec;
  core::AppDecl decl;
  decl.id = synthetic_app(0);
  decl.name = "a";
  decl.specs = {core::FunctionalSpec{synthetic_spec(0, 0), "s", {}, 100, 200}};
  spec.declare_app(std::move(decl));
  spec.declare_factor(env::FactorSpec{kChainSeverityFactor, "sev", 0, 1, 0});

  core::Configuration on;
  on.id = synthetic_config(0);
  on.name = "on";
  on.assignment = {{synthetic_app(0), synthetic_spec(0, 0)}};
  on.placement = {{synthetic_app(0), support::synthetic_processor(0)}};
  spec.declare_config(std::move(on));

  core::Configuration off;  // the app is off here
  off.id = synthetic_config(1);
  off.name = "off";
  off.safe = true;
  spec.declare_config(std::move(off));

  spec.set_transition_bound(synthetic_config(0), synthetic_config(1), 4);
  spec.set_choose([](ConfigId, const env::EnvState& e) {
    return e.at(kChainSeverityFactor) == 0 ? synthetic_config(0)
                                           : synthetic_config(1);
  });
  spec.set_initial_config(synthetic_config(0));
  spec.validate();

  SysTrace t(1000);
  t.append(mk_state(0, synthetic_config(0), snap(ReconfState::kNormal), 0));
  t.append(mk_state(1, synthetic_config(0),
                    snap(ReconfState::kInterrupted), 1));
  t.append(mk_state(2, synthetic_config(0), snap(ReconfState::kHalted), 1));
  t.append(mk_state(3, synthetic_config(0), snap(ReconfState::kPrepared), 1));
  // End state: app off (no spec), precondition flag irrelevant.
  t.append(mk_state(4, synthetic_config(1),
                    snap(ReconfState::kNormal, false, std::nullopt), 1));
  const auto r = trace::get_reconfigs(t).at(0);
  EXPECT_TRUE(check_sp4(t, r, spec).holds) << check_sp4(t, r, spec).detail;
}

TEST(Report, AggregatesVerdicts) {
  const core::ReconfigSpec spec = chain_spec();
  const SysTrace t = conforming_trace();
  const TraceReport report = check_trace(t, spec);
  EXPECT_EQ(report.reconfig_count, 1u);
  EXPECT_TRUE(report.all_hold());
  EXPECT_FALSE(report.incomplete_at_end);
  EXPECT_NE(render(report).find("reconfigurations: 1"), std::string::npos);
}

TEST(Report, RenderListsFailures) {
  support::ChainSpecParams params;
  params.configs = 3;
  params.apps = 1;
  params.transition_bound = 3;  // SP3 will fail
  const core::ReconfigSpec spec = support::make_chain_spec(params);
  const SysTrace t = conforming_trace();
  const TraceReport report = check_trace(t, spec);
  EXPECT_EQ(report.sp3_failures, 1u);
  EXPECT_FALSE(report.all_hold());
  EXPECT_NE(render(report).find("SP3"), std::string::npos);
}

}  // namespace
}  // namespace arfs::props
