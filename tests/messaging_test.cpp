// Tests of inter-application message passing (paper section 3) and of the
// runtime SP3 deadline watchdog.
#include <gtest/gtest.h>

#include <memory>

#include "arfs/core/messaging.hpp"
#include "arfs/core/system.hpp"
#include "arfs/support/simple_app.hpp"
#include "arfs/support/synthetic.hpp"
#include "arfs/trace/reconfigs.hpp"

namespace arfs::core {
namespace {

using support::kChainSeverityFactor;
using support::synthetic_app;
using support::synthetic_processor;

TEST(MessageRouter, DeliversAtNextExchange) {
  MessageRouter router;
  Mailbox& a = router.endpoint(AppId{1});
  Mailbox& b = router.endpoint(AppId{2});

  a.send(AppId{2}, "cmd", std::int64_t{7});
  EXPECT_TRUE(b.inbox().empty());  // not yet delivered
  router.exchange(1, [](AppId) { return true; });
  ASSERT_EQ(b.inbox().size(), 1u);
  EXPECT_EQ(b.inbox()[0].from, AppId{1});
  EXPECT_EQ(b.inbox()[0].topic, "cmd");
  EXPECT_EQ(std::get<std::int64_t>(b.inbox()[0].payload), 7);
  EXPECT_EQ(b.inbox()[0].sent_cycle, 0u);

  // The inbox is per-frame: the next exchange clears it.
  router.exchange(2, [](AppId) { return true; });
  EXPECT_TRUE(b.inbox().empty());
  EXPECT_EQ(router.stats().sent, 1u);
  EXPECT_EQ(router.stats().delivered, 1u);
}

TEST(MessageRouter, LatestFindsNewestOnTopic) {
  MessageRouter router;
  Mailbox& a = router.endpoint(AppId{1});
  Mailbox& b = router.endpoint(AppId{2});
  a.send(AppId{2}, "x", std::int64_t{1});
  a.send(AppId{2}, "x", std::int64_t{2});
  a.send(AppId{2}, "y", std::int64_t{3});
  router.exchange(1, [](AppId) { return true; });
  ASSERT_NE(b.latest("x"), nullptr);
  EXPECT_EQ(std::get<std::int64_t>(b.latest("x")->payload), 2);
  EXPECT_EQ(b.latest("z"), nullptr);
}

TEST(MessageRouter, DropsForDeadReceiversAndUnknownApps) {
  MessageRouter router;
  Mailbox& a = router.endpoint(AppId{1});
  router.endpoint(AppId{2});
  a.send(AppId{2}, "t", std::int64_t{1});
  a.send(AppId{9}, "t", std::int64_t{1});  // never registered
  router.exchange(1, [](AppId app) { return app != AppId{2}; });
  EXPECT_EQ(router.stats().dropped_dead_host, 1u);
  EXPECT_EQ(router.stats().dropped_unknown, 1u);
  EXPECT_EQ(router.stats().delivered, 0u);
}

/// Application pair: the producer sends its work counter each frame; the
/// consumer records the last value it received.
class ProducerApp final : public ReconfigurableApp {
 public:
  ProducerApp() : ReconfigurableApp(synthetic_app(0), "producer") {}

 protected:
  StepResult do_work(const Ctx& ctx) override {
    ++count_;
    if (ctx.mail != nullptr) {
      ctx.mail->send(synthetic_app(1), "count", count_);
    }
    return {};
  }
  bool do_halt(const Ctx&) override { return true; }
  bool do_prepare(const Ctx&, std::optional<SpecId>) override { return true; }
  bool do_initialize(const Ctx&, std::optional<SpecId>) override {
    return true;
  }

 private:
  std::int64_t count_ = 0;
};

class ConsumerApp final : public ReconfigurableApp {
 public:
  ConsumerApp() : ReconfigurableApp(synthetic_app(1), "consumer") {}
  [[nodiscard]] std::int64_t last_seen() const { return last_seen_; }

 protected:
  StepResult do_work(const Ctx& ctx) override {
    if (ctx.mail != nullptr) {
      if (const AppMessage* m = ctx.mail->latest("count")) {
        last_seen_ = std::get<std::int64_t>(m->payload);
      }
    }
    return {};
  }
  bool do_halt(const Ctx&) override { return true; }
  bool do_prepare(const Ctx&, std::optional<SpecId>) override { return true; }
  bool do_initialize(const Ctx&, std::optional<SpecId>) override {
    return true;
  }

 private:
  std::int64_t last_seen_ = 0;
};

TEST(SystemMessaging, OneFrameDeliveryLatency) {
  support::ChainSpecParams params;
  params.configs = 2;
  params.apps = 2;
  const ReconfigSpec spec = support::make_chain_spec(params);
  System system(spec);
  system.add_app(std::make_unique<ProducerApp>());
  auto consumer = std::make_unique<ConsumerApp>();
  ConsumerApp* consumer_ptr = consumer.get();
  system.add_app(std::move(consumer));

  system.run(5);
  // Frame 4's consumer sees the value the producer sent in frame 3 (= 4).
  EXPECT_EQ(consumer_ptr->last_seen(), 4);
  // Stats are counted at the frame-boundary exchange: frame 4's send is
  // still in flight, so four messages have crossed a boundary.
  EXPECT_EQ(system.messaging().sent, 4u);
  EXPECT_EQ(system.messaging().delivered, 4u);
}

TEST(SystemMessaging, MessagesPauseDuringReconfiguration) {
  support::ChainSpecParams params;
  params.configs = 2;
  params.apps = 2;
  const ReconfigSpec spec = support::make_chain_spec(params);
  System system(spec);
  system.add_app(std::make_unique<ProducerApp>());
  auto consumer = std::make_unique<ConsumerApp>();
  ConsumerApp* consumer_ptr = consumer.get();
  system.add_app(std::move(consumer));

  system.run(3);
  system.set_factor(kChainSeverityFactor, 1);
  system.run(4);  // SFTA: no normal work, no sends
  const std::int64_t during = consumer_ptr->last_seen();
  system.run(3);
  EXPECT_GT(consumer_ptr->last_seen(), during);  // traffic resumed
}

TEST(SystemMessaging, DroppedDuringOutageResumesAfterRepair) {
  // The consumer's host fails: messages addressed to it are dropped
  // (volatile, like the bus) for the outage, then delivery resumes when the
  // host is repaired — no stale backlog appears.
  support::ChainSpecParams params;
  params.configs = 2;
  params.apps = 2;
  params.transition_bound = 16;
  const ReconfigSpec spec = support::make_chain_spec(params);
  System system(spec);
  system.add_app(std::make_unique<ProducerApp>());
  auto consumer = std::make_unique<ConsumerApp>();
  ConsumerApp* consumer_ptr = consumer.get();
  system.add_app(std::move(consumer));

  sim::FaultPlan plan;
  plan.fail_processor(5 * 10'000, support::synthetic_processor(1));
  plan.repair_processor(12 * 10'000, support::synthetic_processor(1));
  system.set_fault_plan(std::move(plan));
  system.run(20);

  EXPECT_GT(system.messaging().dropped_dead_host, 0u);
  // After repair, delivery resumed: the consumer's last seen value tracks
  // recent production again.
  EXPECT_GE(consumer_ptr->last_seen(), 18);
}

TEST(DeadlineWatchdog, StalledReconfigurationRaisesViolation) {
  // Config 1 places the app on a processor we kill at the same instant the
  // mode change demands it: initialize can never run, the reconfiguration
  // stalls, and the watchdog flags the exceeded T bound exactly once.
  support::ChainSpecParams params;
  params.configs = 2;
  params.apps = 2;
  params.transition_bound = 6;
  const ReconfigSpec spec = support::make_chain_spec(params);
  System system(spec);
  system.add_app(std::make_unique<support::SimpleApp>(synthetic_app(0), "a"));
  system.add_app(std::make_unique<support::SimpleApp>(synthetic_app(1), "b"));

  sim::FaultPlan plan;
  plan.fail_processor(4 * 10'000, synthetic_processor(0));
  system.set_fault_plan(std::move(plan));
  system.run(3);
  system.set_factor(kChainSeverityFactor, 1);
  system.run(30);

  EXPECT_TRUE(trace::incomplete_reconfig(system.trace()).has_value());
  EXPECT_EQ(system.stats().deadline_violations, 1u);
}

TEST(DeadlineWatchdog, HealthyReconfigurationRaisesNothing) {
  support::ChainSpecParams params;
  params.configs = 2;
  params.apps = 2;
  params.transition_bound = 6;
  const ReconfigSpec spec = support::make_chain_spec(params);
  System system(spec);
  system.add_app(std::make_unique<support::SimpleApp>(synthetic_app(0), "a"));
  system.add_app(std::make_unique<support::SimpleApp>(synthetic_app(1), "b"));
  system.run(3);
  system.set_factor(kChainSeverityFactor, 1);
  system.run(20);
  EXPECT_EQ(system.stats().deadline_violations, 0u);
}

}  // namespace
}  // namespace arfs::core
