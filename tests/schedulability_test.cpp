// Tests of configuration-derived partition schedules and the
// schedulability obligation.
#include <gtest/gtest.h>

#include <memory>

#include "arfs/analysis/schedulability.hpp"
#include "arfs/avionics/uav_system.hpp"
#include "arfs/failstop/group.hpp"
#include "arfs/rtos/executive.hpp"
#include "arfs/support/synthetic.hpp"

namespace arfs::analysis {
namespace {

TEST(Schedulability, UavConfigurationsAllFit) {
  const core::ReconfigSpec spec = avionics::make_uav_spec();
  const auto findings = check_schedulability(spec, 20'000);
  EXPECT_TRUE(all_schedulable(findings));
  EXPECT_FALSE(findings.empty());
}

TEST(Schedulability, ReducedServiceSharesOneProcessor) {
  const core::ReconfigSpec spec = avionics::make_uav_spec();
  const BuiltSchedule built =
      build_schedule(spec, avionics::kReducedService, 20'000);
  // Both partitions on computer 1, packed back to back without overlap.
  ASSERT_EQ(built.table.windows().size(), 2u);
  for (const rtos::Window& w : built.table.windows()) {
    EXPECT_EQ(w.processor, avionics::kComputer1);
  }
  const auto order = built.table.activation_order();
  EXPECT_EQ(order[0].offset + order[0].length, order[1].offset);
}

TEST(Schedulability, MinimalServiceHasOnePartition) {
  const core::ReconfigSpec spec = avionics::make_uav_spec();
  const BuiltSchedule built =
      build_schedule(spec, avionics::kMinimalService, 20'000);
  EXPECT_EQ(built.table.windows().size(), 1u);  // autopilot is off
  EXPECT_TRUE(built.partitions.contains(avionics::kFcs));
  EXPECT_FALSE(built.partitions.contains(avionics::kAutopilot));
}

TEST(Schedulability, WindowLengthsComeFromSpecBudgets) {
  const core::ReconfigSpec spec = avionics::make_uav_spec();
  const BuiltSchedule built =
      build_schedule(spec, avionics::kFullService, 20'000);
  for (const rtos::Window& w : built.table.windows()) {
    const AppId app{w.partition.value()};
    const SpecId assigned =
        *spec.config(avionics::kFullService).spec_of(app);
    EXPECT_EQ(w.length, spec.spec(assigned).budget_us);
  }
}

TEST(Schedulability, OverloadedFrameDetected) {
  const core::ReconfigSpec spec = avionics::make_uav_spec();
  // Full Service needs an 800us budget for the autopilot alone; a 500us
  // frame cannot hold it.
  const auto findings = check_schedulability(spec, 500);
  EXPECT_FALSE(all_schedulable(findings));
  EXPECT_THROW((void)build_schedule(spec, avionics::kFullService, 500),
               Error);
}

TEST(Schedulability, FindingsCarryLoads) {
  const core::ReconfigSpec spec = avionics::make_uav_spec();
  for (const ScheduleFinding& f : check_schedulability(spec, 20'000)) {
    EXPECT_GT(f.load, 0);
    EXPECT_EQ(f.frame_length, 20'000);
    EXPECT_EQ(f.feasible, f.load <= f.frame_length);
  }
}

TEST(Schedulability, BuiltScheduleRunsOnExecutive) {
  // The derived table drives a real cyclic executive end to end.
  const core::ReconfigSpec spec = avionics::make_uav_spec();
  const BuiltSchedule built =
      build_schedule(spec, avionics::kReducedService, 20'000);

  failstop::ProcessorGroup group;
  group.add_processor(avionics::kComputer1);
  group.add_processor(avionics::kComputer2);
  rtos::HealthMonitor health;
  failstop::DetectorBank bank;
  rtos::CyclicExecutive exec(built.table, group, health, bank);

  int activations = 0;
  for (const auto& [app, partition] : built.partitions) {
    const SpecId assigned =
        *spec.config(avionics::kReducedService).spec_of(app);
    const SimDuration wcet = spec.spec(assigned).wcet_us;
    exec.add_partition(std::make_unique<rtos::Partition>(
        partition, "p" + std::to_string(partition.value()),
        avionics::kComputer1, app, spec.spec(assigned).budget_us,
        [&activations, wcet](Cycle) {
          ++activations;
          return rtos::ActivationResult{wcet, true, {}};
        }));
  }

  const rtos::FrameReport report = exec.run_frame(0, 0);
  EXPECT_EQ(report.activated, 2u);
  EXPECT_EQ(report.overruns, 0u);
  EXPECT_EQ(activations, 2);
}

TEST(Schedulability, SyntheticChainConfigsFit) {
  support::ChainSpecParams params;
  params.apps = 4;
  const core::ReconfigSpec spec = support::make_chain_spec(params);
  EXPECT_TRUE(all_schedulable(check_schedulability(spec, 10'000)));
  for (const auto& [id, cfg] : spec.configs()) {
    EXPECT_NO_THROW((void)build_schedule(spec, id, 10'000));
  }
}

}  // namespace
}  // namespace arfs::analysis
