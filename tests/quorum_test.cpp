// Quorum-replicated journal shipping: majority-ack durability over an
// elected cohort of shipped replicas.
//
// Three layers under test: the QuorumGroup protocol (fan-out convergence,
// the majority-ack commit rule with fail-stop surviving acks, deterministic
// leader election without reseeds, joint membership changes, the
// lossy-recovery commit rebase, checkpoint round-trips), the assembled
// System in quorum mode (TDMA member slots, SCRAM kQuorumLost/kQuorumDurable
// signals, fault-plan routing, warm relocations served by surviving
// members), and the crash-point sweep with the quorum adversary: the leader
// fail-stops at every crash frame and the commit rule must still hold —
// with the N = 1 cohort digest-identical to the single-standby oracle.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "arfs/avionics/uav_system.hpp"
#include "arfs/common/check.hpp"
#include "arfs/core/system.hpp"
#include "arfs/sim/batch.hpp"
#include "arfs/sim/fault_plan.hpp"
#include "arfs/storage/durable/engine.hpp"
#include "arfs/storage/durable/journal.hpp"
#include "arfs/storage/durable/quorum.hpp"
#include "arfs/storage/stable_storage.hpp"
#include "arfs/support/crash_sweep.hpp"
#include "arfs/support/mission.hpp"
#include "arfs/support/simple_app.hpp"
#include "arfs/support/synthetic.hpp"

namespace arfs {
namespace {

using storage::Value;
using storage::StableStorage;
using storage::durable::DurabilityEngine;
using storage::durable::DurableOptions;
using storage::durable::make_memory_engine;
using storage::durable::SyncPolicy;
using storage::durable::quorum::MemberId;
using storage::durable::quorum::QuorumGroup;
using storage::durable::quorum::QuorumOptions;
using support::CrashSweepOptions;
using support::CrashSweepReport;
using support::MissionFactory;
using support::run_crash_sweep;
using support::SimpleApp;
using support::synthetic_app;
using support::synthetic_config;
using support::synthetic_processor;

/// A source store + engine pair driven through the real commit protocol
/// (the same harness shipping_test uses for the single standby).
struct Source {
  StableStorage store;
  std::unique_ptr<DurabilityEngine> engine;

  explicit Source(DurableOptions options = {})
      : engine(make_memory_engine(options)) {}

  void commit_frame(
      Cycle cycle,
      const std::vector<std::pair<std::string, std::int64_t>>& writes) {
    for (const auto& [key, value] : writes) store.write(key, Value{value});
    engine->record_commit(store, cycle);
    store.commit(cycle);
    engine->after_commit(store);
  }
};

/// Drains every member's shippable tail (dead/retired/reseed-pending
/// members stay put, exactly as in the relocation path).
std::size_t catch_up_all(QuorumGroup& group) {
  std::size_t total = 0;
  for (MemberId id = 0; id < group.member_count(); ++id) {
    total += group.catch_up_member(id);
  }
  return total;
}

/// Reseeds `id` from the source the way the owning System does.
void reseed_from(QuorumGroup& group, MemberId id, const Source& source) {
  group.reseed_member(id, source.store, source.engine->dictionary(),
                      source.engine->journal_generation(),
                      source.engine->journal().synced_size());
}

// --- the group protocol ---

TEST(QuorumFanOut, EveryMemberConvergesToTheSourceStream) {
  Source source;
  for (Cycle c = 1; c <= 8; ++c) {
    source.commit_frame(c, {{"alt", std::int64_t(100 + c)},
                            {"spd", std::int64_t(c)}});
  }

  QuorumGroup group(*source.engine, QuorumOptions{.replicas = 3});
  ASSERT_EQ(group.member_count(), 3u);
  EXPECT_EQ(group.leader(), MemberId{0});
  EXPECT_EQ(group.commit_id(), 0u);

  const std::size_t moved = catch_up_all(group);
  EXPECT_GT(moved, 0u);
  for (MemberId id = 0; id < 3; ++id) {
    EXPECT_EQ(group.replica(id).store().fingerprint(),
              source.store.fingerprint())
        << "member " << id;
    EXPECT_EQ(group.last_applied(id), 8u) << "member " << id;
  }
  EXPECT_EQ(group.commit_id(), 8u);
  EXPECT_EQ(group.stats().bytes_shipped, moved);
  EXPECT_GT(group.stats().commit_advances, 0u);
}

TEST(QuorumCommitRule, BoundaryIsTheMajorityAckNotTheFastestMember) {
  Source source;
  for (Cycle c = 1; c <= 4; ++c) {
    source.commit_frame(c, {{"k", std::int64_t(c)}});
  }
  QuorumGroup group(*source.engine, QuorumOptions{.replicas = 3});

  // One member ahead of everyone commits nothing: durability is what a
  // majority holds, not what the fastest replica holds.
  group.catch_up_member(0);
  EXPECT_EQ(group.last_applied(0), 4u);
  EXPECT_EQ(group.commit_id(), 0u);

  group.catch_up_member(1);
  EXPECT_EQ(group.commit_id(), 4u);
  EXPECT_EQ(group.last_applied(2), 0u);  // the straggler never moved
}

TEST(QuorumCommitRule, DeadMembersStableAcksStillHoldTheBoundary) {
  Source source;
  for (Cycle c = 1; c <= 5; ++c) {
    source.commit_frame(c, {{"k", std::int64_t(c)}});
  }
  QuorumGroup group(*source.engine, QuorumOptions{.replicas = 3});
  catch_up_all(group);
  ASSERT_EQ(group.commit_id(), 5u);

  // Fail-stop two members: the first keeps the majority, the second costs
  // it. Their acknowledged bytes live on stable devices and keep counting.
  EXPECT_FALSE(group.fail_member(1));
  EXPECT_TRUE(group.fail_member(2));
  EXPECT_FALSE(group.has_majority());

  for (Cycle c = 6; c <= 8; ++c) {
    source.commit_frame(c, {{"k", std::int64_t(c)}});
  }
  group.catch_up_member(0);
  // Acks are {8, 5, 5}: the dead members pin the boundary at 5 — they do
  // not void it to 0, and the lone survivor cannot advance it alone.
  EXPECT_EQ(group.commit_id(), 5u);

  EXPECT_TRUE(group.repair_member(2));
  EXPECT_TRUE(group.has_majority());
  group.catch_up_member(2);  // resumes at its surviving cursor
  EXPECT_EQ(group.commit_id(), 8u);
  EXPECT_EQ(group.stats().member_failures, 2u);
  EXPECT_EQ(group.stats().member_repairs, 1u);
}

TEST(QuorumElection, LeaderFailStopReElectsWithoutAReseed) {
  Source source;
  for (Cycle c = 1; c <= 6; ++c) {
    source.commit_frame(c, {{"k", std::int64_t(c)}});
  }
  QuorumGroup group(*source.engine, QuorumOptions{.replicas = 3});
  catch_up_all(group);
  ASSERT_EQ(group.leader(), MemberId{0});
  ASSERT_EQ(group.stats().elections, 0u);

  // The leader fail-stops: the election re-runs by rule (lowest live id)
  // and shipping resumes from the new leader's own cursor — no full copy.
  EXPECT_FALSE(group.fail_member(0));
  EXPECT_EQ(group.leader(), MemberId{1});
  EXPECT_EQ(group.stats().elections, 1u);
  const std::vector<MemberId> order = group.warm_start_order();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], MemberId{1});
  EXPECT_EQ(order[1], MemberId{2});

  for (Cycle c = 7; c <= 8; ++c) {
    source.commit_frame(c, {{"k", std::int64_t(c)}});
  }
  catch_up_all(group);
  EXPECT_EQ(group.replica(1).store().fingerprint(),
            source.store.fingerprint());
  EXPECT_EQ(group.commit_id(), 8u);
  EXPECT_EQ(group.stats().reseeds, 0u);
  EXPECT_EQ(group.stats().fallbacks, 0u);

  // The repaired original wins the election back (deterministic rule).
  group.repair_member(0);
  EXPECT_EQ(group.leader(), MemberId{0});
  EXPECT_EQ(group.stats().elections, 2u);
}

TEST(QuorumReconfig, JointRuleGatesCommitUntilTheNewMajorityCatchesUp) {
  Source source;
  for (Cycle c = 1; c <= 5; ++c) {
    source.commit_frame(c, {{"k", std::int64_t(c)}});
  }
  QuorumGroup group(*source.engine, QuorumOptions{.replicas = 3});
  catch_up_all(group);
  ASSERT_EQ(group.commit_id(), 5u);

  // Swap most of the cohort: retire members 0 and 1, add two fresh ones.
  // The fresh members hold nothing, so the new voter set {2, 3, 4} has no
  // majority at the proposal epoch — the change stays in flight.
  const std::vector<MemberId> added = group.begin_reconfig(2, {0, 1});
  ASSERT_EQ(added, (std::vector<MemberId>{3, 4}));
  EXPECT_TRUE(group.reconfiguring());
  EXPECT_TRUE(group.member_needs_full_copy(3));
  EXPECT_TRUE(group.member_needs_full_copy(4));

  // While joint, the commit boundary needs BOTH majorities: the old voters
  // reach 8 but the new voters' majority is still 0, so it cannot move.
  for (Cycle c = 6; c <= 8; ++c) {
    source.commit_frame(c, {{"k", std::int64_t(c)}});
  }
  catch_up_all(group);
  EXPECT_TRUE(group.reconfiguring());
  EXPECT_EQ(group.commit_id(), 5u);

  // Fresh members join via the full-copy path. One reseed gives the new
  // voters a majority at/above the proposal epoch: the change completes,
  // retirees drop out, and the boundary advances under the new set.
  reseed_from(group, 3, source);
  EXPECT_FALSE(group.reconfiguring());
  EXPECT_TRUE(group.member_retired(0));
  EXPECT_TRUE(group.member_retired(1));
  EXPECT_EQ(group.voters(), (std::vector<MemberId>{2, 3, 4}));
  EXPECT_EQ(group.leader(), MemberId{2});
  EXPECT_EQ(group.commit_id(), 8u);
  EXPECT_EQ(group.stats().membership_changes, 1u);

  // Retired members' slots go idle; the last joiner still catches up.
  EXPECT_EQ(group.pump_member(0, 4096), 0u);
  reseed_from(group, 4, source);
  EXPECT_EQ(group.last_applied(4), 8u);

  // A reseeded member's warmth was bought, not streamed: the relocation
  // credit is spent once and re-arms after the claim.
  EXPECT_FALSE(group.take_warm_credit(3));
  EXPECT_TRUE(group.take_warm_credit(3));
  EXPECT_TRUE(group.take_warm_credit(2));
}

TEST(QuorumRebase, LossyRecoveryRebasesInsteadOfPinningAVanishedEpoch) {
  Source source;
  for (Cycle c = 1; c <= 8; ++c) {
    source.commit_frame(c, {{"k", std::int64_t(c)}});
  }
  QuorumGroup group(*source.engine, QuorumOptions{.replicas = 3});
  catch_up_all(group);
  ASSERT_EQ(group.commit_id(), 8u);

  // A lossy recovery rolls the source back to epoch 5 and bumps the journal
  // generation: epochs 6..8 no longer exist in any live history. Reseeding
  // a member from the rolled-back store must re-base the commit id — the
  // one sanctioned exception to its monotonicity — and clamp the dead-
  // generation members' acks to the shared prefix below the boundary.
  Source rolled;
  for (Cycle c = 1; c <= 5; ++c) {
    rolled.commit_frame(c, {{"k", std::int64_t(c)}});
  }
  group.reseed_member(0, rolled.store, rolled.engine->dictionary(),
                      source.engine->journal_generation() + 1,
                      rolled.engine->journal().synced_size());

  EXPECT_EQ(group.last_applied(0), 5u);
  EXPECT_EQ(group.last_applied(1), 5u);
  EXPECT_EQ(group.last_applied(2), 5u);
  EXPECT_EQ(group.commit_id(), 5u);
  EXPECT_EQ(group.stats().reseeds, 1u);
}

TEST(QuorumCheckpoint, RoundTripRestoresTheGroupAcrossAMembershipChange) {
  Source source;
  for (Cycle c = 1; c <= 4; ++c) {
    source.commit_frame(c, {{"k", std::int64_t(c)}});
  }
  QuorumGroup group(*source.engine, QuorumOptions{.replicas = 3});
  catch_up_all(group);
  group.fail_member(2);
  const std::uint64_t frozen_fingerprint =
      group.replica(0).store().fingerprint();
  const QuorumGroup::Checkpoint cp = group.checkpoint_state();

  // Mutate well past the checkpoint: repair, a completed membership change
  // (which retires member 0 and appends member 3), and more streaming.
  group.repair_member(2);
  group.begin_reconfig(1, {0});
  reseed_from(group, 3, source);
  for (Cycle c = 5; c <= 6; ++c) {
    source.commit_frame(c, {{"k", std::int64_t(c)}});
  }
  catch_up_all(group);
  ASSERT_EQ(group.member_count(), 4u);
  ASSERT_TRUE(group.member_retired(0));
  ASSERT_EQ(group.commit_id(), 6u);

  // Restore rewinds everything: roster size, retirement, liveness, voter
  // sets, the commit boundary, leadership, and the stats block.
  group.restore_state(cp);
  EXPECT_EQ(group.member_count(), 3u);
  EXPECT_FALSE(group.member_retired(0));
  EXPECT_FALSE(group.member_live(2));
  EXPECT_FALSE(group.reconfiguring());
  EXPECT_EQ(group.voters(), (std::vector<MemberId>{0, 1, 2}));
  EXPECT_EQ(group.leader(), MemberId{0});
  EXPECT_EQ(group.commit_id(), 4u);
  EXPECT_EQ(group.replica(0).store().fingerprint(), frozen_fingerprint);
  EXPECT_EQ(group.stats().member_failures, 1u);
  EXPECT_EQ(group.stats().member_repairs, 0u);
  EXPECT_EQ(group.stats().reseeds, 0u);

  // The restored group is live: repair the dead member and stream the
  // post-checkpoint epochs it never saw.
  group.repair_member(2);
  catch_up_all(group);
  EXPECT_EQ(group.commit_id(), 6u);
  EXPECT_EQ(group.replica(2).store().fingerprint(),
            source.store.fingerprint());
}

TEST(QuorumContract, PreconditionsAreEnforced) {
  Source source;
  source.commit_frame(1, {{"k", 1}});
  EXPECT_THROW(QuorumGroup(*source.engine, QuorumOptions{.replicas = 0}),
               ContractViolation);

  QuorumGroup group(*source.engine, QuorumOptions{.replicas = 3});
  EXPECT_THROW(group.pump_member(3, 4096), ContractViolation);
  EXPECT_THROW(group.begin_reconfig(0, {7}), ContractViolation);
  EXPECT_THROW(group.begin_reconfig(0, {0, 1, 2}), ContractViolation);
  // A change that swaps out the majority cannot complete until the fresh
  // members catch up, so it genuinely stays in flight — a second proposal
  // while joint must be rejected.
  catch_up_all(group);
  group.begin_reconfig(2, {0, 1});
  ASSERT_TRUE(group.reconfiguring());
  EXPECT_THROW(group.begin_reconfig(1, {}), ContractViolation);
}

// --- the assembled system ---

/// Chain-spec mission with an N-member quorum cohort shadowing every
/// durable processor (N = 0 keeps the classic single warm standby).
support::MissionFactory quorum_chain_factory(SyncPolicy policy,
                                             std::uint32_t replicas) {
  return [policy, replicas] {
    auto spec = std::make_shared<core::ReconfigSpec>(
        support::make_chain_spec({}));
    core::SystemOptions options;
    options.durable_storage = true;
    options.journal_shipping = true;
    options.quorum_replicas = replicas;
    options.durability.snapshot_every_epochs = 7;
    options.durability.sync = policy;
    auto system = std::make_unique<core::System>(*spec, options);
    for (const core::AppDecl& decl : spec->apps()) {
      system->add_app(std::make_unique<SimpleApp>(decl.id, decl.name));
    }
    support::CrashMission mission;
    mission.keepalive = spec;
    mission.system = std::move(system);
    return mission;
  };
}

/// The paper's §7 avionics mission (autopilot + FCS, two reconfigurations
/// down and one back up) with a quorum cohort per durable processor.
support::MissionFactory quorum_uav_factory(SyncPolicy policy,
                                           std::uint32_t replicas) {
  return [policy, replicas] {
    struct Bundle {
      core::ReconfigSpec spec;
      avionics::UavPlant plant;
      Bundle(core::ReconfigSpec s, std::uint64_t seed)
          : spec(std::move(s)), plant(seed) {}
    };
    avionics::UavSpecOptions spec_options;
    spec_options.dwell_frames = 10;
    auto bundle = std::make_shared<Bundle>(
        avionics::make_uav_spec(spec_options), 42);

    core::SystemOptions options;
    options.frame_length = 20'000;
    options.durable_storage = true;
    options.journal_shipping = true;
    options.quorum_replicas = replicas;
    options.durability.snapshot_every_epochs = 16;
    options.durability.sync = policy;
    auto system = std::make_unique<core::System>(bundle->spec, options);
    system->add_app(
        std::make_unique<avionics::AutopilotApp>(bundle->plant));
    system->add_app(std::make_unique<avionics::FcsApp>(bundle->plant));

    support::MissionProfile mission(options.frame_length);
    mission.at(10, avionics::kPowerFactor, 1)
        .at(25, avionics::kPowerFactor, 2)
        .at(40, avionics::kPowerFactor, 0);
    system->set_fault_plan(mission.build());

    support::CrashMission out;
    out.keepalive = bundle;
    out.system = std::move(system);
    return out;
  };
}

/// The four policies every sweep must pass under.
std::vector<std::pair<std::string, SyncPolicy>> all_policies() {
  return {{"every-commit", SyncPolicy::every_commit()},
          {"bytes(512)", SyncPolicy::bytes(512)},
          {"frames(4)", SyncPolicy::frames(4)},
          {"hybrid(4096,8)", SyncPolicy::hybrid(4096, 8)}};
}

TEST(QuorumSystem, QuorumReplicasRequiresJournalShipping) {
  const auto spec = support::make_chain_spec({});
  core::SystemOptions options;
  options.durable_storage = true;
  options.quorum_replicas = 3;  // but journal_shipping is off
  EXPECT_THROW(core::System(spec, options), ContractViolation);
}

TEST(QuorumSystem, SingleMemberCohortShipsByteIdenticallyToSingleStandby) {
  // N = 1 is the degenerate cohort: same slot budgets, same stream, same
  // replica bytes — the quorum machinery must cost nothing it doesn't use.
  const auto run_mission = [](std::uint32_t replicas) {
    support::CrashMission m =
        quorum_chain_factory(SyncPolicy::frames(3), replicas)();
    m.system->run(12);
    return m;
  };
  const support::CrashMission single = run_mission(0);
  const support::CrashMission cohort = run_mission(1);

  const ProcessorId victim = synthetic_processor(0);
  ASSERT_TRUE(single.system->has_ship_channel(victim));
  ASSERT_TRUE(cohort.system->has_quorum(victim));
  EXPECT_FALSE(single.system->has_quorum(victim));
  EXPECT_EQ(single.system->stats().ship_bytes_total,
            cohort.system->stats().ship_bytes_total);
  EXPECT_EQ(single.system->stats().ship_slots_polled,
            cohort.system->stats().ship_slots_polled);
  EXPECT_EQ(single.system->ship_replica(victim).store().fingerprint(),
            cohort.system->ship_replica(victim).store().fingerprint());
  EXPECT_EQ(single.system->ship_replica(victim).cursor().offset,
            cohort.system->ship_replica(victim).cursor().offset);

  // At one member the commit id IS the lone cursor's epoch.
  const QuorumGroup& group = cohort.system->quorum_group(victim);
  EXPECT_EQ(group.commit_id(),
            cohort.system->ship_replica(victim).cursor().epoch);
}

TEST(QuorumSystem, MajorityLossRaisesQuorumLostAndRepairRestoresIt) {
  support::CrashMission m =
      quorum_chain_factory(SyncPolicy::every_commit(), 3)();
  core::System& system = *m.system;
  system.run(4);

  const ProcessorId victim = synthetic_processor(0);
  ASSERT_TRUE(system.has_quorum(victim));
  ASSERT_EQ(system.quorum_group(victim).member_count(), 3u);

  // Losing one member keeps the majority quiet; losing the second raises
  // kQuorumLost, which the SCRAM drains on the next frame.
  system.fail_quorum_member(victim, 1);
  system.run(1);
  EXPECT_EQ(system.stats().quorum_member_failures, 1u);
  EXPECT_EQ(system.stats().quorum_losses, 0u);

  system.fail_quorum_member(victim, 2);
  system.run(1);
  EXPECT_EQ(system.stats().quorum_member_failures, 2u);
  EXPECT_EQ(system.stats().quorum_losses, 1u);
  EXPECT_EQ(system.scram().stats().quorum_losses, 1u);
  EXPECT_FALSE(system.quorum_group(victim).has_majority());

  // Repairing one member restores the majority: kQuorumDurable.
  system.repair_quorum_member(victim, 2);
  system.run(1);
  EXPECT_EQ(system.stats().quorum_member_repairs, 1u);
  EXPECT_EQ(system.stats().quorum_restores, 1u);
  EXPECT_EQ(system.scram().stats().quorum_restores, 1u);
  EXPECT_TRUE(system.quorum_group(victim).has_majority());

  // The surviving members kept streaming all along: the leader's replica
  // converges to the source store on catch-up.
  (void)system.ship_catch_up(victim);
  const auto& proc = system.processors().processor(victim);
  EXPECT_EQ(system.ship_replica(victim).store().fingerprint(),
            proc.poll_stable().fingerprint());
}

TEST(QuorumSystem, FaultPlanDrivesCohortFailuresAndRepairs) {
  support::CrashMission m =
      quorum_chain_factory(SyncPolicy::every_commit(), 3)();
  core::System& system = *m.system;
  const ProcessorId victim = synthetic_processor(0);

  sim::FaultPlan plan;
  plan.quorum_member_fail(2 * 10'000, victim, 1);
  plan.quorum_member_fail(3 * 10'000, victim, 2);
  plan.quorum_member_repair(5 * 10'000, victim, 1);
  system.set_fault_plan(std::move(plan));
  system.run(8);

  EXPECT_EQ(system.stats().quorum_member_failures, 2u);
  EXPECT_EQ(system.stats().quorum_member_repairs, 1u);
  EXPECT_EQ(system.stats().quorum_losses, 1u);
  EXPECT_EQ(system.stats().quorum_restores, 1u);
  const QuorumGroup& group = system.quorum_group(victim);
  EXPECT_TRUE(group.member_live(1));
  EXPECT_FALSE(group.member_live(2));
}

// --- crash-point sweeps: the quorum adversary ---

TEST(QuorumSweep, SingleMemberSweepIsDigestIdenticalToSingleStandbyOracle) {
  // The acceptance anchor: at N = 1 the quorum path must reproduce the
  // single-standby warm-start sweep bit for bit, under every sync policy.
  for (const auto& [name, policy] : all_policies()) {
    CrashSweepOptions options;
    options.frames = 12;
    options.victim = synthetic_processor(0);
    options.warm_start = true;
    const CrashSweepReport single =
        run_crash_sweep(quorum_chain_factory(policy, 0), options);
    const CrashSweepReport cohort =
        run_crash_sweep(quorum_chain_factory(policy, 1), options);
    EXPECT_TRUE(single.all_match()) << name;
    EXPECT_TRUE(cohort.all_match()) << name;
    EXPECT_EQ(single.digest(), cohort.digest()) << name;
  }
}

TEST(QuorumSweep, SingleMemberBitFlipSweepMatchesOracleThroughTheRebase) {
  // A flipped durable bit can force a lossy recovery: the source rewrites
  // history and the cohort must re-base its commit id onto the reseeded
  // boundary instead of pinning the vanished epoch. At N = 1 this, too,
  // must be digest-identical to the single-standby oracle.
  for (const auto& [name, policy] : all_policies()) {
    CrashSweepOptions options;
    options.frames = 12;
    options.victim = synthetic_processor(0);
    options.warm_start = true;
    options.io_fault = CrashSweepOptions::IoFault::kBitFlip;
    const CrashSweepReport single =
        run_crash_sweep(quorum_chain_factory(policy, 0), options);
    const CrashSweepReport cohort =
        run_crash_sweep(quorum_chain_factory(policy, 1), options);
    EXPECT_TRUE(single.all_match()) << name;
    EXPECT_TRUE(cohort.all_match()) << name;
    EXPECT_EQ(single.digest(), cohort.digest()) << name;
  }
}

TEST(QuorumSweep, LeaderKillAtEveryCrashFrameHoldsTheCommitRule) {
  // The adversary: at every crash point of the chain mission the elected
  // leader fail-stops before the catch-up. A surviving member must serve
  // the warm start, the cohort must keep its majority, and the majority-
  // acknowledged commit id must equal the epoch served. All four sync
  // policies. Leader churn must buy no full-copy reseeds of its own:
  // group-commit policies reseed at points where the fail-stop itself was
  // a lossy recovery, and the kill sweep must reseed at exactly the same
  // points as the undisturbed baseline.
  for (const auto& [name, policy] : all_policies()) {
    CrashSweepOptions options;
    options.frames = 20;
    options.victim = synthetic_processor(0);
    options.warm_start = true;
    const CrashSweepReport baseline =
        run_crash_sweep(quorum_chain_factory(policy, 3), options);
    options.quorum_kills = 1;
    const CrashSweepReport report =
        run_crash_sweep(quorum_chain_factory(policy, 3), options);
    ASSERT_EQ(report.points.size(), 20u) << name;
    EXPECT_TRUE(baseline.all_match()) << name;
    EXPECT_TRUE(report.all_match())
        << name << ": " << report.mismatches << " recovery / "
        << report.replica_mismatches << " replica mismatches";
    EXPECT_EQ(report.replica_reseeds, baseline.replica_reseeds) << name;
  }
}

TEST(QuorumSweep, FiveMemberCohortSurvivesTwoLeaderKills) {
  // N = 5 tolerates any minority: kill the leader twice per crash point
  // (the second kill takes the freshly elected successor) and the commit
  // rule must still hold off the three survivors.
  CrashSweepOptions options;
  options.frames = 15;
  options.victim = synthetic_processor(0);
  options.warm_start = true;
  const CrashSweepReport baseline = run_crash_sweep(
      quorum_chain_factory(SyncPolicy::hybrid(4096, 8), 5), options);
  options.quorum_kills = 2;
  const CrashSweepReport report = run_crash_sweep(
      quorum_chain_factory(SyncPolicy::hybrid(4096, 8), 5), options);
  EXPECT_TRUE(report.all_match())
      << report.mismatches << " recovery / " << report.replica_mismatches
      << " replica mismatches";
  EXPECT_EQ(report.replica_reseeds, baseline.replica_reseeds);
}

TEST(QuorumSweep, AvionicsLeaderKillSweepHoldsUnderEveryPolicy) {
  // The §7 avionics mission with reconfigurations in flight: the quorum
  // adversary at every crash frame of computer 1, all four policies.
  for (const auto& [name, policy] : all_policies()) {
    CrashSweepOptions options;
    options.frames = 30;
    options.victim = avionics::kComputer1;
    options.warm_start = true;
    options.quorum_kills = 1;
    const CrashSweepReport report =
        run_crash_sweep(quorum_uav_factory(policy, 3), options);
    EXPECT_TRUE(report.all_match())
        << name << ": " << report.mismatches << " recovery / "
        << report.replica_mismatches << " replica mismatches";
  }
}

TEST(QuorumSweep, CheckpointedSweepMatchesTheFromScratchOracle) {
  // The O(F·K) checkpointed strategy must reproduce the O(F²) from-scratch
  // sweep bit for bit with cohort state in the checkpoint image.
  const auto digest_with = [](bool checkpointing) {
    CrashSweepOptions options;
    options.frames = 12;
    options.victim = synthetic_processor(0);
    options.warm_start = true;
    options.quorum_kills = 1;
    options.checkpointing = checkpointing;
    return run_crash_sweep(
               quorum_chain_factory(SyncPolicy::frames(4), 3), options)
        .digest();
  };
  EXPECT_EQ(digest_with(true), digest_with(false));
}

TEST(QuorumSweep, ReportIsBitIdenticalAcrossThreadCounts) {
  const auto digest_with = [](std::size_t threads) {
    sim::BatchOptions batch;
    batch.threads = threads;
    sim::BatchRunner runner(batch);
    CrashSweepOptions options;
    options.frames = 10;
    options.victim = synthetic_processor(0);
    options.warm_start = true;
    options.quorum_kills = 1;
    return run_crash_sweep(quorum_chain_factory(SyncPolicy::frames(3), 3),
                           options, runner)
        .digest();
  };
  EXPECT_EQ(digest_with(1), digest_with(4));
}

}  // namespace
}  // namespace arfs
