// The conformance harness applied to every application implementation in
// the repository — and to deliberately broken implementations, proving the
// harness catches each class of non-conformance.
#include <gtest/gtest.h>

#include "arfs/avionics/uav_system.hpp"
#include "arfs/core/modular_app.hpp"
#include "arfs/support/conformance.hpp"
#include "arfs/support/simple_app.hpp"
#include "arfs/support/synthetic.hpp"

namespace arfs::support {
namespace {

TEST(Conformance, SimpleAppConforms) {
  ConformanceInputs inputs;
  inputs.factory = [] {
    return std::make_unique<SimpleApp>(synthetic_app(0), "simple");
  };
  inputs.initial_spec = synthetic_spec(0, 0);
  inputs.target_spec = synthetic_spec(0, 1);
  const ConformanceReport report = check_app_conformance(inputs);
  EXPECT_TRUE(report.all_passed()) << report.summary();
  EXPECT_EQ(report.cases.size(), 8u);
}

TEST(Conformance, SlowStagesConformWithinBound) {
  ConformanceInputs inputs;
  inputs.factory = [] {
    SimpleAppParams params;
    params.halt_frames = 3;
    params.initialize_frames = 2;
    return std::make_unique<SimpleApp>(synthetic_app(0), "slow", params);
  };
  inputs.initial_spec = synthetic_spec(0, 0);
  inputs.target_spec = synthetic_spec(0, 1);
  inputs.stage_bound = 4;
  EXPECT_TRUE(check_app_conformance(inputs).all_passed());

  inputs.stage_bound = 2;  // tighter than the 3-frame halt
  const ConformanceReport tight = check_app_conformance(inputs);
  EXPECT_FALSE(tight.all_passed());
  EXPECT_NE(tight.summary().find("halt-completes"), std::string::npos);
}

TEST(Conformance, AvionicsAppsConform) {
  // The plant must outlive each app instance; one per factory call.
  static avionics::UavPlant plant(5);

  ConformanceInputs autopilot;
  autopilot.factory = [] {
    return std::make_unique<avionics::AutopilotApp>(plant);
  };
  autopilot.initial_spec = avionics::kApFull;
  autopilot.target_spec = avionics::kApAltHold;
  EXPECT_TRUE(check_app_conformance(autopilot).all_passed())
      << check_app_conformance(autopilot).summary();

  ConformanceInputs fcs;
  fcs.factory = [] { return std::make_unique<avionics::FcsApp>(plant); };
  fcs.initial_spec = avionics::kFcsAugmented;
  fcs.target_spec = avionics::kFcsDirect;
  EXPECT_TRUE(check_app_conformance(fcs).all_passed())
      << check_app_conformance(fcs).summary();
}

/// A minimal conforming module for ModularApp conformance.
class NopModule final : public core::AppModule {
 public:
  explicit NopModule(std::string name) : AppModule(std::move(name)) {}
  SimDuration do_work(const core::ReconfigurableApp::Ctx&, int) override {
    return 10;
  }
  void do_halt(const core::ReconfigurableApp::Ctx&) override {}
  void do_prepare(const core::ReconfigurableApp::Ctx&, int) override {}
  void do_initialize(const core::ReconfigurableApp::Ctx&, int) override {}
};

TEST(Conformance, ModularAppConforms) {
  ConformanceInputs inputs;
  inputs.factory = [] {
    auto app = std::make_unique<core::ModularApp>(synthetic_app(0), "mod");
    app->add_module(std::make_unique<NopModule>("x"));
    app->add_module(std::make_unique<NopModule>("y"));
    app->map_spec(synthetic_spec(0, 0), {{"x", 1}, {"y", 1}});
    app->map_spec(synthetic_spec(0, 1), {{"x", 0}});
    return app;
  };
  inputs.initial_spec = synthetic_spec(0, 0);
  inputs.target_spec = synthetic_spec(0, 1);
  const ConformanceReport report = check_app_conformance(inputs);
  EXPECT_TRUE(report.all_passed()) << report.summary();
}

/// Deliberately broken: halt never completes.
class StuckHaltApp final : public core::ReconfigurableApp {
 public:
  StuckHaltApp() : ReconfigurableApp(synthetic_app(0), "stuck") {}

 protected:
  StepResult do_work(const Ctx&) override { return {}; }
  bool do_halt(const Ctx&) override { return false; }  // never done
  bool do_prepare(const Ctx&, std::optional<SpecId>) override { return true; }
  bool do_initialize(const Ctx&, std::optional<SpecId>) override {
    return true;
  }
};

TEST(Conformance, CatchesUnboundedHalt) {
  ConformanceInputs inputs;
  inputs.factory = [] { return std::make_unique<StuckHaltApp>(); };
  inputs.initial_spec = synthetic_spec(0, 0);
  inputs.target_spec = synthetic_spec(0, 1);
  const ConformanceReport report = check_app_conformance(inputs);
  EXPECT_FALSE(report.all_passed());
  EXPECT_NE(report.summary().find("did not complete within the bound"),
            std::string::npos);
}

/// Deliberately broken: initialize raises a fault.
class FaultingInitApp final : public core::ReconfigurableApp {
 public:
  FaultingInitApp() : ReconfigurableApp(synthetic_app(0), "faulty") {}

 protected:
  StepResult do_work(const Ctx&) override { return {}; }
  bool do_halt(const Ctx&) override { return true; }
  bool do_prepare(const Ctx&, std::optional<SpecId>) override { return true; }
  bool do_initialize(const Ctx&, std::optional<SpecId>) override {
    throw Error("gains table missing");
  }
};

TEST(Conformance, CatchesThrowingInitialize) {
  ConformanceInputs inputs;
  inputs.factory = [] { return std::make_unique<FaultingInitApp>(); };
  inputs.initial_spec = synthetic_spec(0, 0);
  inputs.target_spec = synthetic_spec(0, 1);
  inputs.check_off_target = false;
  const ConformanceReport report = check_app_conformance(inputs);
  EXPECT_FALSE(report.all_passed());
  EXPECT_NE(report.summary().find("threw: gains table missing"),
            std::string::npos);
}

}  // namespace
}  // namespace arfs::support
