#include <gtest/gtest.h>

#include "arfs/common/check.hpp"
#include "arfs/common/rng.hpp"
#include "arfs/sim/clock.hpp"
#include "arfs/sim/event_queue.hpp"
#include "arfs/sim/fault_plan.hpp"

namespace arfs::sim {
namespace {

TEST(VirtualClock, StartsAtFrameZero) {
  VirtualClock clock(10'000);
  EXPECT_EQ(clock.current_frame(), 0u);
  EXPECT_EQ(clock.now(), 0);
}

TEST(VirtualClock, AdvanceFrame) {
  VirtualClock clock(10'000);
  clock.advance_frame();
  EXPECT_EQ(clock.current_frame(), 1u);
  EXPECT_EQ(clock.now(), 10'000);
}

TEST(VirtualClock, FrameStartAndFrameOf) {
  VirtualClock clock(10'000);
  EXPECT_EQ(clock.frame_start(3), 30'000);
  EXPECT_EQ(clock.frame_of(0), 0u);
  EXPECT_EQ(clock.frame_of(9'999), 0u);
  EXPECT_EQ(clock.frame_of(10'000), 1u);
}

TEST(VirtualClock, AdvanceWithinFrame) {
  VirtualClock clock(10'000);
  clock.advance_within_frame(5'000);
  EXPECT_EQ(clock.now(), 5'000);
  EXPECT_EQ(clock.current_frame(), 0u);
}

TEST(VirtualClock, AdvanceWithinFrameCannotCrossBoundary) {
  VirtualClock clock(10'000);
  EXPECT_THROW(clock.advance_within_frame(10'000), ContractViolation);
}

TEST(VirtualClock, RejectsNonPositiveFrame) {
  EXPECT_THROW(VirtualClock(0), ContractViolation);
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(30, [&] { fired.push_back(3); });
  q.schedule(10, [&] { fired.push_back(1); });
  q.schedule(20, [&] { fired.push_back(2); });
  EXPECT_EQ(q.run_until(100), 3u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeFiresInInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) q.schedule(10, [&fired, i] { fired.push_back(i); });
  q.run_until(10);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RespectsUntil) {
  EventQueue q;
  int count = 0;
  q.schedule(10, [&] { ++count; });
  q.schedule(20, [&] { ++count; });
  EXPECT_EQ(q.run_until(15), 1u);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(q.next_time(), 20);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int count = 0;
  q.schedule(10, [&] {
    ++count;
    q.schedule(15, [&] { ++count; });
  });
  q.run_until(20);
  EXPECT_EQ(count, 2);
}

TEST(EventQueue, CascadedEventBeyondUntilStaysPending) {
  EventQueue q;
  int count = 0;
  q.schedule(10, [&] {
    ++count;
    q.schedule(50, [&] { ++count; });
  });
  q.run_until(20);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, ClearAndEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.schedule(1, [] {});
  EXPECT_FALSE(q.empty());
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kNoTime);
}

TEST(FaultPlan, KeepsTimeOrderRegardlessOfInsertion) {
  FaultPlan plan;
  plan.fail_processor(300, ProcessorId{1});
  plan.fail_processor(100, ProcessorId{2});
  plan.fail_processor(200, ProcessorId{3});
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.events()[0].processor, ProcessorId{2});
  EXPECT_EQ(plan.events()[1].processor, ProcessorId{3});
  EXPECT_EQ(plan.events()[2].processor, ProcessorId{1});
}

TEST(FaultPlan, ConsumeUntilIsIncremental) {
  FaultPlan plan;
  plan.fail_processor(100, ProcessorId{1});
  plan.change_environment(200, FactorId{1}, 5);
  plan.software_fault(300, AppId{1});

  EXPECT_EQ(plan.consume_until(150).size(), 1u);
  EXPECT_EQ(plan.consume_until(150).size(), 0u);  // already consumed
  EXPECT_EQ(plan.consume_until(400).size(), 2u);
}

TEST(FaultPlan, RewindReplays) {
  FaultPlan plan;
  plan.fail_processor(100, ProcessorId{1});
  EXPECT_EQ(plan.consume_until(1000).size(), 1u);
  plan.rewind();
  EXPECT_EQ(plan.consume_until(1000).size(), 1u);
}

TEST(FaultPlan, BuilderFieldsRoundTrip) {
  FaultPlan plan;
  plan.change_environment(50, FactorId{7}, -3, "note");
  const FaultEvent& e = plan.events()[0];
  EXPECT_EQ(e.kind, FaultKind::kEnvironmentChange);
  EXPECT_EQ(e.factor, FactorId{7});
  EXPECT_EQ(e.new_value, -3);
  EXPECT_EQ(e.note, "note");
}

TEST(FaultPlan, RejectsNegativeTime) {
  FaultPlan plan;
  EXPECT_THROW(plan.fail_processor(-1, ProcessorId{1}), ContractViolation);
}

TEST(Campaign, GeneratesRequestedCounts) {
  CampaignParams params;
  params.horizon = 1'000'000;
  params.processor_failures = 3;
  params.environment_changes = 4;
  params.timing_overruns = 2;
  params.software_faults = 1;
  params.processors = {ProcessorId{1}, ProcessorId{2}};
  params.factors = {FactorId{1}};
  params.factor_max = 3;
  params.apps = {AppId{1}, AppId{2}};

  Rng rng(7);
  const FaultPlan plan = generate_campaign(params, rng);
  EXPECT_EQ(plan.size(), 10u);

  std::size_t env_changes = 0;
  for (const FaultEvent& e : plan.events()) {
    EXPECT_GE(e.when, 0);
    EXPECT_LT(e.when, params.horizon);
    if (e.kind == FaultKind::kEnvironmentChange) {
      ++env_changes;
      EXPECT_GE(e.new_value, params.factor_min);
      EXPECT_LE(e.new_value, params.factor_max);
    }
  }
  EXPECT_EQ(env_changes, 4u);
}

TEST(Campaign, DeterministicFromSeed) {
  CampaignParams params;
  params.horizon = 1000;
  params.environment_changes = 5;
  params.factors = {FactorId{1}};
  Rng a(42);
  Rng b(42);
  const FaultPlan pa = generate_campaign(params, a);
  const FaultPlan pb = generate_campaign(params, b);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa.events()[i].when, pb.events()[i].when);
    EXPECT_EQ(pa.events()[i].new_value, pb.events()[i].new_value);
  }
}

TEST(Campaign, RequiresCandidatesWhenCountsPositive) {
  CampaignParams params;
  params.horizon = 1000;
  params.processor_failures = 1;  // but no processors listed
  Rng rng(1);
  EXPECT_THROW((void)generate_campaign(params, rng), ContractViolation);
}

TEST(FaultKindNames, AllDistinct) {
  EXPECT_EQ(to_string(FaultKind::kProcessorFailStop), "processor-fail-stop");
  EXPECT_EQ(to_string(FaultKind::kEnvironmentChange), "environment-change");
  EXPECT_NE(to_string(FaultKind::kTimingOverrun),
            to_string(FaultKind::kSoftwareFault));
}

}  // namespace
}  // namespace arfs::sim
