// Randomized avionics campaigns: electrical failures and repairs drawn from
// a seed drive the real section 7 system (with the computer-status
// extension active in half the sweep); every completed reconfiguration must
// satisfy SP1-SP4 and the final configuration must match what choose() says
// about the final environment.
#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "arfs/avionics/uav_system.hpp"
#include "arfs/props/report.hpp"
#include "arfs/support/sweep.hpp"
#include "arfs/trace/export.hpp"

namespace arfs::avionics {
namespace {

struct SweepParam {
  std::uint64_t seed = 0;
  bool with_computers = false;
  Cycle dwell = 0;

  friend std::ostream& operator<<(std::ostream& os, const SweepParam& p) {
    return os << "seed" << p.seed << (p.with_computers ? "_ext" : "_base")
              << "_dwell" << p.dwell;
  }
};

class AvionicsSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AvionicsSweep, RandomElectricalCampaignKeepsAllProperties) {
  const SweepParam& p = GetParam();
  UavOptions options;
  options.spec.with_computer_status = p.with_computers;
  options.spec.dwell_frames = p.dwell;
  options.plant_seed = p.seed;
  UavSystem uav(options);
  Rng rng(p.seed * 131 + 7);

  uav.run(10);
  // 30 random electrical events: fail or repair a random alternator, with
  // random gaps; the electrical model derives the power state.
  for (int event = 0; event < 30; ++event) {
    const int alternator = static_cast<int>(rng.uniform(0, 1));
    if (rng.chance(0.5)) {
      uav.electrical().fail_alternator(alternator);
    } else {
      uav.electrical().repair_alternator(alternator);
    }
    uav.run(5 + rng.uniform(0, 30));
  }
  uav.run(40);  // quiet tail

  const props::TraceReport report =
      props::check_trace(uav.system().trace(), uav.spec());
  EXPECT_TRUE(report.all_hold()) << props::render(report);
  EXPECT_FALSE(report.incomplete_at_end);

  // Quiescence agreement: with the dwell window expired, the resting
  // configuration is exactly choose(current, final environment).
  const ConfigId current = uav.system().scram().current_config();
  EXPECT_EQ(uav.spec().choose(current, uav.system().environment().state()),
            current);

  // Invariant: whatever happened, the FCS is running (it is assigned in
  // every configuration — control is never lost).
  EXPECT_TRUE(uav.fcs().current_spec().has_value());
}

std::vector<SweepParam> matrix() {
  std::vector<SweepParam> params;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    SweepParam base;
    base.seed = seed;
    params.push_back(base);

    SweepParam ext;
    ext.seed = seed;
    ext.with_computers = true;
    params.push_back(ext);

    SweepParam dwelled;
    dwelled.seed = seed;
    dwelled.dwell = 15;
    params.push_back(dwelled);
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Campaigns, AvionicsSweep,
                         ::testing::ValuesIn(matrix()),
                         [](const auto& info) {
                           std::ostringstream os;
                           os << info.param;
                           return os.str();
                         });

/// One full campaign (the same shape the parameterized test drives),
/// reduced to a digest: property verdict + final config + trace CSV.
std::string fly_campaign(const SweepParam& p) {
  UavOptions options;
  options.spec.with_computer_status = p.with_computers;
  options.spec.dwell_frames = p.dwell;
  options.plant_seed = p.seed;
  UavSystem uav(options);
  Rng rng(p.seed * 131 + 7);

  uav.run(10);
  for (int event = 0; event < 30; ++event) {
    const int alternator = static_cast<int>(rng.uniform(0, 1));
    if (rng.chance(0.5)) {
      uav.electrical().fail_alternator(alternator);
    } else {
      uav.electrical().repair_alternator(alternator);
    }
    uav.run(5 + rng.uniform(0, 30));
  }
  uav.run(40);

  const props::TraceReport report =
      props::check_trace(uav.system().trace(), uav.spec());
  std::ostringstream os;
  os << (report.all_hold() ? "holds" : "FAILS") << '/'
     << uav.system().scram().current_config().value() << '/';
  trace::write_csv(uav.system().trace(), os);
  return os.str();
}

// The whole campaign matrix through support::run_mission_sweep: every
// mission keeps SP1-SP4, and the parallel result vector is bit-identical
// to the serial one (the sweep engine's core promise, on the real
// section 7 avionics stack rather than a synthetic system).
TEST(AvionicsSweepParallel, MatrixIdenticalSerialVsParallel) {
  const std::vector<SweepParam> params = matrix();
  const std::function<std::string(const support::MissionJob&)> fly =
      [&params](const support::MissionJob& job) {
        return fly_campaign(params[job.index]);
      };

  sim::BatchRunner serial{sim::BatchOptions{1, 0}};
  const std::vector<std::string> reference =
      support::run_mission_sweep<std::string>(params.size(), 0, fly, serial);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(reference[i].substr(0, 5), "holds") << params[i];
  }

  sim::BatchRunner parallel{sim::BatchOptions{4, 0}};
  EXPECT_EQ(support::run_mission_sweep<std::string>(params.size(), 0, fly,
                                                    parallel),
            reference);
}

}  // namespace
}  // namespace arfs::avionics
