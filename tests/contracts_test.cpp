// Cross-module misuse battery: every documented precondition that is not
// already exercised by a module's own test fails loudly (ContractViolation
// or Error), never silently.
#include <gtest/gtest.h>

#include <memory>

#include "arfs/bus/schedule.hpp"
#include "arfs/core/system.hpp"
#include "arfs/props/online.hpp"
#include "arfs/rtos/schedule.hpp"
#include "arfs/support/simple_app.hpp"
#include "arfs/support/synthetic.hpp"
#include "arfs/trace/recorder.hpp"

namespace arfs {
namespace {

using support::make_chain_spec;
using support::synthetic_app;

TEST(Contracts, BusScheduleRejectsEmptyOrZeroSlots) {
  bus::TdmaSchedule schedule;
  EXPECT_THROW(schedule.add_slot(EndpointId{1}, 0), ContractViolation);
  EXPECT_THROW((void)schedule.next_transmit_time(EndpointId{1}, 0),
               ContractViolation);
}

TEST(Contracts, RtosWindowRejectsNegativeOffset) {
  rtos::ScheduleTable table(1000);
  EXPECT_THROW(
      table.add_window(rtos::Window{PartitionId{1}, ProcessorId{1}, -1, 10}),
      ContractViolation);
  EXPECT_THROW(
      table.add_window(rtos::Window{PartitionId{1}, ProcessorId{1}, 0, 0}),
      ContractViolation);
}

TEST(Contracts, SysTraceRejectsZeroFrameLength) {
  EXPECT_THROW(trace::SysTrace(0), ContractViolation);
}

TEST(Contracts, OnlineMonitorRejectsZeroFrameLength) {
  const core::ReconfigSpec spec = make_chain_spec({});
  EXPECT_THROW(props::OnlineMonitor(spec, 0), ContractViolation);
}

TEST(Contracts, SystemRejectsNullEnvHook) {
  const core::ReconfigSpec spec = make_chain_spec({});
  core::System system(spec);
  EXPECT_THROW(system.add_env_hook(nullptr), ContractViolation);
}

TEST(Contracts, SystemRejectsUnknownProcessorFactorBinding) {
  const core::ReconfigSpec spec = make_chain_spec({});
  core::System system(spec);
  // Unknown processor.
  EXPECT_THROW(
      system.bind_processor_factor(ProcessorId{99}, FactorId{100}),
      ContractViolation);
  // Undeclared factor.
  EXPECT_THROW(system.bind_processor_factor(
                   support::synthetic_processor(0), FactorId{77}),
               ContractViolation);
}

TEST(Contracts, SystemRejectsUndeclaredFactorSet) {
  const core::ReconfigSpec spec = make_chain_spec({});
  core::System system(spec);
  EXPECT_THROW(system.set_factor(FactorId{77}, 1), ContractViolation);
}

TEST(Contracts, SystemRejectsAddAppAfterStart) {
  support::ChainSpecParams params;
  params.apps = 2;
  const core::ReconfigSpec spec = make_chain_spec(params);
  core::System system(spec);
  system.add_app(std::make_unique<support::SimpleApp>(synthetic_app(0), "a"));
  system.add_app(std::make_unique<support::SimpleApp>(synthetic_app(1), "b"));
  system.run(1);
  EXPECT_THROW(system.add_app(std::make_unique<support::SimpleApp>(
                   synthetic_app(0), "late")),
               ContractViolation);
}

TEST(Contracts, SystemRejectsDuplicateAndNullApps) {
  support::ChainSpecParams params;
  params.apps = 2;
  const core::ReconfigSpec spec = make_chain_spec(params);
  core::System system(spec);
  system.add_app(std::make_unique<support::SimpleApp>(synthetic_app(0), "a"));
  EXPECT_THROW(system.add_app(std::make_unique<support::SimpleApp>(
                   synthetic_app(0), "dup")),
               ContractViolation);
  EXPECT_THROW(system.add_app(nullptr), ContractViolation);
}

TEST(Contracts, SystemUnknownAppLookupThrows) {
  const core::ReconfigSpec spec = make_chain_spec({});
  core::System system(spec);
  EXPECT_THROW((void)system.app(AppId{99}), ContractViolation);
  EXPECT_THROW((void)system.region_host(AppId{99}), ContractViolation);
}

TEST(Contracts, FaultPlanRejectsAddAfterConsumption) {
  sim::FaultPlan plan;
  plan.fail_processor(100, ProcessorId{1});
  (void)plan.consume_until(200);
  EXPECT_THROW(plan.fail_processor(300, ProcessorId{1}), ContractViolation);
  plan.rewind();
  EXPECT_EQ(plan.consume_until(200).size(), 1u);
}

TEST(Contracts, ReconfigSpecChooseUnsetThrows) {
  core::ReconfigSpec spec;
  EXPECT_THROW((void)spec.choose(ConfigId{1}, env::EnvState{}),
               ContractViolation);
  EXPECT_THROW((void)spec.initial_config(), ContractViolation);
  EXPECT_THROW(spec.set_choose(nullptr), ContractViolation);
}

}  // namespace
}  // namespace arfs
