// Property sweeps: the reproduction's substitute for the paper's PVS proofs.
//
// The PVS theorems state that SP1-SP4 hold on every trace of the model. We
// cannot quantify over all traces, but we can sweep large randomized
// families of systems (shape drawn from a seed) under randomized fault
// campaigns and assert the properties on every completed reconfiguration of
// every trace. Sweeps also cross-check runtime behaviour against the static
// analyses: every transition taken at runtime must be an edge of the
// statically computed transition graph, and every spec that passes coverage
// must never strand the SCRAM.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "arfs/analysis/coverage.hpp"
#include "arfs/analysis/graph.hpp"
#include "arfs/analysis/timing.hpp"
#include "arfs/core/system.hpp"
#include "arfs/props/online.hpp"
#include "arfs/props/report.hpp"
#include "arfs/support/simple_app.hpp"
#include "arfs/support/synthetic.hpp"

namespace arfs {
namespace {

using core::ReconfigSpec;
using core::System;
using support::SimpleApp;
using support::SimpleAppParams;

struct SweepParam {
  std::uint64_t seed = 0;
  std::size_t apps = 3;
  std::size_t configs = 4;
  std::size_t factors = 2;
  std::size_t dependencies = 1;
  std::size_t env_changes = 12;
  core::ReconfigPolicy policy = core::ReconfigPolicy::kBuffer;
  core::PhaseBarrier barrier = core::PhaseBarrier::kGlobal;
  Cycle max_stage_frames = 1;

  friend std::ostream& operator<<(std::ostream& os, const SweepParam& p) {
    return os << "seed" << p.seed << "_a" << p.apps << "_c" << p.configs
              << "_f" << p.factors << "_d" << p.dependencies << "_"
              << (p.policy == core::ReconfigPolicy::kBuffer ? "buffer"
                                                            : "immediate")
              << (p.barrier == core::PhaseBarrier::kRelaxed ? "_relaxed"
                                                            : "_global")
              << "_s" << p.max_stage_frames;
  }
};

class RandomSystemSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RandomSystemSweep, AllPropertiesHoldUnderRandomCampaign) {
  const SweepParam& p = GetParam();

  support::RandomSpecParams spec_params;
  spec_params.apps = p.apps;
  spec_params.configs = p.configs;
  spec_params.factors = p.factors;
  spec_params.dependencies = p.dependencies;
  spec_params.transition_bound = 64;
  const ReconfigSpec spec = support::make_random_spec(spec_params, p.seed);

  // Static assurance must discharge before the run (covering_txns).
  const analysis::CoverageReport coverage = analysis::check_coverage(spec);
  ASSERT_TRUE(coverage.all_discharged());
  const analysis::TransitionGraph graph =
      analysis::TransitionGraph::build(spec);

  core::SystemOptions options;
  options.scram.policy = p.policy;
  options.scram.barrier = p.barrier;
  System system(spec, options);

  Rng rng(p.seed * 7919 + 13);
  for (std::size_t a = 0; a < p.apps; ++a) {
    SimpleAppParams app_params;
    app_params.halt_frames = 1 + rng.uniform(0, p.max_stage_frames - 1);
    app_params.prepare_frames = 1 + rng.uniform(0, p.max_stage_frames - 1);
    app_params.initialize_frames = 1 + rng.uniform(0, p.max_stage_frames - 1);
    system.add_app(std::make_unique<SimpleApp>(
        support::synthetic_app(a), "sweep-app-" + std::to_string(a),
        app_params));
  }

  // Random environment-change campaign over 600 frames; a tail with no
  // events lets the final reconfiguration complete.
  sim::CampaignParams campaign;
  campaign.horizon = 500 * 10'000;
  campaign.environment_changes = p.env_changes;
  for (std::size_t f = 0; f < p.factors; ++f) {
    campaign.factors.push_back(support::synthetic_factor(f));
  }
  campaign.factor_min = 0;
  campaign.factor_max = 1;
  system.set_fault_plan(sim::generate_campaign(campaign, rng));

  system.run(700);

  // The four formal properties hold on every completed reconfiguration.
  const props::TraceReport report = props::check_trace(system.trace(), spec);
  EXPECT_TRUE(report.all_hold()) << props::render(report);

  // With a quiet 200-frame tail, nothing is left mid-reconfiguration.
  EXPECT_FALSE(report.incomplete_at_end);

  // Runtime/static agreement: every transition taken appears in the graph.
  std::set<std::pair<ConfigId, ConfigId>> edges;
  for (const analysis::Transition& t : graph.edges()) {
    edges.insert({t.from, t.to});
  }
  for (const props::ReconfigVerdict& v : report.verdicts) {
    if (v.reconfig.from == v.reconfig.to) continue;  // immediate re-choice
    EXPECT_TRUE(edges.contains({v.reconfig.from, v.reconfig.to}))
        << "runtime transition " << v.reconfig.from.value() << "->"
        << v.reconfig.to.value() << " not predicted by static analysis";
  }

  // The SCRAM's accounting is consistent with the trace.
  EXPECT_EQ(system.scram().stats().reconfigs_completed,
            report.reconfig_count);

  // Online/offline cross-validation: streaming the same trace through the
  // bounded-memory monitor yields identical verdict counts.
  props::OnlineMonitor monitor(spec, 10'000);
  std::uint64_t online_violations = 0;
  for (const trace::SysState& s : system.trace().states()) {
    if (const auto v = monitor.observe(s); v.has_value() && !v->all_hold()) {
      ++online_violations;
    }
  }
  EXPECT_EQ(monitor.stats().reconfigs_checked, report.reconfig_count);
  EXPECT_EQ(online_violations, 0u);
}

std::vector<SweepParam> sweep_matrix() {
  std::vector<SweepParam> params;
  // Seeds x policies at default shape.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    for (const core::ReconfigPolicy policy :
         {core::ReconfigPolicy::kBuffer, core::ReconfigPolicy::kImmediate}) {
      SweepParam p;
      p.seed = seed;
      p.policy = policy;
      params.push_back(p);
    }
  }
  // Shape variations.
  for (std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    SweepParam p;
    p.seed = seed;
    p.apps = 5;
    p.configs = 6;
    p.factors = 3;
    p.dependencies = 3;
    p.env_changes = 20;
    params.push_back(p);
  }
  // Multi-frame stages.
  for (std::uint64_t seed : {21u, 22u, 23u, 24u}) {
    SweepParam p;
    p.seed = seed;
    p.max_stage_frames = 3;
    p.env_changes = 8;
    params.push_back(p);
  }
  // Relaxed barrier, both policies, with stage skew and dependencies.
  for (std::uint64_t seed : {41u, 42u, 43u, 44u}) {
    for (const core::ReconfigPolicy policy :
         {core::ReconfigPolicy::kBuffer, core::ReconfigPolicy::kImmediate}) {
      SweepParam p;
      p.seed = seed;
      p.policy = policy;
      p.barrier = core::PhaseBarrier::kRelaxed;
      p.max_stage_frames = 3;
      p.dependencies = 2;
      p.env_changes = 10;
      params.push_back(p);
    }
  }
  // Single app, many configs; many apps, two configs.
  {
    SweepParam p;
    p.seed = 31;
    p.apps = 1;
    p.configs = 8;
    p.dependencies = 0;
    params.push_back(p);
    SweepParam q;
    q.seed = 32;
    q.apps = 6;
    q.configs = 2;
    q.dependencies = 4;
    params.push_back(q);
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Shapes, RandomSystemSweep,
                         ::testing::ValuesIn(sweep_matrix()),
                         [](const auto& info) {
                           std::ostringstream os;
                           os << info.param;
                           return os.str();
                         });

// --- chain sweeps: restriction-time formula vs. observed behaviour ---------

class ChainSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChainSweep, ObservedRestrictionNeverExceedsStaticBound) {
  const std::size_t levels = GetParam();
  support::ChainSpecParams params;
  params.configs = levels;
  params.apps = 2;
  params.transition_bound = 8;
  const ReconfigSpec spec = support::make_chain_spec(params);
  const analysis::TransitionGraph graph =
      analysis::TransitionGraph::build(spec);
  const analysis::ChainBound bound =
      analysis::worst_chain_restriction(spec, graph);
  ASSERT_TRUE(bound.frames.has_value());
  EXPECT_EQ(*bound.frames, (levels - 1) * 8);

  // Drive the worst case: severity degrades one level at a time, each new
  // failure arriving mid-reconfiguration (buffered until completion).
  System system(spec);
  system.add_app(std::make_unique<SimpleApp>(support::synthetic_app(0), "a"));
  system.add_app(std::make_unique<SimpleApp>(support::synthetic_app(1), "b"));
  system.run(3);
  for (std::size_t severity = 1; severity < levels; ++severity) {
    system.set_factor(support::kChainSeverityFactor,
                      static_cast<std::int64_t>(severity));
    system.run(2);  // next failure lands inside the ongoing reconfiguration
  }
  system.run(levels * 10);

  const props::TraceReport report = props::check_trace(system.trace(), spec);
  EXPECT_TRUE(report.all_hold()) << props::render(report);

  // Total observed restricted frames along the chain <= the static bound.
  Cycle restricted = 0;
  for (const props::ReconfigVerdict& v : report.verdicts) {
    restricted += trace::duration_frames(v.reconfig);
  }
  EXPECT_LE(restricted, *bound.frames);
  EXPECT_EQ(system.scram().current_config(),
            support::synthetic_config(levels - 1));
}

INSTANTIATE_TEST_SUITE_P(Lengths, ChainSweep,
                         ::testing::Values(2, 3, 4, 6, 8, 12));

}  // namespace
}  // namespace arfs
