// Durable stable storage: write-ahead journal, snapshots, and recovery.
//
// The scenarios mirror paper §5.1 at the device level: a halt preserves
// exactly the prefix of commits that reached the durable image — the "last
// successfully completed instruction" boundary — and recovery truncates a
// torn or corrupt tail rather than ever applying part of a commit.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "arfs/common/check.hpp"
#include "arfs/common/rng.hpp"
#include "arfs/failstop/processor.hpp"
#include "arfs/sim/batch.hpp"
#include "arfs/storage/durable/backend.hpp"
#include "arfs/storage/durable/engine.hpp"
#include "arfs/storage/durable/journal.hpp"
#include "arfs/storage/durable/snapshot.hpp"
#include "arfs/storage/durable/wal_snapshot.hpp"
#include "arfs/storage/durable/wire.hpp"
#include "arfs/storage/stable_storage.hpp"

namespace arfs::storage::durable {
namespace {

// --- wire format ---

TEST(Wire, Crc32MatchesReferenceVector) {
  const std::string check = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(check.data()),
                  check.size()),
            0xCBF43926u);
  EXPECT_EQ(crc32_bytewise(reinterpret_cast<const std::uint8_t*>(check.data()),
                           check.size()),
            0xCBF43926u);
}

TEST(Wire, Crc32SlicingEqualsBytewiseOnRandomInputs) {
  Rng rng(77);
  for (int round = 0; round < 200; ++round) {
    // Lengths straddle the 8-byte slicing block size, including 0..7 tails.
    const std::size_t n = static_cast<std::size_t>(rng.uniform(0, 100));
    std::vector<std::uint8_t> data(n);
    for (std::uint8_t& b : data) {
      b = static_cast<std::uint8_t>(rng.next_u64());
    }
    EXPECT_EQ(crc32(data.data(), n), crc32_bytewise(data.data(), n));
  }
}

TEST(Wire, Crc32SlicingEqualsBytewiseOnAdversarialInputs) {
  // Patterns that catch table-composition mistakes: all-zero (exercises pure
  // shift behaviour), all-ones, single bit in every position of one block,
  // and a run long enough that a wrong per-position table compounds.
  std::vector<std::vector<std::uint8_t>> cases;
  cases.emplace_back(64, 0x00);
  cases.emplace_back(64, 0xFF);
  for (std::size_t bit = 0; bit < 64; ++bit) {
    std::vector<std::uint8_t> one(8, 0);
    one[bit / 8] = static_cast<std::uint8_t>(1u << (bit % 8));
    cases.push_back(std::move(one));
  }
  std::vector<std::uint8_t> ramp(4096);
  for (std::size_t i = 0; i < ramp.size(); ++i) {
    ramp[i] = static_cast<std::uint8_t>(i * 131 + 17);
  }
  cases.push_back(std::move(ramp));
  for (const auto& data : cases) {
    EXPECT_EQ(crc32(data.data(), data.size()),
              crc32_bytewise(data.data(), data.size()));
  }
}

TEST(Wire, VarintRoundTripsBoundaryValues) {
  const std::uint64_t values[] = {0,       1,          127,        128,
                                  16383,   16384,      0xFFFFFFFF, 1ULL << 56,
                                  ~0ULL};
  std::vector<std::uint8_t> buf;
  for (const std::uint64_t v : values) put_varint(buf, v);
  ByteReader reader(buf.data(), buf.size());
  for (const std::uint64_t v : values) EXPECT_EQ(reader.varint(), v);
  EXPECT_TRUE(reader.exhausted());
  // Small ids — the steady-state interned-key case — are one byte.
  std::vector<std::uint8_t> small;
  put_varint(small, 42);
  EXPECT_EQ(small.size(), 1u);
}

TEST(Wire, OverlongVarintLatchesNotOk) {
  std::vector<std::uint8_t> buf(11, 0x80);  // 11 continuation bytes
  ByteReader reader(buf.data(), buf.size());
  (void)reader.varint();
  EXPECT_FALSE(reader.ok());
}

TEST(Wire, ValueRoundTripsAllTypesBitExactly) {
  std::vector<std::uint8_t> buf;
  put_value(buf, Value{true});
  put_value(buf, Value{std::int64_t{-42}});
  put_value(buf, Value{0.1});  // not exactly representable: bit pattern test
  put_value(buf, Value{std::string{"hello"}});
  ByteReader reader(buf.data(), buf.size());
  EXPECT_EQ(std::get<bool>(reader.value()), true);
  EXPECT_EQ(std::get<std::int64_t>(reader.value()), -42);
  EXPECT_EQ(std::get<double>(reader.value()), 0.1);
  EXPECT_EQ(std::get<std::string>(reader.value()), "hello");
  EXPECT_TRUE(reader.exhausted());
}

TEST(Wire, ShortReadLatchesNotOk) {
  std::vector<std::uint8_t> buf;
  put_u32(buf, 99);
  ByteReader reader(buf.data(), buf.size());
  (void)reader.u64();  // asks for more than is there
  EXPECT_FALSE(reader.ok());
}

// --- memory backend crash semantics ---

TEST(MemoryBackend, UnsyncedBytesDieInCrash) {
  MemoryBackend device;
  const std::uint8_t data[4] = {1, 2, 3, 4};
  device.append(data, 4);
  ASSERT_TRUE(device.sync());
  device.append(data, 4);
  EXPECT_EQ(device.size(), 8u);
  EXPECT_EQ(device.synced_size(), 4u);
  device.crash();
  EXPECT_EQ(device.size(), 4u);
}

TEST(MemoryBackend, FailedSyncKeepsBytesBufferedForLaterSync) {
  MemoryBackend device;
  const std::uint8_t data[2] = {7, 8};
  device.append(data, 2);
  device.fail_next_sync();
  EXPECT_FALSE(device.sync());
  EXPECT_EQ(device.synced_size(), 0u);
  // A later sync still lands the bytes — only a crash in between loses them.
  EXPECT_TRUE(device.sync());
  EXPECT_EQ(device.synced_size(), 2u);
}

TEST(MemoryBackend, ArmedTearKeepsPrefixOfUnsyncedTail) {
  MemoryBackend device;
  const std::uint8_t data[6] = {1, 2, 3, 4, 5, 6};
  device.append(data, 6);
  device.tear_on_crash(2);
  device.crash();
  EXPECT_EQ(device.size(), 2u);
  std::uint8_t out[2] = {};
  EXPECT_EQ(device.read(0, out, 2), 2u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 2);
}

TEST(MemoryBackend, BitFlipIsDeterministicInSeed) {
  const auto image = [](std::uint64_t seed) {
    MemoryBackend device;
    std::vector<std::uint8_t> bytes(64, 0xAB);
    device.append(bytes.data(), bytes.size());
    (void)device.sync();
    device.corrupt_bit(seed);
    std::vector<std::uint8_t> out(64);
    (void)device.read(0, out.data(), out.size());
    return out;
  };
  EXPECT_EQ(image(5), image(5));
  EXPECT_NE(image(5), image(6));
}

// --- journal scan ---

JournalRecord one_record(MemoryBackend& device, KeyInterner& dict,
                         std::uint64_t epoch, Cycle cycle) {
  JournalRecord r;
  r.epoch = epoch;
  r.cycle = cycle;
  r.entries = {{"k" + std::to_string(epoch), Value{std::int64_t(epoch)}}};
  std::vector<std::uint8_t> buf;
  encode_commit(buf, dict, r.epoch, r.cycle, r.entries);
  device.append(buf.data(), buf.size());
  return r;
}

TEST(JournalScan, RoundTripsRecords) {
  MemoryBackend device;
  KeyInterner dict;
  ASSERT_TRUE(ensure_header(device));
  one_record(device, dict, 1, 10);
  one_record(device, dict, 2, 11);
  const ScanResult scan = scan_journal(device);
  EXPECT_TRUE(scan.header_ok);
  EXPECT_FALSE(scan.truncated);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0].epoch, 1u);
  EXPECT_EQ(scan.records[1].cycle, Cycle{11});
  EXPECT_EQ(scan.records[1].entries[0].first, "k2");
  EXPECT_EQ(scan.valid_bytes, device.size());
  // The scan reconstructed the writer's dictionary.
  ASSERT_EQ(scan.dict.size(), 2u);
  EXPECT_EQ(scan.dict[0], "k1");
  EXPECT_EQ(scan.dict[1], "k2");
}

TEST(JournalScan, RepeatedKeysShipAsIdsNotStrings) {
  // Two journals of 20 commits over the same keys: one with long key names,
  // one with short. After the first commit, interning makes record size
  // independent of key length — the dictionary is paid once.
  const auto journal_bytes = [](const std::string& prefix) {
    MemoryBackend device;
    KeyInterner dict;
    ensure_header(device);
    const std::uint64_t header_and_dict_free = device.size();
    std::vector<std::uint8_t> buf;
    std::uint64_t steady_bytes = 0;
    for (std::uint64_t epoch = 1; epoch <= 20; ++epoch) {
      buf.clear();
      encode_commit(buf, dict, epoch, epoch,
                    {{prefix + "a", Value{std::int64_t(epoch)}},
                     {prefix + "b", Value{true}}});
      device.append(buf.data(), buf.size());
      if (epoch > 1) steady_bytes += buf.size();
    }
    // Sanity: the journal round-trips.
    const ScanResult scan = scan_journal(device);
    EXPECT_FALSE(scan.truncated);
    EXPECT_EQ(scan.records.size(), 20u);
    EXPECT_EQ(scan.records[19].entries[0].first, prefix + "a");
    (void)header_and_dict_free;
    return steady_bytes;
  };
  const std::uint64_t long_keys = journal_bytes(std::string(64, 'x') + "/");
  const std::uint64_t short_keys = journal_bytes("s/");
  EXPECT_EQ(long_keys, short_keys);
}

TEST(JournalScan, TornFinalRecordIsReportedAtItsOffset) {
  MemoryBackend device;
  KeyInterner dict;
  ASSERT_TRUE(ensure_header(device));
  one_record(device, dict, 1, 10);
  const std::uint64_t good_end = device.size();
  one_record(device, dict, 2, 11);
  device.truncate(good_end + 5);  // record 2 torn mid-envelope/payload
  const ScanResult scan = scan_journal(device);
  EXPECT_TRUE(scan.truncated);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.valid_bytes, good_end);
}

TEST(JournalScan, TornDictionaryRecordTruncatesTheTail) {
  MemoryBackend device;
  KeyInterner dict;
  ASSERT_TRUE(ensure_header(device));
  one_record(device, dict, 1, 10);
  const std::uint64_t good_end = device.size();
  // Epoch 2 introduces a fresh key, so a dictionary record precedes the
  // commit record; tear inside the dictionary record.
  one_record(device, dict, 2, 11);
  device.truncate(good_end + 3);
  const ScanResult scan = scan_journal(device);
  EXPECT_TRUE(scan.truncated);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.valid_bytes, good_end);
  EXPECT_EQ(scan.dict.size(), 1u);  // only epoch 1's key survived
}

TEST(JournalScan, CommitReferencingUnknownKeyIdIsCorruption) {
  MemoryBackend device;
  ASSERT_TRUE(ensure_header(device));
  // Hand-build a commit record whose key id was never defined.
  std::vector<std::uint8_t> payload;
  put_u8(payload, kRecordCommit);
  put_u64(payload, 1);   // epoch
  put_u64(payload, 10);  // cycle
  put_u32(payload, 1);   // one entry
  put_varint(payload, 7);  // undefined id
  put_value(payload, Value{true});
  std::vector<std::uint8_t> env;
  put_u32(env, static_cast<std::uint32_t>(payload.size()));
  put_u32(env, crc32(payload.data(), payload.size()));
  env.insert(env.end(), payload.begin(), payload.end());
  device.append(env.data(), env.size());
  const ScanResult scan = scan_journal(device);
  EXPECT_TRUE(scan.truncated);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.valid_bytes, kHeaderSize);
  EXPECT_NE(scan.reason.find("key id"), std::string::npos);
}

TEST(JournalScan, CrcMismatchStopsScan) {
  MemoryBackend device;
  KeyInterner dict;
  ASSERT_TRUE(ensure_header(device));
  one_record(device, dict, 1, 10);
  const std::uint64_t r2_offset = device.size();
  one_record(device, dict, 2, 11);
  one_record(device, dict, 3, 12);
  (void)device.sync();
  // Flip a payload byte of record 2 directly.
  std::uint8_t byte = 0;
  ASSERT_EQ(device.read(r2_offset + 10, &byte, 1), 1u);
  byte ^= 0x40;
  // No random access writer on the interface; reconstruct via truncate+append.
  std::vector<std::uint8_t> rest(
      static_cast<std::size_t>(device.size() - r2_offset - 11));
  ASSERT_EQ(device.read(r2_offset + 11, rest.data(), rest.size()),
            rest.size());
  std::vector<std::uint8_t> head(10);
  ASSERT_EQ(device.read(r2_offset, head.data(), head.size()), head.size());
  device.truncate(r2_offset);
  device.append(head.data(), head.size());
  device.append(&byte, 1);
  device.append(rest.data(), rest.size());
  const ScanResult scan = scan_journal(device);
  EXPECT_TRUE(scan.truncated);
  EXPECT_EQ(scan.records.size(), 1u);  // record 3 is untrusted too
  EXPECT_EQ(scan.valid_bytes, r2_offset);
  EXPECT_NE(scan.reason.find("CRC"), std::string::npos);
}

TEST(JournalScan, NonMonotoneEpochIsCorruption) {
  MemoryBackend device;
  KeyInterner dict;
  ASSERT_TRUE(ensure_header(device));
  one_record(device, dict, 2, 10);
  one_record(device, dict, 2, 11);  // replayed/duplicated epoch
  const ScanResult scan = scan_journal(device);
  EXPECT_TRUE(scan.truncated);
  EXPECT_EQ(scan.records.size(), 1u);
}

TEST(JournalScan, ImplausibleLengthPrefixDoesNotAllocate) {
  MemoryBackend device;
  ASSERT_TRUE(ensure_header(device));
  std::vector<std::uint8_t> bogus;
  put_u32(bogus, 0xFFFFFFFFu);  // 4 GiB claimed payload
  put_u32(bogus, 0);
  device.append(bogus.data(), bogus.size());
  const ScanResult scan = scan_journal(device);
  EXPECT_TRUE(scan.truncated);
  EXPECT_EQ(scan.valid_bytes, kHeaderSize);
}

// --- snapshots ---

TEST(Snapshots, LastValidImageWins) {
  MemoryBackend device;
  ASSERT_TRUE(append_snapshot(device, 4, {{"a", Value{std::int64_t{1}}, 2}}));
  ASSERT_TRUE(append_snapshot(device, 9, {{"a", Value{std::int64_t{5}}, 8},
                                          {"b", Value{true}, 9}}));
  const SnapshotScan scan = scan_snapshots(device);
  EXPECT_TRUE(scan.any_valid);
  EXPECT_EQ(scan.images, 2u);
  EXPECT_EQ(scan.last.epoch, 9u);
  ASSERT_EQ(scan.last.entries.size(), 2u);
  EXPECT_EQ(std::get<Cycle>(scan.last.entries[1]), Cycle{9});
}

TEST(Snapshots, TornLastImageFallsBackToPrevious) {
  MemoryBackend device;
  ASSERT_TRUE(append_snapshot(device, 4, {{"a", Value{std::int64_t{1}}, 2}}));
  const std::uint64_t good_end = device.size();
  ASSERT_TRUE(append_snapshot(device, 9, {{"a", Value{std::int64_t{5}}, 8}}));
  device.truncate(good_end + 6);  // crash mid-snapshot write
  const SnapshotScan scan = scan_snapshots(device);
  EXPECT_TRUE(scan.truncated);
  EXPECT_TRUE(scan.any_valid);
  EXPECT_EQ(scan.last.epoch, 4u);
  EXPECT_EQ(scan.valid_bytes, good_end);
}

// --- engine: commit, crash, recover ---

/// Commits `n` frames of deterministic writes through `engine` + `store`.
void run_commits(DurabilityEngine& engine, StableStorage& store, Cycle from,
                 Cycle n) {
  for (Cycle c = from; c < from + n; ++c) {
    store.write("counter", static_cast<std::int64_t>(c));
    store.write("key" + std::to_string(c % 3), 0.5 * static_cast<double>(c));
    engine.record_commit(store, c);
    store.commit(c);
    engine.after_commit(store);
  }
}

TEST(Engine, RecoverRebuildsBitIdenticalStore) {
  auto engine = make_memory_engine();
  StableStorage store;
  run_commits(*engine, store, 0, 10);
  const std::uint64_t before = store.fingerprint();

  engine->crash();  // everything was synced; nothing is lost
  StableStorage recovered;
  const RecoveryReport report = engine->recover_into(recovered);
  EXPECT_EQ(recovered.fingerprint(), before);
  EXPECT_EQ(report.records_applied, 10u);
  EXPECT_FALSE(report.journal_truncated);
  EXPECT_FALSE(report.used_snapshot);
  EXPECT_EQ(recovered.commit_epochs(), store.commit_epochs());
}

TEST(Engine, CrashBetweenCommitAndSyncLosesExactlyTheLastCommit) {
  auto engine = make_memory_engine();
  StableStorage store;
  run_commits(*engine, store, 0, 5);
  const std::uint64_t at_5 = store.fingerprint();

  engine->journal().fail_next_sync();
  run_commits(*engine, store, 5, 1);  // commit 6 applied in memory only
  ASSERT_NE(store.fingerprint(), at_5);
  engine->crash();

  StableStorage recovered;
  const RecoveryReport report = engine->recover_into(recovered);
  EXPECT_EQ(recovered.fingerprint(), at_5);
  EXPECT_EQ(report.records_applied, 5u);
  // The record never reached the durable image: lost, not torn.
  EXPECT_FALSE(report.journal_truncated);
}

TEST(Engine, TornFinalRecordIsTruncatedNeverPartiallyApplied) {
  auto engine = make_memory_engine();
  StableStorage store;
  run_commits(*engine, store, 0, 5);
  const std::uint64_t at_5 = store.fingerprint();

  // A multi-key commit whose record is torn part-way onto the device.
  engine->journal().fail_next_sync();
  engine->journal().tear_on_crash(13);
  store.write("torn_a", std::int64_t{1});
  store.write("torn_b", std::int64_t{2});
  store.write("torn_c", std::int64_t{3});
  engine->record_commit(store, 5);
  store.commit(5);
  engine->crash();

  StableStorage recovered;
  const RecoveryReport report = engine->recover_into(recovered);
  EXPECT_TRUE(report.journal_truncated);
  EXPECT_EQ(recovered.fingerprint(), at_5);
  // Atomicity: no key of the torn batch may appear.
  EXPECT_FALSE(recovered.contains("torn_a"));
  EXPECT_FALSE(recovered.contains("torn_b"));
  EXPECT_FALSE(recovered.contains("torn_c"));
  // Journaling can resume after the truncation point.
  run_commits(*engine, recovered, 6, 2);
  StableStorage again;
  (void)engine->recover_into(again);
  EXPECT_EQ(again.fingerprint(), recovered.fingerprint());
}

TEST(Engine, SnapshotCompactsJournalAndRecoveryUsesIt) {
  DurableOptions options;
  options.snapshot_every_epochs = 4;
  auto engine = make_memory_engine(options);
  StableStorage store;
  run_commits(*engine, store, 0, 10);  // snapshots at epochs 4 and 8
  EXPECT_EQ(engine->stats().snapshots_taken, 2u);
  // Journal holds only the commits since the last image.
  const ScanResult scan = scan_journal(engine->journal());
  EXPECT_EQ(scan.records.size(), 2u);

  engine->crash();
  StableStorage recovered;
  const RecoveryReport report = engine->recover_into(recovered);
  EXPECT_TRUE(report.used_snapshot);
  EXPECT_EQ(report.snapshot_epoch, 8u);
  EXPECT_EQ(report.records_applied, 2u);
  EXPECT_EQ(recovered.fingerprint(), store.fingerprint());
}

TEST(Engine, CrashMidSnapshotKeepsJournalSoNothingIsLost) {
  DurableOptions options;
  options.snapshot_every_epochs = 100;  // manual snapshots only
  auto engine = make_memory_engine(options);
  StableStorage store;
  run_commits(*engine, store, 0, 3);
  ASSERT_TRUE(engine->take_snapshot(store));
  run_commits(*engine, store, 3, 3);

  // The next snapshot attempt dies on the device: its sync fails, and the
  // crash tears the half-written image. The journal must not have been
  // compacted.
  engine->snapshots().fail_next_sync();
  engine->snapshots().tear_on_crash(9);
  EXPECT_FALSE(engine->take_snapshot(store));
  EXPECT_EQ(engine->stats().snapshot_failures, 1u);
  engine->crash();

  StableStorage recovered;
  const RecoveryReport report = engine->recover_into(recovered);
  EXPECT_TRUE(report.used_snapshot);
  EXPECT_EQ(report.snapshot_epoch, 3u);  // the older, intact image
  EXPECT_EQ(recovered.fingerprint(), store.fingerprint());
}

TEST(Engine, BitFlipTruncatesFromTheCorruptRecordOn) {
  auto engine = make_memory_engine();
  StableStorage store;
  run_commits(*engine, store, 0, 8);
  engine->journal().corrupt_bit(1234);
  engine->crash();
  StableStorage recovered;
  const RecoveryReport report = engine->recover_into(recovered);
  EXPECT_TRUE(report.journal_truncated);
  EXPECT_LT(report.records_applied, 8u);
  // The recovered store is a strict commit-prefix: its counter value equals
  // the cycle of the last applied record.
  if (report.records_applied > 0) {
    EXPECT_EQ(std::get<std::int64_t>(recovered.read("counter").value()),
              static_cast<std::int64_t>(report.records_applied - 1));
  }
}

TEST(Engine, GroupCommitModeLosesTailButKeepsPrefix) {
  DurableOptions options;
  options.sync = SyncPolicy::frames(1000);  // watermark never reached
  auto engine = make_memory_engine(options);
  StableStorage store;
  run_commits(*engine, store, 0, 4);
  ASSERT_TRUE(engine->sync_now());  // durability point
  const std::uint64_t at_4 = store.fingerprint();
  run_commits(*engine, store, 4, 3);  // buffered only
  engine->crash();
  StableStorage recovered;
  (void)engine->recover_into(recovered);
  EXPECT_EQ(recovered.fingerprint(), at_4);
}

// --- group commit: sync policies, lag accounting, boundary syncs ---

TEST(Engine, FramesWatermarkSyncsEveryNthCommitAndTracksLag) {
  DurableOptions options;
  options.sync = SyncPolicy::frames(4);
  auto engine = make_memory_engine(options);
  StableStorage store;
  run_commits(*engine, store, 0, 3);
  EXPECT_EQ(engine->stats().syncs, 0u);
  EXPECT_EQ(engine->stats().lag_frames, 3u);
  EXPECT_GT(engine->stats().lag_bytes, 0u);
  EXPECT_EQ(engine->stats().last_durable_epoch, 0u);

  run_commits(*engine, store, 3, 1);  // 4th commit reaches the watermark
  EXPECT_EQ(engine->stats().syncs, 1u);
  EXPECT_EQ(engine->stats().lag_frames, 0u);
  EXPECT_EQ(engine->stats().lag_bytes, 0u);
  EXPECT_EQ(engine->stats().last_durable_epoch, 4u);
  EXPECT_EQ(engine->stats().max_lag_frames, 4u);
}

TEST(Engine, BytesWatermarkSyncsOnAccumulatedBytes) {
  DurableOptions options;
  options.sync = SyncPolicy::bytes(1);  // any appended record crosses it
  auto engine = make_memory_engine(options);
  StableStorage store;
  run_commits(*engine, store, 0, 3);
  EXPECT_EQ(engine->stats().syncs, 3u);  // degenerates to every-commit

  DurableOptions lazy;
  lazy.sync = SyncPolicy::bytes(1u << 20);  // 1 MiB: never in this test
  auto lazy_engine = make_memory_engine(lazy);
  StableStorage lazy_store;
  run_commits(*lazy_engine, lazy_store, 0, 10);
  EXPECT_EQ(lazy_engine->stats().syncs, 0u);
  EXPECT_EQ(lazy_engine->stats().lag_frames, 10u);
}

TEST(Engine, HybridPolicySyncsOnWhicheverWatermarkHitsFirst) {
  DurableOptions options;
  options.sync = SyncPolicy::hybrid(1u << 20, 2);
  auto engine = make_memory_engine(options);
  StableStorage store;
  run_commits(*engine, store, 0, 4);
  // Frames watermark (2) fires twice; the bytes one never does.
  EXPECT_EQ(engine->stats().syncs, 2u);
}

TEST(Engine, CrashUnderWatermarkLosesOnlyUnsyncedSuffixFrames) {
  DurableOptions options;
  options.sync = SyncPolicy::frames(4);
  auto engine = make_memory_engine(options);
  StableStorage store;
  std::vector<std::uint64_t> fingerprint_at{store.fingerprint()};
  for (Cycle c = 0; c < 10; ++c) {
    run_commits(*engine, store, c, 1);
    fingerprint_at.push_back(store.fingerprint());
  }
  // 10 commits, watermark 4: synced at epochs 4 and 8; epochs 9-10 buffered.
  EXPECT_EQ(engine->stats().last_durable_epoch, 8u);
  engine->crash();
  StableStorage recovered;
  const RecoveryReport report = engine->recover_into(recovered);
  // The recovered store is the exact frame-8 commit boundary: a whole-frame
  // suffix was lost, nothing was torn, nothing partially applied.
  EXPECT_EQ(recovered.fingerprint(), fingerprint_at[8]);
  EXPECT_EQ(report.last_epoch, 8u);
  EXPECT_FALSE(report.journal_truncated);
  EXPECT_EQ(recovered.commit_epochs(), 8u);
}

TEST(Engine, CrashUnderWatermarkWithTearNeverYieldsTornRecord) {
  for (std::size_t keep = 1; keep < 40; keep += 3) {
    DurableOptions options;
    options.sync = SyncPolicy::frames(100);
    auto engine = make_memory_engine(options);
    StableStorage store;
    run_commits(*engine, store, 0, 2);
    ASSERT_TRUE(engine->sync_now());
    const std::uint64_t at_2 = store.fingerprint();
    // Three more buffered commits; the crash tears `keep` bytes of them
    // onto the device.
    std::vector<std::uint64_t> after;
    after.push_back(at_2);
    for (Cycle c = 2; c < 5; ++c) {
      run_commits(*engine, store, c, 1);
      after.push_back(store.fingerprint());
    }
    engine->journal().tear_on_crash(keep);
    engine->crash();
    StableStorage recovered;
    const RecoveryReport report = engine->recover_into(recovered);
    // Whatever prefix the tear preserved, the recovered state must be an
    // exact commit boundary between epoch 2 (synced floor) and epoch 5.
    ASSERT_GE(report.last_epoch, 2u);
    ASSERT_LE(report.last_epoch, 5u);
    EXPECT_EQ(recovered.fingerprint(), after[report.last_epoch - 2])
        << "keep=" << keep;
  }
}

TEST(Engine, SyncNowIsANoOpWithoutLagAndCountsForcedSyncs) {
  DurableOptions options;
  options.sync = SyncPolicy::frames(100);
  auto engine = make_memory_engine(options);
  StableStorage store;
  EXPECT_TRUE(engine->sync_now());  // nothing buffered: no device sync
  EXPECT_EQ(engine->stats().syncs, 0u);
  EXPECT_EQ(engine->stats().forced_syncs, 0u);
  run_commits(*engine, store, 0, 2);
  EXPECT_TRUE(engine->sync_now());
  EXPECT_EQ(engine->stats().forced_syncs, 1u);
  EXPECT_EQ(engine->stats().syncs, 1u);
  EXPECT_EQ(engine->stats().last_durable_epoch, 2u);
}

TEST(Engine, FailedSyncKeepsLagUntilALaterSyncLands) {
  DurableOptions options;
  options.sync = SyncPolicy::frames(2);
  auto engine = make_memory_engine(options);
  StableStorage store;
  engine->journal().fail_next_sync();
  run_commits(*engine, store, 0, 2);  // watermark sync fails
  EXPECT_EQ(engine->stats().sync_failures, 1u);
  EXPECT_EQ(engine->stats().lag_frames, 2u);
  EXPECT_EQ(engine->stats().last_durable_epoch, 0u);
  // The very next commit crosses the watermark again (lag is now 3) and the
  // retry sync saves the whole backlog.
  run_commits(*engine, store, 2, 1);
  EXPECT_EQ(engine->stats().lag_frames, 0u);
  EXPECT_EQ(engine->stats().last_durable_epoch, 3u);
}

TEST(Engine, SnapshotBoundaryForcesJournalSync) {
  DurableOptions options;
  options.snapshot_every_epochs = 100;  // manual snapshot below
  options.sync = SyncPolicy::frames(1000);
  auto engine = make_memory_engine(options);
  StableStorage store;
  run_commits(*engine, store, 0, 3);
  EXPECT_EQ(engine->stats().lag_frames, 3u);
  ASSERT_TRUE(engine->take_snapshot(store));
  EXPECT_EQ(engine->stats().forced_syncs, 1u);
  EXPECT_EQ(engine->stats().lag_frames, 0u);
  EXPECT_EQ(engine->stats().last_durable_epoch, 3u);
  // Crash immediately after: the snapshot boundary preserved everything.
  const std::uint64_t at_3 = store.fingerprint();
  engine->crash();
  StableStorage recovered;
  (void)engine->recover_into(recovered);
  EXPECT_EQ(recovered.fingerprint(), at_3);
}

// --- key dictionary lifecycle ---

TEST(Engine, DictionaryReplaysOnRecoveryAndNewCommitsKeepInterning) {
  DurableOptions options;
  options.sync = SyncPolicy::every_commit();
  auto engine = make_memory_engine(options);
  StableStorage store;
  run_commits(*engine, store, 0, 4);
  engine->crash();
  StableStorage recovered;
  (void)engine->recover_into(recovered);
  // Post-recovery commits must encode against the journal's existing
  // dictionary — same keys, no duplicate dictionary records, and the whole
  // journal must still scan cleanly.
  run_commits(*engine, recovered, 4, 3);
  const ScanResult scan = scan_journal(engine->journal());
  EXPECT_FALSE(scan.truncated);
  EXPECT_EQ(scan.records.size(), 7u);
  engine->crash();
  StableStorage again;
  const RecoveryReport report = engine->recover_into(again);
  EXPECT_EQ(again.fingerprint(), recovered.fingerprint());
  EXPECT_EQ(report.records_applied, 7u);
}

TEST(Engine, DictionaryResetsWhenSnapshotCompactsJournal) {
  DurableOptions options;
  options.snapshot_every_epochs = 100;
  auto engine = make_memory_engine(options);
  StableStorage store;
  run_commits(*engine, store, 0, 3);
  ASSERT_TRUE(engine->take_snapshot(store));  // journal truncated to header
  // The same keys recur after compaction: the fresh journal generation must
  // re-emit its dictionary, or scanning would see undefined ids.
  run_commits(*engine, store, 3, 2);
  const ScanResult scan = scan_journal(engine->journal());
  EXPECT_FALSE(scan.truncated);
  EXPECT_EQ(scan.records.size(), 2u);
  EXPECT_FALSE(scan.dict.empty());
  engine->crash();
  StableStorage recovered;
  (void)engine->recover_into(recovered);
  EXPECT_EQ(recovered.fingerprint(), store.fingerprint());
}

// --- snapshot-device GC ---

TEST(Engine, SnapshotGcKeepsLastTwoImagesAndCountsReclaimedBytes) {
  DurableOptions options;
  options.snapshot_every_epochs = 2;
  auto engine = make_memory_engine(options);
  StableStorage store;
  run_commits(*engine, store, 0, 12);  // snapshots at 2,4,6,8,10,12
  EXPECT_EQ(engine->stats().snapshots_taken, 6u);
  const SnapshotScan scan = scan_snapshots(engine->snapshots());
  EXPECT_EQ(scan.images, 2u);  // older images were truncated away
  EXPECT_EQ(scan.last.epoch, 12u);
  EXPECT_GT(engine->stats().snapshot_gc_runs, 0u);
  EXPECT_GT(engine->stats().snapshot_bytes_reclaimed, 0u);
  // Recovery from the GC'd device is still bit-identical.
  engine->crash();
  StableStorage recovered;
  const RecoveryReport report = engine->recover_into(recovered);
  EXPECT_EQ(recovered.fingerprint(), store.fingerprint());
  EXPECT_EQ(report.snapshot_epoch, 12u);
}

TEST(Engine, SnapshotGcKeepsFallbackImageForTornNextSnapshot) {
  DurableOptions options;
  options.snapshot_every_epochs = 100;
  auto engine = make_memory_engine(options);
  StableStorage store;
  run_commits(*engine, store, 0, 2);
  ASSERT_TRUE(engine->take_snapshot(store));  // image @2
  run_commits(*engine, store, 2, 2);
  ASSERT_TRUE(engine->take_snapshot(store));  // image @4
  run_commits(*engine, store, 4, 2);
  ASSERT_TRUE(engine->take_snapshot(store));  // image @6; GC leaves @4,@6
  ASSERT_EQ(scan_snapshots(engine->snapshots()).images, 2u);

  run_commits(*engine, store, 6, 2);
  // The next snapshot dies: sync fails and the crash tears the image. The
  // fallback image @6 plus the uncompacted journal must still recover the
  // full state.
  engine->snapshots().fail_next_sync();
  engine->snapshots().tear_on_crash(9);
  EXPECT_FALSE(engine->take_snapshot(store));
  engine->crash();
  StableStorage recovered;
  const RecoveryReport report = engine->recover_into(recovered);
  EXPECT_EQ(report.snapshot_epoch, 6u);
  EXPECT_EQ(recovered.fingerprint(), store.fingerprint());
}

TEST(Engine, SnapshotGcSyncFailureRollsBackAndKeepsAllImages) {
  DurableOptions options;
  options.snapshot_every_epochs = 100;
  auto engine = make_memory_engine(options);
  StableStorage store;
  run_commits(*engine, store, 0, 2);
  ASSERT_TRUE(engine->take_snapshot(store));
  run_commits(*engine, store, 2, 2);
  ASSERT_TRUE(engine->take_snapshot(store));
  run_commits(*engine, store, 4, 2);
  // The third snapshot triggers a GC whose rewrite sync fails; the image
  // sync right before it succeeds (fail one sync *after* one success). The
  // snapshot itself still lands, the rollback restores every image, and
  // recovery is unaffected.
  engine->snapshots().fail_sync_after(1);
  ASSERT_TRUE(engine->take_snapshot(store));
  EXPECT_EQ(engine->stats().snapshot_gc_runs, 0u);
  EXPECT_EQ(engine->stats().snapshot_bytes_reclaimed, 0u);
  EXPECT_EQ(engine->stats().snapshot_failures, 1u);
  EXPECT_EQ(scan_snapshots(engine->snapshots()).images, 3u);
  engine->crash();
  StableStorage recovered;
  const RecoveryReport report = engine->recover_into(recovered);
  EXPECT_EQ(report.snapshot_epoch, 6u);
  EXPECT_EQ(recovered.fingerprint(), store.fingerprint());
}

// --- file backend ---

TEST(FileBackend, ColdRestartRecoversFromDisk) {
  const std::string dir = ::testing::TempDir();
  const std::string wal = dir + "/arfs_test.wal";
  const std::string snap = dir + "/arfs_test.snap";
  std::remove(wal.c_str());
  std::remove(snap.c_str());

  std::uint64_t before = 0;
  {
    DurableOptions options;
    options.snapshot_every_epochs = 3;
    WalSnapshotEngine engine(std::make_unique<FileBackend>(wal),
                             std::make_unique<FileBackend>(snap), options);
    StableStorage store;
    run_commits(engine, store, 0, 8);
    before = store.fingerprint();
  }  // process "dies"; only the files survive

  {
    WalSnapshotEngine engine(std::make_unique<FileBackend>(wal),
                             std::make_unique<FileBackend>(snap));
    ASSERT_TRUE(engine.has_state());
    StableStorage recovered;
    const RecoveryReport report = engine.recover_into(recovered);
    EXPECT_EQ(recovered.fingerprint(), before);
    EXPECT_TRUE(report.used_snapshot);
  }
  std::remove(wal.c_str());
  std::remove(snap.c_str());
}

TEST(FileBackend, MissingFileWithoutCreateThrows) {
  EXPECT_THROW(FileBackend("/nonexistent-dir-zzz/x.wal", /*create=*/false),
               Error);
}

namespace eintr_hooks {

int fsync_failures = 0;
int pwrite_failures = 0;

int fsync_with_eintr(int fd) {
  if (fsync_failures > 0) {
    --fsync_failures;
    errno = EINTR;
    return -1;
  }
  return ::fsync(fd);
}

long pwrite_with_eintr(int fd, const void* buf, std::size_t n,
                       std::int64_t offset) {
  if (pwrite_failures > 0) {
    --pwrite_failures;
    errno = EINTR;
    return -1;
  }
  return ::pwrite(fd, buf, n, static_cast<off_t>(offset));
}

}  // namespace eintr_hooks

TEST(FileBackend, SyncRetriesEintrFromPwriteAndFsync) {
  const std::string path = ::testing::TempDir() + "/arfs_eintr.wal";
  std::remove(path.c_str());
  FileBackend::fsync_hook = eintr_hooks::fsync_with_eintr;
  FileBackend::pwrite_hook = eintr_hooks::pwrite_with_eintr;

  {
    FileBackend backend(path);
    const std::uint8_t payload[] = {1, 2, 3, 4, 5, 6, 7, 8};
    backend.append(payload, sizeof payload);

    // A signal interrupting the write AND the fsync — repeatedly — is not
    // an I/O failure: sync() must retry through every EINTR and land the
    // bytes durably.
    eintr_hooks::pwrite_failures = 3;
    eintr_hooks::fsync_failures = 3;
    EXPECT_TRUE(backend.sync());
    EXPECT_EQ(eintr_hooks::pwrite_failures, 0);
    EXPECT_EQ(eintr_hooks::fsync_failures, 0);
    EXPECT_EQ(backend.synced_size(), sizeof payload);

    std::uint8_t readback[sizeof payload] = {};
    EXPECT_EQ(backend.read(0, readback, sizeof readback), sizeof payload);
    EXPECT_EQ(std::memcmp(readback, payload, sizeof payload), 0);
  }

  FileBackend::fsync_hook = nullptr;
  FileBackend::pwrite_hook = nullptr;
  // The durable size survives a reopen — the interrupted sync really wrote.
  FileBackend reopened(path, /*create=*/false);
  EXPECT_EQ(reopened.synced_size(), 8u);
  std::remove(path.c_str());
}

// --- processor integration: halt mid-frame, restart, recover ---

TEST(ProcessorDurability, HaltReconcilesPollableStateWithDevices) {
  failstop::Processor proc{ProcessorId{1}};
  proc.enable_durability(make_memory_engine());
  for (Cycle c = 0; c < 6; ++c) {
    proc.stable().write("alt", static_cast<std::int64_t>(100 * c));
    proc.stable().write("mode", std::string{"cruise"});
    proc.commit_frame(c);
  }
  const std::uint64_t before_halt = proc.poll_stable().fingerprint();

  // Mid-frame: writes staged but the frame never commits.
  proc.stable().write("alt", std::int64_t{999});
  proc.fail(6);

  // Peers polling the failed processor see exactly the recovered committed
  // store — bit-identical to the pre-halt committed state.
  EXPECT_EQ(proc.poll_stable().fingerprint(), before_halt);
  ASSERT_TRUE(proc.last_recovery().has_value());
  EXPECT_FALSE(proc.last_recovery()->journal_truncated);
  EXPECT_EQ(proc.last_recovery()->records_applied, 6u);

  proc.repair(7);
  EXPECT_EQ(proc.poll_stable().fingerprint(), before_halt);
  // And the restarted processor keeps journaling from where the disk is.
  proc.stable().write("alt", std::int64_t{700});
  proc.commit_frame(7);
  EXPECT_EQ(std::get<std::int64_t>(proc.poll_stable().read("alt").value()),
            700);
}

TEST(ProcessorDurability, TornRecordAtHaltRollsBackOneFrame) {
  failstop::Processor proc{ProcessorId{2}};
  proc.enable_durability(make_memory_engine());
  std::uint64_t fingerprint_at[8] = {};
  for (Cycle c = 0; c < 5; ++c) {
    proc.stable().write("x", static_cast<std::int64_t>(c));
    proc.commit_frame(c);
    fingerprint_at[c] = proc.poll_stable().fingerprint();
  }
  // Frame 5's record: sync fails, and the halt tears it on the device.
  proc.durability()->journal().fail_next_sync();
  proc.durability()->journal().tear_on_crash(6);
  proc.stable().write("x", std::int64_t{5});
  proc.commit_frame(5);
  proc.fail(6);

  // The device-truth state is frame 4's commit; the torn frame-5 record was
  // truncated, never partially applied.
  EXPECT_EQ(proc.poll_stable().fingerprint(), fingerprint_at[4]);
  ASSERT_TRUE(proc.last_recovery().has_value());
  EXPECT_TRUE(proc.last_recovery()->journal_truncated);
  EXPECT_EQ(std::get<std::int64_t>(proc.poll_stable().read("x").value()), 4);
}

TEST(ProcessorDurability, ColdRestartViaEnableDurability) {
  auto engine = make_memory_engine();
  {
    StableStorage store;
    store.write("persisted", std::int64_t{11});
    engine->record_commit(store, 3);
    store.commit(3);
  }
  failstop::Processor proc{ProcessorId{3}};
  proc.enable_durability(std::move(engine));  // devices already hold state
  EXPECT_EQ(
      std::get<std::int64_t>(proc.poll_stable().read("persisted").value()),
      11);
  EXPECT_TRUE(proc.last_recovery().has_value());
}

// --- determinism across thread counts ---

/// One independent crash-recover job: seeded commits with seeded I/O faults,
/// a crash, and a recovery. Returns a digest of the recovered store and the
/// recovery report.
std::uint64_t crash_recover_job(std::uint64_t seed) {
  Rng rng(seed);
  DurableOptions options;
  options.snapshot_every_epochs = 1 + rng.uniform(0, 5);
  auto engine = make_memory_engine(options);
  StableStorage store;
  const Cycle frames = 8 + static_cast<Cycle>(rng.uniform(0, 8));
  for (Cycle c = 0; c < frames; ++c) {
    store.write("k" + std::to_string(rng.uniform(0, 4)),
                static_cast<std::int64_t>(rng.next_u64() & 0xFFFF));
    if (rng.chance(0.2)) engine->journal().fail_next_sync();
    if (rng.chance(0.15)) {
      engine->journal().tear_on_crash(1 + rng.uniform(0, 20));
    }
    engine->record_commit(store, c);
    store.commit(c);
    engine->after_commit(store);
    if (rng.chance(0.1)) engine->journal().corrupt_bit(rng.next_u64());
  }
  engine->crash();
  StableStorage recovered;
  const RecoveryReport report = engine->recover_into(recovered);
  return recovered.fingerprint() ^ (report.records_applied * 1315423911ULL) ^
         (report.journal_truncated ? 0x9E3779B97F4A7C15ULL : 0);
}

TEST(DurableDeterminism, RecoveryBitIdenticalAcrossThreadCounts) {
  constexpr std::size_t kJobs = 48;
  const auto digests_with = [&](std::size_t threads) {
    sim::BatchOptions options;
    options.threads = threads;
    sim::BatchRunner runner(options);
    return runner.map<std::uint64_t>(kJobs, [](std::size_t i) {
      return crash_recover_job(sim::job_seed(2024, i));
    });
  };
  const auto serial = digests_with(1);
  const auto parallel = digests_with(4);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace arfs::storage::durable
