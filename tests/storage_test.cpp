#include <gtest/gtest.h>

#include "arfs/storage/stable_storage.hpp"
#include "arfs/storage/value.hpp"
#include "arfs/storage/volatile_storage.hpp"

namespace arfs::storage {
namespace {

TEST(Value, TypeNames) {
  EXPECT_EQ(type_name(Value{true}), "bool");
  EXPECT_EQ(type_name(Value{std::int64_t{1}}), "int64");
  EXPECT_EQ(type_name(Value{1.5}), "double");
  EXPECT_EQ(type_name(Value{std::string{"x"}}), "string");
}

TEST(Value, ToString) {
  EXPECT_EQ(to_string(Value{true}), "true");
  EXPECT_EQ(to_string(Value{std::int64_t{42}}), "42");
  EXPECT_EQ(to_string(Value{std::string{"hi"}}), "hi");
}

TEST(Value, GetAsMatchingType) {
  const Expected<std::int64_t> v = get_as<std::int64_t>(Value{std::int64_t{7}});
  ASSERT_TRUE(v);
  EXPECT_EQ(v.value(), 7);
}

TEST(Value, GetAsMismatchReportsError) {
  const Expected<bool> v = get_as<bool>(Value{1.5});
  ASSERT_FALSE(v);
  EXPECT_NE(v.error().find("double"), std::string::npos);
}

TEST(StableStorage, WriteInvisibleUntilCommit) {
  StableStorage s;
  s.write("k", std::int64_t{1});
  EXPECT_FALSE(s.read("k"));  // not yet committed
  s.commit(0);
  ASSERT_TRUE(s.read("k"));
  EXPECT_EQ(std::get<std::int64_t>(s.read("k").value()), 1);
}

TEST(StableStorage, CommitIsAtomicOverAllStagedKeys) {
  StableStorage s;
  s.write("a", std::int64_t{1});
  s.write("b", std::int64_t{2});
  EXPECT_EQ(s.commit(0), 2u);
  EXPECT_TRUE(s.contains("a"));
  EXPECT_TRUE(s.contains("b"));
}

TEST(StableStorage, DropPendingModelsFailStop) {
  StableStorage s;
  s.write("survivor", std::int64_t{1});
  s.commit(0);
  s.write("survivor", std::int64_t{99});  // uncommitted update
  s.write("new_key", std::int64_t{5});    // uncommitted insert
  s.drop_pending();
  s.commit(1);
  // The fail-stop contract: the observable state is exactly the last commit.
  EXPECT_EQ(std::get<std::int64_t>(s.read("survivor").value()), 1);
  EXPECT_FALSE(s.contains("new_key"));
}

TEST(StableStorage, ReadOwnSeesStagedValue) {
  StableStorage s;
  s.write("k", std::int64_t{1});
  s.commit(0);
  s.write("k", std::int64_t{2});
  EXPECT_EQ(std::get<std::int64_t>(s.read("k").value()), 1);
  EXPECT_EQ(std::get<std::int64_t>(s.read_own("k").value()), 2);
}

TEST(StableStorage, ReadAsChecksType) {
  StableStorage s;
  s.write("k", 1.5);
  s.commit(0);
  EXPECT_TRUE(s.read_as<double>("k"));
  EXPECT_FALSE(s.read_as<bool>("k"));
}

TEST(StableStorage, LastCommitCycleTracksUpdates) {
  StableStorage s;
  s.write("k", std::int64_t{1});
  s.commit(3);
  EXPECT_EQ(s.last_commit_cycle("k"), Cycle{3});
  s.write("k", std::int64_t{2});
  s.commit(7);
  EXPECT_EQ(s.last_commit_cycle("k"), Cycle{7});
  EXPECT_FALSE(s.last_commit_cycle("missing").has_value());
}

TEST(StableStorage, KeysSorted) {
  StableStorage s;
  s.write("b", std::int64_t{1});
  s.write("a", std::int64_t{1});
  s.commit(0);
  EXPECT_EQ(s.keys(), (std::vector<std::string>{"a", "b"}));
}

TEST(StableStorage, HistoryRecordsCommits) {
  StableStorage s;
  s.enable_history(true);
  s.write("k", std::int64_t{1});
  s.commit(0);
  s.write("k", std::int64_t{2});
  s.commit(1);
  ASSERT_EQ(s.history().size(), 2u);
  EXPECT_EQ(s.history()[1].cycle, 1u);
  EXPECT_EQ(std::get<std::int64_t>(s.history()[1].value), 2);
}

TEST(StableStorage, CommitEpochsCount) {
  StableStorage s;
  s.commit(0);
  s.commit(1);
  EXPECT_EQ(s.commit_epochs(), 2u);
}

TEST(StableStorage, DropPendingRecordsNothingInHistory) {
  // drop_pending models the fail-stop halt; the dropped writes were never
  // committed, so the post-mortem history must not show them either.
  StableStorage s;
  s.enable_history(true);
  s.write("k", std::int64_t{1});
  s.commit(0);
  s.write("k", std::int64_t{2});
  s.write("ghost", std::int64_t{3});
  s.drop_pending();
  s.commit(1);  // empty commit: bumps the epoch, records nothing
  ASSERT_EQ(s.history().size(), 1u);
  EXPECT_EQ(std::get<std::int64_t>(s.history()[0].value), 1);
  EXPECT_EQ(s.commit_epochs(), 2u);
  // And history resumes cleanly after the failure.
  s.write("k", std::int64_t{4});
  s.commit(2);
  ASSERT_EQ(s.history().size(), 2u);
  EXPECT_EQ(s.history()[1].cycle, 2u);
}

TEST(StableStorage, PendingExposesTheSortedStagedBatch) {
  StableStorage s;
  s.write("b", std::int64_t{2});
  s.write("a", std::int64_t{1});
  s.write("b", std::int64_t{22});  // overwrite stays one entry
  ASSERT_EQ(s.pending().size(), 2u);
  EXPECT_EQ(s.pending()[0].first, "a");
  EXPECT_EQ(std::get<std::int64_t>(s.pending()[1].second), 22);
  s.drop_pending();
  EXPECT_TRUE(s.pending().empty());
}

TEST(StableStorage, RestoreRebuildsCommittedEntriesExactly) {
  StableStorage original;
  original.write("x", std::int64_t{5});
  original.commit(3);
  original.write("y", 2.5);
  original.commit(8);

  StableStorage rebuilt;
  for (const auto& [key, value, committed_at] : original.committed_entries()) {
    rebuilt.restore(key, value, committed_at);
  }
  rebuilt.set_commit_epochs(original.commit_epochs());
  EXPECT_EQ(rebuilt.fingerprint(), original.fingerprint());
  EXPECT_EQ(rebuilt.last_commit_cycle("x"), Cycle{3});
  EXPECT_EQ(rebuilt.last_commit_cycle("y"), Cycle{8});
}

TEST(StableStorage, FingerprintSeesValuesTypesAndCommitCycles) {
  const auto make = [](std::int64_t v, Cycle cycle) {
    StableStorage s;
    s.write("k", v);
    s.commit(cycle);
    return s.fingerprint();
  };
  EXPECT_EQ(make(1, 0), make(1, 0));
  EXPECT_NE(make(1, 0), make(2, 0));  // value
  EXPECT_NE(make(1, 0), make(1, 9));  // commit cycle
  StableStorage as_double;
  as_double.write("k", 1.0);
  as_double.commit(0);
  EXPECT_NE(make(1, 0), as_double.fingerprint());  // type
}

TEST(StableStorage, MissingKeyIsError) {
  const StableStorage s;
  const auto v = s.read("missing");
  ASSERT_FALSE(v);
  EXPECT_NE(v.error().find("missing"), std::string::npos);
}

TEST(VolatileStorage, WriteAndRead) {
  VolatileStorage v;
  v.write("k", std::string{"hello"});
  ASSERT_TRUE(v.read("k"));
  EXPECT_EQ(std::get<std::string>(v.read("k").value()), "hello");
  EXPECT_TRUE(v.read_as<std::string>("k"));
  EXPECT_FALSE(v.read_as<double>("k"));
}

TEST(VolatileStorage, EraseAllModelsFailStop) {
  VolatileStorage v;
  v.write("a", std::int64_t{1});
  v.write("b", std::int64_t{2});
  EXPECT_EQ(v.size(), 2u);
  v.erase_all();
  EXPECT_EQ(v.size(), 0u);
  EXPECT_FALSE(v.contains("a"));
  EXPECT_EQ(v.erase_count(), 1u);
}

}  // namespace
}  // namespace arfs::storage
