// Tests of the computing-equipment-failure extension to the avionics
// example: computer status factors, the Backup Service configuration, and
// detection-latency effects via the activity monitor.
#include <gtest/gtest.h>

#include "arfs/analysis/coverage.hpp"
#include "arfs/avionics/uav_system.hpp"
#include "arfs/props/report.hpp"
#include "arfs/trace/reconfigs.hpp"

namespace arfs::avionics {
namespace {

UavOptions extended_options() {
  UavOptions options;
  options.spec.with_computer_status = true;
  // Fault-plan instants below are expressed as frame * 20'000 us.
  options.system.frame_length = 20'000;
  return options;
}

TEST(UavComputers, ExtendedSpecStillCovers) {
  const core::ReconfigSpec spec = [&] {
    UavSpecOptions o;
    o.with_computer_status = true;
    return make_uav_spec(o);
  }();
  EXPECT_EQ(spec.configs().size(), 4u);
  // 4 configs x (5 power x 2 x 2 computer states) choose() evaluations, plus
  // bound and safety obligations: all must discharge.
  const analysis::CoverageReport coverage = analysis::check_coverage(spec);
  EXPECT_TRUE(coverage.all_discharged());
}

TEST(UavComputers, Computer2FailureCommandsReducedService) {
  UavSystem uav(extended_options());
  uav.run(10);

  sim::FaultPlan plan;
  plan.fail_processor(12 * 20'000, kComputer2, "FCS computer lost");
  uav.system().set_fault_plan(std::move(plan));
  uav.run(20);

  EXPECT_EQ(uav.system().scram().current_config(), kReducedService);
  EXPECT_EQ(uav.system().region_host(kFcs), kComputer1);
  const props::TraceReport report =
      props::check_trace(uav.system().trace(), uav.spec());
  EXPECT_TRUE(report.all_hold()) << props::render(report);
}

TEST(UavComputers, Computer1FailureCommandsBackupService) {
  UavSystem uav(extended_options());
  uav.run(10);

  sim::FaultPlan plan;
  plan.fail_processor(12 * 20'000, kComputer1, "autopilot computer lost");
  uav.system().set_fault_plan(std::move(plan));
  uav.run(20);

  EXPECT_EQ(uav.system().scram().current_config(), kBackupService);
  // Both applications relocated onto computer 2, running degraded specs.
  EXPECT_EQ(uav.system().region_host(kAutopilot), kComputer2);
  EXPECT_EQ(uav.system().region_host(kFcs), kComputer2);
  EXPECT_EQ(uav.autopilot().current_spec(), kApAltHold);
  EXPECT_EQ(uav.fcs().current_spec(), kFcsDirect);
  const props::TraceReport report =
      props::check_trace(uav.system().trace(), uav.spec());
  EXPECT_TRUE(report.all_hold()) << props::render(report);
}

TEST(UavComputers, BothComputersDownHoldsCurrent) {
  UavSystem uav(extended_options());
  uav.run(10);

  sim::FaultPlan plan;
  plan.fail_processor(12 * 20'000, kComputer1);
  plan.fail_processor(12 * 20'000, kComputer2);
  uav.system().set_fault_plan(std::move(plan));
  uav.run(20);

  // No viable placement: choose() holds the current configuration and the
  // trigger is absorbed — no reconfiguration is attempted.
  EXPECT_EQ(uav.system().scram().current_config(), kFullService);
  EXPECT_TRUE(trace::get_reconfigs(uav.system().trace()).empty());
}

TEST(UavComputers, ComputerRepairRestoresFullService) {
  UavSystem uav(extended_options());
  uav.run(10);
  sim::FaultPlan plan;
  plan.fail_processor(12 * 20'000, kComputer1);
  plan.repair_processor(40 * 20'000, kComputer1);
  uav.system().set_fault_plan(std::move(plan));
  uav.run(50);

  EXPECT_EQ(uav.system().scram().current_config(), kFullService);
  EXPECT_EQ(uav.system().region_host(kAutopilot), kComputer1);
  EXPECT_EQ(uav.autopilot().current_spec(), kApFull);
}

TEST(UavComputers, DetectionThresholdDelaysReconfiguration) {
  // With the factor binding, the failure is visible the same frame; the
  // point of this test is the end-to-end latency as a function of the
  // activity monitor threshold when only the monitor is bound. Compare
  // completion cycles across thresholds using the activity path by running
  // with threshold 1 vs 4 — the factor publishes immediately in both, so
  // completion should NOT differ (factors dominate), documenting that
  // detection latency is additive only when it is the sole signal source.
  Cycle completion[2] = {0, 0};
  int i = 0;
  for (const Cycle threshold : {1u, 4u}) {
    UavOptions options = extended_options();
    options.system.detection_threshold = threshold;
    UavSystem uav(options);
    uav.run(10);
    sim::FaultPlan plan;
    plan.fail_processor(12 * 20'000, kComputer2);
    uav.system().set_fault_plan(std::move(plan));
    uav.run(25);
    const auto reconfigs = trace::get_reconfigs(uav.system().trace());
    ASSERT_EQ(reconfigs.size(), 1u);
    completion[i++] = reconfigs[0].end_c;
  }
  EXPECT_EQ(completion[0], completion[1]);
}

TEST(UavComputers, PowerAndComputerFailuresCompose) {
  UavSystem uav(extended_options());
  uav.run(10);
  // One alternator down -> Reduced (on computer 1).
  uav.electrical().fail_alternator(0);
  uav.run(15);
  EXPECT_EQ(uav.system().scram().current_config(), kReducedService);

  // Then computer 1 dies: Backup on computer 2 despite reduced power.
  sim::FaultPlan plan;
  plan.fail_processor(30 * 20'000, kComputer1);
  uav.system().set_fault_plan(std::move(plan));
  uav.run(20);
  EXPECT_EQ(uav.system().scram().current_config(), kBackupService);

  const props::TraceReport report =
      props::check_trace(uav.system().trace(), uav.spec());
  EXPECT_TRUE(report.all_hold()) << props::render(report);
}

TEST(UavComputers, DefaultSpecIsUnchangedWithoutFlag) {
  const core::ReconfigSpec spec = make_uav_spec();
  EXPECT_EQ(spec.configs().size(), 3u);
  EXPECT_FALSE(spec.factors().declared(kComputer1Factor));
}

}  // namespace
}  // namespace arfs::avionics
