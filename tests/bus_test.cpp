#include <gtest/gtest.h>

#include "arfs/bus/bus.hpp"
#include "arfs/bus/interface_unit.hpp"
#include "arfs/bus/schedule.hpp"
#include "arfs/common/check.hpp"

namespace arfs::bus {
namespace {

TdmaSchedule two_slot_schedule() {
  TdmaSchedule s;
  s.add_slot(EndpointId{1}, 100);
  s.add_slot(EndpointId{2}, 150);
  return s;
}

TEST(TdmaSchedule, RoundLengthSumsSlots) {
  const TdmaSchedule s = two_slot_schedule();
  EXPECT_EQ(s.round_length(), 250);
  EXPECT_EQ(s.slot_count(), 2u);
}

TEST(TdmaSchedule, NextTransmitTimeWithinRound) {
  const TdmaSchedule s = two_slot_schedule();
  // Endpoint 1 owns [0, 100); endpoint 2 owns [100, 250).
  EXPECT_EQ(s.next_transmit_time(EndpointId{1}, 0), 0);
  EXPECT_EQ(s.next_transmit_time(EndpointId{2}, 0), 100);
  EXPECT_EQ(s.next_transmit_time(EndpointId{1}, 50), 250);  // missed own slot
  EXPECT_EQ(s.next_transmit_time(EndpointId{2}, 120), 350);
}

TEST(TdmaSchedule, DeliveryAtSlotEnd) {
  const TdmaSchedule s = two_slot_schedule();
  EXPECT_EQ(s.delivery_time(EndpointId{1}, 0), 100);
  EXPECT_EQ(s.delivery_time(EndpointId{2}, 100), 250);
}

TEST(TdmaSchedule, WorstCaseLatencyIsRoundPlusSlot) {
  const TdmaSchedule s = two_slot_schedule();
  EXPECT_EQ(s.worst_case_latency(EndpointId{1}), 350);
  EXPECT_EQ(s.worst_case_latency(EndpointId{2}), 400);
}

TEST(TdmaSchedule, UnknownEndpointRejected) {
  const TdmaSchedule s = two_slot_schedule();
  EXPECT_FALSE(s.has_endpoint(EndpointId{9}));
  EXPECT_THROW((void)s.next_transmit_time(EndpointId{9}, 0),
               ContractViolation);
}

TEST(Bus, BroadcastExcludesSender) {
  Bus bus(two_slot_schedule());
  bus.register_endpoint(EndpointId{1});
  bus.register_endpoint(EndpointId{2});

  bus.post(EndpointId{1}, "topic", std::int64_t{7}, 0);
  bus.deliver_until(100);

  EXPECT_TRUE(bus.collect(EndpointId{1}).empty());
  const auto msgs = bus.collect(EndpointId{2});
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].topic, "topic");
  EXPECT_EQ(msgs[0].delivered_at, 100);
}

TEST(Bus, DeliveryWaitsForSlotEnd) {
  Bus bus(two_slot_schedule());
  bus.register_endpoint(EndpointId{2});
  bus.post(EndpointId{1}, "t", std::int64_t{1}, 0);
  bus.deliver_until(99);
  EXPECT_TRUE(bus.collect(EndpointId{2}).empty());
  bus.deliver_until(100);
  EXPECT_EQ(bus.collect(EndpointId{2}).size(), 1u);
}

TEST(Bus, LatencyNeverExceedsWorstCase) {
  Bus bus(two_slot_schedule());
  bus.register_endpoint(EndpointId{1});
  bus.register_endpoint(EndpointId{2});
  for (SimTime t = 0; t < 2000; t += 37) {
    bus.post(EndpointId{1}, "t", std::int64_t{t}, t);
    bus.post(EndpointId{2}, "t", std::int64_t{t}, t);
  }
  bus.deliver_until(10'000);
  EXPECT_LE(bus.stats().worst_latency,
            std::max(bus.schedule().worst_case_latency(EndpointId{1}),
                     bus.schedule().worst_case_latency(EndpointId{2})));
}

TEST(Bus, MessagesArriveInDeliveryOrder) {
  Bus bus(two_slot_schedule());
  bus.register_endpoint(EndpointId{2});
  bus.post(EndpointId{1}, "t", std::int64_t{1}, 0);    // delivered 100
  bus.post(EndpointId{1}, "t", std::int64_t{2}, 150);  // delivered 350
  bus.deliver_until(1000);
  const auto msgs = bus.collect(EndpointId{2});
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_LT(msgs[0].delivered_at, msgs[1].delivered_at);
}

TEST(Bus, PeekLatestFindsNewestOnTopic) {
  Bus bus(two_slot_schedule());
  bus.register_endpoint(EndpointId{2});
  bus.post(EndpointId{1}, "alpha", std::int64_t{1}, 0);
  bus.post(EndpointId{1}, "alpha", std::int64_t{2}, 300);
  bus.deliver_until(1000);
  const Message* m = bus.peek_latest(EndpointId{2}, "alpha");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(std::get<std::int64_t>(m->payload), 2);
  EXPECT_EQ(bus.peek_latest(EndpointId{2}, "other"), nullptr);
}

TEST(Bus, StatsCountPostsAndDeliveries) {
  Bus bus(two_slot_schedule());
  bus.register_endpoint(EndpointId{1});
  bus.register_endpoint(EndpointId{2});
  bus.post(EndpointId{1}, "t", std::int64_t{1}, 0);
  bus.deliver_until(1000);
  EXPECT_EQ(bus.stats().posted, 1u);
  EXPECT_EQ(bus.stats().delivered, 1u);  // one receiver (sender excluded)
}

TEST(SensorUnit, PostsSamplesUntilFailed) {
  Bus bus(two_slot_schedule());
  bus.register_endpoint(EndpointId{2});
  SensorUnit sensor(EndpointId{1}, "altitude",
                    [](SimTime t) { return storage::Value{double(t)}; });
  sensor.poll(bus, 0);
  sensor.fail();
  sensor.poll(bus, 300);
  bus.deliver_until(10'000);
  // Only the pre-failure sample arrives: failure is visible as silence.
  EXPECT_EQ(bus.collect(EndpointId{2}).size(), 1u);
}

TEST(ActuatorUnit, AppliesCommandsOnItsTopic) {
  Bus bus(two_slot_schedule());
  bus.register_endpoint(EndpointId{2});
  double applied = 0.0;
  ActuatorUnit actuator(EndpointId{2}, "elevator",
                        [&](const storage::Value& v, SimTime) {
                          applied = std::get<double>(v);
                        });
  bus.post(EndpointId{1}, "elevator", 0.5, 0);
  bus.post(EndpointId{1}, "other", 0.9, 120);
  bus.deliver_until(10'000);
  actuator.poll(bus, 10'000);
  EXPECT_DOUBLE_EQ(applied, 0.5);
}

}  // namespace
}  // namespace arfs::bus
