#include <gtest/gtest.h>

#include <sstream>

#include "arfs/common/check.hpp"
#include "arfs/trace/export.hpp"
#include "arfs/trace/reconfigs.hpp"
#include "arfs/trace/recorder.hpp"
#include "arfs/trace/state.hpp"

namespace arfs::trace {
namespace {

SysState state(Cycle cycle, ConfigId svclvl,
               std::initializer_list<std::pair<AppId, ReconfState>> apps) {
  SysState s;
  s.cycle = cycle;
  s.time = static_cast<SimTime>(cycle) * 1000;
  s.svclvl = svclvl;
  for (const auto& [app, st] : apps) {
    AppSnapshot snap;
    snap.reconf_st = st;
    snap.spec = SpecId{1};
    s.apps[app] = snap;
  }
  return s;
}

TEST(SysStateHelpers, AllNormalAndAnyInterrupted) {
  const SysState normal =
      state(0, ConfigId{1}, {{AppId{1}, ReconfState::kNormal},
                             {AppId{2}, ReconfState::kNormal}});
  EXPECT_TRUE(all_normal(normal));
  EXPECT_FALSE(any_interrupted(normal));

  const SysState mixed =
      state(0, ConfigId{1}, {{AppId{1}, ReconfState::kInterrupted},
                             {AppId{2}, ReconfState::kNormal}});
  EXPECT_FALSE(all_normal(mixed));
  EXPECT_TRUE(any_interrupted(mixed));
}

TEST(SysStateHelpers, StateNamesDistinct) {
  EXPECT_EQ(to_string(ReconfState::kNormal), "normal");
  EXPECT_EQ(to_string(ReconfState::kAwaitingStart), "awaiting-start");
  EXPECT_NE(to_string(ReconfState::kHalted), to_string(ReconfState::kPrepared));
}

TEST(SysTrace, AppendsContiguously) {
  SysTrace trace(1000);
  trace.append(state(0, ConfigId{1}, {{AppId{1}, ReconfState::kNormal}}));
  trace.append(state(1, ConfigId{1}, {{AppId{1}, ReconfState::kNormal}}));
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.at(1).cycle, 1u);
  EXPECT_THROW(
      trace.append(state(5, ConfigId{1}, {{AppId{1}, ReconfState::kNormal}})),
      ContractViolation);
  EXPECT_THROW((void)trace.at(9), ContractViolation);
}

SysTrace trace_with_one_reconfig() {
  SysTrace trace(1000);
  const AppId a{1};
  trace.append(state(0, ConfigId{1}, {{a, ReconfState::kNormal}}));
  trace.append(state(1, ConfigId{1}, {{a, ReconfState::kInterrupted}}));
  trace.append(state(2, ConfigId{1}, {{a, ReconfState::kHalted}}));
  trace.append(state(3, ConfigId{1}, {{a, ReconfState::kPrepared}}));
  trace.append(state(4, ConfigId{2}, {{a, ReconfState::kNormal}}));
  trace.append(state(5, ConfigId{2}, {{a, ReconfState::kNormal}}));
  return trace;
}

TEST(GetReconfigs, ExtractsCompletedInterval) {
  const SysTrace trace = trace_with_one_reconfig();
  const auto reconfigs = get_reconfigs(trace);
  ASSERT_EQ(reconfigs.size(), 1u);
  EXPECT_EQ(reconfigs[0].start_c, 1u);
  EXPECT_EQ(reconfigs[0].end_c, 4u);
  EXPECT_EQ(reconfigs[0].from, ConfigId{1});
  EXPECT_EQ(reconfigs[0].to, ConfigId{2});
  EXPECT_EQ(duration_frames(reconfigs[0]), 4u);
  EXPECT_FALSE(incomplete_reconfig(trace).has_value());
}

TEST(GetReconfigs, EmptyTraceYieldsNothing) {
  const SysTrace trace(1000);
  EXPECT_TRUE(get_reconfigs(trace).empty());
  EXPECT_FALSE(incomplete_reconfig(trace).has_value());
}

TEST(GetReconfigs, DetectsIncompleteAtEnd) {
  SysTrace trace(1000);
  const AppId a{1};
  trace.append(state(0, ConfigId{1}, {{a, ReconfState::kNormal}}));
  trace.append(state(1, ConfigId{1}, {{a, ReconfState::kInterrupted}}));
  trace.append(state(2, ConfigId{1}, {{a, ReconfState::kHalted}}));
  EXPECT_TRUE(get_reconfigs(trace).empty());
  EXPECT_EQ(incomplete_reconfig(trace), Cycle{1});
}

TEST(GetReconfigs, BackToBackIntervalsSeparated) {
  SysTrace trace(1000);
  const AppId a{1};
  trace.append(state(0, ConfigId{1}, {{a, ReconfState::kNormal}}));
  trace.append(state(1, ConfigId{1}, {{a, ReconfState::kInterrupted}}));
  trace.append(state(2, ConfigId{2}, {{a, ReconfState::kNormal}}));
  trace.append(state(3, ConfigId{2}, {{a, ReconfState::kInterrupted}}));
  trace.append(state(4, ConfigId{3}, {{a, ReconfState::kNormal}}));
  const auto reconfigs = get_reconfigs(trace);
  ASSERT_EQ(reconfigs.size(), 2u);
  EXPECT_EQ(reconfigs[0].to, ConfigId{2});
  EXPECT_EQ(reconfigs[1].from, ConfigId{2});
  EXPECT_EQ(reconfigs[1].to, ConfigId{3});
}

TEST(GetReconfigs, ReconfigStartingAtCycleZero) {
  SysTrace trace(1000);
  const AppId a{1};
  trace.append(state(0, ConfigId{1}, {{a, ReconfState::kInterrupted}}));
  trace.append(state(1, ConfigId{2}, {{a, ReconfState::kNormal}}));
  const auto reconfigs = get_reconfigs(trace);
  ASSERT_EQ(reconfigs.size(), 1u);
  EXPECT_EQ(reconfigs[0].start_c, 0u);
}

TEST(Export, CsvContainsHeaderAndRows) {
  const SysTrace trace = trace_with_one_reconfig();
  std::ostringstream os;
  write_csv(trace, os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("cycle,time_us,svclvl"), std::string::npos);
  EXPECT_NE(csv.find("interrupted"), std::string::npos);
  // 1 header + 6 rows (one app, six cycles).
  std::size_t lines = 0;
  for (const char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 7u);
}

TEST(Export, JsonContainsFramesAndReconfigs) {
  const SysTrace trace = trace_with_one_reconfig();
  std::ostringstream os;
  write_json(trace, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"frame_length_us\": 1000"), std::string::npos);
  EXPECT_NE(json.find("\"st\": \"interrupted\""), std::string::npos);
  EXPECT_NE(json.find("\"reconfigurations\""), std::string::npos);
  EXPECT_NE(json.find("\"start_c\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"frames\": 4"), std::string::npos);
}

TEST(Export, JsonRendersOffAppAsNull) {
  SysTrace trace(1000);
  SysState s = state(0, ConfigId{1}, {{AppId{1}, ReconfState::kNormal}});
  s.apps[AppId{1}].spec = std::nullopt;
  trace.append(std::move(s));
  std::ostringstream os;
  write_json(trace, os);
  EXPECT_NE(os.str().find("\"spec\": null"), std::string::npos);
}

TEST(Export, PhaseTableShowsEveryFrame) {
  const SysTrace trace = trace_with_one_reconfig();
  const auto reconfigs = get_reconfigs(trace);
  const std::string table = render_phase_table(trace, reconfigs[0]);
  EXPECT_NE(table.find("config 1 -> 2"), std::string::npos);
  EXPECT_NE(table.find("4 frames"), std::string::npos);
  EXPECT_NE(table.find("a1:interrupted"), std::string::npos);
  EXPECT_NE(table.find("a1:halted"), std::string::npos);
  EXPECT_NE(table.find("a1:prepared"), std::string::npos);
  EXPECT_NE(table.find("a1:normal"), std::string::npos);
}

}  // namespace
}  // namespace arfs::trace
