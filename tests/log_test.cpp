#include <gtest/gtest.h>

#include "arfs/common/log.hpp"

namespace arfs {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(Logger::instance().level()) {}
  ~LogLevelGuard() { Logger::instance().set_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Logger, DefaultLevelIsOff) {
  const LogLevelGuard guard;
  Logger::instance().set_level(LogLevel::kOff);
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kError));
}

TEST(Logger, LevelsAreOrdered) {
  const LogLevelGuard guard;
  Logger& logger = Logger::instance();
  logger.set_level(LogLevel::kWarn);
  EXPECT_FALSE(logger.enabled(LogLevel::kTrace));
  EXPECT_FALSE(logger.enabled(LogLevel::kDebug));
  EXPECT_FALSE(logger.enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(LogLevel::kWarn));
  EXPECT_TRUE(logger.enabled(LogLevel::kError));
}

TEST(Logger, EmitHelpersRespectLevel) {
  const LogLevelGuard guard;
  Logger::instance().set_level(LogLevel::kError);
  // These must not crash and must be cheap no-ops below the level; the
  // formatting lambda path is exercised by the enabled branch below.
  log_trace("test", "invisible ", 1);
  log_info("test", "invisible ", 2);
  testing::internal::CaptureStderr();
  log_error("test", "visible ", 42);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("visible 42"), std::string::npos);
  EXPECT_NE(err.find("ERROR"), std::string::npos);
  EXPECT_NE(err.find("test"), std::string::npos);
}

TEST(Logger, SingletonIdentity) {
  EXPECT_EQ(&Logger::instance(), &Logger::instance());
}

}  // namespace
}  // namespace arfs
