// Integration tests of the assembled System: full SFTA execution over the
// frame pipeline, fail-stop semantics end to end, region relocation,
// processor-status factors, fault injection, and both mid-reconfiguration
// policies.
#include <gtest/gtest.h>

#include <memory>

#include "arfs/core/system.hpp"
#include "arfs/props/report.hpp"
#include "arfs/support/simple_app.hpp"
#include "arfs/support/synthetic.hpp"
#include "arfs/trace/reconfigs.hpp"

namespace arfs::core {
namespace {

using support::ChainSpecParams;
using support::kChainSeverityFactor;
using support::make_chain_spec;
using support::SimpleApp;
using support::SimpleAppParams;
using support::synthetic_app;
using support::synthetic_config;
using support::synthetic_processor;

std::unique_ptr<SimpleApp> simple(std::size_t index,
                                  SimpleAppParams params = {}) {
  return std::make_unique<SimpleApp>(synthetic_app(index),
                                     "app-" + std::to_string(index), params);
}

class SystemBasics : public ::testing::Test {
 protected:
  SystemBasics() : spec_(make_chain_spec(chain_params())) {}

  static ChainSpecParams chain_params() {
    ChainSpecParams p;
    p.configs = 3;
    p.apps = 2;
    p.transition_bound = 10;
    return p;
  }

  ReconfigSpec spec_;
};

TEST_F(SystemBasics, NormalOperationProducesWorkEveryFrame) {
  System system(spec_);
  system.add_app(simple(0));
  system.add_app(simple(1));
  system.run(10);

  const auto& app = static_cast<SimpleApp&>(system.app(synthetic_app(0)));
  EXPECT_EQ(app.work_count(), 10u);
  EXPECT_EQ(system.stats().frames_run, 10u);
  EXPECT_EQ(system.trace().size(), 10u);
  EXPECT_TRUE(trace::get_reconfigs(system.trace()).empty());
}

TEST_F(SystemBasics, WorkCountPersistsToStableStorage) {
  System system(spec_);
  system.add_app(simple(0));
  system.add_app(simple(1));
  system.run(5);

  const auto& proc = system.processors().processor(
      system.region_host(synthetic_app(0)));
  const auto count = proc.poll_stable().read_as<std::int64_t>("a1/work_count");
  ASSERT_TRUE(count);
  EXPECT_EQ(count.value(), 5);
}

TEST_F(SystemBasics, EnvironmentTriggerRunsFourFrameSfta) {
  System system(spec_);
  system.add_app(simple(0));
  system.add_app(simple(1));

  system.run(5);
  system.set_factor(kChainSeverityFactor, 1);
  system.run(10);

  const auto reconfigs = trace::get_reconfigs(system.trace());
  ASSERT_EQ(reconfigs.size(), 1u);
  EXPECT_EQ(reconfigs[0].start_c, 5u);
  EXPECT_EQ(reconfigs[0].end_c, 8u);  // Table 1: four frames inclusive
  EXPECT_EQ(trace::duration_frames(reconfigs[0]), 4u);
  EXPECT_EQ(reconfigs[0].from, synthetic_config(0));
  EXPECT_EQ(reconfigs[0].to, synthetic_config(1));
  EXPECT_EQ(system.scram().current_config(), synthetic_config(1));
}

TEST_F(SystemBasics, ServiceIsRestrictedOnlyDuringReconfiguration) {
  System system(spec_);
  system.add_app(simple(0));
  system.add_app(simple(1));
  system.run(5);
  system.set_factor(kChainSeverityFactor, 1);
  system.run(15);

  // 20 frames total; 4 of them belonged to the SFTA (frames 5..8).
  const auto& app = static_cast<SimpleApp&>(system.app(synthetic_app(0)));
  EXPECT_EQ(app.work_count(), 16u);
}

TEST_F(SystemBasics, MultiFrameHaltStretchesReconfigWithinBound) {
  System system(spec_);
  SimpleAppParams slow;
  slow.halt_frames = 3;
  system.add_app(simple(0, slow));
  system.add_app(simple(1));
  system.run(2);
  system.set_factor(kChainSeverityFactor, 1);
  system.run(12);

  const auto reconfigs = trace::get_reconfigs(system.trace());
  ASSERT_EQ(reconfigs.size(), 1u);
  // 1 signal frame + 3 halt + 1 prepare + 1 initialize = 6 frames.
  EXPECT_EQ(trace::duration_frames(reconfigs[0]), 6u);
  const props::TraceReport report = props::check_trace(system.trace(), spec_);
  EXPECT_TRUE(report.all_hold()) << props::render(report);
}

TEST_F(SystemBasics, SoftwareFaultInjectionTriggersReconfig) {
  // A software fault signal reaches the SCRAM, but choose() is driven by the
  // environment, which has not changed: the trigger is absorbed.
  System system(spec_);
  system.add_app(simple(0));
  system.add_app(simple(1));
  sim::FaultPlan plan;
  plan.software_fault(3 * 10'000, synthetic_app(0));
  system.set_fault_plan(std::move(plan));
  system.run(10);

  EXPECT_EQ(system.scram().stats().triggers_received, 1u);
  EXPECT_EQ(system.scram().stats().triggers_absorbed, 1u);
  EXPECT_TRUE(trace::get_reconfigs(system.trace()).empty());
  EXPECT_EQ(system.health().fault_count(), 1u);
}

TEST_F(SystemBasics, TimingOverrunRaisesHealthEvent) {
  System system(spec_);
  system.add_app(simple(0));
  system.add_app(simple(1));
  sim::FaultPlan plan;
  plan.timing_overrun(2 * 10'000, synthetic_app(1));
  system.set_fault_plan(std::move(plan));
  system.run(5);

  EXPECT_EQ(system.health().overrun_count(), 1u);
  EXPECT_EQ(system.scram().stats().triggers_received, 1u);
}

TEST_F(SystemBasics, ChainedTriggersProduceBackToBackReconfigs) {
  System system(spec_);
  system.add_app(simple(0));
  system.add_app(simple(1));
  system.run(2);
  system.set_factor(kChainSeverityFactor, 1);
  system.run(2);  // mid-reconfiguration...
  system.set_factor(kChainSeverityFactor, 2);  // ...severity worsens
  system.run(16);

  const auto reconfigs = trace::get_reconfigs(system.trace());
  ASSERT_EQ(reconfigs.size(), 2u);
  EXPECT_EQ(reconfigs[0].to, synthetic_config(1));
  EXPECT_EQ(reconfigs[1].to, synthetic_config(2));
  // Buffered policy: the second starts right after the first ends.
  EXPECT_EQ(reconfigs[1].start_c, reconfigs[0].end_c + 1);
  const props::TraceReport report = props::check_trace(system.trace(), spec_);
  EXPECT_TRUE(report.all_hold()) << props::render(report);
}

TEST_F(SystemBasics, EveryDeclaredAppMustBeAdded) {
  System system(spec_);
  system.add_app(simple(0));
  EXPECT_THROW(system.run(1), ContractViolation);
}

TEST_F(SystemBasics, UnknownAppRejected) {
  System system(spec_);
  EXPECT_THROW(system.add_app(simple(7)), ContractViolation);
}

// --- fail-stop integration -------------------------------------------------

/// Spec where a processor-status factor drives reconfiguration: config 0
/// runs both apps on separate processors; config 1 (safe) consolidates them
/// on processor 2 after processor 1 fails.
ReconfigSpec make_failover_spec() {
  ReconfigSpec spec;
  for (std::size_t a = 0; a < 2; ++a) {
    AppDecl decl;
    decl.id = synthetic_app(a);
    decl.name = "app-" + std::to_string(a);
    decl.specs = {FunctionalSpec{support::synthetic_spec(a, 0), "only", {},
                                 100, 400}};
    spec.declare_app(std::move(decl));
  }
  const FactorId proc1_status{50};
  spec.declare_factor(env::FactorSpec{proc1_status, "proc1-status", 0, 1, 0});

  Configuration split;
  split.id = synthetic_config(0);
  split.name = "split";
  split.assignment = {{synthetic_app(0), support::synthetic_spec(0, 0)},
                      {synthetic_app(1), support::synthetic_spec(1, 0)}};
  split.placement = {{synthetic_app(0), synthetic_processor(0)},
                     {synthetic_app(1), synthetic_processor(1)}};
  spec.declare_config(std::move(split));

  Configuration consolidated;
  consolidated.id = synthetic_config(1);
  consolidated.name = "consolidated";
  consolidated.assignment = {{synthetic_app(0), support::synthetic_spec(0, 0)},
                             {synthetic_app(1), support::synthetic_spec(1, 0)}};
  consolidated.placement = {{synthetic_app(0), synthetic_processor(1)},
                            {synthetic_app(1), synthetic_processor(1)}};
  consolidated.safe = true;
  spec.declare_config(std::move(consolidated));

  spec.set_transition_bound(synthetic_config(0), synthetic_config(1), 10);
  spec.set_transition_bound(synthetic_config(1), synthetic_config(0), 10);
  spec.set_choose([proc1_status](ConfigId, const env::EnvState& e) {
    return e.at(proc1_status) == 0 ? synthetic_config(0)
                                   : synthetic_config(1);
  });
  spec.set_initial_config(synthetic_config(0));
  spec.validate();
  return spec;
}

TEST(SystemFailover, ProcessorFailureMovesAppToSurvivor) {
  const ReconfigSpec spec = make_failover_spec();
  System system(spec);
  system.add_app(simple(0));
  system.add_app(simple(1));
  system.bind_processor_factor(synthetic_processor(0), FactorId{50});

  sim::FaultPlan plan;
  plan.fail_processor(5 * 10'000, synthetic_processor(0));
  system.set_fault_plan(std::move(plan));
  // Failure at frame 5; the SFTA runs frames 5..8. Stop right at completion,
  // before any post-reconfiguration AFTA overwrites the relocated state.
  system.run(9);

  // The reconfiguration moved app 0 onto processor 2.
  EXPECT_EQ(system.scram().current_config(), synthetic_config(1));
  EXPECT_EQ(system.region_host(synthetic_app(0)), synthetic_processor(1));
  EXPECT_GE(system.stats().region_relocations, 1u);

  // Fail-stop semantics propagated: app 0 lost its volatile work counter.
  const auto& app0 = static_cast<SimpleApp&>(system.app(synthetic_app(0)));
  EXPECT_EQ(app0.volatile_losses(), 1u);
  EXPECT_EQ(app0.work_count(), 0u);

  // But its committed stable state survived the move: the pre-failure work
  // count is readable in the relocated region on processor 2.
  const auto& survivor =
      system.processors().processor(synthetic_processor(1));
  const auto count =
      survivor.poll_stable().read_as<std::int64_t>("a1/work_count");
  ASSERT_TRUE(count);
  EXPECT_EQ(count.value(), 5);  // five frames of work before the failure

  system.run(11);  // resumed service overwrites the counter going forward
  const auto resumed =
      survivor.poll_stable().read_as<std::int64_t>("a1/work_count");
  ASSERT_TRUE(resumed);
  EXPECT_EQ(resumed.value(), static_cast<std::int64_t>(app0.work_count()));

  const props::TraceReport report = props::check_trace(system.trace(), spec);
  EXPECT_TRUE(report.all_hold()) << props::render(report);
}

TEST(SystemFailover, AppResumesWorkOnNewHost) {
  const ReconfigSpec spec = make_failover_spec();
  System system(spec);
  system.add_app(simple(0));
  system.add_app(simple(1));
  system.bind_processor_factor(synthetic_processor(0), FactorId{50});

  sim::FaultPlan plan;
  plan.fail_processor(5 * 10'000, synthetic_processor(0));
  system.set_fault_plan(std::move(plan));
  system.run(30);

  const auto& survivor =
      system.processors().processor(synthetic_processor(1));
  const auto count =
      survivor.poll_stable().read_as<std::int64_t>("a1/work_count");
  ASSERT_TRUE(count);
  EXPECT_GT(count.value(), 5);  // fresh AFTAs accumulated on the new host
}

TEST(SystemFailover, RepairTriggersRecoveryReconfig) {
  const ReconfigSpec spec = make_failover_spec();
  System system(spec);
  system.add_app(simple(0));
  system.add_app(simple(1));
  system.bind_processor_factor(synthetic_processor(0), FactorId{50});

  sim::FaultPlan plan;
  plan.fail_processor(5 * 10'000, synthetic_processor(0));
  plan.repair_processor(20 * 10'000, synthetic_processor(0));
  system.set_fault_plan(std::move(plan));
  system.run(40);

  EXPECT_EQ(system.scram().current_config(), synthetic_config(0));
  EXPECT_EQ(system.region_host(synthetic_app(0)), synthetic_processor(0));
  const auto reconfigs = trace::get_reconfigs(system.trace());
  EXPECT_EQ(reconfigs.size(), 2u);
  const props::TraceReport report = props::check_trace(system.trace(), spec);
  EXPECT_TRUE(report.all_hold()) << props::render(report);
}

TEST(SystemFailover, DetectionLatencyDelaysReconfig) {
  const ReconfigSpec spec = make_failover_spec();
  SystemOptions options;
  options.detection_threshold = 3;
  System system(spec, options);
  system.add_app(simple(0));
  system.add_app(simple(1));
  // No processor factor binding: only the activity monitor sees the failure,
  // so detection happens after three silent frames. The SCRAM's choose()
  // still needs the factor, so bind it too — but the activity signal arrives
  // first only if the factor is bound. Here we bind it; the point of the
  // threshold is exercised through the scram trigger count below.
  system.bind_processor_factor(synthetic_processor(0), FactorId{50});

  sim::FaultPlan plan;
  plan.fail_processor(5 * 10'000, synthetic_processor(0));
  system.set_fault_plan(std::move(plan));
  system.run(20);

  // Factor change triggers at frame 5; activity monitor adds its signal at
  // frame 7 (threshold 3), which lands mid-reconfiguration and is buffered,
  // then absorbed.
  EXPECT_GE(system.scram().stats().triggers_received, 2u);
  EXPECT_EQ(system.scram().current_config(), synthetic_config(1));
}

}  // namespace
}  // namespace arfs::core
