// The fleet engine's determinism contract, end to end.
//
// Contracts under test:
//  * sim::auto_stride and ShardPlan — the explicit sharding info: balanced
//    contiguous chunk ranges, exact inverses, clamped auto-tune;
//  * FleetRunner::reduce / map are bit-identical to the serial chunk loop
//    at every (threads, shards) point — sharding moves accumulator
//    locality, never results;
//  * analysis::estimate_dependability on the fleet path equals the
//    BatchRunner oracle exactly (all six fields and the digest) at every
//    (threads, shards) point;
//  * analysis::check_coverage / certify on the fleet path reproduce the
//    serial reports;
//  * support::run_fleet_missions — chain and §7 avionics missions — has one
//    digest across {threads} × {shards} × {pooled, construct-per-sample},
//    equal to the 1-thread/1-shard/no-pool serial oracle;
//  * PooledMission's checkpoint ladder rewinds exactly: reset_to(f) is
//    bit-identical to a fresh build run f frames.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "arfs/analysis/certify.hpp"
#include "arfs/analysis/coverage.hpp"
#include "arfs/analysis/dependability.hpp"
#include "arfs/avionics/uav_system.hpp"
#include "arfs/core/system.hpp"
#include "arfs/sim/fleet.hpp"
#include "arfs/support/fleet.hpp"
#include "arfs/support/mission.hpp"
#include "arfs/support/simple_app.hpp"
#include "arfs/support/sweep.hpp"
#include "arfs/support/synthetic.hpp"

namespace arfs::support {
namespace {

TEST(AutoStride, RoundedIntegerSquareRoot) {
  EXPECT_EQ(sim::auto_stride(0), 1u);
  EXPECT_EQ(sim::auto_stride(1), 1u);
  EXPECT_EQ(sim::auto_stride(2), 1u);
  EXPECT_EQ(sim::auto_stride(3), 2u);  // 3-1=2 > 4-3=1 → round up
  EXPECT_EQ(sim::auto_stride(4), 2u);
  EXPECT_EQ(sim::auto_stride(20), 4u);   // 20-16=4 <= 25-20=5
  EXPECT_EQ(sim::auto_stride(24), 5u);   // 24-16=8 > 25-24=1
  EXPECT_EQ(sim::auto_stride(100), 10u);
  EXPECT_EQ(sim::auto_stride(10'000), 100u);
}

TEST(ShardPlan, PartitionsChunksContiguouslyAndBalanced) {
  // 10'000 samples at chunk 1024 → 10 chunks; explicit 3 shards.
  const sim::ShardPlan p = sim::ShardPlan::make(10'000, 1024, 3);
  EXPECT_EQ(p.samples(), 10'000u);
  EXPECT_EQ(p.chunk(), 1024u);
  EXPECT_EQ(p.chunks(), 10u);
  EXPECT_EQ(p.shards(), 3u);

  // Shard ranges tile [0, chunks) in order with sizes differing by <= 1,
  // and shard_of_chunk is the exact inverse.
  std::size_t next = 0;
  std::size_t min_size = p.chunks(), max_size = 0;
  for (std::size_t s = 0; s < p.shards(); ++s) {
    const sim::ShardPlan::Range r = p.chunks_of_shard(s);
    EXPECT_EQ(r.first, next);
    EXPECT_GT(r.size(), 0u);
    min_size = std::min(min_size, r.size());
    max_size = std::max(max_size, r.size());
    for (std::size_t c = r.first; c < r.end; ++c) {
      EXPECT_EQ(p.shard_of_chunk(c), s);
    }
    next = r.end;
  }
  EXPECT_EQ(next, p.chunks());
  EXPECT_LE(max_size - min_size, 1u);

  // Sample ranges: full chunks except the last (10'000 = 9·1024 + 784).
  EXPECT_EQ(p.samples_of_chunk(0).first, 0u);
  EXPECT_EQ(p.samples_of_chunk(0).size(), 1024u);
  EXPECT_EQ(p.samples_of_chunk(9).end, 10'000u);
  EXPECT_EQ(p.samples_of_chunk(9).size(), 10'000u - 9u * 1024u);
}

TEST(ShardPlan, ClampsShardRequestAndAutoTunes) {
  // Never more shards than chunks...
  EXPECT_EQ(sim::ShardPlan::make(4 * 1024, 1024, 50).shards(), 4u);
  // ...never zero, even for an empty run...
  EXPECT_EQ(sim::ShardPlan::make(0, 1024, 0).shards(), 1u);
  EXPECT_EQ(sim::ShardPlan::make(0, 1024, 0).chunks(), 0u);
  // ...and 0 auto-tunes to ~√chunks (100 chunks → 10 shards).
  EXPECT_EQ(sim::ShardPlan::make(100 * 1024, 1024, 0).shards(), 10u);
}

/// reduce() must equal the serial chunk loop bit for bit at every
/// (threads, shards) point — including a partial final chunk.
TEST(FleetRunner, ReduceMatchesSerialChunkLoopAtAnyThreadAndShardCount) {
  struct Acc {
    double sum = 0.0;
    std::uint64_t mix = 0xCBF29CE484222325ULL;
  };
  const std::size_t samples = 10 * 64 + 17;  // chunk 64 → partial tail
  const std::uint64_t base_seed = 99;
  const auto consume = [](const sim::FleetSample& s, Acc& a) {
    a.sum += 1.0 / static_cast<double>((s.seed % 1'000) + 1);
    a.mix ^= s.seed;
    a.mix *= 0x100000001B3ULL;
  };
  const auto fold = [](Acc& into, Acc& part) {
    into.sum += part.sum;
    into.mix ^= part.mix;
    into.mix *= 0x100000001B3ULL;
  };

  // Serial oracle: the documented loop, one chunk at a time in order.
  Acc oracle;
  for (std::size_t first = 0; first < samples; first += 64) {
    Acc chunk;
    const std::size_t end = std::min(first + 64, samples);
    for (std::size_t i = first; i < end; ++i) {
      consume(sim::FleetSample{i, sim::job_seed(base_seed, i), 0}, chunk);
    }
    fold(oracle, chunk);
  }

  for (const std::size_t threads : {1u, 2u, 8u}) {
    for (const std::size_t shards : {1u, 4u, 16u}) {
      sim::FleetOptions options;
      options.threads = threads;
      options.shards = shards;
      options.chunk = 64;
      sim::FleetRunner fleet(options);
      const Acc got = fleet.reduce<Acc>(samples, base_seed, consume, fold);
      EXPECT_EQ(got.sum, oracle.sum)
          << "threads=" << threads << " shards=" << shards;
      EXPECT_EQ(got.mix, oracle.mix)
          << "threads=" << threads << " shards=" << shards;
    }
  }
}

/// map() materializes job results in job order regardless of sharding.
TEST(FleetRunner, MapPreservesJobOrder) {
  for (const std::size_t shards : {1u, 3u, 16u}) {
    sim::FleetOptions options;
    options.threads = 4;
    options.shards = shards;
    sim::FleetRunner fleet(options);
    const std::vector<std::uint64_t> out = fleet.map<std::uint64_t>(
        23, /*base_seed=*/5,
        [](const sim::FleetSample& s) { return s.seed ^ s.index; });
    ASSERT_EQ(out.size(), 23u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], sim::job_seed(5, i) ^ i) << "job " << i;
    }
  }
}

TEST(Dependability, FleetEstimateEqualsBatchOracleAtEveryThreadShardPoint) {
  const analysis::DesignPair pair = analysis::section51_designs(4, 2, 2);
  analysis::MissionParams mission;
  mission.mission_hours = 10.0;
  mission.failure_rate_per_hour = 0.05;
  mission.trials = 5'000;  // ~5 chunks at kFleetChunk, partial tail

  Rng oracle_rng(7);
  sim::BatchRunner serial{sim::BatchOptions{1, 0}};
  const analysis::DependabilityEstimate oracle =
      analysis::estimate_dependability(pair.reconfig, mission, oracle_rng,
                                       serial);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    for (const std::size_t shards : {1u, 4u, 16u}) {
      sim::FleetOptions options;
      options.threads = threads;
      options.shards = shards;
      sim::FleetRunner fleet(options);
      Rng rng(7);  // same caller seed → same base_seed
      const analysis::DependabilityEstimate got =
          analysis::estimate_dependability(pair.reconfig, mission, rng,
                                           fleet);
      // Exact equality, field by field — not near-equality: the fleet path
      // must reproduce the oracle's floating-point addition sequence.
      EXPECT_EQ(got.p_full_whole_mission, oracle.p_full_whole_mission);
      EXPECT_EQ(got.p_safe_whole_mission, oracle.p_safe_whole_mission);
      EXPECT_EQ(got.p_loss, oracle.p_loss);
      EXPECT_EQ(got.full_service_fraction, oracle.full_service_fraction);
      EXPECT_EQ(got.safe_or_better_fraction, oracle.safe_or_better_fraction);
      EXPECT_EQ(got.mean_failures, oracle.mean_failures);
      EXPECT_EQ(got.digest(), oracle.digest())
          << "threads=" << threads << " shards=" << shards;
    }
  }
}

TEST(Coverage, FleetSweepReproducesSerialReport) {
  const core::ReconfigSpec spec = make_chain_spec({});
  const analysis::CoverageReport serial =
      analysis::check_coverage(spec, /*keep_discharged=*/true);

  sim::FleetOptions options;
  options.threads = 4;
  options.shards = 2;
  sim::FleetRunner fleet(options);
  const analysis::CoverageReport fleet_report =
      analysis::check_coverage(spec, /*keep_discharged=*/true,
                               /*env_limit=*/1u << 20, fleet);

  EXPECT_EQ(fleet_report.generated, serial.generated);
  EXPECT_EQ(fleet_report.discharged, serial.discharged);
  ASSERT_EQ(fleet_report.obligations.size(), serial.obligations.size());
  for (std::size_t i = 0; i < serial.obligations.size(); ++i) {
    EXPECT_EQ(fleet_report.obligations[i].description,
              serial.obligations[i].description);
    EXPECT_EQ(fleet_report.obligations[i].discharged,
              serial.obligations[i].discharged);
  }
}

TEST(Certify, FleetPathRendersIdenticalReport) {
  const core::ReconfigSpec spec = make_chain_spec({});
  const analysis::CertificationReport serial = analysis::certify(spec);

  sim::FleetOptions fleet_options;
  fleet_options.threads = 4;
  fleet_options.shards = 3;
  sim::FleetRunner fleet(fleet_options);
  analysis::CertifyOptions options;
  options.fleet = &fleet;
  const analysis::CertificationReport via_fleet =
      analysis::certify(spec, options);

  EXPECT_EQ(via_fleet.certified(), serial.certified());
  EXPECT_EQ(analysis::render_json(via_fleet), analysis::render_json(serial));
}

/// Chain-spec mission without a baked fault plan — fleet samples get their
/// plans from the PlanFactory, per seed.
MissionFactory fleet_chain_factory() {
  return [] {
    auto spec = std::make_shared<core::ReconfigSpec>(make_chain_spec({}));
    core::SystemOptions options;
    options.durable_storage = true;
    options.durability.snapshot_every_epochs = 7;
    auto system = std::make_unique<core::System>(*spec, options);
    for (const core::AppDecl& decl : spec->apps()) {
      system->add_app(std::make_unique<SimpleApp>(decl.id, decl.name));
    }
    CrashMission mission;
    mission.keepalive = spec;
    mission.system = std::move(system);
    return mission;
  };
}

/// The paper's §7 avionics mission — autopilot + FCS on the UAV spec — with
/// the factory-baked MissionProfile omitted: in a fleet sweep the
/// environment campaign is the per-sample fault plan.
MissionFactory fleet_uav_factory() {
  return [] {
    struct Bundle {
      core::ReconfigSpec spec;
      avionics::UavPlant plant;
      Bundle(core::ReconfigSpec s, std::uint64_t seed)
          : spec(std::move(s)), plant(seed) {}
    };
    avionics::UavSpecOptions spec_options;
    spec_options.dwell_frames = 10;
    auto bundle = std::make_shared<Bundle>(
        avionics::make_uav_spec(spec_options), 42);

    core::SystemOptions options;
    options.frame_length = 20'000;
    options.durable_storage = true;
    options.durability.snapshot_every_epochs = 16;
    auto system = std::make_unique<core::System>(bundle->spec, options);
    system->add_app(std::make_unique<avionics::AutopilotApp>(bundle->plant));
    system->add_app(std::make_unique<avionics::FcsApp>(bundle->plant));

    CrashMission out;
    out.keepalive = bundle;
    out.system = std::move(system);
    return out;
  };
}

PlanFactory env_plans_for(const core::ReconfigSpec& spec, Cycle warmup,
                          Cycle frames, SimDuration frame_length) {
  EnvPlanParams params;
  params.factors = spec.factors().factors();
  params.changes = 3;
  params.first_frame = warmup;
  params.frames = frames;
  params.frame_length = frame_length;
  return make_env_plan_factory(std::move(params));
}

/// One digest across {threads} × {shards} × {pooled, construct}, equal to
/// the 1-thread / 1-shard / no-pool serial oracle.
void expect_fleet_digest_invariant(const MissionFactory& factory,
                                   const PlanFactory& plans,
                                   FleetMissionOptions options,
                                   std::size_t chunk) {
  // Serial oracle: one thread, one shard, construct-per-sample.
  sim::FleetOptions serial_options;
  serial_options.threads = 1;
  serial_options.shards = 1;
  serial_options.chunk = chunk;
  sim::FleetRunner serial(serial_options);
  options.pool_systems = false;
  const FleetMissionReport oracle =
      run_fleet_missions(factory, plans, options, serial);
  ASSERT_NE(oracle.digest, 0u);
  EXPECT_EQ(oracle.samples, options.samples);
  EXPECT_EQ(oracle.systems_constructed, options.samples);
  EXPECT_EQ(oracle.pool_resets, 0u);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    for (const std::size_t shards : {1u, 4u, 16u}) {
      for (const bool pooled : {true, false}) {
        sim::FleetOptions fleet_options;
        fleet_options.threads = threads;
        fleet_options.shards = shards;
        fleet_options.chunk = chunk;
        sim::FleetRunner fleet(fleet_options);
        options.pool_systems = pooled;
        const FleetMissionReport got =
            run_fleet_missions(factory, plans, options, fleet);
        EXPECT_EQ(got.digest, oracle.digest)
            << "threads=" << threads << " shards=" << shards
            << " pooled=" << pooled;
        EXPECT_EQ(got.fault_events, oracle.fault_events);
        EXPECT_EQ(got.reconfigurations, oracle.reconfigurations);
        EXPECT_EQ(got.frames_run, oracle.frames_run);
        if (pooled) {
          EXPECT_EQ(got.pool_resets, options.samples);
          // The pool grows to at most the active lanes, never per sample.
          EXPECT_LE(got.systems_constructed, got.pool_resets);
        } else {
          EXPECT_EQ(got.systems_constructed, options.samples);
        }
      }
    }
  }
}

TEST(FleetMissions, ChainDigestInvariantAcrossThreadsShardsAndPooling) {
  const MissionFactory factory = fleet_chain_factory();
  const core::ReconfigSpec spec = make_chain_spec({});
  FleetMissionOptions options;
  options.samples = 22;
  options.frames = 4;
  options.warmup_frames = 6;
  options.base_seed = 11;
  expect_fleet_digest_invariant(
      factory, env_plans_for(spec, options.warmup_frames, options.frames,
                             10'000),
      options, /*chunk=*/4);
}

TEST(FleetMissions, AvionicsDigestInvariantAcrossThreadsShardsAndPooling) {
  const MissionFactory factory = fleet_uav_factory();
  avionics::UavSpecOptions spec_options;
  spec_options.dwell_frames = 10;
  const core::ReconfigSpec spec = avionics::make_uav_spec(spec_options);
  FleetMissionOptions options;
  options.samples = 6;
  options.frames = 5;
  options.warmup_frames = 4;
  options.base_seed = 3;
  expect_fleet_digest_invariant(
      factory, env_plans_for(spec, options.warmup_frames, options.frames,
                             20'000),
      options, /*chunk=*/2);
}

TEST(FleetMissions, EnvPlanFactoryIsAPureFunctionOfTheSeed) {
  const core::ReconfigSpec spec = make_chain_spec({});
  const PlanFactory plans = env_plans_for(spec, 6, 4, 10'000);
  for (const std::uint64_t seed : {1ull, 42ull, 0xDEADBEEFull}) {
    const sim::FaultPlan a = plans(seed);
    const sim::FaultPlan b = plans(seed);
    ASSERT_EQ(a.events().size(), b.events().size());
    EXPECT_EQ(a.events().size(), 3u);
    for (std::size_t i = 0; i < a.events().size(); ++i) {
      EXPECT_EQ(a.events()[i].when, b.events()[i].when);
      EXPECT_EQ(a.events()[i].new_value, b.events()[i].new_value);
      // Every event lands at or after the warm point — the shared prefix.
      EXPECT_GE(a.events()[i].when, 6 * 10'000);
    }
  }
}

TEST(PooledMission, ResetToRewindsExactlyToAnyPrefixFrame) {
  const MissionFactory factory = fleet_chain_factory();
  PooledMission pooled(factory, /*warmup_frames=*/10);
  for (const Cycle f : {0u, 3u, 7u, 10u}) {
    pooled.reset_to(f);
    CrashMission fresh = factory();
    fresh.system->run(f);
    EXPECT_EQ(pooled.system().digest(), fresh.system->digest())
        << "frame " << f;
  }
  // reset() is reset_to(warmup), and resets are counted.
  pooled.reset();
  CrashMission warm = factory();
  warm.system->run(10);
  EXPECT_EQ(pooled.system().digest(), warm.system->digest());
  EXPECT_EQ(pooled.resets(), 5u);
}

TEST(SystemPool, ReusesIdleMissionsAndCountsConstructions) {
  SystemPool pool(fleet_chain_factory(), /*warmup_frames=*/4);
  {
    SystemPool::Lease a = pool.lease();
    a.mission().reset();
  }
  {
    // The first lease has been returned: this one must reuse it.
    SystemPool::Lease b = pool.lease();
    b.mission().reset();
    // A concurrent lease while b is out forces a second construction.
    SystemPool::Lease c = pool.lease();
    c.mission().reset();
  }
  const SystemPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.leases, 3u);
  EXPECT_EQ(stats.constructions, 2u);
}

TEST(Sweep, FleetOverloadMatchesBatchRunnerSweep) {
  const std::function<std::uint64_t(const MissionJob&)> fly =
      [](const MissionJob& job) { return job.seed * 31 + job.index; };
  const std::vector<std::uint64_t> batch =
      run_mission_sweep<std::uint64_t>(17, /*base_seed=*/9, fly);
  sim::FleetOptions options;
  options.threads = 4;
  options.shards = 3;
  sim::FleetRunner fleet(options);
  const std::vector<std::uint64_t> via_fleet =
      run_mission_sweep<std::uint64_t>(17, /*base_seed=*/9, fly, fleet);
  EXPECT_EQ(via_fleet, batch);
}

TEST(Sweep, PooledOverloadMatchesConstructPerMissionSweep) {
  const core::ReconfigSpec spec = make_chain_spec({});
  const PlanFactory plans = env_plans_for(spec, 0, 4, 10'000);
  const Cycle frames = 4;

  // Self-contained oracle: build a fresh system inside every call.
  const MissionFactory factory = fleet_chain_factory();
  const std::function<std::uint64_t(const MissionJob&)> construct_fly =
      [&](const MissionJob& job) {
        CrashMission mission = factory();
        mission.system->set_fault_plan(plans(job.seed));
        mission.system->run(frames);
        return mission.system->digest();
      };
  const std::vector<std::uint64_t> oracle =
      run_mission_sweep<std::uint64_t>(9, /*base_seed=*/13, construct_fly);

  // Pooled path: leased warm systems, reset per mission (warmup 0 pools the
  // pristine frame-0 state, matching the oracle's fresh builds).
  SystemPool pool(factory, /*warmup_frames=*/0);
  sim::FleetRunner fleet;
  const std::function<std::uint64_t(const MissionJob&, PooledMission&)>
      pooled_fly = [&](const MissionJob& job, PooledMission& mission) {
        mission.system().set_fault_plan(plans(job.seed));
        mission.system().run(frames);
        return mission.system().digest();
      };
  const std::vector<std::uint64_t> pooled = run_mission_sweep<std::uint64_t>(
      9, /*base_seed=*/13, pooled_fly, pool, fleet);
  EXPECT_EQ(pooled, oracle);
  EXPECT_LT(pool.stats().constructions, 9u);
}

}  // namespace
}  // namespace arfs::support
