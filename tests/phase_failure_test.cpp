// Failure-during-reconfiguration matrix: a processor fail-stop lands in
// each phase of an in-progress SFTA (signal frame, halt, prepare,
// initialize), under both policies. The system must always converge to a
// configuration that is proper for the final environment, with every
// completed reconfiguration satisfying SP1-SP4.
//
// The spec used: three configurations driven by one severity factor plus a
// processor-status factor; config 0 runs both apps on separate processors,
// configs 1 and 2 consolidate onto processor 2 (so losing processor 1 is
// always survivable).
#include <gtest/gtest.h>

#include <memory>

#include "arfs/core/system.hpp"
#include "arfs/props/report.hpp"
#include "arfs/support/simple_app.hpp"
#include "arfs/support/synthetic.hpp"

namespace arfs::core {
namespace {

using support::synthetic_app;
using support::synthetic_config;
using support::synthetic_processor;
using support::synthetic_spec;

constexpr FactorId kSeverity{90};
constexpr FactorId kProc1Status{91};

ReconfigSpec matrix_spec() {
  ReconfigSpec spec;
  for (std::size_t a = 0; a < 2; ++a) {
    AppDecl decl;
    decl.id = synthetic_app(a);
    decl.name = "m-app-" + std::to_string(a);
    decl.specs = {
        FunctionalSpec{synthetic_spec(a, 0), "full", {}, 100, 400},
        FunctionalSpec{synthetic_spec(a, 1), "lite", {}, 50, 200},
    };
    spec.declare_app(std::move(decl));
  }
  spec.declare_factor(env::FactorSpec{kSeverity, "severity", 0, 2, 0});
  spec.declare_factor(env::FactorSpec{kProc1Status, "proc1", 0, 1, 0});

  Configuration split;
  split.id = synthetic_config(0);
  split.name = "split";
  split.assignment = {{synthetic_app(0), synthetic_spec(0, 0)},
                      {synthetic_app(1), synthetic_spec(1, 0)}};
  split.placement = {{synthetic_app(0), synthetic_processor(0)},
                     {synthetic_app(1), synthetic_processor(1)}};
  split.service_rank = 2;
  spec.declare_config(std::move(split));

  Configuration mid;
  mid.id = synthetic_config(1);
  mid.name = "consolidated";
  mid.assignment = {{synthetic_app(0), synthetic_spec(0, 1)},
                    {synthetic_app(1), synthetic_spec(1, 0)}};
  mid.placement = {{synthetic_app(0), synthetic_processor(1)},
                   {synthetic_app(1), synthetic_processor(1)}};
  mid.service_rank = 1;
  spec.declare_config(std::move(mid));

  Configuration safe;
  safe.id = synthetic_config(2);
  safe.name = "safe";
  safe.assignment = {{synthetic_app(1), synthetic_spec(1, 1)}};
  safe.placement = {{synthetic_app(1), synthetic_processor(1)}};
  safe.safe = true;
  safe.service_rank = 0;
  spec.declare_config(std::move(safe));

  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      spec.set_transition_bound(synthetic_config(i), synthetic_config(j),
                                16);
    }
  }

  spec.set_choose([](ConfigId, const env::EnvState& e) {
    if (e.at(kProc1Status) != 0) {
      // Processor 1 lost: only the consolidated configurations are viable;
      // severity decides between them.
      return e.at(kSeverity) >= 2 ? synthetic_config(2) : synthetic_config(1);
    }
    const std::int64_t severity = e.at(kSeverity);
    if (severity >= 2) return synthetic_config(2);
    if (severity == 1) return synthetic_config(1);
    return synthetic_config(0);
  });
  spec.set_initial_config(synthetic_config(0));
  spec.validate();
  return spec;
}

struct MatrixParam {
  Cycle failure_offset = 0;  ///< Frames after the trigger frame.
  ReconfigPolicy policy = ReconfigPolicy::kBuffer;

  friend std::ostream& operator<<(std::ostream& os, const MatrixParam& p) {
    return os << "offset" << p.failure_offset << "_"
              << (p.policy == ReconfigPolicy::kBuffer ? "buffer"
                                                      : "immediate");
  }
};

class PhaseFailureMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(PhaseFailureMatrix, ConvergesAndKeepsProperties) {
  const MatrixParam& p = GetParam();
  const ReconfigSpec spec = matrix_spec();

  SystemOptions options;
  options.scram.policy = p.policy;
  System system(spec, options);
  system.add_app(std::make_unique<support::SimpleApp>(synthetic_app(0), "a"));
  system.add_app(std::make_unique<support::SimpleApp>(synthetic_app(1), "b"));
  system.bind_processor_factor(synthetic_processor(0), kProc1Status);

  // Trigger at frame 10; processor 1 dies `failure_offset` frames into the
  // SFTA (offset 0 = the signal frame itself, 1 = halt, 2 = prepare,
  // 3 = initialize).
  sim::FaultPlan plan;
  plan.fail_processor(
      static_cast<SimTime>(10 + p.failure_offset) * 10'000,
      synthetic_processor(0));
  system.set_fault_plan(std::move(plan));

  system.run(10);
  system.set_factor(kSeverity, 1);
  system.run(50);

  // Converged to the proper choice for the final environment...
  const ConfigId current = system.scram().current_config();
  EXPECT_EQ(spec.choose(current, system.environment().state()), current);
  EXPECT_EQ(current, synthetic_config(1));  // proc1 down + severity 1
  EXPECT_FALSE(system.scram().reconfiguring());

  // ...with app 0 relocated onto the survivor...
  EXPECT_EQ(system.region_host(synthetic_app(0)), synthetic_processor(1));

  // ...and every completed reconfiguration property-clean.
  const props::TraceReport report = props::check_trace(system.trace(), spec);
  EXPECT_GE(report.reconfig_count, 1u);
  EXPECT_TRUE(report.all_hold()) << props::render(report);
  EXPECT_FALSE(trace::incomplete_reconfig(system.trace()).has_value());
}

std::vector<MatrixParam> matrix() {
  std::vector<MatrixParam> params;
  for (const Cycle offset : {0u, 1u, 2u, 3u, 4u}) {
    for (const ReconfigPolicy policy :
         {ReconfigPolicy::kBuffer, ReconfigPolicy::kImmediate}) {
      params.push_back(MatrixParam{offset, policy});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Offsets, PhaseFailureMatrix,
                         ::testing::ValuesIn(matrix()),
                         [](const auto& info) {
                           std::ostringstream os;
                           os << info.param;
                           return os.str();
                         });

}  // namespace
}  // namespace arfs::core
