// Journal shipping: warm-start replication of a durable store's WAL.
//
// Three layers under test: the batch protocol (JournalShipper /
// ShippedReplica — framing, cursor resume, corruption rewind, compaction
// rebase, full-copy reseed), the bus-side ShippingUnit (slot byte budgets,
// media-fault escalation), and the assembled System (warm relocations that
// move only the un-shipped journal tail, and the journal-aware SCRAM that
// re-initializes after a lossy recovery instead of silently resuming).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "arfs/bus/interface_unit.hpp"
#include "arfs/bus/schedule.hpp"
#include "arfs/common/check.hpp"
#include "arfs/core/system.hpp"
#include "arfs/sim/fault_plan.hpp"
#include "arfs/storage/durable/engine.hpp"
#include "arfs/storage/durable/journal.hpp"
#include "arfs/storage/durable/shipping.hpp"
#include "arfs/storage/durable/wire.hpp"
#include "arfs/storage/stable_storage.hpp"
#include "arfs/support/simple_app.hpp"
#include "arfs/support/synthetic.hpp"
#include "arfs/trace/reconfigs.hpp"

namespace arfs {
namespace {

using storage::Value;
using storage::StableStorage;
using storage::durable::ApplyStatus;
using storage::durable::decode_batch;
using storage::durable::DurabilityEngine;
using storage::durable::DurableOptions;
using storage::durable::encode_batch;
using storage::durable::encoded_state_bytes;
using storage::durable::JournalShipper;
using storage::durable::kHeaderSize;
using storage::durable::make_memory_engine;
using storage::durable::ShipBatch;
using storage::durable::ShipCursor;
using storage::durable::ShippedReplica;
using storage::durable::ShipStatus;
using storage::durable::SyncPolicy;

/// A source store + engine pair driven through the real commit protocol.
struct Source {
  StableStorage store;
  std::unique_ptr<DurabilityEngine> engine;

  explicit Source(DurableOptions options = {})
      : engine(make_memory_engine(options)) {}

  void commit_frame(
      Cycle cycle,
      const std::vector<std::pair<std::string, std::int64_t>>& writes) {
    for (const auto& [key, value] : writes) store.write(key, Value{value});
    engine->record_commit(store, cycle);
    store.commit(cycle);
    engine->after_commit(store);
  }
};

/// Ships until the replica is caught up; returns bytes moved. Expects the
/// plain path only (no rebase / lost cursor / corruption).
std::size_t ship_all(JournalShipper& shipper, ShippedReplica& replica,
                     std::size_t max_bytes = 64 * 1024) {
  std::size_t total = 0;
  ShipBatch batch;
  while (shipper.next_batch(replica.cursor(), max_bytes, batch) ==
         ShipStatus::kBatch) {
    total += batch.bytes.size();
    EXPECT_EQ(replica.apply(batch), ApplyStatus::kApplied);
  }
  return total;
}

// --- batch wire framing ---

TEST(ShipWire, BatchRoundTripsThroughTwentyByteFrameHeader) {
  ShipBatch batch;
  batch.generation = 3;
  batch.offset = 77;
  batch.bytes = {10, 20, 30, 40, 50};
  batch.crc = storage::durable::crc32(batch.bytes.data(), batch.bytes.size());

  std::vector<std::uint8_t> frame;
  encode_batch(frame, batch);
  // u64 generation + u64 offset + u32 length, then bytes, then u32 CRC.
  ASSERT_EQ(frame.size(), 8u + 8u + 4u + batch.bytes.size() + 4u);

  const auto decoded = decode_batch(frame.data(), frame.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->generation, 3u);
  EXPECT_EQ(decoded->offset, 77u);
  EXPECT_EQ(decoded->bytes, batch.bytes);
  EXPECT_EQ(decoded->crc, batch.crc);

  // Truncated anywhere — inside the header or inside the payload — the
  // frame must decode to nothing, never to a short batch.
  for (std::size_t n = 0; n < frame.size(); ++n) {
    EXPECT_FALSE(decode_batch(frame.data(), n).has_value()) << n;
  }
}

// --- replication protocol ---

TEST(ShipReplicate, ReplayedStreamIsBitIdenticalToTheSource) {
  Source source;
  for (Cycle c = 1; c <= 8; ++c) {
    source.commit_frame(c, {{"alt", std::int64_t(100 + c)},
                            {"spd", std::int64_t(c)}});
  }

  JournalShipper shipper(*source.engine);
  ShippedReplica replica;
  const std::size_t moved = ship_all(shipper, replica);

  EXPECT_GT(moved, 0u);
  EXPECT_EQ(replica.store().fingerprint(), source.store.fingerprint());
  EXPECT_EQ(replica.store().commit_epochs(), source.store.commit_epochs());
  EXPECT_EQ(replica.stats().records_applied, 8u);
  const auto alt = replica.store().read_as<std::int64_t>("alt");
  ASSERT_TRUE(alt);
  EXPECT_EQ(alt.value(), 108);
  // The engine accounted the traffic and the settled lag.
  EXPECT_EQ(source.engine->stats().shipped_bytes, moved);
  EXPECT_EQ(source.engine->stats().ship_lag_bytes, 0u);
}

TEST(ShipReplicate, OnlySyncedBytesEverShip) {
  // A large bytes watermark keeps every commit in the buffered tail: the
  // journal has content, but none of it is durable — so none of it ships
  // (the replica must never hold state a crash would not preserve).
  Source source({/*snapshot_every_epochs=*/0, SyncPolicy::bytes(1 << 20)});
  for (Cycle c = 1; c <= 3; ++c) {
    source.commit_frame(c, {{"k", std::int64_t(c)}});
  }

  JournalShipper shipper(*source.engine);
  ShippedReplica replica;
  ShipBatch batch;
  EXPECT_EQ(shipper.next_batch(replica.cursor(), 64 * 1024, batch),
            ShipStatus::kUpToDate);
  EXPECT_NE(replica.store().fingerprint(), source.store.fingerprint());

  // The boundary sync makes the tail durable; now it ships.
  ASSERT_TRUE(source.engine->sync_now());
  ship_all(shipper, replica);
  EXPECT_EQ(replica.store().fingerprint(), source.store.fingerprint());
}

TEST(ShipReplicate, DictionaryReplaysAcrossTheShippedStream) {
  Source source;
  source.commit_frame(1, {{"nav/lat", 10}, {"nav/lon", 20}});

  JournalShipper shipper(*source.engine);
  ShippedReplica replica;
  ship_all(shipper, replica);

  // New keys interned mid-stream arrive as dictionary records *after* the
  // replica already consumed the first announcement — the id space must
  // keep extending, not restart.
  source.commit_frame(2, {{"nav/lat", 11}, {"nav/alt", 500}});
  source.commit_frame(3, {{"nav/alt", 501}});
  ship_all(shipper, replica);

  EXPECT_GE(replica.stats().dict_records, 2u);
  EXPECT_EQ(replica.store().fingerprint(), source.store.fingerprint());
  const auto lon = replica.store().read_as<std::int64_t>("nav/lon");
  const auto alt = replica.store().read_as<std::int64_t>("nav/alt");
  ASSERT_TRUE(lon);
  ASSERT_TRUE(alt);
  EXPECT_EQ(lon.value(), 20);
  EXPECT_EQ(alt.value(), 501);
}

TEST(ShipReplicate, CursorResumesMidRecordUnderTinyBudgets) {
  Source source;
  for (Cycle c = 1; c <= 6; ++c) {
    source.commit_frame(c, {{"key/with/a/longish/name", std::int64_t(c)}});
  }

  // Five-byte batches cannot even hold one record header: every record
  // crosses several batches and the replica's pending buffer carries the
  // partial tail across applies.
  JournalShipper shipper(*source.engine);
  ShippedReplica replica;
  bool saw_partial = false;
  ShipBatch batch;
  while (shipper.next_batch(replica.cursor(), 5, batch) ==
         ShipStatus::kBatch) {
    ASSERT_LE(batch.bytes.size(), 5u);
    ASSERT_EQ(replica.apply(batch), ApplyStatus::kApplied);
    saw_partial = saw_partial || replica.pending_bytes() > 0;
  }

  EXPECT_TRUE(saw_partial);
  EXPECT_EQ(replica.pending_bytes(), 0u);
  EXPECT_EQ(replica.store().fingerprint(), source.store.fingerprint());
  EXPECT_EQ(replica.stats().records_applied, 6u);
}

TEST(ShipReplicate, TransitCorruptionConsumesNothing) {
  Source source;
  source.commit_frame(1, {{"k", 1}});

  JournalShipper shipper(*source.engine);
  ShippedReplica replica;
  ShipBatch batch;
  ASSERT_EQ(shipper.next_batch(replica.cursor(), 64 * 1024, batch),
            ShipStatus::kBatch);

  ShipBatch mangled = batch;
  mangled.bytes[0] ^= 0x01;  // CRC now disagrees: a transit fault
  EXPECT_EQ(replica.apply(mangled), ApplyStatus::kCorrupt);
  EXPECT_EQ(replica.cursor().offset, kHeaderSize);
  EXPECT_EQ(replica.stats().crc_rejects, 1u);

  // The clean retransmission of the same batch succeeds.
  EXPECT_EQ(replica.apply(batch), ApplyStatus::kApplied);
  EXPECT_EQ(replica.store().fingerprint(), source.store.fingerprint());
}

TEST(ShipReplicate, RecordCorruptionRewindsToTheLastGoodBoundary) {
  Source source;
  for (Cycle c = 1; c <= 3; ++c) {
    source.commit_frame(c, {{"k", std::int64_t(c)}});
  }

  JournalShipper shipper(*source.engine);
  ShippedReplica replica;
  ShipBatch batch;
  ASSERT_EQ(shipper.next_batch(replica.cursor(), 64 * 1024, batch),
            ShipStatus::kBatch);

  // Flip the last payload byte: the third record's CRC fails *after* the
  // first two records applied cleanly. The transit CRC is recomputed so the
  // fault models a bad source byte, not a transit error.
  ShipBatch mangled = batch;
  mangled.bytes.back() ^= 0x40;
  mangled.crc =
      storage::durable::crc32(mangled.bytes.data(), mangled.bytes.size());
  EXPECT_EQ(replica.apply(mangled), ApplyStatus::kCorrupt);

  // The good prefix stayed applied; the cursor rewound to the corrupt
  // record's boundary, not to the start of the batch.
  EXPECT_EQ(replica.cursor().epoch, 2u);
  EXPECT_GT(replica.cursor().offset, kHeaderSize);
  EXPECT_LT(replica.cursor().offset, batch.offset + batch.bytes.size());
  EXPECT_EQ(replica.pending_bytes(), 0u);

  // A clean retransmission from the rewound cursor completes the stream.
  ASSERT_EQ(shipper.next_batch(replica.cursor(), 64 * 1024, batch),
            ShipStatus::kBatch);
  EXPECT_EQ(replica.apply(batch), ApplyStatus::kApplied);
  EXPECT_EQ(replica.store().fingerprint(), source.store.fingerprint());
}

TEST(ShipReplicate, CompactionRebasesACaughtUpReplica) {
  Source source({/*snapshot_every_epochs=*/4, SyncPolicy::every_commit()});
  JournalShipper shipper(*source.engine);
  ShippedReplica replica;

  for (Cycle c = 1; c <= 3; ++c) {
    source.commit_frame(c, {{"k", std::int64_t(c)}});
  }
  ship_all(shipper, replica);
  ASSERT_EQ(source.engine->journal_generation(), 0u);

  // Epoch 4 snapshots and compacts: generation 1. The replica still owes
  // the epoch-4 record, which now lives only in the retained tail.
  source.commit_frame(4, {{"k", 4}});
  ASSERT_EQ(source.engine->journal_generation(), 1u);

  ShipBatch batch;
  ASSERT_EQ(shipper.next_batch(replica.cursor(), 64 * 1024, batch),
            ShipStatus::kBatch);
  EXPECT_EQ(batch.generation, 0u);  // served from the retained tail
  ASSERT_EQ(replica.apply(batch), ApplyStatus::kApplied);
  EXPECT_EQ(replica.cursor().epoch, 4u);

  // Tail consumed: the shipper orders a rebase onto generation 1.
  ASSERT_EQ(shipper.next_batch(replica.cursor(), 64 * 1024, batch),
            ShipStatus::kRebase);
  replica.rebase(source.engine->journal_generation(),
                 source.engine->rebase_epoch());
  EXPECT_EQ(replica.cursor().generation, 1u);
  EXPECT_EQ(replica.cursor().offset, kHeaderSize);

  // Post-compaction commits ship through the fresh generation unbroken.
  source.commit_frame(5, {{"k", 5}, {"fresh", 1}});
  ship_all(shipper, replica);
  EXPECT_EQ(replica.store().fingerprint(), source.store.fingerprint());
  EXPECT_EQ(replica.stats().rebases, 1u);
}

TEST(ShipReplicate, LaggingTwoCompactionsLosesTheCursor) {
  Source source({/*snapshot_every_epochs=*/2, SyncPolicy::every_commit()});
  JournalShipper shipper(*source.engine);
  ShippedReplica replica;

  // Two compactions pass with nothing shipped: only one prior generation
  // is retained, so the cursor is unrecoverable — full copy.
  for (Cycle c = 1; c <= 5; ++c) {
    source.commit_frame(c, {{"k", std::int64_t(c)}, {"j", std::int64_t(-c)}});
  }
  ASSERT_GE(source.engine->journal_generation(), 2u);

  ShipBatch batch;
  EXPECT_EQ(shipper.next_batch(replica.cursor(), 64 * 1024, batch),
            ShipStatus::kCursorLost);

  replica.reset_from_full_copy(source.store, source.engine->dictionary(),
                               source.engine->journal_generation(),
                               source.engine->journal().synced_size());
  EXPECT_EQ(replica.store().fingerprint(), source.store.fingerprint());
  EXPECT_EQ(replica.stats().resets, 1u);
  EXPECT_EQ(shipper.next_batch(replica.cursor(), 64 * 1024, batch),
            ShipStatus::kUpToDate);

  // Later commits reference ids the copied dictionary already announced.
  source.commit_frame(6, {{"k", 6}});
  ship_all(shipper, replica);
  EXPECT_EQ(replica.store().fingerprint(), source.store.fingerprint());
}

TEST(ShipReplicate, AttachedEngineMakesTheStandbyItselfDurable) {
  Source source;
  JournalShipper shipper(*source.engine);
  ShippedReplica replica;
  replica.attach_engine(make_memory_engine());

  for (Cycle c = 1; c <= 5; ++c) {
    source.commit_frame(c, {{"k", std::int64_t(c)}});
  }
  ship_all(shipper, replica);
  ASSERT_EQ(replica.store().fingerprint(), source.store.fingerprint());

  // The standby crashes. Its own write-ahead journal recovers the replica
  // state bit-identically — shipping composed with durability, not instead
  // of it.
  replica.engine()->crash();
  StableStorage recovered;
  const auto report = replica.engine()->recover_into(recovered);
  EXPECT_EQ(report.last_epoch, 5u);
  EXPECT_EQ(recovered.fingerprint(), source.store.fingerprint());
}

TEST(ShipReplicate, EncodedStateBytesRestrictsToThePrefix) {
  StableStorage store;
  store.write("a1/x", Value{std::int64_t{1}});
  store.write("a2/y", Value{std::int64_t{2}});
  store.commit(1);
  const std::uint64_t all = encoded_state_bytes(store);
  const std::uint64_t a1 = encoded_state_bytes(store, "a1/");
  EXPECT_GT(a1, 0u);
  EXPECT_LT(a1, all);
}

// --- the bus-side shipping unit ---

TEST(ShipUnit, PollMovesAtMostTheSlotByteBudget) {
  Source source;
  for (Cycle c = 1; c <= 10; ++c) {
    source.commit_frame(c, {{"some/topic/key", std::int64_t(c * 7)}});
  }

  ShippedReplica replica;
  bus::ShippingUnit unit(EndpointId{9}, *source.engine, replica);
  bus::TdmaSchedule schedule;
  schedule.add_ship_slot(EndpointId{9}, /*length=*/100, /*byte_budget=*/32);

  std::size_t rounds = 0;
  std::size_t largest = 0;
  std::size_t moved = 0;
  while ((moved = unit.poll(schedule)) > 0) {
    ++rounds;
    largest = std::max(largest, moved);
  }
  EXPECT_GT(rounds, 1u);  // the stream really was budget-limited
  EXPECT_LE(largest, 32u);
  EXPECT_LE(unit.stats().bytes_shipped, 32u * unit.stats().slots_polled);
  EXPECT_EQ(replica.store().fingerprint(), source.store.fingerprint());
  EXPECT_EQ(unit.stats().slots_polled, unit.stats().batches_shipped + 1);
}

TEST(ShipUnit, CatchUpDrainsTheTailRegardlessOfBudgets) {
  Source source;
  for (Cycle c = 1; c <= 4; ++c) {
    source.commit_frame(c, {{"k", std::int64_t(c)}});
  }
  ShippedReplica replica;
  bus::ShippingUnit unit(EndpointId{9}, *source.engine, replica);
  EXPECT_GT(unit.catch_up(), 0u);
  EXPECT_EQ(unit.catch_up(), 0u);  // idempotent once caught up
  EXPECT_EQ(replica.store().fingerprint(), source.store.fingerprint());
  EXPECT_FALSE(unit.needs_full_copy());
}

TEST(ShipUnit, SourceMediaFaultEscalatesToFullCopy) {
  Source source;
  for (Cycle c = 1; c <= 4; ++c) {
    source.commit_frame(c, {{"k", std::int64_t(c)}});
  }

  // Flip one durable journal bit past the file header (the shipped range
  // starts at kHeaderSize, so a header flip would be invisible here). The
  // position is the backend's SplitMix64 spread of the seed; walk seeds
  // until one lands in the shipped range — deterministic, no retries at
  // test time.
  const std::uint64_t image_size = source.engine->journal().synced_size();
  const auto splitmix_pos = [&](std::uint64_t seed) {
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    return z % image_size;
  };
  std::uint64_t seed = 0;
  while (splitmix_pos(seed) < kHeaderSize) ++seed;
  source.engine->journal().corrupt_bit(seed);

  ShippedReplica replica;
  bus::ShippingUnit unit(EndpointId{9}, *source.engine, replica);
  bus::TdmaSchedule schedule;
  schedule.add_ship_slot(EndpointId{9}, 100, 64 * 1024);

  // Every retransmission re-reads the same damaged bytes: after the retry
  // limit the unit concludes the journal itself is bad and pauses for a
  // full copy instead of retrying forever.
  for (int i = 0; i < 4 && !unit.needs_full_copy(); ++i) {
    (void)unit.poll(schedule);
  }
  EXPECT_TRUE(unit.needs_full_copy());
  EXPECT_GE(unit.stats().corrupt_batches, 3u);
  EXPECT_EQ(unit.stats().fallbacks, 1u);
  EXPECT_EQ(source.engine->stats().ship_fallbacks, 1u);

  // The owner reseeds past the damage and shipping resumes.
  replica.reset_from_full_copy(source.store, source.engine->dictionary(),
                               source.engine->journal_generation(),
                               source.engine->journal().synced_size());
  unit.acknowledge_full_copy();
  EXPECT_EQ(unit.catch_up(), 0u);
  EXPECT_EQ(replica.store().fingerprint(), source.store.fingerprint());
}

// --- the assembled system ---

using support::SimpleApp;
using support::synthetic_app;
using support::synthetic_config;
using support::synthetic_processor;

/// The system_test failover spec: a processor-status factor moves both apps
/// onto processor 1 when processor 0 fails.
core::ReconfigSpec make_failover_spec() {
  core::ReconfigSpec spec;
  for (std::size_t a = 0; a < 2; ++a) {
    core::AppDecl decl;
    decl.id = synthetic_app(a);
    decl.name = "app-" + std::to_string(a);
    decl.specs = {core::FunctionalSpec{support::synthetic_spec(a, 0), "only",
                                       {}, 100, 400}};
    spec.declare_app(std::move(decl));
  }
  const FactorId proc0_status{50};
  spec.declare_factor(env::FactorSpec{proc0_status, "proc0-status", 0, 1, 0});

  core::Configuration split;
  split.id = synthetic_config(0);
  split.name = "split";
  split.assignment = {{synthetic_app(0), support::synthetic_spec(0, 0)},
                      {synthetic_app(1), support::synthetic_spec(1, 0)}};
  split.placement = {{synthetic_app(0), synthetic_processor(0)},
                     {synthetic_app(1), synthetic_processor(1)}};
  spec.declare_config(std::move(split));

  core::Configuration consolidated;
  consolidated.id = synthetic_config(1);
  consolidated.name = "consolidated";
  consolidated.assignment = {{synthetic_app(0), support::synthetic_spec(0, 0)},
                             {synthetic_app(1), support::synthetic_spec(1, 0)}};
  consolidated.placement = {{synthetic_app(0), synthetic_processor(1)},
                            {synthetic_app(1), synthetic_processor(1)}};
  consolidated.safe = true;
  spec.declare_config(std::move(consolidated));

  spec.set_transition_bound(synthetic_config(0), synthetic_config(1), 10);
  spec.set_transition_bound(synthetic_config(1), synthetic_config(0), 10);
  spec.set_choose([proc0_status](ConfigId, const env::EnvState& e) {
    return e.at(proc0_status) == 0 ? synthetic_config(0)
                                   : synthetic_config(1);
  });
  spec.set_initial_config(synthetic_config(0));
  spec.validate();
  return spec;
}

TEST(ShipSystem, WarmRelocationMovesOnlyTheUnshippedTail) {
  const core::ReconfigSpec spec = make_failover_spec();
  core::SystemOptions options;
  options.durable_storage = true;
  options.journal_shipping = true;
  auto make_simple = [](std::size_t a) {
    return std::make_unique<SimpleApp>(synthetic_app(a),
                                       "app-" + std::to_string(a));
  };
  core::System system(spec, options);
  system.add_app(make_simple(0));
  system.add_app(make_simple(1));
  system.bind_processor_factor(synthetic_processor(0), FactorId{50});

  sim::FaultPlan plan;
  plan.fail_processor(5 * 10'000, synthetic_processor(0));
  system.set_fault_plan(std::move(plan));
  system.run(9);

  // The relocation itself happened, onto processor 1 — and it was served
  // from the warm standby replica, not a full-state copy.
  EXPECT_EQ(system.scram().current_config(), synthetic_config(1));
  EXPECT_EQ(system.region_host(synthetic_app(0)), synthetic_processor(1));
  EXPECT_GE(system.stats().region_relocations, 1u);
  EXPECT_GE(system.stats().warm_relocations, 1u);
  EXPECT_EQ(system.stats().full_copy_relocations, 0u);
  EXPECT_GT(system.stats().full_copy_bytes_avoided, 0u);
  EXPECT_GT(system.stats().ship_slots_polled, 0u);
  EXPECT_GT(system.stats().ship_bytes_total, 0u);

  // The moved region carries the pre-failure committed counter.
  const auto& survivor =
      system.processors().processor(synthetic_processor(1));
  const auto count =
      survivor.poll_stable().read_as<std::int64_t>("a1/work_count");
  ASSERT_TRUE(count);
  EXPECT_EQ(count.value(), 5);
}

TEST(ShipSystem, ShipReplicaShadowsEveryDurableProcessor) {
  const core::ReconfigSpec spec = make_failover_spec();
  core::SystemOptions options;
  options.durable_storage = true;
  options.journal_shipping = true;
  core::System system(spec, options);
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(0), "app-0"));
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(1), "app-1"));
  system.run(6);

  ASSERT_TRUE(system.has_ship_channel(synthetic_processor(0)));
  const core::System::ShipCatchUp catch_up =
      system.ship_catch_up(synthetic_processor(0));
  EXPECT_FALSE(catch_up.reseeded);
  const auto& proc = system.processors().processor(synthetic_processor(0));
  EXPECT_EQ(system.ship_replica(synthetic_processor(0)).store().fingerprint(),
            proc.poll_stable().fingerprint());
}

TEST(ShipSystem, LossyRecoveryTriggersScramReinitWhenEnabled) {
  // An eight-frame sync watermark leaves several commit epochs in the
  // buffered tail; the fail-stop at frame 5 discards them, so recovery is
  // lossy and raises kLossyRecovery. With the journal-aware SCRAM option
  // the signal forces a re-initialization SFTA onto the *current*
  // configuration instead of being silently absorbed.
  auto run_mission = [](bool reinit) {
    auto spec = std::make_shared<core::ReconfigSpec>(
        support::make_chain_spec({}));
    core::SystemOptions options;
    options.durable_storage = true;
    options.durability.sync = SyncPolicy::frames(8);
    options.scram.reinit_on_lossy_recovery = reinit;
    auto system = std::make_unique<core::System>(*spec, options);
    for (const core::AppDecl& decl : spec->apps()) {
      system->add_app(std::make_unique<SimpleApp>(decl.id, decl.name));
    }
    sim::FaultPlan plan;
    plan.fail_processor(5 * 10'000, synthetic_processor(0));
    plan.repair_processor(6 * 10'000, synthetic_processor(0));
    system->set_fault_plan(std::move(plan));
    system->run(15);
    return std::make_pair(std::move(spec), std::move(system));
  };

  const auto [aware_spec, aware] = run_mission(true);
  EXPECT_GE(aware->stats().lossy_recoveries, 1u);
  EXPECT_GE(aware->scram().stats().lossy_reinits, 1u);
  const auto reconfigs = trace::get_reconfigs(aware->trace());
  ASSERT_GE(reconfigs.size(), 1u);
  EXPECT_EQ(reconfigs[0].from, reconfigs[0].to);  // re-init, not a move

  // Default behaviour unchanged: the trigger is absorbed and service
  // resumes on the rolled-back state without any SFTA.
  const auto [silent_spec, silent] = run_mission(false);
  EXPECT_GE(silent->stats().lossy_recoveries, 1u);
  EXPECT_EQ(silent->scram().stats().lossy_reinits, 0u);
  EXPECT_TRUE(trace::get_reconfigs(silent->trace()).empty());
}

}  // namespace
}  // namespace arfs
