// Tests of the resource-feasibility pass: every declared configuration fits
// its platform, and the *degradation arguments* of the paper's example are
// real (full service genuinely cannot share one computer; reduced service
// genuinely cannot run in low-power mode).
#include <gtest/gtest.h>

#include "arfs/analysis/feasibility.hpp"
#include "arfs/avionics/uav_system.hpp"
#include "arfs/support/synthetic.hpp"

namespace arfs::analysis {
namespace {

TEST(Feasibility, UavConfigurationsAllFit) {
  const core::ReconfigSpec spec = avionics::make_uav_spec();
  const PlatformModel platform = avionics::make_uav_platform();
  const FeasibilityReport report = check_feasibility(spec, platform);
  EXPECT_TRUE(report.all_feasible());
  // Findings exist for every (config, used-processor) pair: 2 + 1 + 1.
  EXPECT_EQ(report.findings.size(), 4u);
}

TEST(Feasibility, FullServiceCannotShareOneComputer) {
  // The paper's justification for Reduced Service: one computer "does not
  // have the capacity to support full service from the applications".
  const core::ReconfigSpec spec = avionics::make_uav_spec();
  const PlatformModel platform = avionics::make_uav_platform();
  EXPECT_TRUE(would_overload(spec, avionics::kFullService,
                             avionics::kComputer1, platform));
}

TEST(Feasibility, ReducedServiceCannotRunLowPower) {
  // The justification for turning the autopilot off in Minimal Service:
  // even the reduced pair exceeds the low-power capacity.
  const core::ReconfigSpec spec = avionics::make_uav_spec();
  PlatformModel platform = avionics::make_uav_platform();
  platform.low_power_configs.push_back(avionics::kReducedService);
  EXPECT_TRUE(would_overload(spec, avionics::kReducedService,
                             avionics::kComputer1, platform));
}

TEST(Feasibility, MinimalServiceFitsLowPower) {
  const core::ReconfigSpec spec = avionics::make_uav_spec();
  const PlatformModel platform = avionics::make_uav_platform();
  EXPECT_FALSE(would_overload(spec, avionics::kMinimalService,
                              avionics::kComputer1, platform));
}

TEST(Feasibility, OverloadedConfigurationReported) {
  const core::ReconfigSpec spec = avionics::make_uav_spec();
  PlatformModel tiny = avionics::make_uav_platform();
  // Shrink computer 2 below the augmented FCS's 0.40 cpu demand: exactly
  // Full Service's placement on computer 2 becomes infeasible.
  tiny.processors[avionics::kComputer2].normal =
      core::ResourceDemand{0.35, 128.0, 50.0};
  const FeasibilityReport report = check_feasibility(spec, tiny);
  EXPECT_FALSE(report.all_feasible());
  const auto violations = report.violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].config, avionics::kFullService);
  EXPECT_EQ(violations[0].processor, avionics::kComputer2);
  EXPECT_NE(violations[0].detail.find("exceeds capacity"),
            std::string::npos);
}

TEST(Feasibility, MissingProcessorIsInfeasible) {
  const core::ReconfigSpec spec = avionics::make_uav_spec();
  PlatformModel partial = avionics::make_uav_platform();
  partial.processors.erase(avionics::kComputer2);
  const FeasibilityReport report = check_feasibility(spec, partial);
  EXPECT_FALSE(report.all_feasible());
  bool found = false;
  for (const FeasibilityFinding& f : report.violations()) {
    if (f.processor == avionics::kComputer2) {
      found = true;
      EXPECT_NE(f.detail.find("not in the platform model"),
                std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Feasibility, LowPowerModeUsesReducedCapacity) {
  const core::ReconfigSpec spec = avionics::make_uav_spec();
  const PlatformModel platform = avionics::make_uav_platform();
  const FeasibilityReport report = check_feasibility(spec, platform);
  for (const FeasibilityFinding& f : report.findings) {
    if (f.config == avionics::kMinimalService) {
      EXPECT_DOUBLE_EQ(f.capacity.cpu, 0.15);  // low-power capacity applied
    } else {
      EXPECT_DOUBLE_EQ(f.capacity.cpu, 0.6);
    }
  }
}

TEST(Feasibility, ChainSpecAgainstGenerousPlatform) {
  support::ChainSpecParams params;
  params.apps = 3;
  const core::ReconfigSpec spec = support::make_chain_spec(params);
  PlatformModel platform;
  for (std::size_t p = 0; p < params.apps; ++p) {
    platform.processors[support::synthetic_processor(p)] =
        ProcessorCapacity{core::ResourceDemand{1.0, 256.0, 100.0},
                          core::ResourceDemand{0.2, 64.0, 20.0}};
  }
  EXPECT_TRUE(check_feasibility(spec, platform).all_feasible());
}

}  // namespace
}  // namespace arfs::analysis
