#include <gtest/gtest.h>

#include <memory>

#include "arfs/analysis/coverage.hpp"
#include "arfs/analysis/timing.hpp"
#include "arfs/core/builder.hpp"
#include "arfs/core/system.hpp"
#include "arfs/props/report.hpp"
#include "arfs/support/simple_app.hpp"

namespace arfs::core {
namespace {

constexpr AppId kNav{1};
constexpr AppId kComms{2};
constexpr SpecId kNavFull{10};
constexpr SpecId kNavDead{11};
constexpr SpecId kCommsFull{20};
constexpr ConfigId kNominal{1};
constexpr ConfigId kFallback{2};
constexpr FactorId kGps{1};
constexpr ProcessorId kP1{1};
constexpr ProcessorId kP2{2};

ReconfigSpec build_spec() {
  return SpecBuilder()
      .app(kNav, "navigation")
          .spec(kNavFull, "gps-aided", {.cpu = 0.4}, 200, 500)
          .spec(kNavDead, "dead-reckoning", {.cpu = 0.2}, 100, 300)
      .app(kComms, "comms")
          .spec(kCommsFull, "radio", {.cpu = 0.2}, 100, 300)
      .factor(kGps, "gps-health", 0, 1)
      .config(kNominal, "nominal").rank(1)
          .runs(kNav, kNavFull, kP1)
          .runs(kComms, kCommsFull, kP2)
      .config(kFallback, "fallback").safe()
          .runs(kNav, kNavDead, kP1)
          .runs(kComms, kCommsFull, kP2)
      .all_transitions(8)
      .dependency(kComms, kNav)
      .choose([](ConfigId, const env::EnvState& e) {
        return e.at(kGps) == 0 ? kNominal : kFallback;
      })
      .initial(kNominal)
      .dwell(5)
      .build();
}

TEST(SpecBuilder, BuildsAValidSpec) {
  const ReconfigSpec spec = build_spec();
  EXPECT_EQ(spec.apps().size(), 2u);
  EXPECT_EQ(spec.configs().size(), 2u);
  EXPECT_EQ(spec.initial_config(), kNominal);
  EXPECT_EQ(spec.dwell_frames(), 5u);
  EXPECT_EQ(spec.dependencies().all().size(), 1u);
  EXPECT_EQ(spec.transition_bound(kNominal, kFallback), Cycle{8});
  EXPECT_EQ(spec.transition_bound(kNominal, kNominal), Cycle{8});
  EXPECT_TRUE(spec.config(kFallback).safe);
  EXPECT_EQ(spec.config(kNominal).service_rank, 1);
  EXPECT_TRUE(analysis::check_coverage(spec).all_discharged());
}

TEST(SpecBuilder, BuiltSpecRunsEndToEnd) {
  const ReconfigSpec spec = build_spec();
  System system(spec);
  system.add_app(std::make_unique<support::SimpleApp>(kNav, "nav"));
  system.add_app(std::make_unique<support::SimpleApp>(kComms, "comms"));
  system.run(3);
  system.set_factor(kGps, 1);
  system.run(12);

  EXPECT_EQ(system.scram().current_config(), kFallback);
  const props::TraceReport report = props::check_trace(system.trace(), spec);
  EXPECT_EQ(report.reconfig_count, 1u);
  EXPECT_TRUE(report.all_hold()) << props::render(report);
  // The comms-waits-for-nav dependency stretches the SFTA to 5 frames.
  EXPECT_EQ(trace::duration_frames(report.verdicts[0].reconfig), 5u);
}

TEST(SpecBuilder, SpecOutsideAppRejected) {
  SpecBuilder builder;
  EXPECT_THROW(builder.spec(kNavFull, "s"), ContractViolation);
}

TEST(SpecBuilder, RunsOutsideConfigRejected) {
  SpecBuilder builder;
  EXPECT_THROW(builder.runs(kNav, kNavFull, kP1), ContractViolation);
}

TEST(SpecBuilder, SafeOutsideConfigRejected) {
  SpecBuilder builder;
  EXPECT_THROW(builder.safe(), ContractViolation);
}

TEST(SpecBuilder, BuildValidates) {
  SpecBuilder builder;
  builder.app(kNav, "nav").spec(kNavFull, "s");
  // No configs, no choose, no initial: build() must fail validation.
  EXPECT_THROW((void)builder.build(), Error);
}

TEST(SpecBuilder, InterpositionComposesWithBuilder) {
  const ReconfigSpec spec = analysis::with_safe_interposition(build_spec());
  EXPECT_NO_THROW(spec.validate());
  // Nominal -> Fallback has a safe endpoint, so routing is unchanged.
  EXPECT_EQ(spec.choose(kNominal, env::EnvState{{kGps, 1}}), kFallback);
}

}  // namespace
}  // namespace arfs::core
