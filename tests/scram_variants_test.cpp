// Tests of the two protocol variants the paper discusses beyond the
// canonical Table 1 sequence: the relaxed phase barrier (section 6.3) and
// safe-configuration interposition (section 5.3).
#include <gtest/gtest.h>

#include <memory>

#include "arfs/analysis/timing.hpp"
#include "arfs/core/system.hpp"
#include "arfs/props/report.hpp"
#include "arfs/support/simple_app.hpp"
#include "arfs/support/synthetic.hpp"
#include "arfs/trace/reconfigs.hpp"

namespace arfs::core {
namespace {

using support::ChainSpecParams;
using support::kChainSeverityFactor;
using support::make_chain_spec;
using support::SimpleApp;
using support::SimpleAppParams;
using support::synthetic_app;
using support::synthetic_config;

Cycle run_one_reconfig(const ReconfigSpec& spec, PhaseBarrier barrier,
                       const std::vector<SimpleAppParams>& app_params,
                       trace::SysTrace* out_trace = nullptr,
                       const ReconfigSpec** out_spec = nullptr) {
  (void)out_spec;
  SystemOptions options;
  options.scram.barrier = barrier;
  System system(spec, options);
  std::size_t i = 0;
  for (const AppDecl& decl : spec.apps()) {
    system.add_app(std::make_unique<SimpleApp>(
        decl.id, decl.name,
        i < app_params.size() ? app_params[i] : SimpleAppParams{}));
    ++i;
  }
  system.run(2);
  system.set_factor(kChainSeverityFactor, 1);
  system.run(40);
  const auto reconfigs = trace::get_reconfigs(system.trace());
  EXPECT_EQ(reconfigs.size(), 1u);
  if (out_trace != nullptr) *out_trace = system.trace();
  if (reconfigs.empty()) return 0;
  return trace::duration_frames(reconfigs.front());
}

TEST(RelaxedBarrier, MatchesGlobalForUniformSingleFrameStages) {
  ChainSpecParams params;
  params.configs = 2;
  params.apps = 3;
  params.transition_bound = 32;
  const ReconfigSpec spec = make_chain_spec(params);
  EXPECT_EQ(run_one_reconfig(spec, PhaseBarrier::kGlobal, {}), 4u);
  EXPECT_EQ(run_one_reconfig(spec, PhaseBarrier::kRelaxed, {}), 4u);
}

TEST(RelaxedBarrier, BeatsGlobalForStaggeredStageDurations) {
  ChainSpecParams params;
  params.configs = 2;
  params.apps = 2;
  params.transition_bound = 32;
  const ReconfigSpec spec = make_chain_spec(params);

  // App 0: slow halt; app 1: slow prepare. Under the global barrier the
  // slow stages serialize (1 + 3 + 3 + 1 = 8 frames); relaxed, each app's
  // own path is 5 frames (1 + 3+1+1).
  SimpleAppParams slow_halt;
  slow_halt.halt_frames = 3;
  SimpleAppParams slow_prepare;
  slow_prepare.prepare_frames = 3;
  const std::vector<SimpleAppParams> apps{slow_halt, slow_prepare};

  const Cycle global = run_one_reconfig(spec, PhaseBarrier::kGlobal, apps);
  const Cycle relaxed = run_one_reconfig(spec, PhaseBarrier::kRelaxed, apps);
  EXPECT_EQ(global, 8u);
  EXPECT_EQ(relaxed, 6u);
}

TEST(RelaxedBarrier, PropertiesStillHold) {
  ChainSpecParams params;
  params.configs = 3;
  params.apps = 3;
  params.transition_bound = 32;
  const ReconfigSpec spec = make_chain_spec(params);
  SimpleAppParams slow;
  slow.halt_frames = 2;
  slow.initialize_frames = 2;
  trace::SysTrace trace(1);
  run_one_reconfig(spec, PhaseBarrier::kRelaxed, {slow, {}, slow}, &trace);
  const props::TraceReport report = props::check_trace(trace, spec);
  EXPECT_TRUE(report.all_hold()) << props::render(report);
}

TEST(RelaxedBarrier, DependenciesStillEnforced) {
  ChainSpecParams params;
  params.configs = 2;
  params.apps = 2;
  params.transition_bound = 32;
  ReconfigSpec spec = make_chain_spec(params);
  spec.add_dependency(Dependency{synthetic_app(1), synthetic_app(0),
                                 DepPhase::kInitialize, std::nullopt});

  // App 0 has a 3-frame prepare, so its initialize completes at frame 5;
  // app 1 (all single-frame) must wait for it before initializing.
  SimpleAppParams slow_prepare;
  slow_prepare.prepare_frames = 3;
  const Cycle relaxed = run_one_reconfig(spec, PhaseBarrier::kRelaxed,
                                         {slow_prepare, {}});
  // App 0 path: halt f1, prepare f2-4, init f5. App 1: halt f1, prepare f2,
  // wait f3-5, init f6. Total = 7 frames (frames 0..6).
  EXPECT_EQ(relaxed, 7u);
}

TEST(RelaxedBarrier, ImmediateRetargetRewindsPastHalt) {
  ChainSpecParams params;
  params.configs = 3;
  params.apps = 2;
  params.transition_bound = 32;
  const ReconfigSpec spec = make_chain_spec(params);

  SystemOptions options;
  options.scram.barrier = PhaseBarrier::kRelaxed;
  options.scram.policy = ReconfigPolicy::kImmediate;
  System system(spec, options);
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(0), "a"));
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(1), "b"));
  system.run(2);
  system.set_factor(kChainSeverityFactor, 1);
  system.run(3);  // frame 2 signal, frame 3 halt, frame 4 prepare
  system.set_factor(kChainSeverityFactor, 2);  // mid-flight worsening
  system.run(20);

  EXPECT_EQ(system.scram().current_config(), synthetic_config(2));
  EXPECT_GE(system.scram().stats().retargets, 1u);
  const props::TraceReport report =
      props::check_trace(system.trace(), spec);
  EXPECT_TRUE(report.all_hold()) << props::render(report);
}

TEST(SafeInterposition, UnsafeToUnsafeDetoursThroughSafe) {
  // 4-level monotone chain; the safe configuration is the last. A demand
  // for unsafe config 1 is rewritten by the transform into a transition to
  // the safe config 3. The monotone chain cannot climb back from 3, so the
  // deferred demand is absorbed and the system stays safe.
  ChainSpecParams params;
  params.configs = 4;
  params.apps = 2;
  params.transition_bound = 16;
  const ReconfigSpec spec =
      analysis::with_safe_interposition(make_chain_spec(params));

  System system(spec);
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(0), "a"));
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(1), "b"));
  system.run(2);
  system.set_factor(kChainSeverityFactor, 1);  // demands unsafe config 1
  system.run(30);

  const auto reconfigs = trace::get_reconfigs(system.trace());
  ASSERT_EQ(reconfigs.size(), 1u);
  EXPECT_EQ(reconfigs[0].to, synthetic_config(3));
  EXPECT_EQ(system.scram().current_config(), synthetic_config(3));

  // SP2 holds against the transformed specification by construction.
  const props::TraceReport report = props::check_trace(system.trace(), spec);
  EXPECT_TRUE(report.all_hold()) << props::render(report);
}

TEST(SafeInterposition, ContinuesToFinalTargetWhenReachable) {
  ChainSpecParams params;
  params.configs = 4;
  params.apps = 2;
  params.transition_bound = 16;
  params.with_recovery_edges = true;  // severity dictates the level exactly
  const ReconfigSpec spec =
      analysis::with_safe_interposition(make_chain_spec(params));

  System system(spec);
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(0), "a"));
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(1), "b"));
  system.run(2);
  system.set_factor(kChainSeverityFactor, 1);
  system.run(30);

  // Stopover at safe config 3, then on to the demanded config 1 via the
  // SCRAM's completion re-evaluation.
  const auto reconfigs = trace::get_reconfigs(system.trace());
  ASSERT_EQ(reconfigs.size(), 2u);
  EXPECT_EQ(reconfigs[0].to, synthetic_config(3));
  EXPECT_EQ(reconfigs[1].to, synthetic_config(1));
  EXPECT_EQ(system.scram().current_config(), synthetic_config(1));

  const props::TraceReport report = props::check_trace(system.trace(), spec);
  EXPECT_TRUE(report.all_hold()) << props::render(report);
}

TEST(SafeInterposition, SafeEndpointsGoDirect) {
  ChainSpecParams params;
  params.configs = 3;
  params.apps = 2;
  params.transition_bound = 16;
  const ReconfigSpec base = make_chain_spec(params);
  const ReconfigSpec spec = analysis::with_safe_interposition(base);

  // A demand whose target is already safe is not rewritten.
  const env::EnvState worst{{kChainSeverityFactor, 2}};
  EXPECT_EQ(spec.choose(synthetic_config(0), worst),
            base.choose(synthetic_config(0), worst));

  System system(spec);
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(0), "a"));
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(1), "b"));
  system.run(2);
  system.set_factor(kChainSeverityFactor, 2);  // straight to the safe config
  system.run(20);

  const auto reconfigs = trace::get_reconfigs(system.trace());
  ASSERT_EQ(reconfigs.size(), 1u);
  EXPECT_EQ(reconfigs[0].to, synthetic_config(2));
}

TEST(SafeInterposition, EachHopWithinInterpositionBound) {
  ChainSpecParams params;
  params.configs = 6;
  params.apps = 2;
  params.transition_bound = 16;
  params.with_recovery_edges = true;
  const ReconfigSpec spec =
      analysis::with_safe_interposition(make_chain_spec(params));

  System system(spec);
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(0), "a"));
  system.add_app(std::make_unique<SimpleApp>(synthetic_app(1), "b"));
  system.run(2);
  for (const std::int64_t severity : {1, 2, 3}) {
    system.set_factor(kChainSeverityFactor, severity);
    system.run(25);
  }

  // Every individual hop (restriction interval) is bounded by max{T(i,s)} =
  // 16 frames — the section 5.3 claim for the interposition transform.
  const auto reconfigs = trace::get_reconfigs(system.trace());
  EXPECT_GE(reconfigs.size(), 2u);
  for (const trace::Reconfiguration& r : reconfigs) {
    EXPECT_LE(trace::duration_frames(r), 16u);
  }
  const props::TraceReport report = props::check_trace(system.trace(), spec);
  EXPECT_TRUE(report.all_hold()) << props::render(report);
}

TEST(SafeInterposition, TransformPreservesStructure) {
  const ReconfigSpec base = make_chain_spec({});
  const ReconfigSpec spec = analysis::with_safe_interposition(base);
  EXPECT_EQ(spec.configs().size(), base.configs().size());
  EXPECT_EQ(spec.apps().size(), base.apps().size());
  EXPECT_EQ(spec.initial_config(), base.initial_config());
  EXPECT_NO_THROW(spec.validate());
}

}  // namespace
}  // namespace arfs::core
