#include <gtest/gtest.h>

#include "arfs/common/check.hpp"
#include "arfs/env/electrical.hpp"
#include "arfs/env/environment.hpp"
#include "arfs/env/factor.hpp"

namespace arfs::env {
namespace {

TEST(Environment, DeclareAndGet) {
  Environment e;
  e.declare(FactorId{1}, 5);
  EXPECT_EQ(e.get(FactorId{1}), 5);
  EXPECT_TRUE(e.declared(FactorId{1}));
  EXPECT_FALSE(e.declared(FactorId{2}));
}

TEST(Environment, DoubleDeclareRejected) {
  Environment e;
  e.declare(FactorId{1}, 0);
  EXPECT_THROW(e.declare(FactorId{1}, 0), ContractViolation);
}

TEST(Environment, SetRecordsOnlyRealChanges) {
  Environment e;
  e.declare(FactorId{1}, 0);
  e.set(FactorId{1}, 0, 100);  // no-op
  EXPECT_EQ(e.change_count(), 0u);
  e.set(FactorId{1}, 2, 200);
  EXPECT_EQ(e.change_count(), 1u);
  EXPECT_EQ(e.history().size(), 1u);
}

TEST(Environment, StateAtReconstructsPastStates) {
  Environment e;
  e.declare(FactorId{1}, 0);
  e.declare(FactorId{2}, 10);
  e.set(FactorId{1}, 1, 100);
  e.set(FactorId{2}, 20, 300);

  EXPECT_EQ(e.state_at(50).at(FactorId{1}), 0);
  EXPECT_EQ(e.state_at(50).at(FactorId{2}), 10);
  EXPECT_EQ(e.state_at(100).at(FactorId{1}), 1);
  EXPECT_EQ(e.state_at(200).at(FactorId{2}), 10);
  EXPECT_EQ(e.state_at(300).at(FactorId{2}), 20);
}

TEST(Environment, HistoryMustBeTimeOrdered) {
  Environment e;
  e.declare(FactorId{1}, 0);
  e.set(FactorId{1}, 1, 100);
  EXPECT_THROW(e.set(FactorId{1}, 2, 50), ContractViolation);
}

TEST(Environment, ToStringRendersState) {
  Environment e;
  e.declare(FactorId{1}, 3);
  e.declare(FactorId{2}, 4);
  EXPECT_EQ(to_string(e.state()), "f1=3,f2=4");
}

TEST(FactorRegistry, DeclaresAndInitializes) {
  FactorRegistry reg;
  reg.declare(FactorSpec{FactorId{1}, "a", 0, 3, 1});
  reg.declare(FactorSpec{FactorId{2}, "b", 0, 1, 0});
  Environment e;
  reg.initialize(e);
  EXPECT_EQ(e.get(FactorId{1}), 1);
  EXPECT_EQ(e.get(FactorId{2}), 0);
}

TEST(FactorRegistry, RejectsBadSpecs) {
  FactorRegistry reg;
  EXPECT_THROW(reg.declare(FactorSpec{FactorId{1}, "bad", 2, 1, 1}),
               ContractViolation);  // empty domain
  EXPECT_THROW(reg.declare(FactorSpec{FactorId{1}, "bad", 0, 1, 5}),
               ContractViolation);  // initial out of range
  reg.declare(FactorSpec{FactorId{1}, "ok", 0, 1, 0});
  EXPECT_THROW(reg.declare(FactorSpec{FactorId{1}, "dup", 0, 1, 0}),
               ContractViolation);
}

TEST(FactorRegistry, EnumeratesCartesianProduct) {
  FactorRegistry reg;
  reg.declare(FactorSpec{FactorId{1}, "a", 0, 2, 0});  // 3 values
  reg.declare(FactorSpec{FactorId{2}, "b", 0, 1, 0});  // 2 values
  const auto states = reg.enumerate_states();
  EXPECT_EQ(states.size(), 6u);
  // Every state distinct.
  for (std::size_t i = 0; i < states.size(); ++i) {
    for (std::size_t j = i + 1; j < states.size(); ++j) {
      EXPECT_NE(states[i], states[j]);
    }
  }
}

TEST(FactorRegistry, EnumerationLimitGuardsExplosion) {
  FactorRegistry reg;
  reg.declare(FactorSpec{FactorId{1}, "a", 0, 999, 0});
  reg.declare(FactorSpec{FactorId{2}, "b", 0, 999, 0});
  EXPECT_THROW((void)reg.enumerate_states(1000), ContractViolation);
}

TEST(FactorMonitor, SignalsOnChangeOnly) {
  FactorRegistry reg;
  reg.declare(FactorSpec{FactorId{1}, "a", 0, 3, 0});
  Environment e;
  reg.initialize(e);
  FactorMonitor monitor(reg, FactorId{1});

  EXPECT_TRUE(monitor.sample(e, 0, 0).empty());
  e.set(FactorId{1}, 2, 100);
  const auto signals = monitor.sample(e, 1, 100);
  ASSERT_EQ(signals.size(), 1u);
  EXPECT_EQ(signals[0].old_value, 0);
  EXPECT_EQ(signals[0].new_value, 2);
  EXPECT_EQ(signals[0].cycle, 1u);
  // No further signal while the value stays put.
  EXPECT_TRUE(monitor.sample(e, 2, 200).empty());
}

TEST(FactorMonitor, UndeclaredFactorRejected) {
  FactorRegistry reg;
  EXPECT_THROW(FactorMonitor(reg, FactorId{1}), ContractViolation);
}

TEST(Electrical, PowerStateLadder) {
  ElectricalSystem es(FactorId{1});
  EXPECT_EQ(es.power_state(), PowerState::kFullPower);
  es.fail_alternator(0);
  EXPECT_EQ(es.power_state(), PowerState::kSingleAlternator);
  es.fail_alternator(1);
  EXPECT_EQ(es.power_state(), PowerState::kBatteryOnly);
  es.repair_alternator(0);
  EXPECT_EQ(es.power_state(), PowerState::kSingleAlternator);
}

TEST(Electrical, StepPublishesFactor) {
  FactorRegistry reg;
  ElectricalSystem es(FactorId{1});
  es.declare_factor(reg);
  Environment e;
  reg.initialize(e);

  es.fail_alternator(0);
  es.step(e, 10'000, 100);
  EXPECT_EQ(e.get(FactorId{1}),
            static_cast<std::int64_t>(PowerState::kSingleAlternator));
}

TEST(Electrical, BatteryDrainsToDepletion) {
  ElectricalParams params;
  params.battery_capacity_wh = 1.0;
  params.battery_drain_w = 3600.0;  // 1 Wh/s: depletes in one second
  FactorRegistry reg;
  ElectricalSystem es(FactorId{1}, params);
  es.declare_factor(reg);
  Environment e;
  reg.initialize(e);

  es.fail_alternator(0);
  es.fail_alternator(1);
  es.step(e, 500'000, 0);  // 0.5 s
  EXPECT_EQ(es.power_state(), PowerState::kBatteryOnly);
  es.step(e, 600'000, 600'000);  // past depletion
  EXPECT_EQ(es.power_state(), PowerState::kDepleted);
  EXPECT_DOUBLE_EQ(es.battery_charge_wh(), 0.0);
}

TEST(Electrical, SpareAlternatorRecharges) {
  ElectricalParams params;
  params.battery_capacity_wh = 10.0;
  params.battery_drain_w = 3600.0;
  params.battery_charge_w = 3600.0;
  FactorRegistry reg;
  ElectricalSystem es(FactorId{1}, params);
  es.declare_factor(reg);
  Environment e;
  reg.initialize(e);

  es.fail_alternator(0);
  es.fail_alternator(1);
  es.step(e, 1'000'000, 0);  // drain 1 Wh
  const double drained = es.battery_charge_wh();
  EXPECT_LT(drained, 10.0);

  es.repair_alternator(0);
  es.repair_alternator(1);
  es.step(e, 2'000'000, 2'000'000);  // charge 2 Wh, capped at capacity
  EXPECT_GT(es.battery_charge_wh(), drained);
  EXPECT_LE(es.battery_charge_wh(), 10.0);
}

TEST(Electrical, PowerStateNames) {
  EXPECT_EQ(to_string(PowerState::kFullPower), "full-power");
  EXPECT_EQ(to_string(PowerState::kDepleted), "depleted");
}

}  // namespace
}  // namespace arfs::env
