// Scale smoke: large systems through the full pipeline. These bound the
// frame cost growth and prove no hidden quadratic blowups in the SCRAM,
// trace recording, or checkers at sizes far beyond the paper's example.
#include <gtest/gtest.h>

#include <memory>

#include "arfs/core/system.hpp"
#include "arfs/props/report.hpp"
#include "arfs/support/simple_app.hpp"
#include "arfs/support/synthetic.hpp"

namespace arfs::core {
namespace {

TEST(Scale, SixtyFourAppsThousandFrames) {
  support::ChainSpecParams params;
  params.configs = 4;
  params.apps = 64;
  params.transition_bound = 16;
  const ReconfigSpec spec = support::make_chain_spec(params);

  System system(spec);
  for (std::size_t a = 0; a < params.apps; ++a) {
    system.add_app(std::make_unique<support::SimpleApp>(
        support::synthetic_app(a), "s" + std::to_string(a)));
  }
  system.run(200);
  system.set_factor(support::kChainSeverityFactor, 1);
  system.run(400);
  system.set_factor(support::kChainSeverityFactor, 3);
  system.run(400);

  EXPECT_EQ(system.stats().frames_run, 1000u);
  const props::TraceReport report = props::check_trace(system.trace(), spec);
  EXPECT_EQ(report.reconfig_count, 2u);
  EXPECT_TRUE(report.all_hold()) << props::render(report);

  // Every application accumulated work across the whole run.
  const auto& app = static_cast<support::SimpleApp&>(
      system.app(support::synthetic_app(63)));
  EXPECT_GT(app.work_count(), 900u);
}

TEST(Scale, DeepDependencyChainWideSystem) {
  support::ChainSpecParams params;
  params.configs = 2;
  params.apps = 32;
  params.transition_bound = 64;
  ReconfigSpec spec = support::make_chain_spec(params);
  // A full 31-edge initialize dependency chain: the SFTA stretches to
  // 4 + 31 = 35 frames.
  for (std::size_t a = 0; a + 1 < params.apps; ++a) {
    spec.add_dependency(Dependency{support::synthetic_app(a + 1),
                                   support::synthetic_app(a),
                                   DepPhase::kInitialize, std::nullopt});
  }

  System system(spec);
  for (std::size_t a = 0; a < params.apps; ++a) {
    system.add_app(std::make_unique<support::SimpleApp>(
        support::synthetic_app(a), "d" + std::to_string(a)));
  }
  system.run(2);
  system.set_factor(support::kChainSeverityFactor, 1);
  system.run(60);

  const auto reconfigs = trace::get_reconfigs(system.trace());
  ASSERT_EQ(reconfigs.size(), 1u);
  EXPECT_EQ(trace::duration_frames(reconfigs[0]), 35u);
  const props::TraceReport report = props::check_trace(system.trace(), spec);
  EXPECT_TRUE(report.all_hold()) << props::render(report);
}

TEST(Scale, ManyConfigsManyReconfigs) {
  support::ChainSpecParams params;
  params.configs = 32;
  params.apps = 4;
  params.transition_bound = 8;
  const ReconfigSpec spec = support::make_chain_spec(params);

  System system(spec);
  for (std::size_t a = 0; a < params.apps; ++a) {
    system.add_app(std::make_unique<support::SimpleApp>(
        support::synthetic_app(a), "c" + std::to_string(a)));
  }
  // Degrade through all 31 transitions, one at a time.
  system.run(2);
  for (std::int64_t severity = 1; severity < 32; ++severity) {
    system.set_factor(support::kChainSeverityFactor, severity);
    system.run(8);
  }

  const props::TraceReport report = props::check_trace(system.trace(), spec);
  EXPECT_EQ(report.reconfig_count, 31u);
  EXPECT_TRUE(report.all_hold()) << props::render(report);
  EXPECT_EQ(system.scram().current_config(), support::synthetic_config(31));
}

}  // namespace
}  // namespace arfs::core
