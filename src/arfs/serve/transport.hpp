// Session transports: how a serving session's records reach its client.
//
// Two implementations of one never-blocking contract:
//
//   * ShmTransport — the fast path. Owns a FrameRing (heap-backed for
//     in-process clients, file-backed for attach()-style cross-mapping
//     clients); try_send is a single ring publish, a handful of stores.
//   * StreamTransport — the fallback for remote/slow clients. Owns one end
//     of a byte stream (a socketpair fd in-process, any connected stream fd
//     in general) and writes length-prefixed frames:
//         [u32 payload_len][u64 stamp_ns][payload = encoded record][u32 crc]
//     The fd runs O_NONBLOCK; bytes the kernel will not take queue in a
//     bounded pending buffer, and once that buffer is full try_send rejects
//     the record — same skip-don't-stall semantics as a full ring.
//
// The matching client-side FrameSource hierarchy (RingSource/StreamSource)
// reverses each transport: poll() yields verified records plus the
// producer's publish stamp so callers can compute per-record latency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arfs/serve/frame_ring.hpp"
#include "arfs/serve/record.hpp"

namespace arfs::serve {

/// Server-side sender. Implementations never block the caller: a transport
/// that cannot take the record right now returns false from try_send and the
/// session skips the frame (emitting a gap record later).
class FrameTransport {
 public:
  virtual ~FrameTransport() = default;

  /// Sends one record stamped with the producer's clock. False = transport
  /// saturated, record NOT sent (caller must account a skip).
  [[nodiscard]] virtual bool try_send(const FrameRecord& record,
                                      std::uint64_t stamp_ns) = 0;

  /// Pushes previously-accepted bytes toward the client (stream transports
  /// flush their pending buffer; shm is a no-op). Never blocks.
  virtual void pump() {}

  /// Marks the stream finished. Records already accepted still drain.
  virtual void close() = 0;

  /// True when every accepted record has reached the transport's far side
  /// (ring drained / pending buffer flushed into the kernel).
  [[nodiscard]] virtual bool flushed() const = 0;

  [[nodiscard]] virtual const char* name() const = 0;
};

/// Shared-memory fast path: the transport is the ring.
class ShmTransport final : public FrameTransport {
 public:
  /// Wraps a ring the session shares with its consumer: an in-process
  /// RingSource holds the same shared_ptr; a cross-process client uses
  /// FrameRing::attach() on the ring's file instead.
  explicit ShmTransport(std::shared_ptr<FrameRing> ring);

  [[nodiscard]] bool try_send(const FrameRecord& record,
                              std::uint64_t stamp_ns) override;
  void close() override;
  [[nodiscard]] bool flushed() const override;
  [[nodiscard]] const char* name() const override { return "shm"; }

  [[nodiscard]] FrameRing& ring() { return *ring_; }
  [[nodiscard]] const std::shared_ptr<FrameRing>& shared_ring() const {
    return ring_;
  }

 private:
  std::shared_ptr<FrameRing> ring_;
};

/// Length-prefixed stream fallback over a non-blocking fd.
class StreamTransport final : public FrameTransport {
 public:
  /// Bytes on the wire per record: len(4) + stamp(8) + record + crc(4).
  static constexpr std::size_t kWireBytes = 16 + kRecordBytes;

  /// Takes ownership of `fd` (set to O_NONBLOCK). `pending_cap_bytes`
  /// bounds the in-memory queue of bytes the kernel has not yet accepted;
  /// once exceeded, try_send rejects records until the client drains.
  StreamTransport(int fd, std::size_t pending_cap_bytes = 64 * 1024);
  ~StreamTransport() override;

  [[nodiscard]] bool try_send(const FrameRecord& record,
                              std::uint64_t stamp_ns) override;
  void pump() override;
  void close() override;
  [[nodiscard]] bool flushed() const override;
  [[nodiscard]] const char* name() const override { return "socket"; }

  [[nodiscard]] std::size_t pending_bytes() const { return pending_.size(); }

 private:
  /// write() as much of pending_ as the kernel takes; EAGAIN stops, EINTR
  /// retries, a dead peer poisons the transport (send_failed_).
  void flush_pending();

  int fd_ = -1;
  std::size_t pending_cap_;
  std::vector<std::uint8_t> pending_;
  std::size_t pending_head_ = 0;  ///< Consumed prefix of pending_.
  std::uint64_t next_seq_ = 0;    ///< Seq stamped onto each accepted record.
  bool closed_ = false;
  bool send_failed_ = false;
};

/// Client-side receiver: one verified record at a time.
class FrameSource {
 public:
  virtual ~FrameSource() = default;

  enum class Poll : std::uint8_t {
    kEmpty,   ///< Nothing available right now.
    kRecord,  ///< `out` filled.
    kClosed,  ///< Stream ended; everything was drained.
  };

  struct Item {
    FrameRecord record;
    std::uint64_t stamp_ns = 0;  ///< Producer's publish stamp.
  };

  /// Non-blocking poll for the next record. Throws arfs::Error on a
  /// corrupt stream (CRC/seq violations), never returns garbage.
  [[nodiscard]] virtual Poll poll(Item& out) = 0;

  [[nodiscard]] virtual const char* name() const = 0;
};

/// Consumes a FrameRing (shared with an in-process ShmTransport, or mapped
/// via FrameRing::attach on the transport's file).
class RingSource final : public FrameSource {
 public:
  explicit RingSource(std::shared_ptr<FrameRing> ring)
      : ring_(std::move(ring)) {}

  [[nodiscard]] Poll poll(Item& out) override;
  [[nodiscard]] const char* name() const override { return "shm"; }

 private:
  std::shared_ptr<FrameRing> ring_;
};

/// Reads the length-prefixed stream from a non-blocking fd (the peer of a
/// StreamTransport). Verifies each frame's CRC before surfacing it.
class StreamSource final : public FrameSource {
 public:
  /// Takes ownership of `fd` (set to O_NONBLOCK).
  explicit StreamSource(int fd);
  ~StreamSource() override;

  [[nodiscard]] Poll poll(Item& out) override;
  [[nodiscard]] const char* name() const override { return "socket"; }

 private:
  int fd_ = -1;
  std::vector<std::uint8_t> buffer_;  ///< Bytes read, not yet framed.
  std::size_t head_ = 0;              ///< Consumed prefix of buffer_.
  bool eof_ = false;
};

}  // namespace arfs::serve
