// SimServer: the resident multi-session simulator service.
//
// The server owns a support::SystemPool of warm, checkpoint-seeded
// core::System instances and runs many concurrent *sessions* against it.
// Each session is one mission sample — session i is seeded exactly like
// sample i of a run_mission_sweep over the same factory/plan/base_seed, so
// the frame records a client receives digest bit-identically to what the
// in-process oracle computes — streamed to one client over its own
// transport (shared-memory ring fast path, length-prefixed stream
// fallback).
//
// The cardinal rule is that nothing a client does can stall the simulation
// loop. pump() advances every active session by one frame unconditionally;
// a transport that will not take the frame's record (full ring, saturated
// stream buffer) costs the client that frame — the session accounts it and
// emits an explicit gap record once capacity returns. pump_all() therefore
// terminates even against a completely stalled consumer: it runs until
// every session has *produced* its frame budget; delivery of the queued
// tail (pending gap + end record) completes later via drain() once the
// consumer comes back.
//
// Admission control: at most options.max_sessions sessions may be active at
// once — open_session throws arfs::Error beyond that — and every session's
// length is capped by options.frame_budget. Finished sessions return their
// leased system to the pool immediately, so a long serving run constructs
// about peak-concurrency systems, not one per session.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "arfs/serve/transport.hpp"
#include "arfs/support/fleet.hpp"
#include "arfs/support/sweep.hpp"

namespace arfs::serve {

enum class TransportKind : std::uint8_t {
  kShm,     ///< FrameRing fast path.
  kStream,  ///< Length-prefixed socketpair fallback.
};

[[nodiscard]] const char* to_string(TransportKind kind);

struct ServeOptions {
  /// Admission control: concurrent-session ceiling.
  std::size_t max_sessions = 1024;
  /// Frames each session runs beyond the warm point (its mission length).
  Cycle frame_budget = 64;
  /// Shared deterministic prefix, warmed once per pooled system.
  Cycle warmup_frames = 0;
  /// Sweep-compatible seeding root: session i uses job_seed(base_seed, i).
  std::uint64_t base_seed = 1;
  /// Ring geometry for shm sessions.
  std::uint32_t ring_slot_count = 64;
  std::uint32_t ring_slot_bytes = 128;
  /// Consumer-side reclaim watermark for file-backed rings (bytes).
  std::size_t ring_reclaim_watermark = 0;
  /// When set, shm rings are file-backed under this directory
  /// ("<dir>/session-<id>.ring") so out-of-process clients can attach.
  std::string shm_dir;
  /// Pending-buffer cap for stream sessions (bytes).
  std::size_t stream_pending_cap = 64 * 1024;
};

/// What one session did, as the producer saw it.
struct SessionReport {
  std::uint64_t id = 0;
  std::size_t index = 0;          ///< Sweep-equivalent sample index.
  std::uint64_t seed = 0;         ///< job_seed(base_seed, index).
  TransportKind transport = TransportKind::kShm;
  std::uint64_t frames_produced = 0;  ///< run_frame calls (never skipped).
  std::uint64_t frames_streamed = 0;  ///< Frame records the client got.
  std::uint64_t frames_skipped = 0;   ///< Frames lost to backpressure.
  std::uint64_t gap_records = 0;      ///< Explicit gaps emitted.
  /// fold_record over every produced frame, delivered or skipped — equals
  /// the oracle's digest for sample `index` unconditionally.
  std::uint64_t producer_digest = 0;
  bool end_sent = false;   ///< End record reached the transport.
  bool completed = false;  ///< End sent and every accepted byte flushed.
};

class SimServer {
 public:
  /// The factory/plan pair is the same contract run_fleet_missions takes:
  /// `factory` deterministically builds one mission, `plan_for(seed)` is a
  /// pure function of the seed with events at or after the warm point.
  SimServer(support::MissionFactory factory, support::PlanFactory plan_for,
            ServeOptions options);
  ~SimServer();

  /// A freshly-admitted session, from the client's point of view.
  struct Opened {
    std::uint64_t id = 0;
    std::uint64_t seed = 0;
    /// In-process client endpoint (RingSource / StreamSource), always set.
    std::unique_ptr<FrameSource> source;
    /// Ring file an out-of-process client can FrameRing::attach() — only
    /// for shm sessions under a shm_dir.
    std::string ring_path;
  };

  /// Admits one session on `kind`'s transport, leasing a warm system and
  /// installing the next sweep index's fault plan. Throws arfs::Error when
  /// max_sessions are already active (admission control).
  [[nodiscard]] Opened open_session(TransportKind kind);

  /// Advances every active session by one frame (run_frame is NEVER gated
  /// on the client). Returns the number of sessions still producing.
  std::size_t pump();

  /// Pumps until every active session has produced its full frame budget.
  /// Terminates against arbitrarily stalled consumers — delivery of queued
  /// records is drain()'s job, not this one's.
  void pump_all();

  /// Retries queued deliveries (pending gaps, end records, stream buffer
  /// flushes) for sessions that finished producing. Returns true when every
  /// such session is fully flushed (its report is then `completed`).
  bool drain();

  /// Active = admitted and not yet fully delivered.
  [[nodiscard]] std::size_t active_sessions() const { return sessions_.size(); }
  [[nodiscard]] std::size_t sessions_opened() const { return next_index_; }
  [[nodiscard]] std::size_t sessions_rejected() const { return rejected_; }

  /// Report for any session this server admitted (active or finished).
  [[nodiscard]] const SessionReport& report(std::uint64_t id) const;

  [[nodiscard]] const ServeOptions& options() const { return options_; }
  [[nodiscard]] support::SystemPool::Stats pool_stats() const {
    return pool_.stats();
  }

 private:
  struct Session;

  /// One production step: run the frame, fold it, try to deliver (gap
  /// first, then the frame). Precondition: session still has budget.
  void pump_session(Session& session);
  /// Delivery-only step for a session past its budget: pending gap, end
  /// record, transport flush; releases the lease once the end is accepted.
  void drain_session(Session& session);

  ServeOptions options_;
  support::PlanFactory plan_for_;
  support::SystemPool pool_;
  std::map<std::uint64_t, std::unique_ptr<Session>> sessions_;
  std::map<std::uint64_t, SessionReport> reports_;
  std::uint64_t next_id_ = 1;
  std::size_t next_index_ = 0;
  std::size_t rejected_ = 0;
};

/// Monotonic nanosecond stamp used for per-record latency measurement
/// (steady_clock; shared by server publish and client receive sides).
[[nodiscard]] std::uint64_t monotonic_ns();

}  // namespace arfs::serve
