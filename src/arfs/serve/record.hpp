// Frame-stream records.
//
// A serving session streams one record per published event to its client:
// frame records carry the mission's deterministic per-frame telemetry, gap
// records make skipped frames explicit (a slow consumer loses frames, never
// silently), and the end record closes the stream with the producer's own
// totals so a client can audit what it received against what was produced.
//
// Determinism contract: a frame record is a pure function of the System's
// state at the end of the frame, and fold_record() folds exactly the fields
// every execution mode shares — so the digest of a streamed session equals
// the digest an in-process run_mission_sweep oracle computes over the same
// mission, bit for bit, regardless of transport. Transport-only metadata
// (sequence numbers, latency stamps, CRCs) deliberately stays out of the
// fold.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arfs/common/types.hpp"

namespace arfs::core {
class System;
}

namespace arfs::serve {

enum class RecordKind : std::uint32_t {
  kFrame = 1,  ///< One mission frame's telemetry.
  kGap = 2,    ///< `data0` frames starting at `frame` were skipped.
  kEnd = 3,    ///< Stream close: producer totals + producer digest.
};

[[nodiscard]] const char* to_string(RecordKind kind);

/// One streamed record. The payload words are kind-specific:
///   kFrame: data0 = System::digest() at end of frame,
///           data1 = cumulative frames_run,
///           data2 = (reconfigs_completed << 32) | region_relocations;
///   kGap:   frame = first skipped mission frame, data0 = skipped count;
///   kEnd:   data0 = frames produced, data1 = frames skipped,
///           data2 = the producer's running digest (fold_record over every
///           frame it produced, delivered or skipped).
struct FrameRecord {
  RecordKind kind = RecordKind::kFrame;
  std::uint64_t seq = 0;    ///< Contiguous per-session record index.
  std::uint64_t frame = 0;  ///< Mission frame the record describes.
  std::uint64_t data0 = 0;
  std::uint64_t data1 = 0;
  std::uint64_t data2 = 0;
};

/// Fixed wire size of an encoded record (little-endian, 8-byte tail pad).
constexpr std::size_t kRecordBytes = 48;

/// Appends the record's wire encoding to `out` (exactly kRecordBytes).
void encode_record(std::vector<std::uint8_t>& out, const FrameRecord& record);

/// Decodes a record from `n` bytes at `data`. Returns false when the bytes
/// are short or the kind is unknown.
[[nodiscard]] bool decode_record(const std::uint8_t* data, std::size_t n,
                                 FrameRecord& out);

/// Builds the frame record for `system` standing at the end of mission
/// frame `frame`. Deterministic: both the serving session and the
/// in-process oracle call this, so their records are bit-identical.
[[nodiscard]] FrameRecord make_frame_record(const core::System& system,
                                            Cycle frame);

/// FNV-1a basis shared with the fleet report digests.
constexpr std::uint64_t kDigestBasis = 0xCBF29CE484222325ULL;

/// Folds one record into a running FNV-1a digest: kind, frame, and the
/// three payload words — never seq, stamps, or CRCs (transport metadata
/// must not move the digest).
void fold_record(std::uint64_t& digest, const FrameRecord& record);

}  // namespace arfs::serve
