#include "arfs/serve/record.hpp"

#include <cstring>

#include "arfs/core/system.hpp"

namespace arfs::serve {

namespace {

void put_u32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

void put_u64(std::uint8_t* out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* in) {
  return static_cast<std::uint64_t>(get_u32(in)) |
         (static_cast<std::uint64_t>(get_u32(in + 4)) << 32);
}

}  // namespace

const char* to_string(RecordKind kind) {
  switch (kind) {
    case RecordKind::kFrame:
      return "frame";
    case RecordKind::kGap:
      return "gap";
    case RecordKind::kEnd:
      return "end";
  }
  return "unknown";
}

void encode_record(std::vector<std::uint8_t>& out, const FrameRecord& record) {
  const std::size_t at = out.size();
  out.resize(at + kRecordBytes);
  std::uint8_t* p = out.data() + at;
  put_u32(p, static_cast<std::uint32_t>(record.kind));
  put_u32(p + 4, 0);  // reserved
  put_u64(p + 8, record.seq);
  put_u64(p + 16, record.frame);
  put_u64(p + 24, record.data0);
  put_u64(p + 32, record.data1);
  put_u64(p + 40, record.data2);
}

bool decode_record(const std::uint8_t* data, std::size_t n, FrameRecord& out) {
  if (n < kRecordBytes) return false;
  const std::uint32_t kind = get_u32(data);
  if (kind != static_cast<std::uint32_t>(RecordKind::kFrame) &&
      kind != static_cast<std::uint32_t>(RecordKind::kGap) &&
      kind != static_cast<std::uint32_t>(RecordKind::kEnd)) {
    return false;
  }
  out.kind = static_cast<RecordKind>(kind);
  out.seq = get_u64(data + 8);
  out.frame = get_u64(data + 16);
  out.data0 = get_u64(data + 24);
  out.data1 = get_u64(data + 32);
  out.data2 = get_u64(data + 40);
  return true;
}

FrameRecord make_frame_record(const core::System& system, Cycle frame) {
  const core::SystemStats& stats = system.stats();
  FrameRecord record;
  record.kind = RecordKind::kFrame;
  record.frame = frame;
  record.data0 = system.digest();
  record.data1 = stats.frames_run;
  record.data2 = (system.scram().stats().reconfigs_completed << 32) |
                 (stats.region_relocations & 0xFFFFFFFFULL);
  return record;
}

void fold_record(std::uint64_t& digest, const FrameRecord& record) {
  constexpr std::uint64_t kPrime = 0x100000001B3ULL;
  const auto mix = [&](std::uint64_t v) {
    digest ^= v;
    digest *= kPrime;
  };
  mix(static_cast<std::uint64_t>(record.kind));
  mix(record.frame);
  mix(record.data0);
  mix(record.data1);
  mix(record.data2);
}

}  // namespace arfs::serve
