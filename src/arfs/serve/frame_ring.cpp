#include "arfs/serve/frame_ring.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstring>

#include "arfs/common/check.hpp"
#include "arfs/storage/durable/wire.hpp"

namespace arfs::serve {

namespace {

constexpr std::size_t kPublishedOffset = 64;
constexpr std::size_t kConsumedOffset = 128;
constexpr std::size_t kClosedOffset = 192;

std::uint32_t round_pow2(std::uint32_t v) {
  std::uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

std::atomic_ref<std::uint64_t> word64(std::uint8_t* base, std::size_t off) {
  return std::atomic_ref<std::uint64_t>(
      *reinterpret_cast<std::uint64_t*>(base + off));
}

std::atomic_ref<std::uint32_t> word32(std::uint8_t* base, std::size_t off) {
  return std::atomic_ref<std::uint32_t>(
      *reinterpret_cast<std::uint32_t*>(base + off));
}

void put_u32_raw(std::uint8_t* out, std::uint32_t v) {
  std::memcpy(out, &v, sizeof v);
}

void put_u64_raw(std::uint8_t* out, std::uint64_t v) {
  std::memcpy(out, &v, sizeof v);
}

std::uint32_t get_u32_raw(const std::uint8_t* in) {
  std::uint32_t v;
  std::memcpy(&v, in, sizeof v);
  return v;
}

std::uint64_t get_u64_raw(const std::uint8_t* in) {
  std::uint64_t v;
  std::memcpy(&v, in, sizeof v);
  return v;
}

}  // namespace

std::unique_ptr<FrameRing> FrameRing::create(RingOptions options) {
  auto ring = std::unique_ptr<FrameRing>(new FrameRing());
  ring->path_ = options.path;
  ring->slot_bytes_ =
      static_cast<std::uint32_t>((options.slot_bytes + 7u) & ~7u);
  require(ring->slot_bytes_ >= kSlotHeaderBytes + kRecordBytes,
          "ring slot too small for a record");
  ring->slot_count_ = round_pow2(options.slot_count < 2 ? 2 : options.slot_count);
  ring->reclaim_watermark_ = options.reclaim_watermark_bytes;
  ring->map_and_validate(/*create=*/true);
  return ring;
}

std::unique_ptr<FrameRing> FrameRing::attach(
    const std::string& path, std::size_t reclaim_watermark_bytes) {
  auto ring = std::unique_ptr<FrameRing>(new FrameRing());
  ring->path_ = path;
  ring->reclaim_watermark_ = reclaim_watermark_bytes;
  ring->map_and_validate(/*create=*/false);
  return ring;
}

void FrameRing::map_and_validate(bool create) {
  const long page = ::sysconf(_SC_PAGESIZE);
  if (page > 0) page_ = static_cast<std::size_t>(page);
  // Reclaim drops only whole pages strictly inside the consumed span, and
  // the slot area starts page-misaligned (kSlotsOffset). A span shorter
  // than two pages can therefore contain no full page at all, so a smaller
  // watermark would trigger reclaims that never free anything.
  if (reclaim_watermark_ > 0 && reclaim_watermark_ < 2 * page_) {
    reclaim_watermark_ = 2 * page_;
  }

  if (path_.empty()) {
    require(create, "an in-memory ring cannot be attached");
    mapping_bytes_ =
        kSlotsOffset + static_cast<std::size_t>(slot_bytes_) * slot_count_;
    heap_ = std::make_unique<std::uint8_t[]>(mapping_bytes_);
    base_ = heap_.get();
    std::memset(base_, 0, mapping_bytes_);
  } else if (create) {
    mapping_bytes_ =
        kSlotsOffset + static_cast<std::size_t>(slot_bytes_) * slot_count_;
    mapping_bytes_ = (mapping_bytes_ + page_ - 1) & ~(page_ - 1);
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fd_ < 0) throw Error("cannot create ring file " + path_);
    if (::ftruncate(fd_, static_cast<off_t>(mapping_bytes_)) != 0) {
      ::close(fd_);
      fd_ = -1;
      throw Error("cannot size ring file " + path_);
    }
    void* mapped = ::mmap(nullptr, mapping_bytes_, PROT_READ | PROT_WRITE,
                          MAP_SHARED, fd_, 0);
    if (mapped == MAP_FAILED) {
      ::close(fd_);
      fd_ = -1;
      throw Error("cannot map ring file " + path_);
    }
    base_ = static_cast<std::uint8_t*>(mapped);
  } else {
    fd_ = ::open(path_.c_str(), O_RDWR);
    if (fd_ < 0) throw Error("cannot open ring file " + path_);
    struct stat st{};
    if (::fstat(fd_, &st) != 0 ||
        static_cast<std::size_t>(st.st_size) < kSlotsOffset) {
      ::close(fd_);
      fd_ = -1;
      throw Error(path_ + " is not a frame ring (too short)");
    }
    mapping_bytes_ = static_cast<std::size_t>(st.st_size);
    void* mapped = ::mmap(nullptr, mapping_bytes_, PROT_READ | PROT_WRITE,
                          MAP_SHARED, fd_, 0);
    if (mapped == MAP_FAILED) {
      ::close(fd_);
      fd_ = -1;
      throw Error("cannot map ring file " + path_);
    }
    base_ = static_cast<std::uint8_t*>(mapped);
  }

  if (create) {
    put_u64_raw(base_, kMagic);
    put_u32_raw(base_ + 8, kVersion);
    put_u32_raw(base_ + 12, slot_bytes_);
    put_u32_raw(base_ + 16, slot_count_);
    put_u32_raw(base_ + 20, 0);
    return;
  }
  if (get_u64_raw(base_) != kMagic || get_u32_raw(base_ + 8) != kVersion) {
    throw Error(path_ + " is not a frame ring (bad header)");
  }
  slot_bytes_ = get_u32_raw(base_ + 12);
  slot_count_ = get_u32_raw(base_ + 16);
  if (slot_bytes_ < kSlotHeaderBytes + kRecordBytes || slot_count_ < 2 ||
      (slot_count_ & (slot_count_ - 1)) != 0 ||
      kSlotsOffset + static_cast<std::size_t>(slot_bytes_) * slot_count_ >
          mapping_bytes_) {
    throw Error(path_ + " is not a frame ring (bad geometry)");
  }
  reclaim_from_ = word64(base_, kConsumedOffset).load(std::memory_order_relaxed);
}

FrameRing::~FrameRing() {
  if (base_ != nullptr && fd_ >= 0) ::munmap(base_, mapping_bytes_);
  if (fd_ >= 0) ::close(fd_);
}

bool FrameRing::try_publish(const FrameRecord& record,
                            std::uint64_t stamp_ns) {
  const std::uint64_t pub =
      word64(base_, kPublishedOffset).load(std::memory_order_relaxed);
  const std::uint64_t cons =
      word64(base_, kConsumedOffset).load(std::memory_order_acquire);
  if (pub - cons >= slot_count_) {
    ++stats_.publish_fails;
    return false;
  }
  std::uint8_t* slot = base_ + kSlotsOffset +
                       static_cast<std::size_t>(pub & (slot_count_ - 1)) *
                           slot_bytes_;
  FrameRecord stamped = record;
  stamped.seq = pub;
  std::vector<std::uint8_t> bytes;
  bytes.reserve(kRecordBytes);
  encode_record(bytes, stamped);
  put_u64_raw(slot, pub);
  put_u64_raw(slot + 8, stamp_ns);
  put_u32_raw(slot + 16,
              storage::durable::crc32(bytes.data(), bytes.size()));
  put_u32_raw(slot + 20, static_cast<std::uint32_t>(bytes.size()));
  std::memcpy(slot + kSlotHeaderBytes, bytes.data(), bytes.size());
  word64(base_, kPublishedOffset).store(pub + 1, std::memory_order_release);
  ++stats_.published;
  return true;
}

void FrameRing::close() {
  word32(base_, kClosedOffset).store(1, std::memory_order_release);
}

FrameRing::Consume FrameRing::try_consume(Delivered& out) {
  const std::uint64_t cons =
      word64(base_, kConsumedOffset).load(std::memory_order_relaxed);
  const std::uint64_t pub =
      word64(base_, kPublishedOffset).load(std::memory_order_acquire);
  if (cons == pub) {
    return word32(base_, kClosedOffset).load(std::memory_order_acquire) != 0
               ? Consume::kClosed
               : Consume::kEmpty;
  }
  const std::uint8_t* slot = base_ + kSlotsOffset +
                             static_cast<std::size_t>(cons & (slot_count_ - 1)) *
                                 slot_bytes_;
  const std::uint64_t seq = get_u64_raw(slot);
  if (seq != cons) {
    throw Error("frame ring corrupt: slot seq " + std::to_string(seq) +
                " where " + std::to_string(cons) + " expected");
  }
  const std::uint32_t crc = get_u32_raw(slot + 16);
  const std::uint32_t len = get_u32_raw(slot + 20);
  if (len != kRecordBytes ||
      len > slot_bytes_ - kSlotHeaderBytes ||
      storage::durable::crc32(slot + kSlotHeaderBytes, len) != crc) {
    throw Error("frame ring corrupt: CRC mismatch at seq " +
                std::to_string(cons));
  }
  if (!decode_record(slot + kSlotHeaderBytes, len, out.record)) {
    throw Error("frame ring corrupt: undecodable record at seq " +
                std::to_string(cons));
  }
  out.stamp_ns = get_u64_raw(slot + 8);
  word64(base_, kConsumedOffset).store(cons + 1, std::memory_order_release);
  ++stats_.consumed;
  if (reclaim_watermark_ > 0 && fd_ >= 0 &&
      (cons + 1 - reclaim_from_) * slot_bytes_ >= reclaim_watermark_) {
    reclaim_consumed(cons + 1);
  }
  return Consume::kRecord;
}

void FrameRing::reclaim_consumed(std::uint64_t upto_seq) {
  // Drop the pages of the drained span [reclaim_from_, upto_seq), splitting
  // at the ring wrap. Spans are msync(MS_ASYNC)ed first so a file-backed
  // page that refaults (the producer rewrites slots on wrap) always reads
  // back what was last written — the MappedArena write-back discipline.
  const auto drop = [&](std::uint64_t first, std::uint64_t count) {
    if (count == 0) return;
    const std::size_t begin =
        kSlotsOffset +
        static_cast<std::size_t>(first & (slot_count_ - 1)) * slot_bytes_;
    const std::size_t end = begin + static_cast<std::size_t>(count) * slot_bytes_;
    // Page-align inward: never touch a page a live slot shares.
    const std::size_t lo = (begin + page_ - 1) & ~(page_ - 1);
    const std::size_t hi = end & ~(page_ - 1);
    if (lo >= hi) return;
    ::msync(base_ + lo, hi - lo, MS_ASYNC);
    ::madvise(base_ + lo, hi - lo, MADV_DONTNEED);
    ++stats_.reclaims;
    stats_.reclaimed_bytes += hi - lo;
  };
  std::uint64_t first = reclaim_from_;
  const std::uint64_t mask = slot_count_ - 1;
  while (first < upto_seq) {
    // Run to the wrap boundary or the span end, whichever is closer.
    const std::uint64_t to_wrap = slot_count_ - (first & mask);
    const std::uint64_t count = std::min<std::uint64_t>(to_wrap,
                                                        upto_seq - first);
    drop(first, count);
    first += count;
  }
  reclaim_from_ = upto_seq;
}

std::uint64_t FrameRing::published() const {
  return word64(const_cast<std::uint8_t*>(base_), kPublishedOffset)
      .load(std::memory_order_acquire);
}

std::uint64_t FrameRing::consumed() const {
  return word64(const_cast<std::uint8_t*>(base_), kConsumedOffset)
      .load(std::memory_order_acquire);
}

bool FrameRing::closed() const {
  return word32(const_cast<std::uint8_t*>(base_), kClosedOffset)
             .load(std::memory_order_acquire) != 0;
}

std::uint32_t FrameRing::free_slots() const {
  const std::uint64_t pub = published();
  const std::uint64_t cons = consumed();
  return slot_count_ - static_cast<std::uint32_t>(pub - cons);
}

}  // namespace arfs::serve
