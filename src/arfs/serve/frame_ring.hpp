// Lock-free SPSC shared-memory frame ring.
//
// The fast path of the serving layer: one producer (the simulator pump)
// publishes fixed-size frame slots into a ring that one consumer (the
// session's client, same process or another via a file-backed mapping)
// drains without ever making the producer wait. The protocol is the classic
// single-producer/single-consumer pair of monotone cursors:
//
//   * `published` — owned by the producer; slots [consumed, published) hold
//     live records. A publish writes the whole slot (record bytes, latency
//     stamp, CRC32 over the record, its sequence number), then advances
//     `published` with a release store.
//   * `consumed` — owned by the consumer; advanced with a release store
//     after the slot's CRC and sequence have been verified.
//
// A full ring rejects the publish (`try_publish` returns false) — the
// caller skips the frame and later emits an explicit gap record; nothing in
// this layer ever blocks. Slot headers are seq/CRC-guarded in the style of
// storage::MappedArena chunks: a consumer (even one attaching to the file
// after the fact) re-verifies every slot and surfaces corruption as a clean
// arfs::Error, never UB.
//
// With a path the ring lives in a file-backed shared mapping (create() once
// on the serving side, attach() from any other mapping of the same file);
// cross-mapping cursor handshakes go through std::atomic_ref on the mapped
// words. Consumed spans can be reclaimed MappedArena-style: once the
// consumer has drained `reclaim_watermark_bytes`, the span's pages are
// msync(MS_ASYNC)ed and MADV_DONTNEEDed, so a long-lived session's resident
// set is bounded by the in-flight window, not the ring size. Without a path
// the ring is heap-backed with identical layout and semantics (in-process
// sessions, tests).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "arfs/serve/record.hpp"

namespace arfs::serve {

struct RingOptions {
  /// Backing file; empty = heap-backed (single-process sessions).
  std::string path;
  /// Bytes per slot, header included; rounded up to a multiple of 8. Must
  /// hold kSlotHeaderBytes + kRecordBytes.
  std::uint32_t slot_bytes = 128;
  /// Slot count; rounded up to a power of two (cursor masking).
  std::uint32_t slot_count = 64;
  /// Consumer-side reclaim watermark: after this many consumed slot bytes,
  /// the drained span is msync(MS_ASYNC)ed and its pages dropped with
  /// MADV_DONTNEED (file-backed mappings only). 0 disables reclaim.
  std::size_t reclaim_watermark_bytes = 0;
};

struct RingStats {
  std::uint64_t published = 0;      ///< Records published.
  std::uint64_t consumed = 0;       ///< Records consumed by this endpoint.
  std::uint64_t publish_fails = 0;  ///< try_publish rejections (ring full).
  std::uint64_t reclaims = 0;       ///< Consumed-span reclaim batches.
  std::uint64_t reclaimed_bytes = 0;  ///< Bytes handed to MADV_DONTNEED.
};

class FrameRing {
 public:
  /// Creates a ring: file-backed shared mapping when options.path is set
  /// (the file is created/truncated to the ring size), heap-backed
  /// otherwise. Throws arfs::Error when the file cannot be created.
  [[nodiscard]] static std::unique_ptr<FrameRing> create(RingOptions options);

  /// Maps an existing ring file (the consumer side of a cross-process
  /// session). Throws arfs::Error when the file is missing or its header
  /// does not scan as a ring.
  [[nodiscard]] static std::unique_ptr<FrameRing> attach(
      const std::string& path, std::size_t reclaim_watermark_bytes = 0);

  ~FrameRing();
  FrameRing(const FrameRing&) = delete;
  FrameRing& operator=(const FrameRing&) = delete;

  // --- producer side ---

  /// Publishes one record with its latency stamp. Returns false when the
  /// ring is full — the caller must treat the frame as skipped; this call
  /// never waits for the consumer.
  [[nodiscard]] bool try_publish(const FrameRecord& record,
                                 std::uint64_t stamp_ns);

  /// Marks the stream closed (no further publishes). Consumers drain the
  /// remaining slots and then observe kClosed.
  void close();

  // --- consumer side ---

  enum class Consume : std::uint8_t {
    kEmpty,   ///< Nothing published yet; poll again.
    kRecord,  ///< `out` holds the next record.
    kClosed,  ///< Producer closed and everything was drained.
  };

  struct Delivered {
    FrameRecord record;
    std::uint64_t stamp_ns = 0;  ///< Producer's publish stamp.
  };

  /// Consumes the next record, verifying its sequence number and CRC32.
  /// Throws arfs::Error on a corrupt slot (bad CRC or out-of-order seq).
  [[nodiscard]] Consume try_consume(Delivered& out);

  // --- observers (either side) ---

  [[nodiscard]] std::uint64_t published() const;
  [[nodiscard]] std::uint64_t consumed() const;
  [[nodiscard]] bool closed() const;
  /// Slots currently free for the producer.
  [[nodiscard]] std::uint32_t free_slots() const;
  [[nodiscard]] std::uint32_t slot_count() const { return slot_count_; }
  [[nodiscard]] std::uint32_t slot_bytes() const { return slot_bytes_; }
  [[nodiscard]] bool file_backed() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const RingStats& stats() const { return stats_; }

  // On-disk constants (shared with `arfsctl session`).
  static constexpr std::uint64_t kMagic = 0x31474E5253465241ULL;  // "ARFSRNG1"
  static constexpr std::uint32_t kVersion = 1;
  /// seq(8) stamp(8) crc32(4) len(4) = 24 bytes ahead of the record.
  static constexpr std::size_t kSlotHeaderBytes = 24;
  /// Header words: magic/geometry at 0, published at 64, consumed at 128,
  /// closed at 192, slots from 256 — cursor words on their own cache lines.
  static constexpr std::size_t kSlotsOffset = 256;

 private:
  FrameRing() = default;
  void map_and_validate(bool create);
  void reclaim_consumed(std::uint64_t upto_seq);

  std::string path_;
  int fd_ = -1;
  std::uint8_t* base_ = nullptr;
  std::size_t mapping_bytes_ = 0;
  std::unique_ptr<std::uint8_t[]> heap_;
  std::uint32_t slot_bytes_ = 0;
  std::uint32_t slot_count_ = 0;
  std::size_t reclaim_watermark_ = 0;
  std::uint64_t reclaim_from_ = 0;  ///< First seq not yet reclaimed.
  std::size_t page_ = 4096;
  RingStats stats_;
};

}  // namespace arfs::serve
