#include "arfs/serve/transport.hpp"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "arfs/common/check.hpp"
#include "arfs/storage/durable/wire.hpp"

namespace arfs::serve {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    throw Error("cannot set O_NONBLOCK on stream fd");
  }
}

void put_u32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

void put_u64(std::uint8_t* out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* in) {
  return static_cast<std::uint64_t>(get_u32(in)) |
         (static_cast<std::uint64_t>(get_u32(in + 4)) << 32);
}

}  // namespace

// --- ShmTransport ---

ShmTransport::ShmTransport(std::shared_ptr<FrameRing> ring)
    : ring_(std::move(ring)) {
  require(ring_ != nullptr, "ShmTransport needs a ring");
}

bool ShmTransport::try_send(const FrameRecord& record,
                            std::uint64_t stamp_ns) {
  return ring_->try_publish(record, stamp_ns);
}

void ShmTransport::close() { ring_->close(); }

bool ShmTransport::flushed() const {
  return ring_->consumed() == ring_->published();
}

// --- StreamTransport ---

StreamTransport::StreamTransport(int fd, std::size_t pending_cap_bytes)
    : fd_(fd), pending_cap_(pending_cap_bytes) {
  require(fd_ >= 0, "StreamTransport needs an open fd");
  set_nonblocking(fd_);
}

StreamTransport::~StreamTransport() {
  if (fd_ >= 0) ::close(fd_);
}

bool StreamTransport::try_send(const FrameRecord& record,
                               std::uint64_t stamp_ns) {
  if (closed_ || send_failed_) return false;
  flush_pending();
  if (pending_.size() - pending_head_ + kWireBytes > pending_cap_) {
    return false;  // client is not draining; skip, don't stall
  }
  // Seq is assigned at accept time, exactly like the ring's publish cursor:
  // rejected records take no seq, so the client-visible sequence stays
  // contiguous across skips.
  FrameRecord stamped = record;
  stamped.seq = next_seq_++;
  std::vector<std::uint8_t> payload;
  payload.reserve(kRecordBytes);
  encode_record(payload, stamped);
  std::uint8_t head[16];
  put_u32(head, static_cast<std::uint32_t>(payload.size()));
  put_u64(head + 4, stamp_ns);
  put_u32(head + 12, storage::durable::crc32(payload.data(), payload.size()));
  pending_.insert(pending_.end(), head, head + sizeof head);
  pending_.insert(pending_.end(), payload.begin(), payload.end());
  flush_pending();
  return !send_failed_;
}

void StreamTransport::pump() {
  if (!send_failed_) flush_pending();
  if (closed_ && flushed() && fd_ >= 0) {
    ::close(fd_);  // EOF signals end-of-stream to the source
    fd_ = -1;
  }
}

void StreamTransport::close() {
  closed_ = true;
  pump();
}

bool StreamTransport::flushed() const {
  return send_failed_ || pending_head_ == pending_.size();
}

void StreamTransport::flush_pending() {
  while (pending_head_ < pending_.size() && fd_ >= 0) {
    const ssize_t n = ::write(fd_, pending_.data() + pending_head_,
                              pending_.size() - pending_head_);
    if (n > 0) {
      pending_head_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    send_failed_ = true;  // peer gone (EPIPE & co.): poison, never throw
    break;
  }
  if (pending_head_ == pending_.size()) {
    pending_.clear();
    pending_head_ = 0;
  } else if (pending_head_ >= 4096) {
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(pending_head_));
    pending_head_ = 0;
  }
}

// --- RingSource ---

FrameSource::Poll RingSource::poll(Item& out) {
  FrameRing::Delivered delivered;
  switch (ring_->try_consume(delivered)) {
    case FrameRing::Consume::kEmpty:
      return Poll::kEmpty;
    case FrameRing::Consume::kClosed:
      return Poll::kClosed;
    case FrameRing::Consume::kRecord:
      out.record = delivered.record;
      out.stamp_ns = delivered.stamp_ns;
      return Poll::kRecord;
  }
  return Poll::kEmpty;
}

// --- StreamSource ---

StreamSource::StreamSource(int fd) : fd_(fd) {
  require(fd_ >= 0, "StreamSource needs an open fd");
  set_nonblocking(fd_);
}

StreamSource::~StreamSource() {
  if (fd_ >= 0) ::close(fd_);
}

FrameSource::Poll StreamSource::poll(Item& out) {
  // Frame whatever is already buffered before touching the fd again.
  for (;;) {
    const std::size_t avail = buffer_.size() - head_;
    if (avail >= 16) {
      const std::uint8_t* p = buffer_.data() + head_;
      const std::uint32_t len = get_u32(p);
      if (len != kRecordBytes) {
        throw Error("stream corrupt: record length " + std::to_string(len));
      }
      if (avail >= 16 + len) {
        const std::uint64_t stamp = get_u64(p + 4);
        const std::uint32_t crc = get_u32(p + 12);
        if (storage::durable::crc32(p + 16, len) != crc) {
          throw Error("stream corrupt: CRC mismatch");
        }
        if (!decode_record(p + 16, len, out.record)) {
          throw Error("stream corrupt: undecodable record");
        }
        out.stamp_ns = stamp;
        head_ += 16 + len;
        if (head_ == buffer_.size()) {
          buffer_.clear();
          head_ = 0;
        } else if (head_ >= 4096) {
          buffer_.erase(buffer_.begin(),
                        buffer_.begin() + static_cast<std::ptrdiff_t>(head_));
          head_ = 0;
        }
        return Poll::kRecord;
      }
    }
    if (eof_) {
      if (buffer_.size() != head_) {
        throw Error("stream corrupt: truncated trailing record");
      }
      return Poll::kClosed;
    }
    std::uint8_t chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n > 0) {
      buffer_.insert(buffer_.end(), chunk, chunk + n);
      continue;
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Poll::kEmpty;
    throw Error("stream read failed: " + std::string(std::strerror(errno)));
  }
}

}  // namespace arfs::serve
