// SessionClient: the auditing consumer of one serving session.
//
// Wraps a FrameSource (ring or stream) and verifies the full delivery
// contract while draining it: record sequence numbers must be contiguous
// from 0, the mission frames covered by frame and gap records must tile the
// session's frame range without holes or overlaps, and the end record's
// producer totals must match what was actually delivered. The client folds
// its own digest over the frame records it received; when nothing was
// skipped it equals the producer digest (and hence the in-process oracle's
// digest for the same sample) bit for bit.
//
// Per-record latency — receive time minus the producer's publish stamp —
// is handed to an optional sink so load benchmarks can build percentile
// histograms without this layer choosing a representation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "arfs/serve/record.hpp"
#include "arfs/serve/transport.hpp"

namespace arfs::serve {

/// What the client saw, checked against what the producer said it sent.
struct ClientReport {
  std::uint64_t records = 0;      ///< All records (frames + gaps + end).
  std::uint64_t frames = 0;       ///< Frame records delivered.
  std::uint64_t gaps = 0;         ///< Gap records delivered.
  std::uint64_t gap_frames = 0;   ///< Frames those gaps cover.
  /// fold_record over delivered frame records (transport metadata never
  /// folded). Equals producer_digest iff gap_frames == 0.
  std::uint64_t digest = kDigestBasis;
  bool seq_contiguous = true;     ///< Record seqs ran 0,1,2,… with no hole.
  bool frames_contiguous = true;  ///< Frame+gap ranges tiled the mission.
  bool complete = false;          ///< End record observed, stream closed.

  // --- from the end record ---
  std::uint64_t producer_frames = 0;   ///< Frames the producer ran.
  std::uint64_t producer_skipped = 0;  ///< Frames it says it skipped.
  std::uint64_t producer_digest = 0;   ///< Its fold over all of them.

  /// End-to-end audit: complete, contiguous, delivered + skipped frames
  /// account for every produced frame, and the skip tallies agree.
  [[nodiscard]] bool accounted() const {
    return complete && seq_contiguous && frames_contiguous &&
           frames + gap_frames == producer_frames &&
           gap_frames == producer_skipped;
  }
  /// True when delivery was lossless and the digests prove it.
  [[nodiscard]] bool digest_matches() const {
    return complete && gap_frames == 0 && digest == producer_digest;
  }
};

class SessionClient {
 public:
  /// Called once per delivered frame record with the record's transport
  /// latency in nanoseconds (receive stamp minus publish stamp).
  using LatencySink = std::function<void(std::uint64_t ns)>;

  explicit SessionClient(std::unique_ptr<FrameSource> source,
                         LatencySink latency_sink = nullptr);

  /// Consumes at most `max` records. Returns how many were consumed; 0
  /// means the source is momentarily empty or done. Throws arfs::Error on
  /// a corrupt stream or a contract violation that can't be accounted
  /// (e.g. records after the end record).
  std::size_t poll(std::size_t max = 64);

  /// True once the end record has been consumed.
  [[nodiscard]] bool done() const { return report_.complete; }

  /// Drains until the stream closes. Spins on an empty source (yielding),
  /// so only call when a producer is concurrently pumping or finished.
  void drain();

  [[nodiscard]] const ClientReport& report() const { return report_; }
  [[nodiscard]] const char* transport_name() const { return source_->name(); }

 private:
  void consume(const FrameSource::Item& item);

  std::unique_ptr<FrameSource> source_;
  LatencySink latency_sink_;
  ClientReport report_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_frame_ = 0;  ///< 0 = not yet anchored.
};

}  // namespace arfs::serve
