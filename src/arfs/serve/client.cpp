#include "arfs/serve/client.hpp"

#include <thread>
#include <utility>

#include "arfs/common/check.hpp"
#include "arfs/serve/server.hpp"

namespace arfs::serve {

SessionClient::SessionClient(std::unique_ptr<FrameSource> source,
                             LatencySink latency_sink)
    : source_(std::move(source)), latency_sink_(std::move(latency_sink)) {
  require(source_ != nullptr, "SessionClient needs a source");
}

std::size_t SessionClient::poll(std::size_t max) {
  std::size_t consumed = 0;
  FrameSource::Item item;
  while (consumed < max) {
    switch (source_->poll(item)) {
      case FrameSource::Poll::kEmpty:
        return consumed;
      case FrameSource::Poll::kClosed:
        if (!report_.complete) {
          throw Error("stream closed without an end record");
        }
        return consumed;
      case FrameSource::Poll::kRecord:
        consume(item);
        ++consumed;
        break;
    }
  }
  return consumed;
}

void SessionClient::drain() {
  while (!done()) {
    if (poll() == 0) std::this_thread::yield();
  }
}

void SessionClient::consume(const FrameSource::Item& item) {
  const FrameRecord& record = item.record;
  if (report_.complete) {
    throw Error("record delivered after the end record");
  }
  ++report_.records;
  if (record.seq != next_seq_) report_.seq_contiguous = false;
  next_seq_ = record.seq + 1;

  switch (record.kind) {
    case RecordKind::kFrame:
      ++report_.frames;
      if (next_frame_ != 0 && record.frame != next_frame_) {
        report_.frames_contiguous = false;
      }
      next_frame_ = record.frame + 1;
      fold_record(report_.digest, record);
      if (latency_sink_) {
        const std::uint64_t now = monotonic_ns();
        latency_sink_(now > item.stamp_ns ? now - item.stamp_ns : 0);
      }
      break;
    case RecordKind::kGap:
      ++report_.gaps;
      report_.gap_frames += record.data0;
      if (next_frame_ != 0 && record.frame != next_frame_) {
        report_.frames_contiguous = false;
      }
      next_frame_ = record.frame + record.data0;
      break;
    case RecordKind::kEnd:
      report_.complete = true;
      report_.producer_frames = record.data0;
      report_.producer_skipped = record.data1;
      report_.producer_digest = record.data2;
      break;
  }
}

}  // namespace arfs::serve
