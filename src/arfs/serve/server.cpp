#include "arfs/serve/server.hpp"

#include <sys/socket.h>

#include <chrono>
#include <utility>
#include <vector>

#include "arfs/common/check.hpp"
#include "arfs/sim/batch.hpp"

namespace arfs::serve {

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char* to_string(TransportKind kind) {
  switch (kind) {
    case TransportKind::kShm:
      return "shm";
    case TransportKind::kStream:
      return "socket";
  }
  return "unknown";
}

struct SimServer::Session {
  std::uint64_t id = 0;
  std::optional<support::SystemPool::Lease> lease;
  std::unique_ptr<FrameTransport> transport;
  Cycle produced = 0;  ///< run_frame calls so far.
  std::uint64_t digest = kDigestBasis;
  /// Pending (not yet delivered) gap: [gap_first, gap_first + gap_count).
  std::uint64_t gap_first = 0;
  std::uint64_t gap_count = 0;
};

SimServer::SimServer(support::MissionFactory factory,
                     support::PlanFactory plan_for, ServeOptions options)
    : options_(options),
      plan_for_(std::move(plan_for)),
      pool_(std::move(factory), options.warmup_frames) {
  require(static_cast<bool>(plan_for_), "SimServer needs a plan factory");
  require(options_.max_sessions > 0, "max_sessions must be positive");
  require(options_.frame_budget > 0, "frame_budget must be positive");
}

SimServer::~SimServer() = default;

SimServer::Opened SimServer::open_session(TransportKind kind) {
  if (sessions_.size() >= options_.max_sessions) {
    ++rejected_;
    throw Error("session rejected: " + std::to_string(sessions_.size()) +
                " of " + std::to_string(options_.max_sessions) +
                " sessions already active");
  }
  const std::uint64_t id = next_id_++;
  const std::size_t index = next_index_++;
  const std::uint64_t seed = sim::job_seed(options_.base_seed, index);

  auto session = std::make_unique<Session>();
  session->id = id;
  session->lease.emplace(pool_.lease());
  session->lease->mission().reset();
  session->lease->mission().system().set_fault_plan(plan_for_(seed));

  Opened opened;
  opened.id = id;
  opened.seed = seed;
  if (kind == TransportKind::kShm) {
    RingOptions ring_options;
    if (!options_.shm_dir.empty()) {
      ring_options.path =
          options_.shm_dir + "/session-" + std::to_string(id) + ".ring";
    }
    ring_options.slot_bytes = options_.ring_slot_bytes;
    ring_options.slot_count = options_.ring_slot_count;
    ring_options.reclaim_watermark_bytes = options_.ring_reclaim_watermark;
    std::shared_ptr<FrameRing> ring = FrameRing::create(ring_options);
    opened.ring_path = ring->path();
    opened.source = std::make_unique<RingSource>(ring);
    session->transport = std::make_unique<ShmTransport>(std::move(ring));
  } else {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      throw Error("session rejected: socketpair failed");
    }
    session->transport =
        std::make_unique<StreamTransport>(fds[0], options_.stream_pending_cap);
    opened.source = std::make_unique<StreamSource>(fds[1]);
  }

  SessionReport report;
  report.id = id;
  report.index = index;
  report.seed = seed;
  report.transport = kind;
  reports_.emplace(id, report);
  sessions_.emplace(id, std::move(session));
  return opened;
}

void SimServer::pump_session(Session& session) {
  SessionReport& report = reports_.at(session.id);
  core::System& sys = session.lease->mission().system();

  // Produce unconditionally: the simulation loop never waits on a client.
  sys.run_frame();
  ++session.produced;
  ++report.frames_produced;
  const Cycle frame = options_.warmup_frames + session.produced;
  const FrameRecord record = make_frame_record(sys, frame);
  fold_record(session.digest, record);
  report.producer_digest = session.digest;

  // Deliver: an open gap goes first so the client's frame accounting stays
  // contiguous; a frame the transport rejects joins (or opens) the gap.
  session.transport->pump();
  if (session.gap_count > 0) {
    FrameRecord gap;
    gap.kind = RecordKind::kGap;
    gap.frame = session.gap_first;
    gap.data0 = session.gap_count;
    if (!session.transport->try_send(gap, monotonic_ns())) {
      ++session.gap_count;
      ++report.frames_skipped;
      return;
    }
    ++report.gap_records;
    session.gap_count = 0;
  }
  if (session.transport->try_send(record, monotonic_ns())) {
    ++report.frames_streamed;
  } else {
    session.gap_first = frame;
    session.gap_count = 1;
    ++report.frames_skipped;
  }
}

void SimServer::drain_session(Session& session) {
  SessionReport& report = reports_.at(session.id);
  session.transport->pump();
  if (session.gap_count > 0) {
    FrameRecord gap;
    gap.kind = RecordKind::kGap;
    gap.frame = session.gap_first;
    gap.data0 = session.gap_count;
    if (!session.transport->try_send(gap, monotonic_ns())) return;
    ++report.gap_records;
    session.gap_count = 0;
  }
  if (!report.end_sent) {
    FrameRecord end;
    end.kind = RecordKind::kEnd;
    end.frame = options_.warmup_frames + session.produced;
    end.data0 = report.frames_produced;
    end.data1 = report.frames_skipped;
    end.data2 = session.digest;
    if (!session.transport->try_send(end, monotonic_ns())) return;
    report.end_sent = true;
    session.transport->close();
    session.lease.reset();  // the warm system goes back to the pool now
  }
  session.transport->pump();
  if (session.transport->flushed()) report.completed = true;
}

std::size_t SimServer::pump() {
  std::size_t producing = 0;
  std::vector<std::uint64_t> finished;
  for (auto& [id, session] : sessions_) {
    if (session->produced < options_.frame_budget) {
      pump_session(*session);
      ++producing;
    } else {
      drain_session(*session);
      if (reports_.at(id).completed) finished.push_back(id);
    }
  }
  for (const std::uint64_t id : finished) sessions_.erase(id);
  return producing;
}

void SimServer::pump_all() {
  while (pump() > 0) {
  }
}

bool SimServer::drain() {
  bool all_flushed = true;
  std::vector<std::uint64_t> finished;
  for (auto& [id, session] : sessions_) {
    if (session->produced < options_.frame_budget) continue;
    drain_session(*session);
    if (reports_.at(id).completed) {
      finished.push_back(id);
    } else {
      all_flushed = false;
    }
  }
  for (const std::uint64_t id : finished) sessions_.erase(id);
  return all_flushed;
}

const SessionReport& SimServer::report(std::uint64_t id) const {
  auto it = reports_.find(id);
  require(it != reports_.end(), "unknown session id");
  return it->second;
}

}  // namespace arfs::serve
