#include "arfs/avionics/autopilot.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>

namespace arfs::avionics {

namespace {
constexpr double kAltGainPerFt = 1.0 / 800.0;   ///< Full pitch at 800 ft error.
constexpr double kHdgGainPerDeg = 1.0 / 25.0;   ///< Full roll at 25 deg error.
constexpr double kAltCaptureFt = 50.0;
constexpr double kHdgCaptureDeg = 3.0;
constexpr SimDuration kFullWorkUs = 400;
constexpr SimDuration kAltHoldWorkUs = 150;
}  // namespace

AutopilotApp::AutopilotApp(UavPlant& plant)
    : ReconfigurableApp(kAutopilot, "autopilot"), plant_(plant) {}

bool AutopilotApp::engage(ApMode mode, double target) {
  if (!current_spec().has_value()) return false;  // off in this configuration
  if (!full_spec() && mode != ApMode::kAltitudeHold &&
      mode != ApMode::kClimbTo) {
    // Altitude-hold-only specification: heading services unavailable.
    // Climb-to degrades to plain altitude hold at the requested altitude.
    return false;
  }
  engaged_ = true;
  mode_ = mode;
  target_ = target;
  capture_complete_ = false;
  return true;
}

void AutopilotApp::disengage() { engaged_ = false; }

void AutopilotApp::publish(const Ctx& ctx, double pitch, double roll) const {
  if (ctx.own == nullptr) return;
  ctx.own->write("cmd_pitch", pitch);
  ctx.own->write("cmd_roll", roll);
  ctx.own->write("engaged", engaged_);
}

core::ReconfigurableApp::StepResult AutopilotApp::do_work(const Ctx& ctx) {
  StepResult result;
  result.consumed = full_spec() ? kFullWorkUs : kAltHoldWorkUs;

  if (!engaged_) {
    publish(ctx, 0.0, 0.0);
    return result;
  }

  const SensorReadings& r = plant_.readings();
  double pitch = 0.0;
  double roll = 0.0;

  switch (mode_) {
    case ApMode::kClimbTo:
      if (std::abs(target_ - r.altitude_ft) <= kAltCaptureFt) {
        mode_ = ApMode::kAltitudeHold;
        capture_complete_ = true;
      }
      [[fallthrough]];
    case ApMode::kAltitudeHold:
      pitch = std::clamp((target_ - r.altitude_ft) * kAltGainPerFt, -1.0, 1.0);
      break;
    case ApMode::kTurnTo:
      if (std::abs(heading_error_deg(target_, r.heading_deg)) <=
          kHdgCaptureDeg) {
        mode_ = ApMode::kHeadingHold;
        capture_complete_ = true;
      }
      [[fallthrough]];
    case ApMode::kHeadingHold:
      roll = std::clamp(heading_error_deg(target_, r.heading_deg) *
                            kHdgGainPerDeg,
                        -1.0, 1.0);
      // Heading modes also hold the entry altitude loosely: pitch toward
      // zero vertical speed.
      pitch = std::clamp(-plant_.truth().vs_fpm / 1500.0, -1.0, 1.0);
      break;
  }

  if (!full_spec()) roll = 0.0;  // altitude hold only
  publish(ctx, pitch, roll);
  return result;
}

bool AutopilotApp::do_halt(const Ctx& ctx) {
  // Postcondition: cease operation (paper section 7.1).
  engaged_ = false;
  publish(ctx, 0.0, 0.0);
  return true;
}

bool AutopilotApp::do_prepare(const Ctx& ctx,
                              std::optional<SpecId> target_spec) {
  // Transition condition: commands neutral, mode collapsed to the target
  // specification's service set.
  (void)target_spec;
  mode_ = ApMode::kAltitudeHold;
  target_ = plant_.readings().altitude_ft;
  publish(ctx, 0.0, 0.0);
  return true;
}

bool AutopilotApp::do_initialize(const Ctx& ctx,
                                 std::optional<SpecId> target_spec) {
  // Precondition for every configuration: the autopilot is disengaged when
  // the new configuration is entered (paper section 7.1).
  (void)target_spec;
  engaged_ = false;
  capture_complete_ = false;
  publish(ctx, 0.0, 0.0);
  return true;
}

void AutopilotApp::on_volatile_lost() {
  // Targets and engagement lived in volatile storage; fail-stop erased them.
  engaged_ = false;
  capture_complete_ = false;
}

void AutopilotApp::save_domain(std::vector<std::uint64_t>& out) const {
  out.push_back(engaged_ ? 1 : 0);
  out.push_back(static_cast<std::uint64_t>(mode_));
  out.push_back(std::bit_cast<std::uint64_t>(target_));
  out.push_back(capture_complete_ ? 1 : 0);
  // The shared plant is saved by every application touching it; restoring
  // the same checkpoint instant repeatedly is idempotent.
  plant_.save_state(out);
}

void AutopilotApp::load_domain(const std::vector<std::uint64_t>& in) {
  std::size_t pos = 0;
  engaged_ = in.at(pos++) != 0;
  mode_ = static_cast<ApMode>(in.at(pos++));
  target_ = std::bit_cast<double>(in.at(pos++));
  capture_complete_ = in.at(pos++) != 0;
  plant_.load_state(in, pos);
}

std::string to_string(ApMode mode) {
  switch (mode) {
    case ApMode::kAltitudeHold: return "altitude-hold";
    case ApMode::kHeadingHold:  return "heading-hold";
    case ApMode::kClimbTo:      return "climb-to";
    case ApMode::kTurnTo:       return "turn-to";
  }
  return "?";
}

}  // namespace arfs::avionics
