// Assembly of the paper's section 7 example: the hypothetical UAV avionics
// system with autopilot, flight control system, and electrical power system,
// operating in the three configurations Full / Reduced / Minimal Service.
#pragma once

#include <memory>

#include "arfs/avionics/autopilot.hpp"
#include "arfs/avionics/electrical_monitor.hpp"
#include "arfs/avionics/fcs.hpp"
#include "arfs/avionics/ids.hpp"
#include "arfs/avionics/sensors.hpp"
#include "arfs/analysis/feasibility.hpp"
#include "arfs/core/reconfig_spec.hpp"
#include "arfs/core/system.hpp"

namespace arfs::avionics {

struct UavSpecOptions {
  /// Transition time bounds in frames (the paper's T_ij). Defaults cover the
  /// four-frame SFTA plus the Reduced-target dependency frame with margin.
  Cycle t_full_reduced = 6;
  Cycle t_full_minimal = 5;
  Cycle t_reduced_minimal = 5;
  Cycle t_reduced_full = 6;
  Cycle t_minimal_reduced = 6;
  Cycle t_minimal_full = 6;
  /// Self-transition bound: under the immediate policy a retarget may
  /// complete back into the source configuration (power restored while the
  /// applications were halting); SP3 then needs T(c,c).
  Cycle t_self = 6;
  /// Minimum dwell between reconfigurations (0 = disabled). The transition
  /// graph is cyclic (power can come back), so a positive dwell is what
  /// bounds reconfiguration rate under a flapping electrical system.
  Cycle dwell_frames = 0;
  /// Include the autopilot-waits-for-FCS initialization dependency of
  /// section 7.1 (only active when the target is Reduced Service).
  bool with_dependency = true;
  /// Extension beyond the paper's electrical-only triggers: publish each
  /// computer's status as an environmental factor and add the Backup
  /// Service configuration (both applications degraded on computer 2) so
  /// loss of computer 1 is survivable — reconfiguration for computing
  /// equipment failure as on the 777 (paper section 1).
  bool with_computer_status = false;
};

/// Builds the example's reconfiguration specification: applications and
/// their specification sets, the three configurations with placements, the
/// power-state factor, choose(), transition bounds, and the initialization
/// dependency.
[[nodiscard]] core::ReconfigSpec make_uav_spec(UavSpecOptions options = {});

/// The platform capacity model behind the example's configuration choices
/// (paper section 7): each computer's normal capacity cannot host both
/// applications at full service (which is why Reduced Service degrades
/// them), and the low-power mode used in Minimal Service cannot even host
/// the reduced pair (which is why the autopilot is turned off).
[[nodiscard]] analysis::PlatformModel make_uav_platform();

struct UavOptions {
  UavSpecOptions spec;
  core::SystemOptions system;
  std::uint64_t plant_seed = 42;
  env::ElectricalParams electrical;
};

/// Owns the spec, plant, electrical model, System, and both applications,
/// fully wired. The returned applications stay owned by the System; typed
/// accessors are provided.
class UavSystem {
 public:
  explicit UavSystem(UavOptions options = {});

  [[nodiscard]] core::System& system() { return *system_; }
  [[nodiscard]] const core::ReconfigSpec& spec() const { return spec_; }
  [[nodiscard]] UavPlant& plant() { return plant_; }
  [[nodiscard]] ElectricalAdapter& electrical() { return electrical_; }
  [[nodiscard]] AutopilotApp& autopilot();
  [[nodiscard]] FcsApp& fcs();

  /// Runs `frames` frames (plant physics advances in the env hook).
  void run(Cycle frames) { system_->run(frames); }

 private:
  core::ReconfigSpec spec_;
  UavPlant plant_;
  ElectricalAdapter electrical_;
  std::unique_ptr<core::System> system_;
};

}  // namespace arfs::avionics
