// Autopilot application (paper section 7).
//
// "In its primary specification, the autopilot provides four services to aid
// the pilot: altitude hold, heading hold, climb to altitude, and turn to
// heading. It also implements a second specification in which it provides
// altitude hold only. Its second specification requires substantially less
// processing and memory resources."
//
// The autopilot reads the sensor suite, computes pitch/roll commands, and
// publishes them in its stable region (keys "cmd_pitch", "cmd_roll",
// "engaged") for the FCS to consume. Its reconfiguration precondition is to
// be disengaged when a new configuration is entered (section 7.1).
#pragma once

#include <optional>
#include <string>

#include "arfs/avionics/ids.hpp"
#include "arfs/avionics/sensors.hpp"
#include "arfs/core/app.hpp"

namespace arfs::avionics {

enum class ApMode { kAltitudeHold, kHeadingHold, kClimbTo, kTurnTo };

class AutopilotApp final : public core::ReconfigurableApp {
 public:
  /// `plant` must outlive the application.
  explicit AutopilotApp(UavPlant& plant);

  /// Engages the autopilot in `mode` with the given target (feet for
  /// altitude modes, degrees for heading modes). Under the altitude-hold-
  /// only specification, heading modes are refused (returns false).
  bool engage(ApMode mode, double target);
  void disengage();

  [[nodiscard]] bool engaged() const { return engaged_; }
  [[nodiscard]] ApMode mode() const { return mode_; }
  [[nodiscard]] double target() const { return target_; }

  /// True once a climb-to / turn-to has converged and collapsed into the
  /// corresponding hold mode.
  [[nodiscard]] bool capture_complete() const { return capture_complete_; }

 protected:
  StepResult do_work(const Ctx& ctx) override;
  bool do_halt(const Ctx& ctx) override;
  bool do_prepare(const Ctx& ctx, std::optional<SpecId> target_spec) override;
  bool do_initialize(const Ctx& ctx,
                     std::optional<SpecId> target_spec) override;
  void on_volatile_lost() override;
  void save_domain(std::vector<std::uint64_t>& out) const override;
  void load_domain(const std::vector<std::uint64_t>& in) override;

 private:
  [[nodiscard]] bool full_spec() const { return current_spec() == kApFull; }
  void publish(const Ctx& ctx, double pitch, double roll) const;

  UavPlant& plant_;
  bool engaged_ = false;
  ApMode mode_ = ApMode::kAltitudeHold;
  double target_ = 0.0;
  bool capture_complete_ = false;
};

[[nodiscard]] std::string to_string(ApMode mode);

}  // namespace arfs::avionics
