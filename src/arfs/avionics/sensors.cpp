#include "arfs/avionics/sensors.hpp"

namespace arfs::avionics {

SensorReadings SensorSuite::sample(const AircraftState& truth) {
  SensorReadings r;
  if (altimeter_failed_) {
    r.altitude_ft = last_altitude_;  // stuck-at-last-value failure mode
  } else {
    r.altitude_ft = truth.altitude_ft + rng_.gaussian(noise_.altimeter_sigma_ft);
    last_altitude_ = r.altitude_ft;
  }
  r.heading_deg =
      wrap_heading_deg(truth.heading_deg + rng_.gaussian(noise_.compass_sigma_deg));
  r.airspeed_kt = truth.airspeed_kt + rng_.gaussian(noise_.airspeed_sigma_kt);
  return r;
}

UavPlant::UavPlant(std::uint64_t seed, DynamicsParams params,
                   AircraftState initial)
    : dyn_(params, initial), sensors_(SensorNoise{}, seed) {
  readings_ = sensors_.sample(dyn_.state());
}

void UavPlant::step(double dt_s) {
  dyn_.step(surfaces_, dt_s);
  readings_ = sensors_.sample(dyn_.state());
}

}  // namespace arfs::avionics
