#include "arfs/avionics/sensors.hpp"

#include <bit>

#include "arfs/common/check.hpp"

namespace arfs::avionics {

namespace {

inline std::uint64_t word(double v) { return std::bit_cast<std::uint64_t>(v); }

inline double take_f64(const std::vector<std::uint64_t>& in,
                       std::size_t& pos) {
  require(pos < in.size(), "plant checkpoint word stream exhausted");
  return std::bit_cast<double>(in[pos++]);
}

inline std::uint64_t take_u64(const std::vector<std::uint64_t>& in,
                              std::size_t& pos) {
  require(pos < in.size(), "plant checkpoint word stream exhausted");
  return in[pos++];
}

}  // namespace

SensorReadings SensorSuite::sample(const AircraftState& truth) {
  SensorReadings r;
  if (altimeter_failed_) {
    r.altitude_ft = last_altitude_;  // stuck-at-last-value failure mode
  } else {
    r.altitude_ft = truth.altitude_ft + rng_.gaussian(noise_.altimeter_sigma_ft);
    last_altitude_ = r.altitude_ft;
  }
  r.heading_deg =
      wrap_heading_deg(truth.heading_deg + rng_.gaussian(noise_.compass_sigma_deg));
  r.airspeed_kt = truth.airspeed_kt + rng_.gaussian(noise_.airspeed_sigma_kt);
  return r;
}

UavPlant::UavPlant(std::uint64_t seed, DynamicsParams params,
                   AircraftState initial)
    : dyn_(params, initial), sensors_(SensorNoise{}, seed) {
  readings_ = sensors_.sample(dyn_.state());
}

void UavPlant::step(double dt_s) {
  dyn_.step(surfaces_, dt_s);
  readings_ = sensors_.sample(dyn_.state());
}

void SensorSuite::save_state(std::vector<std::uint64_t>& out) const {
  out.push_back(rng_.state());
  out.push_back(altimeter_failed_ ? 1 : 0);
  out.push_back(word(last_altitude_));
}

void SensorSuite::load_state(const std::vector<std::uint64_t>& in,
                             std::size_t& pos) {
  rng_.set_state(take_u64(in, pos));
  altimeter_failed_ = take_u64(in, pos) != 0;
  last_altitude_ = take_f64(in, pos);
}

void UavPlant::save_state(std::vector<std::uint64_t>& out) const {
  const AircraftState& s = dyn_.state();
  out.push_back(word(s.altitude_ft));
  out.push_back(word(s.heading_deg));
  out.push_back(word(s.airspeed_kt));
  out.push_back(word(s.vs_fpm));
  out.push_back(word(s.bank_deg));
  const WindModel& w = dyn_.wind();
  out.push_back(word(w.gust_vs_fpm));
  out.push_back(word(w.gust_bank_deg));
  out.push_back(word(w.gust_period_s));
  out.push_back(word(dyn_.elapsed_s()));
  out.push_back(word(surfaces_.elevator));
  out.push_back(word(surfaces_.aileron));
  sensors_.save_state(out);
  out.push_back(word(readings_.altitude_ft));
  out.push_back(word(readings_.heading_deg));
  out.push_back(word(readings_.airspeed_kt));
  out.push_back(word(pilot_pitch));
  out.push_back(word(pilot_roll));
}

void UavPlant::load_state(const std::vector<std::uint64_t>& in,
                          std::size_t& pos) {
  AircraftState& s = dyn_.mutable_state();
  s.altitude_ft = take_f64(in, pos);
  s.heading_deg = take_f64(in, pos);
  s.airspeed_kt = take_f64(in, pos);
  s.vs_fpm = take_f64(in, pos);
  s.bank_deg = take_f64(in, pos);
  WindModel w;
  w.gust_vs_fpm = take_f64(in, pos);
  w.gust_bank_deg = take_f64(in, pos);
  w.gust_period_s = take_f64(in, pos);
  dyn_.set_wind(w);
  dyn_.set_elapsed_s(take_f64(in, pos));
  surfaces_.elevator = take_f64(in, pos);
  surfaces_.aileron = take_f64(in, pos);
  sensors_.load_state(in, pos);
  readings_.altitude_ft = take_f64(in, pos);
  readings_.heading_deg = take_f64(in, pos);
  readings_.airspeed_kt = take_f64(in, pos);
  pilot_pitch = take_f64(in, pos);
  pilot_roll = take_f64(in, pos);
}

}  // namespace arfs::avionics
