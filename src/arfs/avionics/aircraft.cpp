#include "arfs/avionics/aircraft.hpp"

#include <algorithm>
#include <numbers>

namespace arfs::avionics {

double WindModel::vs_disturbance(double t_s) const {
  if (gust_vs_fpm == 0.0) return 0.0;
  const double w1 = 2.0 * std::numbers::pi / gust_period_s;
  const double w2 = w1 * std::numbers::sqrt2;  // incommensurate second tone
  return gust_vs_fpm * (0.7 * std::sin(w1 * t_s) + 0.3 * std::sin(w2 * t_s));
}

double WindModel::bank_disturbance(double t_s) const {
  if (gust_bank_deg == 0.0) return 0.0;
  const double w1 = 2.0 * std::numbers::pi / (gust_period_s * 0.8);
  const double w2 = w1 * std::numbers::phi;
  return gust_bank_deg *
         (0.6 * std::sin(w1 * t_s + 1.0) + 0.4 * std::sin(w2 * t_s));
}

AircraftDynamics::AircraftDynamics(DynamicsParams params,
                                   AircraftState initial)
    : params_(params), state_(initial) {}

void AircraftDynamics::step(const ControlSurfaces& surfaces, double dt_s) {
  const double elevator = std::clamp(surfaces.elevator, -1.0, 1.0);
  const double aileron = std::clamp(surfaces.aileron, -1.0, 1.0);
  elapsed_s_ += dt_s;

  // First-order responses toward the commanded steady states, with the
  // wind's disturbance added to the steady state (gusts push the aircraft;
  // the control loop must hold against them).
  const double vs_target = elevator * params_.max_vs_fpm +
                           wind_.vs_disturbance(elapsed_s_);
  const double vs_alpha = std::min(1.0, dt_s / params_.vs_tau_s);
  state_.vs_fpm += (vs_target - state_.vs_fpm) * vs_alpha;

  const double bank_target = aileron * params_.max_bank_deg +
                             wind_.bank_disturbance(elapsed_s_);
  const double bank_alpha = std::min(1.0, dt_s / params_.bank_tau_s);
  state_.bank_deg += (bank_target - state_.bank_deg) * bank_alpha;

  state_.altitude_ft += state_.vs_fpm * dt_s / 60.0;
  state_.altitude_ft = std::max(0.0, state_.altitude_ft);

  const double turn_rate_dps = params_.turn_rate_at_max_bank_dps *
                               (state_.bank_deg / params_.max_bank_deg);
  state_.heading_deg = wrap_heading_deg(state_.heading_deg +
                                        turn_rate_dps * dt_s);
}

double heading_error_deg(double target_deg, double current_deg) {
  double err = std::fmod(target_deg - current_deg, 360.0);
  if (err > 180.0) err -= 360.0;
  if (err <= -180.0) err += 360.0;
  return err;
}

double wrap_heading_deg(double heading_deg) {
  double wrapped = std::fmod(heading_deg, 360.0);
  if (wrapped < 0.0) wrapped += 360.0;
  return wrapped;
}

}  // namespace arfs::avionics
