// Aircraft dynamics and control surfaces.
//
// Paper section 7: "This example has been operated in a simulated
// environment that includes aircraft state sensors and a simple model of
// aircraft dynamics." Functionality is representative, as in the paper: a
// first-order longitudinal/lateral model adequate to make the example's
// reconfiguration preconditions ("the control surfaces be centered, i.e.,
// not exerting turning forces on the aircraft") concretely checkable.
#pragma once

#include <cmath>

namespace arfs::avionics {

/// Normalized control-surface deflections in [-1, 1]; 0 is centered.
struct ControlSurfaces {
  double elevator = 0.0;  ///< +1 = full nose-up.
  double aileron = 0.0;   ///< +1 = full right roll.

  [[nodiscard]] bool centered(double eps = 1e-6) const {
    return std::abs(elevator) <= eps && std::abs(aileron) <= eps;
  }
};

struct AircraftState {
  double altitude_ft = 5000.0;
  double heading_deg = 90.0;   ///< [0, 360).
  double airspeed_kt = 100.0;
  double vs_fpm = 0.0;         ///< Vertical speed.
  double bank_deg = 0.0;
};

struct DynamicsParams {
  double max_vs_fpm = 1500.0;     ///< Vertical speed at full elevator.
  double max_bank_deg = 25.0;     ///< Bank at full aileron.
  double vs_tau_s = 2.0;          ///< First-order lag of vertical speed.
  double bank_tau_s = 1.5;        ///< First-order lag of bank.
  double turn_rate_at_max_bank_dps = 3.0;  ///< Standard-rate-ish turn.
};

/// Deterministic turbulence: sinusoidal gusts perturbing vertical speed and
/// bank, so control loops are exercised against disturbances without
/// sacrificing replayability. Intensity 0 disables it.
struct WindModel {
  double gust_vs_fpm = 0.0;     ///< Peak vertical-speed disturbance.
  double gust_bank_deg = 0.0;   ///< Peak bank disturbance.
  double gust_period_s = 11.0;  ///< Primary gust period.

  /// Disturbances at time `t_s` (sum of two incommensurate sinusoids so the
  /// pattern does not repeat within typical runs).
  [[nodiscard]] double vs_disturbance(double t_s) const;
  [[nodiscard]] double bank_disturbance(double t_s) const;
};

class AircraftDynamics {
 public:
  explicit AircraftDynamics(DynamicsParams params = {},
                            AircraftState initial = {});

  /// Advances the model by `dt_s` seconds under the given deflections.
  void step(const ControlSurfaces& surfaces, double dt_s);

  /// Installs (or clears, with a default-constructed model) turbulence.
  void set_wind(WindModel wind) { wind_ = wind; }
  [[nodiscard]] const WindModel& wind() const { return wind_; }

  [[nodiscard]] const AircraftState& state() const { return state_; }
  [[nodiscard]] AircraftState& mutable_state() { return state_; }
  [[nodiscard]] const DynamicsParams& params() const { return params_; }

  /// Model time driving the wind sinusoids; exposed so checkpoints can
  /// restore the gust phase along with the state.
  [[nodiscard]] double elapsed_s() const { return elapsed_s_; }
  void set_elapsed_s(double elapsed_s) { elapsed_s_ = elapsed_s; }

 private:
  DynamicsParams params_;
  AircraftState state_;
  WindModel wind_;
  double elapsed_s_ = 0.0;
};

/// Normalizes a heading difference to (-180, 180].
[[nodiscard]] double heading_error_deg(double target_deg, double current_deg);

/// Wraps a heading into [0, 360).
[[nodiscard]] double wrap_heading_deg(double heading_deg);

}  // namespace arfs::avionics
