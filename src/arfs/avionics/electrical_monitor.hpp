// Adapter wiring the electrical power system into a running System.
//
// "The electrical system operates independently of the reconfigurable
// system; it merely provides the system details of its state" (paper
// section 7). The adapter advances the physical model once per frame through
// a System environment hook and publishes the power state into the
// kPowerFactor environmental factor; the System's virtual factor monitor
// turns changes into SCRAM signals.
#pragma once

#include "arfs/avionics/ids.hpp"
#include "arfs/core/system.hpp"
#include "arfs/env/electrical.hpp"

namespace arfs::avionics {

class ElectricalAdapter {
 public:
  explicit ElectricalAdapter(env::ElectricalParams params = {});

  /// Installs the per-frame hook on `system`. Call once before running.
  void attach(core::System& system);

  /// Direct failure injection (examples and tests usually use the System's
  /// fault plan with environment-change events instead; these helpers model
  /// the physical alternators themselves breaking).
  void fail_alternator(int index) { electrical_.fail_alternator(index); }
  void repair_alternator(int index) { electrical_.repair_alternator(index); }

  [[nodiscard]] const env::ElectricalSystem& electrical() const {
    return electrical_;
  }
  [[nodiscard]] env::ElectricalSystem& electrical() { return electrical_; }

 private:
  env::ElectricalSystem electrical_;
};

}  // namespace arfs::avionics
