// Identifiers of the paper's section 7 example instantiation.
#pragma once

#include "arfs/common/ids.hpp"

namespace arfs::avionics {

// Applications.
inline constexpr AppId kAutopilot{1};
inline constexpr AppId kFcs{2};

// Autopilot specifications: primary provides altitude hold, heading hold,
// climb to altitude, and turn to heading; the secondary provides altitude
// hold only (paper section 7).
inline constexpr SpecId kApFull{11};
inline constexpr SpecId kApAltHold{12};

// FCS specifications: primary accepts pilot/autopilot input and generates
// actuator commands (with simulated stability augmentation); the secondary
// provides direct control only.
inline constexpr SpecId kFcsAugmented{21};
inline constexpr SpecId kFcsDirect{22};

// Configurations (paper section 7): Full, Reduced, and Minimal Service.
inline constexpr ConfigId kFullService{1};
inline constexpr ConfigId kReducedService{2};
inline constexpr ConfigId kMinimalService{3};
// Extension (enabled by UavSpecOptions::with_computer_status): Backup
// Service mirrors Reduced on computer 2, covering loss of computer 1 — the
// 777-style reconfiguration for computing-equipment failure the paper's
// introduction motivates.
inline constexpr ConfigId kBackupService{4};

// Environmental factor exporting the electrical system's state.
inline constexpr FactorId kPowerFactor{1};
// Extension factors: computer status published via bind_processor_factor
// (0 = running, 1 = failed).
inline constexpr FactorId kComputer1Factor{2};
inline constexpr FactorId kComputer2Factor{3};

// Platform processors. In Full Service each application has its own
// computer; in Reduced/Minimal both share kComputer1.
inline constexpr ProcessorId kComputer1{1};
inline constexpr ProcessorId kComputer2{2};

}  // namespace arfs::avionics
