#include "arfs/avionics/uav_system.hpp"

#include <utility>

#include "arfs/common/check.hpp"

namespace arfs::avionics {

core::ReconfigSpec make_uav_spec(UavSpecOptions options) {
  core::ReconfigSpec spec;

  // Applications and their specification sets (paper section 7).
  core::AppDecl autopilot;
  autopilot.id = kAutopilot;
  autopilot.name = "autopilot";
  autopilot.specs = {
      core::FunctionalSpec{kApFull, "ap-primary",
                           core::ResourceDemand{0.45, 96.0, 35.0}, 400, 800},
      core::FunctionalSpec{kApAltHold, "ap-altitude-hold",
                           core::ResourceDemand{0.15, 32.0, 12.0}, 150, 400},
  };
  spec.declare_app(std::move(autopilot));

  core::AppDecl fcs;
  fcs.id = kFcs;
  fcs.name = "flight-control";
  fcs.specs = {
      core::FunctionalSpec{kFcsAugmented, "fcs-augmented",
                           core::ResourceDemand{0.40, 64.0, 30.0}, 300, 600},
      core::FunctionalSpec{kFcsDirect, "fcs-direct",
                           core::ResourceDemand{0.10, 16.0, 8.0}, 100, 300},
  };
  spec.declare_app(std::move(fcs));

  // The power-state factor exported by the electrical system.
  spec.declare_factor(env::FactorSpec{
      kPowerFactor, "power-state",
      static_cast<std::int64_t>(env::PowerState::kFullPower),
      static_cast<std::int64_t>(env::PowerState::kDepleted),
      static_cast<std::int64_t>(env::PowerState::kFullPower)});

  // Full Service: full power; each application on its own computer.
  core::Configuration full;
  full.id = kFullService;
  full.name = "full-service";
  full.assignment = {{kAutopilot, kApFull}, {kFcs, kFcsAugmented}};
  full.placement = {{kAutopilot, kComputer1}, {kFcs, kComputer2}};
  full.service_rank = 2;
  spec.declare_config(std::move(full));

  // Reduced Service: one alternator; both applications share computer 1;
  // autopilot provides altitude hold only, FCS direct control.
  core::Configuration reduced;
  reduced.id = kReducedService;
  reduced.name = "reduced-service";
  reduced.assignment = {{kAutopilot, kApAltHold}, {kFcs, kFcsDirect}};
  reduced.placement = {{kAutopilot, kComputer1}, {kFcs, kComputer1}};
  reduced.service_rank = 1;
  spec.declare_config(std::move(reduced));

  // Minimal Service: battery only; computer 1 in low-power mode; the
  // autopilot is turned off, the FCS provides direct control. This is the
  // system's safe configuration.
  core::Configuration minimal;
  minimal.id = kMinimalService;
  minimal.name = "minimal-service";
  minimal.assignment = {{kFcs, kFcsDirect}};
  minimal.placement = {{kFcs, kComputer1}};
  minimal.safe = true;
  minimal.service_rank = 0;
  spec.declare_config(std::move(minimal));

  if (options.with_computer_status) {
    spec.declare_factor(env::FactorSpec{kComputer1Factor, "computer-1-status",
                                        0, 1, 0});
    spec.declare_factor(env::FactorSpec{kComputer2Factor, "computer-2-status",
                                        0, 1, 0});

    // Backup Service: computer 1 lost; both applications run degraded on
    // computer 2 (mirror of Reduced Service).
    core::Configuration backup;
    backup.id = kBackupService;
    backup.name = "backup-service";
    backup.assignment = {{kAutopilot, kApAltHold}, {kFcs, kFcsDirect}};
    backup.placement = {{kAutopilot, kComputer2}, {kFcs, kComputer2}};
    backup.safe = true;  // a second safe harbor: minimal-equivalent service
    backup.service_rank = 1;
    spec.declare_config(std::move(backup));
  }

  const bool computers = options.with_computer_status;
  // choose(): the paper's example reconfigures on the power state alone
  // (section 7: "the anticipated component failures ... are all based on
  // the electrical system"); the computer-status extension adds computing
  // equipment loss on top, with placement viability dominating power level.
  spec.set_choose([computers](ConfigId current, const env::EnvState& e) {
    const auto factor = [&e](FactorId id, std::int64_t fallback) {
      const auto it = e.find(id);
      return it == e.end() ? fallback : it->second;
    };
    const auto power = static_cast<env::PowerState>(factor(
        kPowerFactor, static_cast<std::int64_t>(env::PowerState::kFullPower)));

    if (computers) {
      const bool c1_down = factor(kComputer1Factor, 0) != 0;
      const bool c2_down = factor(kComputer2Factor, 0) != 0;
      if (c1_down && c2_down) return current;  // no viable placement
      if (c1_down) return kBackupService;
      if (power == env::PowerState::kBatteryOnly ||
          power == env::PowerState::kDepleted) {
        return kMinimalService;
      }
      if (c2_down || power == env::PowerState::kSingleAlternator) {
        return kReducedService;
      }
      return kFullService;
    }

    switch (power) {
      case env::PowerState::kFullPower:        return kFullService;
      case env::PowerState::kSingleAlternator: return kReducedService;
      case env::PowerState::kBatteryOnly:
      case env::PowerState::kDepleted:         return kMinimalService;
    }
    return kMinimalService;
  });

  spec.set_transition_bound(kFullService, kReducedService,
                            options.t_full_reduced);
  spec.set_transition_bound(kFullService, kMinimalService,
                            options.t_full_minimal);
  spec.set_transition_bound(kReducedService, kMinimalService,
                            options.t_reduced_minimal);
  spec.set_transition_bound(kReducedService, kFullService,
                            options.t_reduced_full);
  spec.set_transition_bound(kMinimalService, kReducedService,
                            options.t_minimal_reduced);
  spec.set_transition_bound(kMinimalService, kFullService,
                            options.t_minimal_full);
  for (const ConfigId c : {kFullService, kReducedService, kMinimalService}) {
    spec.set_transition_bound(c, c, options.t_self);
  }
  if (options.with_computer_status) {
    for (const ConfigId c :
         {kFullService, kReducedService, kMinimalService}) {
      spec.set_transition_bound(c, kBackupService, 6);
      spec.set_transition_bound(kBackupService, c, 6);
    }
    spec.set_transition_bound(kBackupService, kBackupService,
                              options.t_self);
  }

  if (options.with_dependency) {
    // Section 7.1: the autopilot cannot resume service in Reduced Service
    // until the FCS has completed its reconfiguration.
    spec.add_dependency(core::Dependency{kAutopilot, kFcs,
                                         core::DepPhase::kInitialize,
                                         kReducedService});
  }

  spec.set_initial_config(kFullService);
  spec.set_dwell_frames(options.dwell_frames);
  spec.validate();
  return spec;
}

analysis::PlatformModel make_uav_platform() {
  analysis::PlatformModel platform;
  const analysis::ProcessorCapacity computer{
      core::ResourceDemand{0.6, 128.0, 50.0},   // normal mode
      core::ResourceDemand{0.15, 32.0, 10.0}};  // low-power mode
  platform.processors[kComputer1] = computer;
  platform.processors[kComputer2] = computer;
  platform.low_power_configs = {kMinimalService};
  return platform;
}

UavSystem::UavSystem(UavOptions options)
    : spec_(make_uav_spec(options.spec)), plant_(options.plant_seed),
      electrical_(options.electrical) {
  system_ = std::make_unique<core::System>(spec_, options.system);

  // Physics first: the plant advances once per frame, before the electrical
  // model publishes and before applications run.
  const double dt_s =
      static_cast<double>(options.system.frame_length) / 1e6;
  system_->add_env_hook([this, dt_s](env::Environment&, Cycle, SimTime) {
    plant_.step(dt_s);
  });
  electrical_.attach(*system_);

  if (options.spec.with_computer_status) {
    system_->bind_processor_factor(kComputer1, kComputer1Factor);
    system_->bind_processor_factor(kComputer2, kComputer2Factor);
  }

  system_->add_app(std::make_unique<AutopilotApp>(plant_));
  system_->add_app(std::make_unique<FcsApp>(plant_));
}

AutopilotApp& UavSystem::autopilot() {
  return static_cast<AutopilotApp&>(system_->app(kAutopilot));
}

FcsApp& UavSystem::fcs() {
  return static_cast<FcsApp&>(system_->app(kFcs));
}

}  // namespace arfs::avionics
