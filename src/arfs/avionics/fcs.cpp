#include "arfs/avionics/fcs.hpp"

#include <algorithm>
#include <bit>
#include <cstddef>

namespace arfs::avionics {

namespace {
constexpr double kSmoothing = 0.35;       ///< Augmentation low-pass factor.
constexpr double kBankDamping = 0.01;     ///< Counter-bank per degree.
constexpr SimDuration kAugmentedWorkUs = 300;
constexpr SimDuration kDirectWorkUs = 100;
}  // namespace

FcsApp::FcsApp(UavPlant& plant)
    : ReconfigurableApp(kFcs, "flight-control"), plant_(plant) {}

void FcsApp::select_input(const Ctx& ctx, double& pitch, double& roll) const {
  pitch = plant_.pilot_pitch;
  roll = plant_.pilot_roll;
  if (ctx.peers == nullptr) return;
  const Expected<storage::Value> engaged =
      ctx.peers->read_peer(kAutopilot, "engaged");
  if (!engaged) return;
  const Expected<bool> engaged_flag = storage::get_as<bool>(engaged.value());
  if (!engaged_flag || !engaged_flag.value()) return;

  const Expected<storage::Value> p = ctx.peers->read_peer(kAutopilot,
                                                          "cmd_pitch");
  const Expected<storage::Value> r = ctx.peers->read_peer(kAutopilot,
                                                          "cmd_roll");
  if (p && r) {
    const Expected<double> pd = storage::get_as<double>(p.value());
    const Expected<double> rd = storage::get_as<double>(r.value());
    if (pd && rd) {
      pitch = pd.value();
      roll = rd.value();
    }
  }
}

core::ReconfigurableApp::StepResult FcsApp::do_work(const Ctx& ctx) {
  StepResult result;
  result.consumed = augmented() ? kAugmentedWorkUs : kDirectWorkUs;

  double pitch = 0.0;
  double roll = 0.0;
  select_input(ctx, pitch, roll);

  if (augmented()) {
    // Simulated stability augmentation: low-pass the commands and damp the
    // bank so abrupt inputs do not upset the aircraft.
    smooth_elev_ += (pitch - smooth_elev_) * kSmoothing;
    smooth_ail_ += (roll - smooth_ail_) * kSmoothing;
    const double damped_ail =
        smooth_ail_ - plant_.truth().bank_deg * kBankDamping;
    plant_.surfaces().elevator = std::clamp(smooth_elev_, -1.0, 1.0);
    plant_.surfaces().aileron = std::clamp(damped_ail, -1.0, 1.0);
  } else {
    // Direct control: commands applied to the surfaces unmodified.
    plant_.surfaces().elevator = std::clamp(pitch, -1.0, 1.0);
    plant_.surfaces().aileron = std::clamp(roll, -1.0, 1.0);
  }

  if (ctx.own != nullptr) {
    ctx.own->write("surface_elev", plant_.surfaces().elevator);
    ctx.own->write("surface_ail", plant_.surfaces().aileron);
  }
  return result;
}

bool FcsApp::do_halt(const Ctx& ctx) {
  // Postcondition: cease operation; surfaces hold their last position until
  // initialization centers them.
  (void)ctx;
  return true;
}

bool FcsApp::do_prepare(const Ctx& ctx, std::optional<SpecId> target_spec) {
  // Transition condition: internal command state neutral for the new
  // specification.
  (void)ctx;
  (void)target_spec;
  smooth_elev_ = 0.0;
  smooth_ail_ = 0.0;
  return true;
}

bool FcsApp::do_initialize(const Ctx& ctx,
                           std::optional<SpecId> target_spec) {
  // Precondition: control surfaces centered — not exerting turning forces —
  // when the new configuration is entered (paper section 7.1).
  (void)target_spec;
  plant_.surfaces().elevator = 0.0;
  plant_.surfaces().aileron = 0.0;
  if (ctx.own != nullptr) {
    ctx.own->write("surface_elev", 0.0);
    ctx.own->write("surface_ail", 0.0);
  }
  return true;
}

void FcsApp::on_volatile_lost() {
  smooth_elev_ = 0.0;
  smooth_ail_ = 0.0;
}

void FcsApp::save_domain(std::vector<std::uint64_t>& out) const {
  out.push_back(std::bit_cast<std::uint64_t>(smooth_elev_));
  out.push_back(std::bit_cast<std::uint64_t>(smooth_ail_));
  // The shared plant is saved here too; both apps' checkpoints describe the
  // same instant, so the double restore is idempotent.
  plant_.save_state(out);
}

void FcsApp::load_domain(const std::vector<std::uint64_t>& in) {
  std::size_t pos = 0;
  smooth_elev_ = std::bit_cast<double>(in.at(pos++));
  smooth_ail_ = std::bit_cast<double>(in.at(pos++));
  plant_.load_state(in, pos);
}

}  // namespace arfs::avionics
