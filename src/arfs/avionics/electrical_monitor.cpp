#include "arfs/avionics/electrical_monitor.hpp"

namespace arfs::avionics {

ElectricalAdapter::ElectricalAdapter(env::ElectricalParams params)
    : electrical_(kPowerFactor, params) {}

void ElectricalAdapter::attach(core::System& system) {
  const SimDuration frame = system.clock().frame_length();
  system.add_env_hook(
      [this, frame](env::Environment& environment, Cycle /*cycle*/,
                    SimTime now) { electrical_.step(environment, frame, now); });
}

}  // namespace arfs::avionics
