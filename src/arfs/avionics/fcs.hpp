// Flight control system application (paper section 7).
//
// "The FCS provides a single service in its primary specification: it
// accepts input from the pilot or autopilot and generates commands for the
// control surface actuators. This primary specification could include
// stability augmentation facilities designed to reduce pilot workload,
// although we merely simulate this. The FCS also implements a second
// specification in which it provides direct control only."
//
// Input priority: if the autopilot's stable region reports engaged=true, its
// committed pitch/roll commands are used; otherwise the pilot's stick. The
// augmented specification applies first-order smoothing plus bank/vs damping
// (the simulated stability augmentation); the direct specification copies
// the input straight to the surfaces. The reconfiguration precondition is
// that the control surfaces are centered when a new configuration is entered
// (section 7.1).
#pragma once

#include <optional>

#include "arfs/avionics/ids.hpp"
#include "arfs/avionics/sensors.hpp"
#include "arfs/core/app.hpp"

namespace arfs::avionics {

class FcsApp final : public core::ReconfigurableApp {
 public:
  /// `plant` must outlive the application.
  explicit FcsApp(UavPlant& plant);

 protected:
  StepResult do_work(const Ctx& ctx) override;
  bool do_halt(const Ctx& ctx) override;
  bool do_prepare(const Ctx& ctx, std::optional<SpecId> target_spec) override;
  bool do_initialize(const Ctx& ctx,
                     std::optional<SpecId> target_spec) override;
  void on_volatile_lost() override;
  void save_domain(std::vector<std::uint64_t>& out) const override;
  void load_domain(const std::vector<std::uint64_t>& in) override;

 private:
  [[nodiscard]] bool augmented() const {
    return current_spec() == kFcsAugmented;
  }
  /// Autopilot command if engaged, else pilot stick.
  void select_input(const Ctx& ctx, double& pitch, double& roll) const;

  UavPlant& plant_;
  // Smoothed surface state for the augmented mode (volatile: re-converges
  // after a fail-stop).
  double smooth_elev_ = 0.0;
  double smooth_ail_ = 0.0;
};

}  // namespace arfs::avionics
