// Aircraft state sensors with deterministic noise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arfs/avionics/aircraft.hpp"
#include "arfs/common/rng.hpp"

namespace arfs::avionics {

struct SensorNoise {
  double altimeter_sigma_ft = 4.0;
  double compass_sigma_deg = 0.5;
  double airspeed_sigma_kt = 1.0;
};

struct SensorReadings {
  double altitude_ft = 0.0;
  double heading_deg = 0.0;
  double airspeed_kt = 0.0;
};

class SensorSuite {
 public:
  SensorSuite(SensorNoise noise, std::uint64_t seed)
      : noise_(noise), rng_(seed) {}

  /// Samples every sensor against the true state.
  [[nodiscard]] SensorReadings sample(const AircraftState& truth);

  void fail_altimeter() { altimeter_failed_ = true; }
  [[nodiscard]] bool altimeter_failed() const { return altimeter_failed_; }

  /// Checkpoint support: the suite's mutable state (noise RNG stream,
  /// failure latch, altimeter hold value) as 64-bit words.
  void save_state(std::vector<std::uint64_t>& out) const;
  void load_state(const std::vector<std::uint64_t>& in, std::size_t& pos);

 private:
  SensorNoise noise_;
  Rng rng_;
  bool altimeter_failed_ = false;
  double last_altitude_ = 0.0;
};

/// The physical plant shared by the avionics applications: dynamics, control
/// surfaces (written by the FCS through actuator interface units), sensors
/// (read through sensor interface units), and the pilot's stick input.
class UavPlant {
 public:
  UavPlant(std::uint64_t seed = 42, DynamicsParams params = {},
           AircraftState initial = {});

  /// Advances physics by `dt_s` and refreshes the sensor snapshot.
  void step(double dt_s);

  [[nodiscard]] const AircraftState& truth() const { return dyn_.state(); }
  [[nodiscard]] const SensorReadings& readings() const { return readings_; }

  [[nodiscard]] ControlSurfaces& surfaces() { return surfaces_; }
  [[nodiscard]] const ControlSurfaces& surfaces() const { return surfaces_; }

  /// Pilot stick input in [-1, 1] (used by the FCS when the autopilot is
  /// disengaged or off).
  double pilot_pitch = 0.0;
  double pilot_roll = 0.0;

  [[nodiscard]] SensorSuite& sensors() { return sensors_; }

  /// Installs turbulence on the underlying dynamics.
  void set_wind(WindModel wind) { dyn_.set_wind(wind); }

  /// Checkpoint support: appends / reads back the plant's full mutable
  /// state (dynamics, wind phase, surfaces, sensors, last sample, stick) as
  /// 64-bit words. Applications sharing one plant each save it; restoring
  /// the same instant twice is idempotent.
  void save_state(std::vector<std::uint64_t>& out) const;
  void load_state(const std::vector<std::uint64_t>& in, std::size_t& pos);

 private:
  AircraftDynamics dyn_;
  ControlSurfaces surfaces_;
  SensorSuite sensors_;
  SensorReadings readings_;
};

}  // namespace arfs::avionics
