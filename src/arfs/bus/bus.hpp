// Simulated time-triggered broadcast bus.
//
// Messages are posted by an endpoint, transmitted in that endpoint's next
// TDMA slot, and delivered to every other registered endpoint at the end of
// the slot. Latency is therefore bounded by the schedule's worst-case round
// trip — the property the paper's architecture relies on for its timing
// guarantees.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "arfs/bus/schedule.hpp"
#include "arfs/common/ids.hpp"
#include "arfs/common/types.hpp"
#include "arfs/storage/value.hpp"

namespace arfs::bus {

struct Message {
  EndpointId source;
  std::string topic;
  storage::Value payload;
  SimTime posted_at = 0;
  SimTime delivered_at = 0;
};

struct BusStats {
  std::uint64_t posted = 0;
  std::uint64_t delivered = 0;
  SimDuration worst_latency = 0;
};

class Bus {
 public:
  explicit Bus(TdmaSchedule schedule);

  /// Registers a receiving endpoint. Endpoints that only transmit must still
  /// hold a slot in the schedule but need not register.
  void register_endpoint(EndpointId endpoint);

  /// Posts a message at time `now`. The message is delivered (broadcast) at
  /// the end of the source's next slot. Precondition: the source owns a slot.
  void post(EndpointId source, const std::string& topic,
            storage::Value payload, SimTime now);

  /// Moves every message whose delivery instant is <= `until` into the
  /// mailboxes of all registered endpoints other than the sender.
  void deliver_until(SimTime until);

  /// Drains the mailbox of `endpoint`, in delivery order.
  [[nodiscard]] std::vector<Message> collect(EndpointId endpoint);

  /// Latest delivered message on `topic` visible to `endpoint` without
  /// draining its mailbox (peeking is what activity monitors use).
  [[nodiscard]] const Message* peek_latest(EndpointId endpoint,
                                           const std::string& topic) const;

  [[nodiscard]] const TdmaSchedule& schedule() const { return schedule_; }
  [[nodiscard]] const BusStats& stats() const { return stats_; }

 private:
  TdmaSchedule schedule_;
  std::vector<Message> in_flight_;  // sorted by delivered_at
  std::map<EndpointId, std::vector<Message>> mailboxes_;
  BusStats stats_;
};

}  // namespace arfs::bus
