#include "arfs/bus/interface_unit.hpp"

namespace arfs::bus {

void SensorUnit::poll(Bus& bus, SimTime now) {
  if (failed_) return;
  bus.post(endpoint_, topic_, sample_(now), now);
}

void ActuatorUnit::poll(Bus& bus, SimTime now) {
  for (const Message& msg : bus.collect(endpoint_)) {
    if (msg.topic == topic_) apply_(msg.payload, now);
  }
}

}  // namespace arfs::bus
