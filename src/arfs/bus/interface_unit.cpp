#include "arfs/bus/interface_unit.hpp"

#include "arfs/common/check.hpp"

namespace arfs::bus {

namespace {

/// Corrupt applies tolerated at one cursor position before concluding the
/// source journal itself is damaged (transit faults clear on the first
/// clean retransmission; a latent media fault never does).
constexpr std::uint32_t kMaxCorruptRetries = 3;

}  // namespace

void SensorUnit::poll(Bus& bus, SimTime now) {
  if (failed_) return;
  bus.post(endpoint_, topic_, sample_(now), now);
}

void ActuatorUnit::poll(Bus& bus, SimTime now) {
  for (const Message& msg : bus.collect(endpoint_)) {
    if (msg.topic == topic_) apply_(msg.payload, now);
  }
}

std::size_t ShippingUnit::step(std::size_t budget) {
  using storage::durable::ApplyStatus;
  using storage::durable::ShipBatch;
  using storage::durable::ShipStatus;

  if (needs_full_copy_ || budget == 0) return 0;

  ShipBatch batch;
  switch (shipper_.next_batch(replica_->cursor(), budget, batch)) {
    case ShipStatus::kUpToDate:
      return 0;
    case ShipStatus::kRebase: {
      replica_->rebase(shipper_.engine().journal_generation(),
                       shipper_.engine().rebase_epoch());
      shipper_.engine().note_ship_rebase();
      ++stats_.rebases;
      // The rebase moved no bytes; the fresh generation's tail (if any)
      // ships in this same slot.
      if (shipper_.next_batch(replica_->cursor(), budget, batch) !=
          ShipStatus::kBatch) {
        return 0;
      }
      break;
    }
    case ShipStatus::kCursorLost:
      needs_full_copy_ = true;
      ++stats_.fallbacks;
      shipper_.engine().note_ship_fallback();
      return 0;
    case ShipStatus::kBatch:
      break;
  }

  const std::size_t bytes = batch.bytes.size();
  switch (replica_->apply(batch)) {
    case ApplyStatus::kApplied:
      consecutive_corrupt_ = 0;
      ++stats_.batches_shipped;
      stats_.bytes_shipped += bytes;
      return bytes;
    case ApplyStatus::kCorrupt:
      ++stats_.corrupt_batches;
      if (++consecutive_corrupt_ >= kMaxCorruptRetries) {
        // The same source bytes failed repeatedly: the journal itself is
        // damaged in the shipped range. Only a full copy can converge.
        needs_full_copy_ = true;
        ++stats_.fallbacks;
        shipper_.engine().note_ship_fallback();
      }
      return 0;
    case ApplyStatus::kDuplicate:
    case ApplyStatus::kGap:
    case ApplyStatus::kBadGeneration:
      // The shipper reads at the replica's own cursor, so none of these can
      // occur in-unit; treat as a protocol bug.
      ensure(false, "shipping unit produced an unappliable batch");
      return 0;
  }
  return 0;
}

std::size_t ShippingUnit::poll(const TdmaSchedule& schedule) {
  const std::uint32_t budget = schedule.ship_budget(endpoint_);
  require(budget > 0, "endpoint owns no shipping slot");
  ++stats_.slots_polled;
  return step(budget);
}

std::size_t ShippingUnit::catch_up() {
  std::size_t total = 0;
  // Whole records per step keep the replica's pending buffer bounded; the
  // loop ends at kUpToDate (step returns 0) or on a fallback.
  constexpr std::size_t kCatchUpChunk = 64 * 1024;
  while (true) {
    const std::size_t moved = step(kCatchUpChunk);
    if (moved == 0) break;
    total += moved;
  }
  return total;
}

}  // namespace arfs::bus
