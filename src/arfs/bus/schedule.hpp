// Static TDMA schedule for the time-triggered bus.
//
// The architecture (paper section 3, Figure 1) assumes an "ultra-dependable,
// real-time data bus", citing the Time-Triggered Architecture. TTA's key
// property is that transmission slots are assigned statically, so message
// latency is bounded by construction. This class is that static assignment: a
// repeating round of slots, each owned by exactly one endpoint.
#pragma once

#include <optional>
#include <vector>

#include "arfs/common/ids.hpp"
#include "arfs/common/types.hpp"

namespace arfs::bus {

/// What a slot carries. Data slots are the classic TTA message slots;
/// shipping slots carry journal-record batches (storage::durable shipping)
/// under an explicit per-slot byte budget, so replication traffic is
/// schedulable bandwidth like everything else on the bus and can never
/// crowd out control messages. Quorum-ship slots are shipping slots
/// addressed to one member of a replica cohort: the fan-out to N replicas
/// is N statically scheduled slots, not one slot shared N ways.
enum class SlotKind : std::uint8_t { kData, kShipping, kQuorumShip };

struct Slot {
  EndpointId owner;
  SimDuration length;  ///< Slot duration in simulated microseconds.
  SlotKind kind = SlotKind::kData;
  /// Shipping slots: bytes one round may carry (partial batches resume
  /// next round). 0 for data slots.
  std::uint32_t byte_budget = 0;
  /// Quorum-ship slots: which cohort member this slot feeds. 0 otherwise.
  std::uint32_t member = 0;
};

class TdmaSchedule {
 public:
  TdmaSchedule() = default;

  /// Appends a data slot to the round. Precondition: length > 0.
  void add_slot(EndpointId owner, SimDuration length);

  /// Appends a journal-shipping slot with a per-round byte budget.
  /// Preconditions: length > 0, byte_budget > 0.
  void add_ship_slot(EndpointId owner, SimDuration length,
                     std::uint32_t byte_budget);

  /// Appends a quorum-ship slot feeding cohort member `member` of `owner`'s
  /// replica group. Preconditions: length > 0, byte_budget > 0.
  void add_quorum_slot(EndpointId owner, std::uint32_t member,
                       SimDuration length, std::uint32_t byte_budget);

  /// Byte budget of `owner`'s shipping slot; 0 when it holds none.
  [[nodiscard]] std::uint32_t ship_budget(EndpointId owner) const;

  /// Byte budget of `owner`'s quorum-ship slot for `member`; 0 when it
  /// holds none.
  [[nodiscard]] std::uint32_t quorum_budget(EndpointId owner,
                                            std::uint32_t member) const;

  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }
  [[nodiscard]] const std::vector<Slot>& slots() const { return slots_; }

  /// Total duration of one TDMA round. 0 when the schedule is empty.
  [[nodiscard]] SimDuration round_length() const { return round_length_; }

  /// True if `owner` holds at least one *data* slot (message transmission;
  /// shipping slots carry no messages).
  [[nodiscard]] bool has_endpoint(EndpointId owner) const;

  /// Earliest instant >= `now` at which `owner` may begin transmitting.
  /// Preconditions: schedule is non-empty and `owner` holds a slot.
  [[nodiscard]] SimTime next_transmit_time(EndpointId owner,
                                           SimTime now) const;

  /// End of the slot that begins at `slot_start` for `owner`. The message is
  /// considered delivered to every receiver at this instant.
  /// Preconditions as for next_transmit_time; `slot_start` must be a start
  /// instant returned by it.
  [[nodiscard]] SimTime delivery_time(EndpointId owner,
                                      SimTime slot_start) const;

  /// Worst-case latency from posting to delivery for `owner`: one full round
  /// (just missed the slot) plus the slot length.
  [[nodiscard]] SimDuration worst_case_latency(EndpointId owner) const;

 private:
  /// Offset of the first *data* slot owned by `owner` within the round,
  /// plus its length; nullopt if the endpoint owns no data slot. Message
  /// timing never resolves to a shipping slot.
  [[nodiscard]] std::optional<Slot> find_slot(EndpointId owner,
                                              SimDuration* offset_out) const;

  std::vector<Slot> slots_;
  SimDuration round_length_ = 0;
};

}  // namespace arfs::bus
