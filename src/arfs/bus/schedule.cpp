#include "arfs/bus/schedule.hpp"

#include "arfs/common/check.hpp"

namespace arfs::bus {

void TdmaSchedule::add_slot(EndpointId owner, SimDuration length) {
  require(length > 0, "TDMA slot length must be positive");
  slots_.push_back(Slot{owner, length, SlotKind::kData, 0});
  round_length_ += length;
}

void TdmaSchedule::add_ship_slot(EndpointId owner, SimDuration length,
                                 std::uint32_t byte_budget) {
  require(length > 0, "TDMA slot length must be positive");
  require(byte_budget > 0, "shipping slot needs a positive byte budget");
  slots_.push_back(Slot{owner, length, SlotKind::kShipping, byte_budget, 0});
  round_length_ += length;
}

void TdmaSchedule::add_quorum_slot(EndpointId owner, std::uint32_t member,
                                   SimDuration length,
                                   std::uint32_t byte_budget) {
  require(length > 0, "TDMA slot length must be positive");
  require(byte_budget > 0, "quorum slot needs a positive byte budget");
  slots_.push_back(
      Slot{owner, length, SlotKind::kQuorumShip, byte_budget, member});
  round_length_ += length;
}

std::uint32_t TdmaSchedule::ship_budget(EndpointId owner) const {
  for (const Slot& slot : slots_) {
    if (slot.kind == SlotKind::kShipping && slot.owner == owner) {
      return slot.byte_budget;
    }
  }
  return 0;
}

std::uint32_t TdmaSchedule::quorum_budget(EndpointId owner,
                                          std::uint32_t member) const {
  for (const Slot& slot : slots_) {
    if (slot.kind == SlotKind::kQuorumShip && slot.owner == owner &&
        slot.member == member) {
      return slot.byte_budget;
    }
  }
  return 0;
}

bool TdmaSchedule::has_endpoint(EndpointId owner) const {
  SimDuration unused = 0;
  return find_slot(owner, &unused).has_value();
}

std::optional<Slot> TdmaSchedule::find_slot(EndpointId owner,
                                            SimDuration* offset_out) const {
  SimDuration offset = 0;
  for (const Slot& slot : slots_) {
    if (slot.kind == SlotKind::kData && slot.owner == owner) {
      *offset_out = offset;
      return slot;
    }
    offset += slot.length;
  }
  return std::nullopt;
}

SimTime TdmaSchedule::next_transmit_time(EndpointId owner, SimTime now) const {
  require(round_length_ > 0, "TDMA schedule is empty");
  SimDuration offset = 0;
  const std::optional<Slot> slot = find_slot(owner, &offset);
  require(slot.has_value(), "endpoint owns no TDMA slot");

  const SimTime round_start = (now / round_length_) * round_length_;
  SimTime candidate = round_start + offset;
  if (candidate < now) candidate += round_length_;
  return candidate;
}

SimTime TdmaSchedule::delivery_time(EndpointId owner,
                                    SimTime slot_start) const {
  SimDuration offset = 0;
  const std::optional<Slot> slot = find_slot(owner, &offset);
  require(slot.has_value(), "endpoint owns no TDMA slot");
  return slot_start + slot->length;
}

SimDuration TdmaSchedule::worst_case_latency(EndpointId owner) const {
  SimDuration offset = 0;
  const std::optional<Slot> slot = find_slot(owner, &offset);
  require(slot.has_value(), "endpoint owns no TDMA slot");
  return round_length_ + slot->length;
}

}  // namespace arfs::bus
