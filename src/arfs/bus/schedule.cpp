#include "arfs/bus/schedule.hpp"

#include "arfs/common/check.hpp"

namespace arfs::bus {

void TdmaSchedule::add_slot(EndpointId owner, SimDuration length) {
  require(length > 0, "TDMA slot length must be positive");
  slots_.push_back(Slot{owner, length});
  round_length_ += length;
}

bool TdmaSchedule::has_endpoint(EndpointId owner) const {
  SimDuration unused = 0;
  return find_slot(owner, &unused).has_value();
}

std::optional<Slot> TdmaSchedule::find_slot(EndpointId owner,
                                            SimDuration* offset_out) const {
  SimDuration offset = 0;
  for (const Slot& slot : slots_) {
    if (slot.owner == owner) {
      *offset_out = offset;
      return slot;
    }
    offset += slot.length;
  }
  return std::nullopt;
}

SimTime TdmaSchedule::next_transmit_time(EndpointId owner, SimTime now) const {
  require(round_length_ > 0, "TDMA schedule is empty");
  SimDuration offset = 0;
  const std::optional<Slot> slot = find_slot(owner, &offset);
  require(slot.has_value(), "endpoint owns no TDMA slot");

  const SimTime round_start = (now / round_length_) * round_length_;
  SimTime candidate = round_start + offset;
  if (candidate < now) candidate += round_length_;
  return candidate;
}

SimTime TdmaSchedule::delivery_time(EndpointId owner,
                                    SimTime slot_start) const {
  SimDuration offset = 0;
  const std::optional<Slot> slot = find_slot(owner, &offset);
  require(slot.has_value(), "endpoint owns no TDMA slot");
  return slot_start + slot->length;
}

SimDuration TdmaSchedule::worst_case_latency(EndpointId owner) const {
  SimDuration offset = 0;
  const std::optional<Slot> slot = find_slot(owner, &offset);
  require(slot.has_value(), "endpoint owns no TDMA slot");
  return round_length_ + slot->length;
}

}  // namespace arfs::bus
