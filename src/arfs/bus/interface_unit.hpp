// Sensor/actuator interface units.
//
// Paper section 3: "Sensors and actuators ... are connected to the data bus
// via interface units that employ the communications protocol required by the
// data bus." A SensorUnit samples a physical quantity each frame and
// broadcasts it on a topic; an ActuatorUnit receives commands from a topic
// and applies them to a physical device. Both are simulation adapters: the
// physical side is a std::function supplied by the scenario.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "arfs/bus/bus.hpp"
#include "arfs/bus/schedule.hpp"
#include "arfs/common/ids.hpp"
#include "arfs/common/types.hpp"
#include "arfs/storage/durable/shipping.hpp"

namespace arfs::bus {

class SensorUnit {
 public:
  using Sample = std::function<storage::Value(SimTime)>;

  /// `endpoint` must own a slot in the bus schedule.
  SensorUnit(EndpointId endpoint, std::string topic, Sample sample)
      : endpoint_(endpoint), topic_(std::move(topic)),
        sample_(std::move(sample)) {}

  /// Samples the physical quantity and posts the reading. Call once per
  /// frame from the platform loop.
  void poll(Bus& bus, SimTime now);

  [[nodiscard]] EndpointId endpoint() const { return endpoint_; }
  [[nodiscard]] const std::string& topic() const { return topic_; }

  /// A failed sensor stops posting; failure is visible to activity monitors
  /// as silence on the topic.
  void fail() { failed_ = true; }
  void repair() { failed_ = false; }
  [[nodiscard]] bool failed() const { return failed_; }

 private:
  EndpointId endpoint_;
  std::string topic_;
  Sample sample_;
  bool failed_ = false;
};

class ActuatorUnit {
 public:
  using Apply = std::function<void(const storage::Value&, SimTime)>;

  ActuatorUnit(EndpointId endpoint, std::string topic, Apply apply)
      : endpoint_(endpoint), topic_(std::move(topic)),
        apply_(std::move(apply)) {}

  /// Drains the endpoint's mailbox and applies every command on the topic.
  /// Call once per frame after Bus::deliver_until.
  void poll(Bus& bus, SimTime now);

  [[nodiscard]] EndpointId endpoint() const { return endpoint_; }
  [[nodiscard]] const std::string& topic() const { return topic_; }

 private:
  EndpointId endpoint_;
  std::string topic_;
  Apply apply_;
};

/// Journal-shipping interface unit: pairs a source DurabilityEngine with a
/// standby ShippedReplica and moves one batch per shipping slot, within the
/// slot's byte budget. A batch that does not fit is simply cut at the
/// budget — the replica buffers the partial record tail and the next round
/// resumes it, so shipping consumes exactly its scheduled bandwidth.
///
/// Rebases across journal compactions are handled internally; a lost
/// cursor (lagged past the retained generation, or a lossy recovery) sets
/// needs_full_copy() and pauses shipping until the owner reseeds the
/// replica (ShippedReplica::reset_from_full_copy) and acknowledges.
class ShippingUnit {
 public:
  /// Both references must outlive the unit.
  ShippingUnit(EndpointId endpoint,
               storage::durable::DurabilityEngine& source,
               storage::durable::ShippedReplica& replica)
      : endpoint_(endpoint), shipper_(source), replica_(&replica) {}

  /// One shipping slot: moves at most the slot's byte budget. Returns the
  /// bytes put on the bus. Precondition: `schedule` grants this endpoint a
  /// shipping slot.
  std::size_t poll(const TdmaSchedule& schedule);

  /// Relocation-time catch-up: drains the remaining shippable tail
  /// regardless of slot budgets (the reconfiguration owns the bus at a
  /// halt boundary). Stops early when a full copy becomes necessary.
  /// Returns the bytes moved.
  std::size_t catch_up();

  /// True when the replica's cursor was lost and shipping is paused until
  /// the owner reseeds the replica from a full-state copy.
  [[nodiscard]] bool needs_full_copy() const { return needs_full_copy_; }
  /// Owner reseeded the replica; shipping resumes from its new cursor. The
  /// replica's warmth is now bought, not streamed, so the next warm
  /// relocation may not claim avoided-bytes credit.
  void acknowledge_full_copy() {
    needs_full_copy_ = false;
    warm_credit_ = false;
  }
  /// Whether a warm relocation may claim avoided-bytes credit: false
  /// exactly when the warmth was bought by a full-copy reseed since the
  /// last claim. Consuming the credit re-arms it.
  [[nodiscard]] bool take_warm_credit() {
    const bool credit = warm_credit_;
    warm_credit_ = true;
    return credit;
  }

  [[nodiscard]] EndpointId endpoint() const { return endpoint_; }
  [[nodiscard]] storage::durable::ShippedReplica& replica() {
    return *replica_;
  }
  [[nodiscard]] storage::durable::DurabilityEngine& source() {
    return shipper_.engine();
  }

  struct Stats {
    std::uint64_t slots_polled = 0;
    std::uint64_t batches_shipped = 0;
    std::uint64_t bytes_shipped = 0;
    std::uint64_t rebases = 0;
    std::uint64_t corrupt_batches = 0;
    std::uint64_t fallbacks = 0;  ///< Times needs_full_copy() was raised.
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// The unit's own mutable state (the endpoint, shipper, and replica
  /// wiring are construction-time constants).
  struct Checkpoint {
    bool needs_full_copy = false;
    bool warm_credit = true;
    std::uint32_t consecutive_corrupt = 0;
    Stats stats;
  };
  [[nodiscard]] Checkpoint checkpoint_state() const {
    return {needs_full_copy_, warm_credit_, consecutive_corrupt_, stats_};
  }
  void restore_state(const Checkpoint& cp) {
    needs_full_copy_ = cp.needs_full_copy;
    warm_credit_ = cp.warm_credit;
    consecutive_corrupt_ = cp.consecutive_corrupt;
    stats_ = cp.stats;
  }

 private:
  /// Ships at most one batch of up to `budget` bytes; handles rebase.
  std::size_t step(std::size_t budget);

  EndpointId endpoint_;
  storage::durable::JournalShipper shipper_;
  storage::durable::ShippedReplica* replica_;
  bool needs_full_copy_ = false;
  bool warm_credit_ = true;
  /// Consecutive corrupt applies at one cursor position: the source's own
  /// journal bytes are bad (latent media fault without a crash), so
  /// retransmission can never succeed — escalate to a full copy.
  std::uint32_t consecutive_corrupt_ = 0;
  Stats stats_;
};

}  // namespace arfs::bus
