// Sensor/actuator interface units.
//
// Paper section 3: "Sensors and actuators ... are connected to the data bus
// via interface units that employ the communications protocol required by the
// data bus." A SensorUnit samples a physical quantity each frame and
// broadcasts it on a topic; an ActuatorUnit receives commands from a topic
// and applies them to a physical device. Both are simulation adapters: the
// physical side is a std::function supplied by the scenario.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "arfs/bus/bus.hpp"
#include "arfs/common/ids.hpp"
#include "arfs/common/types.hpp"

namespace arfs::bus {

class SensorUnit {
 public:
  using Sample = std::function<storage::Value(SimTime)>;

  /// `endpoint` must own a slot in the bus schedule.
  SensorUnit(EndpointId endpoint, std::string topic, Sample sample)
      : endpoint_(endpoint), topic_(std::move(topic)),
        sample_(std::move(sample)) {}

  /// Samples the physical quantity and posts the reading. Call once per
  /// frame from the platform loop.
  void poll(Bus& bus, SimTime now);

  [[nodiscard]] EndpointId endpoint() const { return endpoint_; }
  [[nodiscard]] const std::string& topic() const { return topic_; }

  /// A failed sensor stops posting; failure is visible to activity monitors
  /// as silence on the topic.
  void fail() { failed_ = true; }
  void repair() { failed_ = false; }
  [[nodiscard]] bool failed() const { return failed_; }

 private:
  EndpointId endpoint_;
  std::string topic_;
  Sample sample_;
  bool failed_ = false;
};

class ActuatorUnit {
 public:
  using Apply = std::function<void(const storage::Value&, SimTime)>;

  ActuatorUnit(EndpointId endpoint, std::string topic, Apply apply)
      : endpoint_(endpoint), topic_(std::move(topic)),
        apply_(std::move(apply)) {}

  /// Drains the endpoint's mailbox and applies every command on the topic.
  /// Call once per frame after Bus::deliver_until.
  void poll(Bus& bus, SimTime now);

  [[nodiscard]] EndpointId endpoint() const { return endpoint_; }
  [[nodiscard]] const std::string& topic() const { return topic_; }

 private:
  EndpointId endpoint_;
  std::string topic_;
  Apply apply_;
};

}  // namespace arfs::bus
