#include "arfs/bus/bus.hpp"

#include <algorithm>
#include <utility>

#include "arfs/common/check.hpp"

namespace arfs::bus {

Bus::Bus(TdmaSchedule schedule) : schedule_(std::move(schedule)) {}

void Bus::register_endpoint(EndpointId endpoint) {
  mailboxes_.try_emplace(endpoint);
}

void Bus::post(EndpointId source, const std::string& topic,
               storage::Value payload, SimTime now) {
  const SimTime slot_start = schedule_.next_transmit_time(source, now);
  Message msg;
  msg.source = source;
  msg.topic = topic;
  msg.payload = std::move(payload);
  msg.posted_at = now;
  msg.delivered_at = schedule_.delivery_time(source, slot_start);

  auto it = std::upper_bound(in_flight_.begin(), in_flight_.end(), msg,
                             [](const Message& a, const Message& b) {
                               return a.delivered_at < b.delivered_at;
                             });
  in_flight_.insert(it, std::move(msg));
  ++stats_.posted;
}

void Bus::deliver_until(SimTime until) {
  std::size_t n = 0;
  while (n < in_flight_.size() && in_flight_[n].delivered_at <= until) ++n;
  for (std::size_t i = 0; i < n; ++i) {
    const Message& msg = in_flight_[i];
    stats_.worst_latency =
        std::max(stats_.worst_latency, msg.delivered_at - msg.posted_at);
    for (auto& [endpoint, box] : mailboxes_) {
      if (endpoint == msg.source) continue;  // broadcast excludes the sender
      box.push_back(msg);
      ++stats_.delivered;
    }
  }
  in_flight_.erase(in_flight_.begin(),
                   in_flight_.begin() + static_cast<std::ptrdiff_t>(n));
}

std::vector<Message> Bus::collect(EndpointId endpoint) {
  const auto it = mailboxes_.find(endpoint);
  require(it != mailboxes_.end(), "collect() on unregistered endpoint");
  std::vector<Message> out = std::move(it->second);
  it->second.clear();
  return out;
}

const Message* Bus::peek_latest(EndpointId endpoint,
                                const std::string& topic) const {
  const auto it = mailboxes_.find(endpoint);
  if (it == mailboxes_.end()) return nullptr;
  const std::vector<Message>& box = it->second;
  for (auto rit = box.rbegin(); rit != box.rend(); ++rit) {
    if (rit->topic == topic) return &*rit;
  }
  return nullptr;
}

}  // namespace arfs::bus
