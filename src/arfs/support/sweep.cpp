#include "arfs/support/sweep.hpp"

namespace arfs::support {

std::vector<std::uint64_t> mission_seeds(std::size_t missions,
                                         std::uint64_t base_seed) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(missions);
  for (std::size_t i = 0; i < missions; ++i) {
    seeds.push_back(sim::job_seed(base_seed, i));
  }
  return seeds;
}

}  // namespace arfs::support
