#include "arfs/support/conformance.hpp"

#include <sstream>

#include "arfs/common/check.hpp"
#include "arfs/core/stable_region.hpp"
#include "arfs/storage/stable_storage.hpp"

namespace arfs::support {

bool ConformanceReport::all_passed() const {
  for (const ConformanceCase& c : cases) {
    if (!c.passed) return false;
  }
  return true;
}

std::string ConformanceReport::summary() const {
  std::ostringstream os;
  std::size_t passed = 0;
  for (const ConformanceCase& c : cases) {
    if (c.passed) ++passed;
  }
  os << passed << "/" << cases.size() << " conformance cases passed";
  for (const ConformanceCase& c : cases) {
    if (!c.passed) os << "\n  FAILED " << c.name << ": " << c.detail;
  }
  return os.str();
}

namespace {

using core::Directive;
using core::DirectiveKind;
using core::ReconfigurableApp;

struct Bench {
  storage::StableStorage backing;
  core::StableRegion region{backing, "conf/"};
  core::MessageRouter router;
  Cycle cycle = 0;

  ReconfigurableApp::Ctx ctx(bool with_host = true) {
    ReconfigurableApp::Ctx c;
    c.cycle = cycle;
    c.now = static_cast<SimTime>(cycle) * 10'000;
    c.own = with_host ? &region : nullptr;
    c.mail = &router.endpoint(AppId{1});
    return c;
  }

  void end_frame() {
    backing.commit(cycle);
    router.exchange(cycle + 1, [](AppId) { return true; });
    ++cycle;
  }
};

Directive make_directive(DirectiveKind kind, std::optional<SpecId> target) {
  Directive d;
  d.kind = kind;
  d.target_spec = target;
  d.target_config = ConfigId{2};
  return d;
}

/// Drives one stage to completion within `bound` frames; empty string on
/// success, failure detail otherwise.
std::string drive_stage(ReconfigurableApp& app, Bench& bench,
                        DirectiveKind kind, std::optional<SpecId> target,
                        Cycle bound) {
  for (Cycle i = 0; i < bound; ++i) {
    const auto r = app.frame_step(bench.ctx(), make_directive(kind, target));
    bench.end_frame();
    if (!r.ok) return "stage raised a fault: " + r.fault_detail;
    if (r.phase_done) return {};
  }
  return "stage did not complete within the bound";
}

}  // namespace

ConformanceReport check_app_conformance(const ConformanceInputs& inputs) {
  require(static_cast<bool>(inputs.factory), "factory must be callable");
  require(inputs.stage_bound >= 1, "stage bound must be at least one frame");
  ConformanceReport report;

  const auto run_case =
      [&](const std::string& name,
          const std::function<std::string()>& body) {
        ConformanceCase c;
        c.name = name;
        try {
          c.detail = body();
          c.passed = c.detail.empty();
        } catch (const std::exception& e) {
          c.passed = false;
          c.detail = std::string("threw: ") + e.what();
        }
        report.cases.push_back(std::move(c));
      };

  const auto fresh = [&](Bench& bench) {
    auto app = inputs.factory();
    app->force_spec(inputs.initial_spec);
    // One frame of normal operation to settle.
    (void)app->frame_step(bench.ctx(),
                          make_directive(DirectiveKind::kNone, {}));
    bench.end_frame();
    app->mark_interrupted();
    return app;
  };

  run_case("halt-completes", [&]() -> std::string {
    Bench bench;
    auto app = fresh(bench);
    const std::string err = drive_stage(*app, bench, DirectiveKind::kHalt,
                                        inputs.target_spec,
                                        inputs.stage_bound);
    if (!err.empty()) return err;
    if (!app->postcondition_ok()) return "postcondition flag not set";
    if (app->reconf_state() != trace::ReconfState::kHalted) {
      return "application is not halted";
    }
    return {};
  });

  run_case("prepare-completes", [&]() -> std::string {
    Bench bench;
    auto app = fresh(bench);
    std::string err = drive_stage(*app, bench, DirectiveKind::kHalt,
                                  inputs.target_spec, inputs.stage_bound);
    if (!err.empty()) return "halt: " + err;
    err = drive_stage(*app, bench, DirectiveKind::kPrepare,
                      inputs.target_spec, inputs.stage_bound);
    if (!err.empty()) return err;
    if (!app->transition_ok()) return "transition flag not set";
    return {};
  });

  run_case("initialize-completes", [&]() -> std::string {
    Bench bench;
    auto app = fresh(bench);
    std::string err = drive_stage(*app, bench, DirectiveKind::kHalt,
                                  inputs.target_spec, inputs.stage_bound);
    if (!err.empty()) return "halt: " + err;
    err = drive_stage(*app, bench, DirectiveKind::kPrepare,
                      inputs.target_spec, inputs.stage_bound);
    if (!err.empty()) return "prepare: " + err;
    err = drive_stage(*app, bench, DirectiveKind::kInitialize,
                      inputs.target_spec, inputs.stage_bound);
    if (!err.empty()) return err;
    if (!app->precondition_ok()) return "precondition flag not set";
    return {};
  });

  run_case("start-applies-spec", [&]() -> std::string {
    Bench bench;
    auto app = fresh(bench);
    for (const DirectiveKind kind :
         {DirectiveKind::kHalt, DirectiveKind::kPrepare,
          DirectiveKind::kInitialize}) {
      const std::string err = drive_stage(*app, bench, kind,
                                          inputs.target_spec,
                                          inputs.stage_bound);
      if (!err.empty()) return err;
    }
    app->start(inputs.target_spec);
    if (app->reconf_state() != trace::ReconfState::kNormal) {
      return "application did not return to normal";
    }
    if (app->current_spec() != inputs.target_spec) {
      return "application is not running the target specification";
    }
    const auto r = app->frame_step(bench.ctx(),
                                   make_directive(DirectiveKind::kNone, {}));
    if (!r.ok) return "first AFTA under the new spec faulted";
    return {};
  });

  run_case("hold-does-no-work", [&]() -> std::string {
    Bench bench;
    auto app = fresh(bench);
    const std::string err = drive_stage(*app, bench, DirectiveKind::kHalt,
                                        inputs.target_spec,
                                        inputs.stage_bound);
    if (!err.empty()) return err;
    const auto r = app->frame_step(bench.ctx(),
                                   make_directive(DirectiveKind::kNone, {}));
    if (!r.ok) return "hold frame faulted";
    if (app->reconf_state() != trace::ReconfState::kHalted) {
      return "hold frame changed the reconfiguration state";
    }
    return {};
  });

  if (inputs.check_off_target) {
    run_case("off-target-initialize", [&]() -> std::string {
      Bench bench;
      auto app = fresh(bench);
      std::string err = drive_stage(*app, bench, DirectiveKind::kHalt,
                                    std::nullopt, inputs.stage_bound);
      if (!err.empty()) return "halt: " + err;
      err = drive_stage(*app, bench, DirectiveKind::kPrepare, std::nullopt,
                        inputs.stage_bound);
      if (!err.empty()) return "prepare: " + err;
      err = drive_stage(*app, bench, DirectiveKind::kInitialize,
                        std::nullopt, inputs.stage_bound);
      if (!err.empty()) return err;
      app->start(std::nullopt);
      const auto r = app->frame_step(
          bench.ctx(), make_directive(DirectiveKind::kNone, {}));
      if (!r.ok) return "off application faulted on a normal frame";
      return {};
    });
  }

  run_case("volatile-loss-tolerated", [&]() -> std::string {
    Bench bench;
    auto app = fresh(bench);
    app->on_host_failure();
    for (const DirectiveKind kind :
         {DirectiveKind::kHalt, DirectiveKind::kPrepare,
          DirectiveKind::kInitialize}) {
      const std::string err = drive_stage(*app, bench, kind,
                                          inputs.target_spec,
                                          inputs.stage_bound);
      if (!err.empty()) return err;
    }
    return {};
  });

  run_case("no-host-halt-trivial", [&]() -> std::string {
    Bench bench;
    auto app = fresh(bench);
    const auto r = app->frame_step(
        bench.ctx(/*with_host=*/false),
        make_directive(DirectiveKind::kHalt, inputs.target_spec));
    if (!r.phase_done) return "host-less halt did not complete";
    if (!app->postcondition_ok()) return "postcondition flag not set";
    return {};
  });

  return report;
}

}  // namespace arfs::support
