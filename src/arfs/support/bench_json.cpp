#include "arfs/support/bench_json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace arfs::support {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// JSON has no NaN/Inf literals; clamp them to null-adjacent zero rather
/// than emitting an unparsable token.
void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "0";
    return;
  }
  std::ostringstream os;
  os.precision(17);
  os << v;
  out += os.str();
}

// --- minimal recursive-descent JSON validator ---

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  int depth = 0;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }
  [[nodiscard]] bool eof() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  bool literal(const char* word) {
    std::size_t n = 0;
    while (word[n] != '\0') {
      if (pos + n >= text.size() || text[pos + n] != word[n]) return false;
      ++n;
    }
    pos += n;
    return true;
  }

  bool string() {
    if (eof() || peek() != '"') return false;
    ++pos;
    while (!eof()) {
      char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (eof()) return false;
        char e = text[pos++];
        switch (e) {
          case '"':
          case '\\':
          case '/':
          case 'b':
          case 'f':
          case 'n':
          case 'r':
          case 't':
            break;
          case 'u':
            for (int i = 0; i < 4; ++i) {
              if (eof() || !std::isxdigit(
                               static_cast<unsigned char>(text[pos]))) {
                return false;
              }
              ++pos;
            }
            break;
          default:
            return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool number() {
    std::size_t start = pos;
    if (!eof() && peek() == '-') ++pos;
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return false;
    }
    if (peek() == '0') {
      ++pos;
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    }
    if (!eof() && peek() == '.') {
      ++pos;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return false;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return false;
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    }
    return pos > start;
  }

  bool value() {
    if (++depth > 64) return false;  // runaway nesting
    skip_ws();
    if (eof()) return false;
    bool ok = false;
    switch (peek()) {
      case '{':
        ok = object();
        break;
      case '[':
        ok = array();
        break;
      case '"':
        ok = string();
        break;
      case 't':
        ok = literal("true");
        break;
      case 'f':
        ok = literal("false");
        break;
      case 'n':
        ok = literal("null");
        break;
      default:
        ok = number();
    }
    --depth;
    return ok;
  }

  bool object() {
    ++pos;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (eof() || peek() != ':') return false;
      ++pos;
      if (!value()) return false;
      skip_ws();
      if (eof()) return false;
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == '}') {
        ++pos;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos;
      return true;
    }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (eof()) return false;
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == ']') {
        ++pos;
        return true;
      }
      return false;
    }
  }
};

}  // namespace

void BenchTrajectory::record(const std::string& name, double value,
                             std::string unit) {
  for (BenchEntry& e : entries_) {
    if (e.name == name) {
      e.value = value;
      e.unit = std::move(unit);
      return;
    }
  }
  entries_.push_back({name, value, std::move(unit)});
}

std::string BenchTrajectory::to_json() const {
  std::string out = "{";
  bool first = true;
  for (const BenchEntry& e : entries_) {
    if (!first) out += ", ";
    first = false;
    append_escaped(out, e.name);
    out += ": {\"value\": ";
    append_number(out, e.value);
    out += ", \"unit\": ";
    append_escaped(out, e.unit);
    out += "}";
  }
  out += "}\n";
  return out;
}

bool BenchTrajectory::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

bool json_valid(const std::string& text) {
  Parser p{text};
  if (!p.value()) return false;
  p.skip_ws();
  return p.eof();
}

}  // namespace arfs::support
