// Benchmark trajectory output.
//
// Experiment binaries print human-readable report tables; CI and plotting
// scripts want the same numbers machine-readable. A BenchTrajectory collects
// named scalar measurements as a report runs and serializes them as a flat
// JSON object — benchmark name → {"value": v, "unit": "u"} — written to the
// path given by `--json <path>` (see bench/bench_main.hpp).
//
// json_valid() is a minimal structural validator used by the CI test that
// asserts every BENCH_*.json the emitters produce actually parses.
#pragma once

#include <string>
#include <vector>

namespace arfs::support {

/// One recorded measurement.
struct BenchEntry {
  std::string name;
  double value = 0.0;
  std::string unit;
};

/// An append-only log of named measurements with a JSON serializer. Names
/// are kept in record order; recording a name twice overwrites the first
/// value (reports may refine a number as they go).
class BenchTrajectory {
 public:
  /// Records (or overwrites) the measurement `name` = `value` `unit`.
  void record(const std::string& name, double value, std::string unit);

  [[nodiscard]] const std::vector<BenchEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Serializes as `{"name": {"value": v, "unit": "u"}, ...}`.
  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() to `path`. Returns false if the file cannot be
  /// opened or written.
  bool write_json(const std::string& path) const;

 private:
  std::vector<BenchEntry> entries_;
};

/// Structural JSON validity check: objects, arrays, strings (with escapes),
/// numbers, true/false/null, correct comma/colon placement, nothing after
/// the top-level value. No semantic interpretation.
[[nodiscard]] bool json_valid(const std::string& text);

}  // namespace arfs::support
