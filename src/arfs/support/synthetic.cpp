#include "arfs/support/synthetic.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "arfs/common/check.hpp"

namespace arfs::support {

AppId synthetic_app(std::size_t index) {
  return AppId{static_cast<std::uint32_t>(index + 1)};
}
SpecId synthetic_spec(std::size_t app_index, std::size_t spec_index) {
  return SpecId{static_cast<std::uint32_t>(1000 + app_index * 64 + spec_index)};
}
ConfigId synthetic_config(std::size_t index) {
  return ConfigId{static_cast<std::uint32_t>(index + 1)};
}
FactorId synthetic_factor(std::size_t index) {
  return FactorId{static_cast<std::uint32_t>(index + 1)};
}
ProcessorId synthetic_processor(std::size_t index) {
  return ProcessorId{static_cast<std::uint32_t>(index + 1)};
}

core::ReconfigSpec make_chain_spec(const ChainSpecParams& params) {
  require(params.configs >= 2, "a chain needs at least two configurations");
  require(params.apps >= 1, "a chain needs at least one application");

  core::ReconfigSpec spec;

  for (std::size_t a = 0; a < params.apps; ++a) {
    core::AppDecl decl;
    decl.id = synthetic_app(a);
    decl.name = "chain-app-" + std::to_string(a);
    decl.specs = {
        core::FunctionalSpec{synthetic_spec(a, 0), "primary",
                             core::ResourceDemand{0.4, 64.0, 20.0}, 200, 500},
        core::FunctionalSpec{synthetic_spec(a, 1), "degraded",
                             core::ResourceDemand{0.1, 16.0, 5.0}, 80, 300},
    };
    spec.declare_app(std::move(decl));
  }

  spec.declare_factor(env::FactorSpec{
      kChainSeverityFactor, "severity", 0,
      static_cast<std::int64_t>(params.configs - 1), 0});

  for (std::size_t c = 0; c < params.configs; ++c) {
    core::Configuration config;
    config.id = synthetic_config(c);
    config.name = "chain-level-" + std::to_string(c);
    for (std::size_t a = 0; a < params.apps; ++a) {
      config.assignment[synthetic_app(a)] = synthetic_spec(a, c == 0 ? 0 : 1);
      config.placement[synthetic_app(a)] = synthetic_processor(a);
    }
    config.safe = (c == params.configs - 1);
    config.service_rank = static_cast<int>(params.configs - 1 - c);
    spec.declare_config(std::move(config));
  }

  // Bounds for every ordered pair, including self-transitions: under the
  // immediate policy a retarget can legitimately complete back into the
  // source configuration, and SP3 then needs T(c,c).
  for (std::size_t i = 0; i < params.configs; ++i) {
    for (std::size_t j = 0; j < params.configs; ++j) {
      spec.set_transition_bound(synthetic_config(i), synthetic_config(j),
                                params.transition_bound);
    }
  }

  const std::size_t levels = params.configs;
  const bool recovery = params.with_recovery_edges;
  spec.set_choose([levels, recovery](ConfigId current,
                                     const env::EnvState& e) {
    const auto it = e.find(kChainSeverityFactor);
    const std::size_t severity =
        it == e.end() ? 0
                      : static_cast<std::size_t>(
                            std::clamp<std::int64_t>(
                                it->second, 0,
                                static_cast<std::int64_t>(levels - 1)));
    if (recovery) {
      // Severity fully dictates the level; recovery moves back up-chain
      // (this makes the transition graph cyclic on purpose).
      return synthetic_config(severity);
    }
    // Monotone degradation: never move to a better level than the current
    // one, which keeps the transition graph acyclic.
    const std::size_t current_level = current.value() - 1;
    return synthetic_config(std::max(current_level, severity));
  });

  spec.set_initial_config(synthetic_config(0));
  spec.set_dwell_frames(params.dwell_frames);
  spec.validate();
  return spec;
}

core::ReconfigSpec make_random_spec(const RandomSpecParams& params,
                                    std::uint64_t seed) {
  require(params.apps >= 1 && params.configs >= 2, "degenerate random spec");
  require(params.specs_per_app >= 1, "apps need at least one spec");
  require(params.factors >= 1 && params.factors <= 16,
          "factors must be in [1, 16]");
  require(params.processors >= 1, "need at least one processor");

  Rng rng(seed);
  core::ReconfigSpec spec;

  for (std::size_t a = 0; a < params.apps; ++a) {
    core::AppDecl decl;
    decl.id = synthetic_app(a);
    decl.name = "rnd-app-" + std::to_string(a);
    for (std::size_t s = 0; s < params.specs_per_app; ++s) {
      decl.specs.push_back(core::FunctionalSpec{
          synthetic_spec(a, s), "spec-" + std::to_string(s),
          core::ResourceDemand{0.1 + 0.1 * static_cast<double>(s), 16.0, 5.0},
          100, 400});
    }
    spec.declare_app(std::move(decl));
  }

  for (std::size_t f = 0; f < params.factors; ++f) {
    spec.declare_factor(env::FactorSpec{synthetic_factor(f),
                                        "rnd-factor-" + std::to_string(f), 0,
                                        1, 0});
  }

  for (std::size_t c = 0; c < params.configs; ++c) {
    core::Configuration config;
    config.id = synthetic_config(c);
    config.name = "rnd-config-" + std::to_string(c);
    for (std::size_t a = 0; a < params.apps; ++a) {
      // App 0 is always assigned so no configuration is fully off; others
      // are off with probability ~1/6.
      if (a != 0 && rng.chance(1.0 / 6.0)) continue;
      const std::size_t s = rng.uniform(0, params.specs_per_app - 1);
      config.assignment[synthetic_app(a)] = synthetic_spec(a, s);
      config.placement[synthetic_app(a)] =
          synthetic_processor(rng.uniform(0, params.processors - 1));
    }
    config.safe = (c == params.configs - 1);
    config.service_rank = static_cast<int>(params.configs - 1 - c);
    spec.declare_config(std::move(config));
  }

  for (std::size_t i = 0; i < params.configs; ++i) {
    for (std::size_t j = 0; j < params.configs; ++j) {
      spec.set_transition_bound(synthetic_config(i), synthetic_config(j),
                                params.transition_bound);
    }
  }

  // Deterministic pseudo-random choose table: each non-zero environment
  // state demands one attractor configuration (the style of the paper's
  // SCRAM_table `primary` mapping, Figure 2); the all-zero environment keeps
  // the current configuration. Per-environment attractors make choose
  // idempotent — choose(choose(c,e), e) == choose(c,e) — which the model
  // implicitly assumes: the "proper choice" for an environment must itself
  // be stable under that environment, or reconfiguration would never
  // quiesce.
  const std::size_t env_space = std::size_t{1} << params.factors;
  std::vector<std::size_t> attractor(env_space, 0);
  for (std::size_t e = 1; e < env_space; ++e) {
    attractor[e] = rng.uniform(0, params.configs - 1);
  }
  // The worst-case (all-ones) environment always demands the safe (last)
  // configuration, so safe reachability holds for every generated spec.
  attractor[env_space - 1] = params.configs - 1;
  const std::size_t factor_count = params.factors;
  spec.set_choose([attractor = std::move(attractor), factor_count](
                      ConfigId current, const env::EnvState& e) {
    std::size_t bits = 0;
    for (std::size_t f = 0; f < factor_count; ++f) {
      const auto it = e.find(synthetic_factor(f));
      if (it != e.end() && it->second != 0) bits |= std::size_t{1} << f;
    }
    if (bits == 0) return current;
    return synthetic_config(attractor[bits]);
  });

  // Acyclic dependencies: dependent index strictly greater than independent.
  std::size_t added = 0;
  std::size_t attempts = 0;
  while (params.apps >= 2 && added < params.dependencies &&
         attempts < params.dependencies * 8) {
    ++attempts;
    const std::size_t indep = rng.uniform(0, params.apps - 2);
    const std::size_t dep = rng.uniform(indep + 1, params.apps - 1);
    bool duplicate = false;
    for (const core::Dependency& d : spec.dependencies().all()) {
      if (d.dependent == synthetic_app(dep) &&
          d.independent == synthetic_app(indep)) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    spec.add_dependency(core::Dependency{synthetic_app(dep),
                                         synthetic_app(indep),
                                         core::DepPhase::kInitialize,
                                         std::nullopt});
    ++added;
  }

  spec.set_initial_config(synthetic_config(0));
  spec.set_dwell_frames(params.dwell_frames);
  spec.validate();
  return spec;
}

}  // namespace arfs::support
