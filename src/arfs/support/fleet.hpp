// Fleet-scale mission sweeps over pooled, checkpoint-seeded systems.
//
// The crash-sweep machinery made whole-system snapshots cheap and exact
// (core::SystemCheckpoint restores bit-identically); the fleet layer turns
// that into the hot-path allocator for massed Monte-Carlo mission sampling:
// instead of paying a full core::System construction per sample, each
// worker leases a pooled mission — built once by the factory, warmed once
// through the shared deterministic prefix — and resets it per sample via
// SystemCheckpoint::restore(). Samples differ only by their fault plan,
// which is a pure function of the sample's seed, so pooled and
// construct-per-sample execution produce bit-identical mission populations
// (the pool-off mode is retained as the ablation oracle).
//
// Determinism contract (inherited from sim::FleetRunner): the report —
// including its order-sensitive FNV digest over every sample's final
// System::digest() — is bit-identical at any thread count, any shard
// count, pooled or not, warmed or not.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "arfs/common/types.hpp"
#include "arfs/core/system.hpp"
#include "arfs/env/factor.hpp"
#include "arfs/sim/fault_plan.hpp"
#include "arfs/sim/fleet.hpp"
#include "arfs/support/crash_sweep.hpp"

namespace arfs::support {

/// One reusable mission instance: a factory-built system plus a ladder of
/// whole-system checkpoints over the warm-up prefix [0, warmup], spaced
/// sim::auto_stride(warmup) frames apart (the same √-tuned stride the crash
/// sweep uses). reset() rewinds to the warm point without reconstruction;
/// reset_to(f) rewinds to any frame of the prefix by restoring the nearest
/// ladder checkpoint at or below f and replaying the residual frames.
class PooledMission {
 public:
  /// Builds the mission and warms it: runs `warmup_frames` frames once
  /// (under the factory's own fault plan — for a shared prefix that plan
  /// must be empty or common to every sample), dropping ladder checkpoints
  /// as it goes. warmup_frames == 0 pools the pristine frame-0 state.
  PooledMission(const MissionFactory& factory, Cycle warmup_frames);

  [[nodiscard]] core::System& system() { return *mission_.system; }
  [[nodiscard]] Cycle warmup_frames() const { return warmup_; }
  [[nodiscard]] std::uint64_t resets() const { return resets_; }

  /// Rewinds to the warm point (frame `warmup_frames`).
  void reset();
  /// Rewinds to frame `frame` of the warm-up prefix. Precondition:
  /// frame <= warmup_frames().
  void reset_to(Cycle frame);

  /// Spills the durable-device bytes of every *cold* ladder rung (all but
  /// the warm point) into `arena` — reset(), the per-sample hot path, never
  /// touches a spilled rung; reset_to() onto one hydrates it back (counted
  /// in hydrations()). Idempotent per rung. Returns bytes spilled.
  std::uint64_t spill_cold(storage::MappedArena& arena);
  /// Cold rungs hydrated back by reset_to() since construction.
  [[nodiscard]] std::uint64_t hydrations() const { return hydrations_; }

 private:
  CrashMission mission_;
  /// (frame, checkpoint) pairs: frame 0, every stride frames, and the warm
  /// point itself; strictly increasing frames.
  std::vector<std::pair<Cycle, core::SystemCheckpoint>> ladder_;
  std::vector<bool> rung_spilled_;  ///< Parallel to ladder_.
  Cycle warmup_ = 0;
  std::uint64_t resets_ = 0;
  std::uint64_t hydrations_ = 0;
};

/// A thread-safe pool of PooledMissions built from one factory. Workers
/// lease a mission for the duration of a chunk of samples and return it on
/// release; the pool grows to at most the number of concurrently active
/// lanes, so a 10^6-sample sweep constructs a handful of systems, not 10^6.
/// The pool mutex is touched once per lease/release — chunk grain, never
/// the per-sample path.
class SystemPool {
 public:
  explicit SystemPool(MissionFactory factory, Cycle warmup_frames = 0);

  /// RAII lease: returns the mission to the pool on destruction.
  class Lease {
   public:
    Lease(SystemPool& pool, std::unique_ptr<PooledMission> mission)
        : pool_(&pool), mission_(std::move(mission)) {}
    ~Lease();
    Lease(Lease&&) noexcept = default;
    Lease& operator=(Lease&&) noexcept = default;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    [[nodiscard]] PooledMission& mission() { return *mission_; }

   private:
    SystemPool* pool_;
    std::unique_ptr<PooledMission> mission_;
  };

  /// Leases an idle mission, constructing (and warming) a new one only when
  /// every pooled instance is in flight.
  [[nodiscard]] Lease lease();

  /// Enables cold-checkpoint spill: whenever more than `hot_limit` missions
  /// sit idle, the least-recently-used beyond that limit spill their cold
  /// ladder rungs into `arena` (the warm rung always stays hot, so leasing
  /// a spilled mission and reset()-ing it touches no spilled bytes). The
  /// arena must outlive the pool. hot_limit 0 keeps no hot floor — every
  /// idle mission spills.
  void enable_spill(storage::MappedArena& arena, std::size_t hot_limit);

  struct Stats {
    std::uint64_t constructions = 0;  ///< Factory builds the pool paid.
    std::uint64_t leases = 0;         ///< Chunk-grain lease operations.
    std::uint64_t spills = 0;         ///< Missions spilled on give-back.
    std::uint64_t spill_bytes = 0;    ///< Device bytes moved to the arena.
    /// Cold-rung hydrations across *idle* missions (complete once every
    /// lease has been returned — i.e. after a sweep finishes).
    std::uint64_t hydrations = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  friend class Lease;
  void give_back(std::unique_ptr<PooledMission> mission);

  MissionFactory factory_;
  Cycle warmup_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<PooledMission>> idle_;
  storage::MappedArena* spill_arena_ = nullptr;
  std::size_t spill_hot_limit_ = 0;
  Stats stats_;
};

/// Per-sample fault plan: a pure function of the sample's seed. Events must
/// land at or after the sweep's warm-up frame — the warmed prefix is shared
/// by every sample.
using PlanFactory = std::function<sim::FaultPlan(std::uint64_t seed)>;

/// Deterministic per-seed environment campaign over declared factors.
struct EnvPlanParams {
  std::vector<env::FactorSpec> factors;  ///< Candidates (value range used).
  std::size_t changes = 4;               ///< Factor changes per sample.
  Cycle first_frame = 0;                 ///< Earliest event frame (>= warmup).
  Cycle frames = 32;                     ///< Events land in [first, first+frames).
  SimDuration frame_length = 10'000;
};

/// Builds a PlanFactory drawing `changes` uniform factor changes per sample
/// from Rng(seed) — the standard fleet campaign for spec-driven missions.
[[nodiscard]] PlanFactory make_env_plan_factory(EnvPlanParams params);

struct FleetMissionOptions {
  std::size_t samples = 0;
  /// Frames each sample runs beyond the warm point.
  Cycle frames = 32;
  std::uint64_t base_seed = 1;
  /// Shared deterministic prefix, warmed once per pooled system and
  /// replayed per sample when pooling is off. Plan events must land at or
  /// after this frame.
  Cycle warmup_frames = 0;
  /// The tentpole knob: reuse checkpoint-seeded pooled systems (default)
  /// or construct a fresh system per sample (the ablation oracle).
  bool pool_systems = true;
  /// With fleet.options().arena set: idle pooled missions beyond this
  /// count spill their cold checkpoint rungs to the arena (see
  /// SystemPool::enable_spill). 0 disables spilling.
  std::size_t pool_hot_limit = 0;
};

struct FleetMissionReport {
  std::uint64_t samples = 0;
  std::uint64_t frames_run = 0;          ///< Post-warm frames, all samples.
  std::uint64_t fault_events = 0;
  std::uint64_t reconfigurations = 0;
  std::uint64_t region_relocations = 0;
  std::uint64_t deadline_violations = 0;
  /// Order-sensitive FNV-1a digest over every sample's final
  /// System::digest(), folded per chunk then across chunks in chunk order —
  /// one number to compare any (threads, shards, pooling) execution against
  /// the serial oracle.
  std::uint64_t digest = 0;
  /// Systems actually constructed: pool size when pooling, `samples` when
  /// not — the pool-reuse ablation's headline denominator.
  std::uint64_t systems_constructed = 0;
  /// Checkpoint restores the pooled path performed (0 when pooling is off).
  std::uint64_t pool_resets = 0;

  // --- arena evidence (populated when fleet.options().arena is set) ---
  /// True when per-sample evidence rows went through the arena.
  bool arena_backed = false;
  /// Evidence rows materialized (== samples when arena-backed).
  std::uint64_t evidence_rows = 0;
  /// Digest recomputed by streaming the materialized evidence rows back in
  /// global chunk order with the same per-chunk fold as `digest` — the
  /// round-trip proof that the arena stored exactly what the sweep saw.
  std::uint64_t evidence_digest = 0;
  /// evidence_digest == digest (always true unless storage corrupted).
  bool evidence_matches = false;
  /// Pool spill counters (pool_hot_limit > 0 and arena set).
  std::uint64_t pool_spills = 0;
  std::uint64_t pool_spill_bytes = 0;
  std::uint64_t pool_hydrations = 0;
};

/// One mission sample's audit row (24 bytes, trivially copyable): the final
/// system digest plus the stat deltas the sample contributed — enough to
/// re-derive the sweep report's digest and tallies from storage.
struct MissionEvidence {
  std::uint64_t digest = 0;  ///< Final System::digest() of the sample.
  std::uint32_t fault_events = 0;
  std::uint32_t reconfigurations = 0;
  std::uint32_t region_relocations = 0;
  std::uint32_t deadline_violations = 0;
};

/// Runs `options.samples` independent missions of `factory`'s system, each
/// under `plan_for(seed)`'s fault plan, on the sharded fleet engine.
/// Pooled mode leases warm systems and resets them per sample;
/// construct-per-sample mode builds each mission from scratch and replays
/// the warm-up prefix. Both produce bit-identical reports.
[[nodiscard]] FleetMissionReport run_fleet_missions(
    const MissionFactory& factory, const PlanFactory& plan_for,
    const FleetMissionOptions& options, sim::FleetRunner& fleet);

}  // namespace arfs::support
