// Fleet-scale mission sweeps over pooled, checkpoint-seeded systems.
//
// The crash-sweep machinery made whole-system snapshots cheap and exact
// (core::SystemCheckpoint restores bit-identically); the fleet layer turns
// that into the hot-path allocator for massed Monte-Carlo mission sampling:
// instead of paying a full core::System construction per sample, each
// worker leases a pooled mission — built once by the factory, warmed once
// through the shared deterministic prefix — and resets it per sample via
// SystemCheckpoint::restore(). Samples differ only by their fault plan,
// which is a pure function of the sample's seed, so pooled and
// construct-per-sample execution produce bit-identical mission populations
// (the pool-off mode is retained as the ablation oracle).
//
// Determinism contract (inherited from sim::FleetRunner): the report —
// including its order-sensitive FNV digest over every sample's final
// System::digest() — is bit-identical at any thread count, any shard
// count, pooled or not, warmed or not.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "arfs/common/types.hpp"
#include "arfs/core/system.hpp"
#include "arfs/env/factor.hpp"
#include "arfs/sim/fault_plan.hpp"
#include "arfs/sim/fleet.hpp"
#include "arfs/support/crash_sweep.hpp"

namespace arfs::support {

/// One reusable mission instance: a factory-built system plus a ladder of
/// whole-system checkpoints over the warm-up prefix [0, warmup], spaced
/// sim::auto_stride(warmup) frames apart (the same √-tuned stride the crash
/// sweep uses). reset() rewinds to the warm point without reconstruction;
/// reset_to(f) rewinds to any frame of the prefix by restoring the nearest
/// ladder checkpoint at or below f and replaying the residual frames.
class PooledMission {
 public:
  /// Builds the mission and warms it: runs `warmup_frames` frames once
  /// (under the factory's own fault plan — for a shared prefix that plan
  /// must be empty or common to every sample), dropping ladder checkpoints
  /// as it goes. warmup_frames == 0 pools the pristine frame-0 state.
  PooledMission(const MissionFactory& factory, Cycle warmup_frames);

  [[nodiscard]] core::System& system() { return *mission_.system; }
  [[nodiscard]] Cycle warmup_frames() const { return warmup_; }
  [[nodiscard]] std::uint64_t resets() const { return resets_; }

  /// Rewinds to the warm point (frame `warmup_frames`).
  void reset();
  /// Rewinds to frame `frame` of the warm-up prefix. Precondition:
  /// frame <= warmup_frames().
  void reset_to(Cycle frame);

 private:
  CrashMission mission_;
  /// (frame, checkpoint) pairs: frame 0, every stride frames, and the warm
  /// point itself; strictly increasing frames.
  std::vector<std::pair<Cycle, core::SystemCheckpoint>> ladder_;
  Cycle warmup_ = 0;
  std::uint64_t resets_ = 0;
};

/// A thread-safe pool of PooledMissions built from one factory. Workers
/// lease a mission for the duration of a chunk of samples and return it on
/// release; the pool grows to at most the number of concurrently active
/// lanes, so a 10^6-sample sweep constructs a handful of systems, not 10^6.
/// The pool mutex is touched once per lease/release — chunk grain, never
/// the per-sample path.
class SystemPool {
 public:
  explicit SystemPool(MissionFactory factory, Cycle warmup_frames = 0);

  /// RAII lease: returns the mission to the pool on destruction.
  class Lease {
   public:
    Lease(SystemPool& pool, std::unique_ptr<PooledMission> mission)
        : pool_(&pool), mission_(std::move(mission)) {}
    ~Lease();
    Lease(Lease&&) noexcept = default;
    Lease& operator=(Lease&&) noexcept = default;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    [[nodiscard]] PooledMission& mission() { return *mission_; }

   private:
    SystemPool* pool_;
    std::unique_ptr<PooledMission> mission_;
  };

  /// Leases an idle mission, constructing (and warming) a new one only when
  /// every pooled instance is in flight.
  [[nodiscard]] Lease lease();

  struct Stats {
    std::uint64_t constructions = 0;  ///< Factory builds the pool paid.
    std::uint64_t leases = 0;         ///< Chunk-grain lease operations.
  };
  [[nodiscard]] Stats stats() const;

 private:
  friend class Lease;
  void give_back(std::unique_ptr<PooledMission> mission);

  MissionFactory factory_;
  Cycle warmup_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<PooledMission>> idle_;
  Stats stats_;
};

/// Per-sample fault plan: a pure function of the sample's seed. Events must
/// land at or after the sweep's warm-up frame — the warmed prefix is shared
/// by every sample.
using PlanFactory = std::function<sim::FaultPlan(std::uint64_t seed)>;

/// Deterministic per-seed environment campaign over declared factors.
struct EnvPlanParams {
  std::vector<env::FactorSpec> factors;  ///< Candidates (value range used).
  std::size_t changes = 4;               ///< Factor changes per sample.
  Cycle first_frame = 0;                 ///< Earliest event frame (>= warmup).
  Cycle frames = 32;                     ///< Events land in [first, first+frames).
  SimDuration frame_length = 10'000;
};

/// Builds a PlanFactory drawing `changes` uniform factor changes per sample
/// from Rng(seed) — the standard fleet campaign for spec-driven missions.
[[nodiscard]] PlanFactory make_env_plan_factory(EnvPlanParams params);

struct FleetMissionOptions {
  std::size_t samples = 0;
  /// Frames each sample runs beyond the warm point.
  Cycle frames = 32;
  std::uint64_t base_seed = 1;
  /// Shared deterministic prefix, warmed once per pooled system and
  /// replayed per sample when pooling is off. Plan events must land at or
  /// after this frame.
  Cycle warmup_frames = 0;
  /// The tentpole knob: reuse checkpoint-seeded pooled systems (default)
  /// or construct a fresh system per sample (the ablation oracle).
  bool pool_systems = true;
};

struct FleetMissionReport {
  std::uint64_t samples = 0;
  std::uint64_t frames_run = 0;          ///< Post-warm frames, all samples.
  std::uint64_t fault_events = 0;
  std::uint64_t reconfigurations = 0;
  std::uint64_t region_relocations = 0;
  std::uint64_t deadline_violations = 0;
  /// Order-sensitive FNV-1a digest over every sample's final
  /// System::digest(), folded per chunk then across chunks in chunk order —
  /// one number to compare any (threads, shards, pooling) execution against
  /// the serial oracle.
  std::uint64_t digest = 0;
  /// Systems actually constructed: pool size when pooling, `samples` when
  /// not — the pool-reuse ablation's headline denominator.
  std::uint64_t systems_constructed = 0;
  /// Checkpoint restores the pooled path performed (0 when pooling is off).
  std::uint64_t pool_resets = 0;
};

/// Runs `options.samples` independent missions of `factory`'s system, each
/// under `plan_for(seed)`'s fault plan, on the sharded fleet engine.
/// Pooled mode leases warm systems and resets them per sample;
/// construct-per-sample mode builds each mission from scratch and replays
/// the warm-up prefix. Both produce bit-identical reports.
[[nodiscard]] FleetMissionReport run_fleet_missions(
    const MissionFactory& factory, const PlanFactory& plan_for,
    const FleetMissionOptions& options, sim::FleetRunner& fleet);

}  // namespace arfs::support
