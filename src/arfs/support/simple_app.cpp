#include "arfs/support/simple_app.hpp"

#include <utility>

#include "arfs/common/check.hpp"

namespace arfs::support {

SimpleApp::SimpleApp(AppId id, std::string name, SimpleAppParams params)
    : ReconfigurableApp(id, std::move(name)), params_(params) {
  require(params.halt_frames >= 1 && params.prepare_frames >= 1 &&
              params.initialize_frames >= 1,
          "every stage takes at least one frame");
}

core::ReconfigurableApp::StepResult SimpleApp::do_work(const Ctx& ctx) {
  StepResult result;
  result.consumed = params_.work_cost_us;
  ++work_count_;
  if (ctx.own != nullptr) {
    ctx.own->write("work_count", static_cast<std::int64_t>(work_count_));
    ctx.own->write("last_cycle", static_cast<std::int64_t>(ctx.cycle));
  }
  if (fault_budget_ > 0) {
    --fault_budget_;
    result.ok = false;
    result.fault_detail = "simple-app injected work fault";
  }
  return result;
}

bool SimpleApp::do_halt(const Ctx& ctx) {
  (void)ctx;
  if (++stage_progress_ < params_.halt_frames) return false;
  stage_progress_ = 0;
  ++halts_;
  return true;
}

bool SimpleApp::do_prepare(const Ctx& ctx,
                           std::optional<SpecId> target_spec) {
  (void)ctx;
  (void)target_spec;
  if (++stage_progress_ < params_.prepare_frames) return false;
  stage_progress_ = 0;
  ++prepares_;
  return true;
}

bool SimpleApp::do_initialize(const Ctx& ctx,
                              std::optional<SpecId> target_spec) {
  if (++stage_progress_ < params_.initialize_frames) return false;
  stage_progress_ = 0;
  ++initializes_;
  if (ctx.own != nullptr && target_spec.has_value()) {
    ctx.own->write("initialized_for",
                   static_cast<std::int64_t>(target_spec->value()));
  }
  return true;
}

void SimpleApp::on_volatile_lost() {
  work_count_ = 0;
  stage_progress_ = 0;
  ++volatile_losses_;
}

void SimpleApp::save_domain(std::vector<std::uint64_t>& out) const {
  out.push_back(work_count_);
  out.push_back(halts_);
  out.push_back(prepares_);
  out.push_back(initializes_);
  out.push_back(volatile_losses_);
  out.push_back(fault_budget_);
  out.push_back(stage_progress_);
}

void SimpleApp::load_domain(const std::vector<std::uint64_t>& in) {
  require(in.size() == 7, "simple-app domain checkpoint has 7 words");
  work_count_ = in[0];
  halts_ = in[1];
  prepares_ = in[2];
  initializes_ = in[3];
  volatile_losses_ = in[4];
  fault_budget_ = in[5];
  stage_progress_ = in[6];
}

}  // namespace arfs::support
