#include "arfs/support/crash_sweep.hpp"

#include <algorithm>
#include <cstring>
#include <type_traits>

#include "arfs/common/check.hpp"
#include "arfs/failstop/processor.hpp"
#include "arfs/sim/fleet.hpp"
#include "arfs/storage/arena.hpp"

namespace arfs::support {

namespace {

inline void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 0x100000001B3ULL;
  }
}

/// One crash point's verdict: arms the device fault, fail-stops the victim
/// (recovery runs inside fail()), and checks the recovered — and, under
/// warm_start, the replicated — state against the shared fingerprint table.
/// `system` must stand exactly at `crash_frame` frames run. The victim is
/// fetched once, mutably; every check reads through that same reference.
CrashPoint judge_crash_point(core::System& system,
                             const CrashSweepOptions& options,
                             Cycle crash_frame,
                             const std::vector<std::uint64_t>& fingerprints) {
  failstop::Processor& victim =
      system.processors().processor(options.victim);
  require(victim.running(),
          "crash sweep victim was failed by the mission itself");
  storage::durable::DurabilityEngine* engine = victim.durability();
  require(engine != nullptr, "crash sweep victim is not durable");
  const std::uint64_t durable_epoch = engine->stats().last_durable_epoch;

  // Arm the crash-time device fault, if any. The bit flip lands at a
  // position derived from the crash frame, so the sweep exercises a
  // different (deterministic) corruption site at every point.
  switch (options.io_fault) {
    case CrashSweepOptions::IoFault::kNone:
      break;
    case CrashSweepOptions::IoFault::kTornWrite:
      engine->journal().tear_on_crash(options.tear_keep);
      break;
    case CrashSweepOptions::IoFault::kBitFlip:
      engine->journal().corrupt_bit(0x9E3779B97F4A7C15ULL *
                                    (std::uint64_t{crash_frame} + 1));
      break;
  }

  // The fail-stop halt: devices lose their unsynced tail, recovery runs
  // inside fail(), and poll_stable() shows the recovered store.
  victim.fail(crash_frame);

  CrashPoint point;
  point.crash_frame = crash_frame;
  point.durable_epoch = durable_epoch;
  point.expected_fingerprint =
      fingerprints[static_cast<std::size_t>(durable_epoch)];
  point.recovered_fingerprint = victim.poll_stable().fingerprint();
  const auto& recovery = victim.last_recovery();
  point.recovered_epoch = recovery.has_value() ? recovery->last_epoch : 0;
  point.journal_truncated =
      recovery.has_value() && recovery->journal_truncated;
  // The floor must hold, the recovered epoch must be a real frame of this
  // mission, and the recovered bytes must be exactly that frame's committed
  // state. A bit flip may corrupt *synced* records, so it alone is excused
  // from the durable-epoch floor — recovery must still land on an exact
  // commit boundary.
  const bool floor_ok =
      options.io_fault == CrashSweepOptions::IoFault::kBitFlip ||
      point.recovered_epoch >= durable_epoch;
  point.match = recovery.has_value() && floor_ok &&
                point.recovered_epoch <= crash_frame &&
                point.recovered_fingerprint ==
                    fingerprints[static_cast<std::size_t>(
                        point.recovered_epoch)];
  point.lost_frames = point.recovered_epoch <= crash_frame
                          ? crash_frame - point.recovered_epoch
                          : 0;

  if (options.warm_start) {
    // Warm-start relocation check: drain the victim's shipping channel and
    // require the standby replica to be bit-identical to the recovered
    // commit boundary — the state a relocated app would warm-start from.
    require(system.has_ship_channel(options.victim),
            "warm-start sweep needs SystemOptions::journal_shipping");
    if (options.quorum_kills > 0) {
      // Quorum adversary: fail-stop the elected leader `quorum_kills`
      // times, re-electing between kills, so the warm start below must be
      // served by a surviving (non-leader-at-crash-time) member's cursor —
      // with no full-copy reseed allowed by the election protocol.
      require(system.has_quorum(options.victim),
              "quorum_kills needs SystemOptions::quorum_replicas");
      for (std::uint32_t k = 0; k < options.quorum_kills; ++k) {
        const std::optional<storage::durable::quorum::MemberId> leader =
            system.quorum_group(options.victim).leader();
        require(leader.has_value(), "quorum kills exhausted the cohort");
        system.fail_quorum_member(options.victim, *leader);
      }
    }
    const core::System::ShipCatchUp catch_up =
        system.ship_catch_up(options.victim);
    const storage::durable::ShippedReplica& replica =
        system.ship_replica(options.victim);
    point.replica_epoch = replica.store().commit_epochs();
    point.replica_fingerprint = replica.store().fingerprint();
    point.replica_catchup_bytes = catch_up.bytes;
    point.replica_reseeded = catch_up.reseeded;
    point.replica_match =
        point.replica_epoch <= crash_frame &&
        point.replica_fingerprint == point.recovered_fingerprint &&
        point.replica_fingerprint ==
            fingerprints[static_cast<std::size_t>(point.replica_epoch)];
    if (system.has_quorum(options.victim)) {
      // Commit-rule check: the cohort must still hold a live majority and
      // its majority-acknowledged boundary must be exactly the epoch the
      // warm start served. After a full catch-up of every live member the
      // two coincide whenever the majority survived; at one replica this
      // conjunct is identically true, keeping N = 1 sweeps digest-identical
      // to the single-standby oracle.
      const storage::durable::quorum::QuorumGroup& group =
          system.quorum_group(options.victim);
      point.replica_match = point.replica_match && group.has_majority() &&
                            group.commit_id() == point.replica_epoch;
    }
  }
  return point;
}

/// From-scratch strategy: every job replays its own mission from frame 0.
std::vector<CrashPoint> sweep_from_scratch(const MissionFactory& factory,
                                           const CrashSweepOptions& options,
                                           sim::BatchRunner& runner) {
  return runner.map<CrashPoint>(
      static_cast<std::size_t>(options.frames), [&](std::size_t i) {
        const Cycle crash_frame = static_cast<Cycle>(i) + 1;
        CrashMission mission = factory();
        require(mission.system != nullptr, "mission factory built no system");
        core::System& system = *mission.system;
        require(system.processors().has_processor(options.victim),
                "crash sweep victim is not in the system");

        // Fingerprint of the victim's committed store after each commit
        // epoch; index 0 is the empty pre-mission store. Every frame the
        // victim survives commits exactly once, so epoch == frames run.
        const failstop::Processor& victim =
            system.processors().processor(options.victim);
        std::vector<std::uint64_t> fingerprints;
        fingerprints.reserve(static_cast<std::size_t>(crash_frame) + 1);
        fingerprints.push_back(victim.poll_stable().fingerprint());
        for (Cycle f = 0; f < crash_frame; ++f) {
          system.run(1);
          fingerprints.push_back(victim.poll_stable().fingerprint());
          require(victim.running(),
                  "crash sweep victim was failed by the mission itself");
        }
        return judge_crash_point(system, options, crash_frame, fingerprints);
      });
}

}  // namespace

std::uint64_t CrashSweepReport::digest() const {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const CrashPoint& p : points) {
    fnv_mix(h, p.crash_frame);
    fnv_mix(h, p.expected_fingerprint);
    fnv_mix(h, p.recovered_fingerprint);
    fnv_mix(h, p.durable_epoch);
    fnv_mix(h, p.recovered_epoch);
    fnv_mix(h, p.lost_frames);
    fnv_mix(h, (p.journal_truncated ? 2u : 0u) | (p.match ? 1u : 0u));
    fnv_mix(h, p.replica_epoch);
    fnv_mix(h, p.replica_fingerprint);
    fnv_mix(h, p.replica_catchup_bytes);
    fnv_mix(h, (p.replica_reseeded ? 2u : 0u) | (p.replica_match ? 1u : 0u));
  }
  return h;
}

CrashSweepReport run_crash_sweep(const MissionFactory& factory,
                                 const CrashSweepOptions& options,
                                 sim::BatchRunner& runner) {
  require(options.frames > 0, "crash sweep needs at least one frame");
  require(static_cast<bool>(factory), "crash sweep needs a mission factory");

  CrashSweepReport report;
  if (!options.checkpointing) {
    report.points = sweep_from_scratch(factory, options, runner);
    report.simulated_frames =
        options.frames * (options.frames + 1) / 2;
  } else {
    const Cycle stride = options.checkpoint_stride > 0
                             ? options.checkpoint_stride
                             : sim::auto_stride(options.frames);

    // Serial baseline pass: run the mission once end to end, recording the
    // shared commit-boundary fingerprint table (index = commit epoch,
    // index 0 = empty pre-mission store) and freezing a whole-system
    // checkpoint every `stride` frames. Checkpoints fork the durable
    // devices, so later restores are copy-on-restore — no mission replay.
    CrashMission baseline = factory();
    require(baseline.system != nullptr, "mission factory built no system");
    core::System& base_system = *baseline.system;
    require(base_system.processors().has_processor(options.victim),
            "crash sweep victim is not in the system");
    const failstop::Processor& victim =
        base_system.processors().processor(options.victim);

    std::vector<std::uint64_t> fingerprints;
    fingerprints.reserve(static_cast<std::size_t>(options.frames) + 1);
    fingerprints.push_back(victim.poll_stable().fingerprint());
    std::vector<core::SystemCheckpoint> checkpoints;
    checkpoints.reserve(
        static_cast<std::size_t>(options.frames / stride) + 1);
    checkpoints.push_back(base_system.checkpoint());
    for (Cycle f = 0; f < options.frames; ++f) {
      base_system.run(1);
      fingerprints.push_back(victim.poll_stable().fingerprint());
      require(victim.running(),
              "crash sweep victim was failed by the mission itself");
      if ((f + 1) % stride == 0) {
        checkpoints.push_back(base_system.checkpoint());
      }
    }

    // Batch-parallel crash points: each forks a fresh mission, restores the
    // nearest checkpoint at or below its crash frame, and simulates only
    // the residual < stride frames before the fail-stop. The checkpoint
    // table and fingerprint table are shared read-only across jobs.
    report.points = runner.map<CrashPoint>(
        static_cast<std::size_t>(options.frames), [&](std::size_t i) {
          const Cycle crash_frame = static_cast<Cycle>(i) + 1;
          const Cycle base_frame = crash_frame - crash_frame % stride;
          CrashMission mission = factory();
          require(mission.system != nullptr,
                  "mission factory built no system");
          core::System& system = *mission.system;
          system.restore(
              checkpoints[static_cast<std::size_t>(base_frame / stride)]);
          system.run(crash_frame - base_frame);
          return judge_crash_point(system, options, crash_frame,
                                   fingerprints);
        });

    report.simulated_frames = options.frames;  // the baseline pass
    for (Cycle j = 1; j <= options.frames; ++j) {
      report.simulated_frames += j % stride;  // each job's residual
    }
    report.checkpoints_taken = checkpoints.size();
    report.stride_used = stride;
  }

  if (options.arena != nullptr && !report.points.empty()) {
    // Round-trip the point table through one CRC-guarded arena region and
    // rebuild the report from the re-read bytes: the digest below is then
    // computed from what storage actually holds, not the in-RAM originals.
    static_assert(std::is_trivially_copyable_v<CrashPoint>,
                  "arena rows are raw bytes");
    storage::MappedArena& arena = *options.arena;
    const std::size_t bytes = report.points.size() * sizeof(CrashPoint);
    const storage::MappedArena::RegionId rid = arena.allocate(bytes);
    std::memcpy(arena.data(rid), report.points.data(), bytes);
    arena.seal(rid);
    std::size_t stored = 0;
    const std::uint8_t* raw = arena.read(rid, &stored);
    ensure(stored == bytes, "crash sweep arena region size mismatch");
    std::memcpy(report.points.data(), raw, bytes);
    arena.release(rid);
    report.arena_backed = true;
  }

  for (const CrashPoint& point : report.points) {
    if (!point.match) ++report.mismatches;
    if (options.warm_start && !point.replica_match) {
      ++report.replica_mismatches;
    }
    report.max_lost_frames =
        std::max(report.max_lost_frames, point.lost_frames);
    report.max_replica_catchup_bytes =
        std::max(report.max_replica_catchup_bytes,
                 point.replica_catchup_bytes);
    if (point.replica_reseeded) ++report.replica_reseeds;
  }
  return report;
}

}  // namespace arfs::support
