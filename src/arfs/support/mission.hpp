// Declarative mission profiles.
//
// Scenario authors describe a mission as a timeline of named events —
// environment values over mission time, component failures and repairs —
// and compile it into the deterministic FaultPlan the System consumes.
// Profiles also support periodic patterns (orbits, duty cycles) and
// seeded jitter so campaigns stay replayable.
#pragma once

#include <string>
#include <vector>

#include "arfs/common/rng.hpp"
#include "arfs/common/types.hpp"
#include "arfs/sim/fault_plan.hpp"

namespace arfs::support {

class MissionProfile {
 public:
  /// `frame_length` converts frame-denominated times into simulated time.
  explicit MissionProfile(SimDuration frame_length);

  /// Environment value change at mission frame `frame`.
  MissionProfile& at(Cycle frame, FactorId factor, std::int64_t value,
                     std::string note = {});

  /// Processor fail-stop / repair at mission frame `frame`.
  MissionProfile& fail(Cycle frame, ProcessorId processor,
                       std::string note = {});
  MissionProfile& repair(Cycle frame, ProcessorId processor,
                         std::string note = {});

  /// Durable-storage I/O faults at mission frame `frame` (meaningful on
  /// systems running with durable storage; benign otherwise).
  MissionProfile& journal_sync_fail(Cycle frame, ProcessorId processor,
                                    std::string note = {});
  MissionProfile& journal_torn_write(Cycle frame, ProcessorId processor,
                                     std::int64_t keep_bytes = 0,
                                     std::string note = {});
  MissionProfile& journal_bit_flip(Cycle frame, ProcessorId processor,
                                   std::int64_t seed, std::string note = {});

  /// Periodic pattern: sets `factor` to `high` every `period` frames for
  /// `duty` frames starting at `phase`, until `until` (e.g. eclipses).
  /// Preconditions: duty < period, period > 0.
  MissionProfile& periodic(FactorId factor, std::int64_t low,
                           std::int64_t high, Cycle period, Cycle duty,
                           Cycle phase, Cycle until);

  /// Adds uniform jitter of up to `max_frames` frames to every event added
  /// *after* this call, drawn deterministically from `seed`.
  MissionProfile& with_jitter(Cycle max_frames, std::uint64_t seed);

  /// Compiles the accumulated events into a FaultPlan.
  [[nodiscard]] sim::FaultPlan build() const;

  [[nodiscard]] std::size_t event_count() const { return events_.size(); }

 private:
  struct Event {
    Cycle frame;
    sim::FaultEvent proto;
  };
  void add(Cycle frame, sim::FaultEvent proto);

  SimDuration frame_length_;
  std::vector<Event> events_;
  Cycle jitter_frames_ = 0;
  std::uint64_t jitter_state_ = 0;
  bool jitter_on_ = false;
};

}  // namespace arfs::support
