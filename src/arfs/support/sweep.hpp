// Parallel mission sweeps.
//
// A sweep runs many independent missions — whole core::System or avionics
// campaigns — and collects one result per mission. Missions are
// embarrassingly parallel (each builds its own System from its own spec and
// draws from its own RNG stream), so the sweep fans them across a
// sim::BatchRunner. Seeding follows the batch engine's determinism contract:
// mission i gets sim::job_seed(base_seed, i), making every result a function
// of (base_seed, i) alone and the full result vector bit-identical at any
// thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "arfs/sim/batch.hpp"
#include "arfs/sim/fleet.hpp"
#include "arfs/support/fleet.hpp"

namespace arfs::support {

/// Identity of one mission within a sweep.
struct MissionJob {
  std::size_t index = 0;    ///< 0-based mission index.
  std::uint64_t seed = 0;   ///< job_seed(base_seed, index).
};

/// The per-mission seeds a sweep of `missions` jobs rooted at `base_seed`
/// will use, in mission order. Exposed so serial reference runs (tests,
/// bisection) can replay any single mission of a sweep without the runner.
[[nodiscard]] std::vector<std::uint64_t> mission_seeds(std::size_t missions,
                                                       std::uint64_t base_seed);

/// Runs `missions` independent missions on `runner` and returns their
/// results in mission order. `fly` must be self-contained: build the whole
/// system inside the call and derive all randomness from the job's seed.
template <typename R>
[[nodiscard]] std::vector<R> run_mission_sweep(
    std::size_t missions, std::uint64_t base_seed,
    const std::function<R(const MissionJob&)>& fly,
    sim::BatchRunner& runner = sim::BatchRunner::shared()) {
  return runner.map<R>(missions, [&](std::size_t i) {
    return fly(MissionJob{i, sim::job_seed(base_seed, i)});
  });
}

/// Fleet path: same contract, results materialized through shard-local
/// caches and concatenated in mission order — bit-identical to the
/// BatchRunner sweep above for the same base_seed.
template <typename R>
[[nodiscard]] std::vector<R> run_mission_sweep(
    std::size_t missions, std::uint64_t base_seed,
    const std::function<R(const MissionJob&)>& fly,
    sim::FleetRunner& fleet) {
  return fleet.map<R>(missions, base_seed, [&](const sim::FleetSample& s) {
    return fly(MissionJob{s.index, s.seed});
  });
}

/// Pooled fleet sweep: kills the per-mission allocation churn of
/// self-contained `fly` callbacks. Instead of building a System (and its
/// fault-plan buffers) inside every call, `fly` receives a leased
/// PooledMission already reset to its warm point and derives everything
/// else from the job's seed. Results are bit-identical to a
/// construct-per-mission sweep whose missions start from the same warmed
/// state — reuse is SystemCheckpoint::restore(), not a fresh build.
template <typename R>
[[nodiscard]] std::vector<R> run_mission_sweep(
    std::size_t missions, std::uint64_t base_seed,
    const std::function<R(const MissionJob&, PooledMission&)>& fly,
    SystemPool& pool, sim::FleetRunner& fleet) {
  return fleet.map<R>(missions, base_seed, [&](const sim::FleetSample& s) {
    SystemPool::Lease lease = pool.lease();
    lease.mission().reset();
    return fly(MissionJob{s.index, s.seed}, lease.mission());
  });
}

}  // namespace arfs::support
