#include "arfs/support/fleet.hpp"

#include <algorithm>
#include <cstring>
#include <optional>

#include "arfs/common/check.hpp"
#include "arfs/common/rng.hpp"
#include "arfs/storage/arena.hpp"
#include "arfs/support/mission.hpp"

namespace arfs::support {

namespace {

inline void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 0x100000001B3ULL;
  }
}

constexpr std::uint64_t kFnvBasis = 0xCBF29CE484222325ULL;

}  // namespace

PooledMission::PooledMission(const MissionFactory& factory,
                             Cycle warmup_frames)
    : mission_(factory()), warmup_(warmup_frames) {
  require(mission_.system != nullptr, "mission factory built no system");
  core::System& sys = *mission_.system;
  ladder_.emplace_back(0, sys.checkpoint());
  if (warmup_frames > 0) {
    const Cycle stride = sim::auto_stride(warmup_frames);
    Cycle frame = 0;
    while (frame < warmup_frames) {
      const Cycle step = std::min(stride, warmup_frames - frame);
      sys.run(step);
      frame += step;
      ladder_.emplace_back(frame, sys.checkpoint());
    }
  }
}

void PooledMission::reset() {
  mission_.system->restore(ladder_.back().second);
  ++resets_;
}

void PooledMission::reset_to(Cycle frame) {
  require(frame <= warmup_, "reset_to target beyond the warm-up prefix");
  // Nearest ladder checkpoint at or below `frame`; ladder frames are
  // strictly increasing, so the predecessor of the first frame > `frame`.
  auto it = std::upper_bound(
      ladder_.begin(), ladder_.end(), frame,
      [](Cycle f, const auto& entry) { return f < entry.first; });
  --it;
  const std::size_t rung = static_cast<std::size_t>(it - ladder_.begin());
  if (rung < rung_spilled_.size() && rung_spilled_[rung]) {
    // The restore below faults the rung's device bytes back in (the fork
    // inside restore hydrates spilled backends); account for it here.
    rung_spilled_[rung] = false;
    ++hydrations_;
  }
  mission_.system->restore(it->second);
  if (frame > it->first) mission_.system->run(frame - it->first);
  ++resets_;
}

std::uint64_t PooledMission::spill_cold(storage::MappedArena& arena) {
  if (ladder_.size() <= 1) return 0;  // nothing but the warm point
  rung_spilled_.resize(ladder_.size(), false);
  std::uint64_t bytes = 0;
  for (std::size_t r = 0; r + 1 < ladder_.size(); ++r) {
    if (rung_spilled_[r]) continue;
    const std::uint64_t spilled = ladder_[r].second.spill_devices(arena);
    if (spilled > 0) rung_spilled_[r] = true;
    bytes += spilled;
  }
  return bytes;
}

SystemPool::SystemPool(MissionFactory factory, Cycle warmup_frames)
    : factory_(std::move(factory)), warmup_(warmup_frames) {
  require(static_cast<bool>(factory_), "system pool needs a mission factory");
}

SystemPool::Lease::~Lease() {
  if (mission_ != nullptr) pool_->give_back(std::move(mission_));
}

SystemPool::Lease SystemPool::lease() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.leases;
    if (!idle_.empty()) {
      std::unique_ptr<PooledMission> mission = std::move(idle_.back());
      idle_.pop_back();
      return Lease(*this, std::move(mission));
    }
    ++stats_.constructions;
  }
  // Construct (and warm) outside the lock: the expensive path must not
  // serialize other lanes' lease/release traffic.
  return Lease(*this, std::make_unique<PooledMission>(factory_, warmup_));
}

void SystemPool::enable_spill(storage::MappedArena& arena,
                              std::size_t hot_limit) {
  std::lock_guard<std::mutex> lock(mutex_);
  spill_arena_ = &arena;
  spill_hot_limit_ = hot_limit;
}

SystemPool::Stats SystemPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  // Hydration counts live in the missions; the idle set covers all of them
  // once every lease has been returned (post-sweep).
  for (const auto& mission : idle_) out.hydrations += mission->hydrations();
  return out;
}

void SystemPool::give_back(std::unique_ptr<PooledMission> mission) {
  std::lock_guard<std::mutex> lock(mutex_);
  idle_.push_back(std::move(mission));
  if (spill_arena_ == nullptr) return;
  // LRU spill: lease() pops from the back, so the front of `idle_` is the
  // coldest. Everything beyond the hot floor spills its cold rungs.
  for (std::size_t i = 0;
       i + spill_hot_limit_ < idle_.size(); ++i) {
    const std::uint64_t bytes = idle_[i]->spill_cold(*spill_arena_);
    if (bytes > 0) {
      ++stats_.spills;
      stats_.spill_bytes += bytes;
    }
  }
}

PlanFactory make_env_plan_factory(EnvPlanParams params) {
  require(!params.factors.empty(), "env plan factory needs factors");
  require(params.frames > 0, "env plan factory needs a positive frame span");
  return [params = std::move(params)](std::uint64_t seed) {
    Rng rng(seed);
    MissionProfile profile(params.frame_length);
    for (std::size_t c = 0; c < params.changes; ++c) {
      const env::FactorSpec& factor =
          params.factors[static_cast<std::size_t>(
              rng.uniform(0, params.factors.size() - 1))];
      const Cycle frame =
          params.first_frame +
          static_cast<Cycle>(rng.uniform(0, params.frames - 1));
      const std::int64_t value =
          factor.min_value +
          static_cast<std::int64_t>(rng.uniform(
              0, static_cast<std::uint64_t>(factor.max_value -
                                            factor.min_value)));
      profile.at(frame, factor.id, value);
    }
    return profile.build();
  };
}

namespace {

/// Per-chunk accumulator: plain tallies plus the chunk's sample-digest
/// stream, and — pooled mode only — the chunk's system lease (chunk-scoped
/// scratch; released at the chunk's last sample, never crosses the fold).
struct MissionAcc {
  std::uint64_t samples = 0;
  std::uint64_t frames_run = 0;
  std::uint64_t fault_events = 0;
  std::uint64_t reconfigurations = 0;
  std::uint64_t region_relocations = 0;
  std::uint64_t deadline_violations = 0;
  std::uint64_t pool_resets = 0;
  std::uint64_t systems_constructed = 0;
  std::uint64_t chunk_digest = kFnvBasis;
  /// Folded stream of chunk digests — only the running total uses it.
  std::uint64_t digest = kFnvBasis;
  std::optional<SystemPool::Lease> lease;
  /// Arena evidence (chunk-scoped scratch, like the lease): the chunk's
  /// open region, its row window, and the next row slot.
  storage::MappedArena::RegionId evidence_region =
      storage::MappedArena::kNoRegion;
  MissionEvidence* evidence_rows = nullptr;
  std::size_t evidence_next = 0;
};

/// Runs the post-warm mission leg on a system standing at the warm point,
/// tallies its stats deltas plus final digest, and returns the sample's
/// evidence row.
MissionEvidence fly_sample(core::System& sys, const PlanFactory& plan_for,
                           const sim::FleetSample& sample, Cycle frames,
                           MissionAcc& acc) {
  const core::SystemStats before = sys.stats();
  const std::uint64_t reconfigs_before =
      sys.scram().stats().reconfigs_completed;
  sys.set_fault_plan(plan_for(sample.seed));
  sys.run(frames);
  const core::SystemStats after = sys.stats();
  MissionEvidence ev;
  ev.digest = sys.digest();
  ev.fault_events = static_cast<std::uint32_t>(
      after.fault_events_applied - before.fault_events_applied);
  ev.reconfigurations = static_cast<std::uint32_t>(
      sys.scram().stats().reconfigs_completed - reconfigs_before);
  ev.region_relocations = static_cast<std::uint32_t>(
      after.region_relocations - before.region_relocations);
  ev.deadline_violations = static_cast<std::uint32_t>(
      after.deadline_violations - before.deadline_violations);
  ++acc.samples;
  acc.frames_run += after.frames_run - before.frames_run;
  acc.fault_events += ev.fault_events;
  acc.reconfigurations += ev.reconfigurations;
  acc.region_relocations += ev.region_relocations;
  acc.deadline_violations += ev.deadline_violations;
  fnv_mix(acc.chunk_digest, ev.digest);
  return ev;
}

}  // namespace

FleetMissionReport run_fleet_missions(const MissionFactory& factory,
                                      const PlanFactory& plan_for,
                                      const FleetMissionOptions& options,
                                      sim::FleetRunner& fleet) {
  require(static_cast<bool>(factory), "fleet sweep needs a mission factory");
  require(static_cast<bool>(plan_for), "fleet sweep needs a plan factory");
  require(options.frames > 0, "fleet sweep needs a positive mission length");

  const sim::ShardPlan plan = fleet.plan(options.samples);
  SystemPool pool(factory, options.warmup_frames);
  const bool pooled = options.pool_systems;

  // Arena evidence: one region per chunk, written lock-free by the owning
  // worker (slot discipline as in FleetRunner::materialize — a chunk is one
  // job and owns its slot).
  storage::MappedArena* arena = fleet.options().arena;
  std::vector<storage::MappedArena::RegionId> evidence_regions;
  if (arena != nullptr) {
    evidence_regions.assign(plan.chunks(), storage::MappedArena::kNoRegion);
  }
  if (pooled && arena != nullptr && options.pool_hot_limit > 0) {
    pool.enable_spill(*arena, options.pool_hot_limit);
  }

  const auto last_of_chunk = [&plan](std::size_t index) {
    return (index + 1) % plan.chunk() == 0 || index + 1 == plan.samples();
  };

  MissionAcc total = fleet.reduce<MissionAcc>(
      options.samples, options.base_seed,
      [&](const sim::FleetSample& sample, MissionAcc& acc) {
        MissionEvidence ev;
        if (pooled) {
          // Chunk-grain lease: acquired at the chunk's first sample,
          // released at its last — the pool mutex never rides the
          // per-sample path.
          if (!acc.lease.has_value()) acc.lease.emplace(pool.lease());
          PooledMission& mission = acc.lease->mission();
          mission.reset();
          ev = fly_sample(mission.system(), plan_for, sample,
                          options.frames, acc);
          ++acc.pool_resets;
          if (last_of_chunk(sample.index)) acc.lease.reset();
        } else {
          // Ablation oracle: fresh construction plus warm-up replay per
          // sample. Bit-identical to the pooled path — the plan's events
          // all land at or after the warm point.
          CrashMission mission = factory();
          require(mission.system != nullptr,
                  "mission factory built no system");
          if (options.warmup_frames > 0) {
            mission.system->run(options.warmup_frames);
          }
          ev = fly_sample(*mission.system, plan_for, sample,
                          options.frames, acc);
          ++acc.systems_constructed;
        }
        if (arena != nullptr) {
          const std::size_t chunk = sample.index / plan.chunk();
          if (acc.evidence_rows == nullptr) {
            acc.evidence_region = arena->allocate(
                plan.samples_of_chunk(chunk).size() *
                sizeof(MissionEvidence));
            acc.evidence_rows = reinterpret_cast<MissionEvidence*>(
                arena->data(acc.evidence_region));
            acc.evidence_next = 0;
          }
          std::memcpy(acc.evidence_rows + acc.evidence_next, &ev,
                      sizeof(MissionEvidence));
          ++acc.evidence_next;
          if (last_of_chunk(sample.index)) {
            arena->seal(acc.evidence_region);
            evidence_regions[chunk] = acc.evidence_region;
            acc.evidence_region = storage::MappedArena::kNoRegion;
            acc.evidence_rows = nullptr;
          }
        }
      },
      [](MissionAcc& into, MissionAcc& part) {
        into.samples += part.samples;
        into.frames_run += part.frames_run;
        into.fault_events += part.fault_events;
        into.reconfigurations += part.reconfigurations;
        into.region_relocations += part.region_relocations;
        into.deadline_violations += part.deadline_violations;
        into.pool_resets += part.pool_resets;
        into.systems_constructed += part.systems_constructed;
        fnv_mix(into.digest, part.chunk_digest);
      });

  FleetMissionReport report;
  report.samples = total.samples;
  report.frames_run = total.frames_run;
  report.fault_events = total.fault_events;
  report.reconfigurations = total.reconfigurations;
  report.region_relocations = total.region_relocations;
  report.deadline_violations = total.deadline_violations;
  report.digest = total.digest;
  report.pool_resets = total.pool_resets;
  if (pooled) {
    const SystemPool::Stats pool_stats = pool.stats();
    report.systems_constructed = pool_stats.constructions;
    report.pool_spills = pool_stats.spills;
    report.pool_spill_bytes = pool_stats.spill_bytes;
    report.pool_hydrations = pool_stats.hydrations;
  } else {
    report.systems_constructed = total.systems_constructed;
  }
  if (arena != nullptr) {
    // Round-trip proof: stream the materialized evidence rows back in
    // global chunk order and refold the digest with the exact per-chunk
    // fold reduce() used (per-chunk basis, row digests, chunk mix).
    report.arena_backed = true;
    report.evidence_rows = plan.samples();
    sim::ArenaCursor<MissionEvidence> cursor(*arena, plan,
                                             std::move(evidence_regions));
    std::uint64_t refold = kFnvBasis;
    cursor.for_each_chunk(
        [&](const MissionEvidence* rows, std::size_t n, std::size_t) {
          std::uint64_t h = kFnvBasis;
          for (std::size_t i = 0; i < n; ++i) fnv_mix(h, rows[i].digest);
          fnv_mix(refold, h);
        });
    report.evidence_digest = refold;
    report.evidence_matches = report.evidence_digest == report.digest;
  }
  return report;
}

}  // namespace arfs::support
