#include "arfs/support/fleet.hpp"

#include <algorithm>
#include <optional>

#include "arfs/common/check.hpp"
#include "arfs/common/rng.hpp"
#include "arfs/support/mission.hpp"

namespace arfs::support {

namespace {

inline void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 0x100000001B3ULL;
  }
}

constexpr std::uint64_t kFnvBasis = 0xCBF29CE484222325ULL;

}  // namespace

PooledMission::PooledMission(const MissionFactory& factory,
                             Cycle warmup_frames)
    : mission_(factory()), warmup_(warmup_frames) {
  require(mission_.system != nullptr, "mission factory built no system");
  core::System& sys = *mission_.system;
  ladder_.emplace_back(0, sys.checkpoint());
  if (warmup_frames > 0) {
    const Cycle stride = sim::auto_stride(warmup_frames);
    Cycle frame = 0;
    while (frame < warmup_frames) {
      const Cycle step = std::min(stride, warmup_frames - frame);
      sys.run(step);
      frame += step;
      ladder_.emplace_back(frame, sys.checkpoint());
    }
  }
}

void PooledMission::reset() {
  mission_.system->restore(ladder_.back().second);
  ++resets_;
}

void PooledMission::reset_to(Cycle frame) {
  require(frame <= warmup_, "reset_to target beyond the warm-up prefix");
  // Nearest ladder checkpoint at or below `frame`; ladder frames are
  // strictly increasing, so the predecessor of the first frame > `frame`.
  auto it = std::upper_bound(
      ladder_.begin(), ladder_.end(), frame,
      [](Cycle f, const auto& entry) { return f < entry.first; });
  --it;
  mission_.system->restore(it->second);
  if (frame > it->first) mission_.system->run(frame - it->first);
  ++resets_;
}

SystemPool::SystemPool(MissionFactory factory, Cycle warmup_frames)
    : factory_(std::move(factory)), warmup_(warmup_frames) {
  require(static_cast<bool>(factory_), "system pool needs a mission factory");
}

SystemPool::Lease::~Lease() {
  if (mission_ != nullptr) pool_->give_back(std::move(mission_));
}

SystemPool::Lease SystemPool::lease() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.leases;
    if (!idle_.empty()) {
      std::unique_ptr<PooledMission> mission = std::move(idle_.back());
      idle_.pop_back();
      return Lease(*this, std::move(mission));
    }
    ++stats_.constructions;
  }
  // Construct (and warm) outside the lock: the expensive path must not
  // serialize other lanes' lease/release traffic.
  return Lease(*this, std::make_unique<PooledMission>(factory_, warmup_));
}

SystemPool::Stats SystemPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void SystemPool::give_back(std::unique_ptr<PooledMission> mission) {
  std::lock_guard<std::mutex> lock(mutex_);
  idle_.push_back(std::move(mission));
}

PlanFactory make_env_plan_factory(EnvPlanParams params) {
  require(!params.factors.empty(), "env plan factory needs factors");
  require(params.frames > 0, "env plan factory needs a positive frame span");
  return [params = std::move(params)](std::uint64_t seed) {
    Rng rng(seed);
    MissionProfile profile(params.frame_length);
    for (std::size_t c = 0; c < params.changes; ++c) {
      const env::FactorSpec& factor =
          params.factors[static_cast<std::size_t>(
              rng.uniform(0, params.factors.size() - 1))];
      const Cycle frame =
          params.first_frame +
          static_cast<Cycle>(rng.uniform(0, params.frames - 1));
      const std::int64_t value =
          factor.min_value +
          static_cast<std::int64_t>(rng.uniform(
              0, static_cast<std::uint64_t>(factor.max_value -
                                            factor.min_value)));
      profile.at(frame, factor.id, value);
    }
    return profile.build();
  };
}

namespace {

/// Per-chunk accumulator: plain tallies plus the chunk's sample-digest
/// stream, and — pooled mode only — the chunk's system lease (chunk-scoped
/// scratch; released at the chunk's last sample, never crosses the fold).
struct MissionAcc {
  std::uint64_t samples = 0;
  std::uint64_t frames_run = 0;
  std::uint64_t fault_events = 0;
  std::uint64_t reconfigurations = 0;
  std::uint64_t region_relocations = 0;
  std::uint64_t deadline_violations = 0;
  std::uint64_t pool_resets = 0;
  std::uint64_t systems_constructed = 0;
  std::uint64_t chunk_digest = kFnvBasis;
  /// Folded stream of chunk digests — only the running total uses it.
  std::uint64_t digest = kFnvBasis;
  std::optional<SystemPool::Lease> lease;
};

/// Runs the post-warm mission leg on a system standing at the warm point
/// and tallies its stats deltas plus final digest.
void fly_sample(core::System& sys, const PlanFactory& plan_for,
                const sim::FleetSample& sample, Cycle frames,
                MissionAcc& acc) {
  const core::SystemStats before = sys.stats();
  const std::uint64_t reconfigs_before =
      sys.scram().stats().reconfigs_completed;
  sys.set_fault_plan(plan_for(sample.seed));
  sys.run(frames);
  const core::SystemStats after = sys.stats();
  ++acc.samples;
  acc.frames_run += after.frames_run - before.frames_run;
  acc.fault_events +=
      after.fault_events_applied - before.fault_events_applied;
  acc.reconfigurations +=
      sys.scram().stats().reconfigs_completed - reconfigs_before;
  acc.region_relocations +=
      after.region_relocations - before.region_relocations;
  acc.deadline_violations +=
      after.deadline_violations - before.deadline_violations;
  fnv_mix(acc.chunk_digest, sys.digest());
}

}  // namespace

FleetMissionReport run_fleet_missions(const MissionFactory& factory,
                                      const PlanFactory& plan_for,
                                      const FleetMissionOptions& options,
                                      sim::FleetRunner& fleet) {
  require(static_cast<bool>(factory), "fleet sweep needs a mission factory");
  require(static_cast<bool>(plan_for), "fleet sweep needs a plan factory");
  require(options.frames > 0, "fleet sweep needs a positive mission length");

  const sim::ShardPlan plan = fleet.plan(options.samples);
  SystemPool pool(factory, options.warmup_frames);
  const bool pooled = options.pool_systems;

  const auto last_of_chunk = [&plan](std::size_t index) {
    return (index + 1) % plan.chunk() == 0 || index + 1 == plan.samples();
  };

  MissionAcc total = fleet.reduce<MissionAcc>(
      options.samples, options.base_seed,
      [&](const sim::FleetSample& sample, MissionAcc& acc) {
        if (pooled) {
          // Chunk-grain lease: acquired at the chunk's first sample,
          // released at its last — the pool mutex never rides the
          // per-sample path.
          if (!acc.lease.has_value()) acc.lease.emplace(pool.lease());
          PooledMission& mission = acc.lease->mission();
          mission.reset();
          fly_sample(mission.system(), plan_for, sample, options.frames,
                     acc);
          ++acc.pool_resets;
          if (last_of_chunk(sample.index)) acc.lease.reset();
        } else {
          // Ablation oracle: fresh construction plus warm-up replay per
          // sample. Bit-identical to the pooled path — the plan's events
          // all land at or after the warm point.
          CrashMission mission = factory();
          require(mission.system != nullptr,
                  "mission factory built no system");
          if (options.warmup_frames > 0) {
            mission.system->run(options.warmup_frames);
          }
          fly_sample(*mission.system, plan_for, sample, options.frames,
                     acc);
          ++acc.systems_constructed;
        }
      },
      [](MissionAcc& into, MissionAcc& part) {
        into.samples += part.samples;
        into.frames_run += part.frames_run;
        into.fault_events += part.fault_events;
        into.reconfigurations += part.reconfigurations;
        into.region_relocations += part.region_relocations;
        into.deadline_violations += part.deadline_violations;
        into.pool_resets += part.pool_resets;
        into.systems_constructed += part.systems_constructed;
        fnv_mix(into.digest, part.chunk_digest);
      });

  FleetMissionReport report;
  report.samples = total.samples;
  report.frames_run = total.frames_run;
  report.fault_events = total.fault_events;
  report.reconfigurations = total.reconfigurations;
  report.region_relocations = total.region_relocations;
  report.deadline_violations = total.deadline_violations;
  report.digest = total.digest;
  report.pool_resets = total.pool_resets;
  report.systems_constructed =
      pooled ? pool.stats().constructions : total.systems_constructed;
  return report;
}

}  // namespace arfs::support
