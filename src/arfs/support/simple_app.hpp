// A generic reconfigurable application for examples, tests, and benchmarks.
//
// SimpleApp performs bookkeeping work each frame (counting AFTAs and
// persisting the count to stable storage) and lets the scenario configure
// how many frames each reconfiguration stage takes — the knob that exercises
// multi-frame phases, dependency waits, and SP3 margins.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "arfs/core/app.hpp"

namespace arfs::support {

struct SimpleAppParams {
  /// Frames each stage needs to complete (>= 1).
  Cycle halt_frames = 1;
  Cycle prepare_frames = 1;
  Cycle initialize_frames = 1;
  /// Simulated execution time consumed by one normal AFTA.
  SimDuration work_cost_us = 100;
};

class SimpleApp final : public core::ReconfigurableApp {
 public:
  SimpleApp(AppId id, std::string name, SimpleAppParams params = {});

  /// Total normal AFTAs completed (volatile: reset by host failure).
  [[nodiscard]] std::uint64_t work_count() const { return work_count_; }
  /// Stable-storage work counter as of the last commit; survives failures.
  [[nodiscard]] std::uint64_t halts() const { return halts_; }
  [[nodiscard]] std::uint64_t prepares() const { return prepares_; }
  [[nodiscard]] std::uint64_t initializes() const { return initializes_; }
  [[nodiscard]] std::uint64_t volatile_losses() const {
    return volatile_losses_;
  }

  /// Makes the next `n` work frames raise an application fault signal.
  void inject_work_faults(std::uint64_t n) { fault_budget_ = n; }

 protected:
  StepResult do_work(const Ctx& ctx) override;
  bool do_halt(const Ctx& ctx) override;
  bool do_prepare(const Ctx& ctx, std::optional<SpecId> target_spec) override;
  bool do_initialize(const Ctx& ctx,
                     std::optional<SpecId> target_spec) override;
  void on_volatile_lost() override;
  void save_domain(std::vector<std::uint64_t>& out) const override;
  void load_domain(const std::vector<std::uint64_t>& in) override;

 private:
  SimpleAppParams params_;
  std::uint64_t work_count_ = 0;
  std::uint64_t halts_ = 0;
  std::uint64_t prepares_ = 0;
  std::uint64_t initializes_ = 0;
  std::uint64_t volatile_losses_ = 0;
  std::uint64_t fault_budget_ = 0;
  Cycle stage_progress_ = 0;
};

}  // namespace arfs::support
