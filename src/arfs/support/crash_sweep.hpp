// Mission-wide crash-point sweep.
//
// The correctness gate for durable storage under any sync policy: fail-stop
// one processor at *every* frame of a mission and check that the state its
// devices recover is exactly the state of the last durable commit epoch —
// never a torn record, never anything newer than what was synced, never
// anything older. Crash points are independent missions, so the sweep fans
// them across a sim::BatchRunner and inherits the batch engine's
// determinism contract: the report is bit-identical at any thread count.
//
// Two execution strategies produce bit-identical reports:
//  * from-scratch (checkpointing off): each job builds a fresh mission and
//    replays it up to its own crash frame — F crash points simulate
//    F·(F+1)/2 frames;
//  * checkpointed (the default): one serial baseline pass runs the mission
//    once, records the shared commit-boundary fingerprint table, and drops
//    a deterministic core::SystemCheckpoint every K frames; each job then
//    forks a fresh mission, restores the nearest checkpoint at or below its
//    crash frame, and simulates only the residual < K frames. Total
//    simulated frames fall to F + ~F·K/2, minimized at K ≈ √F (the
//    auto-tune default).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "arfs/common/ids.hpp"
#include "arfs/common/types.hpp"
#include "arfs/core/system.hpp"
#include "arfs/sim/batch.hpp"

namespace arfs::storage {
class MappedArena;
}  // namespace arfs::storage

namespace arfs::support {

/// One freshly built mission: a system plus whatever owns the objects the
/// system borrows (spec, plant models, apps' external state). The keepalive
/// is destroyed after the system, never touched otherwise.
struct CrashMission {
  std::shared_ptr<void> keepalive;  // declared first: destroyed last
  std::unique_ptr<core::System> system;
};

/// Builds one mission from scratch. Must be deterministic (same mission
/// every call) and thread-safe to call concurrently — each invocation must
/// share no mutable state with the others.
using MissionFactory = std::function<CrashMission()>;

struct CrashSweepOptions {
  /// Mission length; the sweep crashes the victim after frame 1, 2, …,
  /// frames — one job per crash point.
  Cycle frames = 0;
  /// The processor to fail-stop. Must carry a durability engine and must
  /// not be failed by the mission's own fault plan.
  ProcessorId victim;

  /// Device fault armed at the crash point, on top of the ordinary loss of
  /// the unsynced tail.
  enum class IoFault : std::uint8_t {
    kNone,
    /// The final in-flight write tears: `tear_keep` bytes of the buffered
    /// tail survive onto the durable image. Recovery may salvage extra
    /// whole records but must truncate the torn one — the durable-epoch
    /// floor still holds (synced bytes are intact).
    kTornWrite,
    /// One bit of the durable journal image flips (latent media fault).
    /// This can land in *synced* records, so recovery may legitimately
    /// truncate below the durable-epoch floor; the sweep then only
    /// requires the recovered state to be an exact commit boundary.
    kBitFlip,
  };
  IoFault io_fault = IoFault::kNone;
  /// Buffered-tail bytes a torn write leaves on the image (kTornWrite).
  std::size_t tear_keep = 7;

  /// Also verify warm-start relocation at every crash point: after the
  /// fail-stop, catch the victim's shipping channel up and assert the
  /// standby replica's fingerprint is bit-identical to the recovered
  /// commit-boundary fingerprint. The factory's mission must enable
  /// SystemOptions::journal_shipping. When the mission replicates to a
  /// quorum cohort (SystemOptions::quorum_replicas) the check reads the
  /// elected shipper-leader's replica and additionally asserts the commit
  /// rule: the cohort keeps a live majority and its majority-acknowledged
  /// commit id equals the epoch the warm start served — at one replica this
  /// degenerates to the single-standby check exactly, so N = 1 sweeps are
  /// digest-identical to the single-standby oracle.
  bool warm_start = false;

  /// Quorum adversary (warm_start on a quorum mission only): at every crash
  /// point, fail-stop this many cohort members — always the current elected
  /// leader, re-electing between kills — before the catch-up runs. Must
  /// leave a live majority (at most the minority of the cohort).
  std::uint32_t quorum_kills = 0;

  /// O(F·K) strategy: fork each crash point from a stride-K baseline
  /// checkpoint instead of replaying the mission from frame 0. Off runs the
  /// from-scratch O(F²) sweep — the oracle the checkpointed path is tested
  /// bit-identical against.
  bool checkpointing = true;
  /// Baseline checkpoint stride K; 0 auto-tunes to max(1, round(√frames)).
  Cycle checkpoint_stride = 0;

  /// Optional result arena (not owned; must outlive the sweep): the point
  /// table is sealed into one CRC-guarded arena region and the report is
  /// rebuilt from the re-read (CRC-verified) bytes — storage choice only,
  /// the report and its digest are bit-identical with or without it.
  storage::MappedArena* arena = nullptr;
};

/// One crash point's verdict. `match` asserts the fail-stop contract:
///  * no durable commit is lost — the recovered epoch is at least the
///    engine's last_durable_epoch at crash time (the guarantee floor);
///  * the recovered state is an *exact* frame-commit boundary — its
///    fingerprint equals the victim's in-memory fingerprint as of the
///    recovered epoch, so a crash can shorten history but never tear it.
/// Under every sync policy without torn-write faults the recovered epoch
/// equals the floor exactly; a torn write may durably salvage extra whole
/// records, which recovery is allowed (and checked) to use.
struct CrashPoint {
  Cycle crash_frame = 0;  ///< The victim failed after this many frames.
  /// The guarantee floor: the victim's in-memory fingerprint as of the
  /// last durable commit epoch before the crash.
  std::uint64_t expected_fingerprint = 0;
  std::uint64_t recovered_fingerprint = 0;
  std::uint64_t durable_epoch = 0;   ///< last_durable_epoch at crash time.
  std::uint64_t recovered_epoch = 0; ///< RecoveryReport::last_epoch.
  /// Frame commits the crash actually lost: frames run minus the recovered
  /// epoch. Bounded by the policy's watermark; zero under every-commit.
  std::uint64_t lost_frames = 0;
  bool journal_truncated = false;  ///< Recovery found a torn/corrupt tail.
  bool match = false;

  // --- warm-start fields (CrashSweepOptions::warm_start; zero otherwise) ---
  std::uint64_t replica_epoch = 0;        ///< Standby store's commit epoch.
  std::uint64_t replica_fingerprint = 0;  ///< Standby store's fingerprint.
  /// Journal bytes the post-crash catch-up still had to ship.
  std::uint64_t replica_catchup_bytes = 0;
  /// The catch-up lost its cursor and fell back to a full-copy reseed.
  bool replica_reseeded = false;
  /// The warm-start contract: after catch-up the standby is bit-identical
  /// to the recovered commit boundary (same fingerprint as the recovered
  /// store, and an exact frame commit of this mission).
  bool replica_match = false;
};

struct CrashSweepReport {
  std::vector<CrashPoint> points;  ///< One per crash frame, in order.
  std::size_t mismatches = 0;
  /// Warm-start points whose replica missed the contract (0 unless the
  /// sweep ran with warm_start).
  std::size_t replica_mismatches = 0;
  std::uint64_t max_lost_frames = 0;
  /// Largest post-crash catch-up any warm-start point needed.
  std::uint64_t max_replica_catchup_bytes = 0;
  /// Warm-start points that fell back to a full-copy reseed.
  std::size_t replica_reseeds = 0;

  // --- execution-cost metrics; deliberately OUTSIDE digest() so the
  // checkpointed and from-scratch strategies stay digest-comparable ---
  /// Mission frames simulated across the baseline pass and every job:
  /// frames·(frames+1)/2 from scratch, frames + Σ residuals checkpointed.
  std::uint64_t simulated_frames = 0;
  /// Baseline checkpoints held (frame-0 included); 0 from scratch.
  std::uint64_t checkpoints_taken = 0;
  /// The stride actually used after auto-tuning; 0 from scratch.
  Cycle stride_used = 0;
  /// The point table round-tripped through a CRC-guarded arena region
  /// (CrashSweepOptions::arena); the digest is storage-invariant.
  bool arena_backed = false;

  [[nodiscard]] bool all_match() const {
    return mismatches == 0 && replica_mismatches == 0;
  }
  /// Order-sensitive FNV-1a digest of every point — one number to compare
  /// a serial reference sweep against a parallel one, and the checkpointed
  /// strategy against the from-scratch oracle.
  [[nodiscard]] std::uint64_t digest() const;
};

/// Fail-stops `options.victim` after every frame in [1, options.frames] of
/// the factory's mission, in parallel, and verifies each recovery.
[[nodiscard]] CrashSweepReport run_crash_sweep(
    const MissionFactory& factory, const CrashSweepOptions& options,
    sim::BatchRunner& runner = sim::BatchRunner::shared());

}  // namespace arfs::support
