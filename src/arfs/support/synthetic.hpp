// Synthetic reconfiguration specifications for property sweeps, scale tests,
// and benchmarks.
//
// Two families:
//  * chain specs — a linear degradation chain C0 -> C1 -> ... -> C(n-1)
//    driven by a single severity factor; Cn-1 is safe. Exercises the
//    section 5.3 restriction-time formulas directly.
//  * random specs — N applications, M configurations, K binary factors, a
//    deterministic pseudo-random choose function, and optional acyclic
//    dependencies. Used by the SP1-SP4 property sweeps: whatever the
//    (seeded) shape, the four properties must hold on every trace.
#pragma once

#include <cstdint>

#include "arfs/common/rng.hpp"
#include "arfs/core/reconfig_spec.hpp"

namespace arfs::support {

struct ChainSpecParams {
  std::size_t configs = 4;        ///< Chain length (>= 2); last one is safe.
  std::size_t apps = 2;
  Cycle transition_bound = 16;    ///< T for each chain edge.
  bool with_recovery_edges = false;  ///< Also allow moving back up-chain
                                     ///< (creates cycles).
  Cycle dwell_frames = 0;
};

/// Severity factor: value v in [0, configs-1] demands configuration v.
/// The factor id is kChainSeverityFactor.
inline constexpr FactorId kChainSeverityFactor{100};

[[nodiscard]] core::ReconfigSpec make_chain_spec(
    const ChainSpecParams& params);

struct RandomSpecParams {
  std::size_t apps = 3;
  std::size_t specs_per_app = 2;
  std::size_t configs = 4;
  std::size_t factors = 2;       ///< Binary factors.
  std::size_t processors = 3;
  std::size_t dependencies = 1;  ///< Acyclic initialize-phase dependencies.
  Cycle transition_bound = 64;   ///< Generous; property sweeps tighten it.
  Cycle dwell_frames = 0;
};

/// Deterministic from `seed`: the same seed always yields the same spec.
[[nodiscard]] core::ReconfigSpec make_random_spec(
    const RandomSpecParams& params, std::uint64_t seed);

/// Id helpers used by the generators (and by tests inspecting the results).
[[nodiscard]] AppId synthetic_app(std::size_t index);
[[nodiscard]] SpecId synthetic_spec(std::size_t app_index,
                                    std::size_t spec_index);
[[nodiscard]] ConfigId synthetic_config(std::size_t index);
[[nodiscard]] FactorId synthetic_factor(std::size_t index);
[[nodiscard]] ProcessorId synthetic_processor(std::size_t index);

}  // namespace arfs::support
