#include "arfs/support/mission.hpp"

#include <utility>

#include "arfs/common/check.hpp"

namespace arfs::support {

MissionProfile::MissionProfile(SimDuration frame_length)
    : frame_length_(frame_length) {
  require(frame_length > 0, "frame length must be positive");
}

void MissionProfile::add(Cycle frame, sim::FaultEvent proto) {
  if (jitter_on_ && jitter_frames_ > 0) {
    Rng rng(jitter_state_++);
    frame += rng.uniform(0, jitter_frames_);
  }
  proto.when = static_cast<SimTime>(frame) * frame_length_;
  events_.push_back(Event{frame, std::move(proto)});
}

MissionProfile& MissionProfile::at(Cycle frame, FactorId factor,
                                   std::int64_t value, std::string note) {
  sim::FaultEvent e;
  e.kind = sim::FaultKind::kEnvironmentChange;
  e.factor = factor;
  e.new_value = value;
  e.note = std::move(note);
  add(frame, std::move(e));
  return *this;
}

MissionProfile& MissionProfile::fail(Cycle frame, ProcessorId processor,
                                     std::string note) {
  sim::FaultEvent e;
  e.kind = sim::FaultKind::kProcessorFailStop;
  e.processor = processor;
  e.note = std::move(note);
  add(frame, std::move(e));
  return *this;
}

MissionProfile& MissionProfile::repair(Cycle frame, ProcessorId processor,
                                       std::string note) {
  sim::FaultEvent e;
  e.kind = sim::FaultKind::kProcessorRepair;
  e.processor = processor;
  e.note = std::move(note);
  add(frame, std::move(e));
  return *this;
}

MissionProfile& MissionProfile::journal_sync_fail(Cycle frame,
                                                  ProcessorId processor,
                                                  std::string note) {
  sim::FaultEvent e;
  e.kind = sim::FaultKind::kJournalSyncFail;
  e.processor = processor;
  e.note = std::move(note);
  add(frame, std::move(e));
  return *this;
}

MissionProfile& MissionProfile::journal_torn_write(Cycle frame,
                                                   ProcessorId processor,
                                                   std::int64_t keep_bytes,
                                                   std::string note) {
  require(keep_bytes >= 0, "torn-write keep bytes cannot be negative");
  sim::FaultEvent e;
  e.kind = sim::FaultKind::kJournalTornWrite;
  e.processor = processor;
  e.new_value = keep_bytes;
  e.note = std::move(note);
  add(frame, std::move(e));
  return *this;
}

MissionProfile& MissionProfile::journal_bit_flip(Cycle frame,
                                                 ProcessorId processor,
                                                 std::int64_t seed,
                                                 std::string note) {
  sim::FaultEvent e;
  e.kind = sim::FaultKind::kJournalBitFlip;
  e.processor = processor;
  e.new_value = seed;
  e.note = std::move(note);
  add(frame, std::move(e));
  return *this;
}

MissionProfile& MissionProfile::periodic(FactorId factor, std::int64_t low,
                                         std::int64_t high, Cycle period,
                                         Cycle duty, Cycle phase,
                                         Cycle until) {
  require(period > 0 && duty < period, "need duty < period, period > 0");
  for (Cycle start = phase; start < until; start += period) {
    at(start, factor, high, "periodic-high");
    if (start + duty < until) {
      at(start + duty, factor, low, "periodic-low");
    }
  }
  return *this;
}

MissionProfile& MissionProfile::with_jitter(Cycle max_frames,
                                            std::uint64_t seed) {
  jitter_frames_ = max_frames;
  jitter_state_ = seed;
  jitter_on_ = true;
  return *this;
}

sim::FaultPlan MissionProfile::build() const {
  sim::FaultPlan plan;
  for (const Event& event : events_) {
    plan.add(event.proto);
  }
  return plan;
}

}  // namespace arfs::support
