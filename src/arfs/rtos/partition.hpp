// RTOS partition.
//
// The platform runs "a real-time operating system ... for example one that
// complies with the ARINC 653 specification" (paper section 3). ARINC 653's
// core ideas, reduced to what the paper's model needs (section 6.1): each
// application runs in its own partition with a fixed per-frame time budget,
// partitions execute under a static schedule, and a partition exceeding its
// budget is a detectable timing fault rather than silent interference.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "arfs/common/ids.hpp"
#include "arfs/common/types.hpp"

namespace arfs::rtos {

/// Outcome of one partition activation (one unit of work, paper 6.1).
struct ActivationResult {
  SimDuration consumed = 0;  ///< Simulated execution time used this frame.
  bool completed = true;     ///< False if the application raised a fault.
  std::string fault_detail;  ///< Meaningful when !completed.
};

class Partition {
 public:
  using Entry = std::function<ActivationResult(Cycle)>;

  /// `budget` is the per-frame execution budget in simulated microseconds.
  Partition(PartitionId id, std::string name, ProcessorId host, AppId app,
            SimDuration budget, Entry entry);

  [[nodiscard]] PartitionId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] ProcessorId host() const { return host_; }
  [[nodiscard]] AppId app() const { return app_; }
  [[nodiscard]] SimDuration budget() const { return budget_; }

  /// Runs the partition's unit of work for `cycle`.
  [[nodiscard]] ActivationResult activate(Cycle cycle) const {
    return entry_(cycle);
  }

  /// Replaces the budget (used when a reconfiguration moves the partition to
  /// a lower-resource specification).
  void set_budget(SimDuration budget);

 private:
  PartitionId id_;
  std::string name_;
  ProcessorId host_;
  AppId app_;
  SimDuration budget_;
  Entry entry_;
};

}  // namespace arfs::rtos
