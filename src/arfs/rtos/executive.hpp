// Cyclic executive.
//
// Drives the synchronous frame structure the formal model assumes (paper
// section 6.1): all partitions share one frame length, frames start together,
// and each partition performs exactly one unit of work per frame. The
// executive activates partitions in schedule order, enforces budgets through
// the health monitor, and skips partitions whose host processor has
// fail-stopped (their absence is what the activity monitor detects).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "arfs/common/ids.hpp"
#include "arfs/common/types.hpp"
#include "arfs/failstop/group.hpp"
#include "arfs/rtos/health.hpp"
#include "arfs/rtos/partition.hpp"
#include "arfs/rtos/schedule.hpp"

namespace arfs::rtos {

struct FrameReport {
  Cycle cycle = 0;
  std::size_t activated = 0;  ///< Partitions that ran.
  std::size_t skipped = 0;    ///< Partitions on failed processors.
  std::size_t overruns = 0;
  std::size_t faults = 0;
};

class CyclicExecutive {
 public:
  CyclicExecutive(ScheduleTable schedule, failstop::ProcessorGroup& group,
                  HealthMonitor& health, failstop::DetectorBank& bank);

  /// Registers a partition. Its id must appear in the schedule and be unique.
  void add_partition(std::unique_ptr<Partition> partition);

  /// Executes one major frame: activates every scheduled partition whose
  /// processor is running, enforcing budgets. `frame_start` is the simulated
  /// time at which the frame begins.
  FrameReport run_frame(Cycle cycle, SimTime frame_start);

  [[nodiscard]] Partition& partition(PartitionId id);
  [[nodiscard]] const ScheduleTable& schedule() const { return schedule_; }
  [[nodiscard]] std::uint64_t frames_run() const { return frames_run_; }

 private:
  ScheduleTable schedule_;
  failstop::ProcessorGroup& group_;
  HealthMonitor& health_;
  failstop::DetectorBank& bank_;
  std::map<PartitionId, std::unique_ptr<Partition>> partitions_;
  std::uint64_t frames_run_ = 0;
};

}  // namespace arfs::rtos
