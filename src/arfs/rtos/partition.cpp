#include "arfs/rtos/partition.hpp"

#include "arfs/common/check.hpp"

namespace arfs::rtos {

Partition::Partition(PartitionId id, std::string name, ProcessorId host,
                     AppId app, SimDuration budget, Entry entry)
    : id_(id), name_(std::move(name)), host_(host), app_(app),
      budget_(budget), entry_(std::move(entry)) {
  require(budget > 0, "partition budget must be positive");
  require(static_cast<bool>(entry_), "partition entry must be callable");
}

void Partition::set_budget(SimDuration budget) {
  require(budget > 0, "partition budget must be positive");
  budget_ = budget;
}

}  // namespace arfs::rtos
