#include "arfs/rtos/schedule.hpp"

#include <algorithm>

#include "arfs/common/check.hpp"

namespace arfs::rtos {

ScheduleTable::ScheduleTable(SimDuration frame_length)
    : frame_length_(frame_length) {
  require(frame_length > 0, "frame length must be positive");
}

void ScheduleTable::add_window(Window window) {
  require(window.offset >= 0 && window.length > 0, "malformed window");
  require(window.offset + window.length <= frame_length_,
          "window exceeds the frame");
  for (const Window& other : windows_) {
    if (other.processor != window.processor) continue;
    const bool disjoint = window.offset + window.length <= other.offset ||
                          other.offset + other.length <= window.offset;
    require(disjoint, "windows overlap on one processor");
  }
  windows_.push_back(window);
}

std::vector<Window> ScheduleTable::activation_order() const {
  std::vector<Window> out = windows_;
  std::sort(out.begin(), out.end(), [](const Window& a, const Window& b) {
    if (a.offset != b.offset) return a.offset < b.offset;
    return a.partition < b.partition;
  });
  return out;
}

SimDuration ScheduleTable::load_on(ProcessorId processor) const {
  SimDuration load = 0;
  for (const Window& w : windows_) {
    if (w.processor == processor) load += w.length;
  }
  return load;
}

}  // namespace arfs::rtos
