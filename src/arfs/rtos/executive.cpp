#include "arfs/rtos/executive.hpp"

#include <utility>

#include "arfs/common/check.hpp"

namespace arfs::rtos {

CyclicExecutive::CyclicExecutive(ScheduleTable schedule,
                                 failstop::ProcessorGroup& group,
                                 HealthMonitor& health,
                                 failstop::DetectorBank& bank)
    : schedule_(std::move(schedule)), group_(group), health_(health),
      bank_(bank) {}

void CyclicExecutive::add_partition(std::unique_ptr<Partition> partition) {
  require(partition != nullptr, "null partition");
  bool scheduled = false;
  for (const Window& w : schedule_.windows()) {
    if (w.partition == partition->id()) {
      scheduled = true;
      require(w.processor == partition->host(),
              "schedule window and partition disagree on host processor");
    }
  }
  require(scheduled, "partition has no schedule window");
  const PartitionId id = partition->id();
  const bool inserted =
      partitions_.emplace(id, std::move(partition)).second;
  require(inserted, "duplicate partition id");
}

FrameReport CyclicExecutive::run_frame(Cycle cycle, SimTime frame_start) {
  FrameReport report;
  report.cycle = cycle;

  for (const Window& window : schedule_.activation_order()) {
    const auto it = partitions_.find(window.partition);
    require(it != partitions_.end(), "scheduled partition was never added");
    Partition& part = *it->second;

    if (!group_.processor(part.host()).running()) {
      ++report.skipped;
      continue;
    }

    const SimTime activation_time = frame_start + window.offset;
    const ActivationResult result = part.activate(cycle);
    ++report.activated;

    if (result.consumed > part.budget()) {
      ++report.overruns;
      health_.report_overrun(part.id(), part.app(), cycle, activation_time,
                             result.consumed, part.budget(), bank_);
    }
    if (!result.completed) {
      ++report.faults;
      health_.report_app_fault(part.id(), part.app(), cycle, activation_time,
                               result.fault_detail, bank_);
    }
  }

  ++frames_run_;
  return report;
}

Partition& CyclicExecutive::partition(PartitionId id) {
  const auto it = partitions_.find(id);
  require(it != partitions_.end(), "unknown partition id");
  return *it->second;
}

}  // namespace arfs::rtos
