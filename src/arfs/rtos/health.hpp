// RTOS health monitor.
//
// ARINC 653's health-monitoring function, reduced to the events our model
// produces: partition budget overruns and partition-level application faults.
// Events are recorded for post-mortem inspection and forwarded to the
// platform's failure detectors so the SCRAM sees them as abstract signals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arfs/common/ids.hpp"
#include "arfs/common/types.hpp"
#include "arfs/failstop/detector.hpp"

namespace arfs::rtos {

enum class HealthEventKind { kBudgetOverrun, kApplicationFault };

struct HealthEvent {
  Cycle cycle = 0;
  HealthEventKind kind = HealthEventKind::kBudgetOverrun;
  PartitionId partition{};
  AppId app{};
  std::string detail;
};

class HealthMonitor {
 public:
  void report_overrun(PartitionId partition, AppId app, Cycle cycle,
                      SimTime now, SimDuration consumed, SimDuration budget,
                      failstop::DetectorBank& bank);

  void report_app_fault(PartitionId partition, AppId app, Cycle cycle,
                        SimTime now, const std::string& detail,
                        failstop::DetectorBank& bank);

  [[nodiscard]] const std::vector<HealthEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::uint64_t overrun_count() const { return overruns_; }
  [[nodiscard]] std::uint64_t fault_count() const { return faults_; }

 private:
  std::vector<HealthEvent> events_;
  failstop::TimingMonitor timing_;
  failstop::SignalMonitor signal_;
  std::uint64_t overruns_ = 0;
  std::uint64_t faults_ = 0;
};

}  // namespace arfs::rtos
