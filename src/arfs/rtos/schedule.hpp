// Static partition schedule.
//
// One major frame equals one of the paper's real-time frames (all
// applications share a single frame length and the frames start together,
// section 6.1). Within the frame, each partition is given a window; the
// windows of partitions on the *same* processor must not overlap, while
// partitions on different processors may run concurrently.
#pragma once

#include <vector>

#include "arfs/common/ids.hpp"
#include "arfs/common/types.hpp"

namespace arfs::rtos {

struct Window {
  PartitionId partition;
  ProcessorId processor;
  SimDuration offset;  ///< Start relative to frame start.
  SimDuration length;  ///< Window duration (>= partition budget).
};

class ScheduleTable {
 public:
  /// `frame_length` is the major frame (= the paper's real-time frame).
  explicit ScheduleTable(SimDuration frame_length);

  /// Adds a window. Preconditions: it fits inside the frame and does not
  /// overlap an existing window on the same processor.
  void add_window(Window window);

  [[nodiscard]] SimDuration frame_length() const { return frame_length_; }
  [[nodiscard]] const std::vector<Window>& windows() const { return windows_; }

  /// Windows sorted by offset (activation order within a frame).
  [[nodiscard]] std::vector<Window> activation_order() const;

  /// Total scheduled time on `processor` per frame (utilization numerator).
  [[nodiscard]] SimDuration load_on(ProcessorId processor) const;

 private:
  SimDuration frame_length_;
  std::vector<Window> windows_;
};

}  // namespace arfs::rtos
