#include "arfs/rtos/health.hpp"

namespace arfs::rtos {

void HealthMonitor::report_overrun(PartitionId partition, AppId app,
                                   Cycle cycle, SimTime now,
                                   SimDuration consumed, SimDuration budget,
                                   failstop::DetectorBank& bank) {
  const std::string detail = "partition consumed " +
                             std::to_string(consumed) + "us of " +
                             std::to_string(budget) + "us budget";
  events_.push_back(HealthEvent{cycle, HealthEventKind::kBudgetOverrun,
                                partition, app, detail});
  ++overruns_;
  timing_.report_overrun(app, cycle, now, bank, detail);
}

void HealthMonitor::report_app_fault(PartitionId partition, AppId app,
                                     Cycle cycle, SimTime now,
                                     const std::string& detail,
                                     failstop::DetectorBank& bank) {
  events_.push_back(HealthEvent{cycle, HealthEventKind::kApplicationFault,
                                partition, app, detail});
  ++faults_;
  signal_.report_fault(app, cycle, now, bank, detail);
}

}  // namespace arfs::rtos
