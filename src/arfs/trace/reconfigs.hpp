// Extraction of reconfigurations from a trace: the model's get_reconfigs.
//
// Per the paper's informal reading of SP1, a reconfiguration R "begins at the
// same time any application in the system is no longer operating under Ci and
// ends when all applications are operating under Cj". Concretely on a
// recorded trace: start_c is a cycle where some application left the normal
// state (the previous cycle being all-normal), and end_c is the first
// subsequent cycle at which every application is normal again.
#pragma once

#include <optional>
#include <vector>

#include "arfs/common/ids.hpp"
#include "arfs/common/types.hpp"
#include "arfs/trace/recorder.hpp"

namespace arfs::trace {

struct Reconfiguration {
  Cycle start_c = 0;
  Cycle end_c = 0;
  ConfigId from{};  ///< svclvl at start_c.
  ConfigId to{};    ///< svclvl at end_c.
};

/// All completed reconfigurations in the trace, in time order. A
/// reconfiguration still in progress when the trace ends is excluded (it has
/// no end_c); use incomplete_reconfig() to detect that case.
[[nodiscard]] std::vector<Reconfiguration> get_reconfigs(const SysTrace& s);

/// If the trace ends mid-reconfiguration, the cycle at which that
/// reconfiguration started.
[[nodiscard]] std::optional<Cycle> incomplete_reconfig(const SysTrace& s);

/// Duration of R in frames, inclusive of both endpoints — the quantity SP3
/// multiplies by cycle_time: (end_c - start_c + 1).
[[nodiscard]] Cycle duration_frames(const Reconfiguration& r);

}  // namespace arfs::trace
