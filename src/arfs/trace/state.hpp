// System-state snapshots: the concrete counterpart of the paper's sys_trace.
//
// The PVS model records, per cycle, each application's reconfiguration status
// (`reconf_st`), the system service level (`svclvl` — the current
// configuration), and the environment. Properties SP1-SP4 (paper Table 2) are
// predicates over exactly this data, so the snapshot captures it verbatim,
// plus the three per-frame predicate flags from Table 1 (application
// postconditions, transition conditions, preconditions) so the phase protocol
// itself can be checked and printed.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "arfs/common/ids.hpp"
#include "arfs/common/types.hpp"
#include "arfs/env/environment.hpp"

namespace arfs::trace {

/// Per-application reconfiguration status at the end of a frame.
/// kNormal corresponds to the model's `normal`; kInterrupted to
/// `interrupted`; the remaining values are the intermediate, non-normal
/// stages of the SFTA phases (Table 1).
enum class ReconfState {
  kNormal,
  kInterrupted,    ///< Trigger accepted this frame; AFTA could not complete.
  kHalted,         ///< Postcondition established, application halted.
  kPrepared,       ///< Transition condition for the target established.
  kAwaitingStart,  ///< Precondition established; waiting for system start.
};

struct AppSnapshot {
  ReconfState reconf_st = ReconfState::kNormal;
  std::optional<SpecId> spec;  ///< Nullopt when the application is off.
  bool host_running = true;
  // Table 1 predicate flags, as established by the application this frame.
  bool postcondition_ok = false;
  bool transition_ok = false;
  bool precondition_ok = false;
};

/// Snapshot of the whole system at the end of one frame.
struct SysState {
  Cycle cycle = 0;
  SimTime time = 0;            ///< Frame end instant.
  ConfigId svclvl{};           ///< Current configuration (service level).
  std::map<AppId, AppSnapshot> apps;
  env::EnvState env;
};

[[nodiscard]] std::string to_string(ReconfState st);

/// True iff every application in the snapshot is in the normal state.
[[nodiscard]] bool all_normal(const SysState& s);

/// True iff at least one application is in the interrupted state.
[[nodiscard]] bool any_interrupted(const SysState& s);

}  // namespace arfs::trace
