#include "arfs/trace/recorder.hpp"

#include <utility>

namespace arfs::trace {

SysTrace::SysTrace(SimDuration frame_length) : frame_length_(frame_length) {
  require(frame_length > 0, "frame length must be positive");
}

void SysTrace::append(SysState state) {
  require(state.cycle == states_.size(),
          "trace cycles must be contiguous from 0");
  states_.push_back(std::move(state));
}

const SysState& SysTrace::at(Cycle cycle) const {
  require(cycle < states_.size(), "cycle beyond recorded trace");
  return states_[static_cast<std::size_t>(cycle)];
}

}  // namespace arfs::trace
