// Trace rendering: CSV export for offline analysis and a Table-1-style
// phase table used to reproduce the paper's SFTA phase protocol (experiment
// E1 in DESIGN.md).
#pragma once

#include <ostream>
#include <string>

#include "arfs/trace/reconfigs.hpp"
#include "arfs/trace/recorder.hpp"

namespace arfs::trace {

/// Writes one row per (cycle, application) with status and predicate flags.
void write_csv(const SysTrace& s, std::ostream& os);

/// Writes the full trace as a JSON document: frame metadata, per-application
/// snapshots, the environment, and the extracted reconfigurations.
void write_json(const SysTrace& s, std::ostream& os);

/// Renders the frames of one reconfiguration in the layout of paper Table 1:
/// relative frame number, per-application action/status, and the predicates
/// established in that frame.
[[nodiscard]] std::string render_phase_table(const SysTrace& s,
                                             const Reconfiguration& r);

}  // namespace arfs::trace
