#include "arfs/trace/reconfigs.hpp"

namespace arfs::trace {

std::vector<Reconfiguration> get_reconfigs(const SysTrace& s) {
  std::vector<Reconfiguration> out;
  // Plain flag + cycle instead of std::optional: GCC 12 issues a spurious
  // -Wmaybe-uninitialized through the optional's storage here.
  bool open = false;
  Cycle start = 0;
  for (Cycle c = 0; c < s.size(); ++c) {
    const SysState& state = s.at(c);
    if (!open) {
      if (!all_normal(state)) {
        open = true;
        start = c;
      }
      continue;
    }
    if (all_normal(state)) {
      Reconfiguration r;
      r.start_c = start;
      r.end_c = c;
      r.from = s.at(start).svclvl;
      r.to = state.svclvl;
      out.push_back(r);
      open = false;
    }
  }
  return out;
}

std::optional<Cycle> incomplete_reconfig(const SysTrace& s) {
  std::optional<Cycle> start;
  for (Cycle c = 0; c < s.size(); ++c) {
    if (!start.has_value()) {
      if (!all_normal(s.at(c))) start = c;
    } else if (all_normal(s.at(c))) {
      start.reset();
    }
  }
  return start;
}

Cycle duration_frames(const Reconfiguration& r) {
  return r.end_c - r.start_c + 1;
}

}  // namespace arfs::trace
