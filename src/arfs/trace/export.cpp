#include "arfs/trace/export.hpp"

#include <sstream>

namespace arfs::trace {

void write_csv(const SysTrace& s, std::ostream& os) {
  os << "cycle,time_us,svclvl,app,reconf_st,spec,host_running,"
        "postcondition,transition,precondition,env\n";
  for (const SysState& state : s.states()) {
    for (const auto& [app, snap] : state.apps) {
      os << state.cycle << ',' << state.time << ',' << state.svclvl.value()
         << ',' << app.value() << ',' << to_string(snap.reconf_st) << ',';
      if (snap.spec.has_value()) {
        os << snap.spec->value();
      } else {
        os << "off";
      }
      os << ',' << (snap.host_running ? 1 : 0) << ','
         << (snap.postcondition_ok ? 1 : 0) << ','
         << (snap.transition_ok ? 1 : 0) << ','
         << (snap.precondition_ok ? 1 : 0) << ','
         << env::to_string(state.env) << '\n';
    }
  }
}

void write_json(const SysTrace& s, std::ostream& os) {
  os << "{\n  \"frame_length_us\": " << s.frame_length() << ",\n";
  os << "  \"frames\": [\n";
  bool first_frame = true;
  for (const SysState& state : s.states()) {
    if (!first_frame) os << ",\n";
    first_frame = false;
    os << "    {\"cycle\": " << state.cycle << ", \"time_us\": " << state.time
       << ", \"svclvl\": " << state.svclvl.value() << ", \"apps\": {";
    bool first_app = true;
    for (const auto& [app, snap] : state.apps) {
      if (!first_app) os << ", ";
      first_app = false;
      os << "\"" << app.value() << "\": {\"st\": \""
         << to_string(snap.reconf_st) << "\", \"spec\": ";
      if (snap.spec.has_value()) {
        os << snap.spec->value();
      } else {
        os << "null";
      }
      os << ", \"host_running\": " << (snap.host_running ? "true" : "false")
         << ", \"post\": " << (snap.postcondition_ok ? "true" : "false")
         << ", \"trans\": " << (snap.transition_ok ? "true" : "false")
         << ", \"pre\": " << (snap.precondition_ok ? "true" : "false") << "}";
    }
    os << "}, \"env\": {";
    bool first_factor = true;
    for (const auto& [factor, value] : state.env) {
      if (!first_factor) os << ", ";
      first_factor = false;
      os << "\"" << factor.value() << "\": " << value;
    }
    os << "}}";
  }
  os << "\n  ],\n  \"reconfigurations\": [\n";
  bool first_reconfig = true;
  for (const Reconfiguration& r : get_reconfigs(s)) {
    if (!first_reconfig) os << ",\n";
    first_reconfig = false;
    os << "    {\"start_c\": " << r.start_c << ", \"end_c\": " << r.end_c
       << ", \"from\": " << r.from.value() << ", \"to\": " << r.to.value()
       << ", \"frames\": " << duration_frames(r) << "}";
  }
  os << "\n  ]\n}\n";
}

std::string render_phase_table(const SysTrace& s, const Reconfiguration& r) {
  std::ostringstream os;
  os << "SFTA phases: config " << r.from.value() << " -> " << r.to.value()
     << " (cycles " << r.start_c << ".." << r.end_c << ", "
     << duration_frames(r) << " frames)\n";
  os << "frame | cycle | app:status (predicates)\n";
  for (Cycle c = r.start_c; c <= r.end_c; ++c) {
    const SysState& state = s.at(c);
    os << "  " << (c - r.start_c) << "   | " << c << "    | ";
    bool first = true;
    for (const auto& [app, snap] : state.apps) {
      if (!first) os << "; ";
      first = false;
      os << "a" << app.value() << ":" << to_string(snap.reconf_st);
      std::string preds;
      if (snap.postcondition_ok) preds += "post ";
      if (snap.transition_ok) preds += "trans ";
      if (snap.precondition_ok) preds += "pre ";
      if (!preds.empty()) {
        preds.pop_back();
        os << " (" << preds << ")";
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace arfs::trace
