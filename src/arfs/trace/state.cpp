#include "arfs/trace/state.hpp"

namespace arfs::trace {

std::string to_string(ReconfState st) {
  switch (st) {
    case ReconfState::kNormal:        return "normal";
    case ReconfState::kInterrupted:   return "interrupted";
    case ReconfState::kHalted:        return "halted";
    case ReconfState::kPrepared:      return "prepared";
    case ReconfState::kAwaitingStart: return "awaiting-start";
  }
  return "?";
}

bool all_normal(const SysState& s) {
  for (const auto& [app, snap] : s.apps) {
    if (snap.reconf_st != ReconfState::kNormal) return false;
  }
  return true;
}

bool any_interrupted(const SysState& s) {
  for (const auto& [app, snap] : s.apps) {
    if (snap.reconf_st == ReconfState::kInterrupted) return true;
  }
  return false;
}

}  // namespace arfs::trace
