// SysTrace: the recorded function cycle -> sys_state.
//
// The model's sys_trace couples the trace function `tr` with the
// reconfiguration specification `sp` and the environment trace `env`; here
// the recorder stores the per-cycle states (which embed the environment
// snapshot) and the frame length needed to convert frame counts into the
// real-time quantities SP3 compares against.
#pragma once

#include <vector>

#include "arfs/common/check.hpp"
#include "arfs/common/types.hpp"
#include "arfs/trace/state.hpp"

namespace arfs::trace {

class SysTrace {
 public:
  /// `frame_length` is the global real-time frame length (cycle_time in the
  /// model). Precondition: positive.
  explicit SysTrace(SimDuration frame_length);

  /// Appends the end-of-frame snapshot for the next cycle. Cycles must be
  /// recorded contiguously starting at 0.
  void append(SysState state);

  [[nodiscard]] const SysState& at(Cycle cycle) const;
  [[nodiscard]] std::size_t size() const { return states_.size(); }
  [[nodiscard]] bool empty() const { return states_.empty(); }
  [[nodiscard]] SimDuration frame_length() const { return frame_length_; }
  [[nodiscard]] const std::vector<SysState>& states() const { return states_; }

 private:
  SimDuration frame_length_;
  std::vector<SysState> states_;
};

}  // namespace arfs::trace
