// Deterministic random number generation.
//
// Every source of nondeterminism in the simulator (fault schedules, sensor
// noise, randomized test systems) draws from a seeded Rng so that any run is
// exactly replayable from its seed. The generator is SplitMix64: tiny, fast,
// and statistically adequate for simulation workloads.
#pragma once

#include <cstdint>

namespace arfs {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  [[nodiscard]] std::uint64_t next_u64();

  /// Uniform integer in [lo, hi]. Precondition: lo <= hi.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01();

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi);

  /// Bernoulli trial with probability p of returning true.
  [[nodiscard]] bool chance(double p);

  /// Zero-mean Gaussian sample with the given standard deviation
  /// (Box-Muller, one sample per call).
  [[nodiscard]] double gaussian(double stddev);

  /// Derives an independent child generator; used to give each subsystem its
  /// own stream so adding draws in one does not perturb another.
  [[nodiscard]] Rng fork();

  /// The full generator state (SplitMix64 is its counter); together with
  /// set_state() this lets checkpoints capture and replay a stream exactly.
  [[nodiscard]] std::uint64_t state() const { return state_; }
  void set_state(std::uint64_t state) { state_ = state; }

 private:
  std::uint64_t state_;
};

}  // namespace arfs
