// Leveled logging for the simulator.
//
// Benchmarks run with logging off; integration tests and examples enable it
// to narrate reconfigurations. The logger is a process-wide singleton because
// log output is inherently a process-wide concern; everything else in the
// library is instance-scoped.
#pragma once

#include <atomic>
#include <mutex>
#include <sstream>
#include <string>

namespace arfs {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Thread-safe: batch simulations run missions on many threads, all of which
/// share this singleton. The level is an atomic (lock-free fast path for the
/// overwhelmingly common disabled check) and each write() emits its line
/// under a mutex so parallel runs never interleave characters.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const {
    return level_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled(LogLevel level) const {
    return level >= this->level();
  }

  void write(LogLevel level, const std::string& component,
             const std::string& message);

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::kOff};
  std::mutex write_mutex_;
};

namespace logdetail {

template <typename... Args>
void emit(LogLevel level, const std::string& component, const Args&... args) {
  Logger& lg = Logger::instance();
  if (!lg.enabled(level)) return;
  std::ostringstream os;
  (os << ... << args);
  lg.write(level, component, os.str());
}

}  // namespace logdetail

template <typename... Args>
void log_trace(const std::string& component, const Args&... args) {
  logdetail::emit(LogLevel::kTrace, component, args...);
}
template <typename... Args>
void log_debug(const std::string& component, const Args&... args) {
  logdetail::emit(LogLevel::kDebug, component, args...);
}
template <typename... Args>
void log_info(const std::string& component, const Args&... args) {
  logdetail::emit(LogLevel::kInfo, component, args...);
}
template <typename... Args>
void log_warn(const std::string& component, const Args&... args) {
  logdetail::emit(LogLevel::kWarn, component, args...);
}
template <typename... Args>
void log_error(const std::string& component, const Args&... args) {
  logdetail::emit(LogLevel::kError, component, args...);
}

}  // namespace arfs
