// Leveled logging for the simulator.
//
// Benchmarks run with logging off; integration tests and examples enable it
// to narrate reconfigurations. The logger is a process-wide singleton because
// log output is inherently a process-wide concern; everything else in the
// library is instance-scoped.
#pragma once

#include <sstream>
#include <string>

namespace arfs {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  void write(LogLevel level, const std::string& component,
             const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kOff;
};

namespace logdetail {

template <typename... Args>
void emit(LogLevel level, const std::string& component, const Args&... args) {
  Logger& lg = Logger::instance();
  if (!lg.enabled(level)) return;
  std::ostringstream os;
  (os << ... << args);
  lg.write(level, component, os.str());
}

}  // namespace logdetail

template <typename... Args>
void log_trace(const std::string& component, const Args&... args) {
  logdetail::emit(LogLevel::kTrace, component, args...);
}
template <typename... Args>
void log_debug(const std::string& component, const Args&... args) {
  logdetail::emit(LogLevel::kDebug, component, args...);
}
template <typename... Args>
void log_info(const std::string& component, const Args&... args) {
  logdetail::emit(LogLevel::kInfo, component, args...);
}
template <typename... Args>
void log_warn(const std::string& component, const Args&... args) {
  logdetail::emit(LogLevel::kWarn, component, args...);
}
template <typename... Args>
void log_error(const std::string& component, const Args&... args) {
  logdetail::emit(LogLevel::kError, component, args...);
}

}  // namespace arfs
