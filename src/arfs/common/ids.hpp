// Strongly-typed identifiers.
//
// The formal model names four kinds of entity: applications, functional
// specifications, system configurations, and environmental factors. Using a
// distinct C++ type for each prevents the classic "passed the config id where
// the spec id was expected" bug at compile time while keeping the ids cheap
// (a single integer).
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

namespace arfs {

namespace detail {

/// CRTP-free strong integer id. `Tag` makes each instantiation a distinct
/// type; ids are ordered and hashable so they can key standard containers.
template <typename Tag>
class StrongId {
 public:
  constexpr StrongId() = default;
  constexpr explicit StrongId(std::uint32_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.value_;
  }

 private:
  std::uint32_t value_ = 0;
};

}  // namespace detail

struct AppTag {};
struct SpecTag {};
struct ConfigTag {};
struct FactorTag {};
struct ProcessorTag {};
struct EndpointTag {};
struct PartitionTag {};

/// Identifies one reconfigurable application (paper: a_i in Apps).
using AppId = detail::StrongId<AppTag>;
/// Identifies one functional specification of an application (paper: s_ij).
using SpecId = detail::StrongId<SpecTag>;
/// Identifies one system configuration (paper: c_k in C).
using ConfigId = detail::StrongId<ConfigTag>;
/// Identifies one environmental factor (component status, power state, ...).
using FactorId = detail::StrongId<FactorTag>;
/// Identifies one fail-stop processor.
using ProcessorId = detail::StrongId<ProcessorTag>;
/// Identifies one endpoint on the time-triggered bus.
using EndpointId = detail::StrongId<EndpointTag>;
/// Identifies one RTOS partition.
using PartitionId = detail::StrongId<PartitionTag>;

}  // namespace arfs

namespace std {
template <typename Tag>
struct hash<arfs::detail::StrongId<Tag>> {
  size_t operator()(arfs::detail::StrongId<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
}  // namespace std
