#include "arfs/common/log.hpp"

#include <iostream>

namespace arfs {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?";
}
}  // namespace

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  const std::lock_guard<std::mutex> lock(write_mutex_);
  std::clog << "[" << level_name(level) << "] " << component << ": "
            << message << '\n';
}

}  // namespace arfs
