// Contract checking.
//
// Following the Core Guidelines (I.6/E.12), interface preconditions are
// expressed as explicit checks that throw on violation. A violated contract
// in this library is always a programming error in the caller, never an
// expected runtime condition, so an exception type distinct from domain
// errors is used.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace arfs {

/// Thrown when a caller violates a documented precondition or when an
/// internal invariant is broken.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what)
      : std::logic_error(what) {}
};

/// Thrown for domain errors: malformed reconfiguration specifications,
/// unknown ids, operations on failed components, and similar.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Checks a precondition; throws ContractViolation with location info.
inline void require(bool condition, const std::string& message,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw ContractViolation(std::string(loc.file_name()) + ":" +
                            std::to_string(loc.line()) + ": " + message);
  }
}

/// Checks an internal invariant; throws ContractViolation with location info.
inline void ensure(bool condition, const std::string& message,
                   std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw ContractViolation(std::string(loc.file_name()) + ":" +
                            std::to_string(loc.line()) +
                            ": invariant broken: " + message);
  }
}

}  // namespace arfs
