#include "arfs/common/rng.hpp"

#include <cmath>
#include <numbers>

#include "arfs/common/check.hpp"

namespace arfs {

std::uint64_t Rng::next_u64() {
  // SplitMix64 (Steele, Lea, Flood 2014).
  state_ += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  require(lo <= hi, "Rng::uniform: lo > hi");
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next_u64();  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = span * (UINT64_MAX / span);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + v % span;
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

bool Rng::chance(double p) { return uniform01() < p; }

double Rng::gaussian(double stddev) {
  // Box-Muller; discard the second variate for simplicity.
  double u1 = uniform01();
  while (u1 == 0.0) u1 = uniform01();
  const double u2 = uniform01();
  return stddev * std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

Rng Rng::fork() {
  // Mixing through two draws decorrelates parent and child streams.
  const std::uint64_t a = next_u64();
  const std::uint64_t b = next_u64();
  return Rng(a ^ (b << 1) ^ 0xA5A5A5A5A5A5A5A5ULL);
}

}  // namespace arfs
