// Minimal expected-value type (C++23 std::expected is not available under the
// C++20 toolchain used here).
//
// Used for operations whose failure is an ordinary domain outcome the caller
// must handle — e.g. reading a stable-storage variable that a failed
// processor never committed — as opposed to contract violations, which throw.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "arfs/common/check.hpp"

namespace arfs {

/// Error payload carried by Expected.
struct Unexpected {
  std::string message;
};

[[nodiscard]] inline Unexpected unexpected(std::string message) {
  return Unexpected{std::move(message)};
}

/// Holds either a value of type T or an error message.
template <typename T>
class Expected {
 public:
  Expected(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Expected(Unexpected err) : data_(std::move(err)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool has_value() const {
    return std::holds_alternative<T>(data_);
  }
  explicit operator bool() const { return has_value(); }

  /// Precondition: has_value().
  [[nodiscard]] const T& value() const {
    require(has_value(), "Expected::value() on error: " + error());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() {
    require(has_value(), "Expected::value() on error: " + error());
    return std::get<T>(data_);
  }

  /// Precondition: !has_value().
  [[nodiscard]] const std::string& error() const {
    static const std::string kNone = "(no error)";
    if (has_value()) return kNone;
    return std::get<Unexpected>(data_).message;
  }

  [[nodiscard]] T value_or(T fallback) const {
    return has_value() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Unexpected> data_;
};

}  // namespace arfs
