// Fundamental scalar types shared by every arfs module.
//
// The paper's system model (section 6.1) is synchronous and frame-based:
// every application performs exactly one unit of work per real-time frame and
// commits to stable storage at the frame boundary. All simulation time in
// this library is therefore expressed either as a frame index (`Cycle`) or as
// simulated microseconds (`SimTime`).
#pragma once

#include <cstdint>
#include <limits>

namespace arfs {

/// Index of a real-time frame (the paper's "cycle"). Frame 0 is the first
/// frame executed by the system.
using Cycle = std::uint64_t;

/// Simulated time in microseconds since system start.
using SimTime = std::int64_t;

/// Duration in simulated microseconds.
using SimDuration = std::int64_t;

inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();
inline constexpr SimTime kNoTime = std::numeric_limits<SimTime>::min();

/// Converts a frame count to simulated time given the fixed frame length.
[[nodiscard]] constexpr SimDuration frames_to_time(Cycle frames,
                                                   SimDuration frame_len) {
  return static_cast<SimDuration>(frames) * frame_len;
}

}  // namespace arfs
