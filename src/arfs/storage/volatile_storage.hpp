// Volatile storage.
//
// The second half of the fail-stop contract: "the contents of volatile
// storage are lost" on failure (paper section 5.1). Applications keep scratch
// state here; a failure erases all of it, and correctness of recovery must
// rest only on what was committed to stable storage.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "arfs/common/expected.hpp"
#include "arfs/storage/value.hpp"

namespace arfs::storage {

class VolatileStorage {
 public:
  void write(const std::string& key, Value value);
  [[nodiscard]] Expected<Value> read(const std::string& key) const;

  template <typename T>
  [[nodiscard]] Expected<T> read_as(const std::string& key) const {
    Expected<Value> v = read(key);
    if (!v) return unexpected(v.error());
    return get_as<T>(v.value());
  }

  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  /// Models loss of volatile contents at a fail-stop failure.
  void erase_all();

  /// Number of erase_all() calls observed (instrumentation for tests).
  [[nodiscard]] std::uint64_t erase_count() const { return erases_; }

  /// FNV-1a digest of the full contents (the map iterates sorted, so equal
  /// stores always hash equal); lets checkpoint round-trip tests prove
  /// volatile state restores bit-identically.
  [[nodiscard]] std::uint64_t fingerprint() const;

 private:
  std::map<std::string, Value> data_;
  std::uint64_t erases_ = 0;
};

}  // namespace arfs::storage
