#include "arfs/storage/stable_storage.hpp"

#include <algorithm>
#include <utility>

namespace arfs::storage {

namespace {

/// lower_bound over a sorted (key, payload) vector.
template <typename Vec>
auto entry_bound(Vec& entries, const std::string& key) {
  return std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
}

}  // namespace

void StableStorage::write(const std::string& key, Value value) {
  const auto it = entry_bound(pending_, key);
  if (it != pending_.end() && it->first == key) {
    it->second = std::move(value);
  } else {
    pending_.insert(it, {key, std::move(value)});
  }
}

std::size_t StableStorage::commit(Cycle cycle) {
  const std::size_t n = pending_.size();
  // Both vectors are sorted, so each staged key lands at or after the
  // previous one; carrying the search start across iterations makes a
  // steady-state commit (all keys already present) one linear merge pass.
  std::size_t from = 0;
  for (auto& [key, value] : pending_) {
    if (history_on_) history_.push_back(CommitRecord{cycle, key, value});
    const auto it = std::lower_bound(
        committed_.begin() + static_cast<std::ptrdiff_t>(from),
        committed_.end(), key,
        [](const auto& entry, const std::string& k) {
          return entry.first < k;
        });
    if (it != committed_.end() && it->first == key) {
      it->second = Slot{std::move(value), cycle};
      from = static_cast<std::size_t>(it - committed_.begin()) + 1;
    } else {
      const auto inserted =
          committed_.insert(it, {key, Slot{std::move(value), cycle}});
      from = static_cast<std::size_t>(inserted - committed_.begin()) + 1;
    }
  }
  pending_.clear();
  ++epochs_;
  return n;
}

void StableStorage::drop_pending() { pending_.clear(); }

Expected<Value> StableStorage::read(const std::string& key) const {
  const auto it = entry_bound(committed_, key);
  if (it == committed_.end() || it->first != key) {
    return unexpected("stable-storage key not committed: " + key);
  }
  return it->second.value;
}

Expected<Value> StableStorage::read_own(const std::string& key) const {
  const auto pit = entry_bound(pending_, key);
  if (pit != pending_.end() && pit->first == key) return pit->second;
  return read(key);
}

bool StableStorage::contains(const std::string& key) const {
  const auto it = entry_bound(committed_, key);
  return it != committed_.end() && it->first == key;
}

std::optional<Cycle> StableStorage::last_commit_cycle(
    const std::string& key) const {
  const auto it = entry_bound(committed_, key);
  if (it == committed_.end() || it->first != key) return std::nullopt;
  return it->second.committed_at;
}

std::vector<std::string> StableStorage::keys() const {
  std::vector<std::string> out;
  out.reserve(committed_.size());
  for (const auto& [key, slot] : committed_) out.push_back(key);
  return out;
}

}  // namespace arfs::storage
