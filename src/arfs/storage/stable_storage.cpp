#include "arfs/storage/stable_storage.hpp"

#include <utility>

namespace arfs::storage {

void StableStorage::write(const std::string& key, Value value) {
  pending_[key] = std::move(value);
}

std::size_t StableStorage::commit(Cycle cycle) {
  const std::size_t n = pending_.size();
  for (auto& [key, value] : pending_) {
    if (history_on_) history_.push_back(CommitRecord{cycle, key, value});
    committed_[key] = Slot{std::move(value), cycle};
  }
  pending_.clear();
  ++epochs_;
  return n;
}

void StableStorage::drop_pending() { pending_.clear(); }

Expected<Value> StableStorage::read(const std::string& key) const {
  const auto it = committed_.find(key);
  if (it == committed_.end()) {
    return unexpected("stable-storage key not committed: " + key);
  }
  return it->second.value;
}

Expected<Value> StableStorage::read_own(const std::string& key) const {
  const auto pit = pending_.find(key);
  if (pit != pending_.end()) return pit->second;
  return read(key);
}

bool StableStorage::contains(const std::string& key) const {
  return committed_.contains(key);
}

std::optional<Cycle> StableStorage::last_commit_cycle(
    const std::string& key) const {
  const auto it = committed_.find(key);
  if (it == committed_.end()) return std::nullopt;
  return it->second.committed_at;
}

std::vector<std::string> StableStorage::keys() const {
  std::vector<std::string> out;
  out.reserve(committed_.size());
  for (const auto& [key, slot] : committed_) out.push_back(key);
  return out;
}

}  // namespace arfs::storage
