#include "arfs/storage/stable_storage.hpp"

#include <algorithm>
#include <bit>
#include <utility>

namespace arfs::storage {

namespace {

/// lower_bound over a sorted (key, payload) vector.
template <typename Vec>
auto entry_bound(Vec& entries, const std::string& key) {
  return std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
}

}  // namespace

void StableStorage::write(const std::string& key, Value value) {
  const auto it = entry_bound(pending_, key);
  if (it != pending_.end() && it->first == key) {
    it->second = std::move(value);
  } else {
    pending_.insert(it, {key, std::move(value)});
  }
}

std::size_t StableStorage::commit(Cycle cycle) {
  const std::size_t n = pending_.size();
  // Both vectors are sorted, so each staged key lands at or after the
  // previous one; carrying the search start across iterations makes a
  // steady-state commit (all keys already present) one linear merge pass.
  std::size_t from = 0;
  for (auto& [key, value] : pending_) {
    if (history_on_) history_.push_back(CommitRecord{cycle, key, value});
    const auto it = std::lower_bound(
        committed_.begin() + static_cast<std::ptrdiff_t>(from),
        committed_.end(), key,
        [](const auto& entry, const std::string& k) {
          return entry.first < k;
        });
    if (it != committed_.end() && it->first == key) {
      it->second = Slot{std::move(value), cycle};
      from = static_cast<std::size_t>(it - committed_.begin()) + 1;
    } else {
      const auto inserted =
          committed_.insert(it, {key, Slot{std::move(value), cycle}});
      from = static_cast<std::size_t>(inserted - committed_.begin()) + 1;
    }
  }
  pending_.clear();
  ++epochs_;
  return n;
}

void StableStorage::drop_pending() { pending_.clear(); }

Expected<Value> StableStorage::read(const std::string& key) const {
  const auto it = entry_bound(committed_, key);
  if (it == committed_.end() || it->first != key) {
    return unexpected("stable-storage key not committed: " + key);
  }
  return it->second.value;
}

Expected<Value> StableStorage::read_own(const std::string& key) const {
  const auto pit = entry_bound(pending_, key);
  if (pit != pending_.end() && pit->first == key) return pit->second;
  return read(key);
}

bool StableStorage::contains(const std::string& key) const {
  const auto it = entry_bound(committed_, key);
  return it != committed_.end() && it->first == key;
}

std::optional<Cycle> StableStorage::last_commit_cycle(
    const std::string& key) const {
  const auto it = entry_bound(committed_, key);
  if (it == committed_.end() || it->first != key) return std::nullopt;
  return it->second.committed_at;
}

std::vector<std::string> StableStorage::keys() const {
  std::vector<std::string> out;
  out.reserve(committed_.size());
  for (const auto& [key, slot] : committed_) out.push_back(key);
  return out;
}

std::vector<std::tuple<std::string, Value, Cycle>>
StableStorage::committed_entries() const {
  std::vector<std::tuple<std::string, Value, Cycle>> out;
  out.reserve(committed_.size());
  for (const auto& [key, slot] : committed_) {
    out.emplace_back(key, slot.value, slot.committed_at);
  }
  return out;
}

void StableStorage::restore(const std::string& key, Value value,
                            Cycle committed_at) {
  const auto it = entry_bound(committed_, key);
  if (it != committed_.end() && it->first == key) {
    it->second = Slot{std::move(value), committed_at};
  } else {
    committed_.insert(it, {key, Slot{std::move(value), committed_at}});
  }
}

void StableStorage::restore_batch(
    const std::vector<std::pair<std::string, Value>>& entries,
    Cycle committed_at) {
  // Same carried-start linear merge as commit(): batch keys arrive sorted,
  // so each lands at or after the previous insertion point.
  std::size_t from = 0;
  for (const auto& [key, value] : entries) {
    const auto it = std::lower_bound(
        committed_.begin() + static_cast<std::ptrdiff_t>(from),
        committed_.end(), key,
        [](const auto& entry, const std::string& k) {
          return entry.first < k;
        });
    if (it != committed_.end() && it->first == key) {
      it->second = Slot{value, committed_at};
      from = static_cast<std::size_t>(it - committed_.begin()) + 1;
    } else {
      const auto inserted =
          committed_.insert(it, {key, Slot{value, committed_at}});
      from = static_cast<std::size_t>(inserted - committed_.begin()) + 1;
    }
  }
}

void StableStorage::restore_batch(
    const std::vector<std::tuple<std::string, Value, Cycle>>& entries) {
  std::size_t from = 0;
  for (const auto& [key, value, committed_at] : entries) {
    const auto it = std::lower_bound(
        committed_.begin() + static_cast<std::ptrdiff_t>(from),
        committed_.end(), key,
        [](const auto& entry, const std::string& k) {
          return entry.first < k;
        });
    if (it != committed_.end() && it->first == key) {
      it->second = Slot{value, committed_at};
      from = static_cast<std::size_t>(it - committed_.begin()) + 1;
    } else {
      const auto inserted =
          committed_.insert(it, {key, Slot{value, committed_at}});
      from = static_cast<std::size_t>(inserted - committed_.begin()) + 1;
    }
  }
}

namespace {

inline void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 0x100000001B3ULL;
  }
}

inline void fnv_mix_bytes(std::uint64_t& h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
}

}  // namespace

std::uint64_t StableStorage::fingerprint() const {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const auto& [key, slot] : committed_) {
    fnv_mix_bytes(h, key);
    fnv_mix(h, slot.value.index());
    if (const bool* b = std::get_if<bool>(&slot.value)) {
      fnv_mix(h, *b ? 1 : 0);
    } else if (const std::int64_t* i = std::get_if<std::int64_t>(&slot.value)) {
      fnv_mix(h, static_cast<std::uint64_t>(*i));
    } else if (const double* d = std::get_if<double>(&slot.value)) {
      fnv_mix(h, std::bit_cast<std::uint64_t>(*d));
    } else {
      fnv_mix_bytes(h, std::get<std::string>(slot.value));
    }
    fnv_mix(h, slot.committed_at);
  }
  return h;
}

}  // namespace arfs::storage
