#include "arfs/storage/replicated.hpp"

#include <map>

#include "arfs/common/check.hpp"

namespace arfs::storage {

ReplicatedStableStorage::ReplicatedStableStorage(std::size_t replicas) {
  require(replicas >= 1, "need at least one replica");
  replicas_.reserve(replicas);
  for (std::size_t i = 0; i < replicas; ++i) {
    replicas_.push_back(std::make_unique<Replica>());
  }
}

void ReplicatedStableStorage::write(const std::string& key, Value value) {
  for (const auto& replica : replicas_) {
    if (replica->available) replica->storage.write(key, value);
  }
}

void ReplicatedStableStorage::commit(Cycle cycle) {
  for (const auto& replica : replicas_) {
    if (replica->available) replica->storage.commit(cycle);
  }
}

Expected<Value> ReplicatedStableStorage::read(const std::string& key) const {
  ++stats_.reads;
  // Tally committed values across available replicas by rendered identity.
  std::map<std::string, std::pair<std::size_t, Value>> tally;
  std::size_t responding = 0;
  for (const auto& replica : replicas_) {
    if (!replica->available) continue;
    const Expected<Value> v = replica->storage.read(key);
    if (!v) continue;
    ++responding;
    const std::string rendered =
        type_name(v.value()) + ":" + to_string(v.value());
    auto [it, inserted] = tally.try_emplace(rendered, 0, v.value());
    ++it->second.first;
  }

  const std::size_t majority = replicas_.size() / 2 + 1;
  for (const auto& [rendered, entry] : tally) {
    if (entry.first >= majority) {
      if (entry.first < responding) ++stats_.masked_corruptions;
      return entry.second;
    }
  }
  ++stats_.unavailable_reads;
  return unexpected("no majority for key: " + key);
}

void ReplicatedStableStorage::fail_replica(std::size_t index) {
  require(index < replicas_.size(), "replica index out of range");
  replicas_[index]->available = false;
  replicas_[index]->storage.drop_pending();
}

void ReplicatedStableStorage::repair_replica(std::size_t index, Cycle cycle) {
  require(index < replicas_.size(), "replica index out of range");
  Replica& replica = *replicas_[index];
  require(!replica.available, "replica is not failed");

  // Resynchronize: copy every key a surviving majority agrees on. The key
  // set is the union over available replicas.
  std::map<std::string, bool> keys;
  for (const auto& other : replicas_) {
    if (!other->available) continue;
    for (const std::string& key : other->storage.keys()) keys[key] = true;
  }
  for (const auto& [key, unused] : keys) {
    const Expected<Value> v = read(key);
    if (v) replica.storage.write(key, v.value());
  }
  replica.storage.commit(cycle);
  replica.available = true;
}

void ReplicatedStableStorage::corrupt_replica(std::size_t index,
                                              const std::string& key,
                                              Value bad_value, Cycle cycle) {
  require(index < replicas_.size(), "replica index out of range");
  Replica& replica = *replicas_[index];
  replica.storage.write(key, std::move(bad_value));
  replica.storage.commit(cycle);
}

std::size_t ReplicatedStableStorage::available_count() const {
  std::size_t n = 0;
  for (const auto& replica : replicas_) {
    if (replica->available) ++n;
  }
  return n;
}

const StableStorage& ReplicatedStableStorage::replica(
    std::size_t index) const {
  require(index < replicas_.size(), "replica index out of range");
  return replicas_[index]->storage;
}

}  // namespace arfs::storage
