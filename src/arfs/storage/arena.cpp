#include "arfs/storage/arena.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "arfs/common/check.hpp"
#include "arfs/storage/durable/wire.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define ARFS_ARENA_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace arfs::storage {

namespace {

constexpr std::size_t kAlign = 8;

[[nodiscard]] std::size_t align_up(std::size_t v, std::size_t a) {
  return (v + a - 1) / a * a;
}

// Explicit little-endian stores/loads: the on-disk format must not depend
// on host endianness, and the scanner reads the same bytes back via stdio.
void store_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
void store_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
[[nodiscard]] std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
[[nodiscard]] std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

// Chunk-header field offsets.
constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffState = 4;
constexpr std::size_t kOffSeq = 8;
constexpr std::size_t kOffLen = 16;
constexpr std::size_t kOffCrc = 20;

constexpr std::uint32_t kStateOpen = 0;
constexpr std::uint32_t kStateSealed = 1;

}  // namespace

MappedArena::MappedArena(ArenaOptions options) : options_(std::move(options)) {
#ifdef ARFS_ARENA_MMAP
  const long ps = ::sysconf(_SC_PAGESIZE);
  if (ps > 0) page_ = static_cast<std::size_t>(ps);
#endif
  options_.slab_bytes =
      align_up(std::max(options_.slab_bytes, page_), page_);
#ifdef ARFS_ARENA_MMAP
  if (!options_.path.empty()) {
    fd_ = ::open(options_.path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fd_ < 0) {
      throw Error("arena: cannot open backing file " + options_.path);
    }
    file_backed_ = true;
  }
#else
  options_.path.clear();  // mmap unavailable: in-memory fallback only.
#endif
  std::lock_guard<std::mutex> lock(mu_);
  grow_locked(kFileHeaderBytes);
  // File header lives at the head of extent 0; chunks start right after it.
  std::uint8_t* h = extents_[0].base;
  store_u64(h, kFileMagic);
  store_u32(h + 8, kFileVersion);
  store_u32(h + 12, 0);
  store_u64(h + 16, options_.slab_bytes);
  cursor_off_ = kFileHeaderBytes;
}

MappedArena::~MappedArena() {
  std::lock_guard<std::mutex> lock(mu_);
  flush_locked();
#ifdef ARFS_ARENA_MMAP
  for (Extent& e : extents_) {
    if (file_backed_ && e.base != nullptr) ::munmap(e.base, e.bytes);
  }
  if (fd_ >= 0) ::close(fd_);
#endif
}

void MappedArena::grow_locked(std::size_t need) {
  // Seal off the current extent's tail: an explicit padding chunk when a
  // header fits, zeros otherwise (the scanner skips either form).
  if (!extents_.empty()) {
    Extent& cur = extents_[cursor_extent_];
    const std::size_t rest = cur.bytes - cursor_off_;
    if (rest >= kChunkHeaderBytes && cur.base != nullptr) {
      std::uint8_t* h = cur.base + cursor_off_;
      store_u32(h + kOffMagic, kPadMagic);
      store_u32(h + kOffState, kStateSealed);
      store_u64(h + kOffSeq, 0);
      store_u32(h + kOffLen,
                static_cast<std::uint32_t>(rest - kChunkHeaderBytes));
      store_u32(h + kOffCrc, 0);
    }
    // An in-memory extent whose regions are all released can go now — the
    // cursor is leaving it for good.
    if (!file_backed_ && cur.live_regions == 0 && extents_.size() > 1) {
      cur.heap.reset();
      cur.base = nullptr;
    }
  }
  const std::size_t len =
      align_up(std::max(need, options_.slab_bytes), options_.slab_bytes);
  Extent e;
  e.file_offset = file_bytes_;
  e.bytes = len;
#ifdef ARFS_ARENA_MMAP
  if (file_backed_) {
    if (::ftruncate(fd_, static_cast<off_t>(file_bytes_ + len)) != 0) {
      throw Error("arena: ftruncate failed growing " + options_.path);
    }
    void* m = ::mmap(nullptr, len, PROT_READ | PROT_WRITE, MAP_SHARED, fd_,
                     static_cast<off_t>(e.file_offset));
    if (m == MAP_FAILED) {
      throw Error("arena: mmap failed growing " + options_.path);
    }
    e.base = static_cast<std::uint8_t*>(m);
  }
#endif
  if (!file_backed_) {
    e.heap = std::make_unique<std::uint8_t[]>(len);  // value-initialized
    e.base = e.heap.get();
  }
  extents_.push_back(std::move(e));
  file_bytes_ += len;
  cursor_extent_ = extents_.size() - 1;
  cursor_off_ = 0;
  stats_.extents += 1;
  stats_.file_bytes = file_bytes_;
}

std::uint8_t* MappedArena::chunk_base_locked(const RegionInfo& r) const {
  const Extent& e = extents_[r.extent];
  ensure(e.base != nullptr, "arena extent already freed");
  return e.base + r.offset;
}

MappedArena::RegionId MappedArena::allocate(std::size_t payload_bytes) {
  require(payload_bytes <= 0xFFFFFFFFu - kChunkHeaderBytes,
          "arena region payload too large");
  const std::size_t chunk = align_up(kChunkHeaderBytes + payload_bytes, kAlign);
  std::lock_guard<std::mutex> lock(mu_);
  if (extents_[cursor_extent_].bytes - cursor_off_ < chunk) {
    grow_locked(chunk);
  }
  const RegionId id = regions_.size();
  RegionInfo info;
  info.extent = static_cast<std::uint32_t>(cursor_extent_);
  info.state = State::kOpen;
  info.offset = cursor_off_;
  info.payload = static_cast<std::uint32_t>(payload_bytes);
  std::uint8_t* h = extents_[cursor_extent_].base + cursor_off_;
  store_u32(h + kOffMagic, kChunkMagic);
  store_u32(h + kOffState, kStateOpen);
  store_u64(h + kOffSeq, id);
  store_u32(h + kOffLen, info.payload);
  store_u32(h + kOffCrc, 0);
  regions_.push_back(info);
  extents_[cursor_extent_].live_regions += 1;
  cursor_off_ += chunk;
  stats_.regions_allocated += 1;
  stats_.payload_bytes += payload_bytes;
  return id;
}

std::uint8_t* MappedArena::data(RegionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  require(id < regions_.size(), "arena: unknown region id");
  const RegionInfo& r = regions_[id];
  require(r.state == State::kOpen, "arena: data() on a non-open region");
  return chunk_base_locked(r) + kChunkHeaderBytes;
}

void MappedArena::seal(RegionId id) {
  std::uint8_t* base = nullptr;
  std::uint32_t payload = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    require(id < regions_.size(), "arena: unknown region id");
    RegionInfo& r = regions_[id];
    require(r.state == State::kOpen, "arena: seal() on a non-open region");
    base = chunk_base_locked(r);
    payload = r.payload;
  }
  // CRC outside the lock: the sealing worker is the region's only writer.
  const std::uint32_t crc =
      durable::crc32(base + kChunkHeaderBytes, payload);
  std::lock_guard<std::mutex> lock(mu_);
  RegionInfo& r = regions_[id];
  store_u32(base + kOffCrc, crc);
  store_u32(base + kOffState, kStateSealed);
  r.state = State::kSealed;
  stats_.regions_sealed += 1;
  pending_.push_back(id);
  pending_bytes_ += align_up(kChunkHeaderBytes + payload, kAlign);
  const durable::SyncPolicy& p = options_.sync;
  const bool bytes_hit = p.bytes_watermark > 0 &&
                         pending_bytes_ >= p.bytes_watermark;
  const bool frames_hit = p.frames_watermark > 0 &&
                          pending_.size() >= p.frames_watermark;
  bool flush = false;
  switch (p.mode) {
    case durable::SyncMode::kEveryCommit: flush = true; break;
    case durable::SyncMode::kBytesWatermark: flush = bytes_hit; break;
    case durable::SyncMode::kFramesWatermark: flush = frames_hit; break;
    case durable::SyncMode::kHybrid: flush = bytes_hit || frames_hit; break;
    // The arena's write-back path has no commit/sync feedback loop to tune
    // from; an adaptive policy behaves as its watermarks read statically.
    case durable::SyncMode::kAdaptive: flush = bytes_hit || frames_hit; break;
  }
  if (flush) flush_locked();
}

void MappedArena::flush_locked() {
  if (pending_.empty()) return;
#ifdef ARFS_ARENA_MMAP
  if (file_backed_) {
    // Coalesce the batch into maximal contiguous page spans per extent:
    // sequentially allocated chunks share pages and sit back to back, so a
    // watermark batch of hundreds of chunks collapses into a handful of
    // msync/madvise calls instead of two syscalls per chunk.
    struct Span {
      std::uint32_t extent;
      std::size_t lo, hi;
    };
    std::vector<Span> spans;
    spans.reserve(pending_.size());
    for (RegionId id : pending_) {
      const RegionInfo& r = regions_[id];
      const std::size_t chunk =
          align_up(kChunkHeaderBytes + r.payload, kAlign);
      spans.push_back(
          {r.extent, r.offset / page_ * page_,
           std::min(align_up(r.offset + chunk, page_),
                    extents_[r.extent].bytes)});
    }
    std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
      return a.extent != b.extent ? a.extent < b.extent : a.lo < b.lo;
    });
    std::size_t w = 0;
    for (std::size_t i = 1; i < spans.size(); ++i) {
      if (spans[i].extent == spans[w].extent && spans[i].lo <= spans[w].hi) {
        spans[w].hi = std::max(spans[w].hi, spans[i].hi);
      } else {
        spans[++w] = spans[i];
      }
    }
    spans.resize(w + 1);
    for (const Span& s : spans) {
      std::uint8_t* base = extents_[s.extent].base + s.lo;
      ::msync(base, s.hi - s.lo, MS_ASYNC);
      if (options_.drop_after_sync) {
        // Dropping whole spans — boundary pages included — is safe even
        // while a neighbouring open chunk on a shared page is being
        // written: MAP_SHARED pages *are* the page cache, so DONTNEED only
        // unmaps PTEs (the writer refaults onto the same cached page, no
        // bytes are ever discarded). The cost of a refault is accepted to
        // keep the RSS bound tight — interior-only drops would leave one
        // resident boundary page per sealed chunk forever.
        ::madvise(base, s.hi - s.lo, MADV_DONTNEED);
        stats_.dropped_bytes += s.hi - s.lo;
      }
    }
  }
#endif
  pending_.clear();
  pending_bytes_ = 0;
  stats_.syncs += 1;
}

const std::uint8_t* MappedArena::read(RegionId id,
                                      std::size_t* payload_bytes) const {
  const std::uint8_t* base = nullptr;
  std::uint32_t payload = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    require(id < regions_.size(), "arena: unknown region id");
    const RegionInfo& r = regions_[id];
    require(r.state != State::kOpen, "arena: read() on an open region");
    require(r.state != State::kReleased,
            "arena: read() on a released region");
    base = chunk_base_locked(r);
    payload = r.payload;
  }
  const std::uint32_t want = load_u32(base + kOffCrc);
  const std::uint32_t got =
      durable::crc32(base + kChunkHeaderBytes, payload);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.crc_checks += 1;
  }
  if (got != want) {
    throw Error("arena: chunk CRC mismatch in region " + std::to_string(id));
  }
  if (payload_bytes != nullptr) *payload_bytes = payload;
  return base + kChunkHeaderBytes;
}

std::size_t MappedArena::region_bytes(RegionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  require(id < regions_.size(), "arena: unknown region id");
  return regions_[id].payload;
}

void MappedArena::release(RegionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  require(id < regions_.size(), "arena: unknown region id");
  RegionInfo& r = regions_[id];
  require(r.state == State::kSealed, "arena: release() on a non-sealed region");
  r.state = State::kReleased;
  stats_.regions_released += 1;
  Extent& e = extents_[r.extent];
  e.live_regions -= 1;
#ifdef ARFS_ARENA_MMAP
  if (file_backed_ && e.base != nullptr && e.live_regions == 0) {
    // Extent-granular drop, not per-chunk: a read() fault maps a
    // fault-around neighbourhood of page-cache pages into the table, so a
    // chunk-sized DONTNEED unmaps fewer pages than the fault that preceded
    // it and RSS climbs with every chunk consumed. Dropping the whole
    // extent once its last region is released strictly dominates any
    // fault-around spill from reads within it (measured: 5.5 MB vs 69 MB
    // consume-phase peak on a 80 MB stream).
    ::madvise(e.base, e.bytes, MADV_DONTNEED);
    stats_.dropped_bytes += e.bytes;
  }
#endif
  if (!file_backed_ && e.live_regions == 0 && r.extent != cursor_extent_) {
    e.heap.reset();
    e.base = nullptr;
  }
}

void MappedArena::sync() {
  std::lock_guard<std::mutex> lock(mu_);
  flush_locked();
}

MappedArena::Stats MappedArena::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

ArenaScan scan_arena_file(const std::string& path) {
  ArenaScan s;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    s.error = "cannot open " + path;
    return s;
  }
  in.seekg(0, std::ios::end);
  const std::uint64_t size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);
  s.file_bytes = size;
  std::uint8_t head[MappedArena::kFileHeaderBytes];
  if (size < sizeof(head) ||
      !in.read(reinterpret_cast<char*>(head), sizeof(head))) {
    s.error = "file shorter than the arena header";
    return s;
  }
  if (load_u64(head) != MappedArena::kFileMagic) {
    s.error = "bad file magic (not an arena file)";
    return s;
  }
  if (load_u32(head + 8) != MappedArena::kFileVersion) {
    s.error = "unsupported arena version";
    return s;
  }
  s.slab_bytes = load_u64(head + 16);
  if (s.slab_bytes == 0 || s.slab_bytes % kAlign != 0 ||
      size % s.slab_bytes != 0) {
    s.error = "implausible slab size";
    return s;
  }
  std::vector<std::uint8_t> payload;
  std::uint64_t off = MappedArena::kFileHeaderBytes;
  while (off + MappedArena::kChunkHeaderBytes <= size) {
    std::uint8_t h[MappedArena::kChunkHeaderBytes];
    in.seekg(static_cast<std::streamoff>(off));
    if (!in.read(reinterpret_cast<char*>(h), sizeof(h))) {
      s.error = "short read at offset " + std::to_string(off);
      return s;
    }
    const std::uint32_t magic = load_u32(h + kOffMagic);
    if (magic == MappedArena::kChunkMagic || magic == MappedArena::kPadMagic) {
      const std::uint32_t len = load_u32(h + kOffLen);
      const std::uint64_t chunk =
          magic == MappedArena::kPadMagic
              ? MappedArena::kChunkHeaderBytes + len
              : align_up(MappedArena::kChunkHeaderBytes + len, kAlign);
      if (off + chunk > size) {
        s.error = "truncated chunk at offset " + std::to_string(off);
        return s;
      }
      if (magic == MappedArena::kPadMagic) {
        s.padding_bytes += chunk;
      } else {
        s.chunks += 1;
        s.payload_bytes += len;
        if (load_u32(h + kOffState) == kStateSealed) {
          s.sealed += 1;
          payload.resize(len);
          if (len > 0 &&
              !in.read(reinterpret_cast<char*>(payload.data()), len)) {
            s.error = "short payload read at offset " + std::to_string(off);
            return s;
          }
          if (durable::crc32(payload.data(), len) != load_u32(h + kOffCrc)) {
            s.crc_failures += 1;
          }
        } else {
          s.open += 1;
        }
      }
      off += chunk;
      continue;
    }
    bool zeros = true;
    for (std::uint8_t b : h) zeros = zeros && b == 0;
    if (zeros) {
      // Zero tail of an extent: skip to the next slab boundary.
      const std::uint64_t next = (off / s.slab_bytes + 1) * s.slab_bytes;
      s.padding_bytes += next - off;
      off = next;
      continue;
    }
    s.error = "unrecognized chunk magic at offset " + std::to_string(off);
    return s;
  }
  if (off < size) s.padding_bytes += size - off;  // sub-header zero tail
  s.ok = s.crc_failures == 0;
  if (!s.ok) s.error = std::to_string(s.crc_failures) + " chunk CRC failure(s)";
  return s;
}

}  // namespace arfs::storage
