// Replicated stable storage.
//
// The fail-stop model *assumes* stable storage whose contents survive
// processor failures; Schlichting & Schneider note it is itself built from
// redundant, less-reliable parts (mirrored devices with voting). This module
// shows that construction: k replicas, each an ordinary StableStorage that
// can fail (lose availability) or corrupt a value (which voting masks), with
// majority reads and all-replica writes. It justifies the library's
// treatment of StableStorage as ultra-reliable — and quantifies the
// replication factor behind that assumption.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arfs/common/expected.hpp"
#include "arfs/common/types.hpp"
#include "arfs/storage/stable_storage.hpp"

namespace arfs::storage {

struct ReplicationStats {
  std::uint64_t reads = 0;
  std::uint64_t masked_corruptions = 0;  ///< Reads where voting overrode a
                                         ///< minority of bad replicas.
  std::uint64_t unavailable_reads = 0;   ///< No majority could be formed.
};

class ReplicatedStableStorage {
 public:
  /// Precondition: replicas >= 1 (use an odd count for clean majorities).
  explicit ReplicatedStableStorage(std::size_t replicas);

  /// Writes go to every available replica.
  void write(const std::string& key, Value value);

  /// Commits every available replica at the frame boundary.
  void commit(Cycle cycle);

  /// Majority read: the value agreed by more than half of the *configured*
  /// replicas. Errors when no such majority exists (too many replicas
  /// failed or diverged).
  [[nodiscard]] Expected<Value> read(const std::string& key) const;

  /// Fails replica `index`: it stops serving reads and taking writes.
  void fail_replica(std::size_t index);
  /// Restores replica `index`, resynchronized from a current majority
  /// (every key readable by majority is copied in and committed).
  void repair_replica(std::size_t index, Cycle cycle);

  /// Corrupts one committed value on one replica (models a latent media
  /// fault that voting must mask).
  void corrupt_replica(std::size_t index, const std::string& key,
                       Value bad_value, Cycle cycle);

  [[nodiscard]] std::size_t replica_count() const { return replicas_.size(); }
  [[nodiscard]] std::size_t available_count() const;
  [[nodiscard]] const ReplicationStats& stats() const { return stats_; }

  /// Direct access for tests (replica may be failed).
  [[nodiscard]] const StableStorage& replica(std::size_t index) const;

 private:
  struct Replica {
    StableStorage storage;
    bool available = true;
  };
  std::vector<std::unique_ptr<Replica>> replicas_;
  mutable ReplicationStats stats_;
};

}  // namespace arfs::storage
