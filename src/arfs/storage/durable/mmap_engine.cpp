#include "arfs/storage/durable/mmap_engine.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

namespace arfs::storage::durable {

// --- ArenaBackend ---

ArenaBackend::ArenaBackend(std::shared_ptr<storage::MappedArena> arena)
    : arena_(std::move(arena)) {}

std::uint64_t ArenaBackend::size() const {
  return durable_bytes_ + buffered_.size();
}

std::uint64_t ArenaBackend::synced_size() const { return durable_bytes_; }

void ArenaBackend::append(const std::uint8_t* data, std::size_t n) {
  buffered_.insert(buffered_.end(), data, data + n);
}

void ArenaBackend::deposit(const std::uint8_t* data, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const std::uint64_t pos = durable_bytes_ + done;
    const auto ci = static_cast<std::size_t>(pos / kChunkBytes);
    const auto within = static_cast<std::size_t>(pos % kChunkBytes);
    if (ci == chunks_.size()) {
      Chunk chunk;
      if (!free_.empty()) {
        chunk = free_.back();  // recycle a compacted-away chunk
        free_.pop_back();
      } else {
        chunk.rid = arena_->allocate(kChunkBytes);
        chunk.base = arena_->data(chunk.rid);
      }
      chunks_.push_back(chunk);
    }
    const std::size_t take = std::min(kChunkBytes - within, n - done);
    std::memcpy(chunks_[ci].base + within, data + done, take);
    done += take;
  }
  durable_bytes_ += n;
}

bool ArenaBackend::sync() {
  if (sync_failures_armed_ > 0) {
    --sync_failures_armed_;
    return false;
  }
  if (delayed_failure_armed_ && delayed_failure_after_ == 0) {
    delayed_failure_armed_ = false;
    return false;
  }
  deposit(buffered_.data(), buffered_.size());
  buffered_.clear();
  ++syncs_;
  if (delayed_failure_armed_) --delayed_failure_after_;
  return true;
}

std::size_t ArenaBackend::read(std::uint64_t offset, std::uint8_t* out,
                               std::size_t n) const {
  const std::uint64_t total = size();
  if (offset >= total) return 0;
  const auto avail =
      static_cast<std::size_t>(std::min<std::uint64_t>(n, total - offset));
  std::size_t got = 0;
  while (got < avail) {
    const std::uint64_t pos = offset + got;
    if (pos < durable_bytes_) {
      const auto ci = static_cast<std::size_t>(pos / kChunkBytes);
      const auto within = static_cast<std::size_t>(pos % kChunkBytes);
      const std::size_t take = std::min(
          {kChunkBytes - within, avail - got,
           static_cast<std::size_t>(durable_bytes_ - pos)});
      std::memcpy(out + got, chunks_[ci].base + within, take);
      got += take;
    } else {
      const std::size_t take = avail - got;
      std::memcpy(out + got,
                  buffered_.data() +
                      static_cast<std::size_t>(pos - durable_bytes_),
                  take);
      got += take;
    }
  }
  return avail;
}

void ArenaBackend::truncate(std::uint64_t new_size) {
  if (new_size >= size()) return;
  if (new_size <= durable_bytes_) {
    durable_bytes_ = new_size;
    buffered_.clear();
    // Whole chunks past the new end go to the free list; the next sync
    // refills them instead of growing the arena (compaction recycling).
    const auto needed = static_cast<std::size_t>(
        (durable_bytes_ + kChunkBytes - 1) / kChunkBytes);
    while (chunks_.size() > needed) {
      free_.push_back(chunks_.back());
      chunks_.pop_back();
    }
  } else {
    buffered_.resize(static_cast<std::size_t>(new_size - durable_bytes_));
  }
}

void ArenaBackend::crash() {
  if (tear_armed_) {
    // A torn write: the device got part-way through the final transfer.
    const std::size_t keep = std::min(tear_keep_, buffered_.size());
    deposit(buffered_.data(), keep);
    tear_armed_ = false;
  }
  buffered_.clear();
  sync_failures_armed_ = 0;
  delayed_failure_armed_ = false;
}

void ArenaBackend::tear_on_crash(std::size_t keep_bytes) {
  tear_armed_ = true;
  tear_keep_ = keep_bytes;
}

void ArenaBackend::corrupt_bit(std::uint64_t seed) {
  if (durable_bytes_ == 0) return;
  // SplitMix64 finalizer — identical constants and position/bit selection
  // to MemoryBackend, so the same seed flips the same bit of the same byte
  // on either device.
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  const std::uint64_t pos = z % durable_bytes_;
  chunks_[static_cast<std::size_t>(pos / kChunkBytes)]
      .base[static_cast<std::size_t>(pos % kChunkBytes)] ^=
      static_cast<std::uint8_t>(1u << ((z >> 32) % 8));
}

std::vector<std::uint8_t> ArenaBackend::durable_image() const {
  std::vector<std::uint8_t> image(static_cast<std::size_t>(durable_bytes_));
  std::size_t done = 0;
  while (done < image.size()) {
    const auto ci = done / kChunkBytes;
    const auto within = done % kChunkBytes;
    const std::size_t take =
        std::min(kChunkBytes - within, image.size() - done);
    std::memcpy(image.data() + done, chunks_[ci].base + within, take);
    done += take;
  }
  return image;
}

std::unique_ptr<JournalBackend> ArenaBackend::fork() const {
  auto clone = std::make_unique<MemoryBackend>(durable_image(), buffered_);
  for (std::uint32_t i = 0; i < sync_failures_armed_; ++i) {
    clone->fail_next_sync();
  }
  if (delayed_failure_armed_) clone->fail_sync_after(delayed_failure_after_);
  if (tear_armed_) clone->tear_on_crash(tear_keep_);
  return clone;
}

// --- MmapEngine ---

namespace {

storage::ArenaOptions device_arena_options(const DurableOptions& options) {
  storage::ArenaOptions ao;
  ao.path = options.mmap_path;
  // Device chunks are 16 KiB; a modest slab keeps the per-engine footprint
  // proportional to actual journal/state size rather than the arena's
  // sweep-sized default.
  ao.slab_bytes = 256 * 1024;
  return ao;
}

}  // namespace

MmapEngine::MmapEngine(DurableOptions options)
    : MmapEngine(std::make_shared<storage::MappedArena>(
                     device_arena_options(options)),
                 std::move(options)) {}

MmapEngine::MmapEngine(std::shared_ptr<storage::MappedArena> arena,
                       DurableOptions options)
    : WalSnapshotEngine(std::make_unique<ArenaBackend>(arena),
                        std::make_unique<ArenaBackend>(arena),
                        std::move(options)),
      arena_(std::move(arena)) {}

}  // namespace arfs::storage::durable
