// Journal shipping: warm-start replication of a durable store's WAL.
//
// Relocating an application today means polling the source processor's
// *entire* stable store (core::System's peer-reader path) — O(state) on the
// bus at the worst possible moment, the middle of a reconfiguration. A
// JournalShipper instead tails a source DurabilityEngine's journal and
// emits framed byte batches that a ShippedReplica replays into a standby
// StableStorage, so by the time a relocation is ordered the standby already
// holds the source's last durable commit boundary and only the un-shipped
// tail has to move.
//
// The stream is the journal itself: ARFSWAL2 records are already
// CRC-guarded, dictionary records already precede the commits that use
// their ids, and epochs are already monotone — so a batch is just a raw
// byte range [offset, offset+n) of the source journal, CRC-framed once more
// for transit. Batches may split records at arbitrary byte positions; the
// replica buffers the partial tail and resumes when the next batch arrives
// (a per-frame TDMA byte budget falls out for free).
//
// Invariants that make this safe under fail-stop (§5.1):
//  * Only *synced* journal bytes are ever shipped. The replica can never
//    observe state the source's devices would not preserve across a crash,
//    so "poll the replica" and "poll the failed processor" agree.
//  * Journal compaction (snapshot) and lossy recovery (a truncated synced
//    tail) each start a new journal *generation*. A replica that consumed
//    the whole previous generation rebases onto the fresh journal; the
//    engine retains the previous generation's synced bytes so replicas that
//    lag one compaction can still catch up; anything older is a lost
//    cursor, and the owner must fall back to a full-state copy.
//  * Replay mirrors recovery exactly: records with epochs the replica
//    already holds are skipped, everything else is restored with its
//    original commit cycle, so the replica fingerprint is bit-identical to
//    the source's commit-boundary fingerprint.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "arfs/common/types.hpp"
#include "arfs/storage/durable/engine.hpp"
#include "arfs/storage/durable/journal.hpp"
#include "arfs/storage/stable_storage.hpp"

namespace arfs::storage::durable {

/// Resume point of a shipped stream: the next source-journal byte the
/// replica needs, within a journal generation, plus the last commit epoch
/// it applied (the replay skip horizon).
struct ShipCursor {
  std::uint64_t generation = 0;
  std::uint64_t offset = kHeaderSize;  ///< Next byte wanted from the source.
  std::uint64_t epoch = 0;             ///< Last commit epoch applied.
};

/// One framed batch: a raw byte range of the source journal, CRC-guarded
/// for transit. `offset` is the source offset of bytes.front().
struct ShipBatch {
  std::uint64_t generation = 0;
  std::uint64_t offset = 0;
  std::vector<std::uint8_t> bytes;
  std::uint32_t crc = 0;  ///< crc32(bytes) — transit guard.
};

/// Wire framing for a batch: u64 generation, u64 offset, u32 length, the
/// raw bytes, u32 transit CRC (arfsctl's offline shipping and tests; the
/// in-process bus hands the struct over directly).
void encode_batch(std::vector<std::uint8_t>& out, const ShipBatch& batch);
/// Decodes one framed batch; nullopt on a short or malformed frame (the
/// batch CRC itself is verified by ShippedReplica::apply).
[[nodiscard]] std::optional<ShipBatch> decode_batch(
    const std::uint8_t* data, std::size_t n);

enum class ShipStatus : std::uint8_t {
  kUpToDate,    ///< Replica holds every synced byte; nothing to ship.
  kBatch,       ///< A batch was produced.
  kRebase,      ///< Journal compacted under a caught-up replica: rebase.
  kCursorLost,  ///< Cursor predates the oldest retained offset: full copy.
};

/// Reads batches out of a source engine's journal for a given cursor.
/// Stateless between calls — the cursor is the replica's, so one shipper
/// can serve any number of replicas at different positions.
class JournalShipper {
 public:
  explicit JournalShipper(DurabilityEngine& engine) : engine_(&engine) {}

  /// Fills `out` with up to `max_bytes` of shippable journal content at
  /// `cursor`. Ships only synced bytes (what a crash preserves). Serves the
  /// retained previous generation to replicas that lag one compaction.
  ShipStatus next_batch(const ShipCursor& cursor, std::size_t max_bytes,
                        ShipBatch& out);

  [[nodiscard]] DurabilityEngine& engine() { return *engine_; }

 private:
  DurabilityEngine* engine_;
};

enum class ApplyStatus : std::uint8_t {
  kApplied,        ///< Bytes consumed; cursor advanced.
  kDuplicate,      ///< Entirely before the cursor (retransmission); ignored.
  kGap,            ///< Starts beyond the cursor; rejected.
  kBadGeneration,  ///< From a different journal generation; rejected.
  kCorrupt,        ///< Transit CRC / record CRC / malformed record. The
                   ///< cursor rewinds to the last good record boundary, so
                   ///< a retransmission retries from there.
};

/// The standby side: applies shipped batches into a standby StableStorage,
/// optionally journaling them through its own DurabilityEngine so the
/// standby is itself durable.
class ShippedReplica {
 public:
  ShippedReplica() = default;

  /// Attaches a standby engine: every applied commit is journaled
  /// (write-ahead) into it with the source's epoch numbering, and a full-
  /// copy reset snapshots into it. Call before the first apply.
  void attach_engine(std::unique_ptr<DurabilityEngine> engine);

  ApplyStatus apply(const ShipBatch& batch);

  /// Journal compacted while this replica had consumed the whole previous
  /// generation: restart the cursor at the fresh journal's head. The store
  /// is untouched (its content equals the snapshot image); `epoch` is the
  /// image's epoch, adopted as the new skip horizon.
  void rebase(std::uint64_t generation, std::uint64_t epoch);

  /// Cursor lost (lagged past the retained window, or lossy recovery):
  /// reseed the whole standby from the source's committed store. `dict` is
  /// the source journal's current dictionary (part of the copied state —
  /// later records reference ids announced before the copy), and the
  /// cursor resumes at `offset` of `generation`.
  void reset_from_full_copy(const StableStorage& source,
                            std::vector<std::string> dict,
                            std::uint64_t generation, std::uint64_t offset);

  [[nodiscard]] const ShipCursor& cursor() const { return cursor_; }
  [[nodiscard]] const StableStorage& store() const { return store_; }
  [[nodiscard]] DurabilityEngine* engine() { return engine_.get(); }
  /// Bytes held beyond the last complete record (a split batch's tail).
  [[nodiscard]] std::size_t pending_bytes() const { return pending_.size(); }

  struct Stats {
    std::uint64_t batches_applied = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t records_applied = 0;
    std::uint64_t records_skipped = 0;  ///< Epoch already held (replay dup).
    std::uint64_t dict_records = 0;
    std::uint64_t crc_rejects = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t gaps = 0;
    std::uint64_t rebases = 0;
    std::uint64_t resets = 0;  ///< Full-copy reseeds.
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Frozen image of the standby: store, optional standby engine, stream
  /// dictionary, partial-record tail, cursor, and stats. Move-only (the
  /// engine checkpoint owns forked devices) but restorable many times.
  struct Checkpoint {
    StableStorage store;
    std::optional<EngineCheckpoint> engine;
    std::vector<std::string> dict;
    std::vector<std::uint8_t> pending;
    ShipCursor cursor;
    Stats stats;
  };
  [[nodiscard]] Checkpoint checkpoint_state() const;
  /// Precondition: an engine is attached iff the checkpoint holds one (a
  /// replica never gains or loses its standby engine mid-mission).
  void restore_state(const Checkpoint& cp);

 private:
  /// Applies every complete record in pending_; returns false on a corrupt
  /// or malformed record (the un-applied suffix is then discarded and the
  /// cursor rewound to the last good boundary).
  bool drain_pending();
  bool apply_record(const std::uint8_t* payload, std::size_t len);
  void apply_commit(std::uint64_t epoch, Cycle cycle,
                    std::vector<std::pair<std::string, Value>> entries);

  StableStorage store_;
  std::unique_ptr<DurabilityEngine> engine_;  ///< Optional standby WAL.
  std::vector<std::string> dict_;             ///< id -> key, this stream.
  std::vector<std::uint8_t> pending_;         ///< Partial-record tail.
  ShipCursor cursor_;
  Stats stats_;
};

/// Bytes a full-state copy of `store`'s committed entries (optionally
/// restricted to keys starting with `prefix`) would put on the bus, using
/// the same wire encoding as the journal. The baseline warm-start replays
/// are measured against.
[[nodiscard]] std::uint64_t encoded_state_bytes(const StableStorage& store,
                                                const std::string& prefix = "");

}  // namespace arfs::storage::durable
