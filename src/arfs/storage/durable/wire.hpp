// Byte-level encoding shared by the journal and snapshot formats.
//
// Everything the durable layer puts on a device goes through these helpers so
// the two record kinds stay byte-compatible: explicit little-endian integers
// (independent of host endianness), length-prefixed strings, LEB128 varints
// for the journal's interned key ids, a tagged encoding of storage::Value
// that round-trips doubles bit-exactly, and the IEEE CRC32 that guards every
// record payload.
//
// The CRC sits on the per-commit hot path (every journaled byte is hashed),
// so the default implementation is slicing-by-8: eight compile-time tables
// consume the input eight bytes per step instead of one. The classic bytewise
// loop is kept as crc32_bytewise — it is the reference the tests cross-check
// the sliced version against, and the tail/fallback path for short inputs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "arfs/storage/value.hpp"

namespace arfs::storage::durable {

/// IEEE 802.3 CRC32 (the zlib polynomial), over `n` bytes. Slicing-by-8.
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t n);

/// Reference bytewise implementation of the same CRC. Bit-identical to
/// crc32() on every input; kept for cross-checking and short tails.
[[nodiscard]] std::uint32_t crc32_bytewise(const std::uint8_t* data,
                                           std::size_t n);

void put_u8(std::vector<std::uint8_t>& buf, std::uint8_t v);
void put_u32(std::vector<std::uint8_t>& buf, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& buf, std::uint64_t v);
/// Overwrites 4 already-appended bytes at `pos` (envelope back-patching:
/// reserve the envelope, encode the payload in place, then patch len + crc —
/// no temporary payload buffer, no second copy).
void patch_u32(std::vector<std::uint8_t>& buf, std::size_t pos,
               std::uint32_t v);
/// Unsigned LEB128 (7 bits per byte, high bit = continue). Interned key ids
/// are small, so they ship as one byte in the steady state.
void put_varint(std::vector<std::uint8_t>& buf, std::uint64_t v);
void put_string(std::vector<std::uint8_t>& buf, const std::string& s);
/// Tagged Value encoding: u8 tag (0 bool, 1 int64, 2 double, 3 string) then
/// the payload; doubles are stored as their raw IEEE-754 bit pattern.
void put_value(std::vector<std::uint8_t>& buf, const Value& v);

/// Sequential decoder over a byte range. Every read checks bounds; the first
/// short or malformed read latches ok() to false and subsequent reads return
/// zero values, so callers can decode a whole record and check ok() once.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t n) : data_(data), end_(n) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  /// LEB128; more than 10 bytes (or a short buffer) latches not-ok.
  [[nodiscard]] std::uint64_t varint();
  [[nodiscard]] std::string string();
  [[nodiscard]] Value value();

  [[nodiscard]] bool ok() const { return ok_; }
  /// True when every byte was consumed and no read failed.
  [[nodiscard]] bool exhausted() const { return ok_ && pos_ == end_; }

 private:
  [[nodiscard]] bool take(std::size_t n);

  const std::uint8_t* data_;
  std::size_t end_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace arfs::storage::durable
