// LsmEngine: sorted immutable runs with key bounds and a block cache.
//
// The state device (magic "ARFSLSM1") is an append-only log of *delta
// runs* instead of full images:
//
//   run payload: u64 epoch, u64 n, string min_key, string max_key,
//                n × { string key, tagged value, u64 committed_at }
//
// entries sorted by key. persist_state flushes only entries whose
// committed_at is newer than the last flush boundary (runs are deltas;
// sound because StableStorage never erases a key, so newest-wins merging
// over the run set reconstructs the full store). gc_state compacts the run
// set into one full run when it exceeds DurableOptions::lsm_run_limit,
// with the same backup/rollback discipline as snapshot GC.
//
// Each run carries its min/max key: point probes skip whole runs whose
// bounds exclude the key without decoding a byte (counted in
// DurabilityStats::lsm_bounds_skips), the classic key-bounds iteration of
// LSM stores.
//
// Runs are immutable, self-contained (full key strings — no journal
// dictionary dependency), and CRC-guarded, so decoded runs are cached
// content-addressed by (offset, length<<32 | crc): a recovery or
// crash-sweep restore over an unchanged run set deserializes nothing — it
// merges decoded entries straight from memory. The journal side reuses the
// base's whole-scan cache, so with both caches warm a repeat recovery does
// no decode work at all. Caches never change results, only costs; sweep
// digests stay bit-identical to the WalSnapshotEngine oracle.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "arfs/storage/durable/engine.hpp"

namespace arfs::storage::durable {

inline constexpr std::uint8_t kLsmMagic[8] = {'A', 'R', 'F', 'S',
                                              'L', 'S', 'M', '1'};

/// One decoded run.
struct LsmRun {
  std::uint64_t epoch = 0;   ///< Commit epoch the run's flush captured.
  std::string min_key;       ///< Bounds; empty strings when the run is empty.
  std::string max_key;
  /// (key, value, committed_at), sorted by key.
  std::vector<std::tuple<std::string, Value, Cycle>> entries;
  std::uint64_t offset = 0;  ///< Envelope byte offset on the device.
  std::uint32_t length = 0;  ///< Payload length (cache key material).
  std::uint32_t crc = 0;     ///< Payload CRC (cache key material).
};

struct LsmScan {
  bool header_ok = false;
  std::vector<LsmRun> runs;      ///< Valid prefix, in device order.
  std::uint64_t valid_bytes = 0;
  bool truncated = false;
  std::string reason;
};

/// Appends (but does not sync) one run. Writes the device header first when
/// the device is empty; false when an existing header does not match.
bool append_lsm_run(JournalBackend& backend, std::uint64_t epoch,
                    const std::vector<std::tuple<std::string, Value, Cycle>>&
                        entries);

/// Scans the device's valid run prefix. `cache` (optional) serves decoded
/// runs by (offset, length, crc) identity — a hit skips the payload read,
/// CRC walk, and decode; `stats`, when given, receives the hit/miss counts.
[[nodiscard]] LsmScan scan_lsm_runs(const JournalBackend& backend,
                                    BlockCache<LsmRun>* cache = nullptr,
                                    DurabilityStats* stats = nullptr);

class LsmEngine final : public StorageEngine {
 public:
  LsmEngine(std::unique_ptr<JournalBackend> journal,
            std::unique_ptr<JournalBackend> runs,
            DurableOptions options = {});

  [[nodiscard]] EngineKind kind() const override { return EngineKind::kLsm; }

  /// Point lookup against the persisted run set (newest run first), using
  /// each run's key bounds to skip non-overlapping runs without decoding.
  /// Reads the *state device* only — commits still sitting in the journal
  /// tail are not consulted (recovery is where journal and runs merge).
  [[nodiscard]] std::optional<Value> probe(const std::string& key);

  /// Valid runs currently on the device (scan-cache-served when warm).
  [[nodiscard]] std::size_t run_count();

 protected:
  bool persist_state(const StableStorage& store) override;
  void gc_state() override;
  SnapshotScan scan_state() override;
  void after_recover(const SnapshotScan& snap,
                     const RecoveryReport& report) override;
  [[nodiscard]] std::uint64_t extra_cache_charge() const override {
    return run_cache_ != nullptr ? run_cache_->charge() : 0;
  }

 private:
  /// Newest-wins merge of a scanned run set, sorted by key.
  [[nodiscard]] static std::vector<std::tuple<std::string, Value, Cycle>>
  merge_runs(const LsmScan& scan);

  /// Decoded-run cache shared by recovery scans, probes, and compaction.
  std::unique_ptr<BlockCache<LsmRun>> run_cache_;
};

}  // namespace arfs::storage::durable
