#include "arfs/storage/durable/quorum.hpp"

#include <algorithm>
#include <functional>

#include "arfs/common/check.hpp"

namespace arfs::storage::durable::quorum {

namespace {

/// Corrupt applies tolerated at one cursor position before concluding the
/// source journal itself is damaged — the same constant as the
/// single-standby ShippingUnit, so a one-member group escalates on exactly
/// the same frame.
constexpr std::uint32_t kMaxCorruptRetries = 3;

/// Whole records per catch-up step keep a member's pending buffer bounded
/// (mirrors ShippingUnit::catch_up).
constexpr std::size_t kCatchUpChunk = 64 * 1024;

bool contains(const std::vector<MemberId>& ids, MemberId id) {
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

}  // namespace

QuorumGroup::QuorumGroup(DurabilityEngine& source, QuorumOptions options)
    : shipper_(source), options_(options) {
  require(options_.replicas >= 1, "a quorum group needs at least one member");
  members_.reserve(options_.replicas);
  for (std::uint32_t i = 0; i < options_.replicas; ++i) {
    append_member();
    old_voters_.push_back(i);
  }
  new_voters_ = old_voters_;
  leader_ = 0;  // election by construction: lowest id, everyone live
}

void QuorumGroup::append_member() {
  Member m;
  m.replica.attach_engine(make_memory_engine(options_.member_durability));
  members_.push_back(std::move(m));
}

QuorumGroup::Member& QuorumGroup::member_ref(MemberId id) {
  require(id < members_.size(), "quorum member id out of range");
  return members_[id];
}

const QuorumGroup::Member& QuorumGroup::member_at(MemberId id) const {
  require(id < members_.size(), "quorum member id out of range");
  return members_[id];
}

std::size_t QuorumGroup::step_member(Member& m, std::size_t budget) {
  if (m.needs_full_copy || budget == 0) return 0;

  DurabilityEngine& engine = shipper_.engine();
  ShipBatch batch;
  switch (shipper_.next_batch(m.replica.cursor(), budget, batch)) {
    case ShipStatus::kUpToDate:
      return 0;
    case ShipStatus::kRebase: {
      m.replica.rebase(engine.journal_generation(), engine.rebase_epoch());
      engine.note_ship_rebase();
      ++stats_.rebases;
      // The rebase moved no bytes; the fresh generation's tail (if any)
      // ships in this same slot.
      if (shipper_.next_batch(m.replica.cursor(), budget, batch) !=
          ShipStatus::kBatch) {
        return 0;
      }
      break;
    }
    case ShipStatus::kCursorLost:
      m.needs_full_copy = true;
      ++stats_.fallbacks;
      engine.note_ship_fallback();
      return 0;
    case ShipStatus::kBatch:
      break;
  }

  const std::size_t bytes = batch.bytes.size();
  switch (m.replica.apply(batch)) {
    case ApplyStatus::kApplied:
      m.consecutive_corrupt = 0;
      ++stats_.batches_shipped;
      stats_.bytes_shipped += bytes;
      return bytes;
    case ApplyStatus::kCorrupt:
      ++stats_.corrupt_batches;
      if (++m.consecutive_corrupt >= kMaxCorruptRetries) {
        // The same source bytes failed repeatedly: the journal itself is
        // damaged in the shipped range. Only a full copy can converge.
        m.needs_full_copy = true;
        ++stats_.fallbacks;
        engine.note_ship_fallback();
      }
      return 0;
    case ApplyStatus::kDuplicate:
    case ApplyStatus::kGap:
    case ApplyStatus::kBadGeneration:
      // The shipper reads at the member's own cursor, so none of these can
      // occur in-group; treat as a protocol bug.
      ensure(false, "quorum group produced an unappliable batch");
      return 0;
  }
  return 0;
}

std::size_t QuorumGroup::pump_member(MemberId id, std::size_t budget) {
  Member& m = member_ref(id);
  ++stats_.slots_polled;
  // A fail-stopped member cannot receive; a retired one no longer ships.
  // Its slot goes idle — TDMA bandwidth is static by construction.
  if (!m.live || m.retired) return 0;
  const std::size_t moved = step_member(m, budget);
  m.last_applied = m.replica.cursor().epoch;
  update_commit();
  return moved;
}

std::size_t QuorumGroup::catch_up_member(MemberId id) {
  Member& m = member_ref(id);
  if (!m.live || m.retired) return 0;
  std::size_t total = 0;
  while (true) {
    const std::size_t moved = step_member(m, kCatchUpChunk);
    if (moved == 0) break;
    total += moved;
  }
  m.last_applied = m.replica.cursor().epoch;
  update_commit();
  return total;
}

bool QuorumGroup::member_needs_full_copy(MemberId id) const {
  return member_at(id).needs_full_copy;
}

void QuorumGroup::reseed_member(MemberId id, const StableStorage& source_store,
                                std::vector<std::string> dict,
                                std::uint64_t generation,
                                std::uint64_t offset) {
  Member& m = member_ref(id);
  m.replica.reset_from_full_copy(source_store, std::move(dict), generation,
                                 offset);
  m.needs_full_copy = false;
  m.consecutive_corrupt = 0;
  m.warm_credit = false;  // this member's warmth was bought, not streamed
  m.last_applied = m.replica.cursor().epoch;
  ++stats_.reseeds;
  // Lossy-recovery rebase. Normally the commit id is monotone — within one
  // history, a majority-acknowledged epoch never un-commits. But when the
  // copy's boundary sits BELOW the commit id, the source rewrote history
  // (a lossy recovery truncated synced records and bumped the journal
  // generation; the system raised kLossyRecovery for it): epochs beyond the
  // boundary no longer exist in any live generation. Old and new history
  // agree below the boundary, so a member still on a dead generation
  // durably holds the common prefix — its ack clamps to the boundary rather
  // than voiding entirely — and the commit id re-bases onto the recomputed
  // majority instead of pinning a vanished epoch.
  const std::uint64_t boundary = m.last_applied;
  if (boundary < commit_id_) {
    for (Member& other : members_) {
      if (other.replica.cursor().generation != generation &&
          other.last_applied > boundary) {
        other.last_applied = boundary;
      }
    }
    std::uint64_t rebased = majority_ack(old_voters_);
    if (reconfiguring_) {
      rebased = std::min(rebased, majority_ack(new_voters_));
    }
    commit_id_ = std::min(commit_id_, rebased);
  }
  update_commit();
}

bool QuorumGroup::take_warm_credit(MemberId id) {
  Member& m = member_ref(id);
  const bool credit = m.warm_credit;
  m.warm_credit = true;
  return credit;
}

bool QuorumGroup::fail_member(MemberId id) {
  Member& m = member_ref(id);
  require(!m.retired, "cannot fail-stop a retired member");
  if (!m.live) return false;
  const bool before = has_majority();
  m.live = false;
  ++stats_.member_failures;
  elect();
  return before && !has_majority();
}

bool QuorumGroup::repair_member(MemberId id) {
  Member& m = member_ref(id);
  require(!m.retired, "cannot repair a retired member");
  if (m.live) return false;
  const bool before = has_majority();
  m.live = true;
  ++stats_.member_repairs;
  elect();
  return !before && has_majority();
}

std::vector<MemberId> QuorumGroup::begin_reconfig(
    std::uint32_t add, const std::vector<MemberId>& retire) {
  require(!reconfiguring_, "a membership change is already in flight");
  for (const MemberId id : retire) {
    require(contains(old_voters_, id), "retiree is not a current voter");
  }
  new_voters_.clear();
  for (const MemberId id : old_voters_) {
    if (!contains(retire, id)) new_voters_.push_back(id);
  }
  std::vector<MemberId> added;
  for (std::uint32_t i = 0; i < add; ++i) {
    const auto id = static_cast<MemberId>(members_.size());
    append_member();
    // A fresh member holds nothing: it joins via the full-copy path and
    // streams from there, exactly like a lost-cursor fallback.
    members_.back().needs_full_copy = true;
    added.push_back(id);
    new_voters_.push_back(id);
  }
  require(!new_voters_.empty(), "membership change would empty the group");
  reconfig_epoch_ = commit_id_;
  reconfiguring_ = true;
  // May complete immediately — e.g. a retire-only change whose survivors
  // already hold everything committed at proposal time.
  update_commit();
  return added;
}

bool QuorumGroup::has_majority() const {
  const auto live_majority = [this](const std::vector<MemberId>& voters) {
    std::size_t live = 0;
    for (const MemberId id : voters) {
      if (members_[id].live) ++live;
    }
    return live * 2 > voters.size();
  };
  if (!live_majority(old_voters_)) return false;
  return !reconfiguring_ || live_majority(new_voters_);
}

std::vector<MemberId> QuorumGroup::warm_start_order() const {
  std::vector<MemberId> order;
  if (leader_.has_value()) order.push_back(*leader_);
  for (MemberId id = 0; id < members_.size(); ++id) {
    const Member& m = members_[id];
    if (m.live && !m.retired && id != leader_) order.push_back(id);
  }
  return order;
}

std::uint32_t QuorumGroup::live_count() const {
  std::uint32_t live = 0;
  for (const Member& m : members_) {
    if (m.live && !m.retired) ++live;
  }
  return live;
}

bool QuorumGroup::member_live(MemberId id) const {
  return member_at(id).live;
}

bool QuorumGroup::member_retired(MemberId id) const {
  return member_at(id).retired;
}

std::uint64_t QuorumGroup::last_applied(MemberId id) const {
  return member_at(id).last_applied;
}

const ShippedReplica& QuorumGroup::replica(MemberId id) const {
  return member_at(id).replica;
}

std::uint64_t QuorumGroup::majority_ack(
    const std::vector<MemberId>& voters) const {
  std::vector<std::uint64_t> acks;
  acks.reserve(voters.size());
  for (const MemberId id : voters) acks.push_back(members_[id].last_applied);
  std::sort(acks.begin(), acks.end(), std::greater<>());
  // Descending order statistic at |S|/2: the highest epoch held by a strict
  // majority. Dead members' acks count (their stable devices survive).
  return acks[acks.size() / 2];
}

void QuorumGroup::update_commit() {
  std::uint64_t candidate = majority_ack(old_voters_);
  if (reconfiguring_) {
    candidate = std::min(candidate, majority_ack(new_voters_));
  }
  if (candidate > commit_id_) {
    commit_id_ = candidate;
    ++stats_.commit_advances;
  }
  if (reconfiguring_ && majority_ack(new_voters_) >= reconfig_epoch_) {
    // The new voters durably cover everything committed when the change was
    // proposed (the old majority covered it by definition): collapse to the
    // new configuration and drop the retirees from the protocol.
    for (MemberId id = 0; id < members_.size(); ++id) {
      Member& m = members_[id];
      if (!m.retired && !contains(new_voters_, id)) m.retired = true;
    }
    old_voters_ = new_voters_;
    reconfiguring_ = false;
    ++stats_.membership_changes;
    elect();
  }
}

void QuorumGroup::elect() {
  std::optional<MemberId> next;
  for (MemberId id = 0; id < members_.size(); ++id) {
    const Member& m = members_[id];
    if (m.live && !m.retired) {
      next = id;
      break;
    }
  }
  if (next != leader_) {
    leader_ = next;
    ++stats_.elections;
  }
}

QuorumGroup::Checkpoint QuorumGroup::checkpoint_state() const {
  Checkpoint cp;
  cp.members.reserve(members_.size());
  for (const Member& m : members_) {
    MemberCheckpoint mc;
    mc.replica = m.replica.checkpoint_state();
    mc.last_applied = m.last_applied;
    mc.live = m.live;
    mc.retired = m.retired;
    mc.needs_full_copy = m.needs_full_copy;
    mc.warm_credit = m.warm_credit;
    mc.consecutive_corrupt = m.consecutive_corrupt;
    cp.members.push_back(std::move(mc));
  }
  cp.old_voters = old_voters_;
  cp.new_voters = new_voters_;
  cp.reconfiguring = reconfiguring_;
  cp.reconfig_epoch = reconfig_epoch_;
  cp.commit_id = commit_id_;
  cp.leader = leader_;
  cp.stats = stats_;
  return cp;
}

void QuorumGroup::restore_state(const Checkpoint& cp) {
  require(!cp.members.empty(), "quorum checkpoint holds no members");
  // The checkpoint may straddle a membership change relative to the live
  // group: discard members created after it, recreate members it holds
  // beyond the current roster.
  if (members_.size() > cp.members.size()) {
    members_.erase(members_.begin() +
                       static_cast<std::ptrdiff_t>(cp.members.size()),
                   members_.end());
  }
  while (members_.size() < cp.members.size()) append_member();
  for (MemberId id = 0; id < members_.size(); ++id) {
    Member& m = members_[id];
    const MemberCheckpoint& mc = cp.members[id];
    m.replica.restore_state(mc.replica);
    m.last_applied = mc.last_applied;
    m.live = mc.live;
    m.retired = mc.retired;
    m.needs_full_copy = mc.needs_full_copy;
    m.warm_credit = mc.warm_credit;
    m.consecutive_corrupt = mc.consecutive_corrupt;
  }
  old_voters_ = cp.old_voters;
  new_voters_ = cp.new_voters;
  reconfiguring_ = cp.reconfiguring;
  reconfig_epoch_ = cp.reconfig_epoch;
  commit_id_ = cp.commit_id;
  leader_ = cp.leader;
  stats_ = cp.stats;
}

}  // namespace arfs::storage::durable::quorum
