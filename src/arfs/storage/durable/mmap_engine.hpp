// MmapEngine: the WAL + snapshot protocol on MappedArena-extent devices.
//
// ArenaBackend is a JournalBackend whose *durable image* lives in chunked
// storage::MappedArena regions instead of a heap vector: append() buffers
// in RAM exactly like MemoryBackend, sync() copies the buffered tail into
// 16 KiB open arena chunks (open, not sealed, because the durable image
// must stay bit-addressable for the corrupt_bit fault hook and readable
// through stable data() pointers), and truncate() returns whole trailing
// chunks to a free list that later syncs reuse — journal compaction cycles
// chunks instead of growing the arena without bound.
//
// Every observable behaviour — sizes, read bytes, sync-failure arming,
// torn-write deposits, the SplitMix64 bit-flip position — is byte-for-byte
// identical to MemoryBackend on the same operation history. That identity
// is what makes the crash-point sweep's report digests engine-invariant:
// the judge arms the same faults and reads the same recovered state whether
// the device is heap- or arena-backed.
//
// fork() (checkpoints) returns a plain MemoryBackend clone: a checkpoint is
// a frozen byte image plus hook state, and cloning it into the arena would
// strand chunks every time a sweep job forks a restore point. The clone's
// behaviour is identical by the equivalence above, and it keeps
// EngineCheckpoint::spill_devices working unmodified.
//
// With DurableOptions::mmap_path empty the arena uses its heap-extent
// fallback — same layout, no file — so sim missions and tests run the mmap
// engine everywhere. With a path, the durable image lives in file-backed
// extents; hardening those pages is the kernel writeback's job (the
// fail-stop *simulation* boundary is the buffered/durable split above,
// exactly as it is for MemoryBackend's heap image).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "arfs/storage/arena.hpp"
#include "arfs/storage/durable/wal_snapshot.hpp"

namespace arfs::storage::durable {

class ArenaBackend final : public JournalBackend {
 public:
  /// Payload bytes per arena chunk. Small enough that journal compaction
  /// recycles promptly, big enough that a steady-state journal spans a
  /// handful of regions.
  static constexpr std::size_t kChunkBytes = 16 * 1024;

  explicit ArenaBackend(std::shared_ptr<storage::MappedArena> arena);

  [[nodiscard]] std::uint64_t size() const override;
  [[nodiscard]] std::uint64_t synced_size() const override;
  void append(const std::uint8_t* data, std::size_t n) override;
  [[nodiscard]] bool sync() override;
  std::size_t read(std::uint64_t offset, std::uint8_t* out,
                   std::size_t n) const override;
  void truncate(std::uint64_t new_size) override;
  void crash() override;

  void fail_next_sync() override { sync_failures_armed_ += 1; }
  void fail_sync_after(std::uint32_t successes) override {
    delayed_failure_armed_ = true;
    delayed_failure_after_ = successes;
  }
  void tear_on_crash(std::size_t keep_bytes) override;
  void corrupt_bit(std::uint64_t seed) override;

  /// Checkpoint clone as a plain in-RAM device (see the file comment).
  [[nodiscard]] std::unique_ptr<JournalBackend> fork() const override;

  [[nodiscard]] std::uint64_t sync_count() const { return syncs_; }
  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }
  [[nodiscard]] std::size_t free_chunks() const { return free_.size(); }

 private:
  struct Chunk {
    storage::MappedArena::RegionId rid = storage::MappedArena::kNoRegion;
    std::uint8_t* base = nullptr;  ///< Stable open-region payload pointer.
  };

  /// Copies `n` bytes into the durable chunk space starting at
  /// durable_bytes_, growing (or recycling) chunks as needed.
  void deposit(const std::uint8_t* data, std::size_t n);
  [[nodiscard]] std::vector<std::uint8_t> durable_image() const;

  std::shared_ptr<storage::MappedArena> arena_;
  std::vector<Chunk> chunks_;  ///< Chunk i covers [i·kChunkBytes, …).
  std::vector<Chunk> free_;    ///< Truncated chunks awaiting reuse.
  std::uint64_t durable_bytes_ = 0;
  std::vector<std::uint8_t> buffered_;

  std::uint64_t syncs_ = 0;
  std::uint32_t sync_failures_armed_ = 0;
  bool delayed_failure_armed_ = false;
  std::uint32_t delayed_failure_after_ = 0;
  bool tear_armed_ = false;
  std::size_t tear_keep_ = 0;
};

/// WalSnapshotEngine whose two devices keep their durable images in one
/// shared MappedArena (per-engine; heap fallback unless options.mmap_path
/// names a backing file).
class MmapEngine final : public WalSnapshotEngine {
 public:
  explicit MmapEngine(DurableOptions options);
  MmapEngine(std::shared_ptr<storage::MappedArena> arena,
             DurableOptions options);

  [[nodiscard]] EngineKind kind() const override { return EngineKind::kMmap; }

  [[nodiscard]] const storage::MappedArena& arena() const { return *arena_; }

 private:
  std::shared_ptr<storage::MappedArena> arena_;
};

}  // namespace arfs::storage::durable
