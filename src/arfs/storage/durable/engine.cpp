#include "arfs/storage/durable/engine.hpp"

#include <algorithm>
#include <utility>

#include "arfs/common/check.hpp"
#include "arfs/storage/durable/journal.hpp"
#include "arfs/storage/durable/snapshot.hpp"

namespace arfs::storage::durable {

RecoveryReport recover_store(const JournalBackend& snapshots,
                             const JournalBackend& journal,
                             StableStorage& out) {
  require(out.committed_count() == 0,
          "recover_store target must have no committed state");
  RecoveryReport report;

  const SnapshotScan snap = scan_snapshots(snapshots);
  if (snap.any_valid) {
    report.used_snapshot = true;
    report.snapshot_epoch = snap.last.epoch;
    for (const auto& [key, value, committed_at] : snap.last.entries) {
      out.restore(key, value, committed_at);
    }
  }

  const ScanResult scan = scan_journal(journal);
  std::uint64_t last_epoch = report.snapshot_epoch;
  for (const JournalRecord& record : scan.records) {
    if (record.epoch <= report.snapshot_epoch) {
      ++report.records_skipped;
      continue;
    }
    for (const auto& [key, value] : record.entries) {
      out.restore(key, value, record.cycle);
    }
    last_epoch = record.epoch;
    ++report.records_applied;
  }
  out.set_commit_epochs(last_epoch);
  report.last_epoch = last_epoch;
  report.journal_truncated = scan.truncated;
  report.valid_bytes = scan.valid_bytes;
  if (scan.truncated) report.note = scan.reason;
  if (snap.truncated) {
    report.note += report.note.empty() ? "" : "; ";
    report.note += "snapshot device: " + snap.reason;
  }
  return report;
}

DurabilityEngine::DurabilityEngine(std::unique_ptr<JournalBackend> journal,
                                   std::unique_ptr<JournalBackend> snapshots,
                                   DurableOptions options)
    : journal_(std::move(journal)), snapshots_(std::move(snapshots)),
      options_(options) {
  require(journal_ != nullptr && snapshots_ != nullptr,
          "durability engine needs both devices");
}

void DurabilityEngine::record_commit(const StableStorage& store, Cycle cycle) {
  if (!ensure_header(*journal_)) {
    // A media fault (or foreign content) destroyed the device header. The
    // scanner trusts nothing after a bad magic, so appending here could
    // never make this commit durable — count the fault and suspend
    // journaling. recover_into() truncates the device, after which the
    // header is rewritten and journaling resumes.
    ++stats_.header_faults;
    return;
  }
  scratch_.clear();
  encode_record(scratch_, store.commit_epochs() + 1, cycle, store.pending());
  journal_->append(scratch_.data(), scratch_.size());
  stats_.bytes_appended += scratch_.size();
  ++stats_.commits_journaled;
  if (options_.sync_each_commit) {
    ++stats_.syncs;
    if (!journal_->sync()) ++stats_.sync_failures;
  }
}

void DurabilityEngine::after_commit(const StableStorage& store) {
  if (options_.snapshot_every_epochs == 0) return;
  if (store.commit_epochs() == 0 ||
      store.commit_epochs() % options_.snapshot_every_epochs != 0) {
    return;
  }
  take_snapshot(store);
}

bool DurabilityEngine::take_snapshot(const StableStorage& store) {
  if (!append_snapshot(*snapshots_, store.commit_epochs(),
                       store.committed_entries())) {
    ++stats_.snapshot_failures;
    return false;
  }
  if (!snapshots_->sync()) {
    ++stats_.snapshot_failures;
    return false;
  }
  ++stats_.snapshots_taken;
  // The image covers every epoch the journal holds; compact it. Torn-tail
  // safety is preserved because the image is already durably synced.
  journal_->truncate(kHeaderSize);
  return true;
}

void DurabilityEngine::crash() {
  journal_->crash();
  snapshots_->crash();
  ++stats_.crashes;
}

RecoveryReport DurabilityEngine::recover_into(StableStorage& out) {
  out.reset_committed();
  RecoveryReport report = recover_store(*snapshots_, *journal_, out);
  // Discard the untrusted tails so appends resume after the last good
  // record — the journal analogue of halting at the last completed
  // instruction.
  journal_->truncate(report.valid_bytes);
  const SnapshotScan snap = scan_snapshots(*snapshots_);
  if (snap.truncated) snapshots_->truncate(snap.valid_bytes);
  ++stats_.recoveries;
  return report;
}

bool DurabilityEngine::has_state() const {
  return journal_->size() > kHeaderSize || snapshots_->size() > kHeaderSize;
}

std::unique_ptr<DurabilityEngine> make_memory_engine(DurableOptions options) {
  return std::make_unique<DurabilityEngine>(std::make_unique<MemoryBackend>(),
                                            std::make_unique<MemoryBackend>(),
                                            options);
}

}  // namespace arfs::storage::durable
