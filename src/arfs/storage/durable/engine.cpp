#include "arfs/storage/durable/engine.hpp"

#include <algorithm>
#include <utility>

#include "arfs/common/check.hpp"
#include "arfs/storage/arena.hpp"
#include "arfs/storage/durable/lsm_engine.hpp"
#include "arfs/storage/durable/mmap_engine.hpp"
#include "arfs/storage/durable/wal_snapshot.hpp"

namespace arfs::storage::durable {

std::string to_string(SyncMode mode) {
  switch (mode) {
    case SyncMode::kEveryCommit:     return "every-commit";
    case SyncMode::kBytesWatermark:  return "bytes-watermark";
    case SyncMode::kFramesWatermark: return "frames-watermark";
    case SyncMode::kHybrid:          return "hybrid";
    case SyncMode::kAdaptive:        return "adaptive";
  }
  return "unknown";
}

std::string to_string(EngineKind kind) {
  switch (kind) {
    case EngineKind::kWalSnapshot: return "wal";
    case EngineKind::kMmap:        return "mmap";
    case EngineKind::kLsm:         return "lsm";
  }
  return "unknown";
}

bool parse_engine_kind(const std::string& text, EngineKind& out) {
  if (text == "wal") {
    out = EngineKind::kWalSnapshot;
  } else if (text == "mmap") {
    out = EngineKind::kMmap;
  } else if (text == "lsm") {
    out = EngineKind::kLsm;
  } else {
    return false;
  }
  return true;
}

RecoveryReport recover_from_scans(const SnapshotScan& snap,
                                  const ScanResult& scan,
                                  StableStorage& out) {
  require(out.committed_count() == 0,
          "recovery target must have no committed state");
  RecoveryReport report;

  if (snap.any_valid) {
    report.used_snapshot = true;
    report.snapshot_epoch = snap.last.epoch;
    out.restore_batch(snap.last.entries);
  }

  std::uint64_t last_epoch = report.snapshot_epoch;
  for (const JournalRecord& record : scan.records) {
    if (record.epoch <= report.snapshot_epoch) {
      ++report.records_skipped;
      continue;
    }
    out.restore_batch(record.entries, record.cycle);
    last_epoch = record.epoch;
    ++report.records_applied;
  }
  out.set_commit_epochs(last_epoch);
  report.last_epoch = last_epoch;
  report.journal_truncated = scan.truncated;
  report.valid_bytes = scan.valid_bytes;
  if (scan.truncated) report.note = scan.reason;
  if (snap.truncated) {
    report.note += report.note.empty() ? "" : "; ";
    report.note += "snapshot device: " + snap.reason;
  }
  return report;
}

RecoveryReport recover_store(const JournalBackend& snapshots,
                             const JournalBackend& journal,
                             StableStorage& out) {
  return recover_from_scans(scan_snapshots(snapshots), scan_journal(journal),
                            out);
}

StorageEngine::StorageEngine(std::unique_ptr<JournalBackend> journal,
                             std::unique_ptr<JournalBackend> snapshots,
                             DurableOptions options,
                             std::uint64_t default_cache_bytes)
    : journal_(std::move(journal)), snapshots_(std::move(snapshots)),
      options_(std::move(options)) {
  require(journal_ != nullptr && snapshots_ != nullptr,
          "storage engine needs both devices");
  cache_budget_ = options_.block_cache_bytes != 0 ? options_.block_cache_bytes
                                                  : default_cache_bytes;
  if (cache_budget_ > 0) {
    scan_cache_ = std::make_unique<BlockCache<ScanResult>>(
        static_cast<std::size_t>(cache_budget_));
  }
  const SyncPolicy& p = options_.sync;
  adaptive_watermark_fp_ =
      std::clamp(p.bytes_watermark, p.adaptive_min_bytes,
                 p.adaptive_max_bytes)
      << kAdaptiveFracBits;
}

void StorageEngine::note_ship(std::uint64_t bytes, std::uint64_t lag,
                              std::uint64_t horizon) {
  if (bytes > 0) {
    ++stats_.ship_batches;
    stats_.shipped_bytes += bytes;
  }
  stats_.ship_lag_bytes = lag;
  stats_.max_ship_lag_bytes = std::max(stats_.max_ship_lag_bytes, lag);
  ship_horizon_ = std::max(ship_horizon_, horizon);
}

void StorageEngine::set_reconfig_pressure(bool on) {
  if (on && !reconfig_pressure_) ++stats_.pressure_engagements;
  reconfig_pressure_ = on;
}

std::uint64_t StorageEngine::adaptive_effective_bytes() const {
  return reconfig_pressure_ ? options_.sync.adaptive_min_bytes
                            : (adaptive_watermark_fp_ >> kAdaptiveFracBits);
}

bool StorageEngine::watermark_reached() const {
  const SyncPolicy& policy = options_.sync;
  switch (policy.mode) {
    case SyncMode::kEveryCommit:
      return true;
    case SyncMode::kBytesWatermark:
      return stats_.lag_bytes >= policy.bytes_watermark;
    case SyncMode::kFramesWatermark:
      return stats_.lag_frames >= policy.frames_watermark;
    case SyncMode::kHybrid:
      return stats_.lag_bytes >= policy.bytes_watermark ||
             stats_.lag_frames >= policy.frames_watermark;
    case SyncMode::kAdaptive:
      return stats_.lag_bytes >= adaptive_effective_bytes() ||
             (policy.frames_watermark > 0 &&
              stats_.lag_frames >= policy.frames_watermark);
  }
  return true;
}

void StorageEngine::tune_adaptive(std::uint64_t flushed_bytes) {
  // Pure fixed-point arithmetic over engine-local state: same commit
  // history in, same watermark trajectory out, on any thread/shard count.
  const SyncPolicy& p = options_.sync;
  const std::uint64_t lo = p.adaptive_min_bytes << kAdaptiveFracBits;
  const std::uint64_t hi = p.adaptive_max_bytes << kAdaptiveFracBits;
  const std::uint64_t target = kAdaptiveSyncCostBytes * kAdaptiveGain;
  std::uint64_t fp = std::clamp(adaptive_watermark_fp_, lo, hi);
  if (flushed_bytes < target) {
    // The sync amortized too few bytes: its fixed cost dominates. Raise the
    // watermark 25% (plus one byte so a zero floor still moves) — the climb
    // out of a cold start has to outpace the workload, so raising is
    // deliberately steeper than the 12.5% back-off below.
    ++stats_.adaptive_raises;
    fp = std::min(hi, fp + fp / 4 + (std::uint64_t{1} << kAdaptiveFracBits));
  } else if (flushed_bytes > 4 * target) {
    // Overshoot: the lag a crash could lose grew past the band. Back off.
    ++stats_.adaptive_drops;
    fp = std::max(lo, fp - fp / 8);
  }
  adaptive_watermark_fp_ = fp;
  stats_.adaptive_watermark_bytes = fp >> kAdaptiveFracBits;
}

bool StorageEngine::do_sync() {
  const std::uint64_t flushed = stats_.lag_bytes;
  ++stats_.syncs;
  if (!journal_->sync()) {
    // The tail stays buffered, so the lag persists; a later sync (or the
    // next watermark) retries it.
    ++stats_.sync_failures;
    return false;
  }
  stats_.lag_frames = 0;
  stats_.lag_bytes = 0;
  stats_.last_durable_epoch =
      std::max(stats_.last_durable_epoch, appended_epoch_);
  if (options_.sync.mode == SyncMode::kAdaptive) tune_adaptive(flushed);
  return true;
}

bool StorageEngine::sync_now() {
  if (stats_.lag_frames == 0 && stats_.lag_bytes == 0) return true;
  ++stats_.forced_syncs;
  return do_sync();
}

void StorageEngine::record_commit(const StableStorage& store, Cycle cycle) {
  if (!ensure_header(*journal_)) {
    // A media fault (or foreign content) destroyed the device header. The
    // scanner trusts nothing after a bad magic, so appending here could
    // never make this commit durable — count the fault and suspend
    // journaling. recover_into() truncates the device, after which the
    // header is rewritten and journaling resumes.
    ++stats_.header_faults;
    return;
  }
  scratch_.clear();
  encode_commit(scratch_, interner_, store.commit_epochs() + 1, cycle,
                store.pending());
  journal_->append(scratch_.data(), scratch_.size());
  stats_.bytes_appended += scratch_.size();
  ++stats_.commits_journaled;
  appended_epoch_ = store.commit_epochs() + 1;
  ++stats_.lag_frames;
  stats_.lag_bytes += scratch_.size();
  stats_.max_lag_frames = std::max(stats_.max_lag_frames, stats_.lag_frames);
  stats_.max_lag_bytes = std::max(stats_.max_lag_bytes, stats_.lag_bytes);
  if (watermark_reached()) {
    if (options_.sync.mode == SyncMode::kAdaptive && reconfig_pressure_ &&
        stats_.lag_bytes < (adaptive_watermark_fp_ >> kAdaptiveFracBits)) {
      // Only the lowered bar made this sync fire.
      ++stats_.pressure_syncs;
    }
    (void)do_sync();
  }
}

void StorageEngine::after_commit(const StableStorage& store) {
  if (options_.snapshot_every_epochs == 0) return;
  if (store.commit_epochs() == 0 ||
      store.commit_epochs() % options_.snapshot_every_epochs != 0) {
    return;
  }
  take_snapshot(store);
}

bool StorageEngine::take_snapshot(const StableStorage& store) {
  // Snapshot boundary: flush the journal lag first, so durability at the
  // boundary never depends on whether the image itself succeeds.
  (void)sync_now();
  if (!persist_state(store)) {
    ++stats_.snapshot_failures;
    return false;
  }
  ++stats_.snapshots_taken;
  stats_.last_durable_epoch =
      std::max(stats_.last_durable_epoch, store.commit_epochs());
  // Reclaim superseded state while the journal still covers everything
  // since the previous image — a failed rewrite then loses nothing.
  gc_state();
  // Compaction starts a new journal generation for shippers. Retain the
  // outgoing generation's synced bytes so replicas that lag this compaction
  // can finish it and rebase; if the boundary sync above failed, un-shipped
  // records went into the image without ever becoming shippable, so a
  // rebase would silently lose them — disable it and force a full copy.
  rebase_ok_ = stats_.lag_bytes == 0;
  retained_tail_.clear();
  if (rebase_ok_) {
    const std::uint64_t synced = journal_->synced_size();
    if (synced > kHeaderSize) {
      retained_tail_.resize(static_cast<std::size_t>(synced - kHeaderSize));
      const std::size_t got = journal_->read(kHeaderSize,
                                             retained_tail_.data(),
                                             retained_tail_.size());
      if (got != retained_tail_.size()) {
        retained_tail_.clear();
        rebase_ok_ = false;
      }
    }
  }
  rebase_epoch_ = store.commit_epochs();
  ++journal_generation_;
  ship_horizon_ = kHeaderSize;
  // The image covers every epoch the journal holds; compact it. Torn-tail
  // safety is preserved because the image is already durably synced. The
  // buffered tail (if a pre-image sync failed) is covered by the image too,
  // so the lag is settled along with the key dictionary, which restarts
  // empty in the fresh journal generation.
  journal_->truncate(kHeaderSize);
  interner_.reset();
  stats_.lag_frames = 0;
  stats_.lag_bytes = 0;
  appended_epoch_ = store.commit_epochs();
  return true;
}

void StorageEngine::crash() {
  journal_->crash();
  snapshots_->crash();
  ++stats_.crashes;
}

namespace {

/// FNV-1a over a device's logical bytes, streamed through a small stack
/// buffer — the scan cache's content address costs one linear pass with no
/// allocation, against a full decode's CRC walk plus per-record parsing.
std::uint64_t fingerprint_device(const JournalBackend& device,
                                 std::uint64_t size) {
  std::uint64_t h = 1469598103934665603ULL;
  std::uint8_t buf[4096];
  std::uint64_t off = 0;
  while (off < size) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(sizeof buf, size - off));
    const std::size_t got = device.read(off, buf, want);
    if (got == 0) break;
    for (std::size_t i = 0; i < got; ++i) {
      h = (h ^ buf[i]) * 1099511628211ULL;
    }
    off += got;
  }
  return h;
}

}  // namespace

ScanResult StorageEngine::scan_journal_cached() {
  if (scan_cache_ == nullptr) {
    ScanStats ss;
    ScanResult scan = scan_journal(*journal_, decode_scratch_, &ss);
    stats_.decode_buffer_reuses += ss.payload_reuses;
    return scan;
  }
  const std::uint64_t size = journal_->size();
  const BlockCache<ScanResult>::Key key{size,
                                        fingerprint_device(*journal_, size)};
  if (const ScanResult* hit = scan_cache_->find(key)) {
    ++stats_.block_cache_hits;
    return *hit;  // decoded records straight from memory; no re-decode
  }
  ++stats_.block_cache_misses;
  ScanStats ss;
  ScanResult scan = scan_journal(*journal_, decode_scratch_, &ss);
  stats_.decode_buffer_reuses += ss.payload_reuses;
  stats_.block_cache_evictions +=
      scan_cache_->insert(key, scan, static_cast<std::size_t>(size) + 256);
  refresh_cache_charge();
  return scan;
}

void StorageEngine::refresh_cache_charge() {
  stats_.block_cache_bytes =
      (scan_cache_ != nullptr ? scan_cache_->charge() : 0) +
      extra_cache_charge();
}

RecoveryReport StorageEngine::recover_into(StableStorage& out) {
  out.reset_committed();
  const SnapshotScan snap = scan_state();
  const ScanResult scan = scan_journal_cached();
  RecoveryReport report = recover_from_scans(snap, scan, out);
  // Discard the untrusted tails so appends resume after the last good
  // record — the journal analogue of halting at the last completed
  // instruction.
  journal_->truncate(report.valid_bytes);
  if (report.valid_bytes < ship_horizon_) {
    // The truncation destroyed bytes a shipper may already have served
    // (bit flip or torn salvage inside the shipped range): replica cursors
    // into this generation no longer describe the journal. Start a new
    // generation with no retained window — stale cursors must full-copy.
    ++journal_generation_;
    rebase_ok_ = false;
    retained_tail_.clear();
    ship_horizon_ = kHeaderSize;
  } else {
    ship_horizon_ = std::max<std::uint64_t>(
        kHeaderSize, std::min(ship_horizon_, report.valid_bytes));
  }
  if (snap.truncated) snapshots_->truncate(snap.valid_bytes);
  // The journal now ends exactly where the scan stopped trusting it, so the
  // scan's dictionary is the writer's dictionary.
  interner_.adopt(scan.dict);
  stats_.lag_frames = 0;
  stats_.lag_bytes = 0;
  stats_.last_durable_epoch = report.last_epoch;
  appended_epoch_ = report.last_epoch;
  ++stats_.recoveries;
  after_recover(snap, report);
  return report;
}

void StorageEngine::after_recover(const SnapshotScan& snap,
                                  const RecoveryReport& report) {
  (void)snap;
  (void)report;
}

bool StorageEngine::has_state() const {
  return journal_->size() > kHeaderSize || snapshots_->size() > kHeaderSize;
}

EngineCheckpoint StorageEngine::checkpoint_state() const {
  EngineCheckpoint cp;
  cp.journal = journal_->fork();
  cp.snapshots = snapshots_->fork();
  require(cp.journal != nullptr && cp.snapshots != nullptr,
          "checkpoint requires forkable journal devices");
  cp.stats = stats_;
  cp.interner = interner_;
  cp.appended_epoch = appended_epoch_;
  cp.journal_generation = journal_generation_;
  cp.retained_tail = retained_tail_;
  cp.rebase_ok = rebase_ok_;
  cp.rebase_epoch = rebase_epoch_;
  cp.ship_horizon = ship_horizon_;
  cp.adaptive_watermark_fp = adaptive_watermark_fp_;
  cp.reconfig_pressure = reconfig_pressure_;
  cp.state_flush_cycle = state_flush_cycle_;
  return cp;
}

std::uint64_t EngineCheckpoint::spill_devices(storage::MappedArena& arena) {
  std::uint64_t bytes = 0;
  for (JournalBackend* device : {journal.get(), snapshots.get()}) {
    if (auto* mem = dynamic_cast<MemoryBackend*>(device)) {
      bytes += mem->spill(arena);
    }
  }
  return bytes;
}

void StorageEngine::restore_state(const EngineCheckpoint& cp) {
  journal_ = cp.journal->fork();
  snapshots_ = cp.snapshots->fork();
  ensure(journal_ != nullptr && snapshots_ != nullptr,
         "checkpointed journal devices must stay forkable");
  stats_ = cp.stats;
  interner_ = cp.interner;
  appended_epoch_ = cp.appended_epoch;
  journal_generation_ = cp.journal_generation;
  retained_tail_ = cp.retained_tail;
  rebase_ok_ = cp.rebase_ok;
  rebase_epoch_ = cp.rebase_epoch;
  ship_horizon_ = cp.ship_horizon;
  adaptive_watermark_fp_ = cp.adaptive_watermark_fp;
  reconfig_pressure_ = cp.reconfig_pressure;
  state_flush_cycle_ = cp.state_flush_cycle;
  scratch_.clear();
  decode_scratch_.clear();
  // The scan cache deliberately survives a restore: its entries are
  // content-addressed, so a restored mission that re-recovers an identical
  // journal image hits them — results are bit-identical either way, only
  // the hit counters differ, and stats are never digested.
}

std::unique_ptr<DurabilityEngine> make_memory_engine(DurableOptions options) {
  switch (options.engine) {
    case EngineKind::kMmap:
      return std::make_unique<MmapEngine>(std::move(options));
    case EngineKind::kLsm:
      return std::make_unique<LsmEngine>(std::make_unique<MemoryBackend>(),
                                         std::make_unique<MemoryBackend>(),
                                         std::move(options));
    case EngineKind::kWalSnapshot:
      break;
  }
  return std::make_unique<WalSnapshotEngine>(std::make_unique<MemoryBackend>(),
                                             std::make_unique<MemoryBackend>(),
                                             std::move(options));
}

}  // namespace arfs::storage::durable
