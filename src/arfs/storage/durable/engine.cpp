#include "arfs/storage/durable/engine.hpp"

#include <algorithm>
#include <utility>

#include "arfs/common/check.hpp"
#include "arfs/storage/arena.hpp"

namespace arfs::storage::durable {

namespace {

/// GC keeps this many newest images: the current one, plus its predecessor
/// so recovery can fall back when the current image's sync failed and a
/// crash tore it (the journal is uncompacted in exactly that case).
constexpr std::size_t kGcKeepImages = 2;

}  // namespace

std::string to_string(SyncMode mode) {
  switch (mode) {
    case SyncMode::kEveryCommit:     return "every-commit";
    case SyncMode::kBytesWatermark:  return "bytes-watermark";
    case SyncMode::kFramesWatermark: return "frames-watermark";
    case SyncMode::kHybrid:          return "hybrid";
  }
  return "unknown";
}

RecoveryReport recover_from_scans(const SnapshotScan& snap,
                                  const ScanResult& scan,
                                  StableStorage& out) {
  require(out.committed_count() == 0,
          "recovery target must have no committed state");
  RecoveryReport report;

  if (snap.any_valid) {
    report.used_snapshot = true;
    report.snapshot_epoch = snap.last.epoch;
    out.restore_batch(snap.last.entries);
  }

  std::uint64_t last_epoch = report.snapshot_epoch;
  for (const JournalRecord& record : scan.records) {
    if (record.epoch <= report.snapshot_epoch) {
      ++report.records_skipped;
      continue;
    }
    out.restore_batch(record.entries, record.cycle);
    last_epoch = record.epoch;
    ++report.records_applied;
  }
  out.set_commit_epochs(last_epoch);
  report.last_epoch = last_epoch;
  report.journal_truncated = scan.truncated;
  report.valid_bytes = scan.valid_bytes;
  if (scan.truncated) report.note = scan.reason;
  if (snap.truncated) {
    report.note += report.note.empty() ? "" : "; ";
    report.note += "snapshot device: " + snap.reason;
  }
  return report;
}

RecoveryReport recover_store(const JournalBackend& snapshots,
                             const JournalBackend& journal,
                             StableStorage& out) {
  return recover_from_scans(scan_snapshots(snapshots), scan_journal(journal),
                            out);
}

DurabilityEngine::DurabilityEngine(std::unique_ptr<JournalBackend> journal,
                                   std::unique_ptr<JournalBackend> snapshots,
                                   DurableOptions options)
    : journal_(std::move(journal)), snapshots_(std::move(snapshots)),
      options_(options) {
  require(journal_ != nullptr && snapshots_ != nullptr,
          "durability engine needs both devices");
}

void DurabilityEngine::note_ship(std::uint64_t bytes, std::uint64_t lag,
                                 std::uint64_t horizon) {
  if (bytes > 0) {
    ++stats_.ship_batches;
    stats_.shipped_bytes += bytes;
  }
  stats_.ship_lag_bytes = lag;
  stats_.max_ship_lag_bytes = std::max(stats_.max_ship_lag_bytes, lag);
  ship_horizon_ = std::max(ship_horizon_, horizon);
}

bool DurabilityEngine::watermark_reached() const {
  const SyncPolicy& policy = options_.sync;
  switch (policy.mode) {
    case SyncMode::kEveryCommit:
      return true;
    case SyncMode::kBytesWatermark:
      return stats_.lag_bytes >= policy.bytes_watermark;
    case SyncMode::kFramesWatermark:
      return stats_.lag_frames >= policy.frames_watermark;
    case SyncMode::kHybrid:
      return stats_.lag_bytes >= policy.bytes_watermark ||
             stats_.lag_frames >= policy.frames_watermark;
  }
  return true;
}

bool DurabilityEngine::do_sync() {
  ++stats_.syncs;
  if (!journal_->sync()) {
    // The tail stays buffered, so the lag persists; a later sync (or the
    // next watermark) retries it.
    ++stats_.sync_failures;
    return false;
  }
  stats_.lag_frames = 0;
  stats_.lag_bytes = 0;
  stats_.last_durable_epoch =
      std::max(stats_.last_durable_epoch, appended_epoch_);
  return true;
}

bool DurabilityEngine::sync_now() {
  if (stats_.lag_frames == 0 && stats_.lag_bytes == 0) return true;
  ++stats_.forced_syncs;
  return do_sync();
}

void DurabilityEngine::record_commit(const StableStorage& store, Cycle cycle) {
  if (!ensure_header(*journal_)) {
    // A media fault (or foreign content) destroyed the device header. The
    // scanner trusts nothing after a bad magic, so appending here could
    // never make this commit durable — count the fault and suspend
    // journaling. recover_into() truncates the device, after which the
    // header is rewritten and journaling resumes.
    ++stats_.header_faults;
    return;
  }
  scratch_.clear();
  encode_commit(scratch_, interner_, store.commit_epochs() + 1, cycle,
                store.pending());
  journal_->append(scratch_.data(), scratch_.size());
  stats_.bytes_appended += scratch_.size();
  ++stats_.commits_journaled;
  appended_epoch_ = store.commit_epochs() + 1;
  ++stats_.lag_frames;
  stats_.lag_bytes += scratch_.size();
  stats_.max_lag_frames = std::max(stats_.max_lag_frames, stats_.lag_frames);
  stats_.max_lag_bytes = std::max(stats_.max_lag_bytes, stats_.lag_bytes);
  if (watermark_reached()) (void)do_sync();
}

void DurabilityEngine::after_commit(const StableStorage& store) {
  if (options_.snapshot_every_epochs == 0) return;
  if (store.commit_epochs() == 0 ||
      store.commit_epochs() % options_.snapshot_every_epochs != 0) {
    return;
  }
  take_snapshot(store);
}

bool DurabilityEngine::take_snapshot(const StableStorage& store) {
  // Snapshot boundary: flush the journal lag first, so durability at the
  // boundary never depends on whether the image itself succeeds.
  (void)sync_now();
  if (!append_snapshot(*snapshots_, store.commit_epochs(),
                       store.committed_entries())) {
    ++stats_.snapshot_failures;
    return false;
  }
  if (!snapshots_->sync()) {
    ++stats_.snapshot_failures;
    return false;
  }
  ++stats_.snapshots_taken;
  stats_.last_durable_epoch =
      std::max(stats_.last_durable_epoch, store.commit_epochs());
  // Reclaim superseded images while the journal still covers everything
  // since the previous image — a failed rewrite then loses nothing.
  gc_snapshots();
  // Compaction starts a new journal generation for shippers. Retain the
  // outgoing generation's synced bytes so replicas that lag this compaction
  // can finish it and rebase; if the boundary sync above failed, un-shipped
  // records went into the image without ever becoming shippable, so a
  // rebase would silently lose them — disable it and force a full copy.
  rebase_ok_ = stats_.lag_bytes == 0;
  retained_tail_.clear();
  if (rebase_ok_) {
    const std::uint64_t synced = journal_->synced_size();
    if (synced > kHeaderSize) {
      retained_tail_.resize(static_cast<std::size_t>(synced - kHeaderSize));
      const std::size_t got = journal_->read(kHeaderSize,
                                             retained_tail_.data(),
                                             retained_tail_.size());
      if (got != retained_tail_.size()) {
        retained_tail_.clear();
        rebase_ok_ = false;
      }
    }
  }
  rebase_epoch_ = store.commit_epochs();
  ++journal_generation_;
  ship_horizon_ = kHeaderSize;
  // The image covers every epoch the journal holds; compact it. Torn-tail
  // safety is preserved because the image is already durably synced. The
  // buffered tail (if a pre-image sync failed) is covered by the image too,
  // so the lag is settled along with the key dictionary, which restarts
  // empty in the fresh journal generation.
  journal_->truncate(kHeaderSize);
  interner_.reset();
  stats_.lag_frames = 0;
  stats_.lag_bytes = 0;
  appended_epoch_ = store.commit_epochs();
  return true;
}

void DurabilityEngine::gc_snapshots() {
  const SnapshotScan snap = scan_snapshots(*snapshots_);
  if (snap.truncated || snap.images <= kGcKeepImages) return;
  const std::uint64_t keep_from =
      snap.image_offsets[snap.images - kGcKeepImages];
  // Copy the whole image tail out so a failed rewrite can be rolled back.
  std::vector<std::uint8_t> tail(
      static_cast<std::size_t>(snap.valid_bytes - kHeaderSize));
  if (snapshots_->read(kHeaderSize, tail.data(), tail.size()) != tail.size()) {
    return;  // device refused the read; leave it alone
  }
  const auto keep_offset = static_cast<std::size_t>(keep_from - kHeaderSize);
  snapshots_->truncate(kHeaderSize);
  snapshots_->append(tail.data() + keep_offset, tail.size() - keep_offset);
  if (snapshots_->sync()) {
    ++stats_.snapshot_gc_runs;
    stats_.snapshot_bytes_reclaimed += keep_offset;
    return;
  }
  // Rewrite could not be made durable: restore the original device content
  // so the durable image set is no worse than before the GC attempt.
  ++stats_.snapshot_failures;
  snapshots_->truncate(kHeaderSize);
  snapshots_->append(tail.data(), tail.size());
  (void)snapshots_->sync();
}

void DurabilityEngine::crash() {
  journal_->crash();
  snapshots_->crash();
  ++stats_.crashes;
}

RecoveryReport DurabilityEngine::recover_into(StableStorage& out) {
  out.reset_committed();
  const SnapshotScan snap = scan_snapshots(*snapshots_);
  const ScanResult scan = scan_journal(*journal_);
  RecoveryReport report = recover_from_scans(snap, scan, out);
  // Discard the untrusted tails so appends resume after the last good
  // record — the journal analogue of halting at the last completed
  // instruction.
  journal_->truncate(report.valid_bytes);
  if (report.valid_bytes < ship_horizon_) {
    // The truncation destroyed bytes a shipper may already have served
    // (bit flip or torn salvage inside the shipped range): replica cursors
    // into this generation no longer describe the journal. Start a new
    // generation with no retained window — stale cursors must full-copy.
    ++journal_generation_;
    rebase_ok_ = false;
    retained_tail_.clear();
    ship_horizon_ = kHeaderSize;
  } else {
    ship_horizon_ = std::max<std::uint64_t>(
        kHeaderSize, std::min(ship_horizon_, report.valid_bytes));
  }
  if (snap.truncated) snapshots_->truncate(snap.valid_bytes);
  // The journal now ends exactly where the scan stopped trusting it, so the
  // scan's dictionary is the writer's dictionary.
  interner_.adopt(scan.dict);
  stats_.lag_frames = 0;
  stats_.lag_bytes = 0;
  stats_.last_durable_epoch = report.last_epoch;
  appended_epoch_ = report.last_epoch;
  ++stats_.recoveries;
  return report;
}

bool DurabilityEngine::has_state() const {
  return journal_->size() > kHeaderSize || snapshots_->size() > kHeaderSize;
}

EngineCheckpoint DurabilityEngine::checkpoint_state() const {
  EngineCheckpoint cp;
  cp.journal = journal_->fork();
  cp.snapshots = snapshots_->fork();
  require(cp.journal != nullptr && cp.snapshots != nullptr,
          "checkpoint requires forkable journal devices");
  cp.stats = stats_;
  cp.interner = interner_;
  cp.appended_epoch = appended_epoch_;
  cp.journal_generation = journal_generation_;
  cp.retained_tail = retained_tail_;
  cp.rebase_ok = rebase_ok_;
  cp.rebase_epoch = rebase_epoch_;
  cp.ship_horizon = ship_horizon_;
  return cp;
}

std::uint64_t EngineCheckpoint::spill_devices(storage::MappedArena& arena) {
  std::uint64_t bytes = 0;
  for (JournalBackend* device : {journal.get(), snapshots.get()}) {
    if (auto* mem = dynamic_cast<MemoryBackend*>(device)) {
      bytes += mem->spill(arena);
    }
  }
  return bytes;
}

void DurabilityEngine::restore_state(const EngineCheckpoint& cp) {
  journal_ = cp.journal->fork();
  snapshots_ = cp.snapshots->fork();
  ensure(journal_ != nullptr && snapshots_ != nullptr,
         "checkpointed journal devices must stay forkable");
  stats_ = cp.stats;
  interner_ = cp.interner;
  appended_epoch_ = cp.appended_epoch;
  journal_generation_ = cp.journal_generation;
  retained_tail_ = cp.retained_tail;
  rebase_ok_ = cp.rebase_ok;
  rebase_epoch_ = cp.rebase_epoch;
  ship_horizon_ = cp.ship_horizon;
  scratch_.clear();
}

std::unique_ptr<DurabilityEngine> make_memory_engine(DurableOptions options) {
  return std::make_unique<DurabilityEngine>(std::make_unique<MemoryBackend>(),
                                            std::make_unique<MemoryBackend>(),
                                            options);
}

}  // namespace arfs::storage::durable
