// WalSnapshotEngine: the original journal + full-image snapshot engine.
//
// The state device is an append-only log of full committed-store images
// (magic "ARFSSNP1"; snapshot.hpp): persist_state appends one image and
// syncs it, gc_state keeps the newest two images (the current one plus its
// predecessor as the torn-image fallback), and scan_state is a plain
// scan_snapshots. Everything else — journal, sync policy, adaptive
// watermarks, shipping, checkpointing, recovery — is the shared
// StorageEngine base.
#pragma once

#include <memory>

#include "arfs/storage/durable/engine.hpp"

namespace arfs::storage::durable {

class WalSnapshotEngine : public StorageEngine {
 public:
  WalSnapshotEngine(std::unique_ptr<JournalBackend> journal,
                    std::unique_ptr<JournalBackend> snapshots,
                    DurableOptions options = {});

  [[nodiscard]] EngineKind kind() const override {
    return EngineKind::kWalSnapshot;
  }

 protected:
  bool persist_state(const StableStorage& store) override;
  void gc_state() override;
  SnapshotScan scan_state() override;
};

}  // namespace arfs::storage::durable
