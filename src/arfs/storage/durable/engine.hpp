// Durability engine: the persistence layer behind a StableStorage.
//
// Protocol per frame (write-ahead rule):
//
//   1. record_commit() encodes the staged batch as one journal record and,
//      under the sync policy, decides whether to sync now — under the
//      default every-commit policy the commit exists on the device before it
//      exists in memory;
//   2. the caller applies StableStorage::commit();
//   3. after_commit() takes a snapshot every `snapshot_every_epochs`
//      commits, and compacts the journal once the image is durably synced.
//
// Group commit: the watermark policies let journal records accumulate in
// the device's buffered tail and sync only when the accumulated lag crosses
// a bytes or frames watermark, trading a bounded durability lag for append
// throughput (one fsync amortized over many commits). The lag is tracked in
// DurabilityStats and is forced to zero at every snapshot and halt boundary
// (sync_now()), so fail-stop semantics are unchanged: what a crash can lose
// is only the un-synced suffix of whole frame commits, never a torn record,
// and never anything past a boundary the protocol declared durable.
//
// On a fail-stop halt the owner calls crash() (the device loses its
// unsynced tail, exactly like the processor loses volatile storage) and
// then recover_into(): scan the snapshot device for the last valid image,
// replay journal records with later epochs, truncate at the first torn or
// corrupt record, and physically discard the untrusted tail so journaling
// can resume. The recovered store is the disk-level "last successfully
// completed instruction" state of paper §5.1 — what peers polling the
// failed processor are entitled to see.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arfs/common/types.hpp"
#include "arfs/storage/durable/backend.hpp"
#include "arfs/storage/durable/journal.hpp"
#include "arfs/storage/durable/snapshot.hpp"
#include "arfs/storage/stable_storage.hpp"

namespace arfs::storage::durable {

/// When record_commit() syncs the journal.
enum class SyncMode : std::uint8_t {
  kEveryCommit,      ///< Sync inside every record_commit (write-ahead).
  kBytesWatermark,   ///< Sync when un-synced bytes reach the watermark.
  kFramesWatermark,  ///< Sync when un-synced frames reach the watermark.
  kHybrid,           ///< Sync when either watermark is reached.
};

struct SyncPolicy {
  SyncMode mode = SyncMode::kEveryCommit;
  std::uint64_t bytes_watermark = 64 * 1024;
  std::uint64_t frames_watermark = 32;

  static SyncPolicy every_commit() { return {}; }
  static SyncPolicy bytes(std::uint64_t watermark) {
    return {SyncMode::kBytesWatermark, watermark, 0};
  }
  static SyncPolicy frames(std::uint64_t watermark) {
    return {SyncMode::kFramesWatermark, 0, watermark};
  }
  static SyncPolicy hybrid(std::uint64_t bytes_watermark,
                           std::uint64_t frames_watermark) {
    return {SyncMode::kHybrid, bytes_watermark, frames_watermark};
  }
};

[[nodiscard]] std::string to_string(SyncMode mode);

struct DurableOptions {
  /// Take a full snapshot every N commit epochs; 0 disables automatic
  /// snapshots (recovery then replays the whole journal).
  std::uint64_t snapshot_every_epochs = 0;
  /// Group-commit sync policy. The default syncs every commit.
  SyncPolicy sync;
};

struct DurabilityStats {
  std::uint64_t commits_journaled = 0;
  std::uint64_t bytes_appended = 0;
  std::uint64_t syncs = 0;
  std::uint64_t sync_failures = 0;
  std::uint64_t snapshots_taken = 0;
  std::uint64_t snapshot_failures = 0;
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  /// Commits not journaled because the device header was found destroyed
  /// (journaling suspends until recovery re-initializes the device).
  std::uint64_t header_faults = 0;

  // --- group-commit durability lag ---
  /// Journaled commits / bytes sitting in the buffered tail, not yet synced
  /// (what a crash right now would lose). Reset by every successful sync.
  std::uint64_t lag_frames = 0;
  std::uint64_t lag_bytes = 0;
  /// High-water marks of the above, over the engine's lifetime.
  std::uint64_t max_lag_frames = 0;
  std::uint64_t max_lag_bytes = 0;
  /// Boundary syncs requested via sync_now() that found lag to flush
  /// (snapshot boundaries and halt directives).
  std::uint64_t forced_syncs = 0;
  /// Highest commit epoch known durable (synced journal record or snapshot
  /// image). A crash recovers exactly this epoch's state.
  std::uint64_t last_durable_epoch = 0;

  // --- snapshot-device GC ---
  std::uint64_t snapshot_gc_runs = 0;
  std::uint64_t snapshot_bytes_reclaimed = 0;

  // --- journal shipping (JournalShipper over this engine) ---
  std::uint64_t ship_batches = 0;
  std::uint64_t shipped_bytes = 0;
  /// Synced journal bytes a shipped replica has not yet received, as of the
  /// last batch produced (the warm-start catch-up debt), and its high-water
  /// mark.
  std::uint64_t ship_lag_bytes = 0;
  std::uint64_t max_ship_lag_bytes = 0;
  /// Replica cursors invalidated (lagged past the retained generation, or
  /// a lossy recovery destroyed shipped bytes): each costs a full copy.
  std::uint64_t ship_fallbacks = 0;
  /// Replicas rebased across a compaction without a full copy.
  std::uint64_t ship_rebases = 0;
};

/// What recovery found and did.
struct RecoveryReport {
  bool used_snapshot = false;
  std::uint64_t snapshot_epoch = 0;
  std::uint64_t records_applied = 0;   ///< Journal records replayed.
  std::uint64_t records_skipped = 0;   ///< Already covered by the snapshot.
  std::uint64_t last_epoch = 0;        ///< Epoch of the recovered store.
  bool journal_truncated = false;      ///< A torn/corrupt tail was found.
  std::uint64_t valid_bytes = 0;       ///< Journal prefix that was trusted.
  std::string note;                    ///< Scanner's reason, when truncated.
};

/// Pure recovery from already-performed device scans: rebuilds `out` from
/// the snapshot's last valid image plus the journal's valid commit prefix.
/// `out` must be empty of committed state (reset_committed() first).
[[nodiscard]] RecoveryReport recover_from_scans(const SnapshotScan& snap,
                                                const ScanResult& scan,
                                                StableStorage& out);

/// Convenience wrapper that scans both devices itself.
[[nodiscard]] RecoveryReport recover_store(const JournalBackend& snapshots,
                                           const JournalBackend& journal,
                                           StableStorage& out);

/// Frozen image of a DurabilityEngine: forked devices (durable image,
/// buffered tail, and armed fault hooks included) plus every piece of
/// engine bookkeeping. Move-only; a checkpoint can be restored any number
/// of times because restore re-forks the devices instead of consuming them.
struct EngineCheckpoint {
  std::unique_ptr<JournalBackend> journal;
  std::unique_ptr<JournalBackend> snapshots;
  DurabilityStats stats;
  KeyInterner interner;
  std::uint64_t appended_epoch = 0;
  std::uint64_t journal_generation = 0;
  std::vector<std::uint8_t> retained_tail;
  bool rebase_ok = true;
  std::uint64_t rebase_epoch = 0;
  std::uint64_t ship_horizon = 0;

  /// Spills both forked devices' byte images (the checkpoint's dominant
  /// mass) to CRC-guarded arena regions; memory devices only — file-backed
  /// devices don't fork and never reach a checkpoint. The devices hydrate
  /// transparently on the next access/restore. Returns bytes spilled.
  std::uint64_t spill_devices(storage::MappedArena& arena);
};

class DurabilityEngine {
 public:
  DurabilityEngine(std::unique_ptr<JournalBackend> journal,
                   std::unique_ptr<JournalBackend> snapshots,
                   DurableOptions options = {});

  /// Journals the staged batch `store` is about to commit at `cycle`, and
  /// syncs if the policy's watermark is reached.
  /// Call immediately before store.commit(cycle).
  void record_commit(const StableStorage& store, Cycle cycle);

  /// Snapshot policy hook; call right after store.commit().
  void after_commit(const StableStorage& store);

  /// Boundary sync: flushes any un-synced journal tail now. Used at halt
  /// boundaries (a reconfiguration directive is about to take effect) so
  /// group commit never weakens the fail-stop contract. No-op when the lag
  /// is already zero. Returns false on a device sync failure (the lag then
  /// persists and the next sync retries).
  bool sync_now();

  /// Forces a full image now. Returns false when the image could not be
  /// made durable (sync failure) — the journal is then left uncompacted.
  bool take_snapshot(const StableStorage& store);

  /// Device side of a fail-stop halt: unsynced bytes are lost.
  void crash();

  /// Rebuilds `out` from snapshot + journal replay, then truncates any
  /// untrusted journal tail so appends can resume after the last good
  /// record. `out` is cleared of committed state first; its pending buffer
  /// and history configuration are left alone.
  RecoveryReport recover_into(StableStorage& out);

  /// True when the devices hold any durable state worth recovering.
  [[nodiscard]] bool has_state() const;

  /// Freezes the engine — forked devices plus all bookkeeping — into a
  /// checkpoint restorable many times over. Precondition: both devices are
  /// forkable (MemoryBackend; FileBackend is not).
  [[nodiscard]] EngineCheckpoint checkpoint_state() const;
  /// Rewinds this engine to `cp` in place. The engine object's identity is
  /// preserved deliberately: shippers and units hold references to it.
  void restore_state(const EngineCheckpoint& cp);

  [[nodiscard]] const DurabilityStats& stats() const { return stats_; }
  [[nodiscard]] const DurableOptions& options() const { return options_; }
  [[nodiscard]] JournalBackend& journal() { return *journal_; }
  [[nodiscard]] JournalBackend& snapshots() { return *snapshots_; }

  // --- journal-shipping support ---

  /// Monotone generation counter of the journal's byte space. Bumped when
  /// compaction discards the journal (take_snapshot) and when a lossy
  /// recovery truncates bytes a shipper may already have served — a ship
  /// cursor is only meaningful within one generation.
  [[nodiscard]] std::uint64_t journal_generation() const {
    return journal_generation_;
  }
  /// Synced bytes of the previous generation, retained at compaction so
  /// replicas that lag one compaction can still catch up instead of
  /// falling back to a full copy.
  [[nodiscard]] const std::vector<std::uint8_t>& retained_tail() const {
    return retained_tail_;
  }
  /// True when a replica that consumed the whole previous generation may
  /// rebase onto the current one (the retained bytes cover everything the
  /// compacting snapshot image covered; false when the pre-image sync
  /// failed and un-shipped records went straight into the image).
  [[nodiscard]] bool rebase_ok() const { return rebase_ok_; }
  /// Epoch a rebasing replica adopts: the compacting image's epoch.
  [[nodiscard]] std::uint64_t rebase_epoch() const { return rebase_epoch_; }
  /// The journal's current key dictionary — part of the state a full-copy
  /// reseed transfers (later records reference ids announced before it).
  [[nodiscard]] const std::vector<std::string>& dictionary() const {
    return interner_.entries();
  }

  /// Shipping accounting, called by JournalShipper per batch: bytes put on
  /// the wire, synced bytes still owed, and (for current-generation
  /// batches; 0 otherwise) the end offset shipped up to — the horizon a
  /// lossy recovery checks cursors against.
  void note_ship(std::uint64_t bytes, std::uint64_t lag,
                 std::uint64_t horizon);
  void note_ship_fallback() { ++stats_.ship_fallbacks; }
  void note_ship_rebase() { ++stats_.ship_rebases; }

 private:
  [[nodiscard]] bool watermark_reached() const;
  /// Syncs the journal and settles the lag counters. Shared by the policy
  /// path, sync_now(), and the snapshot boundary.
  bool do_sync();
  /// Keeps the last two images on the snapshot device, truncating older
  /// ones. Runs after a new image is durably synced, before journal
  /// compaction, so a failed rewrite never orphans journal state.
  void gc_snapshots();

  std::unique_ptr<JournalBackend> journal_;
  std::unique_ptr<JournalBackend> snapshots_;
  DurableOptions options_;
  DurabilityStats stats_;
  std::vector<std::uint8_t> scratch_;  ///< Reused record encode buffer.
  KeyInterner interner_;               ///< Journal key dictionary (writer).
  /// Epoch of the newest record appended to the journal; becomes
  /// last_durable_epoch when the tail syncs.
  std::uint64_t appended_epoch_ = 0;

  // --- journal-shipping state (see the accessors above) ---
  std::uint64_t journal_generation_ = 0;
  std::vector<std::uint8_t> retained_tail_;
  bool rebase_ok_ = true;
  std::uint64_t rebase_epoch_ = 0;
  /// Highest current-generation end offset ever handed to a shipper; a
  /// recovery that truncates below it must start a new generation, because
  /// replicas may hold bytes the journal no longer agrees with.
  std::uint64_t ship_horizon_ = kHeaderSize;
};

/// Convenience: an engine on fresh in-memory devices (sim processors).
[[nodiscard]] std::unique_ptr<DurabilityEngine> make_memory_engine(
    DurableOptions options = {});

}  // namespace arfs::storage::durable
