// Storage engines: the persistence layer behind a StableStorage.
//
// StorageEngine is the abstract contract; three engines implement it:
//
//  * WalSnapshotEngine — the original journal + full-image snapshot pair
//    (magic "ARFSSNP1" on the state device);
//  * MmapEngine       — the same WAL + snapshot protocol on devices whose
//    durable image lives in storage::MappedArena extents (chunked open
//    regions; see mmap_engine.hpp);
//  * LsmEngine        — sorted immutable delta runs with key-bounds
//    iteration and a block cache over decoded runs (lsm_engine.hpp).
//
// All three share this base verbatim for the journal side, the sync policy,
// group commit, shipping bookkeeping, and the recovery skeleton; they differ
// only in how the *state device* persists, compacts, and scans committed
// images. That is the invariant the crash-point sweep leans on: every engine
// recovers the same store at the same epoch from the same commit history,
// so sweep report digests are bit-identical across engines.
//
// Protocol per frame (write-ahead rule):
//
//   1. record_commit() encodes the staged batch as one journal record and,
//      under the sync policy, decides whether to sync now — under the
//      default every-commit policy the commit exists on the device before it
//      exists in memory;
//   2. the caller applies StableStorage::commit();
//   3. after_commit() persists a state image every `snapshot_every_epochs`
//      commits, and compacts the journal once the image is durably synced.
//
// Group commit: the watermark policies let journal records accumulate in
// the device's buffered tail and sync only when the accumulated lag crosses
// a bytes or frames watermark, trading a bounded durability lag for append
// throughput (one fsync amortized over many commits). The lag is tracked in
// DurabilityStats and is forced to zero at every snapshot and halt boundary
// (sync_now()), so fail-stop semantics are unchanged: what a crash can lose
// is only the un-synced suffix of whole frame commits, never a torn record,
// and never anything past a boundary the protocol declared durable.
//
// Adaptive watermarks (SyncMode::kAdaptive): instead of a hand-tuned static
// watermark, a deterministic fixed-point controller retunes the bytes
// watermark after every sync from the observed bytes-per-sync amortization
// (the commit-size / sync-cost ratio, with the per-sync cost modeled as a
// fixed byte-equivalent). The controller is pure integer arithmetic over
// engine-local state — seeded by the policy, replayed identically on any
// thread or shard count — so checkpoints, restores, and sweep digests stay
// bit-exact. During a reconfiguration the SCRAM applies *pressure*
// (set_reconfig_pressure), which drops the effective watermark to the
// policy's floor so directives reach stable storage with minimal lag;
// pressure affects only kAdaptive, never the static policies.
//
// On a fail-stop halt the owner calls crash() (the device loses its
// unsynced tail, exactly like the processor loses volatile storage) and
// then recover_into(): scan the state device for the last valid image (or
// merged run set), replay journal records with later epochs, truncate at
// the first torn or corrupt record, and physically discard the untrusted
// tail so journaling can resume. The recovered store is the disk-level
// "last successfully completed instruction" state of paper §5.1 — what
// peers polling the failed processor are entitled to see.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arfs/common/types.hpp"
#include "arfs/storage/durable/backend.hpp"
#include "arfs/storage/durable/block_cache.hpp"
#include "arfs/storage/durable/journal.hpp"
#include "arfs/storage/durable/snapshot.hpp"
#include "arfs/storage/stable_storage.hpp"

namespace arfs::storage::durable {

/// When record_commit() syncs the journal.
enum class SyncMode : std::uint8_t {
  kEveryCommit,      ///< Sync inside every record_commit (write-ahead).
  kBytesWatermark,   ///< Sync when un-synced bytes reach the watermark.
  kFramesWatermark,  ///< Sync when un-synced frames reach the watermark.
  kHybrid,           ///< Sync when either watermark is reached.
  kAdaptive,         ///< Bytes watermark retuned online (see file comment).
};

struct SyncPolicy {
  SyncMode mode = SyncMode::kEveryCommit;
  /// Static bytes watermark; under kAdaptive, the controller's *initial*
  /// watermark (clamped into [adaptive_min_bytes, adaptive_max_bytes]).
  std::uint64_t bytes_watermark = 64 * 1024;
  /// Static frames watermark; under kAdaptive, a hard lag-frames ceiling
  /// (0 disables it) bounding how many whole commits a crash can lose no
  /// matter how high the byte watermark tunes.
  std::uint64_t frames_watermark = 32;
  /// kAdaptive clamp bounds. The floor doubles as the *pressured* watermark
  /// applied while the SCRAM reconfigures.
  std::uint64_t adaptive_min_bytes = 512;
  std::uint64_t adaptive_max_bytes = 256 * 1024;

  static SyncPolicy every_commit() { return {}; }
  static SyncPolicy bytes(std::uint64_t watermark) {
    return {SyncMode::kBytesWatermark, watermark, 0};
  }
  static SyncPolicy frames(std::uint64_t watermark) {
    return {SyncMode::kFramesWatermark, 0, watermark};
  }
  static SyncPolicy hybrid(std::uint64_t bytes_watermark,
                           std::uint64_t frames_watermark) {
    return {SyncMode::kHybrid, bytes_watermark, frames_watermark};
  }
  static SyncPolicy adaptive(std::uint64_t initial_bytes = 8 * 1024,
                             std::uint64_t min_bytes = 512,
                             std::uint64_t max_bytes = 256 * 1024,
                             std::uint64_t frames_ceiling = 64) {
    return {SyncMode::kAdaptive, initial_bytes, frames_ceiling, min_bytes,
            max_bytes};
  }
};

[[nodiscard]] std::string to_string(SyncMode mode);

/// Which StorageEngine implementation backs a processor's durable state.
enum class EngineKind : std::uint8_t {
  kWalSnapshot,  ///< Journal + full-image snapshots (the original engine).
  kMmap,         ///< WAL protocol on MappedArena-extent devices.
  kLsm,          ///< Sorted immutable runs + block-cached recovery.
};

[[nodiscard]] std::string to_string(EngineKind kind);
/// Parses "wal" | "mmap" | "lsm" (the arfsctl --engine spelling).
[[nodiscard]] bool parse_engine_kind(const std::string& text,
                                     EngineKind& out);

struct DurableOptions {
  /// Take a full state image (snapshot / LSM run) every N commit epochs;
  /// 0 disables the cadence (recovery then replays the whole journal).
  std::uint64_t snapshot_every_epochs = 0;
  /// Group-commit sync policy. The default syncs every commit.
  SyncPolicy sync;
  /// Which engine make_memory_engine() builds. Lives here rather than in
  /// SystemOptions so every creation site (processors, warm standbys,
  /// quorum members) inherits the choice without plumbing.
  EngineKind engine = EngineKind::kWalSnapshot;
  /// Block-cache budget for decoded recovery blocks. 0 picks the engine
  /// default: LSM enables 512 KiB (its recovery path is built around the
  /// cache); WAL/mmap leave it off. Nonzero enables it everywhere.
  std::uint64_t block_cache_bytes = 0;
  /// LSM only: compact when the valid run count exceeds this.
  std::uint32_t lsm_run_limit = 4;
  /// MmapEngine only: backing file of the device arena. Empty uses the
  /// arena's heap-extent fallback (same layout and semantics, no file).
  std::string mmap_path;
};

struct DurabilityStats {
  std::uint64_t commits_journaled = 0;
  std::uint64_t bytes_appended = 0;
  std::uint64_t syncs = 0;
  std::uint64_t sync_failures = 0;
  std::uint64_t snapshots_taken = 0;
  std::uint64_t snapshot_failures = 0;
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  /// Commits not journaled because the device header was found destroyed
  /// (journaling suspends until recovery re-initializes the device).
  std::uint64_t header_faults = 0;

  // --- group-commit durability lag ---
  /// Journaled commits / bytes sitting in the buffered tail, not yet synced
  /// (what a crash right now would lose). Reset by every successful sync.
  std::uint64_t lag_frames = 0;
  std::uint64_t lag_bytes = 0;
  /// High-water marks of the above, over the engine's lifetime.
  std::uint64_t max_lag_frames = 0;
  std::uint64_t max_lag_bytes = 0;
  /// Boundary syncs requested via sync_now() that found lag to flush
  /// (snapshot boundaries and halt directives).
  std::uint64_t forced_syncs = 0;
  /// Highest commit epoch known durable (synced journal record or state
  /// image). A crash recovers exactly this epoch's state.
  std::uint64_t last_durable_epoch = 0;

  // --- state-device GC (snapshot GC / LSM compaction) ---
  std::uint64_t snapshot_gc_runs = 0;
  std::uint64_t snapshot_bytes_reclaimed = 0;

  // --- recovery decode path ---
  /// Journal-replay payload decodes served from the hoisted scratch buffer
  /// without a fresh allocation (the recovery mirror of the encode-path
  /// scratch reuse).
  std::uint64_t decode_buffer_reuses = 0;

  // --- block cache (scan cache + LSM run cache; see block_cache.hpp) ---
  std::uint64_t block_cache_hits = 0;
  std::uint64_t block_cache_misses = 0;
  std::uint64_t block_cache_evictions = 0;
  /// Bytes currently charged against the cache budget(s).
  std::uint64_t block_cache_bytes = 0;

  // --- adaptive sync controller (SyncMode::kAdaptive) ---
  std::uint64_t adaptive_raises = 0;  ///< Watermark-raise steps taken.
  std::uint64_t adaptive_drops = 0;   ///< Watermark-drop steps taken.
  /// The controller's current effective bytes watermark (unpressured).
  std::uint64_t adaptive_watermark_bytes = 0;
  /// SCRAM pressure transitions from off to on.
  std::uint64_t pressure_engagements = 0;
  /// Watermark syncs triggered only because pressure lowered the bar.
  std::uint64_t pressure_syncs = 0;

  // --- LSM engine ---
  std::uint64_t lsm_runs_flushed = 0;  ///< Delta runs appended.
  std::uint64_t lsm_compactions = 0;   ///< Run-merge compactions completed.
  /// Runs a key probe skipped on min/max key bounds without decoding.
  std::uint64_t lsm_bounds_skips = 0;

  // --- journal shipping (JournalShipper over this engine) ---
  std::uint64_t ship_batches = 0;
  std::uint64_t shipped_bytes = 0;
  /// Synced journal bytes a shipped replica has not yet received, as of the
  /// last batch produced (the warm-start catch-up debt), and its high-water
  /// mark.
  std::uint64_t ship_lag_bytes = 0;
  std::uint64_t max_ship_lag_bytes = 0;
  /// Replica cursors invalidated (lagged past the retained generation, or
  /// a lossy recovery destroyed shipped bytes): each costs a full copy.
  std::uint64_t ship_fallbacks = 0;
  /// Replicas rebased across a compaction without a full copy.
  std::uint64_t ship_rebases = 0;
};

/// What recovery found and did.
struct RecoveryReport {
  bool used_snapshot = false;
  std::uint64_t snapshot_epoch = 0;
  std::uint64_t records_applied = 0;   ///< Journal records replayed.
  std::uint64_t records_skipped = 0;   ///< Already covered by the snapshot.
  std::uint64_t last_epoch = 0;        ///< Epoch of the recovered store.
  bool journal_truncated = false;      ///< A torn/corrupt tail was found.
  std::uint64_t valid_bytes = 0;       ///< Journal prefix that was trusted.
  std::string note;                    ///< Scanner's reason, when truncated.
};

/// Pure recovery from already-performed device scans: rebuilds `out` from
/// the state scan's last valid image plus the journal's valid commit prefix.
/// `out` must be empty of committed state (reset_committed() first).
[[nodiscard]] RecoveryReport recover_from_scans(const SnapshotScan& snap,
                                                const ScanResult& scan,
                                                StableStorage& out);

/// Convenience wrapper that scans both devices itself (WAL format).
[[nodiscard]] RecoveryReport recover_store(const JournalBackend& snapshots,
                                           const JournalBackend& journal,
                                           StableStorage& out);

/// Frozen image of a StorageEngine: forked devices (durable image,
/// buffered tail, and armed fault hooks included) plus every piece of
/// engine bookkeeping. Move-only; a checkpoint can be restored any number
/// of times because restore re-forks the devices instead of consuming them.
struct EngineCheckpoint {
  std::unique_ptr<JournalBackend> journal;
  std::unique_ptr<JournalBackend> snapshots;
  DurabilityStats stats;
  KeyInterner interner;
  std::uint64_t appended_epoch = 0;
  std::uint64_t journal_generation = 0;
  std::vector<std::uint8_t> retained_tail;
  bool rebase_ok = true;
  std::uint64_t rebase_epoch = 0;
  std::uint64_t ship_horizon = 0;
  /// Adaptive controller state (fixed-point watermark + SCRAM pressure) and
  /// the LSM delta-flush boundary — restored exactly so a forked mission
  /// retunes and re-flushes identically to the original.
  std::uint64_t adaptive_watermark_fp = 0;
  bool reconfig_pressure = false;
  Cycle state_flush_cycle = 0;

  /// Spills both forked devices' byte images (the checkpoint's dominant
  /// mass) to CRC-guarded arena regions; memory devices only — file-backed
  /// devices don't fork and never reach a checkpoint. The devices hydrate
  /// transparently on the next access/restore. Returns bytes spilled.
  std::uint64_t spill_devices(storage::MappedArena& arena);
};

/// Abstract storage engine. Owns the journal device and the state device
/// plus all shared bookkeeping; concrete engines supply the state-device
/// format through the protected virtuals at the bottom.
class StorageEngine {
 public:
  virtual ~StorageEngine() = default;

  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  [[nodiscard]] virtual EngineKind kind() const = 0;

  /// Journals the staged batch `store` is about to commit at `cycle`, and
  /// syncs if the policy's watermark is reached.
  /// Call immediately before store.commit(cycle).
  void record_commit(const StableStorage& store, Cycle cycle);

  /// State-image cadence hook; call right after store.commit().
  void after_commit(const StableStorage& store);

  /// Boundary sync: flushes any un-synced journal tail now. Used at halt
  /// boundaries (a reconfiguration directive is about to take effect) so
  /// group commit never weakens the fail-stop contract. No-op when the lag
  /// is already zero. Returns false on a device sync failure (the lag then
  /// persists and the next sync retries).
  bool sync_now();

  /// Forces a state image now (full snapshot / LSM delta run) and compacts
  /// the journal behind it. Returns false when the image could not be made
  /// durable (sync failure) — the journal is then left uncompacted.
  bool take_snapshot(const StableStorage& store);

  /// Device side of a fail-stop halt: unsynced bytes are lost.
  void crash();

  /// Rebuilds `out` from the state device + journal replay, then truncates
  /// any untrusted journal tail so appends can resume after the last good
  /// record. `out` is cleared of committed state first; its pending buffer
  /// and history configuration are left alone.
  RecoveryReport recover_into(StableStorage& out);

  /// True when the devices hold any durable state worth recovering.
  [[nodiscard]] bool has_state() const;

  /// Freezes the engine — forked devices plus all bookkeeping — into a
  /// checkpoint restorable many times over. Precondition: both devices are
  /// forkable (memory/arena devices; FileBackend is not).
  [[nodiscard]] EngineCheckpoint checkpoint_state() const;
  /// Rewinds this engine to `cp` in place. The engine object's identity is
  /// preserved deliberately: shippers and units hold references to it.
  void restore_state(const EngineCheckpoint& cp);

  /// SCRAM reconfiguration pressure: while on, a kAdaptive policy's
  /// effective watermark drops to its floor so directives become durable
  /// with minimal lag. Static policies are unaffected — their lag contract
  /// is already settled by the halt-boundary sync_now(). Deterministic:
  /// the System asserts pressure from the reconfiguration plan, never from
  /// wall-clock state.
  void set_reconfig_pressure(bool on);
  [[nodiscard]] bool reconfig_pressure() const { return reconfig_pressure_; }
  /// The adaptive controller's fixed-point watermark (8 fractional bits);
  /// checkpointed and digested so replays stay bit-exact.
  [[nodiscard]] std::uint64_t adaptive_watermark_fp() const {
    return adaptive_watermark_fp_;
  }
  /// Newest committed_at cycle the state device has absorbed (LSM delta
  /// boundary; 0 on the WAL-family engines).
  [[nodiscard]] Cycle state_flush_cycle() const { return state_flush_cycle_; }

  [[nodiscard]] const DurabilityStats& stats() const { return stats_; }
  [[nodiscard]] const DurableOptions& options() const { return options_; }
  [[nodiscard]] JournalBackend& journal() { return *journal_; }
  [[nodiscard]] JournalBackend& snapshots() { return *snapshots_; }

  // --- journal-shipping support ---

  /// Monotone generation counter of the journal's byte space. Bumped when
  /// compaction discards the journal (take_snapshot) and when a lossy
  /// recovery truncates bytes a shipper may already have served — a ship
  /// cursor is only meaningful within one generation.
  [[nodiscard]] std::uint64_t journal_generation() const {
    return journal_generation_;
  }
  /// Synced bytes of the previous generation, retained at compaction so
  /// replicas that lag one compaction can still catch up instead of
  /// falling back to a full copy.
  [[nodiscard]] const std::vector<std::uint8_t>& retained_tail() const {
    return retained_tail_;
  }
  /// True when a replica that consumed the whole previous generation may
  /// rebase onto the current one (the retained bytes cover everything the
  /// compacting snapshot image covered; false when the pre-image sync
  /// failed and un-shipped records went straight into the image).
  [[nodiscard]] bool rebase_ok() const { return rebase_ok_; }
  /// Epoch a rebasing replica adopts: the compacting image's epoch.
  [[nodiscard]] std::uint64_t rebase_epoch() const { return rebase_epoch_; }
  /// The journal's current key dictionary — part of the state a full-copy
  /// reseed transfers (later records reference ids announced before it).
  [[nodiscard]] const std::vector<std::string>& dictionary() const {
    return interner_.entries();
  }

  /// Shipping accounting, called by JournalShipper per batch: bytes put on
  /// the wire, synced bytes still owed, and (for current-generation
  /// batches; 0 otherwise) the end offset shipped up to — the horizon a
  /// lossy recovery checks cursors against.
  void note_ship(std::uint64_t bytes, std::uint64_t lag,
                 std::uint64_t horizon);
  void note_ship_fallback() { ++stats_.ship_fallbacks; }
  void note_ship_rebase() { ++stats_.ship_rebases; }

 protected:
  /// `default_cache_bytes` applies when options.block_cache_bytes is 0 —
  /// the engine's own notion of whether a cache is worth having.
  StorageEngine(std::unique_ptr<JournalBackend> journal,
                std::unique_ptr<JournalBackend> snapshots,
                DurableOptions options, std::uint64_t default_cache_bytes);

  // --- the state-device contract concrete engines implement ---

  /// Appends a durable image of the committed store to the state device and
  /// syncs it. False on failure (the base counts it and aborts the
  /// snapshot; the journal stays uncompacted).
  virtual bool persist_state(const StableStorage& store) = 0;
  /// Reclaims superseded state (snapshot GC / run compaction). Runs after a
  /// successful persist, before journal compaction, so a failed rewrite
  /// never orphans journal state.
  virtual void gc_state() = 0;
  /// Scans the state device into the shared SnapshotScan shape: `last` is
  /// the newest recoverable image (for LSM, the newest-wins merge of the
  /// valid run set), `valid_bytes`/`truncated` describe the trustworthy
  /// prefix so the base can truncate damage.
  virtual SnapshotScan scan_state() = 0;
  /// Post-recovery hook (e.g. the LSM engine re-derives its delta-flush
  /// boundary from the merged run set). Default: nothing.
  virtual void after_recover(const SnapshotScan& snap,
                             const RecoveryReport& report);

  /// Scans the journal through the scan cache when one is enabled: the scan
  /// is content-addressed by (size, byte fingerprint), so an unchanged
  /// journal replays from decoded memory instead of re-decoding. Falls back
  /// to a direct scan (with the hoisted decode scratch) otherwise.
  [[nodiscard]] ScanResult scan_journal_cached();

  /// The effective block-cache budget after defaulting (0 = disabled).
  [[nodiscard]] std::uint64_t cache_budget() const { return cache_budget_; }

  /// Recomputes DurabilityStats::block_cache_bytes from every cache the
  /// engine holds: the base scan cache plus whatever derived engines report
  /// through extra_cache_charge().
  void refresh_cache_charge();
  [[nodiscard]] virtual std::uint64_t extra_cache_charge() const { return 0; }

  std::unique_ptr<JournalBackend> journal_;
  std::unique_ptr<JournalBackend> snapshots_;  ///< The state device.
  DurableOptions options_;
  DurabilityStats stats_;
  /// LSM delta boundary: committed_at cycles ≤ this are already on the
  /// state device. Maintained by the LSM engine, checkpointed for all.
  Cycle state_flush_cycle_ = 0;

 private:
  [[nodiscard]] bool watermark_reached() const;
  /// The kAdaptive effective bytes watermark right now (pressure applied).
  [[nodiscard]] std::uint64_t adaptive_effective_bytes() const;
  /// Retunes the fixed-point watermark from the bytes this sync flushed.
  void tune_adaptive(std::uint64_t flushed_bytes);
  /// Syncs the journal and settles the lag counters. Shared by the policy
  /// path, sync_now(), and the snapshot boundary.
  bool do_sync();

  std::vector<std::uint8_t> scratch_;  ///< Reused record encode buffer.
  /// Reused journal-replay payload buffer (the decode mirror of scratch_);
  /// reuse is counted in DurabilityStats::decode_buffer_reuses.
  std::vector<std::uint8_t> decode_scratch_;
  KeyInterner interner_;               ///< Journal key dictionary (writer).
  /// Epoch of the newest record appended to the journal; becomes
  /// last_durable_epoch when the tail syncs.
  std::uint64_t appended_epoch_ = 0;

  // --- adaptive sync controller ---
  std::uint64_t cache_budget_ = 0;
  std::uint64_t adaptive_watermark_fp_ = 0;
  bool reconfig_pressure_ = false;

  /// Decoded-journal-scan cache; engaged when cache_budget_ > 0.
  std::unique_ptr<BlockCache<ScanResult>> scan_cache_;

  // --- journal-shipping state (see the accessors above) ---
  std::uint64_t journal_generation_ = 0;
  std::vector<std::uint8_t> retained_tail_;
  bool rebase_ok_ = true;
  std::uint64_t rebase_epoch_ = 0;
  /// Highest current-generation end offset ever handed to a shipper; a
  /// recovery that truncates below it must start a new generation, because
  /// replicas may hold bytes the journal no longer agrees with.
  std::uint64_t ship_horizon_ = kHeaderSize;
};

/// The historical name: every owner (processors, shippers, replicas) holds
/// engines through this alias, so the refactor to an abstract base changed
/// no owning code.
using DurabilityEngine = StorageEngine;

/// Engine factory on fresh simulated devices (sim processors, standbys,
/// quorum members): builds the engine `options.engine` selects —
/// memory-backed for WAL/LSM, arena-backed for mmap. The name predates the
/// engine split and is kept because every creation site funnels through it.
[[nodiscard]] std::unique_ptr<DurabilityEngine> make_memory_engine(
    DurableOptions options = {});

/// Fixed-point scale of the adaptive watermark (8 fractional bits).
inline constexpr std::uint32_t kAdaptiveFracBits = 8;
/// Modeled fixed cost of one sync, in byte-equivalents: the controller
/// steers flushed-bytes-per-sync into [kAdaptiveGain, 4·kAdaptiveGain]
/// times this, i.e. it keeps sync overhead a small fixed fraction of the
/// bytes it amortizes.
inline constexpr std::uint64_t kAdaptiveSyncCostBytes = 4096;
inline constexpr std::uint64_t kAdaptiveGain = 16;

}  // namespace arfs::storage::durable
