// Durability engine: the persistence layer behind a StableStorage.
//
// Protocol per frame (write-ahead rule):
//
//   1. record_commit() encodes the staged batch as one journal record and,
//      under the default policy, syncs it — the commit exists on the device
//      before it exists in memory;
//   2. the caller applies StableStorage::commit();
//   3. after_commit() takes a snapshot every `snapshot_every_epochs`
//      commits, and compacts the journal once the image is durably synced.
//
// On a fail-stop halt the owner calls crash() (the device loses its
// unsynced tail, exactly like the processor loses volatile storage) and
// then recover_into(): scan the snapshot device for the last valid image,
// replay journal records with later epochs, truncate at the first torn or
// corrupt record, and physically discard the untrusted tail so journaling
// can resume. The recovered store is the disk-level "last successfully
// completed instruction" state of paper §5.1 — what peers polling the
// failed processor are entitled to see.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arfs/common/types.hpp"
#include "arfs/storage/durable/backend.hpp"
#include "arfs/storage/stable_storage.hpp"

namespace arfs::storage::durable {

struct DurableOptions {
  /// Take a full snapshot every N commit epochs; 0 disables automatic
  /// snapshots (recovery then replays the whole journal).
  std::uint64_t snapshot_every_epochs = 0;
  /// Sync the journal inside every record_commit(). When false the journal
  /// is group-committed: records accumulate in the device buffer and only
  /// snapshots sync, trading durability lag for append throughput.
  bool sync_each_commit = true;
};

struct DurabilityStats {
  std::uint64_t commits_journaled = 0;
  std::uint64_t bytes_appended = 0;
  std::uint64_t syncs = 0;
  std::uint64_t sync_failures = 0;
  std::uint64_t snapshots_taken = 0;
  std::uint64_t snapshot_failures = 0;
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  /// Commits not journaled because the device header was found destroyed
  /// (journaling suspends until recovery re-initializes the device).
  std::uint64_t header_faults = 0;
};

/// What recovery found and did.
struct RecoveryReport {
  bool used_snapshot = false;
  std::uint64_t snapshot_epoch = 0;
  std::uint64_t records_applied = 0;   ///< Journal records replayed.
  std::uint64_t records_skipped = 0;   ///< Already covered by the snapshot.
  std::uint64_t last_epoch = 0;        ///< Epoch of the recovered store.
  bool journal_truncated = false;      ///< A torn/corrupt tail was found.
  std::uint64_t valid_bytes = 0;       ///< Journal prefix that was trusted.
  std::string note;                    ///< Scanner's reason, when truncated.
};

/// Pure recovery: rebuilds `out` from the devices without mutating them.
/// `out` must be empty of committed state (reset_committed() first).
[[nodiscard]] RecoveryReport recover_store(const JournalBackend& snapshots,
                                           const JournalBackend& journal,
                                           StableStorage& out);

class DurabilityEngine {
 public:
  DurabilityEngine(std::unique_ptr<JournalBackend> journal,
                   std::unique_ptr<JournalBackend> snapshots,
                   DurableOptions options = {});

  /// Journals the staged batch `store` is about to commit at `cycle`.
  /// Call immediately before store.commit(cycle).
  void record_commit(const StableStorage& store, Cycle cycle);

  /// Snapshot policy hook; call right after store.commit().
  void after_commit(const StableStorage& store);

  /// Forces a full image now. Returns false when the image could not be
  /// made durable (sync failure) — the journal is then left uncompacted.
  bool take_snapshot(const StableStorage& store);

  /// Device side of a fail-stop halt: unsynced bytes are lost.
  void crash();

  /// Rebuilds `out` from snapshot + journal replay, then truncates any
  /// untrusted journal tail so appends can resume after the last good
  /// record. `out` is cleared of committed state first; its pending buffer
  /// and history configuration are left alone.
  RecoveryReport recover_into(StableStorage& out);

  /// True when the devices hold any durable state worth recovering.
  [[nodiscard]] bool has_state() const;

  [[nodiscard]] const DurabilityStats& stats() const { return stats_; }
  [[nodiscard]] const DurableOptions& options() const { return options_; }
  [[nodiscard]] JournalBackend& journal() { return *journal_; }
  [[nodiscard]] JournalBackend& snapshots() { return *snapshots_; }

 private:
  std::unique_ptr<JournalBackend> journal_;
  std::unique_ptr<JournalBackend> snapshots_;
  DurableOptions options_;
  DurabilityStats stats_;
  std::vector<std::uint8_t> scratch_;  ///< Reused record encode buffer.
};

/// Convenience: an engine on fresh in-memory devices (sim processors).
[[nodiscard]] std::unique_ptr<DurabilityEngine> make_memory_engine(
    DurableOptions options = {});

}  // namespace arfs::storage::durable
