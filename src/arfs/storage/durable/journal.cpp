#include "arfs/storage/durable/journal.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "arfs/storage/durable/wire.hpp"

namespace arfs::storage::durable {

std::uint32_t KeyInterner::intern(const std::string& key) {
  const auto it = std::lower_bound(
      index_.begin(), index_.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  if (it != index_.end() && it->first == key) return it->second;
  const auto id = static_cast<std::uint32_t>(keys_.size());
  keys_.push_back(key);
  fresh_.push_back(key);
  index_.insert(it, {key, id});
  return id;
}

void KeyInterner::adopt(const std::vector<std::string>& keys) {
  reset();
  keys_ = keys;
  index_.reserve(keys_.size());
  for (std::uint32_t id = 0; id < keys_.size(); ++id) {
    index_.emplace_back(keys_[id], id);
  }
  std::sort(index_.begin(), index_.end());
}

void KeyInterner::reset() {
  keys_.clear();
  index_.clear();
  fresh_.clear();
}

bool ensure_header(JournalBackend& backend) {
  if (backend.size() == 0) {
    backend.append(kJournalMagic, sizeof kJournalMagic);
    return true;
  }
  std::uint8_t magic[8] = {};
  if (backend.read(0, magic, sizeof magic) != sizeof magic) return false;
  return std::memcmp(magic, kJournalMagic, sizeof magic) == 0;
}

namespace {

/// Reserves an 8-byte [len][crc] envelope at the end of `out` and returns
/// its position; close_envelope() back-patches it once the payload follows.
std::size_t open_envelope(std::vector<std::uint8_t>& out) {
  const std::size_t env = out.size();
  out.resize(env + 8);
  return env;
}

void close_envelope(std::vector<std::uint8_t>& out, std::size_t env) {
  const std::size_t payload = env + 8;
  const auto len = static_cast<std::uint32_t>(out.size() - payload);
  patch_u32(out, env, len);
  patch_u32(out, env + 4, crc32(out.data() + payload, len));
}

}  // namespace

void encode_commit(std::vector<std::uint8_t>& out, KeyInterner& dict,
                   std::uint64_t epoch, Cycle cycle,
                   const std::vector<std::pair<std::string, Value>>& entries) {
  // Intern every key first so one dictionary record covers the whole commit.
  const std::uint32_t first_fresh =
      static_cast<std::uint32_t>(dict.size() - dict.fresh().size());
  for (const auto& [key, value] : entries) {
    (void)dict.intern(key);
  }
  if (!dict.fresh().empty()) {
    const std::size_t env = open_envelope(out);
    put_u8(out, kRecordDict);
    put_varint(out, first_fresh);
    put_varint(out, dict.fresh().size());
    for (const auto& key : dict.fresh()) put_string(out, key);
    close_envelope(out, env);
    dict.take_fresh();
  }
  const std::size_t env = open_envelope(out);
  put_u8(out, kRecordCommit);
  put_u64(out, epoch);
  put_u64(out, cycle);
  put_u32(out, static_cast<std::uint32_t>(entries.size()));
  for (const auto& [key, value] : entries) {
    put_varint(out, dict.intern(key));
    put_value(out, value);
  }
  close_envelope(out, env);
}

namespace {

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

}  // namespace

ScanResult scan_journal(const JournalBackend& backend) {
  std::vector<std::uint8_t> payload;
  return scan_journal(backend, payload, nullptr);
}

ScanResult scan_journal(const JournalBackend& backend,
                        std::vector<std::uint8_t>& scratch, ScanStats* stats) {
  ScanResult result;
  std::vector<std::uint8_t>& payload = scratch;
  const std::uint64_t total = backend.size();
  if (total == 0) {
    // A never-written device is a valid empty journal.
    result.header_ok = true;
    result.valid_bytes = 0;
    return result;
  }
  std::uint8_t magic[8] = {};
  if (backend.read(0, magic, sizeof magic) != sizeof magic ||
      std::memcmp(magic, kJournalMagic, sizeof magic) != 0) {
    result.reason = "bad or short journal header";
    result.truncated = true;
    return result;
  }
  result.header_ok = true;
  result.valid_bytes = kHeaderSize;

  std::uint64_t offset = kHeaderSize;
  std::uint64_t last_epoch = 0;
  while (offset < total) {
    std::uint8_t envelope[8] = {};
    if (backend.read(offset, envelope, sizeof envelope) != sizeof envelope) {
      result.truncated = true;
      result.reason = "torn record envelope";
      break;
    }
    const std::uint32_t len = get_u32(envelope);
    const std::uint32_t crc = get_u32(envelope + 4);
    if (len > kMaxPayload) {
      result.truncated = true;
      result.reason = "implausible record length (corrupt length prefix)";
      break;
    }
    if (stats != nullptr) {
      // Reuse = the read fits the scratch buffer's existing capacity, so
      // resize() below touches no allocator (mirror of the encode-path
      // scratch accounting).
      if (len <= payload.capacity()) {
        ++stats->payload_reuses;
      } else {
        ++stats->payload_allocs;
      }
    }
    payload.resize(len);
    if (backend.read(offset + 8, payload.data(), len) != len) {
      result.truncated = true;
      result.reason = "torn record payload";
      break;
    }
    if (crc32(payload.data(), len) != crc) {
      result.truncated = true;
      result.reason = "record CRC mismatch";
      break;
    }
    ByteReader reader(payload.data(), len);
    const std::uint8_t kind = reader.u8();
    if (kind == kRecordDict) {
      const std::uint64_t first_id = reader.varint();
      const std::uint64_t count = reader.varint();
      // Ids must extend the dictionary contiguously; anything else means the
      // record belongs to a different journal generation.
      if (!reader.ok() || first_id != result.dict.size() ||
          count > kMaxPayload) {
        result.truncated = true;
        result.reason = "malformed dictionary record";
        break;
      }
      for (std::uint64_t i = 0; i < count && reader.ok(); ++i) {
        result.dict.push_back(reader.string());
      }
      if (!reader.exhausted()) {
        result.truncated = true;
        result.reason = "malformed dictionary record";
        break;
      }
      result.dict_records.push_back(
          DictRecordInfo{offset, static_cast<std::uint32_t>(first_id),
                         static_cast<std::uint32_t>(count)});
    } else if (kind == kRecordCommit) {
      JournalRecord record;
      record.offset = offset;
      record.epoch = reader.u64();
      record.cycle = reader.u64();
      const std::uint32_t n = reader.u32();
      record.entries.reserve(n);
      record.entry_ids.reserve(n);
      bool bad_id = false;
      for (std::uint32_t i = 0; i < n && reader.ok(); ++i) {
        const std::uint64_t id = reader.varint();
        if (id >= result.dict.size()) {
          bad_id = true;
          break;
        }
        Value value = reader.value();
        record.entries.emplace_back(result.dict[id], std::move(value));
        record.entry_ids.push_back(static_cast<std::uint32_t>(id));
      }
      if (bad_id || !reader.exhausted()) {
        result.truncated = true;
        result.reason = bad_id ? "commit references unknown key id"
                               : "malformed record payload";
        break;
      }
      if (record.epoch <= last_epoch) {
        result.truncated = true;
        result.reason = "non-monotone commit epoch";
        break;
      }
      last_epoch = record.epoch;
      result.records.push_back(std::move(record));
    } else {
      result.truncated = true;
      result.reason = "unknown record kind";
      break;
    }
    offset += 8 + len;
    result.valid_bytes = offset;
  }
  return result;
}

std::string to_string(const JournalRecord& record) {
  std::ostringstream os;
  os << "@" << record.offset << " epoch " << record.epoch << " cycle "
     << record.cycle << " (" << record.entries.size() << " keys)";
  for (const auto& [key, value] : record.entries) {
    os << "\n    " << key << " = " << storage::to_string(value) << " ["
       << type_name(value) << "]";
  }
  return os.str();
}

}  // namespace arfs::storage::durable
