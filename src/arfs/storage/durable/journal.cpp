#include "arfs/storage/durable/journal.hpp"

#include <cstring>
#include <sstream>

#include "arfs/storage/durable/wire.hpp"

namespace arfs::storage::durable {

bool ensure_header(JournalBackend& backend) {
  if (backend.size() == 0) {
    backend.append(kJournalMagic, sizeof kJournalMagic);
    return true;
  }
  std::uint8_t magic[8] = {};
  if (backend.read(0, magic, sizeof magic) != sizeof magic) return false;
  return std::memcmp(magic, kJournalMagic, sizeof magic) == 0;
}

void encode_record(std::vector<std::uint8_t>& out, std::uint64_t epoch,
                   Cycle cycle,
                   const std::vector<std::pair<std::string, Value>>& entries) {
  std::vector<std::uint8_t> payload;
  put_u64(payload, epoch);
  put_u64(payload, cycle);
  put_u32(payload, static_cast<std::uint32_t>(entries.size()));
  for (const auto& [key, value] : entries) {
    put_string(payload, key);
    put_value(payload, value);
  }
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

namespace {

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

}  // namespace

ScanResult scan_journal(const JournalBackend& backend) {
  ScanResult result;
  const std::uint64_t total = backend.size();
  if (total == 0) {
    // A never-written device is a valid empty journal.
    result.header_ok = true;
    result.valid_bytes = 0;
    return result;
  }
  std::uint8_t magic[8] = {};
  if (backend.read(0, magic, sizeof magic) != sizeof magic ||
      std::memcmp(magic, kJournalMagic, sizeof magic) != 0) {
    result.reason = "bad or short journal header";
    result.truncated = true;
    return result;
  }
  result.header_ok = true;
  result.valid_bytes = kHeaderSize;

  std::uint64_t offset = kHeaderSize;
  std::uint64_t last_epoch = 0;
  std::vector<std::uint8_t> payload;
  while (offset < total) {
    std::uint8_t envelope[8] = {};
    if (backend.read(offset, envelope, sizeof envelope) != sizeof envelope) {
      result.truncated = true;
      result.reason = "torn record envelope";
      break;
    }
    const std::uint32_t len = get_u32(envelope);
    const std::uint32_t crc = get_u32(envelope + 4);
    if (len > kMaxPayload) {
      result.truncated = true;
      result.reason = "implausible record length (corrupt length prefix)";
      break;
    }
    payload.resize(len);
    if (backend.read(offset + 8, payload.data(), len) != len) {
      result.truncated = true;
      result.reason = "torn record payload";
      break;
    }
    if (crc32(payload.data(), len) != crc) {
      result.truncated = true;
      result.reason = "record CRC mismatch";
      break;
    }
    ByteReader reader(payload.data(), len);
    JournalRecord record;
    record.offset = offset;
    record.epoch = reader.u64();
    record.cycle = reader.u64();
    const std::uint32_t n = reader.u32();
    record.entries.reserve(n);
    for (std::uint32_t i = 0; i < n && reader.ok(); ++i) {
      std::string key = reader.string();
      Value value = reader.value();
      record.entries.emplace_back(std::move(key), std::move(value));
    }
    if (!reader.exhausted()) {
      result.truncated = true;
      result.reason = "malformed record payload";
      break;
    }
    if (record.epoch <= last_epoch) {
      result.truncated = true;
      result.reason = "non-monotone commit epoch";
      break;
    }
    last_epoch = record.epoch;
    offset += 8 + len;
    result.valid_bytes = offset;
    result.records.push_back(std::move(record));
  }
  return result;
}

std::string to_string(const JournalRecord& record) {
  std::ostringstream os;
  os << "@" << record.offset << " epoch " << record.epoch << " cycle "
     << record.cycle << " (" << record.entries.size() << " keys)";
  for (const auto& [key, value] : record.entries) {
    os << "\n    " << key << " = " << storage::to_string(value) << " ["
       << type_name(value) << "]";
  }
  return os.str();
}

}  // namespace arfs::storage::durable
