#include "arfs/storage/durable/wal_snapshot.hpp"

#include <utility>
#include <vector>

namespace arfs::storage::durable {

namespace {

/// GC keeps this many newest images: the current one, plus its predecessor
/// so recovery can fall back when the current image's sync failed and a
/// crash tore it (the journal is uncompacted in exactly that case).
constexpr std::size_t kGcKeepImages = 2;

}  // namespace

WalSnapshotEngine::WalSnapshotEngine(std::unique_ptr<JournalBackend> journal,
                                     std::unique_ptr<JournalBackend> snapshots,
                                     DurableOptions options)
    : StorageEngine(std::move(journal), std::move(snapshots),
                    std::move(options), /*default_cache_bytes=*/0) {}

bool WalSnapshotEngine::persist_state(const StableStorage& store) {
  if (!append_snapshot(*snapshots_, store.commit_epochs(),
                       store.committed_entries())) {
    return false;
  }
  return snapshots_->sync();
}

SnapshotScan WalSnapshotEngine::scan_state() {
  return scan_snapshots(*snapshots_);
}

void WalSnapshotEngine::gc_state() {
  const SnapshotScan snap = scan_snapshots(*snapshots_);
  if (snap.truncated || snap.images <= kGcKeepImages) return;
  const std::uint64_t keep_from =
      snap.image_offsets[snap.images - kGcKeepImages];
  // Copy the whole image tail out so a failed rewrite can be rolled back.
  std::vector<std::uint8_t> tail(
      static_cast<std::size_t>(snap.valid_bytes - kHeaderSize));
  if (snapshots_->read(kHeaderSize, tail.data(), tail.size()) != tail.size()) {
    return;  // device refused the read; leave it alone
  }
  const auto keep_offset = static_cast<std::size_t>(keep_from - kHeaderSize);
  snapshots_->truncate(kHeaderSize);
  snapshots_->append(tail.data() + keep_offset, tail.size() - keep_offset);
  if (snapshots_->sync()) {
    ++stats_.snapshot_gc_runs;
    stats_.snapshot_bytes_reclaimed += keep_offset;
    return;
  }
  // Rewrite could not be made durable: restore the original device content
  // so the durable image set is no worse than before the GC attempt.
  ++stats_.snapshot_failures;
  snapshots_->truncate(kHeaderSize);
  snapshots_->append(tail.data(), tail.size());
  (void)snapshots_->sync();
}

}  // namespace arfs::storage::durable
