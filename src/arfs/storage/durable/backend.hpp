// Journal devices.
//
// The durable layer never touches a medium directly; it appends, syncs,
// reads, and truncates through a JournalBackend. Two implementations:
//
//  * MemoryBackend — a deterministic simulated device for tests, campaigns,
//    and batch runs. It models the write path honestly: append() lands in a
//    buffered (volatile) tail, sync() moves the tail to the durable image,
//    and crash() discards whatever was never synced — optionally tearing a
//    prefix of the tail onto the device first, which is exactly how a real
//    disk produces a torn final record. Fault hooks arm sync failures, torn
//    writes, and bit corruption so sim::FaultPlan can schedule I/O faults.
//
//  * FileBackend — real file I/O (user-space buffer flushed by write+fsync
//    on sync()) for arfsctl, benchmarks, and cold-restart recovery.
//
// A crash in the fail-stop sense destroys the *buffered* bytes only; the
// durable image is what peers (and the restarted processor) can still read —
// the device-level analogue of the paper's stable-storage assumption (§5.1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace arfs::storage {
class MappedArena;
}

namespace arfs::storage::durable {

class JournalBackend {
 public:
  virtual ~JournalBackend() = default;

  /// Logical size: durable image plus buffered (unsynced) tail.
  [[nodiscard]] virtual std::uint64_t size() const = 0;
  /// Bytes guaranteed to survive a crash.
  [[nodiscard]] virtual std::uint64_t synced_size() const = 0;

  /// Appends to the buffered tail; durable only after a successful sync().
  virtual void append(const std::uint8_t* data, std::size_t n) = 0;

  /// Flushes the buffered tail to the durable image. Returns false when the
  /// device reports a sync failure: the tail stays buffered (a later sync
  /// can still save it) but a crash in between loses it.
  [[nodiscard]] virtual bool sync() = 0;

  /// Reads up to `n` bytes at `offset` from the logical content (the
  /// writer's own view, buffered tail included). Returns bytes read.
  virtual std::size_t read(std::uint64_t offset, std::uint8_t* out,
                           std::size_t n) const = 0;

  /// Truncates the logical content to `new_size` (used to discard a torn
  /// tail before appending resumes, and to compact after a snapshot).
  virtual void truncate(std::uint64_t new_size) = 0;

  /// Simulates the device side of a fail-stop halt: the buffered tail is
  /// lost (after any armed tear deposits a prefix of it durably).
  virtual void crash() = 0;

  // --- fault-injection hooks; deterministic sim devices override these,
  //     real devices ignore them ---

  /// Arms the next sync() to fail once.
  virtual void fail_next_sync() {}
  /// Arms one sync failure `successes` successful syncs from now (0 is
  /// equivalent to fail_next_sync) — targets a specific sync in a
  /// multi-sync operation, e.g. the GC rewrite after an image sync.
  virtual void fail_sync_after(std::uint32_t successes) { (void)successes; }
  /// Arms the next crash() to keep `keep_bytes` of the buffered tail on the
  /// durable image — a torn write of the final record.
  virtual void tear_on_crash(std::size_t keep_bytes) { (void)keep_bytes; }
  /// Flips one bit of the durable image at a position derived
  /// deterministically from `seed` (a latent media fault).
  virtual void corrupt_bit(std::uint64_t seed) { (void)seed; }

  /// Deep copy of the device — durable image, buffered tail, and armed
  /// fault hooks — for whole-system checkpoints. Devices that cannot be
  /// duplicated (real files) return nullptr, which makes the owning engine
  /// un-checkpointable.
  [[nodiscard]] virtual std::unique_ptr<JournalBackend> fork() const {
    return nullptr;
  }
};

class MemoryBackend final : public JournalBackend {
 public:
  MemoryBackend() = default;
  /// A device pre-loaded with a durable image and buffered tail — how a
  /// non-memory device (ArenaBackend) forks its frozen byte image into a
  /// checkpointable clone. Fault hooks start disarmed; the cloning caller
  /// re-arms them through the public hook methods.
  MemoryBackend(std::vector<std::uint8_t> durable,
                std::vector<std::uint8_t> buffered);
  /// Copying (incl. fork()) hydrates a spilled source first: the copy is
  /// always a plain in-RAM device — spill state never aliases across
  /// backends (two owners of one arena region would double-release it).
  MemoryBackend(const MemoryBackend& other);
  MemoryBackend& operator=(const MemoryBackend& other);
  ~MemoryBackend() override = default;

  [[nodiscard]] std::uint64_t size() const override;
  [[nodiscard]] std::uint64_t synced_size() const override;
  void append(const std::uint8_t* data, std::size_t n) override;
  [[nodiscard]] bool sync() override;
  std::size_t read(std::uint64_t offset, std::uint8_t* out,
                   std::size_t n) const override;
  void truncate(std::uint64_t new_size) override;
  void crash() override;

  void fail_next_sync() override { sync_failures_armed_ += 1; }
  void fail_sync_after(std::uint32_t successes) override {
    delayed_failure_armed_ = true;
    delayed_failure_after_ = successes;
  }
  void tear_on_crash(std::size_t keep_bytes) override;
  void corrupt_bit(std::uint64_t seed) override;

  [[nodiscard]] std::uint64_t sync_count() const { return syncs_; }

  [[nodiscard]] std::unique_ptr<JournalBackend> fork() const override {
    return std::make_unique<MemoryBackend>(*this);
  }

  /// Moves the durable image and buffered tail into one sealed, CRC-guarded
  /// region of `arena`, freeing the heap bytes — the cold-checkpoint spill
  /// path. The device stays fully usable: any access (and any copy/fork)
  /// hydrates it back transparently. Returns the payload bytes spilled
  /// (0 when empty or already spilled). `arena` must outlive the backend
  /// or its next hydration, whichever comes first.
  std::uint64_t spill(storage::MappedArena& arena);
  [[nodiscard]] bool spilled() const { return spill_arena_ != nullptr; }
  /// Hydrations this device performed (spill round-trips survived).
  [[nodiscard]] std::uint64_t hydrations() const { return hydrations_; }

 private:
  /// Reads the spilled region back (CRC-verified), releases it, and
  /// restores the in-RAM vectors. No-op when not spilled.
  void hydrate() const;

  mutable std::vector<std::uint8_t> durable_;
  mutable std::vector<std::uint8_t> buffered_;
  mutable storage::MappedArena* spill_arena_ = nullptr;
  mutable std::uint64_t spill_region_ = 0;
  /// Sizes while spilled, so size()/synced_size() stay O(1) without
  /// faulting the bytes back in.
  mutable std::uint64_t spilled_durable_ = 0;
  mutable std::uint64_t spilled_buffered_ = 0;
  mutable std::uint64_t hydrations_ = 0;
  std::uint64_t syncs_ = 0;
  std::uint32_t sync_failures_armed_ = 0;
  bool delayed_failure_armed_ = false;
  std::uint32_t delayed_failure_after_ = 0;
  bool tear_armed_ = false;
  std::size_t tear_keep_ = 0;
};

class FileBackend final : public JournalBackend {
 public:
  /// Opens (and with `create`, creates) the file. Throws arfs::Error when the
  /// file cannot be opened.
  explicit FileBackend(const std::string& path, bool create = true);
  ~FileBackend() override;

  FileBackend(const FileBackend&) = delete;
  FileBackend& operator=(const FileBackend&) = delete;

  [[nodiscard]] std::uint64_t size() const override;
  [[nodiscard]] std::uint64_t synced_size() const override { return durable_size_; }
  void append(const std::uint8_t* data, std::size_t n) override;
  [[nodiscard]] bool sync() override;
  std::size_t read(std::uint64_t offset, std::uint8_t* out,
                   std::size_t n) const override;
  void truncate(std::uint64_t new_size) override;
  void crash() override;  // drops the user-space buffer only

  [[nodiscard]] const std::string& path() const { return path_; }

  /// Test seams (null in production): stand-ins for ::fsync / ::pwrite so a
  /// unit test can inject EINTR deterministically instead of racing a real
  /// signal against the kernel. sync() must retry EINTR from either —
  /// a signal landing mid-sync is not an I/O error.
  static int (*fsync_hook)(int fd);
  static long (*pwrite_hook)(int fd, const void* buf, std::size_t n,
                             std::int64_t offset);

 private:
  std::string path_;
  int fd_ = -1;
  std::uint64_t durable_size_ = 0;
  std::vector<std::uint8_t> buffered_;
};

}  // namespace arfs::storage::durable
