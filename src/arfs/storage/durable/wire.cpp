#include "arfs/storage/durable/wire.hpp"

#include <array>
#include <bit>

namespace arfs::storage::durable {

namespace {

// Sixteen CRC tables for slicing-by-16. Table 0 is the classic bytewise
// table for polynomial 0xEDB88320; table t maps a byte that is t positions
// deeper in the input, so sixteen lookups advance the CRC over sixteen
// bytes at once (the wider slice roughly doubles throughput over
// slicing-by-8 — it matters for arena chunk seals and journal scans, which
// CRC megabytes per sweep).
constexpr std::array<std::array<std::uint32_t, 256>, 16> make_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 16> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::size_t t = 1; t < 16; ++t) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = tables[t - 1][i];
      tables[t][i] = (prev >> 8) ^ tables[0][prev & 0xFFu];
    }
  }
  return tables;
}

constexpr std::array<std::array<std::uint32_t, 256>, 16> kCrcTables =
    make_crc_tables();

/// Little-endian 32-bit load composed bytewise: independent of host
/// endianness and alignment.
inline std::uint32_t load_word(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | std::uint32_t{p[1]} << 8 |
         std::uint32_t{p[2]} << 16 | std::uint32_t{p[3]} << 24;
}

enum : std::uint8_t { kTagBool = 0, kTagInt64 = 1, kTagDouble = 2,
                      kTagString = 3 };

}  // namespace

std::uint32_t crc32_bytewise(const std::uint8_t* data, std::size_t n) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = kCrcTables[0][(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  std::uint32_t c = 0xFFFFFFFFu;
  // Main loop: fold the running CRC into the first four bytes of each
  // 16-byte block, then look all sixteen bytes up in their per-position
  // tables. Bytes are composed into words explicitly, so the result does
  // not depend on the host's endianness or on data alignment.
  while (n >= 16) {
    const std::uint32_t w0 = c ^ load_word(data);
    const std::uint32_t w1 = load_word(data + 4);
    const std::uint32_t w2 = load_word(data + 8);
    const std::uint32_t w3 = load_word(data + 12);
    c = kCrcTables[15][w0 & 0xFFu] ^ kCrcTables[14][(w0 >> 8) & 0xFFu] ^
        kCrcTables[13][(w0 >> 16) & 0xFFu] ^ kCrcTables[12][w0 >> 24] ^
        kCrcTables[11][w1 & 0xFFu] ^ kCrcTables[10][(w1 >> 8) & 0xFFu] ^
        kCrcTables[9][(w1 >> 16) & 0xFFu] ^ kCrcTables[8][w1 >> 24] ^
        kCrcTables[7][w2 & 0xFFu] ^ kCrcTables[6][(w2 >> 8) & 0xFFu] ^
        kCrcTables[5][(w2 >> 16) & 0xFFu] ^ kCrcTables[4][w2 >> 24] ^
        kCrcTables[3][w3 & 0xFFu] ^ kCrcTables[2][(w3 >> 8) & 0xFFu] ^
        kCrcTables[1][(w3 >> 16) & 0xFFu] ^ kCrcTables[0][w3 >> 24];
    data += 16;
    n -= 16;
  }
  for (std::size_t i = 0; i < n; ++i) {
    c = kCrcTables[0][(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void put_u8(std::vector<std::uint8_t>& buf, std::uint8_t v) {
  buf.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void patch_u32(std::vector<std::uint8_t>& buf, std::size_t pos,
               std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf[pos + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

void put_varint(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  while (v >= 0x80u) {
    buf.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  buf.push_back(static_cast<std::uint8_t>(v));
}

void put_string(std::vector<std::uint8_t>& buf, const std::string& s) {
  put_u32(buf, static_cast<std::uint32_t>(s.size()));
  buf.insert(buf.end(), s.begin(), s.end());
}

void put_value(std::vector<std::uint8_t>& buf, const Value& v) {
  if (const bool* b = std::get_if<bool>(&v)) {
    put_u8(buf, kTagBool);
    put_u8(buf, *b ? 1 : 0);
  } else if (const std::int64_t* i = std::get_if<std::int64_t>(&v)) {
    put_u8(buf, kTagInt64);
    put_u64(buf, static_cast<std::uint64_t>(*i));
  } else if (const double* d = std::get_if<double>(&v)) {
    put_u8(buf, kTagDouble);
    put_u64(buf, std::bit_cast<std::uint64_t>(*d));
  } else {
    put_u8(buf, kTagString);
    put_string(buf, std::get<std::string>(v));
  }
}

bool ByteReader::take(std::size_t n) {
  if (!ok_ || end_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::u8() {
  if (!take(1)) return 0;
  return data_[pos_++];
}

std::uint32_t ByteReader::u32() {
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{data_[pos_ + static_cast<std::size_t>(i)]} << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  if (!take(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{data_[pos_ + static_cast<std::size_t>(i)]} << (8 * i);
  pos_ += 8;
  return v;
}

std::uint64_t ByteReader::varint() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 70; shift += 7) {
    if (!take(1)) return 0;
    const std::uint8_t byte = data_[pos_++];
    v |= std::uint64_t{byte & 0x7Fu} << shift;
    if (!(byte & 0x80u)) return v;
  }
  ok_ = false;  // more than 10 continuation bytes: not a valid u64
  return 0;
}

std::string ByteReader::string() {
  const std::uint32_t n = u32();
  if (!take(n)) return {};
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

Value ByteReader::value() {
  switch (u8()) {
    case kTagBool:   return Value{u8() != 0};
    case kTagInt64:  return Value{static_cast<std::int64_t>(u64())};
    case kTagDouble: return Value{std::bit_cast<double>(u64())};
    case kTagString: return Value{string()};
    default:
      ok_ = false;
      return Value{false};
  }
}

}  // namespace arfs::storage::durable
