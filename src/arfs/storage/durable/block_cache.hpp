// Byte-budgeted LRU block cache.
//
// Storage engines use it to keep *decoded* device blocks in memory so a
// recovery or crash-sweep restore that re-reads an unchanged device can skip
// the decode (CRC walk, varint/string parsing, per-record allocations)
// entirely: the WAL-family engines cache whole journal scans content-addressed
// by (size, FNV-1a of the device bytes), and the LSM engine caches decoded
// immutable runs addressed by (offset, length, CRC) — a run never changes in
// place, so the triple attests the content.
//
// The cache is a performance layer only: every consumer must produce
// bit-identical results on a hit and on a miss, so hit/miss counts live in
// DurabilityStats (never in a digest) and the determinism contract is
// untouched. Values above the byte capacity are simply not cached.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <utility>

namespace arfs::storage::durable {

template <typename V>
class BlockCache {
 public:
  /// 128-bit content address. The two halves are engine-defined: the WAL
  /// scan cache uses (journal size, byte fingerprint); the LSM run cache
  /// uses (run offset, length<<32 | crc).
  struct Key {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;
    friend bool operator<(const Key& a, const Key& b) {
      return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
    }
    friend bool operator==(const Key& a, const Key& b) {
      return a.hi == b.hi && a.lo == b.lo;
    }
  };

  explicit BlockCache(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// Returns the cached value (bumping its recency) or nullptr. The pointer
  /// is valid until the next insert().
  [[nodiscard]] const V* find(const Key& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->value;
  }

  /// Inserts (or replaces) `key`, evicting least-recently-used entries until
  /// the byte budget holds. A value whose charge alone exceeds the capacity
  /// is not cached at all — caching it would just evict everything else.
  /// Returns the number of entries evicted.
  std::uint64_t insert(const Key& key, V value, std::size_t charge) {
    if (charge > capacity_) return 0;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      charge_ -= it->second->charge;
      it->second->value = std::move(value);
      it->second->charge = charge;
      charge_ += charge;
      lru_.splice(lru_.begin(), lru_, it->second);
    } else {
      lru_.push_front(Entry{key, std::move(value), charge});
      index_.emplace(key, lru_.begin());
      charge_ += charge;
    }
    std::uint64_t evicted = 0;
    while (charge_ > capacity_ && lru_.size() > 1) {
      const Entry& victim = lru_.back();
      charge_ -= victim.charge;
      index_.erase(victim.key);
      lru_.pop_back();
      ++evicted;
    }
    return evicted;
  }

  [[nodiscard]] std::size_t charge() const { return charge_; }
  [[nodiscard]] std::size_t entries() const { return lru_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    Key key;
    V value;
    std::size_t charge = 0;
  };

  std::size_t capacity_;
  std::size_t charge_ = 0;
  std::list<Entry> lru_;  ///< Front = most recently used.
  std::map<Key, typename std::list<Entry>::iterator> index_;
};

}  // namespace arfs::storage::durable
