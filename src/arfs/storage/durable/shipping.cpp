#include "arfs/storage/durable/shipping.hpp"

#include <algorithm>
#include <utility>

#include "arfs/common/check.hpp"
#include "arfs/storage/durable/wire.hpp"

namespace arfs::storage::durable {

namespace {

std::uint32_t read_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

}  // namespace

void encode_batch(std::vector<std::uint8_t>& out, const ShipBatch& batch) {
  put_u64(out, batch.generation);
  put_u64(out, batch.offset);
  put_u32(out, static_cast<std::uint32_t>(batch.bytes.size()));
  out.insert(out.end(), batch.bytes.begin(), batch.bytes.end());
  put_u32(out, batch.crc);
}

std::optional<ShipBatch> decode_batch(const std::uint8_t* data,
                                      std::size_t n) {
  ByteReader reader(data, n);
  ShipBatch batch;
  batch.generation = reader.u64();
  batch.offset = reader.u64();
  const std::uint32_t len = reader.u32();
  constexpr std::size_t kFrameHeader = 8 + 8 + 4;  // generation, offset, len
  if (!reader.ok() || len > kMaxPayload ||
      n < kFrameHeader + std::size_t{len} + 4) {
    return std::nullopt;
  }
  batch.bytes.assign(data + kFrameHeader, data + kFrameHeader + len);
  batch.crc = read_u32(data + kFrameHeader + len);
  return batch;
}

ShipStatus JournalShipper::next_batch(const ShipCursor& cursor,
                                      std::size_t max_bytes, ShipBatch& out) {
  DurabilityEngine& engine = *engine_;
  const std::uint64_t generation = engine.journal_generation();

  if (cursor.generation == generation) {
    // Only synced bytes ship: the replica must never hold state the
    // source's devices would not preserve across a crash.
    const std::uint64_t end = engine.journal().synced_size();
    if (cursor.offset >= end) {
      engine.note_ship(0, 0, cursor.offset);
      return ShipStatus::kUpToDate;
    }
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(max_bytes, end - cursor.offset));
    if (n == 0) return ShipStatus::kUpToDate;
    out.generation = generation;
    out.offset = cursor.offset;
    out.bytes.resize(n);
    const std::size_t got =
        engine.journal().read(cursor.offset, out.bytes.data(), n);
    require(got == n, "journal refused a synced-range read");
    out.crc = crc32(out.bytes.data(), n);
    engine.note_ship(n, end - (cursor.offset + n), cursor.offset + n);
    return ShipStatus::kBatch;
  }

  if (cursor.generation + 1 == generation) {
    // One compaction behind: serve the retained previous generation.
    const std::vector<std::uint8_t>& tail = engine.retained_tail();
    const std::uint64_t end = kHeaderSize + tail.size();
    if (cursor.offset < end) {
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(max_bytes, end - cursor.offset));
      if (n == 0) return ShipStatus::kUpToDate;
      out.generation = cursor.generation;
      out.offset = cursor.offset;
      const std::size_t at =
          static_cast<std::size_t>(cursor.offset - kHeaderSize);
      out.bytes.assign(tail.begin() + static_cast<std::ptrdiff_t>(at),
                       tail.begin() + static_cast<std::ptrdiff_t>(at + n));
      out.crc = crc32(out.bytes.data(), n);
      engine.note_ship(n, end - (cursor.offset + n), 0);
      return ShipStatus::kBatch;
    }
    if (engine.rebase_ok()) return ShipStatus::kRebase;
    return ShipStatus::kCursorLost;
  }

  return ShipStatus::kCursorLost;
}

void ShippedReplica::attach_engine(
    std::unique_ptr<DurabilityEngine> engine) {
  require(engine != nullptr, "null standby engine");
  require(engine_ == nullptr, "standby engine already attached");
  engine_ = std::move(engine);
}

ApplyStatus ShippedReplica::apply(const ShipBatch& batch) {
  if (batch.generation != cursor_.generation) {
    return ApplyStatus::kBadGeneration;
  }
  if (crc32(batch.bytes.data(), batch.bytes.size()) != batch.crc) {
    ++stats_.crc_rejects;
    return ApplyStatus::kCorrupt;  // transit corruption; nothing consumed
  }
  const std::uint64_t end = batch.offset + batch.bytes.size();
  if (end <= cursor_.offset) {
    ++stats_.duplicates;
    return ApplyStatus::kDuplicate;
  }
  if (batch.offset > cursor_.offset) {
    ++stats_.gaps;
    return ApplyStatus::kGap;
  }
  // Append only the genuinely new suffix (overlap = partial retransmission).
  const std::size_t skip =
      static_cast<std::size_t>(cursor_.offset - batch.offset);
  pending_.insert(pending_.end(), batch.bytes.begin() + skip,
                  batch.bytes.end());
  const std::size_t appended = batch.bytes.size() - skip;
  cursor_.offset += appended;
  stats_.bytes_received += appended;
  ++stats_.batches_applied;
  if (!drain_pending()) return ApplyStatus::kCorrupt;
  return ApplyStatus::kApplied;
}

bool ShippedReplica::drain_pending() {
  std::size_t p = 0;
  bool corrupt = false;
  while (pending_.size() - p >= 8) {
    const std::uint32_t len = read_u32(pending_.data() + p);
    const std::uint32_t crc = read_u32(pending_.data() + p + 4);
    if (len > kMaxPayload) {
      corrupt = true;
      break;
    }
    if (pending_.size() - p - 8 < len) break;  // partial record; wait
    const std::uint8_t* payload = pending_.data() + p + 8;
    if (crc32(payload, len) != crc || !apply_record(payload, len)) {
      corrupt = true;
      break;
    }
    p += 8 + std::size_t{len};
  }
  if (corrupt) {
    // The good prefix stays applied; the corrupt suffix is dropped and the
    // cursor rewinds to the last record boundary so a clean retransmission
    // can retry from there.
    ++stats_.crc_rejects;
    cursor_.offset -= pending_.size() - p;
    pending_.clear();
    return false;
  }
  pending_.erase(pending_.begin(), pending_.begin() + static_cast<std::ptrdiff_t>(p));
  return true;
}

bool ShippedReplica::apply_record(const std::uint8_t* payload,
                                 std::size_t len) {
  ByteReader reader(payload, len);
  const std::uint8_t kind = reader.u8();
  if (kind == kRecordDict) {
    const std::uint64_t first_id = reader.varint();
    const std::uint64_t count = reader.varint();
    if (!reader.ok() || first_id > dict_.size() || count > kMaxPayload) {
      return false;
    }
    // Overlap is legal after a full-copy reset (the copied dictionary may
    // already cover ids whose dictionary records were un-synced at copy
    // time and ship later) — but an overlapping id must re-announce the
    // same key.
    for (std::uint64_t i = 0; i < count; ++i) {
      std::string key = reader.string();
      if (!reader.ok()) return false;
      const std::uint64_t id = first_id + i;
      if (id < dict_.size()) {
        if (dict_[id] != key) return false;
      } else {
        dict_.push_back(std::move(key));
      }
    }
    if (!reader.exhausted()) return false;
    ++stats_.dict_records;
    return true;
  }
  if (kind == kRecordCommit) {
    const std::uint64_t epoch = reader.u64();
    const auto cycle = static_cast<Cycle>(reader.u64());
    const std::uint32_t n = reader.u32();
    std::vector<std::pair<std::string, Value>> entries;
    entries.reserve(n);
    for (std::uint32_t i = 0; i < n && reader.ok(); ++i) {
      const std::uint64_t id = reader.varint();
      if (id >= dict_.size()) return false;
      Value value = reader.value();
      entries.emplace_back(dict_[id], std::move(value));
    }
    if (!reader.ok() || !reader.exhausted()) return false;
    if (epoch <= cursor_.epoch) {
      // Replay duplicate (already covered by a full copy or rebase image).
      ++stats_.records_skipped;
      return true;
    }
    apply_commit(epoch, cycle, std::move(entries));
    return true;
  }
  return false;
}

void ShippedReplica::apply_commit(
    std::uint64_t epoch, Cycle cycle,
    std::vector<std::pair<std::string, Value>> entries) {
  if (engine_ != nullptr) {
    // Standby write-ahead: journal into the standby's own devices with the
    // source's epoch numbering, then commit — the standby survives its own
    // crashes with the same guarantees as the source.
    store_.set_commit_epochs(epoch - 1);
    for (const auto& [key, value] : entries) store_.write(key, value);
    engine_->record_commit(store_, cycle);
    store_.commit(cycle);
    engine_->after_commit(store_);
  } else {
    store_.restore_batch(entries, cycle);
    store_.set_commit_epochs(epoch);
  }
  cursor_.epoch = epoch;
  ++stats_.records_applied;
}

void ShippedReplica::rebase(std::uint64_t generation, std::uint64_t epoch) {
  require(pending_.empty(),
          "rebase with a partial record pending (not caught up)");
  cursor_.generation = generation;
  cursor_.offset = kHeaderSize;
  cursor_.epoch = std::max(cursor_.epoch, epoch);
  // The snapshot image the compaction was based on stamps the source store
  // at `epoch` (trailing empty commits included); mirror it so post-rebase
  // records extend the same numbering.
  if (epoch > store_.commit_epochs()) store_.set_commit_epochs(epoch);
  dict_.clear();
  ++stats_.rebases;
}

void ShippedReplica::reset_from_full_copy(const StableStorage& source,
                                          std::vector<std::string> dict,
                                          std::uint64_t generation,
                                          std::uint64_t offset) {
  store_.reset_committed();
  store_.restore_batch(source.committed_entries());
  store_.set_commit_epochs(source.commit_epochs());
  dict_ = std::move(dict);
  pending_.clear();
  cursor_ = ShipCursor{generation, offset, source.commit_epochs()};
  // The stream starts over: warm-progress counters would otherwise keep
  // counting bytes and records the reseed just invalidated, inflating the
  // avoided-full-copy accounting. Fault counters (crc_rejects, duplicates,
  // gaps, rebases, resets) stay cumulative — they describe the lifetime of
  // the standby, not of one stream.
  stats_.batches_applied = 0;
  stats_.bytes_received = 0;
  stats_.records_applied = 0;
  stats_.records_skipped = 0;
  stats_.dict_records = 0;
  ++stats_.resets;
  if (engine_ != nullptr) {
    // Re-anchor the standby devices on the copied image so its own journal
    // does not mix generations.
    (void)engine_->take_snapshot(store_);
  }
}

ShippedReplica::Checkpoint ShippedReplica::checkpoint_state() const {
  Checkpoint cp;
  cp.store = store_;
  if (engine_ != nullptr) cp.engine = engine_->checkpoint_state();
  cp.dict = dict_;
  cp.pending = pending_;
  cp.cursor = cursor_;
  cp.stats = stats_;
  return cp;
}

void ShippedReplica::restore_state(const Checkpoint& cp) {
  require((engine_ != nullptr) == cp.engine.has_value(),
          "replica restore must match its attached-engine shape");
  store_ = cp.store;
  if (engine_ != nullptr) engine_->restore_state(*cp.engine);
  dict_ = cp.dict;
  pending_ = cp.pending;
  cursor_ = cp.cursor;
  stats_ = cp.stats;
}

std::uint64_t encoded_state_bytes(const StableStorage& store,
                                  const std::string& prefix) {
  std::vector<std::uint8_t> scratch;
  std::uint64_t total = 0;
  for (const auto& [key, value, cycle] : store.committed_entries()) {
    if (!prefix.empty() && key.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    scratch.clear();
    put_string(scratch, key);
    put_value(scratch, value);
    put_u64(scratch, cycle);
    total += scratch.size();
  }
  return total;
}

}  // namespace arfs::storage::durable
