// Write-ahead journal of stable-storage commits.
//
// Layout on the backend:
//
//   [8-byte magic "ARFSWAL1"]
//   repeated records:  [u32 payload_len][u32 crc32(payload)][payload]
//   payload:           u64 epoch, u64 cycle, u32 n,
//                      n × { string key, tagged value }
//
// One record per StableStorage::commit — the journal is the disk image of
// the paper's "sequence of completed instructions". Scanning stops at the
// first record that is short (torn write), fails its CRC (corruption), or
// breaks epoch monotonicity; everything after that offset is untrusted,
// which is the device-level analogue of the fail-stop rule that a halted
// processor's state is the last *successfully completed* step, never a
// partial one.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "arfs/common/types.hpp"
#include "arfs/storage/durable/backend.hpp"
#include "arfs/storage/value.hpp"

namespace arfs::storage::durable {

inline constexpr std::uint8_t kJournalMagic[8] = {'A', 'R', 'F', 'S',
                                                  'W', 'A', 'L', '1'};
inline constexpr std::uint64_t kHeaderSize = 8;
/// Sanity cap on one record's payload, so a corrupted length prefix cannot
/// demand a multi-gigabyte allocation.
inline constexpr std::uint32_t kMaxPayload = 1u << 28;

/// One decoded commit record.
struct JournalRecord {
  std::uint64_t epoch = 0;  ///< StableStorage commit epoch (1-based).
  Cycle cycle = 0;          ///< Frame the commit was stamped with.
  std::vector<std::pair<std::string, Value>> entries;
  std::uint64_t offset = 0;  ///< Byte offset of the record envelope.
};

/// Result of scanning a journal device end to end.
struct ScanResult {
  bool header_ok = false;
  std::vector<JournalRecord> records;   ///< The valid prefix, in order.
  std::uint64_t valid_bytes = 0;        ///< End of the last valid record.
  bool truncated = false;               ///< A torn/corrupt tail was found.
  std::string reason;                   ///< Why scanning stopped early.
};

/// Appends the journal magic when the device is empty. Returns false when an
/// existing header does not match (foreign or damaged file).
bool ensure_header(JournalBackend& backend);

/// Encodes one commit record envelope into `out`.
void encode_record(std::vector<std::uint8_t>& out, std::uint64_t epoch,
                   Cycle cycle,
                   const std::vector<std::pair<std::string, Value>>& entries);

/// Scans the whole device, collecting the valid record prefix. Never throws
/// on malformed content — damage is reported, not fatal.
[[nodiscard]] ScanResult scan_journal(const JournalBackend& backend);

/// Renders a record for arfsctl's `journal dump`.
[[nodiscard]] std::string to_string(const JournalRecord& record);

}  // namespace arfs::storage::durable
