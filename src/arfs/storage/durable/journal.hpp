// Write-ahead journal of stable-storage commits.
//
// Layout on the backend:
//
//   [8-byte magic "ARFSWAL2"]
//   repeated records:  [u32 payload_len][u32 crc32(payload)][payload]
//   payload:           u8 kind, then
//     kind 0 (commit):      u64 epoch, u64 cycle, u32 n,
//                           n × { varint key_id, tagged value }
//     kind 1 (dictionary):  varint first_id, varint count, count × string
//
// Keys are interned: the first commit that mentions a key is preceded by a
// dictionary record assigning it the next id, and from then on the key ships
// as a 1–2 byte varint instead of a length-prefixed string. Dictionary
// records are ordinary journal records — CRC-guarded, scanned in order, and
// replayed on recovery — so the id space is exactly reconstructible from the
// valid prefix. The dictionary resets whenever the journal is compacted
// (truncated back to its header after a snapshot).
//
// One commit record per StableStorage::commit — the journal is the disk
// image of the paper's "sequence of completed instructions". Scanning stops
// at the first record that is short (torn write), fails its CRC
// (corruption), references an unknown key id, or breaks epoch monotonicity;
// everything after that offset is untrusted, which is the device-level
// analogue of the fail-stop rule that a halted processor's state is the last
// *successfully completed* step, never a partial one.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "arfs/common/types.hpp"
#include "arfs/storage/durable/backend.hpp"
#include "arfs/storage/value.hpp"

namespace arfs::storage::durable {

inline constexpr std::uint8_t kJournalMagic[8] = {'A', 'R', 'F', 'S',
                                                  'W', 'A', 'L', '2'};
inline constexpr std::uint64_t kHeaderSize = 8;
/// Sanity cap on one record's payload, so a corrupted length prefix cannot
/// demand a multi-gigabyte allocation.
inline constexpr std::uint32_t kMaxPayload = 1u << 28;

enum : std::uint8_t { kRecordCommit = 0, kRecordDict = 1 };

/// One decoded commit record. Key ids are resolved back to strings while
/// scanning, so consumers never see the interned form.
struct JournalRecord {
  std::uint64_t epoch = 0;  ///< StableStorage commit epoch (1-based).
  Cycle cycle = 0;          ///< Frame the commit was stamped with.
  std::vector<std::pair<std::string, Value>> entries;
  /// Interned key id of each entry, parallel to `entries` (what actually
  /// sits on the device; surfaced for arfsctl's journal dump).
  std::vector<std::uint32_t> entry_ids;
  std::uint64_t offset = 0;  ///< Byte offset of the record envelope.
};

/// One dictionary record seen while scanning (arfsctl's journal dump).
struct DictRecordInfo {
  std::uint64_t offset = 0;    ///< Byte offset of the record envelope.
  std::uint32_t first_id = 0;  ///< First id the record assigns.
  std::uint32_t count = 0;     ///< Keys announced.
};

/// Result of scanning a journal device end to end.
struct ScanResult {
  bool header_ok = false;
  std::vector<JournalRecord> records;   ///< Valid commit prefix, in order.
  std::vector<std::string> dict;        ///< Interned keys, indexed by id.
  std::vector<DictRecordInfo> dict_records;  ///< Dictionary records seen.
  std::uint64_t valid_bytes = 0;        ///< End of the last valid record.
  bool truncated = false;               ///< A torn/corrupt tail was found.
  std::string reason;                   ///< Why scanning stopped early.
};

/// The writer's side of the key dictionary: maps keys to stable varint ids,
/// in insertion order. An engine keeps one per journal and resets it when
/// the journal is compacted; recovery rebuilds it from ScanResult::dict.
class KeyInterner {
 public:
  /// Returns the id for `key`, assigning the next free id on first sight.
  /// Newly assigned keys are staged in fresh() until take_fresh().
  std::uint32_t intern(const std::string& key);

  /// Keys interned since the last take_fresh(), in id order. encode_commit
  /// flushes these into a dictionary record ahead of the commit record.
  [[nodiscard]] const std::vector<std::string>& fresh() const {
    return fresh_;
  }
  void take_fresh() { fresh_.clear(); }

  /// Rebuilds the dictionary from a scanned journal (recovery path).
  void adopt(const std::vector<std::string>& keys);
  void reset();

  [[nodiscard]] std::size_t size() const { return keys_.size(); }
  /// The whole dictionary in id order (full-copy reseeds ship it as part of
  /// the transferred state).
  [[nodiscard]] const std::vector<std::string>& entries() const {
    return keys_;
  }

 private:
  std::vector<std::string> keys_;  ///< id -> key.
  /// Sorted (key, id) pairs for O(log n) lookup without a hash map.
  std::vector<std::pair<std::string, std::uint32_t>> index_;
  std::vector<std::string> fresh_;
};

/// Appends the journal magic when the device is empty. Returns false when an
/// existing header does not match (foreign or damaged file).
bool ensure_header(JournalBackend& backend);

/// Encodes one commit into `out`: a dictionary record first when `dict` has
/// unflushed fresh keys, then the commit record itself. `out` is appended
/// to, not cleared, and no temporary buffers are allocated — payloads are
/// encoded in place and their envelopes back-patched.
void encode_commit(std::vector<std::uint8_t>& out, KeyInterner& dict,
                   std::uint64_t epoch, Cycle cycle,
                   const std::vector<std::pair<std::string, Value>>& entries);

/// Allocation accounting of one scan's payload reads (the decode mirror of
/// the encode path's reused scratch buffer).
struct ScanStats {
  /// Payload reads served inside the scratch buffer's existing capacity.
  std::uint64_t payload_reuses = 0;
  /// Payload reads that had to grow the scratch buffer.
  std::uint64_t payload_allocs = 0;
};

/// Scans the whole device, collecting the valid record prefix. Never throws
/// on malformed content — damage is reported, not fatal.
[[nodiscard]] ScanResult scan_journal(const JournalBackend& backend);

/// Same scan, decoding payloads through a caller-owned scratch buffer so a
/// recovery loop (or an engine replaying many crash points) allocates the
/// payload buffer once instead of once per scan. `stats`, when given,
/// receives the reuse/allocation counts the engine surfaces as
/// DurabilityStats::decode_buffer_reuses.
[[nodiscard]] ScanResult scan_journal(const JournalBackend& backend,
                                      std::vector<std::uint8_t>& scratch,
                                      ScanStats* stats = nullptr);

/// Renders a record for arfsctl's `journal dump`.
[[nodiscard]] std::string to_string(const JournalRecord& record);

}  // namespace arfs::storage::durable
