// Quorum-replicated journal shipping: majority-ack durability over an
// elected cohort of shipped replicas.
//
// JournalShipper/ShippedReplica stream one source WAL to exactly one
// standby — itself a single point of failure during a relocation. A
// QuorumGroup fans the same synced ARFSWAL2 stream out to N members, each
// an independent ShippedReplica at its own cursor (the shipper is stateless
// per cursor, so fan-out costs no source-side state), and tracks the
// Raft-style split per member:
//
//   last_applied  what this member has durably applied (its cursor epoch);
//   commit_id     the group's durability boundary: the highest epoch
//                 acknowledged by a majority of voters, monotone.
//
// Fail-stop semantics (paper section 5.1) make the majority rule unusually
// clean: a member's acknowledged bytes live on its stable devices, which
// survive the member's own fail-stop, so a dead member's acks still count
// toward the boundary — only *retired* members leave the vote.
//
// Leadership is deterministic: the lowest-id live, non-retired member is
// the shipper-leader (relocations warm-start from it first). When the
// leader fail-stops the election re-runs by rule — no messages, no terms —
// and shipping resumes from the new leader's own cursor: every member
// already tracks its own ShipCursor, so a leader change never costs a
// full-copy reseed.
//
// Membership changes use joint consensus (the old ∩ new majority rule of
// self-stabilizing reconfiguration): while a change is in flight the commit
// boundary only advances to epochs acknowledged by a majority of the OLD
// voters and a majority of the NEW voters. The change completes when the
// new voters' majority reaches the epoch at which the change was proposed;
// retired members then drop out of shipping, voting, and elections.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arfs/storage/durable/engine.hpp"
#include "arfs/storage/durable/shipping.hpp"
#include "arfs/storage/stable_storage.hpp"

namespace arfs::storage::durable::quorum {

using MemberId = std::uint32_t;

struct QuorumOptions {
  /// Initial cohort size. 1 degenerates to the single-standby protocol
  /// (the commit boundary is then the lone member's cursor epoch).
  std::uint32_t replicas = 3;
  /// Durability options of each member's own standby engine (every member
  /// is itself durable, like the single-standby replica).
  DurableOptions member_durability{};
};

struct QuorumStats {
  std::uint64_t slots_polled = 0;
  std::uint64_t batches_shipped = 0;
  std::uint64_t bytes_shipped = 0;
  std::uint64_t rebases = 0;
  std::uint64_t corrupt_batches = 0;
  std::uint64_t fallbacks = 0;  ///< Members that lost their cursor.
  std::uint64_t reseeds = 0;    ///< Full-copy reseeds performed.
  std::uint64_t elections = 0;  ///< Leader changes after construction.
  std::uint64_t member_failures = 0;
  std::uint64_t member_repairs = 0;
  std::uint64_t commit_advances = 0;     ///< Times commit_id moved forward.
  std::uint64_t membership_changes = 0;  ///< Joint changes completed.
};

/// Fans one source engine's synced journal out to N ShippedReplica members
/// and maintains the majority-acknowledged commit boundary. Shipping per
/// member mirrors the single-standby ShippingUnit step for step (budgeted
/// batches, in-slot rebase across compactions, corrupt-retry escalation to
/// a full copy), so a one-member group is byte-identical to a ShippingUnit.
class QuorumGroup {
 public:
  /// `source` must outlive the group. Precondition: replicas >= 1.
  explicit QuorumGroup(DurabilityEngine& source, QuorumOptions options = {});

  // --- shipping ---

  /// One scheduled quorum ship slot for `id`: moves at most `budget` bytes
  /// to that member. Dead, retired, and reseed-pending members consume
  /// their slot idle (returns 0). Advances last_applied and the commit rule.
  std::size_t pump_member(MemberId id, std::size_t budget);

  /// Relocation-time catch-up: drains the member's remaining shippable
  /// tail regardless of slot budgets. Stops early when a full copy becomes
  /// necessary. Returns the bytes moved.
  std::size_t catch_up_member(MemberId id);

  /// True when `id`'s cursor was lost and shipping to it is paused until
  /// the owner reseeds it (reseed_member).
  [[nodiscard]] bool member_needs_full_copy(MemberId id) const;

  /// Reseeds `id` from the source's committed store (the full-copy
  /// fallback); shipping to it resumes at `offset` of `generation`. When the
  /// copy's boundary lies below commit_id() the source rewrote history (a
  /// lossy recovery): dead-generation acks clamp to the boundary and the
  /// commit id re-bases onto the recomputed majority — the one sanctioned
  /// exception to its monotonicity.
  void reseed_member(MemberId id, const StableStorage& source_store,
                     std::vector<std::string> dict, std::uint64_t generation,
                     std::uint64_t offset);

  /// Whether a warm relocation from `id` may claim avoided-bytes credit:
  /// false exactly when the member's warmth was bought by a full-copy
  /// reseed since the last claim. Consuming the credit re-arms it.
  bool take_warm_credit(MemberId id);

  // --- liveness, election, membership ---

  /// Fail-stops member `id` (its stable devices — and therefore its acks —
  /// survive). Returns true exactly when this failure cost the live
  /// majority. No-op (false) if already down.
  bool fail_member(MemberId id);

  /// Returns a fail-stopped member to service at its surviving cursor.
  /// Returns true exactly when this repair restored the live majority.
  bool repair_member(MemberId id);

  /// Proposes a joint membership change: `add` fresh members (returned ids;
  /// they reseed via the full-copy path before streaming) and retire the
  /// given current voters. Completes automatically once a majority of the
  /// new voters has applied everything committed at proposal time.
  /// Preconditions: no change already in flight; every retiree is a
  /// current voter; the new voter set is non-empty.
  std::vector<MemberId> begin_reconfig(std::uint32_t add,
                                       const std::vector<MemberId>& retire);
  [[nodiscard]] bool reconfiguring() const { return reconfiguring_; }

  /// The shipper-leader: lowest-id live, non-retired member. nullopt when
  /// every member is down or retired.
  [[nodiscard]] std::optional<MemberId> leader() const { return leader_; }

  /// Live-majority rule, joint-aware: a majority of the old voters is up,
  /// and (while reconfiguring) a majority of the new voters too.
  [[nodiscard]] bool has_majority() const;

  /// Members a relocation should poll for a warm start, best first:
  /// the leader, then the remaining live members in id order.
  [[nodiscard]] std::vector<MemberId> warm_start_order() const;

  // --- commit rule ---

  /// The majority-acknowledged durability boundary (monotone): the highest
  /// epoch applied by a majority of voters — of both voter sets while a
  /// membership change is in flight.
  [[nodiscard]] std::uint64_t commit_id() const { return commit_id_; }

  // --- introspection ---

  [[nodiscard]] std::size_t member_count() const { return members_.size(); }
  [[nodiscard]] std::uint32_t live_count() const;
  [[nodiscard]] bool member_live(MemberId id) const;
  [[nodiscard]] bool member_retired(MemberId id) const;
  [[nodiscard]] std::uint64_t last_applied(MemberId id) const;
  [[nodiscard]] const ShippedReplica& replica(MemberId id) const;
  [[nodiscard]] const std::vector<MemberId>& voters() const {
    return old_voters_;
  }
  [[nodiscard]] const std::vector<MemberId>& new_voters() const {
    return new_voters_;
  }
  [[nodiscard]] DurabilityEngine& source() { return shipper_.engine(); }
  [[nodiscard]] const QuorumStats& stats() const { return stats_; }

  // --- checkpointing ---

  struct MemberCheckpoint {
    ShippedReplica::Checkpoint replica;
    std::uint64_t last_applied = 0;
    bool live = true;
    bool retired = false;
    bool needs_full_copy = false;
    bool warm_credit = true;
    std::uint32_t consecutive_corrupt = 0;
  };
  /// Frozen image of the whole group: every member plus the voter sets,
  /// commit bookkeeping, leadership, and stats. Move-only (the member
  /// checkpoints own forked devices) but restorable many times.
  struct Checkpoint {
    std::vector<MemberCheckpoint> members;
    std::vector<MemberId> old_voters;
    std::vector<MemberId> new_voters;
    bool reconfiguring = false;
    std::uint64_t reconfig_epoch = 0;
    std::uint64_t commit_id = 0;
    std::optional<MemberId> leader;
    QuorumStats stats;
  };
  [[nodiscard]] Checkpoint checkpoint_state() const;
  /// Rewinds the group to `cp`, creating or discarding trailing members as
  /// needed (a checkpoint may straddle a membership change).
  void restore_state(const Checkpoint& cp);

 private:
  struct Member {
    ShippedReplica replica;
    std::uint64_t last_applied = 0;
    bool live = true;
    bool retired = false;
    bool needs_full_copy = false;
    bool warm_credit = true;
    /// Consecutive corrupt applies at one cursor position — the same
    /// media-fault escalation as the single-standby unit.
    std::uint32_t consecutive_corrupt = 0;
  };

  /// Exact mirror of ShippingUnit::step for one member: one budgeted batch,
  /// in-slot rebase, corrupt-retry escalation. Returns the bytes moved.
  std::size_t step_member(Member& m, std::size_t budget);
  /// Recomputes the commit boundary from the voter acks and completes an
  /// in-flight membership change when the new majority has caught up.
  void update_commit();
  /// Majority order statistic of `voters`' last_applied (the epoch held by
  /// more than half of them). Dead members count; `voters` is non-empty.
  [[nodiscard]] std::uint64_t majority_ack(
      const std::vector<MemberId>& voters) const;
  /// Deterministic re-election; bumps stats_.elections when the leader
  /// actually changes.
  void elect();
  void append_member();
  Member& member_ref(MemberId id);
  [[nodiscard]] const Member& member_at(MemberId id) const;

  JournalShipper shipper_;
  QuorumOptions options_;
  std::vector<Member> members_;
  /// Current voters, and the proposed set while a change is in flight
  /// (equal otherwise). Ids only — liveness lives on the members.
  std::vector<MemberId> old_voters_;
  std::vector<MemberId> new_voters_;
  bool reconfiguring_ = false;
  std::uint64_t reconfig_epoch_ = 0;  ///< commit_id when the change began.
  std::uint64_t commit_id_ = 0;
  std::optional<MemberId> leader_;
  QuorumStats stats_;
};

}  // namespace arfs::storage::durable::quorum
