#include "arfs/storage/durable/snapshot.hpp"

#include <cstring>

#include "arfs/storage/durable/journal.hpp"
#include "arfs/storage/durable/wire.hpp"

namespace arfs::storage::durable {

bool append_snapshot(JournalBackend& backend, std::uint64_t epoch,
                     const std::vector<std::tuple<std::string, Value, Cycle>>&
                         entries) {
  if (backend.size() == 0) {
    backend.append(kSnapshotMagic, sizeof kSnapshotMagic);
  } else {
    std::uint8_t magic[8] = {};
    if (backend.read(0, magic, sizeof magic) != sizeof magic ||
        std::memcmp(magic, kSnapshotMagic, sizeof magic) != 0) {
      return false;
    }
  }
  std::vector<std::uint8_t> payload;
  put_u64(payload, epoch);
  put_u64(payload, entries.size());
  for (const auto& [key, value, committed_at] : entries) {
    put_string(payload, key);
    put_value(payload, value);
    put_u64(payload, committed_at);
  }
  std::vector<std::uint8_t> envelope;
  put_u32(envelope, static_cast<std::uint32_t>(payload.size()));
  put_u32(envelope, crc32(payload.data(), payload.size()));
  envelope.insert(envelope.end(), payload.begin(), payload.end());
  backend.append(envelope.data(), envelope.size());
  return true;
}

namespace {

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

}  // namespace

SnapshotScan scan_snapshots(const JournalBackend& backend) {
  SnapshotScan result;
  const std::uint64_t total = backend.size();
  if (total == 0) {
    result.header_ok = true;  // empty device: no snapshot yet, not damage
    return result;
  }
  std::uint8_t magic[8] = {};
  if (backend.read(0, magic, sizeof magic) != sizeof magic ||
      std::memcmp(magic, kSnapshotMagic, sizeof magic) != 0) {
    result.reason = "bad or short snapshot header";
    result.truncated = true;
    return result;
  }
  result.header_ok = true;
  result.valid_bytes = kHeaderSize;

  std::uint64_t offset = kHeaderSize;
  std::vector<std::uint8_t> payload;
  while (offset < total) {
    std::uint8_t envelope[8] = {};
    if (backend.read(offset, envelope, sizeof envelope) != sizeof envelope) {
      result.truncated = true;
      result.reason = "torn snapshot envelope";
      break;
    }
    const std::uint32_t len = get_u32(envelope);
    const std::uint32_t crc = get_u32(envelope + 4);
    if (len > kMaxPayload) {
      result.truncated = true;
      result.reason = "implausible snapshot length";
      break;
    }
    payload.resize(len);
    if (backend.read(offset + 8, payload.data(), len) != len) {
      result.truncated = true;
      result.reason = "torn snapshot payload";
      break;
    }
    if (crc32(payload.data(), len) != crc) {
      result.truncated = true;
      result.reason = "snapshot CRC mismatch";
      break;
    }
    ByteReader reader(payload.data(), len);
    SnapshotImage image;
    image.offset = offset;
    image.epoch = reader.u64();
    const std::uint64_t n = reader.u64();
    image.entries.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n && reader.ok(); ++i) {
      std::string key = reader.string();
      Value value = reader.value();
      const Cycle committed_at = reader.u64();
      image.entries.emplace_back(std::move(key), std::move(value),
                                 committed_at);
    }
    if (!reader.exhausted()) {
      result.truncated = true;
      result.reason = "malformed snapshot payload";
      break;
    }
    result.image_offsets.push_back(offset);
    offset += 8 + len;
    result.valid_bytes = offset;
    result.last = std::move(image);
    result.any_valid = true;
    ++result.images;
  }
  return result;
}

}  // namespace arfs::storage::durable
