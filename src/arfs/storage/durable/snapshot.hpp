// Snapshots of the committed store.
//
// The snapshot device is itself an append-only journal of full images
// (magic "ARFSSNP1", then CRC-guarded records in the journal envelope):
//
//   payload: u64 epoch, u64 n, n × { string key, tagged value,
//                                    u64 committed_at }
//
// Appending a fresh image rather than rewriting in place means a crash in
// the middle of snapshotting leaves the *previous* image intact — recovery
// simply uses the last image that survives its CRC and falls back to pure
// journal replay when none does. After an image is durably synced the
// write-ahead journal is compacted, so steady-state recovery cost is one
// image plus the commits since it.
#pragma once

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "arfs/common/types.hpp"
#include "arfs/storage/durable/backend.hpp"
#include "arfs/storage/value.hpp"

namespace arfs::storage::durable {

inline constexpr std::uint8_t kSnapshotMagic[8] = {'A', 'R', 'F', 'S',
                                                   'S', 'N', 'P', '1'};

/// One decoded snapshot image.
struct SnapshotImage {
  std::uint64_t epoch = 0;  ///< Commit epoch the image captures.
  /// (key, value, committed_at) for every committed entry, sorted by key.
  std::vector<std::tuple<std::string, Value, Cycle>> entries;
  std::uint64_t offset = 0;
};

struct SnapshotScan {
  bool header_ok = false;
  bool any_valid = false;
  SnapshotImage last;            ///< Meaningful only when any_valid.
  std::size_t images = 0;        ///< Count of valid images found.
  /// Envelope byte offset of each valid image, in device order. The GC uses
  /// these to find where the keep-set starts without re-parsing payloads.
  std::vector<std::uint64_t> image_offsets;
  std::uint64_t valid_bytes = 0; ///< End of the last valid image.
  bool truncated = false;        ///< Torn/corrupt tail after the images.
  std::string reason;
};

/// Appends (but does not sync) a full image of `entries` at `epoch`.
/// Writes the device header first when the device is empty. Returns false
/// when an existing header does not match.
bool append_snapshot(JournalBackend& backend, std::uint64_t epoch,
                     const std::vector<std::tuple<std::string, Value, Cycle>>&
                         entries);

/// Scans the device for the last valid image. Malformed content is reported,
/// never fatal.
[[nodiscard]] SnapshotScan scan_snapshots(const JournalBackend& backend);

}  // namespace arfs::storage::durable
